// A tour of the truth-inference zoo: run every aggregation method on the
// same simulated crowd and compare their inference quality — classification
// first (MV, DS, GLAD, IBCC, PM, CATD), then sequences (MV, DS, HMM-Crowd,
// BSC-seq).
#include <iostream>
#include <memory>

#include "crowd/simulator.h"
#include "data/ner_gen.h"
#include "data/sentiment_gen.h"
#include "eval/metrics.h"
#include "inference/bsc_seq.h"
#include "inference/catd.h"
#include "inference/dawid_skene.h"
#include "inference/glad.h"
#include "inference/hmm_crowd.h"
#include "inference/ibcc.h"
#include "inference/mace.h"
#include "inference/majority_vote.h"
#include "inference/pm.h"
#include "inference/zencrowd.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace lncl;
  util::Rng rng(21);

  // ---------------------------------------------------- Classification --
  data::SentimentGenConfig sent_config;
  data::SentimentCorpus sent =
      data::GenerateSentimentCorpus(sent_config, 1200, 100, 100, &rng);
  crowd::CrowdConfig crowd_config;
  crowd_config.num_annotators = 40;
  auto sent_sim =
      crowd::CrowdSimulator::MakeClassification(crowd_config, 2, &rng);
  crowd::AnnotationSet sent_ann = sent_sim.Annotate(sent.train, &rng);
  const auto sent_items = inference::ItemsPerInstance(sent.train);

  util::Table table("Truth inference on a simulated crowd");
  table.SetHeader({"Task", "Method", "Accuracy / span-F1"});

  std::vector<inference::TruthInferencePtr> classifiers;
  classifiers.push_back(std::make_unique<inference::MajorityVote>());
  classifiers.push_back(std::make_unique<inference::DawidSkene>());
  classifiers.push_back(std::make_unique<inference::Glad>());
  classifiers.push_back(std::make_unique<inference::Ibcc>());
  classifiers.push_back(std::make_unique<inference::Mace>());
  classifiers.push_back(std::make_unique<inference::ZenCrowd>());
  classifiers.push_back(std::make_unique<inference::Pm>());
  classifiers.push_back(std::make_unique<inference::Catd>());
  for (const auto& method : classifiers) {
    const auto posteriors = method->Infer(sent_ann, sent_items, &rng);
    table.AddRow({"sentiment", method->name(),
                  util::FormatFixed(
                      eval::PosteriorAccuracy(posteriors, sent.train) * 100.0,
                      2)});
  }
  table.AddSeparator();

  // --------------------------------------------------------- Sequences --
  data::NerGenConfig ner_config;
  data::NerCorpus ner = data::GenerateNerCorpus(ner_config, 400, 50, 50, &rng);
  crowd_config.num_annotators = 25;
  auto ner_sim = crowd::CrowdSimulator::MakeSequence(crowd_config, &rng);
  crowd::AnnotationSet ner_ann = ner_sim.AnnotateSequences(ner.train, &rng);
  const auto ner_items = inference::ItemsPerInstance(ner.train);

  std::vector<inference::TruthInferencePtr> sequencers;
  sequencers.push_back(std::make_unique<inference::MajorityVote>());
  sequencers.push_back(std::make_unique<inference::DawidSkene>());
  sequencers.push_back(std::make_unique<inference::HmmCrowd>());
  sequencers.push_back(std::make_unique<inference::BscSeq>());
  for (const auto& method : sequencers) {
    const auto posteriors = method->Infer(ner_ann, ner_items, &rng);
    table.AddRow({"ner", method->name(),
                  util::FormatFixed(
                      eval::PosteriorSpanF1(posteriors, ner.train).f1 * 100.0,
                      2)});
  }
  table.Print(std::cout);

  // GLAD's extras: per-item difficulty estimates.
  inference::Glad glad;
  const auto detailed = glad.RunDetailed(sent_ann, sent_items);
  double hard = 0.0, easy = 0.0;
  int n_hard = 0, n_easy = 0;
  for (int i = 0; i < sent.train.size(); ++i) {
    if (sent.train.instances[i].difficulty > 0.5) {
      hard += detailed.difficulty[i];
      ++n_hard;
    } else {
      easy += detailed.difficulty[i];
      ++n_easy;
    }
  }
  if (n_hard > 0 && n_easy > 0) {
    std::cout << "GLAD difficulty estimates: planted-hard items "
              << util::FormatFixed(hard / n_hard, 3)
              << " vs planted-easy items "
              << util::FormatFixed(easy / n_easy, 3) << "\n";
  }
  return 0;
}
