// Annotator-reliability estimation (the paper's Figures 6/7 in miniature):
// train Logic-LNCL, then compare the learned confusion matrices against the
// annotators' empirical confusions.
#include <iostream>
#include <memory>

#include "core/logic_lncl.h"
#include "core/sentiment_rules.h"
#include "crowd/confusion.h"
#include "crowd/simulator.h"
#include "data/sentiment_gen.h"
#include "eval/reliability.h"
#include "models/text_cnn.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace lncl;
  util::Rng rng(5);

  data::SentimentGenConfig gen_config;
  data::SentimentCorpus corpus =
      data::GenerateSentimentCorpus(gen_config, 1000, 200, 200, &rng);
  crowd::CrowdConfig crowd_config;
  crowd_config.num_annotators = 20;
  auto simulator =
      crowd::CrowdSimulator::MakeClassification(crowd_config, 2, &rng);
  crowd::AnnotationSet annotations = simulator.Annotate(corpus.train, &rng);

  std::unique_ptr<models::Model> model = models::TextCnn::Factory(
      models::TextCnnConfig(), corpus.embeddings)(&rng);
  core::SentimentButRule rule(model.get(), corpus.but_token);
  core::LogicLnclConfig config;
  config.epochs = 10;
  config.batch_size = 32;
  config.k_schedule = core::SentimentKSchedule();
  config.optimizer.kind = "adadelta";
  config.optimizer.lr = 1.0;
  core::LogicLncl learner(config, std::move(model), &rule);
  learner.Fit(corpus.train, annotations, corpus.dev, &rng);

  const crowd::ConfusionSet empirical =
      crowd::EmpiricalConfusions(annotations, corpus.train);
  const auto labels = annotations.LabelsPerAnnotator();

  util::Table table("Estimated vs empirical annotator reliability");
  table.SetHeader({"Annotator", "Labels", "Skill (sim)", "Estimated", "True"});
  for (int j = 0; j < annotations.num_annotators(); ++j) {
    table.AddRow({std::to_string(j), std::to_string(labels[j]),
                  util::FormatFixed(simulator.profiles()[j].skill, 2),
                  util::FormatFixed(learner.confusions()[j].Reliability(), 3),
                  util::FormatFixed(empirical[j].Reliability(), 3)});
  }
  table.Print(std::cout);

  const eval::ReliabilityReport report = eval::CompareReliability(
      learner.confusions(), empirical, labels, /*min_labels=*/5);
  std::cout << "correlation(estimated, true) = " << report.pearson_correlation
            << ", mean |error| = " << report.mean_abs_reliability_error
            << "\n";
  return 0;
}
