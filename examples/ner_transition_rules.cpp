// NER with BIO transition rules: trains Logic-LNCL on a synthetic
// crowdsourced sequence-tagging task and shows how the forward-backward rule
// projection (the paper's dynamic-programming evaluation of Eq. 15) repairs
// invalid label sequences at test time.
#include <iostream>

#include "core/logic_lncl.h"
#include "core/ner_rules.h"
#include "crowd/simulator.h"
#include "data/bio.h"
#include "data/ner_gen.h"
#include "eval/metrics.h"
#include "models/ner_tagger.h"
#include "util/rng.h"

namespace {

std::string RenderTags(const std::vector<int>& tags) {
  std::string out;
  for (int t : tags) {
    out += lncl::data::BioLabelName(t);
    out += ' ';
  }
  return out;
}

}  // namespace

int main() {
  using namespace lncl;
  util::Rng rng(11);

  data::NerGenConfig gen_config;
  data::NerCorpus corpus =
      data::GenerateNerCorpus(gen_config, 600, 150, 150, &rng);

  crowd::CrowdConfig crowd_config;
  crowd_config.num_annotators = 25;
  auto simulator = crowd::CrowdSimulator::MakeSequence(crowd_config, &rng);
  crowd::AnnotationSet annotations =
      simulator.AnnotateSequences(corpus.train, &rng);

  // The transition-rule penalty matrix compiled from the PSL rules.
  const util::Matrix pen = core::BuildNerTransitionPenalty();
  std::cout << "transition penalties into I-ORG:\n";
  for (int a : {data::kO, data::kBOrg, data::kIOrg, data::kBPer}) {
    std::cout << "  " << data::BioLabelName(a) << " -> I-ORG: "
              << pen(a, data::kIOrg) << "\n";
  }

  auto projector = core::MakeNerRuleProjector();
  models::NerTaggerConfig model_config;
  model_config.conv_features = 32;
  model_config.gru_hidden = 16;

  core::LogicLnclConfig config;
  config.epochs = 12;
  config.batch_size = 16;
  config.weighted_loss = true;  // Eq. 10
  config.k_schedule = core::NerKSchedule();
  config.optimizer.kind = "adam";
  config.optimizer.lr = 0.002;

  core::LogicLncl learner(
      config, models::NerTagger::Factory(model_config, corpus.embeddings),
      projector.get());
  learner.Fit(corpus.train, annotations, corpus.dev, &rng);

  const eval::PrF1 student = eval::SpanF1(
      [&](const data::Instance& x) { return learner.PredictStudent(x); },
      corpus.test);
  const eval::PrF1 teacher = eval::SpanF1(
      [&](const data::Instance& x) { return learner.PredictTeacher(x); },
      corpus.test);
  std::cout << "\nstrict span F1 on test: student " << student.f1
            << ", teacher " << teacher.f1 << "\n";

  // Show a sentence where the teacher repairs an invalid BIO decoding.
  long invalid_student = 0, invalid_teacher = 0;
  bool shown = false;
  for (const data::Instance& x : corpus.test.instances) {
    const auto s = eval::ArgmaxRows(learner.PredictStudent(x));
    const auto t = eval::ArgmaxRows(learner.PredictTeacher(x));
    invalid_student += !data::IsValidBioSequence(s);
    invalid_teacher += !data::IsValidBioSequence(t);
    if (!shown && !data::IsValidBioSequence(s) &&
        data::IsValidBioSequence(t)) {
      std::cout << "\nexample repair:\n  gold:    "
                << RenderTags(x.tag_labels) << "\n  student: " << RenderTags(s)
                << "\n  teacher: " << RenderTags(t) << "\n";
      shown = true;
    }
  }
  std::cout << "\ninvalid BIO decodings on test: student " << invalid_student
            << ", teacher " << invalid_teacher << " (of "
            << corpus.test.size() << ")\n";
  return 0;
}
