// Loading your own data: writes a corpus + crowd labels to the plain-text
// interchange formats (CoNLL columns for sequences, TSV for classification,
// and the MTurk-release "answers matrix" for crowd labels), reads them back,
// and aggregates the loaded labels — the end-to-end path a user with real
// crowdsourced files would follow.
#include <fstream>
#include <iostream>
#include <sstream>

#include "crowd/io.h"
#include "crowd/simulator.h"
#include "data/bio.h"
#include "data/io.h"
#include "data/ner_gen.h"
#include "eval/metrics.h"
#include "inference/dawid_skene.h"
#include "inference/truth_inference.h"
#include "util/rng.h"

int main() {
  using namespace lncl;
  util::Rng rng(3);

  // Generate a small corpus + crowd as a stand-in for "your data".
  data::NerGenConfig gen_config;
  data::NerCorpus corpus = data::GenerateNerCorpus(gen_config, 120, 1, 1, &rng);
  crowd::CrowdConfig crowd_config;
  crowd_config.num_annotators = 10;
  auto simulator = crowd::CrowdSimulator::MakeSequence(crowd_config, &rng);
  crowd::AnnotationSet annotations =
      simulator.AnnotateSequences(corpus.train, &rng);

  // --- Write the two files a real dataset release would contain.
  std::stringstream gold_file, answers_file;
  data::SaveConll(gold_file, corpus.train, corpus.vocab);
  crowd::SaveSequenceAnswers(answers_file, annotations,
                             inference::ItemsPerInstance(corpus.train));
  std::cout << "CoNLL gold file: " << gold_file.str().size() << " bytes; "
            << "answers matrix: " << answers_file.str().size() << " bytes\n";
  std::cout << "first rows of the answers matrix (0 = not annotated):\n";
  std::istringstream preview(answers_file.str());
  std::string line;
  for (int i = 0; i < 4 && std::getline(preview, line); ++i) {
    std::cout << "  " << line << "\n";
  }

  // --- Read everything back, as a downstream user would.
  data::Vocab vocab;
  data::Dataset loaded;
  if (!data::LoadConll(gold_file, &vocab, &loaded)) {
    std::cerr << "failed to parse CoNLL file\n";
    return 1;
  }
  crowd::AnnotationSet loaded_annotations;
  if (!crowd::LoadSequenceAnswers(answers_file, data::kNumBioLabels,
                                  &loaded_annotations)) {
    std::cerr << "failed to parse answers matrix\n";
    return 1;
  }
  std::cout << "loaded " << loaded.size() << " sentences and "
            << loaded_annotations.TotalAnnotations()
            << " sentence annotations\n";

  // --- Aggregate the loaded crowd labels.
  inference::DawidSkene ds;
  const auto posteriors = ds.Infer(
      loaded_annotations, inference::ItemsPerInstance(loaded), &rng);
  std::cout << "Dawid-Skene span F1 on the loaded data: "
            << eval::PosteriorSpanF1(posteriors, loaded).f1 << "\n";
  return 0;
}
