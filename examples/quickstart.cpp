// Quickstart: train Logic-LNCL end to end on a small synthetic crowdsourced
// sentiment task and compare it against majority voting.
//
//   build/examples/quickstart
//
// Walks through the full pipeline: generate a corpus, simulate a noisy
// crowd, train with the EM-alike logic distillation loop, and evaluate the
// student and teacher predictors.
#include <fstream>
#include <iostream>
#include <memory>

#include "core/logic_lncl.h"
#include "core/sentiment_rules.h"
#include "crowd/simulator.h"
#include "data/sentiment_gen.h"
#include "eval/metrics.h"
#include "inference/majority_vote.h"
#include "inference/truth_inference.h"
#include "models/text_cnn.h"
#include "util/rng.h"

int main() {
  using namespace lncl;
  util::Rng rng(42);

  // 1. A synthetic movie-review-style corpus. ~20% of sentences have an
  //    "A-but-B" structure whose ground truth follows clause B.
  data::SentimentGenConfig gen_config;
  data::SentimentCorpus corpus =
      data::GenerateSentimentCorpus(gen_config, /*train=*/800, /*dev=*/200,
                                    /*test=*/400, &rng);

  // 2. A simulated crowd of 30 annotators with heterogeneous reliability
  //    labels each training sentence ~5 times.
  crowd::CrowdConfig crowd_config;
  crowd_config.num_annotators = 30;
  auto simulator =
      crowd::CrowdSimulator::MakeClassification(crowd_config, 2, &rng);
  crowd::AnnotationSet annotations = simulator.Annotate(corpus.train, &rng);

  std::cout << "corpus: " << corpus.train.size() << " train / "
            << corpus.test.size() << " test sentences, "
            << annotations.TotalAnnotations() << " crowd labels\n";

  // Baseline: majority voting accuracy on the training set.
  const auto mv = inference::MajorityVote().Infer(
      annotations, inference::ItemsPerInstance(corpus.train), &rng);
  std::cout << "majority-vote inference accuracy: "
            << eval::PosteriorAccuracy(mv, corpus.train) << "\n";

  // 3. Logic-LNCL: the model is built first so the "A-but-B" rule can
  //    consult it, then both are handed to the learner.
  models::TextCnnConfig model_config;  // Kim (2014) CNN, reduced width
  std::unique_ptr<models::Model> model =
      models::TextCnn::Factory(model_config, corpus.embeddings)(&rng);
  core::SentimentButRule but_rule(model.get(), corpus.but_token);

  core::LogicLnclConfig config;
  config.epochs = 12;
  config.batch_size = 32;
  config.k_schedule = core::SentimentKSchedule();  // min{1, 1 - 0.94^t}
  config.optimizer.kind = "adadelta";
  config.optimizer.lr = 1.0;

  core::LogicLncl learner(config, std::move(model), &but_rule);
  const core::LogicLnclResult result =
      learner.Fit(corpus.train, annotations, corpus.dev, &rng);
  std::cout << "trained " << result.epochs_run << " epochs (best epoch "
            << result.best_epoch << ", dev " << result.best_dev_score
            << ")\n";

  // 4. Evaluate. The teacher projects predictions through the rule (Eq. 15)
  //    at test time and is typically the strongest variant.
  const double student = eval::Accuracy(
      [&](const data::Instance& x) { return learner.PredictStudent(x); },
      corpus.test);
  const double teacher = eval::Accuracy(
      [&](const data::Instance& x) { return learner.PredictTeacher(x); },
      corpus.test);
  std::cout << "test accuracy: student " << student << ", teacher " << teacher
            << "\n";
  std::cout << "inference accuracy (q_f on train): "
            << eval::PosteriorAccuracy(learner.qf(), corpus.train) << "\n";

  // 5. Persist the trained network (restore later with LoadModel).
  std::ofstream checkpoint("/tmp/logic_lncl_quickstart.ckpt",
                           std::ios::binary);
  learner.SaveModel(checkpoint);
  std::cout << "checkpoint written to /tmp/logic_lncl_quickstart.ckpt\n";
  return 0;
}
