// Demonstrates the probabilistic-soft-logic machinery behind the "A-but-B"
// sentiment rule (Eqs. 16-17): Łukasiewicz operators, formula evaluation,
// and the closed-form posterior-regularization projection (Eq. 15).
#include <iostream>

#include "core/sentiment_rules.h"
#include "crowd/simulator.h"
#include "data/sentiment_gen.h"
#include "logic/formula.h"
#include "logic/posterior_reg.h"
#include "logic/soft_logic.h"
#include "models/text_cnn.h"
#include "nn/optimizer.h"
#include "util/rng.h"

int main() {
  using namespace lncl;
  using logic::Formula;

  // --- 1. Soft logic basics: the paper's voting example (Section III-A).
  std::cout << "I(friend & votesFor) with I(friend)=1, I(votesFor)=0.9: "
            << logic::LukAnd(1.0, 0.9) << "\n";

  const auto rule = Formula::Implies(
      Formula::And(Formula::Atom(0, "friend(B,A)"),
                   Formula::Atom(1, "votesFor(A,P)")),
      Formula::Atom(2, "votesFor(B,P)"));
  std::cout << "rule: " << rule->ToString() << "\n";
  std::cout << "  I(rule | 1.0, 0.9, 0.7) = " << rule->Eval({1.0, 0.9, 0.7})
            << "  (distance to satisfaction "
            << rule->DistanceToSatisfaction({1.0, 0.9, 0.7}) << ")\n\n";

  // --- 2. Eq. 15 on a toy posterior: penalizing class 0 moves mass away.
  const util::Vector q = {0.5f, 0.5f};
  for (double c : {0.5, 2.0, 5.0}) {
    const util::Vector qb = logic::ProjectCategorical(q, {0.8f, 0.1f}, c);
    std::cout << "C=" << c << ": q_b = (" << qb[0] << ", " << qb[1] << ")\n";
  }

  // --- 3. The A-but-B rule on a real instance: train a small CNN briefly,
  //        then watch the projection pull a "but" sentence toward clause B.
  util::Rng rng(7);
  data::SentimentGenConfig gen_config;
  data::SentimentCorpus corpus =
      data::GenerateSentimentCorpus(gen_config, 600, 100, 100, &rng);

  models::TextCnnConfig model_config;
  models::TextCnn cnn(model_config, corpus.embeddings, &rng);
  // Quick supervised warm-up on gold labels (this example is about the rule,
  // not about crowd training; see quickstart.cpp for the full pipeline).
  nn::Adadelta opt(1.0);
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (const data::Instance& x : corpus.train.instances) {
      util::Matrix target(1, 2);
      target(0, x.label) = 1.0f;
      cnn.ForwardTrain(x, &rng);
      cnn.BackwardSoftTarget(target, 1.0f);
      opt.Step(cnn.Params());
    }
  }

  core::SentimentButRule but_rule(&cnn, corpus.but_token);
  std::cout << "\nPSL rules:\n";
  for (int l = 0; l < but_rule.rules().size(); ++l) {
    std::cout << "  [" << but_rule.rules().rule(l).name << "] "
              << but_rule.rules().rule(l).formula->ToString() << " (w="
              << but_rule.rules().rule(l).weight << ")\n";
  }

  int shown = 0;
  for (const data::Instance& x : corpus.test.instances) {
    if (x.contrast_index < 0 || x.tokens[x.contrast_index] != corpus.but_token)
      continue;
    const util::Matrix whole = cnn.Predict(x);
    const util::Matrix clause_b = cnn.Predict(data::ClauseB(x));
    const util::Matrix projected = but_rule.Project(x, whole, /*C=*/5.0);
    std::cout << "\n'A-but-B' sentence (truth="
              << (x.label ? "positive" : "negative") << "):\n"
              << "  p(positive | whole sentence) = " << whole(0, 1) << "\n"
              << "  p(positive | clause B)       = " << clause_b(0, 1) << "\n"
              << "  p(positive | rule-projected) = " << projected(0, 1)
              << "\n";
    if (++shown == 3) break;
  }
  return 0;
}
