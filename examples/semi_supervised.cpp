// Semi-supervised Logic-LNCL: a small expert-labeled subset anchors the
// truth estimates while the crowd labels cover the rest (the Atarashi-style
// setting the paper cites). Compares inference and prediction quality with
// and without the anchors.
#include <iostream>
#include <memory>

#include "core/logic_lncl.h"
#include "core/sentiment_rules.h"
#include "crowd/simulator.h"
#include "data/sentiment_gen.h"
#include "eval/metrics.h"
#include "models/text_cnn.h"
#include "util/rng.h"

int main() {
  using namespace lncl;
  util::Rng rng(17);

  data::SentimentGenConfig gen_config;
  data::SentimentCorpus corpus =
      data::GenerateSentimentCorpus(gen_config, 900, 200, 400, &rng);
  crowd::CrowdConfig crowd_config;
  crowd_config.num_annotators = 30;
  auto simulator =
      crowd::CrowdSimulator::MakeClassification(crowd_config, 2, &rng);
  crowd::AnnotationSet annotations = simulator.Annotate(corpus.train, &rng);

  core::LogicLnclConfig config;
  config.epochs = 12;
  config.batch_size = 32;
  config.k_schedule = core::SentimentKSchedule();
  config.optimizer.kind = "adadelta";
  config.optimizer.lr = 1.0;
  const auto factory =
      models::TextCnn::Factory(models::TextCnnConfig(), corpus.embeddings);

  // Plain crowd-only training.
  util::Rng rng_a(1);
  core::LogicLncl crowd_only(config, factory, nullptr);
  crowd_only.Fit(corpus.train, annotations, corpus.dev, &rng_a);

  // Anchor 15% expert labels.
  std::vector<int> gold_indices;
  for (int i = 0; i < corpus.train.size(); i += 7) gold_indices.push_back(i);
  util::Rng rng_b(1);
  core::LogicLncl semi(config, factory, nullptr);
  semi.FitSemiSupervised(corpus.train, annotations, gold_indices, corpus.dev,
                         &rng_b);

  auto accuracy = [&](core::LogicLncl& learner) {
    return eval::Accuracy(
        [&](const data::Instance& x) { return learner.PredictStudent(x); },
        corpus.test);
  };
  std::cout << "anchored gold labels: " << gold_indices.size() << " of "
            << corpus.train.size() << "\n";
  std::cout << "crowd-only:       test "
            << accuracy(crowd_only) << ", inference "
            << eval::PosteriorAccuracy(crowd_only.qf(), corpus.train) << "\n";
  std::cout << "semi-supervised:  test " << accuracy(semi) << ", inference "
            << eval::PosteriorAccuracy(semi.qf(), corpus.train) << "\n";
  return 0;
}
