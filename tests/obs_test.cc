// Tests for the src/obs telemetry subsystem: deterministic metric merges
// under varying thread counts, histogram bucket-edge semantics, trace-event
// JSON well-formedness (parsed back with a minimal validator), the run-log
// JSONL golden schema, and the core guarantee that attaching telemetry to a
// Fit does not perturb a single bit of its results.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/logic_lncl.h"
#include "crowd/simulator.h"
#include "data/sentiment_gen.h"
#include "models/text_cnn.h"
#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace lncl {
namespace {

// ----------------------------------------------------- minimal JSON checker
//
// Syntax-only recursive-descent validator (objects, arrays, strings,
// numbers, true/false/null). Enough to assert that the trace files and run
// logs we emit are real JSON, without pulling in a parser dependency.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return at_ == s_.size();
  }

 private:
  bool Value() {
    if (at_ >= s_.size()) return false;
    switch (s_[at_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++at_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++at_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++at_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++at_;
        continue;
      }
      if (Peek() == '}') return ++at_, true;
      return false;
    }
  }

  bool Array() {
    ++at_;  // '['
    SkipWs();
    if (Peek() == ']') return ++at_, true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++at_;
        continue;
      }
      if (Peek() == ']') return ++at_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++at_;
    while (at_ < s_.size() && s_[at_] != '"') {
      if (s_[at_] == '\\') {
        ++at_;
        if (at_ >= s_.size()) return false;
      }
      ++at_;
    }
    if (at_ >= s_.size()) return false;
    ++at_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = at_;
    if (Peek() == '-') ++at_;
    while (at_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[at_])) ||
            s_[at_] == '.' || s_[at_] == 'e' || s_[at_] == 'E' ||
            s_[at_] == '+' || s_[at_] == '-')) {
      ++at_;
    }
    return at_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (s_.compare(at_, len, word) != 0) return false;
    at_ += len;
    return true;
  }

  char Peek() const { return at_ < s_.size() ? s_[at_] : '\0'; }
  void SkipWs() {
    while (at_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[at_]))) {
      ++at_;
    }
  }

  const std::string& s_;
  size_t at_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// -------------------------------------------------------- metrics registry

// The same logical work (integer observations only) must produce the same
// snapshot JSON for every thread count: shard assignment varies with
// scheduling, but integer adds commute and snapshots merge shards in fixed
// slot order.
TEST(MetricsTest, MergeDeterministicAcrossThreadCounts) {
  obs::Metrics::Enable(true);
  std::vector<std::string> snapshots;
  for (int threads : {1, 2, 8}) {
    obs::Metrics::Reset();
    util::Parallelizer exec(threads);
    exec.RunSlots(util::Parallelizer::kSlots, [](int slot) {
      obs::Counter* c = obs::Metrics::GetCounter("test.merge.counter");
      obs::Gauge* g = obs::Metrics::GetGauge("test.merge.gauge");
      obs::Histogram* h =
          obs::Metrics::GetHistogram("test.merge.histo", {1, 2, 4, 8});
      for (int i = 0; i < 1000; ++i) {
        c->Add(static_cast<uint64_t>(slot) + 1);
        g->Update(slot * 10 + (i % 7));
        h->Observe(static_cast<double>((slot + i) % 10));
      }
    });
    snapshots.push_back(obs::Metrics::SnapshotJson());
  }
  obs::Metrics::Enable(false);
  ASSERT_EQ(snapshots.size(), 3u);
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
  EXPECT_TRUE(JsonChecker(snapshots[0]).Valid()) << snapshots[0];
  // Slot s contributes 1000 * (s + 1); sum over 8 slots = 1000 * 36.
  EXPECT_EQ(obs::Metrics::GetCounter("test.merge.counter")->Total(), 36000u);
  EXPECT_EQ(obs::Metrics::GetGauge("test.merge.gauge")->Value(), 76);
}

TEST(MetricsTest, DisabledIsNullSink) {
  obs::Metrics::Enable(false);
  obs::Counter* c = obs::Metrics::GetCounter("test.nullsink.counter");
  // The flag gates call sites, not the metric objects themselves: direct
  // Add still records (instrumentation sites check Metrics::enabled()).
  EXPECT_FALSE(obs::Metrics::enabled());
  const uint64_t before = c->Total();
  if (obs::Metrics::enabled()) c->Increment();  // the instrumentation idiom
  EXPECT_EQ(c->Total(), before);
}

TEST(MetricsTest, HistogramBucketEdges) {
  obs::Metrics::Enable(true);
  obs::Histogram* h =
      obs::Metrics::GetHistogram("test.edges.histo", {1, 2, 4, 8});
  // Edge semantics: bucket i counts v <= edges[i] (first match); overflow
  // counts v > 8.
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 7.0, 8.0, 9.0, 100.0}) {
    h->Observe(v);
  }
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(counts[2], 2u);  // 3.0, 4.0
  EXPECT_EQ(counts[3], 2u);  // 7.0, 8.0
  EXPECT_EQ(counts[4], 2u);  // 9.0, 100.0 (overflow)
  EXPECT_EQ(h->TotalCount(), 10u);
  obs::Metrics::Enable(false);
}

TEST(MetricsTest, HistogramKeepsFirstRegistrationEdges) {
  obs::Metrics::Enable(true);
  obs::Histogram* a =
      obs::Metrics::GetHistogram("test.firstedges.histo", {1, 2});
  obs::Histogram* b =
      obs::Metrics::GetHistogram("test.firstedges.histo", {10, 20, 30});
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->edges(), (std::vector<double>{1, 2}));
  obs::Metrics::Enable(false);
}

TEST(MetricsTest, GaugeHighWaterAcrossThreads) {
  obs::Metrics::Enable(true);
  obs::Gauge* g = obs::Metrics::GetGauge("test.highwater.gauge");
  util::Parallelizer exec(4);
  exec.RunSlots(util::Parallelizer::kSlots, [&](int slot) {
    g->Update(slot);      // rises to the slot index...
    g->Update(slot / 2);  // ...and never goes back down
  });
  EXPECT_EQ(g->Value(), util::Parallelizer::kSlots - 1);
  obs::Metrics::Enable(false);
}

TEST(MetricsTest, CounterTotalsSortedByName) {
  obs::Metrics::Enable(true);
  obs::Metrics::GetCounter("test.sorted.zzz")->Increment();
  obs::Metrics::GetCounter("test.sorted.aaa")->Increment();
  const auto totals = obs::Metrics::CounterTotals();
  for (size_t i = 1; i < totals.size(); ++i) {
    EXPECT_LT(totals[i - 1].first, totals[i].first);
  }
  obs::Metrics::Enable(false);
}

// ------------------------------------------------------------ trace events

#if LNCL_TRACE_ENABLED
TEST(TraceTest, EmitsWellFormedChromeTraceJson) {
  const std::string path = TempPath("obs_trace_test.json");
  ASSERT_TRUE(obs::Trace::Start(path));
  {
    LNCL_TRACE_SPAN("outer");
    util::Parallelizer exec(4);
    exec.RunSlots(util::Parallelizer::kSlots, [](int slot) {
      LNCL_TRACE_SPAN_ARG("slot_work", "slot", slot);
      volatile double sink = 0.0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    });
  }
  double accum = 0.0;
  { obs::PhaseSpan phase("phase_under_trace", &accum); }
  obs::Trace::Stop();
  EXPECT_GT(accum, 0.0);

  const std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonChecker(text).Valid()) << text.substr(0, 400);
  // Chrome trace-event envelope and our span names.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"M\""), std::string::npos);  // thread names
  EXPECT_NE(text.find("\"outer\""), std::string::npos);
  EXPECT_NE(text.find("\"slot_work\""), std::string::npos);
  EXPECT_NE(text.find("\"phase_under_trace\""), std::string::npos);
  EXPECT_NE(text.find("\"slot\""), std::string::npos);  // span args survive
  std::remove(path.c_str());
}

TEST(TraceTest, InactiveTraceRecordsNothing) {
  EXPECT_FALSE(obs::Trace::active());
  LNCL_TRACE_SPAN("never_recorded");  // must be a safe no-op
  double accum = 0.0;
  { obs::PhaseSpan phase("still_times", &accum); }
  EXPECT_GT(accum, 0.0);  // PhaseSpan timing works without a trace session
}
#endif  // LNCL_TRACE_ENABLED

// ---------------------------------------------------------------- run logs

TEST(RunLogTest, JsonlGoldenSchema) {
  const std::string path = TempPath("obs_runlog_test.jsonl");
  {
    obs::JsonlRunLogger logger(path, "unit/test");
    ASSERT_TRUE(logger.ok());
    obs::EpochRecord rec;
    rec.epoch = 3;
    rec.k = 0.25;
    rec.loss = 1.5;
    rec.dev_score = 0.75;
    rec.is_best = true;
    rec.mean_kl_qa_qb = 0.125;
    rec.rule_satisfaction = 0.875;
    rec.projected_items = 42;
    rec.confusion_diag_mass = 0.7;
    rec.confusion_drift = 0.01;
    rec.m_step_seconds = 0.5;
    rec.confusion_seconds = 0.125;
    rec.e_step_seconds = 0.25;
    rec.dev_eval_seconds = 0.0625;
    rec.e_step_instances_per_second = 1000.0;
    rec.metric_deltas = {{"gemm.calls", 7}, {"optimizer.steps", 3}};
    logger.OnEpoch(rec);
    obs::FitSummary summary;
    summary.best_epoch = 3;
    summary.epochs_run = 5;
    summary.early_stopped = true;
    summary.best_dev_score = 0.75;
    logger.OnFitEnd(summary);
  }

  std::ifstream is(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);

  // Golden schema: every record carries the envelope; epoch records carry
  // the full diagnostic set. Renaming a key is a schema break — update the
  // consumers (tools/trace_summary.py, scripts/check.sh) with this test.
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    EXPECT_NE(line.find("\"schema\": \"lncl.em_run.v1\""), std::string::npos);
    EXPECT_NE(line.find("\"run\": \"unit/test\""), std::string::npos);
  }
  const std::string& epoch_line = lines[0];
  EXPECT_NE(epoch_line.find("\"record\": \"epoch\""), std::string::npos);
  for (const char* key :
       {"\"epoch\"", "\"k\"", "\"loss\"", "\"dev_score\"", "\"is_best\"",
        "\"mean_kl_qa_qb\"", "\"rule_satisfaction\"", "\"projected_items\"",
        "\"confusion_diag_mass\"", "\"confusion_drift\"",
        "\"phase_seconds\"", "\"m_step\"", "\"confusion\"", "\"e_step\"",
        "\"dev_eval\"", "\"e_step_instances_per_second\"",
        "\"metric_deltas\"", "\"gemm.calls\""}) {
    EXPECT_NE(epoch_line.find(key), std::string::npos)
        << "epoch record missing " << key << ": " << epoch_line;
  }
  const std::string& end_line = lines[1];
  EXPECT_NE(end_line.find("\"record\": \"fit_end\""), std::string::npos);
  for (const char* key : {"\"best_epoch\"", "\"epochs_run\"",
                          "\"early_stopped\"", "\"best_dev_score\""}) {
    EXPECT_NE(end_line.find(key), std::string::npos)
        << "fit_end record missing " << key << ": " << end_line;
  }
  std::remove(path.c_str());
}

// ------------------------------------------------- telemetry ⊥ fit results

// Collects records in memory (and sanity-checks invariants as they stream).
class RecordingObserver : public obs::RunObserver {
 public:
  void OnEpoch(const obs::EpochRecord& record) override {
    records.push_back(record);
  }
  void OnFitEnd(const obs::FitSummary& summary) override {
    summaries.push_back(summary);
  }
  std::vector<obs::EpochRecord> records;
  std::vector<obs::FitSummary> summaries;
};

class TelemetryFitTest : public testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(77);
    data::SentimentGenConfig gcfg;
    corpus_ = data::GenerateSentimentCorpus(gcfg, 200, 60, 60, &rng);
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 15;
    auto sim = crowd::CrowdSimulator::MakeClassification(ccfg, 2, &rng);
    annotations_ = std::make_unique<crowd::AnnotationSet>(
        sim.Annotate(corpus_.train, &rng));
    models::TextCnnConfig mcfg;
    mcfg.feature_maps = 8;
    factory_ = models::TextCnn::Factory(mcfg, corpus_.embeddings);
  }

  struct Snapshot {
    core::LogicLnclResult result;
    std::vector<std::vector<float>> params;
  };

  Snapshot Run(obs::RunObserver* observer) const {
    core::LogicLnclConfig config;
    config.epochs = 4;
    config.batch_size = 32;
    config.patience = 4;
    config.k_schedule = core::SentimentKSchedule();
    config.optimizer.kind = "adadelta";
    config.optimizer.lr = 1.0;
    config.threads = 2;
    config.run_observer = observer;
    util::Rng rng(1);
    core::LogicLncl learner(config, factory_, nullptr);
    Snapshot snap;
    snap.result = learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
    for (nn::Parameter* p : learner.model()->Params()) {
      snap.params.emplace_back(p->value.data(),
                               p->value.data() + p->value.size());
    }
    return snap;
  }

  data::SentimentCorpus corpus_;
  std::unique_ptr<crowd::AnnotationSet> annotations_;
  models::ModelFactory factory_;
};

TEST_F(TelemetryFitTest, FullTelemetryDoesNotPerturbFit) {
  const Snapshot plain = Run(nullptr);

  obs::Metrics::Enable(true);
  obs::Metrics::Reset();
  RecordingObserver observer;
#if LNCL_TRACE_ENABLED
  const std::string trace_path = TempPath("obs_fit_trace.json");
  ASSERT_TRUE(obs::Trace::Start(trace_path));
#endif
  const Snapshot instrumented = Run(&observer);
#if LNCL_TRACE_ENABLED
  obs::Trace::Stop();
  const std::string trace = ReadFile(trace_path);
  EXPECT_TRUE(JsonChecker(trace).Valid());
  EXPECT_NE(trace.find("\"e_step_shard\""), std::string::npos);
  EXPECT_NE(trace.find("\"m_step\""), std::string::npos);
  std::remove(trace_path.c_str());
#endif
  obs::Metrics::Enable(false);

  // Bit-identity: exact double/float equality, not closeness.
  ASSERT_EQ(plain.result.loss_curve.size(),
            instrumented.result.loss_curve.size());
  for (size_t i = 0; i < plain.result.loss_curve.size(); ++i) {
    EXPECT_EQ(plain.result.loss_curve[i], instrumented.result.loss_curve[i]);
  }
  ASSERT_EQ(plain.result.dev_curve.size(),
            instrumented.result.dev_curve.size());
  for (size_t i = 0; i < plain.result.dev_curve.size(); ++i) {
    EXPECT_EQ(plain.result.dev_curve[i], instrumented.result.dev_curve[i]);
  }
  EXPECT_EQ(plain.result.best_epoch, instrumented.result.best_epoch);
  EXPECT_EQ(plain.result.best_dev_score, instrumented.result.best_dev_score);
  EXPECT_EQ(plain.result.early_stopped, instrumented.result.early_stopped);
  ASSERT_EQ(plain.params.size(), instrumented.params.size());
  for (size_t i = 0; i < plain.params.size(); ++i) {
    ASSERT_EQ(plain.params[i].size(), instrumented.params[i].size());
    EXPECT_EQ(std::memcmp(plain.params[i].data(),
                          instrumented.params[i].data(),
                          plain.params[i].size() * sizeof(float)),
              0)
        << "parameter " << i << " differs under telemetry";
  }

  // The observer saw one record per epoch run plus one summary, and the
  // records mirror the result curves exactly.
  ASSERT_EQ(observer.records.size(),
            static_cast<size_t>(instrumented.result.epochs_run));
  ASSERT_EQ(observer.summaries.size(), 1u);
  for (size_t i = 0; i < observer.records.size(); ++i) {
    const obs::EpochRecord& rec = observer.records[i];
    EXPECT_EQ(rec.epoch, static_cast<int>(i));
    EXPECT_EQ(rec.loss, instrumented.result.loss_curve[i]);
    EXPECT_EQ(rec.dev_score, instrumented.result.dev_curve[i]);
    EXPECT_GE(rec.rule_satisfaction, 0.0);
    EXPECT_LE(rec.rule_satisfaction, 1.0);
    // No projector attached in this fit: nothing was projected.
    EXPECT_EQ(rec.projected_items, 0);
    EXPECT_GT(rec.confusion_diag_mass, 0.0);
    // Metrics were enabled, so per-epoch counter deltas are attached.
    EXPECT_FALSE(rec.metric_deltas.empty());
  }
  EXPECT_EQ(observer.summaries[0].best_epoch, instrumented.result.best_epoch);
  EXPECT_EQ(observer.summaries[0].epochs_run, instrumented.result.epochs_run);
  EXPECT_EQ(observer.summaries[0].early_stopped,
            instrumented.result.early_stopped);
}

TEST_F(TelemetryFitTest, EarlyStoppedFlagDistinguishesRestoredBest) {
  // patience 1 with several epochs: the run should stop before the epoch
  // budget, and the result must say so while best_epoch stays the restored
  // (not the last) epoch.
  core::LogicLnclConfig config;
  config.epochs = 12;
  config.batch_size = 32;
  config.patience = 1;
  config.k_schedule = core::SentimentKSchedule();
  config.optimizer.kind = "adadelta";
  config.optimizer.lr = 1.0;
  util::Rng rng(5);
  core::LogicLncl learner(config, factory_, nullptr);
  const core::LogicLnclResult res =
      learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  EXPECT_EQ(res.early_stopped, res.epochs_run < config.epochs);
  EXPECT_EQ(static_cast<size_t>(res.epochs_run), res.dev_curve.size());
  EXPECT_EQ(static_cast<size_t>(res.epochs_run), res.loss_curve.size());
  ASSERT_GE(res.best_epoch, 0);
  EXPECT_LT(res.best_epoch, res.epochs_run);
  if (res.early_stopped) {
    // The early-stopped tail: the best epoch is strictly before the last
    // epoch run, and the curves retain the non-improving tail.
    EXPECT_LT(res.best_epoch, res.epochs_run - 1);
  }
  EXPECT_EQ(res.best_dev_score, res.dev_curve[res.best_epoch]);
}

}  // namespace
}  // namespace lncl
