#include <gtest/gtest.h>

#include <cmath>

#include "core/ner_rules.h"
#include "core/sentiment_rules.h"
#include "data/bio.h"
#include "logic/formula.h"
#include "logic/posterior_reg.h"
#include "logic/rule.h"
#include "logic/sequence_rules.h"
#include "logic/soft_logic.h"
#include "util/rng.h"

namespace lncl::logic {
namespace {

// ----------------------------------------------- Lukasiewicz operators --

// Property sweep over a grid of soft truth values.
class LukasiewiczTest : public testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LukasiewiczTest, OperatorsStayInUnitInterval) {
  const auto [a, b] = GetParam();
  for (double v : {LukAnd(a, b), LukOr(a, b), LukNot(a), LukImplies(a, b)}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_P(LukasiewiczTest, Commutativity) {
  const auto [a, b] = GetParam();
  EXPECT_DOUBLE_EQ(LukAnd(a, b), LukAnd(b, a));
  EXPECT_DOUBLE_EQ(LukOr(a, b), LukOr(b, a));
}

TEST_P(LukasiewiczTest, DeMorgan) {
  const auto [a, b] = GetParam();
  EXPECT_NEAR(LukNot(LukAnd(a, b)), LukOr(LukNot(a), LukNot(b)), 1e-12);
  EXPECT_NEAR(LukNot(LukOr(a, b)), LukAnd(LukNot(a), LukNot(b)), 1e-12);
}

TEST_P(LukasiewiczTest, ImplicationAsDisjunction) {
  const auto [a, b] = GetParam();
  EXPECT_NEAR(LukImplies(a, b), LukOr(LukNot(a), b), 1e-12);
}

TEST_P(LukasiewiczTest, BooleanCornersMatchClassicalLogic) {
  const auto [a, b] = GetParam();
  if ((a == 0.0 || a == 1.0) && (b == 0.0 || b == 1.0)) {
    EXPECT_DOUBLE_EQ(LukAnd(a, b), a * b);
    EXPECT_DOUBLE_EQ(LukOr(a, b), std::min(1.0, a + b));
    EXPECT_DOUBLE_EQ(LukImplies(a, b), (a == 1.0 && b == 0.0) ? 0.0 : 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LukasiewiczTest,
    testing::Values(std::make_pair(0.0, 0.0), std::make_pair(0.0, 1.0),
                    std::make_pair(1.0, 0.0), std::make_pair(1.0, 1.0),
                    std::make_pair(0.3, 0.8), std::make_pair(0.5, 0.5),
                    std::make_pair(0.9, 0.2), std::make_pair(0.1, 0.1),
                    std::make_pair(0.7, 0.7)));

TEST(SoftLogicTest, PaperVotingExample) {
  // I(friend) = 1, I(votesFor) = 0.9 => conjunction = 0.9 (Section III-A).
  EXPECT_NEAR(LukAnd(1.0, 0.9), 0.9, 1e-12);
}

TEST(SoftLogicTest, ClampsOutOfRangeInput) {
  EXPECT_DOUBLE_EQ(LukNot(1.7), 0.0);
  EXPECT_DOUBLE_EQ(LukAnd(1.5, 0.8), 0.8);
}

// ---------------------------------------------------------------- Formula --

TEST(FormulaTest, AtomAndConstantEval) {
  const auto f = Formula::Atom(1);
  EXPECT_DOUBLE_EQ(f->Eval({0.2, 0.7}), 0.7);
  EXPECT_DOUBLE_EQ(Formula::Constant(0.4)->Eval({}), 0.4);
  EXPECT_DOUBLE_EQ(Formula::Constant(2.0)->Eval({}), 1.0);  // clamped
}

TEST(FormulaTest, CompositeEvaluation) {
  // (a & b) -> c
  const auto f = Formula::Implies(
      Formula::And(Formula::Atom(0), Formula::Atom(1)), Formula::Atom(2));
  EXPECT_DOUBLE_EQ(f->Eval({1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(f->Eval({1.0, 1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(f->Eval({1.0, 0.9, 0.5}), LukImplies(0.9, 0.5));
  EXPECT_EQ(f->MaxAtomIndex(), 2);
}

TEST(FormulaTest, DistanceToSatisfaction) {
  const auto f = Formula::Implies(Formula::Atom(0), Formula::Atom(1));
  EXPECT_DOUBLE_EQ(f->DistanceToSatisfaction({1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(f->DistanceToSatisfaction({1.0, 0.0}), 1.0);
  EXPECT_NEAR(f->DistanceToSatisfaction({1.0, 0.6}), 0.4, 1e-12);
}

TEST(FormulaTest, ToStringRendering) {
  const auto f = Formula::Implies(
      Formula::And(Formula::Atom(0, "friend(B,A)"),
                   Formula::Atom(1, "votesFor(A,P)")),
      Formula::Atom(2, "votesFor(B,P)"));
  EXPECT_EQ(f->ToString(),
            "((friend(B,A) & votesFor(A,P)) -> votesFor(B,P))");
  EXPECT_EQ(Formula::Not(Formula::Atom(0, "x"))->ToString(), "!x");
}

// ----------------------------------------------------------------- Rules --

TEST(RuleSetTest, PenaltyIsWeightedDistanceSum) {
  RuleSet rules;
  rules.Add(Formula::Implies(Formula::Atom(0), Formula::Atom(1)), 0.8, "r1");
  rules.Add(Formula::Atom(1), 0.5, "r2");
  // atoms = {1, 0.25}: r1 distance = 0.75, r2 distance = 0.75.
  EXPECT_NEAR(rules.Penalty({1.0, 0.25}), 0.8 * 0.75 + 0.5 * 0.75, 1e-12);
  EXPECT_EQ(rules.size(), 2);
  EXPECT_EQ(rules.MaxAtomIndex(), 1);
}

TEST(RuleSetTest, EmptyRuleSetNoPenalty) {
  RuleSet rules;
  EXPECT_DOUBLE_EQ(rules.Penalty({0.0}), 0.0);
  EXPECT_TRUE(rules.empty());
}

// --------------------------------------------------- Posterior projection --

TEST(PosteriorRegTest, ZeroCReturnsInput) {
  util::Matrix q(1, 3);
  q(0, 0) = 0.2f; q(0, 1) = 0.5f; q(0, 2) = 0.3f;
  util::Matrix pen(1, 3);
  pen(0, 0) = 1.0f;
  const util::Matrix out = ProjectIndependent(q, pen, 0.0);
  for (int k = 0; k < 3; ++k) EXPECT_NEAR(out(0, k), q(0, k), 1e-6);
}

TEST(PosteriorRegTest, ZeroPenaltyReturnsInput) {
  util::Matrix q(2, 2);
  q(0, 0) = 0.7f; q(0, 1) = 0.3f;
  q(1, 0) = 0.1f; q(1, 1) = 0.9f;
  util::Matrix pen(2, 2);
  const util::Matrix out = ProjectIndependent(q, pen, 5.0);
  for (int r = 0; r < 2; ++r) {
    for (int k = 0; k < 2; ++k) EXPECT_NEAR(out(r, k), q(r, k), 1e-6);
  }
}

TEST(PosteriorRegTest, MatchesClosedFormEq15) {
  // Direct check against q_b(t) = q_a(t) exp(-C w (1 - v(t))) / Z.
  const util::Vector q = {0.6f, 0.4f};
  const util::Vector pen = {0.8f, 0.1f};  // = sum_l w_l (1 - v_l)
  const double C = 2.0;
  const util::Vector out = ProjectCategorical(q, pen, C);
  const double u0 = 0.6 * std::exp(-C * 0.8);
  const double u1 = 0.4 * std::exp(-C * 0.1);
  EXPECT_NEAR(out[0], u0 / (u0 + u1), 1e-5);
  EXPECT_NEAR(out[1], u1 / (u0 + u1), 1e-5);
}

TEST(PosteriorRegTest, PenalizedClassLosesMass) {
  const util::Vector q = {0.5f, 0.5f};
  const util::Vector out = ProjectCategorical(q, {1.0f, 0.0f}, 5.0);
  EXPECT_LT(out[0], 0.05);
  EXPECT_GT(out[1], 0.95);
}

TEST(PosteriorRegTest, RowsNormalized) {
  util::Rng rng(3);
  util::Matrix q(4, 5), pen(4, 5);
  for (int r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (int k = 0; k < 5; ++k) {
      q(r, k) = static_cast<float>(rng.Uniform(0.01, 1.0));
      sum += q(r, k);
      pen(r, k) = static_cast<float>(rng.Uniform(0.0, 2.0));
    }
    for (int k = 0; k < 5; ++k) q(r, k) /= sum;
  }
  const util::Matrix out = ProjectIndependent(q, pen, 3.0);
  for (int r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (int k = 0; k < 5; ++k) {
      EXPECT_GE(out(r, k), 0.0f);
      sum += out(r, k);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(PosteriorRegTest, AllPenalizedFallsBackToInput) {
  // exp(-C * huge) underflows for every class: keep q.
  const util::Vector q = {0.3f, 0.7f};
  const util::Vector out = ProjectCategorical(q, {1e5f, 1e5f}, 10.0);
  EXPECT_NEAR(out[0], 0.3, 1e-5);
  EXPECT_NEAR(out[1], 0.7, 1e-5);
}

TEST(PosteriorRegTest, NullProjectorIsIdentity) {
  NullProjector null;
  util::Matrix q(1, 2);
  q(0, 0) = 0.9f; q(0, 1) = 0.1f;
  data::Instance x;
  const util::Matrix out = null.Project(x, q, 5.0);
  EXPECT_NEAR(out(0, 0), 0.9, 1e-6);
}

// --------------------------------------------------- Sequence projection --

util::Matrix RandomDistributions(int rows, int k, util::Rng* rng) {
  util::Matrix q(rows, k);
  for (int r = 0; r < rows; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < k; ++c) {
      q(r, c) = static_cast<float>(rng->Uniform(0.05, 1.0));
      sum += q(r, c);
    }
    for (int c = 0; c < k; ++c) q(r, c) /= sum;
  }
  return q;
}

class SequenceProjectorTest : public testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SequenceProjectorTest, ForwardBackwardMatchesBruteForce) {
  const auto [t_len, k] = GetParam();
  util::Rng rng(100 + t_len * 10 + k);
  util::Matrix pen(k, k);
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      pen(a, b) = static_cast<float>(rng.Uniform(0.0, 1.0));
    }
  }
  const SequenceRuleProjector proj(pen);
  const util::Matrix q = RandomDistributions(t_len, k, &rng);
  data::Instance x;
  const util::Matrix fast = proj.Project(x, q, 2.5);
  const util::Matrix slow = proj.ProjectBruteForce(q, 2.5);
  for (int t = 0; t < t_len; ++t) {
    for (int c = 0; c < k; ++c) {
      EXPECT_NEAR(fast(t, c), slow(t, c), 1e-4)
          << "T=" << t_len << " K=" << k << " at (" << t << "," << c << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SequenceProjectorTest,
    testing::Values(std::make_pair(1, 3), std::make_pair(2, 3),
                    std::make_pair(4, 3), std::make_pair(6, 2),
                    std::make_pair(5, 4), std::make_pair(3, 5)));

TEST(SequenceProjectorTest, ZeroPenaltyIsIdentity) {
  util::Rng rng(9);
  const int k = 4;
  SequenceRuleProjector proj(util::Matrix(k, k));
  const util::Matrix q = RandomDistributions(6, k, &rng);
  data::Instance x;
  const util::Matrix out = proj.Project(x, q, 5.0);
  for (int t = 0; t < 6; ++t) {
    for (int c = 0; c < k; ++c) EXPECT_NEAR(out(t, c), q(t, c), 1e-5);
  }
}

TEST(SequenceProjectorTest, EmptySequenceSafe) {
  SequenceRuleProjector proj(util::Matrix(3, 3));
  data::Instance x;
  const util::Matrix out = proj.Project(x, util::Matrix(0, 3), 5.0);
  EXPECT_EQ(out.rows(), 0);
}


// The closed form (Eq. 15) must MINIMIZE the Eq. 14 objective
//   KL(q_b || q_a) + C * sum_k q_b(k) * pen(k)
// (with the optimal slack/eta = C, the per-item objective reduces to this).
// Property test: no random distribution on the simplex does better.
TEST(PosteriorRegTest, ClosedFormMinimizesTheVariationalObjective) {
  util::Rng rng(123);
  const int k = 4;
  const double C = 2.0;
  auto objective = [&](const util::Vector& qb, const util::Vector& qa,
                       const util::Vector& pen) {
    double val = 0.0;
    for (int m = 0; m < k; ++m) {
      if (qb[m] > 1e-9) {
        val += qb[m] * std::log(qb[m] / std::max(qa[m], 1e-12f));
      }
      val += C * qb[m] * pen[m];
    }
    return val;
  };
  for (int trial = 0; trial < 30; ++trial) {
    util::Vector qa(k), pen(k);
    float sum = 0.0f;
    for (int m = 0; m < k; ++m) {
      qa[m] = static_cast<float>(rng.Uniform(0.05, 1.0));
      sum += qa[m];
      pen[m] = static_cast<float>(rng.Uniform(0.0, 1.5));
    }
    for (int m = 0; m < k; ++m) qa[m] /= sum;
    const util::Vector qb = ProjectCategorical(qa, pen, C);
    const double best = objective(qb, qa, pen);
    for (int probe = 0; probe < 25; ++probe) {
      util::Vector other(k);
      float osum = 0.0f;
      for (int m = 0; m < k; ++m) {
        other[m] = static_cast<float>(rng.Uniform(0.01, 1.0));
        osum += other[m];
      }
      for (int m = 0; m < k; ++m) other[m] /= osum;
      EXPECT_GE(objective(other, qa, pen), best - 1e-5)
          << "trial " << trial << " probe " << probe;
    }
  }
}

TEST(LukasiewiczPropertyTest, ConjunctionAndDisjunctionAssociative) {
  util::Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const double a = rng.Uniform(), b = rng.Uniform(), c = rng.Uniform();
    EXPECT_NEAR(LukAnd(a, LukAnd(b, c)), LukAnd(LukAnd(a, b), c), 1e-12);
    EXPECT_NEAR(LukOr(a, LukOr(b, c)), LukOr(LukOr(a, b), c), 1e-12);
    // Monotonicity of implication in the consequent.
    const double d = rng.Uniform();
    if (c <= d) {
      EXPECT_LE(LukImplies(a, c), LukImplies(a, d) + 1e-12);
    }
  }
}

TEST(SequenceProjectorTest, ProjectionNeverBreaksNormalization) {
  util::Rng rng(11);
  const int k = 9;
  const SequenceRuleProjector proj(core::BuildNerTransitionPenalty());
  for (int trial = 0; trial < 10; ++trial) {
    const int t_len = 1 + rng.UniformInt(20);
    const util::Matrix q = RandomDistributions(t_len, k, &rng);
    data::Instance x;
    const util::Matrix out = proj.Project(x, q, 5.0);
    for (int t = 0; t < t_len; ++t) {
      double sum = 0.0;
      for (int m = 0; m < k; ++m) {
        EXPECT_GE(out(t, m), 0.0f);
        sum += out(t, m);
      }
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}


TEST(FormulaTest, DeepNestingEvaluates) {
  // ((((a0 & a1) | a2) -> a3) & !a0)
  auto f = Formula::And(
      Formula::Implies(
          Formula::Or(Formula::And(Formula::Atom(0), Formula::Atom(1)),
                      Formula::Atom(2)),
          Formula::Atom(3)),
      Formula::Not(Formula::Atom(0)));
  EXPECT_EQ(f->MaxAtomIndex(), 3);
  // a0=0: negation true; antecedent = a2; implication = min(1, 1-a2+a3).
  EXPECT_NEAR(f->Eval({0.0, 0.9, 0.4, 0.2}),
              LukAnd(LukImplies(0.4, 0.2), 1.0), 1e-12);
}

TEST(RuleSetTest, PenaltyScalesLinearlyInWeights) {
  RuleSet light, heavy;
  const auto formula = Formula::Implies(Formula::Atom(0), Formula::Atom(1));
  light.Add(formula, 0.25, "light");
  heavy.Add(formula, 1.0, "heavy");
  const std::vector<double> atoms = {1.0, 0.3};
  EXPECT_NEAR(heavy.Penalty(atoms), 4.0 * light.Penalty(atoms), 1e-12);
}

TEST(SequenceProjectorTest, StrongerCSharpensTowardValidity) {
  // The probability mass on an invalid transition should be monotonically
  // non-increasing in C.
  const SequenceRuleProjector proj(core::BuildNerTransitionPenalty());
  util::Matrix q(2, data::kNumBioLabels);
  for (int c = 0; c < data::kNumBioLabels; ++c) {
    q(0, c) = 1.0f / data::kNumBioLabels;
    q(1, c) = 1.0f / data::kNumBioLabels;
  }
  q(0, data::kO) = 0.6f;        // token 0 likely O
  q(1, data::kIOrg) = 0.6f;     // token 1 wants I-ORG: invalid after O
  data::Instance x;
  double prev = 1.0;
  for (double c_value : {0.5, 2.0, 5.0, 20.0}) {
    const util::Matrix out = proj.Project(x, q, c_value);
    EXPECT_LE(out(1, data::kIOrg), prev + 1e-6);
    prev = out(1, data::kIOrg);
  }
}

// -------------------------------------------------------- NER rule builds --

TEST(NerRulesTest, ValidityPenaltyFreesValidTransitions) {
  const util::Matrix pen = core::BuildNerTransitionPenalty();
  // Valid predecessors of I-ORG are free.
  EXPECT_NEAR(pen(data::kBOrg, data::kIOrg), 0.0, 1e-6);
  EXPECT_NEAR(pen(data::kIOrg, data::kIOrg), 0.0, 1e-6);
  // Invalid predecessors are fully penalized.
  EXPECT_NEAR(pen(data::kO, data::kIOrg), 1.0, 1e-6);
  EXPECT_NEAR(pen(data::kBPer, data::kIOrg), 1.0, 1e-6);
  EXPECT_NEAR(pen(data::kIMisc, data::kIOrg), 1.0, 1e-6);
  // Transitions into non-inside labels are unconstrained.
  EXPECT_NEAR(pen(data::kO, data::kBPer), 0.0, 1e-6);
  EXPECT_NEAR(pen(data::kIPer, data::kO), 0.0, 1e-6);
  EXPECT_NEAR(pen(data::kO, data::kO), 0.0, 1e-6);
}

TEST(NerRulesTest, WeightedPenaltyMatchesPaperWeights) {
  const util::Matrix pen = core::BuildNerTransitionPenaltyWeighted(0.8, 0.2);
  // Transition into I-ORG under the literal Eqs. 18-19 reading.
  EXPECT_NEAR(pen(data::kBOrg, data::kIOrg), 0.2, 1e-6);  // rule 19 violated
  EXPECT_NEAR(pen(data::kIOrg, data::kIOrg), 0.8, 1e-6);  // rule 18 violated
  EXPECT_NEAR(pen(data::kO, data::kIOrg), 1.0, 1e-6);     // both violated
  EXPECT_NEAR(pen(data::kO, data::kBPer), 0.0, 1e-6);
}

TEST(NerRulesTest, BadRulePenalizesInsideContinuation) {
  const util::Matrix pen = core::BuildBadNerTransitionPenalty();
  EXPECT_NEAR(pen(data::kBOrg, data::kIOrg), 0.0, 1e-6);
  EXPECT_NEAR(pen(data::kIOrg, data::kIOrg), 1.0, 1e-6);  // the bad part
  EXPECT_NEAR(pen(data::kO, data::kIOrg), 1.0, 1e-6);
}

TEST(NerRulesTest, ProjectionRepairsInvalidTransition) {
  // Token 1 is ambiguous between I-ORG (slightly preferred) and I-PER; token
  // 0 is clearly B-PER. The transition rules should flip token 1 to I-PER.
  auto proj = core::MakeNerRuleProjector();
  util::Matrix q(2, data::kNumBioLabels);
  for (int c = 0; c < data::kNumBioLabels; ++c) {
    q(0, c) = 0.01f;
    q(1, c) = 0.01f;
  }
  q(0, data::kBPer) = 0.92f;
  q(1, data::kIOrg) = 0.47f;
  q(1, data::kIPer) = 0.45f;
  data::Instance x;
  const util::Matrix out = proj->Project(x, q, 5.0);
  EXPECT_GT(out(1, data::kIPer), out(1, data::kIOrg));
  // Token 0 stays B-PER.
  EXPECT_GT(out(0, data::kBPer), 0.5f);
}

// --------------------------------------------------- Sentiment but-rule --

TEST(SentimentRulesTest, RuleSetEncodesPaperRules) {
  core::SentimentButRule rule(nullptr, /*marker_token=*/1);
  ASSERT_EQ(rule.rules().size(), 2);
  // For t = +: atoms {1, pb+, 0, pb-} -> penalty = 1 * (1 - pb+).
  EXPECT_NEAR(rule.rules().Penalty({1.0, 0.7, 0.0, 0.3}), 0.3, 1e-9);
  // For t = -: atoms {0, pb+, 1, pb-} -> penalty = 1 - pb-.
  EXPECT_NEAR(rule.rules().Penalty({0.0, 0.7, 1.0, 0.3}), 0.7, 1e-9);
}

}  // namespace
}  // namespace lncl::logic
