// Tests for the register-blocked GEMM microkernel layer
// (src/util/gemm_kernel.{h,cc}): SIMD-vs-scalar bit equality across every
// transpose variant and shape tail, fused-epilogue equivalence, pack-cache
// coherence, the int8 serving kernel, and the LNCL_GEMM_KERNEL dispatch
// override (including its death paths).

#include "util/gemm_kernel.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "nn/quantize.h"
#include "util/matrix.h"

namespace lncl::util::gemm {
namespace {

// Deterministic fill in [-1, 1): a fixed LCG so failures reproduce anywhere.
class TestRng {
 public:
  explicit TestRng(uint32_t seed) : state_(seed) {}
  float Next() {
    state_ = state_ * 1664525u + 1013904223u;
    return static_cast<float>(state_ >> 8) /
               static_cast<float>(1u << 24) * 2.0f -
           1.0f;
  }
  void Fill(std::vector<float>* v) {
    for (float& x : *v) x = Next();
  }

 private:
  uint32_t state_;
};

bool BytesEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Restores the startup dispatch choice after every test so the latched
// ActiveKind never leaks between tests (or into other suites).
class GemmKernelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetActiveKindForTest(ParseKindEnv()); }
};

// Runs the raw kernel under both kinds and returns (scalar, simd) outputs.
struct BothKinds {
  std::vector<float> scalar;
  std::vector<float> simd;
};

BothKinds RunBothKinds(int m, int n, int k, float alpha,
                       const std::vector<float>& a, int lda, Trans ta,
                       const std::vector<float>& b, int ldb, Trans tb,
                       float beta, const std::vector<float>& c_init, int ldc,
                       const float* bias, Act act) {
  BothKinds out;
  out.scalar = c_init;
  SetActiveKindForTest(Kind::kScalar);
  GemmEx(m, n, k, alpha, a.data(), lda, ta, b.data(), ldb, tb, beta,
         out.scalar.data(), ldc, bias, act);
  out.simd = c_init;
  SetActiveKindForTest(Kind::kSimd);
  GemmEx(m, n, k, alpha, a.data(), lda, ta, b.data(), ldb, tb, beta,
         out.simd.data(), ldc, bias, act);
  return out;
}

TEST_F(GemmKernelTest, SimdMatchesScalarBitwiseAllTransVariants) {
  if (!SimdCompiled()) GTEST_SKIP() << "no SIMD kernel in this build";
  // Sizes cross every microkernel boundary: sub-block m tails (1..5), the
  // full 6-row block, one/two-vector n strips, and masked n tails for both
  // 8-lane and 16-lane ISAs.
  const int sizes[] = {1, 3, 6, 16, 17, 33};
  TestRng rng(123);
  for (Trans ta : {Trans::kNo, Trans::kYes}) {
    for (Trans tb : {Trans::kNo, Trans::kYes}) {
      for (int m : sizes) {
        for (int n : sizes) {
          for (int k : sizes) {
            for (float alpha : {1.0f, 0.5f}) {
              for (float beta : {0.0f, 1.0f, 0.5f}) {
                const int lda = ta == Trans::kNo ? k : m;
                const int ldb = tb == Trans::kNo ? n : k;
                std::vector<float> a(static_cast<size_t>(m) * k);
                std::vector<float> b(static_cast<size_t>(k) * n);
                std::vector<float> c(static_cast<size_t>(m) * n);
                rng.Fill(&a);
                rng.Fill(&b);
                rng.Fill(&c);
                const BothKinds r =
                    RunBothKinds(m, n, k, alpha, a, lda, ta, b, ldb, tb,
                                 beta, c, n, nullptr, Act::kNone);
                ASSERT_TRUE(BytesEqual(r.scalar, r.simd))
                    << "ta=" << (ta == Trans::kYes) << " tb="
                    << (tb == Trans::kYes) << " m=" << m << " n=" << n
                    << " k=" << k << " alpha=" << alpha << " beta=" << beta;
              }
            }
          }
        }
      }
    }
  }
}

TEST_F(GemmKernelTest, FusedEpilogueMatchesUnfusedBitwise) {
  // act(alpha*A*B + beta*C + bias) fused must equal the unfused kernel run
  // followed by a separate bias+activation pass that mirrors the documented
  // epilogue order — in both dispatch arms.
  const int m = 7, n = 19, k = 23;
  TestRng rng(99);
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(k) * n);
  std::vector<float> c(static_cast<size_t>(m) * n);
  std::vector<float> bias(n);
  rng.Fill(&a);
  rng.Fill(&b);
  rng.Fill(&c);
  rng.Fill(&bias);
  for (float beta : {0.0f, 0.5f}) {
    for (Act act : {Act::kNone, Act::kRelu, Act::kTanh}) {
      // Reference: scalar unfused + manual epilogue.
      std::vector<float> ref = c;
      SetActiveKindForTest(Kind::kScalar);
      GemmEx(m, n, k, 1.0f, a.data(), k, Trans::kNo, b.data(), n, Trans::kNo,
             beta, ref.data(), n, nullptr, Act::kNone);
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          float t = ref[static_cast<size_t>(i) * n + j] + bias[j];
          if (act == Act::kRelu) t = t > 0.0f ? t : 0.0f;
          if (act == Act::kTanh) t = std::tanh(t);
          ref[static_cast<size_t>(i) * n + j] = t;
        }
      }
      std::vector<float> fused = c;
      GemmEx(m, n, k, 1.0f, a.data(), k, Trans::kNo, b.data(), n, Trans::kNo,
             beta, fused.data(), n, bias.data(), act);
      EXPECT_TRUE(BytesEqual(ref, fused))
          << "scalar fused != unfused, beta=" << beta
          << " act=" << static_cast<int>(act);
      if (SimdCompiled()) {
        std::vector<float> fused_simd = c;
        SetActiveKindForTest(Kind::kSimd);
        GemmEx(m, n, k, 1.0f, a.data(), k, Trans::kNo, b.data(), n,
               Trans::kNo, beta, fused_simd.data(), n, bias.data(), act);
        EXPECT_TRUE(BytesEqual(ref, fused_simd))
            << "simd fused != unfused, beta=" << beta
            << " act=" << static_cast<int>(act);
      }
    }
  }
}

TEST_F(GemmKernelTest, ResultRowsIndependentOfBatchSize) {
  // The contract behind per-instance == batched prediction: row i of an
  // m-row product is byte-equal to the m = 1 product on row i alone.
  const int m = 9, n = 21, k = 17;
  TestRng rng(7);
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(k) * n);
  std::vector<float> bias(n);
  rng.Fill(&a);
  rng.Fill(&b);
  rng.Fill(&bias);
  const std::vector<Kind> kinds =
      SimdCompiled() ? std::vector<Kind>{Kind::kScalar, Kind::kSimd}
                     : std::vector<Kind>{Kind::kScalar};
  for (Kind kind : kinds) {
    SetActiveKindForTest(kind);
    std::vector<float> full(static_cast<size_t>(m) * n, 0.0f);
    GemmEx(m, n, k, 1.0f, a.data(), k, Trans::kNo, b.data(), n, Trans::kNo,
           0.0f, full.data(), n, bias.data(), Act::kRelu);
    for (int i = 0; i < m; ++i) {
      std::vector<float> row(n, 0.0f);
      GemmEx(1, n, k, 1.0f, a.data() + static_cast<size_t>(i) * k, k,
             Trans::kNo, b.data(), n, Trans::kNo, 0.0f, row.data(), n,
             bias.data(), Act::kRelu);
      ASSERT_EQ(0, std::memcmp(row.data(),
                               full.data() + static_cast<size_t>(i) * n,
                               sizeof(float) * n))
          << "row " << i << " kind " << KindName(kind);
    }
  }
}

TEST_F(GemmKernelTest, PackCacheTracksMatrixVersion) {
  // Matrix-level trans_b == kYes products run off the version-keyed pack
  // cache; mutating B must invalidate the cached panel.
  Matrix a(3, 4), b(5, 4), c1, c2;
  TestRng rng(41);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) a(i, j) = rng.Next();
  }
  for (int i = 0; i < b.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) b(i, j) = rng.Next();
  }
  MatMulTransB(a, b, &c1);
  MatMulTransB(a, b, &c2);  // second call: cache hit, same panel
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(),
                           sizeof(float) * c1.size()));
  b(2, 3) += 1.0f;  // bumps b.version()
  MatMulTransB(a, b, &c2);
  // Column 2 of C depends on B row 2; a stale panel would keep the old value.
  EXPECT_NE(c1(0, 2), c2(0, 2));
}

TEST_F(GemmKernelTest, QuantizeRowsRoundTripBound) {
  Matrix w(9, 37);
  TestRng rng(5);
  for (int i = 0; i < w.rows(); ++i) {
    for (int j = 0; j < w.cols(); ++j) w(i, j) = rng.Next() * 3.0f;
  }
  w(4, 0) = 0.0f;  // exercise a row with an exact zero
  nn::RowQuantized qw;
  nn::QuantizeRows(w, &qw);
  ASSERT_EQ(qw.out, w.rows());
  ASSERT_EQ(qw.in, w.cols());
  EXPECT_TRUE(qw.Matches(w));
  for (int j = 0; j < w.rows(); ++j) {
    for (int k = 0; k < w.cols(); ++k) {
      const float deq =
          qw.scale[j] *
          static_cast<float>(qw.q[static_cast<size_t>(k) * w.rows() + j]);
      EXPECT_LE(std::fabs(w(j, k) - deq), qw.scale[j] * 0.5000001f)
          << "row " << j << " col " << k;
    }
  }
  // Mutation invalidates.
  w(0, 0) += 1.0f;
  EXPECT_FALSE(qw.Matches(w));
}

TEST_F(GemmKernelTest, Int8KernelMatchesDocumentedFormulaAndSimdAgrees) {
  const int m = 5, n = 19, k = 23;
  TestRng rng(17);
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> bias(n);
  rng.Fill(&a);
  rng.Fill(&bias);
  std::vector<int8_t> q(static_cast<size_t>(k) * n);
  std::vector<float> scale(n);
  for (size_t i = 0; i < q.size(); ++i) {
    q[i] = static_cast<int8_t>(static_cast<int>(rng.Next() * 127.0f));
  }
  for (float& s : scale) s = 0.01f + std::fabs(rng.Next()) * 0.05f;

  for (Act act : {Act::kNone, Act::kRelu}) {
    // Reference: the documented contract — one fp32 accumulator per element,
    // std::fma over ascending k of the exactly-converted int8 values, then
    // scale, bias, activation.
    std::vector<float> ref(static_cast<size_t>(m) * n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int kk = 0; kk < k; ++kk) {
          acc = std::fma(
              a[static_cast<size_t>(i) * k + kk],
              static_cast<float>(q[static_cast<size_t>(kk) * n + j]), acc);
        }
        float t = acc * scale[j] + bias[j];
        if (act == Act::kRelu) t = t > 0.0f ? t : 0.0f;
        ref[static_cast<size_t>(i) * n + j] = t;
      }
    }
    SetActiveKindForTest(Kind::kScalar);
    std::vector<float> got(static_cast<size_t>(m) * n, 0.0f);
    GemmInt8(m, n, k, a.data(), k, q.data(), scale.data(), got.data(), n,
             bias.data(), act);
    EXPECT_TRUE(BytesEqual(ref, got)) << "scalar int8 formula mismatch";
    if (SimdCompiled()) {
      SetActiveKindForTest(Kind::kSimd);
      std::vector<float> got_simd(static_cast<size_t>(m) * n, 0.0f);
      GemmInt8(m, n, k, a.data(), k, q.data(), scale.data(), got_simd.data(),
               n, bias.data(), act);
      EXPECT_TRUE(BytesEqual(ref, got_simd)) << "simd int8 mismatch";
    }
  }
}

class GemmKernelEnvTest : public GemmKernelTest {
 protected:
  void SetUp() override {
    const char* old = std::getenv("LNCL_GEMM_KERNEL");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
  }
  void TearDown() override {
    if (had_old_) {
      setenv("LNCL_GEMM_KERNEL", old_.c_str(), 1);
    } else {
      unsetenv("LNCL_GEMM_KERNEL");
    }
    GemmKernelTest::TearDown();
  }
  bool had_old_ = false;
  std::string old_;
};

TEST_F(GemmKernelEnvTest, ParseKindEnvSelectsKinds) {
  unsetenv("LNCL_GEMM_KERNEL");
  const Kind best = SimdCompiled() ? Kind::kSimd : Kind::kScalar;
  EXPECT_EQ(best, ParseKindEnv());
  setenv("LNCL_GEMM_KERNEL", "auto", 1);
  EXPECT_EQ(best, ParseKindEnv());
  setenv("LNCL_GEMM_KERNEL", "", 1);
  EXPECT_EQ(best, ParseKindEnv());
  setenv("LNCL_GEMM_KERNEL", "scalar", 1);
  EXPECT_EQ(Kind::kScalar, ParseKindEnv());
  if (SimdCompiled()) {
    setenv("LNCL_GEMM_KERNEL", "simd", 1);
    EXPECT_EQ(Kind::kSimd, ParseKindEnv());
  }
}

using GemmKernelEnvDeathTest = GemmKernelEnvTest;

TEST_F(GemmKernelEnvDeathTest, InvalidValueAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  setenv("LNCL_GEMM_KERNEL", "avx9000", 1);
  EXPECT_DEATH(ParseKindEnv(), "invalid value");
  if (!SimdCompiled()) {
    setenv("LNCL_GEMM_KERNEL", "simd", 1);
    EXPECT_DEATH(ParseKindEnv(), "no SIMD kernel");
  }
}

}  // namespace
}  // namespace lncl::util::gemm
