#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "crowd/simulator.h"
#include "data/bio.h"
#include "data/ner_gen.h"
#include "data/sentiment_gen.h"
#include "eval/metrics.h"
#include "inference/bsc_seq.h"
#include "inference/catd.h"
#include "inference/chain.h"
#include "inference/dawid_skene.h"
#include "inference/glad.h"
#include "inference/hmm_crowd.h"
#include "inference/ibcc.h"
#include "inference/mace.h"
#include "inference/majority_vote.h"
#include "inference/pm.h"
#include "inference/truth_inference.h"
#include "inference/zencrowd.h"
#include "util/rng.h"

namespace lncl::inference {
namespace {

using util::Rng;

// Shared fixture: a classification corpus with a simulated crowd.
class ClassificationInferenceTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(123);
    data::SentimentGenConfig gcfg;
    corpus_ = new data::SentimentCorpus(
        data::GenerateSentimentCorpus(gcfg, 600, 50, 50, rng_));
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 40;
    sim_ = new crowd::CrowdSimulator(
        crowd::CrowdSimulator::MakeClassification(ccfg, 2, rng_));
    annotations_ = new crowd::AnnotationSet(
        sim_->Annotate(corpus_->train, rng_));
    items_ = new std::vector<int>(ItemsPerInstance(corpus_->train));
  }
  static void TearDownTestSuite() {
    delete items_;
    delete annotations_;
    delete sim_;
    delete corpus_;
    delete rng_;
  }

  static double RunAccuracy(const TruthInference& method) {
    Rng rng(7);
    const auto posteriors = method.Infer(*annotations_, *items_, &rng);
    return eval::PosteriorAccuracy(posteriors, corpus_->train);
  }

  static Rng* rng_;
  static data::SentimentCorpus* corpus_;
  static crowd::CrowdSimulator* sim_;
  static crowd::AnnotationSet* annotations_;
  static std::vector<int>* items_;
};

Rng* ClassificationInferenceTest::rng_ = nullptr;
data::SentimentCorpus* ClassificationInferenceTest::corpus_ = nullptr;
crowd::CrowdSimulator* ClassificationInferenceTest::sim_ = nullptr;
crowd::AnnotationSet* ClassificationInferenceTest::annotations_ = nullptr;
std::vector<int>* ClassificationInferenceTest::items_ = nullptr;

TEST_F(ClassificationInferenceTest, FlattenRoundTrip) {
  const ItemView view = FlattenItems(*annotations_, *items_);
  EXPECT_EQ(view.items.size(), static_cast<size_t>(corpus_->train.size()));
  EXPECT_EQ(view.num_classes, 2);
  long labels = 0;
  for (const auto& item : view.items) labels += item.labels.size();
  EXPECT_EQ(labels, annotations_->TotalAnnotations());
}

TEST_F(ClassificationInferenceTest, MajorityVoteBetterThanChance) {
  MajorityVote mv;
  EXPECT_GT(RunAccuracy(mv), 0.62);  // default crowd config is quite noisy
}

TEST_F(ClassificationInferenceTest, DawidSkeneBeatsMajorityVote) {
  MajorityVote mv;
  DawidSkene ds;
  EXPECT_GT(RunAccuracy(ds), RunAccuracy(mv));
}

TEST_F(ClassificationInferenceTest, GladBeatsMajorityVote) {
  MajorityVote mv;
  Glad glad;
  EXPECT_GT(RunAccuracy(glad), RunAccuracy(mv));
}

TEST_F(ClassificationInferenceTest, IbccCompetitiveWithDs) {
  DawidSkene ds;
  Ibcc ibcc;
  EXPECT_GT(RunAccuracy(ibcc), RunAccuracy(ds) - 0.02);
}

TEST_F(ClassificationInferenceTest, PmAndCatdBeatMajorityVote) {
  MajorityVote mv;
  Pm pm;
  Catd catd;
  const double mv_acc = RunAccuracy(mv);
  EXPECT_GE(RunAccuracy(pm), mv_acc - 0.005);
  EXPECT_GE(RunAccuracy(catd), mv_acc - 0.005);
}

TEST_F(ClassificationInferenceTest, DsRecoversAnnotatorReliabilityOrdering) {
  DawidSkene ds;
  const ItemView view = FlattenItems(*annotations_, *items_);
  crowd::ConfusionSet confusions;
  ds.Run(view, 0.0, &confusions);
  const crowd::ConfusionSet empirical =
      crowd::EmpiricalConfusions(*annotations_, corpus_->train);
  const auto labels = annotations_->LabelsPerAnnotator();
  // Estimated reliabilities should correlate with the empirical truth.
  double cov = 0.0, ve = 0.0, va = 0.0, me = 0.0, ma = 0.0;
  int n = 0;
  for (size_t j = 0; j < confusions.size(); ++j) {
    if (labels[j] < 30) continue;
    me += confusions[j].Reliability();
    ma += empirical[j].Reliability();
    ++n;
  }
  ASSERT_GT(n, 5);
  me /= n;
  ma /= n;
  for (size_t j = 0; j < confusions.size(); ++j) {
    if (labels[j] < 30) continue;
    const double de = confusions[j].Reliability() - me;
    const double da = empirical[j].Reliability() - ma;
    cov += de * da;
    ve += de * de;
    va += da * da;
  }
  EXPECT_GT(cov / std::sqrt(ve * va), 0.7);
}

TEST_F(ClassificationInferenceTest, GladEstimatesAbilityOrdering) {
  Glad glad;
  const auto detailed = glad.RunDetailed(*annotations_, *items_);
  const crowd::ConfusionSet empirical =
      crowd::EmpiricalConfusions(*annotations_, corpus_->train);
  const auto labels = annotations_->LabelsPerAnnotator();
  // The most able annotator (by alpha) among heavy labelers should have
  // above-average empirical accuracy.
  int best = -1;
  double best_alpha = -1e9;
  for (size_t j = 0; j < detailed.ability.size(); ++j) {
    if (labels[j] < 50) continue;
    if (detailed.ability[j] > best_alpha) {
      best_alpha = detailed.ability[j];
      best = static_cast<int>(j);
    }
  }
  ASSERT_GE(best, 0);
  EXPECT_GT(empirical[best].Reliability(), 0.7);
}


TEST_F(ClassificationInferenceTest, MaceBeatsMajorityVote) {
  MajorityVote mv;
  Mace mace;
  EXPECT_GT(RunAccuracy(mace), RunAccuracy(mv));
}


TEST_F(ClassificationInferenceTest, ZenCrowdBeatsMajorityVote) {
  MajorityVote mv;
  ZenCrowd zc;
  EXPECT_GT(RunAccuracy(zc), RunAccuracy(mv));
}

TEST(ZenCrowdToyTest, ReliabilityOrderingRecovered) {
  Rng rng(15);
  const int n = 400;
  crowd::AnnotationSet ann(n, 3, 3);
  data::Dataset d;
  d.num_classes = 3;
  for (int i = 0; i < n; ++i) {
    data::Instance x;
    x.tokens = {1};
    x.label = rng.UniformInt(3);
    d.instances.push_back(x);
    const int truth = d.instances[i].label;
    auto noisy = [&](double p) {
      if (rng.Bernoulli(p)) return truth;
      int other = rng.UniformInt(2);
      if (other >= truth) ++other;
      return other;
    };
    ann.instance(i).entries.push_back({0, {noisy(0.95)}});
    ann.instance(i).entries.push_back({1, {noisy(0.7)}});
    ann.instance(i).entries.push_back({2, {noisy(0.4)}});
  }
  ZenCrowd zc;
  const auto detailed = zc.RunDetailed(ann, std::vector<int>(n, 1));
  EXPECT_GT(detailed.reliability[0], detailed.reliability[1]);
  EXPECT_GT(detailed.reliability[1], detailed.reliability[2]);
  EXPECT_NEAR(detailed.reliability[0], 0.95, 0.07);
  EXPECT_GT(eval::PosteriorAccuracy(detailed.posteriors, d), 0.9);
}

TEST(MaceToyTest, DetectsConstantClassSpammer) {
  Rng rng(8);
  const int n = 300;
  crowd::AnnotationSet ann(n, 3, 2);
  data::Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < n; ++i) {
    data::Instance x;
    x.tokens = {1};
    x.label = rng.UniformInt(2);
    d.instances.push_back(x);
    const int truth = d.instances[i].label;
    ann.instance(i).entries.push_back({0, {truth}});  // competent
    const int noisy = rng.Bernoulli(0.8) ? truth : 1 - truth;
    ann.instance(i).entries.push_back({1, {noisy}});  // decent
    ann.instance(i).entries.push_back({2, {1}});      // constant-1 spammer
  }
  Mace mace;
  const auto detailed = mace.RunDetailed(ann, std::vector<int>(n, 1));
  // MACE's competence is known to be downward-biased (a spamming annotator
  // can emit the correct label too), so assert the ordering plus loose
  // absolute bands.
  // (with only 3 annotators the 100% and 80% annotators are near-
  // indistinguishable; what matters is that both dominate the spammer)
  EXPECT_GT(detailed.competence[0], 0.7);
  EXPECT_GT(detailed.competence[1], detailed.competence[2]);
  EXPECT_LT(detailed.competence[2], 0.35);
  EXPECT_GT(eval::PosteriorAccuracy(detailed.posteriors, d), 0.85);
}

TEST(MaceToyTest, SpamDistributionIgnoredForHonestCrowd) {
  // Everyone perfect: competence should approach 1 for all.
  Rng rng(9);
  const int n = 150;
  crowd::AnnotationSet ann(n, 4, 3);
  for (int i = 0; i < n; ++i) {
    const int truth = rng.UniformInt(3);
    for (int j = 0; j < 4; ++j) {
      ann.instance(i).entries.push_back({j, {truth}});
    }
  }
  Mace mace;
  const auto detailed = mace.RunDetailed(ann, std::vector<int>(n, 1));
  for (double c : detailed.competence) EXPECT_GT(c, 0.8);
}

// --------------------------------------------------------------- Chain --

TEST(ChainTest, UniformEverythingGivesUniformMarginals) {
  const int k = 3;
  util::Vector prior(k, 1.0f / k);
  util::Matrix transition(k, k, 1.0f / k);
  util::Matrix emission(4, k, 1.0f);
  util::Matrix gamma;
  ChainForwardBackward(prior, transition, emission, &gamma, nullptr);
  for (int t = 0; t < 4; ++t) {
    for (int m = 0; m < k; ++m) EXPECT_NEAR(gamma(t, m), 1.0 / k, 1e-5);
  }
}

TEST(ChainTest, StrongEmissionDominates) {
  const int k = 2;
  util::Vector prior(k, 0.5f);
  util::Matrix transition(k, k, 0.5f);
  util::Matrix emission(3, k, 1e-3f);
  emission(0, 0) = 1.0f;
  emission(1, 1) = 1.0f;
  emission(2, 0) = 1.0f;
  util::Matrix gamma;
  ChainForwardBackward(prior, transition, emission, &gamma, nullptr);
  EXPECT_GT(gamma(0, 0), 0.95f);
  EXPECT_GT(gamma(1, 1), 0.95f);
  EXPECT_GT(gamma(2, 0), 0.95f);
}

TEST(ChainTest, TransitionSmoothsAmbiguousStep) {
  // Middle step has flat emission; sticky transitions should pull it toward
  // the neighbors' state.
  const int k = 2;
  util::Vector prior(k, 0.5f);
  util::Matrix transition(k, k);
  transition(0, 0) = 0.9f; transition(0, 1) = 0.1f;
  transition(1, 0) = 0.1f; transition(1, 1) = 0.9f;
  util::Matrix emission(3, k, 1.0f);
  emission(0, 1) = 0.01f;
  emission(2, 1) = 0.01f;
  util::Matrix gamma;
  ChainForwardBackward(prior, transition, emission, &gamma, nullptr);
  EXPECT_GT(gamma(1, 0), 0.9f);
}

TEST(ChainTest, XiSumsAccumulate) {
  const int k = 2;
  util::Vector prior(k, 0.5f);
  util::Matrix transition(k, k, 0.5f);
  util::Matrix emission(4, k, 1.0f);
  util::Matrix gamma;
  util::Matrix xi(k, k);
  ChainForwardBackward(prior, transition, emission, &gamma, &xi);
  double total = 0.0;
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) total += xi(a, b);
  }
  EXPECT_NEAR(total, 3.0, 1e-4);  // T-1 pairwise distributions
}

// ----------------------------------------------------- Sequence methods --

class SequenceInferenceTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(321);
    data::NerGenConfig gcfg;
    corpus_ = new data::NerCorpus(
        data::GenerateNerCorpus(gcfg, 250, 30, 30, &rng));
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 25;
    auto sim = crowd::CrowdSimulator::MakeSequence(ccfg, &rng);
    annotations_ = new crowd::AnnotationSet(
        sim.AnnotateSequences(corpus_->train, &rng));
    items_ = new std::vector<int>(ItemsPerInstance(corpus_->train));
  }
  static void TearDownTestSuite() {
    delete items_;
    delete annotations_;
    delete corpus_;
  }

  static double RunF1(const TruthInference& method) {
    Rng rng(7);
    const auto posteriors = method.Infer(*annotations_, *items_, &rng);
    return eval::PosteriorSpanF1(posteriors, corpus_->train).f1;
  }

  static data::NerCorpus* corpus_;
  static crowd::AnnotationSet* annotations_;
  static std::vector<int>* items_;
};

data::NerCorpus* SequenceInferenceTest::corpus_ = nullptr;
crowd::AnnotationSet* SequenceInferenceTest::annotations_ = nullptr;
std::vector<int>* SequenceInferenceTest::items_ = nullptr;

TEST_F(SequenceInferenceTest, TokenMethodsBetterThanNothing) {
  MajorityVote mv;
  EXPECT_GT(RunF1(mv), 0.35);
}

TEST_F(SequenceInferenceTest, DsBeatsMvOnSequences) {
  MajorityVote mv;
  DawidSkene ds;
  EXPECT_GT(RunF1(ds), RunF1(mv));
}

TEST_F(SequenceInferenceTest, HmmCrowdBeatsTokenMv) {
  MajorityVote mv;
  HmmCrowd hmm;
  EXPECT_GT(RunF1(hmm), RunF1(mv));
}

TEST_F(SequenceInferenceTest, BscSeqCompetitiveWithHmmCrowd) {
  HmmCrowd hmm;
  BscSeq bsc;
  EXPECT_GT(RunF1(bsc), RunF1(hmm) - 0.03);
}

TEST_F(SequenceInferenceTest, PosteriorsRowStochastic) {
  Rng rng(7);
  HmmCrowd hmm;
  const auto posteriors = hmm.Infer(*annotations_, *items_, &rng);
  for (size_t i = 0; i < posteriors.size(); i += 40) {
    for (int t = 0; t < posteriors[i].rows(); ++t) {
      double sum = 0.0;
      for (int c = 0; c < posteriors[i].cols(); ++c) {
        sum += posteriors[i](t, c);
      }
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}


TEST(PmToyTest, DownWeightsPersistentlyWrongSource) {
  Rng rng(11);
  const int n = 400;
  crowd::AnnotationSet ann(n, 3, 2);
  data::Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < n; ++i) {
    data::Instance x;
    x.tokens = {1};
    x.label = rng.UniformInt(2);
    d.instances.push_back(x);
    const int truth = d.instances[i].label;
    ann.instance(i).entries.push_back({0, {truth}});
    ann.instance(i).entries.push_back(
        {1, {rng.Bernoulli(0.9) ? truth : 1 - truth}});
    ann.instance(i).entries.push_back({2, {1 - truth}});  // always wrong
  }
  Pm pm;
  Rng run(1);
  const auto q = pm.Infer(ann, std::vector<int>(n, 1), &run);
  // Despite the adversary, weighted voting stays close to the reliable
  // annotators' ceiling (the 3-vote committee cannot fully mute it).
  EXPECT_GT(eval::PosteriorAccuracy(q, d), 0.88);
}

TEST(CatdToyTest, LowVolumeSourceGetsConservativeWeight) {
  // Annotator 2 is perfect but labeled only 5 items; annotator 1 is 85%
  // accurate over everything. CATD must still aggregate sensibly.
  Rng rng(12);
  const int n = 300;
  crowd::AnnotationSet ann(n, 3, 2);
  data::Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < n; ++i) {
    data::Instance x;
    x.tokens = {1};
    x.label = rng.UniformInt(2);
    d.instances.push_back(x);
    const int truth = d.instances[i].label;
    ann.instance(i).entries.push_back({0, {truth}});
    ann.instance(i).entries.push_back(
        {1, {rng.Bernoulli(0.85) ? truth : 1 - truth}});
    if (i < 5) ann.instance(i).entries.push_back({2, {truth}});
  }
  Catd catd;
  Rng run(1);
  const auto q = catd.Infer(ann, std::vector<int>(n, 1), &run);
  EXPECT_GT(eval::PosteriorAccuracy(q, d), 0.85);
}

TEST(IbccToyTest, PriorStabilizesSparseAnnotators) {
  // Sparse labels per annotator: plain DS overfits its confusion estimates;
  // IBCC's diagonal prior must keep the posterior accuracy reasonable.
  Rng rng(13);
  const int n = 120;
  const int annotators = 40;  // each labels ~9 items
  crowd::AnnotationSet ann(n, annotators, 2);
  data::Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < n; ++i) {
    data::Instance x;
    x.tokens = {1};
    x.label = rng.UniformInt(2);
    d.instances.push_back(x);
    for (int j : rng.SampleWithoutReplacement(annotators, 3)) {
      const int truth = d.instances[i].label;
      ann.instance(i).entries.push_back(
          {j, {rng.Bernoulli(0.75) ? truth : 1 - truth}});
    }
  }
  Ibcc ibcc;
  Rng run(1);
  const auto q = ibcc.Infer(ann, std::vector<int>(n, 1), &run);
  EXPECT_GT(eval::PosteriorAccuracy(q, d), 0.75);
}

TEST(HmmCrowdToyTest, TransitionsRepairIsolatedTokenErrors) {
  // Truth: long runs of state 0 with occasional 1s; a noisy annotator flips
  // isolated tokens. The chain prior should smooth isolated flips better
  // than token-wise DS.
  Rng rng(14);
  const int n = 80;
  data::Dataset d;
  d.num_classes = 2;
  d.sequence = true;
  crowd::AnnotationSet ann(n, 4, 2);
  for (int i = 0; i < n; ++i) {
    data::Instance x;
    const int len = 12;
    x.tokens.assign(len, 1);
    x.tag_labels.assign(len, 0);
    // one run of 1s of length 3
    const int start = rng.UniformInt(len - 3);
    for (int t = start; t < start + 3; ++t) x.tag_labels[t] = 1;
    d.instances.push_back(x);
    for (int j = 0; j < 4; ++j) {
      crowd::AnnotatorLabels e;
      e.annotator = j;
      for (int t = 0; t < len; ++t) {
        const int truth = d.instances[i].tag_labels[t];
        e.labels.push_back(rng.Bernoulli(0.8) ? truth : 1 - truth);
      }
      ann.instance(i).entries.push_back(std::move(e));
    }
  }
  HmmCrowd hmm;
  DawidSkene ds;
  Rng run(1);
  const auto items = ItemsPerInstance(d);
  const double hmm_acc =
      eval::PosteriorAccuracy(hmm.Infer(ann, items, &run), d);
  const double ds_acc = eval::PosteriorAccuracy(ds.Infer(ann, items, &run), d);
  EXPECT_GE(hmm_acc, ds_acc - 0.01);
  EXPECT_GT(hmm_acc, 0.9);
}

// ---------------------------------------------- Small planted sanity set --

// Three annotators: two perfect, one adversarial. DS must learn to discount
// the adversary; MV cannot when the adversary teams with one noisy labeler.
TEST(DawidSkeneToyTest, DiscountsAdversarialAnnotator) {
  Rng rng(5);
  const int n = 200;
  data::Dataset d;
  d.num_classes = 2;
  crowd::AnnotationSet ann(n, 3, 2);
  for (int i = 0; i < n; ++i) {
    data::Instance x;
    x.tokens = {1};
    x.label = rng.UniformInt(2);
    d.instances.push_back(x);
    const int truth = d.instances[i].label;
    ann.instance(i).entries.push_back({0, {truth}});  // perfect
    // Good-but-noisy annotator (85%).
    const int noisy = rng.Bernoulli(0.85) ? truth : 1 - truth;
    ann.instance(i).entries.push_back({1, {noisy}});
    // Adversary: always wrong.
    ann.instance(i).entries.push_back({2, {1 - truth}});
  }
  DawidSkene ds;
  Rng run_rng(1);
  const auto q = ds.Infer(ann, std::vector<int>(n, 1), &run_rng);
  EXPECT_GT(eval::PosteriorAccuracy(q, d), 0.97);

  // And the confusion estimate of the adversary has a low diagonal.
  const ItemView view = FlattenItems(ann, std::vector<int>(n, 1));
  crowd::ConfusionSet confusions;
  ds.Run(view, 0.0, &confusions);
  EXPECT_LT(confusions[2].Reliability(), 0.2);
  EXPECT_GT(confusions[0].Reliability(), 0.9);
}

TEST(GladToyTest, HardItemsGetHigherDifficulty) {
  // Annotators agree on easy items, disagree on hard ones.
  Rng rng(6);
  const int n_easy = 100, n_hard = 100;
  crowd::AnnotationSet ann(n_easy + n_hard, 6, 2);
  for (int i = 0; i < n_easy + n_hard; ++i) {
    const bool hard = i >= n_easy;
    for (int j = 0; j < 6; ++j) {
      const int label = hard ? rng.UniformInt(2) : 0;
      ann.instance(i).entries.push_back({j, {label}});
    }
  }
  Glad glad;
  const auto detailed =
      glad.RunDetailed(ann, std::vector<int>(n_easy + n_hard, 1));
  double mean_easy = 0.0, mean_hard = 0.0;
  for (int i = 0; i < n_easy; ++i) mean_easy += detailed.difficulty[i];
  for (int i = n_easy; i < n_easy + n_hard; ++i) {
    mean_hard += detailed.difficulty[i];
  }
  EXPECT_GT(mean_hard / n_hard, mean_easy / n_easy);
}

}  // namespace
}  // namespace lncl::inference
