#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/gradcheck.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/maxpool.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"
#include "nn/serialize.h"
#include "nn/softmax.h"
#include "util/rng.h"

namespace lncl::nn {
namespace {

using util::Matrix;
using util::Rng;
using util::Vector;

Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m(r, c) = static_cast<float>(rng->Gaussian(0.0, scale));
    }
  }
  return m;
}

// ------------------------------------------------------------- Parameter --

TEST(ParameterTest, InitializersProduceBoundedValues) {
  Rng rng(1);
  Matrix m(20, 30);
  GlorotInit(&rng, &m);
  const double bound = std::sqrt(6.0 / 50.0);
  for (int r = 0; r < 20; ++r) {
    for (int c = 0; c < 30; ++c) {
      EXPECT_LE(std::fabs(m(r, c)), bound + 1e-6);
    }
  }
  EXPECT_GT(m.SquaredNorm(), 0.0);
}

TEST(ParameterTest, ZeroGradsAndCount) {
  Parameter a("a", 2, 3), b("b", 1, 4);
  a.grad.Fill(1.0f);
  ZeroGrads({&a, &b});
  EXPECT_DOUBLE_EQ(a.grad.SquaredNorm(), 0.0);
  EXPECT_EQ(CountWeights({&a, &b}), 10u);
}

// ------------------------------------------------------------ Activations --

TEST(ActivationsTest, ReluForwardBackward) {
  Vector x = {-1.0f, 0.0f, 2.0f};
  ReluForward(&x);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[2], 2.0f);
  Vector grad = {5.0f, 5.0f, 5.0f};
  ReluBackward(x, &grad);
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
  EXPECT_FLOAT_EQ(grad[1], 0.0f);  // zero post-activation kills gradient
  EXPECT_FLOAT_EQ(grad[2], 5.0f);
}

TEST(ActivationsTest, SigmoidRange) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6);
  EXPECT_GT(Sigmoid(10.0f), 0.999f);
  EXPECT_LT(Sigmoid(-10.0f), 0.001f);
}

// ---------------------------------------------------------------- Softmax --

TEST(SoftmaxTest, NormalizesAndIsShiftInvariant) {
  Vector p1, p2;
  Softmax({1.0f, 2.0f, 3.0f}, &p1);
  Softmax({101.0f, 102.0f, 103.0f}, &p2);
  double sum = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    sum += p1[i];
    EXPECT_NEAR(p1[i], p2[i], 1e-6);
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(p1[2], p1[1]);
  EXPECT_GT(p1[1], p1[0]);
}

TEST(SoftmaxTest, RowsIndependent) {
  Matrix logits(2, 2);
  logits(0, 0) = 5.0f;
  logits(1, 1) = 5.0f;
  Matrix probs;
  SoftmaxRows(logits, &probs);
  EXPECT_GT(probs(0, 0), 0.99f);
  EXPECT_GT(probs(1, 1), 0.99f);
}

TEST(SoftmaxTest, CrossEntropySoftTargets) {
  const Vector q = {0.5f, 0.5f};
  const Vector p = {0.5f, 0.5f};
  EXPECT_NEAR(CrossEntropy(q, p), std::log(2.0), 1e-6);
  // CE is minimized when p == q (over p in the simplex).
  const Vector p2 = {0.9f, 0.1f};
  EXPECT_GT(CrossEntropy(q, p2), CrossEntropy(q, p));
}

TEST(SoftmaxTest, CrossEntropyGradIsPMinusQ) {
  Vector grad;
  SoftmaxCrossEntropyGrad({0.25f, 0.75f}, {0.5f, 0.5f}, 2.0f, &grad);
  EXPECT_FLOAT_EQ(grad[0], 0.5f);
  EXPECT_FLOAT_EQ(grad[1], -0.5f);
}

TEST(SoftmaxTest, JacobianVecProductMatchesFiniteDifference) {
  Rng rng(3);
  Vector logits = {0.3f, -0.2f, 0.9f, 0.1f};
  Vector p;
  Softmax(logits, &p);
  // Loss L = sum_i g_i * softmax(z)_i with fixed g.
  const Vector g = {0.7f, -0.1f, 0.4f, 1.3f};
  Vector grad_z;
  SoftmaxJacobianVecProduct(p, g, 1.0f, &grad_z);
  const double eps = 1e-4;
  for (size_t i = 0; i < logits.size(); ++i) {
    Vector zp = logits, zm = logits;
    zp[i] += static_cast<float>(eps);
    zm[i] -= static_cast<float>(eps);
    Vector pp, pm;
    Softmax(zp, &pp);
    Softmax(zm, &pm);
    double lp = 0.0, lm = 0.0;
    for (size_t j = 0; j < g.size(); ++j) {
      lp += g[j] * pp[j];
      lm += g[j] * pm[j];
    }
    EXPECT_NEAR(grad_z[i], (lp - lm) / (2.0 * eps), 1e-3);
  }
}

// ---------------------------------------------------------------- Dropout --

TEST(DropoutTest, ZeroRateKeepsEverything) {
  Rng rng(1);
  Vector x = {1.0f, 2.0f, 3.0f};
  std::vector<uint8_t> mask;
  DropoutForward(0.0, &rng, &x, &mask);
  EXPECT_FLOAT_EQ(x[1], 2.0f);
  for (uint8_t m : mask) EXPECT_EQ(m, 1);
}

TEST(DropoutTest, DropRateAndScaling) {
  Rng rng(7);
  const int n = 20000;
  Vector x(n, 1.0f);
  std::vector<uint8_t> mask;
  DropoutForward(0.5, &rng, &x, &mask);
  int kept = 0;
  for (int i = 0; i < n; ++i) {
    if (mask[i]) {
      EXPECT_FLOAT_EQ(x[i], 2.0f);  // inverted dropout scale 1/(1-0.5)
      ++kept;
    } else {
      EXPECT_FLOAT_EQ(x[i], 0.0f);
    }
  }
  EXPECT_NEAR(kept / static_cast<double>(n), 0.5, 0.02);
}

TEST(DropoutTest, BackwardMatchesMask) {
  Rng rng(7);
  Vector x(100, 1.0f);
  std::vector<uint8_t> mask;
  DropoutForward(0.3, &rng, &x, &mask);
  Vector grad(100, 1.0f);
  DropoutBackward(0.3, mask, &grad);
  for (int i = 0; i < 100; ++i) {
    if (mask[i]) {
      EXPECT_NEAR(grad[i], 1.0f / 0.7f, 1e-5);
    } else {
      EXPECT_FLOAT_EQ(grad[i], 0.0f);
    }
  }
}


// -------------------------------------------------------------- Embedding --

TEST(EmbeddingTest, ForwardGathersRows) {
  Matrix init(4, 2);
  init(2, 0) = 5.0f;
  init(2, 1) = 6.0f;
  Embedding emb("e", init);
  Matrix out;
  emb.Forward({2, 0, 9}, &out);
  EXPECT_FLOAT_EQ(out(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 0.0f);  // pad
  EXPECT_FLOAT_EQ(out(2, 1), 0.0f);  // out of range
}

TEST(EmbeddingTest, BackwardScattersAndAccumulates) {
  Matrix init(4, 2);
  Embedding emb("e", init);
  Matrix grad_out(3, 2);
  grad_out(0, 0) = 1.0f;  // token 2
  grad_out(1, 1) = 2.0f;  // token 2 again: accumulates
  grad_out(2, 0) = 7.0f;  // pad: dropped
  emb.Backward({2, 2, 0}, grad_out);
  const Parameter* table = emb.Params()[0];
  EXPECT_FLOAT_EQ(table->grad(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(table->grad(2, 1), 2.0f);
  EXPECT_FLOAT_EQ(table->grad(0, 0), 0.0f);
}

TEST(EmbeddingTest, GradientCheckThroughLinearHead) {
  Rng rng(71);
  Matrix init(8, 3);
  for (int v = 1; v < 8; ++v) {
    for (int d = 0; d < 3; ++d) {
      init(v, d) = static_cast<float>(rng.Gaussian());
    }
  }
  Embedding emb("e", init);
  Linear head("fc", 3, 2, &rng);
  const std::vector<int> tokens = {1, 4, 4, 7};
  const Vector q = {0.2f, 0.8f};

  std::vector<Parameter*> params = emb.Params();
  for (Parameter* p : head.Params()) params.push_back(p);

  auto forward = [&]() {
    Matrix x;
    emb.Forward(tokens, &x);
    // Mean-pool then classify.
    Vector pooled(3, 0.0f);
    for (int t = 0; t < x.rows(); ++t) {
      for (int d = 0; d < 3; ++d) pooled[d] += x(t, d) / x.rows();
    }
    Vector z, p;
    head.Forward(pooled, &z);
    Softmax(z, &p);
    return std::make_pair(pooled, p);
  };
  auto loss_fn = [&]() { return CrossEntropy(q, forward().second); };
  auto compute_grads = [&]() {
    ZeroGrads(params);
    const auto [pooled, p] = forward();
    Vector gz;
    SoftmaxCrossEntropyGrad(q, p, 1.0f, &gz);
    Vector gpooled;
    head.Backward(pooled, gz, &gpooled);
    Matrix gx(static_cast<int>(tokens.size()), 3);
    for (int t = 0; t < gx.rows(); ++t) {
      for (int d = 0; d < 3; ++d) gx(t, d) = gpooled[d] / gx.rows();
    }
    emb.Backward(tokens, gx);
  };
  const GradCheckResult r =
      CheckGradients(loss_fn, compute_grads, params, &rng, 1e-3, 12);
  EXPECT_LT(r.max_rel_error, 2e-2) << "abs " << r.max_abs_error;
}

// ---------------------------------------------------------------- MaxPool --

TEST(MaxPoolTest, ForwardPicksColumnMaxima) {
  Matrix x(3, 2);
  x(0, 0) = 1.0f; x(1, 0) = 5.0f; x(2, 0) = 3.0f;
  x(0, 1) = 9.0f; x(1, 1) = 2.0f; x(2, 1) = 4.0f;
  Vector out;
  std::vector<int> argmax;
  MaxOverTimeForward(x, &out, &argmax);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 9.0f);
  EXPECT_EQ(argmax[0], 1);
  EXPECT_EQ(argmax[1], 0);
}

TEST(MaxPoolTest, BackwardRoutesToWinners) {
  std::vector<int> argmax = {1, 0};
  Matrix grad_x;
  MaxOverTimeBackward(argmax, {2.0f, 3.0f}, 3, &grad_x);
  EXPECT_FLOAT_EQ(grad_x(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(grad_x(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(grad_x(2, 0), 0.0f);
}

// ----------------------------------------------------- Layer grad checks --

// Gradient check for Linear via soft-target CE loss.
TEST(LinearTest, GradientCheck) {
  Rng rng(11);
  Linear layer("fc", 6, 4, &rng);
  const Vector x = {0.5f, -0.3f, 0.8f, 0.1f, -0.9f, 0.2f};
  const Vector q = {0.1f, 0.2f, 0.3f, 0.4f};

  auto loss_fn = [&]() {
    Vector y, p;
    layer.Forward(x, &y);
    Softmax(y, &p);
    return CrossEntropy(q, p);
  };
  auto compute_grads = [&]() {
    ZeroGrads(layer.Params());
    Vector y, p, gz;
    layer.Forward(x, &y);
    Softmax(y, &p);
    SoftmaxCrossEntropyGrad(q, p, 1.0f, &gz);
    layer.Backward(x, gz, nullptr);
  };
  const GradCheckResult r =
      CheckGradients(loss_fn, compute_grads, layer.Params(), &rng, 1e-3, 24);
  EXPECT_LT(r.max_rel_error, 2e-2) << "abs " << r.max_abs_error;
  EXPECT_GT(r.checked, 0);
}

TEST(LinearTest, RowsPathMatchesVectorPath) {
  Rng rng(2);
  Linear layer("fc", 3, 2, &rng);
  Matrix x = RandomMatrix(4, 3, &rng);
  Matrix y_rows;
  layer.ForwardRows(x, &y_rows);
  for (int r = 0; r < 4; ++r) {
    Vector xr(x.Row(r), x.Row(r) + 3), y;
    layer.Forward(xr, &y);
    EXPECT_NEAR(y[0], y_rows(r, 0), 1e-5);
    EXPECT_NEAR(y[1], y_rows(r, 1), 1e-5);
  }
}

TEST(LinearTest, BackwardRowsGradCheck) {
  Rng rng(21);
  Linear layer("fc", 3, 2, &rng);
  const Matrix x = RandomMatrix(5, 3, &rng);
  Matrix q(5, 2);
  for (int r = 0; r < 5; ++r) {
    q(r, 0) = 0.3f;
    q(r, 1) = 0.7f;
  }
  auto loss_fn = [&]() {
    Matrix y, p;
    layer.ForwardRows(x, &y);
    SoftmaxRows(y, &p);
    return CrossEntropyRows(q, p);
  };
  auto compute_grads = [&]() {
    ZeroGrads(layer.Params());
    Matrix y, p, gz;
    layer.ForwardRows(x, &y);
    SoftmaxRows(y, &p);
    SoftmaxCrossEntropyGradRows(q, p, 1.0f, &gz);
    layer.BackwardRows(x, gz, nullptr);
  };
  const GradCheckResult r =
      CheckGradients(loss_fn, compute_grads, layer.Params(), &rng, 1e-3, 24);
  EXPECT_LT(r.max_rel_error, 2e-2);
}

class Conv1dGradTest : public testing::TestWithParam<
                           std::tuple<int, int, Conv1d::Padding>> {};

TEST_P(Conv1dGradTest, GradientCheck) {
  const auto [window, t_len, padding] = GetParam();
  Rng rng(31);
  Conv1d conv("conv", window, 4, 3, padding, &rng);
  const Matrix x = RandomMatrix(t_len, 4, &rng);

  // Loss: sum over all output entries of 0.5 * y^2 (after ReLU-free linear
  // conv) - simple and smooth.
  auto loss_fn = [&]() {
    Matrix y;
    conv.Forward(x, &y);
    return 0.5 * y.SquaredNorm();
  };
  auto compute_grads = [&]() {
    ZeroGrads(conv.Params());
    Matrix y;
    conv.Forward(x, &y);
    conv.Backward(x, y, nullptr);  // dL/dy = y for this loss
  };
  const GradCheckResult r =
      CheckGradients(loss_fn, compute_grads, conv.Params(), &rng, 1e-3, 20);
  EXPECT_LT(r.max_rel_error, 2e-2)
      << "window=" << window << " T=" << t_len;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Conv1dGradTest,
    testing::Values(
        std::make_tuple(3, 8, Conv1d::Padding::kValid),
        std::make_tuple(4, 8, Conv1d::Padding::kValid),
        std::make_tuple(5, 8, Conv1d::Padding::kValid),
        std::make_tuple(3, 3, Conv1d::Padding::kValid),   // T == window
        std::make_tuple(5, 3, Conv1d::Padding::kValid),   // T < window (pad)
        std::make_tuple(5, 9, Conv1d::Padding::kSame),
        std::make_tuple(3, 1, Conv1d::Padding::kSame)));  // single token

TEST(Conv1dTest, OutputShapes) {
  Rng rng(1);
  Conv1d valid("v", 3, 2, 4, Conv1d::Padding::kValid, &rng);
  Conv1d same("s", 5, 2, 4, Conv1d::Padding::kSame, &rng);
  EXPECT_EQ(valid.OutRows(10), 8);
  EXPECT_EQ(valid.OutRows(2), 1);  // shorter than window -> one padded row
  EXPECT_EQ(same.OutRows(10), 10);
  EXPECT_EQ(same.OutRows(1), 1);
}

TEST(Conv1dTest, InputGradientFlows) {
  Rng rng(5);
  Conv1d conv("c", 3, 2, 2, Conv1d::Padding::kSame, &rng);
  const Matrix x = RandomMatrix(6, 2, &rng);
  Matrix y;
  conv.Forward(x, &y);
  Matrix grad_x;
  conv.Backward(x, y, &grad_x);
  EXPECT_EQ(grad_x.rows(), 6);
  EXPECT_EQ(grad_x.cols(), 2);
  EXPECT_GT(grad_x.SquaredNorm(), 0.0);
}

namespace {

// Brute-force conv backward: per output row, per filter, loop over the
// clipped window. Oblivious to the sparse/dense path split in Conv1d.
void NaiveConvBackward(const Conv1d& conv, const Matrix& x,
                       const Matrix& grad_y, const Matrix& w, Matrix* grad_w,
                       Matrix* grad_b, Matrix* grad_x) {
  const int t = x.rows();
  const int window = conv.window();
  const int d = conv.in_dim();
  const int f = conv.filters();
  const int pad_left =
      conv.padding() == Conv1d::Padding::kSame ? (window - 1) / 2 : 0;
  grad_w->Resize(f, window * d);
  grad_b->Resize(1, f);
  grad_x->Resize(t, d);
  for (int o = 0; o < grad_y.rows(); ++o) {
    const int start = o - pad_left;
    for (int fi = 0; fi < f; ++fi) {
      const float g = grad_y(o, fi);
      (*grad_b)(0, fi) += g;
      for (int wr = 0; wr < window; ++wr) {
        const int row = start + wr;
        if (row < 0 || row >= t) continue;
        for (int c = 0; c < d; ++c) {
          (*grad_w)(fi, wr * d + c) += g * x(row, c);
          (*grad_x)(row, c) += g * w(fi, wr * d + c);
        }
      }
    }
  }
}

void ExpectMatrixNear(const Matrix& got, const Matrix& want, float tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (int r = 0; r < got.rows(); ++r) {
    for (int c = 0; c < got.cols(); ++c) {
      EXPECT_NEAR(got(r, c), want(r, c), tol) << "at (" << r << "," << c << ")";
    }
  }
}

}  // namespace

class Conv1dBackwardPathTest
    : public testing::TestWithParam<Conv1d::Padding> {};

TEST_P(Conv1dBackwardPathTest, SparseAndDensePathsMatchBruteForce) {
  // Conv1d::Backward picks an axpy formulation when grad_y is sparse enough
  // (the max-over-time-pooling case: at most one nonzero per filter column)
  // and dense GEMMs otherwise. Both paths must agree with the brute-force
  // reference on the same layer.
  const Conv1d::Padding padding = GetParam();
  Rng rng(99);
  const int t = 10, d = 4, window = 3, f = 6;
  Conv1d conv("c", window, d, f, padding, &rng);
  const Matrix x = RandomMatrix(t, d, &rng);
  Matrix y;
  conv.Forward(x, &y);

  // Sparse grad_y: exactly one surviving row per filter column, like the
  // gradient arriving through max-over-time pooling.
  Matrix sparse_gy(y.rows(), f);
  for (int fi = 0; fi < f; ++fi) {
    sparse_gy(rng.UniformInt(0, y.rows() - 1), fi) =
        static_cast<float>(rng.Gaussian(0.0, 1.0));
  }
  // Dense grad_y: every entry nonzero.
  Matrix dense_gy = RandomMatrix(y.rows(), f, &rng);

  for (const Matrix* gy : {&sparse_gy, &dense_gy}) {
    ZeroGrads(conv.Params());
    Matrix grad_x;
    conv.Backward(x, *gy, &grad_x);

    Matrix want_w, want_b, want_x;
    NaiveConvBackward(conv, x, *gy, conv.Params()[0]->value, &want_w, &want_b,
                      &want_x);
    ExpectMatrixNear(conv.Params()[0]->grad, want_w, 1e-4f);
    ExpectMatrixNear(conv.Params()[1]->grad, want_b, 1e-4f);
    ExpectMatrixNear(grad_x, want_x, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Paddings, Conv1dBackwardPathTest,
                         testing::Values(Conv1d::Padding::kValid,
                                         Conv1d::Padding::kSame));

TEST(GruTest, GradientCheckParameters) {
  Rng rng(41);
  Gru gru("gru", 3, 4, &rng);
  const Matrix x = RandomMatrix(5, 3, &rng);
  Matrix target = RandomMatrix(5, 4, &rng, 0.3);

  auto loss_fn = [&]() {
    Gru::Cache cache;
    Matrix h;
    gru.Forward(x, &cache, &h);
    double loss = 0.0;
    for (int t = 0; t < h.rows(); ++t) {
      for (int c = 0; c < h.cols(); ++c) {
        const double d = h(t, c) - target(t, c);
        loss += 0.5 * d * d;
      }
    }
    return loss;
  };
  auto compute_grads = [&]() {
    ZeroGrads(gru.Params());
    Gru::Cache cache;
    Matrix h;
    gru.Forward(x, &cache, &h);
    Matrix grad_h(h.rows(), h.cols());
    for (int t = 0; t < h.rows(); ++t) {
      for (int c = 0; c < h.cols(); ++c) {
        grad_h(t, c) = h(t, c) - target(t, c);
      }
    }
    gru.Backward(x, cache, grad_h, nullptr);
  };
  const GradCheckResult r =
      CheckGradients(loss_fn, compute_grads, gru.Params(), &rng, 1e-3, 10);
  EXPECT_LT(r.max_rel_error, 3e-2) << "abs " << r.max_abs_error;
}

TEST(GruTest, InputGradientCheck) {
  Rng rng(43);
  Gru gru("gru", 2, 3, &rng);
  Matrix x = RandomMatrix(4, 2, &rng);
  const Matrix target = RandomMatrix(4, 3, &rng, 0.3);

  auto loss_with = [&](const Matrix& input) {
    Gru::Cache cache;
    Matrix h;
    gru.Forward(input, &cache, &h);
    double loss = 0.0;
    for (int t = 0; t < h.rows(); ++t) {
      for (int c = 0; c < h.cols(); ++c) {
        const double d = h(t, c) - target(t, c);
        loss += 0.5 * d * d;
      }
    }
    return loss;
  };
  // Analytic input grad.
  Gru::Cache cache;
  Matrix h;
  gru.Forward(x, &cache, &h);
  Matrix grad_h(h.rows(), h.cols());
  for (int t = 0; t < h.rows(); ++t) {
    for (int c = 0; c < h.cols(); ++c) grad_h(t, c) = h(t, c) - target(t, c);
  }
  Matrix grad_x;
  ZeroGrads(gru.Params());
  gru.Backward(x, cache, grad_h, &grad_x);

  const double eps = 1e-3;
  for (int t = 0; t < x.rows(); ++t) {
    for (int d = 0; d < x.cols(); ++d) {
      const float orig = x(t, d);
      x(t, d) = orig + static_cast<float>(eps);
      const double lp = loss_with(x);
      x(t, d) = orig - static_cast<float>(eps);
      const double lm = loss_with(x);
      x(t, d) = orig;
      EXPECT_NEAR(grad_x(t, d), (lp - lm) / (2.0 * eps), 5e-3)
          << "at (" << t << "," << d << ")";
    }
  }
}

TEST(GruTest, HiddenStatesBounded) {
  Rng rng(45);
  Gru gru("gru", 3, 5, &rng);
  const Matrix x = RandomMatrix(20, 3, &rng, 3.0);
  Gru::Cache cache;
  Matrix h;
  gru.Forward(x, &cache, &h);
  for (int t = 0; t < h.rows(); ++t) {
    for (int c = 0; c < h.cols(); ++c) {
      EXPECT_LE(std::fabs(h(t, c)), 1.0f + 1e-5);  // convex combo of tanh
    }
  }
}


TEST(LstmTest, GradientCheckParameters) {
  Rng rng(61);
  Lstm lstm("lstm", 3, 4, &rng);
  const Matrix x = RandomMatrix(5, 3, &rng);
  Matrix target = RandomMatrix(5, 4, &rng, 0.3);

  auto loss_fn = [&]() {
    Lstm::Cache cache;
    Matrix h;
    lstm.Forward(x, &cache, &h);
    double loss = 0.0;
    for (int t = 0; t < h.rows(); ++t) {
      for (int c = 0; c < h.cols(); ++c) {
        const double d = h(t, c) - target(t, c);
        loss += 0.5 * d * d;
      }
    }
    return loss;
  };
  auto compute_grads = [&]() {
    ZeroGrads(lstm.Params());
    Lstm::Cache cache;
    Matrix h;
    lstm.Forward(x, &cache, &h);
    Matrix grad_h(h.rows(), h.cols());
    for (int t = 0; t < h.rows(); ++t) {
      for (int c = 0; c < h.cols(); ++c) {
        grad_h(t, c) = h(t, c) - target(t, c);
      }
    }
    lstm.Backward(x, cache, grad_h, nullptr);
  };
  const GradCheckResult r =
      CheckGradients(loss_fn, compute_grads, lstm.Params(), &rng, 1e-3, 8);
  EXPECT_LT(r.max_rel_error, 3e-2) << "abs " << r.max_abs_error;
}

TEST(LstmTest, InputGradientCheck) {
  Rng rng(62);
  Lstm lstm("lstm", 2, 3, &rng);
  Matrix x = RandomMatrix(4, 2, &rng);
  const Matrix target = RandomMatrix(4, 3, &rng, 0.3);

  auto loss_with = [&](const Matrix& input) {
    Lstm::Cache cache;
    Matrix h;
    lstm.Forward(input, &cache, &h);
    double loss = 0.0;
    for (int t = 0; t < h.rows(); ++t) {
      for (int c = 0; c < h.cols(); ++c) {
        const double d = h(t, c) - target(t, c);
        loss += 0.5 * d * d;
      }
    }
    return loss;
  };
  Lstm::Cache cache;
  Matrix h;
  lstm.Forward(x, &cache, &h);
  Matrix grad_h(h.rows(), h.cols());
  for (int t = 0; t < h.rows(); ++t) {
    for (int c = 0; c < h.cols(); ++c) grad_h(t, c) = h(t, c) - target(t, c);
  }
  Matrix grad_x;
  ZeroGrads(lstm.Params());
  lstm.Backward(x, cache, grad_h, &grad_x);

  const double eps = 1e-3;
  for (int t = 0; t < x.rows(); ++t) {
    for (int d = 0; d < x.cols(); ++d) {
      const float orig = x(t, d);
      x(t, d) = orig + static_cast<float>(eps);
      const double lp = loss_with(x);
      x(t, d) = orig - static_cast<float>(eps);
      const double lm = loss_with(x);
      x(t, d) = orig;
      EXPECT_NEAR(grad_x(t, d), (lp - lm) / (2.0 * eps), 5e-3);
    }
  }
}

TEST(LstmTest, ForgetBiasInitializedPositive) {
  Rng rng(63);
  Lstm lstm("lstm", 2, 3, &rng);
  // Params order: wi ui bi wf uf bf ...; bf is index 5.
  const Parameter* bf = lstm.Params()[5];
  ASSERT_EQ(bf->name, "lstm.bf");
  for (int k = 0; k < 3; ++k) EXPECT_FLOAT_EQ(bf->value(0, k), 1.0f);
}

TEST(LstmTest, HiddenStatesBounded) {
  Rng rng(64);
  Lstm lstm("lstm", 3, 5, &rng);
  const Matrix x = RandomMatrix(25, 3, &rng, 3.0);
  Lstm::Cache cache;
  Matrix h;
  lstm.Forward(x, &cache, &h);
  for (int t = 0; t < h.rows(); ++t) {
    for (int c = 0; c < h.cols(); ++c) {
      EXPECT_LE(std::fabs(h(t, c)), 1.0f + 1e-5);  // o * tanh(c) in [-1, 1]
    }
  }
}


// Property sweep: gradient checks for both recurrent cells over a grid of
// (in_dim, hidden_dim, T) shapes.
class RecurrentGradSweep
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RecurrentGradSweep, GruMatchesFiniteDifferences) {
  const auto [in_dim, hidden, t_len] = GetParam();
  Rng rng(700 + in_dim * 31 + hidden * 7 + t_len);
  Gru gru("g", in_dim, hidden, &rng);
  const Matrix x = RandomMatrix(t_len, in_dim, &rng);
  const Matrix target = RandomMatrix(t_len, hidden, &rng, 0.3);
  auto loss_fn = [&]() {
    Gru::Cache cache;
    Matrix h;
    gru.Forward(x, &cache, &h);
    double loss = 0.0;
    for (int t = 0; t < h.rows(); ++t) {
      for (int c = 0; c < h.cols(); ++c) {
        const double d = h(t, c) - target(t, c);
        loss += 0.5 * d * d;
      }
    }
    return loss;
  };
  auto compute_grads = [&]() {
    ZeroGrads(gru.Params());
    Gru::Cache cache;
    Matrix h;
    gru.Forward(x, &cache, &h);
    Matrix grad_h(h.rows(), h.cols());
    for (int t = 0; t < h.rows(); ++t) {
      for (int c = 0; c < h.cols(); ++c) grad_h(t, c) = h(t, c) - target(t, c);
    }
    gru.Backward(x, cache, grad_h, nullptr);
  };
  const GradCheckResult r =
      CheckGradients(loss_fn, compute_grads, gru.Params(), &rng, 1e-3, 5);
  EXPECT_LT(r.max_rel_error, 3e-2)
      << in_dim << "x" << hidden << " T=" << t_len;
}

TEST_P(RecurrentGradSweep, LstmMatchesFiniteDifferences) {
  const auto [in_dim, hidden, t_len] = GetParam();
  Rng rng(900 + in_dim * 31 + hidden * 7 + t_len);
  Lstm lstm("l", in_dim, hidden, &rng);
  const Matrix x = RandomMatrix(t_len, in_dim, &rng);
  const Matrix target = RandomMatrix(t_len, hidden, &rng, 0.3);
  auto loss_fn = [&]() {
    Lstm::Cache cache;
    Matrix h;
    lstm.Forward(x, &cache, &h);
    double loss = 0.0;
    for (int t = 0; t < h.rows(); ++t) {
      for (int c = 0; c < h.cols(); ++c) {
        const double d = h(t, c) - target(t, c);
        loss += 0.5 * d * d;
      }
    }
    return loss;
  };
  auto compute_grads = [&]() {
    ZeroGrads(lstm.Params());
    Lstm::Cache cache;
    Matrix h;
    lstm.Forward(x, &cache, &h);
    Matrix grad_h(h.rows(), h.cols());
    for (int t = 0; t < h.rows(); ++t) {
      for (int c = 0; c < h.cols(); ++c) grad_h(t, c) = h(t, c) - target(t, c);
    }
    lstm.Backward(x, cache, grad_h, nullptr);
  };
  const GradCheckResult r =
      CheckGradients(loss_fn, compute_grads, lstm.Params(), &rng, 1e-3, 5);
  EXPECT_LT(r.max_rel_error, 3e-2)
      << in_dim << "x" << hidden << " T=" << t_len;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RecurrentGradSweep,
    testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 1),
                    std::make_tuple(3, 2, 4), std::make_tuple(4, 4, 8),
                    std::make_tuple(5, 3, 12), std::make_tuple(2, 6, 6)));

// -------------------------------------------------------------- Optimizer --

TEST(OptimizerTest, SgdStepMath) {
  Parameter p("p", 1, 2);
  p.value(0, 0) = 1.0f;
  p.value(0, 1) = -1.0f;
  p.grad(0, 0) = 0.5f;
  p.grad(0, 1) = -0.5f;
  Sgd sgd(0.1);
  sgd.Step({&p});
  EXPECT_FLOAT_EQ(p.value(0, 0), 0.95f);
  EXPECT_FLOAT_EQ(p.value(0, 1), -0.95f);
  EXPECT_DOUBLE_EQ(p.grad.SquaredNorm(), 0.0);  // grads cleared
}

TEST(OptimizerTest, SgdMomentumAccumulates) {
  Parameter p("p", 1, 1);
  Sgd sgd(1.0, 0.9);
  p.grad(0, 0) = 1.0f;
  sgd.Step({&p});
  EXPECT_FLOAT_EQ(p.value(0, 0), -1.0f);
  p.grad(0, 0) = 1.0f;
  sgd.Step({&p});
  // velocity = 0.9*1 + 1 = 1.9; value = -1 - 1.9 = -2.9.
  EXPECT_FLOAT_EQ(p.value(0, 0), -2.9f);
}

TEST(OptimizerTest, AdamFirstStepIsLrSized) {
  Parameter p("p", 1, 1);
  Adam adam(0.001);
  p.grad(0, 0) = 123.0f;
  adam.Step({&p});
  // With bias correction, the first step is ~ -lr * sign(g).
  EXPECT_NEAR(p.value(0, 0), -0.001f, 1e-5);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Parameter p("p", 1, 1);
  p.value(0, 0) = 5.0f;
  Adam adam(0.05);
  for (int i = 0; i < 2000; ++i) {
    p.grad(0, 0) = 2.0f * p.value(0, 0);  // d/dx x^2
    adam.Step({&p});
  }
  EXPECT_NEAR(p.value(0, 0), 0.0f, 1e-2);
}

TEST(OptimizerTest, AdadeltaConvergesOnQuadratic) {
  Parameter p("p", 1, 1);
  p.value(0, 0) = 5.0f;
  Adadelta adadelta(1.0);
  for (int i = 0; i < 3000; ++i) {
    p.grad(0, 0) = 2.0f * p.value(0, 0);
    adadelta.Step({&p});
  }
  EXPECT_NEAR(p.value(0, 0), 0.0f, 0.05);
}

TEST(OptimizerTest, L2PullsTowardZero) {
  Parameter p("p", 1, 1);
  p.value(0, 0) = 1.0f;
  Sgd sgd(0.1, 0.0, /*l2=*/1.0);
  p.grad(0, 0) = 0.0f;
  sgd.Step({&p});
  EXPECT_NEAR(p.value(0, 0), 0.9f, 1e-6);
}

TEST(OptimizerTest, FactoryAndSchedule) {
  OptimizerConfig config;
  config.kind = "adadelta";
  config.lr = 1.0;
  config.lr_decay = 0.5;
  config.lr_decay_every = 5;
  auto opt = MakeOptimizer(config);
  EXPECT_EQ(opt->name(), "adadelta");
  ApplyLrSchedule(config, 0, opt.get());
  EXPECT_DOUBLE_EQ(opt->lr(), 1.0);
  ApplyLrSchedule(config, 5, opt.get());
  EXPECT_DOUBLE_EQ(opt->lr(), 0.5);
  ApplyLrSchedule(config, 14, opt.get());
  EXPECT_DOUBLE_EQ(opt->lr(), 0.25);
}


TEST(ClipGradNormTest, RescalesJointNorm) {
  Parameter a("a", 1, 2), b("b", 1, 2);
  a.grad(0, 0) = 3.0f;
  b.grad(0, 1) = 4.0f;  // joint norm 5
  const double pre = ClipGradNorm({&a, &b}, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(a.grad(0, 0), 0.6f, 1e-5);
  EXPECT_NEAR(b.grad(0, 1), 0.8f, 1e-5);
  // Below the threshold: untouched.
  const double pre2 = ClipGradNorm({&a, &b}, 10.0);
  EXPECT_NEAR(pre2, 1.0, 1e-5);
  EXPECT_NEAR(a.grad(0, 0), 0.6f, 1e-5);
}

TEST(ClipGradNormTest, DisabledWhenMaxNormNonPositive) {
  Parameter a("a", 1, 1);
  a.grad(0, 0) = 100.0f;
  ClipGradNorm({&a}, 0.0);
  EXPECT_FLOAT_EQ(a.grad(0, 0), 100.0f);
}

TEST(OptimizerTest, ClipNormLimitsStep) {
  Parameter p("p", 1, 1);
  Sgd sgd(1.0);
  sgd.set_clip_norm(0.5);
  p.grad(0, 0) = 10.0f;
  sgd.Step({&p});
  EXPECT_NEAR(p.value(0, 0), -0.5f, 1e-5);  // clipped to norm 0.5
}


TEST(Conv1dTest, SingleRowSameEqualsValidOnPaddedInput) {
  // A kSame conv at position t sees the zero-padded window centered at t; a
  // kValid conv over an explicitly padded input must agree.
  Rng rng(81);
  Conv1d same("s", 3, 2, 2, Conv1d::Padding::kSame, &rng);
  Matrix x = RandomMatrix(5, 2, &rng);
  Matrix y_same;
  same.Forward(x, &y_same);

  // Explicit zero padding by (window-1)/2 = 1 on both sides.
  Matrix padded(7, 2);
  for (int t = 0; t < 5; ++t) {
    for (int d = 0; d < 2; ++d) padded(t + 1, d) = x(t, d);
  }
  Conv1d valid("v", 3, 2, 2, Conv1d::Padding::kValid, &rng);
  // Copy weights from `same` so the two convs are identical.
  valid.Params()[0]->value = same.Params()[0]->value;
  valid.Params()[1]->value = same.Params()[1]->value;
  Matrix y_valid;
  valid.Forward(padded, &y_valid);
  ASSERT_EQ(y_valid.rows(), y_same.rows());
  for (int t = 0; t < y_same.rows(); ++t) {
    for (int f = 0; f < 2; ++f) {
      EXPECT_NEAR(y_same(t, f), y_valid(t, f), 1e-5);
    }
  }
}

TEST(GruTest, DeterministicForward) {
  Rng rng(82);
  Gru gru("g", 3, 4, &rng);
  const Matrix x = RandomMatrix(6, 3, &rng);
  Gru::Cache c1, c2;
  Matrix h1, h2;
  gru.Forward(x, &c1, &h1);
  gru.Forward(x, &c2, &h2);
  for (int t = 0; t < 6; ++t) {
    for (int k = 0; k < 4; ++k) EXPECT_FLOAT_EQ(h1(t, k), h2(t, k));
  }
}

TEST(OptimizerTest, StateSurvivesAcrossDifferentParamSets) {
  // The per-parameter state map is keyed by address: feeding a second
  // parameter does not disturb the first one's momenta.
  Parameter a("a", 1, 1), b("b", 1, 1);
  Adam adam(0.1);
  a.grad(0, 0) = 1.0f;
  adam.Step({&a});
  const float a_after_one = a.value(0, 0);
  b.grad(0, 0) = 1.0f;
  adam.Step({&b});
  EXPECT_FLOAT_EQ(a.value(0, 0), a_after_one);  // untouched
  EXPECT_LT(b.value(0, 0), 0.0f);               // own first step
}

TEST(OptimizerTest, LrScheduleOffByDefault) {
  OptimizerConfig config;
  config.lr = 0.7;
  auto opt = MakeOptimizer(config);
  ApplyLrSchedule(config, 100, opt.get());
  EXPECT_DOUBLE_EQ(opt->lr(), 0.7);  // untouched: schedule disabled
}

// -------------------------------------------------------------- Serialize --


TEST(SerializeTest, EmptyParamListRoundTrips) {
  std::stringstream ss;
  SaveParams(ss, {});
  EXPECT_TRUE(LoadParams(ss, {}));
}

TEST(SoftmaxTest, ExtremeLogitsStayFinite) {
  Vector p;
  Softmax({1e4f, -1e4f}, &p);
  EXPECT_NEAR(p[0], 1.0, 1e-6);
  EXPECT_NEAR(p[1], 0.0, 1e-6);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(SoftmaxTest, CrossEntropyClampsZeroProbability) {
  // q puts mass where p is exactly zero: loss must be finite (clamped).
  const double loss = CrossEntropy({1.0f, 0.0f}, {0.0f, 1.0f});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 10.0);
}

TEST(SerializeTest, RoundTrip) {
  Rng rng(51);
  Parameter a("layer.w", 3, 4), b("layer.b", 1, 4);
  GlorotInit(&rng, &a.value);
  GlorotInit(&rng, &b.value);
  std::stringstream ss;
  SaveParams(ss, {&a, &b});

  Parameter a2("layer.w", 3, 4), b2("layer.b", 1, 4);
  ASSERT_TRUE(LoadParams(ss, {&a2, &b2}));
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(a2.value(r, c), a.value(r, c));
  }
}

TEST(SerializeTest, RejectsMismatchedNameOrShape) {
  Parameter a("x", 2, 2);
  std::stringstream ss;
  SaveParams(ss, {&a});
  Parameter wrong_name("y", 2, 2);
  EXPECT_FALSE(LoadParams(ss, {&wrong_name}));

  std::stringstream ss2;
  SaveParams(ss2, {&a});
  Parameter wrong_shape("x", 2, 3);
  EXPECT_FALSE(LoadParams(ss2, {&wrong_shape}));
}

TEST(SerializeTest, SnapshotRestore) {
  Parameter a("a", 1, 2);
  a.value(0, 0) = 1.0f;
  const auto snap = SnapshotValues({&a});
  a.value(0, 0) = 99.0f;
  RestoreValues(snap, {&a});
  EXPECT_FLOAT_EQ(a.value(0, 0), 1.0f);
}

}  // namespace
}  // namespace lncl::nn
