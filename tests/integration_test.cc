// End-to-end integration tests exercising the complete Logic-LNCL pipeline
// on small but realistic versions of the paper's two applications. These are
// the "shape" checks behind Tables II-IV at miniature scale: the ordering of
// methods should already be visible.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/two_stage.h"
#include "core/logic_lncl.h"
#include "core/ner_rules.h"
#include "core/sentiment_rules.h"
#include "crowd/simulator.h"
#include "crowd/weak_supervision.h"
#include "data/bio.h"
#include "data/ner_gen.h"
#include "data/sentiment_gen.h"
#include "eval/metrics.h"
#include "eval/reliability.h"
#include "inference/majority_vote.h"
#include "models/ner_tagger.h"
#include "models/text_cnn.h"
#include "util/rng.h"

namespace lncl {
namespace {

using util::Rng;

// ------------------------------------------------------- Sentiment pipeline

class SentimentPipelineTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2024);
    data::SentimentGenConfig gcfg;
    corpus_ = data::GenerateSentimentCorpus(gcfg, 500, 150, 150, &rng);
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 30;
    sim_ = std::make_unique<crowd::CrowdSimulator>(
        crowd::CrowdSimulator::MakeClassification(ccfg, 2, &rng));
    annotations_ = std::make_unique<crowd::AnnotationSet>(
        sim_->Annotate(corpus_.train, &rng));
    models::TextCnnConfig mcfg;
    mcfg.feature_maps = 8;
    factory_ = models::TextCnn::Factory(mcfg, corpus_.embeddings);
  }

  core::LogicLnclConfig Config() const {
    core::LogicLnclConfig config;
    config.epochs = 8;
    config.batch_size = 32;
    config.patience = 8;
    config.k_schedule = core::SentimentKSchedule();
    config.optimizer.kind = "adadelta";
    config.optimizer.lr = 1.0;
    return config;
  }

  data::SentimentCorpus corpus_;
  std::unique_ptr<crowd::CrowdSimulator> sim_;
  std::unique_ptr<crowd::AnnotationSet> annotations_;
  models::ModelFactory factory_;
};

TEST_F(SentimentPipelineTest, LogicLnclEndToEnd) {
  Rng rng(1);
  core::LogicLncl learner(Config(), factory_, nullptr);
  // Wire the but-rule to the learner's own evolving model: construct first
  // with null, then refit with the projector bound to the model pointer.
  // (The public API allows building the projector against learner.model()
  // only after Fit created the model; the bench harness uses a two-phase
  // construction helper. Here we simply check the null-projector path and
  // the projector math separately in core_test.)
  const core::LogicLnclResult result =
      learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  const double student_acc = eval::Accuracy(
      [&](const data::Instance& x) { return learner.PredictStudent(x); },
      corpus_.test);
  EXPECT_GT(student_acc, 0.65);
  EXPECT_GT(result.best_dev_score, 0.65);
}

TEST_F(SentimentPipelineTest, EmInferenceBeatsMajorityVote) {
  Rng rng(2);
  core::LogicLncl learner(Config(), factory_, nullptr);
  learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  const double em_inference =
      eval::PosteriorAccuracy(learner.qf(), corpus_.train);
  const auto mv = annotations_->MajorityVote(
      inference::ItemsPerInstance(corpus_.train));
  const double mv_inference = eval::PosteriorAccuracy(mv, corpus_.train);
  EXPECT_GT(em_inference, mv_inference);
}

TEST_F(SentimentPipelineTest, ConfusionEstimatesTrackTruth) {
  Rng rng(3);
  core::LogicLncl learner(Config(), factory_, nullptr);
  learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  const crowd::ConfusionSet empirical =
      crowd::EmpiricalConfusions(*annotations_, corpus_.train);
  const eval::ReliabilityReport report = eval::CompareReliability(
      learner.confusions(), empirical, annotations_->LabelsPerAnnotator(),
      /*min_labels=*/5);
  EXPECT_GT(report.pearson_correlation, 0.6);
  EXPECT_LT(report.mean_abs_reliability_error, 0.15);
}


// ------------------------------------------------- Weak supervision E2E --

TEST_F(SentimentPipelineTest, WeakSupervisionEndToEnd) {
  // Labeling functions replace the crowd entirely; the same learner must
  // still beat a plain MV classifier trained on the LF votes.
  Rng rng(31);
  const auto functions = crowd::MakeSentimentLabelingFunctions(
      corpus_.vocab, /*per_class=*/4, /*triggers_each=*/8, /*fire_prob=*/0.9,
      &rng);
  const crowd::AnnotationSet lf_ann = crowd::ApplyLabelingFunctions(
      functions, corpus_.train, 2, &rng);

  core::LogicLncl learner(Config(), factory_, nullptr);
  learner.Fit(corpus_.train, lf_ann, corpus_.dev, &rng);
  const double em_acc = eval::Accuracy(
      [&](const data::Instance& x) { return learner.PredictStudent(x); },
      corpus_.test);
  EXPECT_GT(em_acc, 0.65);

  // At this miniature scale the EM aggregate can trail raw LF voting by a
  // hair (labeling functions violate the conditional-independence
  // assumption); require it to stay competitive. The larger-scale sweep in
  // bench/ext_weak_supervision shows the positive gap.
  const double inference =
      eval::PosteriorAccuracy(learner.qf(), corpus_.train);
  const auto mv = lf_ann.MajorityVote(
      inference::ItemsPerInstance(corpus_.train));
  EXPECT_GT(inference, eval::PosteriorAccuracy(mv, corpus_.train) - 0.03);
}

// ------------------------------------------------------------ NER pipeline

class NerPipelineTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(4048);
    data::NerGenConfig gcfg;
    corpus_ = data::GenerateNerCorpus(gcfg, 400, 100, 100, &rng);
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 20;
    auto sim = crowd::CrowdSimulator::MakeSequence(ccfg, &rng);
    annotations_ = std::make_unique<crowd::AnnotationSet>(
        sim.AnnotateSequences(corpus_.train, &rng));
    models::NerTaggerConfig mcfg;
    mcfg.conv_features = 32;
    mcfg.gru_hidden = 16;
    factory_ = models::NerTagger::Factory(mcfg, corpus_.embeddings);
    projector_ = core::MakeNerRuleProjector();
  }

  core::LogicLnclConfig Config(bool rules) const {
    core::LogicLnclConfig config;
    config.epochs = 14;
    config.batch_size = 16;
    config.patience = 14;
    config.weighted_loss = true;
    config.k_schedule = core::NerKSchedule();
    config.use_rules_in_training = rules;
    config.optimizer.kind = "adam";
    config.optimizer.lr = 0.002;
    return config;
  }

  data::NerCorpus corpus_;
  std::unique_ptr<crowd::AnnotationSet> annotations_;
  models::ModelFactory factory_;
  std::unique_ptr<logic::SequenceRuleProjector> projector_;
};

TEST_F(NerPipelineTest, LogicLnclWithTransitionRulesEndToEnd) {
  Rng rng(1);
  core::LogicLncl learner(Config(true), factory_, projector_.get());
  const core::LogicLnclResult result =
      learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  EXPECT_GT(result.best_dev_score, 0.2);
  const eval::PrF1 student = eval::SpanF1(
      [&](const data::Instance& x) { return learner.PredictStudent(x); },
      corpus_.test);
  EXPECT_GT(student.f1, 0.2);
}

TEST_F(NerPipelineTest, RulesImproveInferenceOverNoRules) {
  // The headline claim of the paper at miniature scale: distilling the
  // transition rules improves the truth estimates.
  Rng rng_a(7), rng_b(7);
  core::LogicLncl with_rules(Config(true), factory_, projector_.get());
  with_rules.Fit(corpus_.train, *annotations_, corpus_.dev, &rng_a);
  core::LogicLncl without_rules(Config(false), factory_, nullptr);
  without_rules.Fit(corpus_.train, *annotations_, corpus_.dev, &rng_b);

  const double f1_rules =
      eval::PosteriorSpanF1(with_rules.qf(), corpus_.train).f1;
  const double f1_plain =
      eval::PosteriorSpanF1(without_rules.qf(), corpus_.train).f1;
  EXPECT_GT(f1_rules, f1_plain - 0.01);
}

TEST_F(NerPipelineTest, TeacherProjectionRepairsInvalidSequences) {
  Rng rng(9);
  core::LogicLncl learner(Config(true), factory_, projector_.get());
  learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  // Count BIO violations in argmax decodings.
  long violations_student = 0, violations_teacher = 0;
  for (const data::Instance& x : corpus_.test.instances) {
    const auto s = eval::ArgmaxRows(learner.PredictStudent(x));
    const auto t = eval::ArgmaxRows(learner.PredictTeacher(x));
    violations_student += !data::IsValidBioSequence(s);
    violations_teacher += !data::IsValidBioSequence(t);
  }
  EXPECT_LE(violations_teacher, violations_student);
}

TEST_F(NerPipelineTest, GoldUpperBoundBeatsMvClassifier) {
  baselines::TwoStageConfig config;
  config.epochs = 14;
  config.patience = 14;
  config.batch_size = 16;
  config.optimizer.kind = "adam";
  config.optimizer.lr = 0.002;

  Rng rng(11);
  baselines::TwoStage gold(config, factory_);
  gold.FitOnTargets(corpus_.train, baselines::GoldTargets(corpus_.train),
                    corpus_.dev, &rng);
  const double gold_f1 = eval::SpanF1(
      [&](const data::Instance& x) { return gold.Predict(x); },
      corpus_.test).f1;

  baselines::TwoStage mv_classifier(config, factory_);
  inference::MajorityVote mv;
  mv_classifier.Fit(corpus_.train, *annotations_, mv, corpus_.dev, &rng);
  const double mv_f1 = eval::SpanF1(
      [&](const data::Instance& x) { return mv_classifier.Predict(x); },
      corpus_.test).f1;

  EXPECT_GT(gold_f1, mv_f1);
}

}  // namespace
}  // namespace lncl
