// Tests for the src/obs profiling layer: perf-counter graceful degradation
// under forced open failures (EACCES / ENOSYS), the Prof session gate and
// its per-span aggregation, memory accounting via /proc/self/status, and
// the contract that toggling Trace/Prof sessions MID-FIT — not just around
// a whole fit — leaves every computed number bit-identical.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/logic_lncl.h"
#include "crowd/simulator.h"
#include "data/sentiment_gen.h"
#include "models/text_cnn.h"
#include "obs/mem_stats.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace lncl {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------- counter values

TEST(CounterValuesTest, ArithmeticAndDerivedRates) {
  obs::CounterValues a;
  a.cycles = 100;
  a.instructions = 250;
  a.cache_references = 40;
  a.cache_misses = 10;
  a.task_clock_ns = 1000;
  obs::CounterValues b;
  b.cycles = 30;
  b.instructions = 50;
  b.cache_references = 60;  // larger than a's: difference must saturate
  b.page_faults = 5;

  obs::CounterValues sum = a;
  sum += b;
  EXPECT_EQ(sum.cycles, 130u);
  EXPECT_EQ(sum.instructions, 300u);
  EXPECT_EQ(sum.page_faults, 5u);

  const obs::CounterValues diff = a - b;
  EXPECT_EQ(diff.cycles, 70u);
  EXPECT_EQ(diff.cache_references, 0u);  // saturates, never wraps
  EXPECT_EQ(diff.task_clock_ns, 1000u);

  EXPECT_DOUBLE_EQ(a.Ipc(), 2.5);
  EXPECT_DOUBLE_EQ(a.CacheMissRate(), 0.25);
  const obs::CounterValues dark;  // unavailable hardware group reads zeros
  EXPECT_DOUBLE_EQ(dark.Ipc(), 0.0);
  EXPECT_DOUBLE_EQ(dark.CacheMissRate(), 0.0);
}

// ----------------------------------------------------- graceful degradation

// The open failure modes we must survive: EACCES (perf_event_paranoid),
// ENOSYS (seccomp jail / non-Linux). The hook only affects threads that have
// not opened their thread_local groups yet, so each case runs on a fresh
// std::thread. The contract: availability reads false, Read() yields zeros,
// and nothing crashes — the fit path never depends on a counter value.
void ExpectDarkCountersOnFreshThread(int forced_errno) {
  lncl::obs::perf_internal::ForceOpenErrnoForTest(forced_errno);
  bool hw = true;
  bool sw = true;
  obs::CounterValues values;
  values.cycles = 1;  // sentinel: Read() must overwrite with zeros
  std::thread probe([&] {
    const obs::PerfCounters& pc = obs::PerfCounters::PerThread();
    hw = pc.hw_available();
    sw = pc.sw_available();
    values = pc.Read();
  });
  probe.join();
  lncl::obs::perf_internal::ForceOpenErrnoForTest(0);
  EXPECT_FALSE(hw) << "hw group must be dark under errno " << forced_errno;
  EXPECT_FALSE(sw) << "sw group must be dark under errno " << forced_errno;
  EXPECT_EQ(values.cycles, 0u);
  EXPECT_EQ(values.instructions, 0u);
  EXPECT_EQ(values.task_clock_ns, 0u);
  EXPECT_EQ(values.page_faults, 0u);
}

TEST(PerfCountersTest, DegradesGracefullyOnEacces) {
  ExpectDarkCountersOnFreshThread(EACCES);
}

TEST(PerfCountersTest, DegradesGracefullyOnEnosys) {
  ExpectDarkCountersOnFreshThread(ENOSYS);
}

TEST(PerfCountersTest, ReadIsMonotoneWhenAvailable) {
  const obs::PerfCounters& pc = obs::PerfCounters::PerThread();
  const obs::CounterValues before = pc.Read();
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink = sink + i;
  const obs::CounterValues after = pc.Read();
  if (pc.sw_available()) {
    EXPECT_GE(after.task_clock_ns, before.task_clock_ns);
  }
  if (pc.hw_available()) {
    EXPECT_GT(after.instructions, before.instructions);
  }
  // Dark groups stay dark and zeroed — no flapping.
  if (!pc.sw_available()) {
    EXPECT_EQ(after.task_clock_ns, 0u);
  }
  if (!pc.hw_available()) {
    EXPECT_EQ(after.instructions, 0u);
  }
}

// ------------------------------------------------------------ session gate

#if LNCL_PROF_ENABLED
TEST(ProfTest, StartStopGateAndAggregation) {
  EXPECT_FALSE(obs::Prof::active());
  ASSERT_TRUE(obs::Prof::Start());
  EXPECT_TRUE(obs::Prof::active());
  EXPECT_FALSE(obs::Prof::Start());  // nested sessions refused

  obs::CounterValues delta;
  delta.instructions = 100;
  delta.cycles = 50;
  obs::Prof::RecordSpan("unit_span", delta);
  obs::Prof::RecordSpan("unit_span", delta);

  ASSERT_TRUE(obs::Prof::Stop());
  EXPECT_FALSE(obs::Prof::active());
  EXPECT_FALSE(obs::Prof::Stop());  // double stop refused

  // Aggregates survive Stop so reporting happens after the measured region.
  const obs::Prof::SpanAgg agg = obs::Prof::SnapshotSpan("unit_span");
  EXPECT_EQ(agg.spans, 2u);
  EXPECT_EQ(agg.totals.instructions, 200u);
  EXPECT_EQ(agg.totals.cycles, 100u);
  EXPECT_EQ(obs::Prof::SnapshotSpan("never_recorded").spans, 0u);

  const std::string path = TempPath("prof_test_session.json");
  ASSERT_TRUE(obs::Prof::WriteJson(path));
  const std::string text = ReadFile(path);
  EXPECT_NE(text.find("\"schema\": \"lncl.prof.v1\""), std::string::npos);
  EXPECT_NE(text.find("\"unit_span\""), std::string::npos);
  EXPECT_NE(text.find("\"hw_counters_available\""), std::string::npos);
  EXPECT_NE(text.find("\"ipc\""), std::string::npos);
  std::remove(path.c_str());

  // A new session clears the previous aggregates.
  ASSERT_TRUE(obs::Prof::Start());
  EXPECT_EQ(obs::Prof::SnapshotSpan("unit_span").spans, 0u);
  ASSERT_TRUE(obs::Prof::Stop());
}

TEST(ProfTest, SpansAttributeWhileActive) {
  ASSERT_TRUE(obs::Prof::Start());
  {
    LNCL_TRACE_SPAN("prof_attributed");
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  }
  double accum = 0.0;
  { obs::PhaseSpan phase("prof_phase", &accum); }
  ASSERT_TRUE(obs::Prof::Stop());
  {
    LNCL_TRACE_SPAN("prof_after_stop");  // must not be attributed
  }
  EXPECT_EQ(obs::Prof::SnapshotSpan("prof_attributed").spans, 1u);
  EXPECT_EQ(obs::Prof::SnapshotSpan("prof_phase").spans, 1u);
  EXPECT_EQ(obs::Prof::SnapshotSpan("prof_after_stop").spans, 0u);
  EXPECT_GT(accum, 0.0);
  if (obs::Prof::SwCountersAvailable()) {
    EXPECT_GT(obs::Prof::SnapshotSpan("prof_attributed").totals.task_clock_ns,
              0u);
  }
}
#endif  // LNCL_PROF_ENABLED

// ---------------------------------------------------------- memory stats

TEST(MemStatsTest, ReadSelfStatusIsSane) {
  const obs::MemSample sample = obs::ReadSelfStatus();
  ASSERT_TRUE(sample.ok);
  EXPECT_GT(sample.vm_rss_kb, 0);
  // The high-water mark can never sit below the current resident set.
  EXPECT_GE(sample.vm_hwm_kb, sample.vm_rss_kb);
}

TEST(MemStatsTest, HwmTracksAllocation) {
  const obs::MemSample before = obs::ReadSelfStatus();
  ASSERT_TRUE(before.ok);
  // Touch ~32 MiB so the resident high-water must move past it.
  std::vector<char> block(32u << 20);
  for (size_t i = 0; i < block.size(); i += 4096) block[i] = 1;
  const obs::MemSample after = obs::ReadSelfStatus();
  ASSERT_TRUE(after.ok);
  EXPECT_GE(after.vm_hwm_kb, before.vm_hwm_kb);
  EXPECT_GE(after.vm_hwm_kb, static_cast<int64_t>(block.size() >> 10));
}

TEST(MemStatsTest, SampleExportsGauges) {
  obs::Metrics::Enable(true);
  obs::Metrics::Reset();
  obs::SampleMemStatsToMetrics();
  const std::string snapshot = obs::Metrics::SnapshotJson();
  obs::Metrics::Enable(false);
  EXPECT_NE(snapshot.find("\"mem.vm_rss_kb\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"mem.vm_hwm_kb\""), std::string::npos);
}

TEST(MemStatsTest, HostFingerprintShape) {
  const std::string fp = obs::HostFingerprint();
  ASSERT_FALSE(fp.empty());
  // "<hostname>/<cpu-model>/<N>t" — two separators, thread-count suffix.
  const size_t first = fp.find('/');
  const size_t last = fp.rfind('/');
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(last, first);
  EXPECT_EQ(fp.back(), 't');
  EXPECT_EQ(fp, obs::HostFingerprint());  // stable within a process
}

// ------------------------------------- sessions toggled mid-fit ⊥ results

// Flips Trace and Prof sessions on and off BETWEEN EPOCHS, from inside the
// fit's observer callback. This is the nastiest client the span hooks have:
// spans open under an active session can close after Stop() (the epoch span
// wraps the observer call), and vice versa. The contract stays absolute —
// the fit's numbers must not move by a bit.
class MidFitToggleObserver : public obs::RunObserver {
 public:
  explicit MidFitToggleObserver(std::string trace_stem)
      : trace_stem_(std::move(trace_stem)) {}

  void OnEpoch(const obs::EpochRecord& record) override {
    if (record.epoch % 2 == 0) {
      trace_paths_.push_back(trace_stem_ + std::to_string(record.epoch) +
                             ".json");
      obs::Trace::Start(trace_paths_.back());
#if LNCL_PROF_ENABLED
      obs::Prof::Start();
#endif
    } else {
      obs::Trace::Stop();
#if LNCL_PROF_ENABLED
      obs::Prof::Stop();
#endif
    }
  }
  void OnFitEnd(const obs::FitSummary&) override {
    obs::Trace::Stop();  // no-op when the last toggle already stopped it
#if LNCL_PROF_ENABLED
    obs::Prof::Stop();
#endif
  }

  const std::vector<std::string>& trace_paths() const { return trace_paths_; }

 private:
  std::string trace_stem_;
  std::vector<std::string> trace_paths_;
};

class MidFitToggleTest : public testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(77);
    data::SentimentGenConfig gcfg;
    corpus_ = data::GenerateSentimentCorpus(gcfg, 160, 48, 48, &rng);
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 10;
    auto sim = crowd::CrowdSimulator::MakeClassification(ccfg, 2, &rng);
    annotations_ = std::make_unique<crowd::AnnotationSet>(
        sim.Annotate(corpus_.train, &rng));
    models::TextCnnConfig mcfg;
    mcfg.feature_maps = 8;
    factory_ = models::TextCnn::Factory(mcfg, corpus_.embeddings);
  }

  core::LogicLnclResult Run(obs::RunObserver* observer) const {
    core::LogicLnclConfig config;
    config.epochs = 4;
    config.batch_size = 32;
    config.patience = 4;
    config.k_schedule = core::SentimentKSchedule();
    config.optimizer.kind = "adadelta";
    config.optimizer.lr = 1.0;
    config.threads = 2;
    config.run_observer = observer;
    util::Rng rng(1);
    core::LogicLncl learner(config, factory_, nullptr);
    return learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  }

  data::SentimentCorpus corpus_;
  std::unique_ptr<crowd::AnnotationSet> annotations_;
  models::ModelFactory factory_;
};

TEST_F(MidFitToggleTest, TogglingSessionsMidFitIsBitIdentical) {
  const core::LogicLnclResult plain = Run(nullptr);

  MidFitToggleObserver observer(TempPath("prof_test_midfit_trace_"));
  const core::LogicLnclResult toggled = Run(&observer);

  ASSERT_EQ(plain.loss_curve.size(), toggled.loss_curve.size());
  for (size_t i = 0; i < plain.loss_curve.size(); ++i) {
    EXPECT_EQ(plain.loss_curve[i], toggled.loss_curve[i]) << "epoch " << i;
  }
  ASSERT_EQ(plain.dev_curve.size(), toggled.dev_curve.size());
  for (size_t i = 0; i < plain.dev_curve.size(); ++i) {
    EXPECT_EQ(plain.dev_curve[i], toggled.dev_curve[i]) << "epoch " << i;
  }
  EXPECT_EQ(plain.best_epoch, toggled.best_epoch);
  EXPECT_EQ(plain.best_dev_score, toggled.best_dev_score);
  EXPECT_EQ(plain.early_stopped, toggled.early_stopped);

#if LNCL_TRACE_ENABLED
  // Epochs 0 and 2 each started a session; both files must exist (the
  // second epoch's Stop flushed the first, OnFitEnd the second).
  ASSERT_GE(observer.trace_paths().size(), 1u);
  for (const std::string& path : observer.trace_paths()) {
    const std::string text = ReadFile(path);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos) << path;
    std::remove(path.c_str());
  }
#endif
}

}  // namespace
}  // namespace lncl
