// Byte-for-byte equivalence of the batched prediction pipeline
// (Model::PredictBatch and everything layered on it) against the
// per-instance Predict path. The batched kernels only add GEMM rows and
// never reorder a reduction, so the contract is bit-identity — these tests
// compare with memcmp, not tolerances.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/logic_lncl.h"
#include "core/sentiment_rules.h"
#include "crowd/simulator.h"
#include "data/embedding.h"
#include "data/sentiment_gen.h"
#include "models/logreg.h"
#include "models/model.h"
#include "models/ner_tagger.h"
#include "models/text_cnn.h"
#include "util/rng.h"

namespace lncl {
namespace {

using util::Matrix;
using util::Rng;

data::EmbeddingPtr MakeEmbeddings(int vocab, int dim, Rng* rng) {
  auto table = std::make_shared<data::EmbeddingTable>(vocab, dim);
  for (int v = 1; v < vocab; ++v) {
    for (int d = 0; d < dim; ++d) {
      table->table()(v, d) = static_cast<float>(rng->Gaussian());
    }
  }
  return table;
}

data::Instance MakeInstance(int len, int vocab, Rng* rng) {
  data::Instance x;
  for (int i = 0; i < len; ++i) {
    x.tokens.push_back(1 + rng->UniformInt(vocab - 1));
  }
  return x;
}

// Lengths exercising every packing edge: empty, shorter than any conv
// window, exact window sizes, bucket-mate duplicates, and a long tail.
std::vector<data::Instance> MixedLengthBatch(int vocab, Rng* rng) {
  std::vector<data::Instance> xs;
  for (int len : {7, 0, 3, 12, 3, 1, 5, 2, 12, 4, 30, 12, 0, 9, 7}) {
    xs.push_back(MakeInstance(len, vocab, rng));
  }
  return xs;
}

std::vector<const data::Instance*> Pointers(
    const std::vector<data::Instance>& xs) {
  std::vector<const data::Instance*> ptrs;
  for (const data::Instance& x : xs) ptrs.push_back(&x);
  return ptrs;
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what,
                    size_t i) {
  ASSERT_EQ(a.rows(), b.rows()) << what << " rows differ at " << i;
  ASSERT_EQ(a.cols(), b.cols()) << what << " cols differ at " << i;
  EXPECT_TRUE(a.empty() ||
              std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0)
      << what << " bytes differ at " << i;
}

void ExpectBatchMatchesLooped(const models::Model& model,
                              const std::vector<data::Instance>& xs) {
  std::vector<util::Matrix> batched;
  model.PredictBatch(Pointers(xs), &batched);
  ASSERT_EQ(batched.size(), xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    ExpectBitEqual(model.Predict(xs[i]), batched[i], "prediction", i);
  }
}

// ---------------------------------------------------------------- bucketing

TEST(BucketByLengthTest, DeterministicOrderAndCap) {
  Rng rng(11);
  std::vector<data::Instance> xs;
  for (int i = 0; i < models::kMaxPredictBatch + 10; ++i) {
    xs.push_back(MakeInstance(5, 40, &rng));
  }
  xs.push_back(MakeInstance(2, 40, &rng));
  const auto buckets = models::BucketByLength(Pointers(xs));
  // Ascending length; the 75-member length-5 group splits at the cap.
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].length, 2);
  ASSERT_EQ(buckets[0].members.size(), 1u);
  EXPECT_EQ(buckets[0].members[0], models::kMaxPredictBatch + 10);
  EXPECT_EQ(buckets[1].length, 5);
  EXPECT_EQ(static_cast<int>(buckets[1].members.size()),
            models::kMaxPredictBatch);
  EXPECT_EQ(buckets[2].length, 5);
  ASSERT_EQ(buckets[2].members.size(), 10u);
  // Members keep input order within a length group.
  for (int i = 0; i < models::kMaxPredictBatch; ++i) {
    EXPECT_EQ(buckets[1].members[i], i);
  }
  EXPECT_EQ(buckets[2].members[0], models::kMaxPredictBatch);
}

// ------------------------------------------------------------------ TextCnn

TEST(BatchPredictTest, TextCnnMatchesLooped) {
  Rng rng(101);
  auto emb = MakeEmbeddings(50, 8, &rng);
  models::TextCnnConfig mcfg;
  mcfg.feature_maps = 8;
  models::TextCnn model(mcfg, emb, &rng);
  ExpectBatchMatchesLooped(model, MixedLengthBatch(50, &rng));
}

TEST(BatchPredictTest, TextCnnTrainableEmbeddingsMatchesLooped) {
  Rng rng(102);
  auto emb = MakeEmbeddings(50, 8, &rng);
  models::TextCnnConfig mcfg;
  mcfg.feature_maps = 8;
  mcfg.trainable_embeddings = true;
  models::TextCnn model(mcfg, emb, &rng);
  ExpectBatchMatchesLooped(model, MixedLengthBatch(50, &rng));
}

TEST(BatchPredictTest, TextCnnCrossesBucketCap) {
  Rng rng(103);
  auto emb = MakeEmbeddings(50, 8, &rng);
  models::TextCnnConfig mcfg;
  mcfg.feature_maps = 8;
  models::TextCnn model(mcfg, emb, &rng);
  std::vector<data::Instance> xs;
  for (int i = 0; i < models::kMaxPredictBatch + 17; ++i) {
    xs.push_back(MakeInstance(6, 50, &rng));
  }
  ExpectBatchMatchesLooped(model, xs);
}

// ---------------------------------------------------------------- NerTagger

TEST(BatchPredictTest, NerTaggerGruMatchesLooped) {
  Rng rng(104);
  auto emb = MakeEmbeddings(40, 6, &rng);
  models::NerTaggerConfig mcfg;
  mcfg.conv_features = 16;
  mcfg.gru_hidden = 8;
  models::NerTagger model(mcfg, emb, &rng);
  ExpectBatchMatchesLooped(model, MixedLengthBatch(40, &rng));
}

TEST(BatchPredictTest, NerTaggerLstmMatchesLooped) {
  Rng rng(105);
  auto emb = MakeEmbeddings(40, 6, &rng);
  models::NerTaggerConfig mcfg;
  mcfg.conv_features = 16;
  mcfg.gru_hidden = 8;
  mcfg.recurrent = models::NerTaggerConfig::Recurrent::kLstm;
  models::NerTagger model(mcfg, emb, &rng);
  ExpectBatchMatchesLooped(model, MixedLengthBatch(40, &rng));
}

// ----------------------------------------------------- LogisticRegression

TEST(BatchPredictTest, LogRegMatchesLooped) {
  Rng rng(106);
  auto emb = MakeEmbeddings(40, 6, &rng);
  models::LogisticRegression model(2, emb, &rng);
  ExpectBatchMatchesLooped(model, MixedLengthBatch(40, &rng));
}

// ------------------------------------------------------------- empty batch

TEST(BatchPredictTest, EmptyBatch) {
  Rng rng(107);
  auto emb = MakeEmbeddings(40, 6, &rng);
  models::TextCnnConfig mcfg;
  mcfg.feature_maps = 8;
  models::TextCnn cnn(mcfg, emb, &rng);
  models::LogisticRegression logreg(2, emb, &rng);
  std::vector<util::Matrix> out = {Matrix(1, 1)};  // must be cleared
  cnn.PredictBatch({}, &out);
  EXPECT_TRUE(out.empty());
  out = {Matrix(1, 1)};
  logreg.PredictBatch({}, &out);
  EXPECT_TRUE(out.empty());
}

// ------------------------------------------- full Fit + teacher equivalence

class FitEquivalenceTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    data::SentimentGenConfig gcfg;
    corpus_ = data::GenerateSentimentCorpus(gcfg, 150, 40, 40, &rng);
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 12;
    auto sim = crowd::CrowdSimulator::MakeClassification(ccfg, 2, &rng);
    annotations_ = std::make_unique<crowd::AnnotationSet>(
        sim.Annotate(corpus_.train, &rng));
    models::TextCnnConfig mcfg;
    mcfg.feature_maps = 8;
    factory_ = models::TextCnn::Factory(mcfg, corpus_.embeddings);
  }

  struct Snapshot {
    core::LogicLnclResult result;
    std::vector<std::vector<float>> params;
    std::vector<util::Matrix> qf;
    std::vector<util::Matrix> teacher;
  };

  // Full Logic-LNCL fit with the "but" rule (so ProjectBatch's inner
  // clause-B predictions are exercised), then a teacher pass on the test
  // split.
  Snapshot Run(bool batch_predict, int threads) const {
    core::LogicLnclConfig config;
    config.epochs = 3;
    config.batch_size = 32;
    config.patience = 3;
    config.k_schedule = core::SentimentKSchedule();
    config.optimizer.kind = "adadelta";
    config.optimizer.lr = 1.0;
    config.threads = threads;
    config.batch_predict = batch_predict;
    Rng rng(1);
    std::unique_ptr<models::Model> model = factory_(&rng);
    core::SentimentButRule rule(model.get(), corpus_.but_token);
    core::LogicLncl learner(config, std::move(model), &rule, factory_);
    Snapshot snap;
    snap.result = learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
    for (nn::Parameter* p : learner.model()->Params()) {
      snap.params.emplace_back(p->value.data(),
                               p->value.data() + p->value.size());
    }
    snap.qf = learner.qf();
    if (batch_predict) {
      snap.teacher = learner.PredictTeacherBatch(corpus_.test);
    } else {
      for (const data::Instance& x : corpus_.test.instances) {
        snap.teacher.push_back(learner.PredictTeacher(x));
      }
    }
    return snap;
  }

  void ExpectIdentical(const Snapshot& a, const Snapshot& b) const {
    ASSERT_EQ(a.result.dev_curve.size(), b.result.dev_curve.size());
    for (size_t i = 0; i < a.result.dev_curve.size(); ++i) {
      EXPECT_EQ(a.result.dev_curve[i], b.result.dev_curve[i])
          << "dev score diverges at epoch " << i;
    }
    ASSERT_EQ(a.result.loss_curve.size(), b.result.loss_curve.size());
    for (size_t i = 0; i < a.result.loss_curve.size(); ++i) {
      EXPECT_EQ(a.result.loss_curve[i], b.result.loss_curve[i])
          << "loss diverges at epoch " << i;
    }
    EXPECT_EQ(a.result.best_epoch, b.result.best_epoch);
    EXPECT_EQ(a.result.best_dev_score, b.result.best_dev_score);
    ASSERT_EQ(a.params.size(), b.params.size());
    for (size_t i = 0; i < a.params.size(); ++i) {
      ASSERT_EQ(a.params[i].size(), b.params[i].size());
      EXPECT_TRUE(a.params[i].empty() ||
                  std::memcmp(a.params[i].data(), b.params[i].data(),
                              a.params[i].size() * sizeof(float)) == 0)
          << "parameter " << i << " differs";
    }
    ASSERT_EQ(a.qf.size(), b.qf.size());
    for (size_t i = 0; i < a.qf.size(); ++i) {
      ExpectBitEqual(a.qf[i], b.qf[i], "q_f", i);
    }
    ASSERT_EQ(a.teacher.size(), b.teacher.size());
    for (size_t i = 0; i < a.teacher.size(); ++i) {
      ExpectBitEqual(a.teacher[i], b.teacher[i], "teacher", i);
    }
  }

  data::SentimentCorpus corpus_;
  std::unique_ptr<crowd::AnnotationSet> annotations_;
  models::ModelFactory factory_;
};

TEST_F(FitEquivalenceTest, BatchedFitMatchesPerInstanceSerialSlots) {
  ExpectIdentical(Run(/*batch_predict=*/true, /*threads=*/1),
                  Run(/*batch_predict=*/false, /*threads=*/1));
}

TEST_F(FitEquivalenceTest, BatchedFitMatchesPerInstanceParallel) {
  ExpectIdentical(Run(/*batch_predict=*/true, /*threads=*/4),
                  Run(/*batch_predict=*/false, /*threads=*/4));
}

TEST_F(FitEquivalenceTest, BatchedFitDeterministicAcrossThreadCounts) {
  // Determinism regression with batching enabled: the bucketed kernels keep
  // the threads-invariance guarantee of DESIGN.md §5.
  ExpectIdentical(Run(/*batch_predict=*/true, /*threads=*/1),
                  Run(/*batch_predict=*/true, /*threads=*/4));
}

}  // namespace
}  // namespace lncl
