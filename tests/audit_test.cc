// Coverage for the LNCL_AUDIT contract layer (src/util/check.h).
//
// Every fixture here is deliberately corrupted — a denormalized posterior, a
// non-stochastic confusion row, a NaN gradient, a read of poisoned workspace
// memory. Under -DLNCL_AUDIT=ON each one must abort through
// util::CheckFailure (asserted with death tests); in a plain build the same
// fixtures must run to completion silently, because every audit macro
// compiles to an unevaluated no-op. The suite is built in both modes by
// scripts/check.sh, so both halves of the contract stay tested.

#include <cmath>
#include <limits>

#include "crowd/confusion.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "logic/posterior_reg.h"
#include "logic/sequence_rules.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"
#include "util/check.h"
#include "util/matrix.h"
#include "util/workspace.h"

namespace lncl {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

util::Matrix UniformRows(int rows, int cols) {
  return util::Matrix(rows, cols, 1.0f / static_cast<float>(cols));
}

#if LNCL_AUDIT_ENABLED
#define LNCL_EXPECT_AUDIT_DEATH(stmt, pattern) \
  EXPECT_DEATH({ stmt; }, pattern)
#else
// Plain build: the statement must execute without tripping anything.
#define LNCL_EXPECT_AUDIT_DEATH(stmt, pattern) \
  do {                                         \
    stmt;                                      \
    SUCCEED();                                 \
  } while (0)
#endif

TEST(AuditMacrosTest, ValidFixturesPassInEveryMode) {
  const util::Matrix q = UniformRows(4, 3);
  LNCL_AUDIT_SIMPLEX(q);
  LNCL_AUDIT_ROW_STOCHASTIC(q);
  LNCL_AUDIT_FINITE(q);
  LNCL_AUDIT_SHAPE(q, 4, 3);
  LNCL_DCHECK(q.rows() == 4);
  const util::Vector v = {0.25f, 0.75f};
  LNCL_AUDIT_SIMPLEX(v);
  LNCL_AUDIT_FINITE(v);
}

TEST(AuditMacrosTest, OperandsAreUnevaluatedWhenAuditIsOff) {
  int calls = 0;
  auto touch = [&calls]() {
    ++calls;
    return 1.0f;
  };
  LNCL_AUDIT_FINITE(touch());
  LNCL_DCHECK(touch() > 0.0f);
  EXPECT_EQ(calls, LNCL_AUDIT_ENABLED ? 2 : 0);
}

TEST(AuditDeathTest, CorruptedSimplexTrips) {
  util::Matrix q = UniformRows(2, 3);
  q(1, 1) += 0.5f;  // row 1 now sums to ~1.5
  LNCL_EXPECT_AUDIT_DEATH(LNCL_AUDIT_SIMPLEX(q), "CHECK failed: q");
}

TEST(AuditDeathTest, NegativeEntryTripsSimplex) {
  util::Matrix q = UniformRows(1, 2);
  q(0, 0) = -0.5f;
  q(0, 1) = 1.5f;  // sums to 1, but is no distribution
  LNCL_EXPECT_AUDIT_DEATH(LNCL_AUDIT_SIMPLEX(q), "not a probability");
}

TEST(AuditDeathTest, NonStochasticConfusionRowTrips) {
  // Through the real Eq. 12 closed form: NormalizeRows preserves the sign of
  // a corrupted (negative) count, so the normalized row is not a
  // distribution and the audit wired into NormalizeRows itself must fire.
  crowd::ConfusionMatrix pi(3);
  pi.matrix()(1, 0) = -0.5f;
  pi.matrix()(1, 1) = 1.0f;
  pi.matrix()(1, 2) = 1.0f;
  LNCL_EXPECT_AUDIT_DEATH(pi.NormalizeRows(0.0), "row-stochastic");
}

TEST(AuditDeathTest, NanGradientTripsOptimizerStep) {
  nn::Parameter p("w", 2, 2);
  p.grad(0, 0) = kNan;
  nn::Sgd sgd(0.1);
  std::vector<nn::Parameter*> params = {&p};
  LNCL_EXPECT_AUDIT_DEATH(sgd.Step(params), "not finite");
#if !LNCL_AUDIT_ENABLED
  // Plain build applies the poisoned step; the fixture must still have run.
  EXPECT_TRUE(std::isnan(p.value(0, 0)));
#endif
}

TEST(AuditDeathTest, PoisonedWorkspaceReadTrips) {
  // Audit builds fill workspace matrices with signaling NaN on acquisition;
  // auditing one before anything wrote it is exactly the read-before-write
  // bug the poisoning exists to catch.
  util::WorkspaceScope scope;
  util::Matrix& scratch = scope.NewMatrix(2, 2);
  ASSERT_EQ(scratch.rows(), 2);
  LNCL_EXPECT_AUDIT_DEATH(LNCL_AUDIT_FINITE(scratch), "not finite");
  scratch.Zero();  // a written matrix must always pass
  LNCL_AUDIT_FINITE(scratch);
}

TEST(AuditDeathTest, ShapeMismatchTrips) {
  const util::Matrix m(3, 2);
  LNCL_EXPECT_AUDIT_DEATH(LNCL_AUDIT_SHAPE(m, 2, 3), "shape 3x2");
}

TEST(AuditDeathTest, CorruptedPosteriorTripsEq15Projection) {
  util::Matrix q = UniformRows(2, 2);
  q(0, 0) = kNan;
  const util::Matrix penalties(2, 2);
  LNCL_EXPECT_AUDIT_DEATH(logic::ProjectIndependent(q, penalties, 5.0),
                          "CHECK failed");
}

TEST(AuditDeathTest, NanPotentialTripsSequenceDp) {
  util::Matrix penalty(3, 3);
  const logic::SequenceRuleProjector proj(penalty);
  util::Matrix q = UniformRows(4, 3);
  q(2, 1) = kNan;
  const data::Instance x;
  LNCL_EXPECT_AUDIT_DEATH(proj.Project(x, q, 5.0), "not finite");
}

TEST(AuditDeathTest, ValidInputsSurviveTheAuditedPaths) {
  // The same code paths as above with healthy inputs: no audit may fire in
  // either mode.
  crowd::ConfusionMatrix pi(3);
  pi.NormalizeRows(1e-6);

  nn::Parameter p("w", 2, 2);
  p.grad.Fill(0.25f);
  nn::Sgd sgd(0.1);
  std::vector<nn::Parameter*> params = {&p};
  sgd.Step(params);

  const util::Matrix q = UniformRows(2, 2);
  const util::Matrix penalties(2, 2);
  const util::Matrix projected = logic::ProjectIndependent(q, penalties, 5.0);
  EXPECT_EQ(projected.rows(), 2);
}

#if LNCL_AUDIT_ENABLED
TEST(AuditDeathTest, OutOfBoundsAccessTripsDcheck) {
  // Bounds DCHECKs in Matrix::operator() are active only in audit builds;
  // the plain build elides the check (and the access would be UB), so this
  // case exists only under LNCL_AUDIT.
  util::Matrix m(2, 2);
  EXPECT_DEATH(static_cast<void>(m(2, 0)), "CHECK failed");
}
#endif

}  // namespace
}  // namespace lncl
