#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "data/bio.h"
#include "data/dataset.h"
#include "data/embedding.h"
#include "data/io.h"
#include "data/ner_gen.h"
#include "data/sentiment_gen.h"
#include "data/vocab.h"
#include "util/rng.h"

namespace lncl::data {
namespace {

using util::Rng;

// ----------------------------------------------------------------- Vocab --

TEST(VocabTest, PadReservedAndStableIds) {
  Vocab v;
  EXPECT_EQ(v.size(), 1);
  EXPECT_EQ(v.Find("<pad>"), Vocab::kPadId);
  const int a = v.Add("alpha");
  const int b = v.Add("beta");
  EXPECT_EQ(v.Add("alpha"), a);  // idempotent
  EXPECT_NE(a, b);
  EXPECT_EQ(v.TokenOf(a), "alpha");
  EXPECT_EQ(v.Find("gamma"), -1);
}

// ------------------------------------------------------------- Embedding --

TEST(EmbeddingTest, LookupShapesAndPadding) {
  EmbeddingTable table(5, 3);
  for (int d = 0; d < 3; ++d) table.table()(2, d) = 1.0f;
  util::Matrix out;
  table.Lookup({2, 0, 99}, &out);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 3);
  EXPECT_FLOAT_EQ(out(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 0.0f);  // pad row
  EXPECT_FLOAT_EQ(out(2, 0), 0.0f);  // out-of-range id -> zero
}

// ------------------------------------------------------------------- BIO --

TEST(BioTest, LabelPredicates) {
  EXPECT_TRUE(IsBegin(kBPer));
  EXPECT_TRUE(IsInside(kIOrg));
  EXPECT_FALSE(IsBegin(kO));
  EXPECT_FALSE(IsInside(kO));
  EXPECT_EQ(EntityTypeOf(kBLoc), EntityTypeOf(kILoc));
  for (int t = 0; t < kNumEntityTypes; ++t) {
    EXPECT_EQ(EntityTypeOf(BeginLabel(t)), t);
    EXPECT_EQ(EntityTypeOf(InsideLabel(t)), t);
  }
  EXPECT_EQ(BioLabelName(kO), "O");
  EXPECT_EQ(BioLabelName(kBOrg), "B-ORG");
  EXPECT_EQ(EntityTypeName(0), "PER");
}

TEST(BioTest, ExtractSpansBasic) {
  // O B-PER I-PER O B-ORG
  const std::vector<int> tags = {kO, kBPer, kIPer, kO, kBOrg};
  const auto spans = ExtractSpans(tags);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (EntitySpan{1, 3, 0}));
  EXPECT_EQ(spans[1], (EntitySpan{4, 5, 2}));
}

TEST(BioTest, ExtractSpansAdjacentEntities) {
  // B-PER B-PER: two single-token entities (B starts a new span).
  const auto spans = ExtractSpans({kBPer, kBPer});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].end, 1);
  EXPECT_EQ(spans[1].begin, 1);
}

TEST(BioTest, ExtractSpansToleratesDanglingInside) {
  // I-LOC at start: conventionally treated as starting an entity.
  const auto spans = ExtractSpans({kILoc, kILoc, kO});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (EntitySpan{0, 2, 1}));
}

TEST(BioTest, ExtractSpansTypeChangeSplits) {
  // B-PER I-ORG: the I of a different type starts a new span.
  const auto spans = ExtractSpans({kBPer, kIOrg});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].type, 0);
  EXPECT_EQ(spans[1].type, 2);
}

TEST(BioTest, WriteSpanRoundTrip) {
  std::vector<int> tags(6, kO);
  WriteSpan({2, 5, 3}, &tags);
  EXPECT_EQ(tags[2], kBMisc);
  EXPECT_EQ(tags[3], kIMisc);
  EXPECT_EQ(tags[4], kIMisc);
  const auto spans = ExtractSpans(tags);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (EntitySpan{2, 5, 3}));
}

TEST(BioTest, ValidityCheck) {
  EXPECT_TRUE(IsValidBioSequence({kO, kBPer, kIPer, kO}));
  EXPECT_FALSE(IsValidBioSequence({kO, kIPer}));
  EXPECT_FALSE(IsValidBioSequence({kIPer}));
  EXPECT_FALSE(IsValidBioSequence({kBOrg, kIPer}));
  EXPECT_TRUE(IsValidBioSequence({kBOrg, kIOrg, kIOrg}));
}

// --------------------------------------------------------------- Dataset --

TEST(DatasetTest, ItemAccessors) {
  Dataset d;
  d.num_classes = 2;
  d.sequence = false;
  Instance a;
  a.tokens = {1, 2, 3};
  a.label = 1;
  d.instances.push_back(a);
  EXPECT_EQ(d.NumItems(0), 1);
  EXPECT_EQ(d.ItemLabel(0, 0), 1);
  EXPECT_EQ(d.TotalItems(), 1);

  Dataset s;
  s.num_classes = 9;
  s.sequence = true;
  Instance b;
  b.tokens = {1, 2};
  b.tag_labels = {0, 3};
  s.instances.push_back(b);
  EXPECT_EQ(s.NumItems(0), 2);
  EXPECT_EQ(s.ItemLabel(0, 1), 3);
  EXPECT_EQ(s.TotalItems(), 2);
}

TEST(DatasetTest, SubsetAndSampling) {
  Rng rng(3);
  Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < 10; ++i) {
    Instance x;
    x.tokens = {i};
    x.label = i % 2;
    d.instances.push_back(x);
  }
  const auto idx = SampleSubset(d, 4, &rng);
  EXPECT_EQ(idx.size(), 4u);
  const Dataset sub = Subset(d, idx);
  EXPECT_EQ(sub.size(), 4);
  EXPECT_EQ(sub.num_classes, 2);
  // Oversized request returns everything.
  EXPECT_EQ(SampleSubset(d, 100, &rng).size(), 10u);
}

TEST(DatasetTest, ClauseBExtraction) {
  Instance x;
  x.tokens = {5, 6, 7, 8, 9};
  x.contrast_index = 2;
  x.label = 1;
  const Instance b = ClauseB(x);
  EXPECT_EQ(b.tokens, (std::vector<int>{8, 9}));
  EXPECT_EQ(b.label, 1);
}

// --------------------------------------------------------- SentimentGen --

class SentimentGenTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    corpus_ = GenerateSentimentCorpus(config_, 500, 100, 100, &rng);
  }
  SentimentGenConfig config_;
  SentimentCorpus corpus_;
};

TEST_F(SentimentGenTest, SplitSizesAndClasses) {
  EXPECT_EQ(corpus_.train.size(), 500);
  EXPECT_EQ(corpus_.dev.size(), 100);
  EXPECT_EQ(corpus_.test.size(), 100);
  EXPECT_EQ(corpus_.train.num_classes, 2);
  EXPECT_FALSE(corpus_.train.sequence);
}

TEST_F(SentimentGenTest, TokensInVocabulary) {
  for (const Instance& x : corpus_.train.instances) {
    EXPECT_FALSE(x.tokens.empty());
    for (int t : x.tokens) {
      EXPECT_GT(t, 0);
      EXPECT_LT(t, corpus_.vocab.size());
    }
    EXPECT_TRUE(x.label == 0 || x.label == 1);
    EXPECT_GE(x.difficulty, 0.0);
    EXPECT_LE(x.difficulty, 1.0);
  }
}

TEST_F(SentimentGenTest, ContrastFractionRoughlyMatchesConfig) {
  int but = 0, however = 0;
  for (const Instance& x : corpus_.train.instances) {
    if (x.contrast_index < 0) continue;
    const int marker = x.tokens[x.contrast_index];
    if (marker == corpus_.but_token) ++but;
    if (marker == corpus_.however_token) ++however;
  }
  EXPECT_NEAR(but / 500.0, config_.but_frac, 0.08);
  EXPECT_NEAR(however / 500.0, config_.however_frac, 0.05);
}

TEST_F(SentimentGenTest, ContrastMarkersHaveBothClauses) {
  for (const Instance& x : corpus_.train.instances) {
    if (x.contrast_index < 0) continue;
    EXPECT_GT(x.contrast_index, 0);
    EXPECT_LT(x.contrast_index + 1, static_cast<int>(x.tokens.size()));
  }
}

TEST_F(SentimentGenTest, LabelsRoughlyBalanced) {
  int pos = 0;
  for (const Instance& x : corpus_.train.instances) pos += x.label;
  EXPECT_NEAR(pos / 500.0, 0.5, 0.1);
}

TEST_F(SentimentGenTest, ReproducibleFromSeed) {
  Rng rng(42);
  const SentimentCorpus again =
      GenerateSentimentCorpus(config_, 500, 100, 100, &rng);
  ASSERT_EQ(again.train.size(), corpus_.train.size());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(again.train.instances[i].tokens, corpus_.train.instances[i].tokens);
    EXPECT_EQ(again.train.instances[i].label, corpus_.train.instances[i].label);
  }
}

TEST_F(SentimentGenTest, EmbeddingTableMatchesVocab) {
  EXPECT_EQ(corpus_.embeddings->vocab_size(), corpus_.vocab.size());
  EXPECT_EQ(corpus_.embeddings->dim(), config_.embedding_dim);
}

// --------------------------------------------------------------- NerGen --

class NerGenTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    corpus_ = GenerateNerCorpus(config_, 300, 50, 50, &rng);
  }
  NerGenConfig config_;
  NerCorpus corpus_;
};

TEST_F(NerGenTest, ShapesAndClasses) {
  EXPECT_EQ(corpus_.train.size(), 300);
  EXPECT_TRUE(corpus_.train.sequence);
  EXPECT_EQ(corpus_.train.num_classes, kNumBioLabels);
}

TEST_F(NerGenTest, AllSequencesValidBio) {
  for (const Instance& x : corpus_.train.instances) {
    EXPECT_EQ(x.tokens.size(), x.tag_labels.size());
    EXPECT_TRUE(IsValidBioSequence(x.tag_labels));
    EXPECT_GE(static_cast<int>(x.tokens.size()), config_.min_len);
    EXPECT_LE(static_cast<int>(x.tokens.size()), config_.max_len);
  }
}

TEST_F(NerGenTest, EverySentenceHasAtLeastOneEntity) {
  int with_entity = 0;
  for (const Instance& x : corpus_.train.instances) {
    if (!ExtractSpans(x.tag_labels).empty()) ++with_entity;
  }
  // Placement can occasionally fail, but almost all sentences have entities.
  EXPECT_GT(with_entity, 290);
}

TEST_F(NerGenTest, EntityGapInvariant) {
  // Generated entities never touch: there is at least one O between spans.
  for (const Instance& x : corpus_.train.instances) {
    const auto spans = ExtractSpans(x.tag_labels);
    for (size_t s = 1; s < spans.size(); ++s) {
      EXPECT_GE(spans[s].begin, spans[s - 1].end + 1);
    }
  }
}

TEST_F(NerGenTest, AllFourTypesAppear) {
  std::set<int> types;
  for (const Instance& x : corpus_.train.instances) {
    for (const auto& span : ExtractSpans(x.tag_labels)) types.insert(span.type);
  }
  EXPECT_EQ(types.size(), static_cast<size_t>(kNumEntityTypes));
}

TEST_F(NerGenTest, EntityLengthsWithinThree) {
  for (const Instance& x : corpus_.train.instances) {
    for (const auto& span : ExtractSpans(x.tag_labels)) {
      EXPECT_GE(span.end - span.begin, 1);
      EXPECT_LE(span.end - span.begin, 3);
    }
  }
}

TEST_F(NerGenTest, ReproducibleFromSeed) {
  Rng rng(7);
  const NerCorpus again = GenerateNerCorpus(config_, 300, 50, 50, &rng);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(again.train.instances[i].tokens,
              corpus_.train.instances[i].tokens);
    EXPECT_EQ(again.train.instances[i].tag_labels,
              corpus_.train.instances[i].tag_labels);
  }
}


// -------------------------------------------------------------------- IO --

TEST(ConllIoTest, RoundTripPreservesEverything) {
  Rng rng(31);
  NerGenConfig gcfg;
  const NerCorpus corpus = GenerateNerCorpus(gcfg, 40, 1, 1, &rng);
  std::stringstream ss;
  SaveConll(ss, corpus.train, corpus.vocab);

  Vocab vocab2;
  Dataset loaded;
  ASSERT_TRUE(LoadConll(ss, &vocab2, &loaded));
  ASSERT_EQ(loaded.size(), corpus.train.size());
  for (int i = 0; i < loaded.size(); ++i) {
    const Instance& a = corpus.train.instances[i];
    const Instance& b = loaded.instances[i];
    ASSERT_EQ(a.tokens.size(), b.tokens.size());
    EXPECT_EQ(a.tag_labels, b.tag_labels);
    for (size_t t = 0; t < a.tokens.size(); ++t) {
      EXPECT_EQ(corpus.vocab.TokenOf(a.tokens[t]), vocab2.TokenOf(b.tokens[t]));
    }
  }
}

TEST(ConllIoTest, RejectsMalformedLines) {
  Vocab vocab;
  Dataset d;
  std::stringstream no_tab("word-without-tab\n");
  EXPECT_FALSE(LoadConll(no_tab, &vocab, &d));
  std::stringstream bad_tag("word\tB-NOPE\n");
  EXPECT_FALSE(LoadConll(bad_tag, &vocab, &d));
}

TEST(ConllIoTest, ParsesHandWrittenFile) {
  std::stringstream ss(
      "John\tB-PER\nSmith\tI-PER\nvisited\tO\nParis\tB-LOC\n\n"
      "Acme\tB-ORG\n\n");
  Vocab vocab;
  Dataset d;
  ASSERT_TRUE(LoadConll(ss, &vocab, &d));
  ASSERT_EQ(d.size(), 2);
  EXPECT_EQ(d.instances[0].tag_labels,
            (std::vector<int>{kBPer, kIPer, kO, kBLoc}));
  EXPECT_EQ(d.instances[1].tag_labels, (std::vector<int>{kBOrg}));
  EXPECT_EQ(vocab.TokenOf(d.instances[0].tokens[3]), "Paris");
}

TEST(SentimentTsvTest, RoundTrip) {
  Rng rng(32);
  SentimentGenConfig gcfg;
  const SentimentCorpus corpus = GenerateSentimentCorpus(gcfg, 30, 1, 1, &rng);
  std::stringstream ss;
  SaveSentimentTsv(ss, corpus.train, corpus.vocab);

  Vocab vocab2;
  Dataset loaded;
  ASSERT_TRUE(LoadSentimentTsv(ss, &vocab2, &loaded));
  ASSERT_EQ(loaded.size(), corpus.train.size());
  EXPECT_EQ(loaded.num_classes, 2);
  for (int i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.instances[i].label, corpus.train.instances[i].label);
    EXPECT_EQ(loaded.instances[i].tokens.size(),
              corpus.train.instances[i].tokens.size());
  }
}

TEST(SentimentTsvTest, RejectsBadLabels) {
  Vocab vocab;
  Dataset d;
  std::stringstream negative("-2\tsome words\n");
  EXPECT_FALSE(LoadSentimentTsv(negative, &vocab, &d));
  Dataset d2;
  std::stringstream junk("abc\tsome words\n");
  EXPECT_FALSE(LoadSentimentTsv(junk, &vocab, &d2));
}


// ------------------------------------------------ Generator statistics --

TEST_F(SentimentGenTest, DifficultyHigherForContrastSentences) {
  double contrast = 0.0, plain = 0.0;
  int n_contrast = 0, n_plain = 0;
  for (const Instance& x : corpus_.train.instances) {
    if (x.contrast_index >= 0) {
      contrast += x.difficulty;
      ++n_contrast;
    } else {
      plain += x.difficulty;
      ++n_plain;
    }
  }
  ASSERT_GT(n_contrast, 10);
  ASSERT_GT(n_plain, 10);
  EXPECT_GT(contrast / n_contrast, plain / n_plain);
}

TEST_F(SentimentGenTest, SentimentWordsCorrelateWithLabels) {
  // Count polarity-lexicon tokens per class: positive sentences must carry
  // more "pos*" words than negative ones (this is what the CNN learns).
  long pos_in_pos = 0, pos_in_neg = 0, tokens_pos = 0, tokens_neg = 0;
  for (const Instance& x : corpus_.train.instances) {
    for (int t : x.tokens) {
      const std::string& w = corpus_.vocab.TokenOf(t);
      const bool is_pos_word = w.rfind("pos", 0) == 0;
      if (x.label == kSentimentPositive) {
        pos_in_pos += is_pos_word;
        ++tokens_pos;
      } else {
        pos_in_neg += is_pos_word;
        ++tokens_neg;
      }
    }
  }
  const double rate_pos = static_cast<double>(pos_in_pos) / tokens_pos;
  const double rate_neg = static_cast<double>(pos_in_neg) / tokens_neg;
  EXPECT_GT(rate_pos, 2.0 * rate_neg);
}

TEST_F(NerGenTest, DifficultyTracksAmbiguousWords) {
  // Mean difficulty should increase with sentence entity count (ambiguous
  // entity words drive the difficulty model).
  double with_many = 0.0, with_few = 0.0;
  int n_many = 0, n_few = 0;
  for (const Instance& x : corpus_.train.instances) {
    const size_t entities = ExtractSpans(x.tag_labels).size();
    if (entities >= 2) {
      with_many += x.difficulty;
      ++n_many;
    } else {
      with_few += x.difficulty;
      ++n_few;
    }
  }
  if (n_many > 10 && n_few > 10) {
    EXPECT_GE(with_many / n_many, with_few / n_few - 0.02);
  }
}

TEST_F(NerGenTest, SplitsComeFromTheSameDistribution) {
  // Entity rates in train and test should be close (same generator).
  auto entity_rate = [](const Dataset& d) {
    long entities = 0, tokens = 0;
    for (const Instance& x : d.instances) {
      entities += ExtractSpans(x.tag_labels).size();
      tokens += x.tokens.size();
    }
    return static_cast<double>(entities) / tokens;
  };
  EXPECT_NEAR(entity_rate(corpus_.train), entity_rate(corpus_.test), 0.03);
}

}  // namespace
}  // namespace lncl::data
