#include <gtest/gtest.h>

#include <memory>

#include "baselines/crowd_layer.h"
#include "baselines/dl_dn.h"
#include "baselines/fixed_target.h"
#include "baselines/two_stage.h"
#include "core/sentiment_rules.h"
#include "crowd/simulator.h"
#include "data/sentiment_gen.h"
#include "eval/metrics.h"
#include "inference/majority_vote.h"
#include "models/text_cnn.h"
#include "util/rng.h"

namespace lncl::baselines {
namespace {

using util::Matrix;
using util::Rng;

class BaselinesTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(55);
    data::SentimentGenConfig gcfg;
    corpus_ = data::GenerateSentimentCorpus(gcfg, 300, 80, 80, &rng);
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 20;
    auto sim = crowd::CrowdSimulator::MakeClassification(ccfg, 2, &rng);
    annotations_ = std::make_unique<crowd::AnnotationSet>(
        sim.Annotate(corpus_.train, &rng));

    models::TextCnnConfig mcfg;
    mcfg.feature_maps = 8;
    factory_ = models::TextCnn::Factory(mcfg, corpus_.embeddings);
  }

  nn::OptimizerConfig FastAdam() const {
    nn::OptimizerConfig opt;
    opt.kind = "adadelta";
    opt.lr = 1.0;
    return opt;
  }

  data::SentimentCorpus corpus_;
  std::unique_ptr<crowd::AnnotationSet> annotations_;
  models::ModelFactory factory_;
};

// ---------------------------------------------------------------- TwoStage --

TEST_F(BaselinesTest, GoldTargetsAreOneHot) {
  const auto targets = GoldTargets(corpus_.train);
  ASSERT_EQ(targets.size(), static_cast<size_t>(corpus_.train.size()));
  for (int i = 0; i < 20; ++i) {
    float sum = 0.0f;
    for (int c = 0; c < 2; ++c) sum += targets[i](0, c);
    EXPECT_FLOAT_EQ(sum, 1.0f);
    EXPECT_FLOAT_EQ(targets[i](0, corpus_.train.instances[i].label), 1.0f);
  }
}

TEST_F(BaselinesTest, HardenTargetsPicksArgmax) {
  Matrix q(2, 3);
  q(0, 0) = 0.2f; q(0, 1) = 0.5f; q(0, 2) = 0.3f;
  q(1, 0) = 0.9f; q(1, 1) = 0.05f; q(1, 2) = 0.05f;
  const auto hard = HardenTargets({q});
  EXPECT_FLOAT_EQ(hard[0](0, 1), 1.0f);
  EXPECT_FLOAT_EQ(hard[0](1, 0), 1.0f);
  EXPECT_FLOAT_EQ(hard[0](0, 0), 0.0f);
}

TEST_F(BaselinesTest, MvClassifierLearnsSomething) {
  TwoStageConfig config;
  config.epochs = 5;
  config.patience = 5;
  config.optimizer = FastAdam();
  TwoStage two_stage(config, factory_);
  Rng rng(1);
  inference::MajorityVote mv;
  const TwoStageResult result =
      two_stage.Fit(corpus_.train, *annotations_, mv, corpus_.dev, &rng);
  EXPECT_GT(result.best_dev_score, 0.6);
  EXPECT_EQ(result.posteriors.size(),
            static_cast<size_t>(corpus_.train.size()));
  const double test_acc = eval::Accuracy(
      [&](const data::Instance& x) { return two_stage.Predict(x); },
      corpus_.test);
  EXPECT_GT(test_acc, 0.55);
}

TEST_F(BaselinesTest, GoldBeatsNoisyTraining) {
  TwoStageConfig config;
  config.epochs = 6;
  config.patience = 6;
  config.optimizer = FastAdam();
  Rng rng(2);
  TwoStage gold(config, factory_);
  gold.FitOnTargets(corpus_.train, GoldTargets(corpus_.train), corpus_.dev,
                    &rng);
  const double gold_acc = eval::Accuracy(
      [&](const data::Instance& x) { return gold.Predict(x); }, corpus_.test);
  EXPECT_GT(gold_acc, 0.62);
}

TEST_F(BaselinesTest, PredictWithRulesAppliesProjection) {
  TwoStageConfig config;
  config.epochs = 3;
  config.optimizer = FastAdam();
  TwoStage two_stage(config, factory_);
  Rng rng(3);
  inference::MajorityVote mv;
  two_stage.Fit(corpus_.train, *annotations_, mv, corpus_.dev, &rng);
  core::SentimentButRule rule(two_stage.model(), corpus_.but_token);
  // Find a but-instance; projected prediction must shift toward clause B.
  for (const data::Instance& x : corpus_.test.instances) {
    if (x.contrast_index >= 0 &&
        x.tokens[x.contrast_index] == corpus_.but_token) {
      const Matrix plain = two_stage.Predict(x);
      const Matrix ruled = two_stage.PredictWithRules(x, rule, 5.0);
      EXPECT_EQ(ruled.rows(), plain.rows());
      double sum = ruled(0, 0) + ruled(0, 1);
      EXPECT_NEAR(sum, 1.0, 1e-5);
      break;
    }
  }
}

// -------------------------------------------------------------- CrowdLayer --

class CrowdLayerParamTest
    : public testing::TestWithParam<CrowdLayerConfig::Kind> {
 protected:
  void SetUp() override {
    Rng rng(66);
    data::SentimentGenConfig gcfg;
    corpus_ = data::GenerateSentimentCorpus(gcfg, 250, 60, 60, &rng);
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 15;
    auto sim = crowd::CrowdSimulator::MakeClassification(ccfg, 2, &rng);
    annotations_ = std::make_unique<crowd::AnnotationSet>(
        sim.Annotate(corpus_.train, &rng));
    models::TextCnnConfig mcfg;
    mcfg.feature_maps = 6;
    factory_ = models::TextCnn::Factory(mcfg, corpus_.embeddings);
  }
  data::SentimentCorpus corpus_;
  std::unique_ptr<crowd::AnnotationSet> annotations_;
  models::ModelFactory factory_;
};

TEST_P(CrowdLayerParamTest, TrainsAboveChance) {
  CrowdLayerConfig config;
  config.kind = GetParam();
  config.epochs = 5;
  config.patience = 5;
  config.batch_size = 32;
  config.optimizer.kind = "adadelta";
  config.optimizer.lr = 1.0;
  CrowdLayer cl(config, factory_);
  Rng rng(1);
  const CrowdLayerResult result =
      cl.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  EXPECT_GT(result.best_dev_score, 0.6);
  const auto posteriors = cl.TrainPosteriors(corpus_.train);
  EXPECT_EQ(posteriors.size(), static_cast<size_t>(corpus_.train.size()));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CrowdLayerParamTest,
                         testing::Values(CrowdLayerConfig::Kind::kMW,
                                         CrowdLayerConfig::Kind::kVW,
                                         CrowdLayerConfig::Kind::kVWB));

TEST_F(BaselinesTest, CrowdLayerPretrainingRuns) {
  CrowdLayerConfig config;
  config.kind = CrowdLayerConfig::Kind::kMW;
  config.pretrain_epochs = 2;
  config.epochs = 3;
  config.optimizer = FastAdam();
  CrowdLayer cl(config, factory_);
  Rng rng(9);
  const CrowdLayerResult result =
      cl.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  EXPECT_GT(result.best_dev_score, 0.6);
}

// ------------------------------------------------------------------ DlDn --

TEST_F(BaselinesTest, DlDnEnsembleWorks) {
  DlDnConfig config;
  config.epochs = 4;
  config.optimizer = FastAdam();
  DlDn dldn(config, factory_);
  Rng rng(4);
  dldn.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  EXPECT_GT(dldn.num_networks(), 3);
  const double dn_acc = eval::Accuracy(
      [&](const data::Instance& x) { return dldn.Predict(x); }, corpus_.test);
  const double wdn_acc = eval::Accuracy(
      [&](const data::Instance& x) { return dldn.PredictWeighted(x); },
      corpus_.test);
  EXPECT_GT(dn_acc, 0.52);
  EXPECT_GT(wdn_acc, 0.52);
}


TEST_F(BaselinesTest, CrowdLayerStartsAsPassThrough) {
  // With identity initialization the crowd layer is a no-op on the
  // bottleneck probabilities, so after zero crowd-layer epochs (pretraining
  // only) the model equals a plain MV-trained network.
  CrowdLayerConfig config;
  config.kind = CrowdLayerConfig::Kind::kMW;
  config.pretrain_epochs = 3;
  config.epochs = 0;
  config.optimizer = FastAdam();
  CrowdLayer cl(config, factory_);
  Rng rng(21);
  cl.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  // The bottleneck still produces valid distributions.
  const Matrix p = cl.model()->Predict(corpus_.test.instances[0]);
  double sum = 0.0;
  for (int c = 0; c < 2; ++c) sum += p(0, c);
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST_F(BaselinesTest, SoftLabelsTwoStageAlsoTrains) {
  TwoStageConfig config;
  config.epochs = 4;
  config.patience = 4;
  config.hard_labels = false;  // train on the raw MV posterior
  config.optimizer = FastAdam();
  TwoStage m(config, factory_);
  Rng rng(22);
  inference::MajorityVote mv;
  const TwoStageResult result =
      m.Fit(corpus_.train, *annotations_, mv, corpus_.dev, &rng);
  EXPECT_GT(result.best_dev_score, 0.6);
}

TEST_F(BaselinesTest, DlDnSkipsLowVolumeAnnotators) {
  DlDnConfig config;
  config.epochs = 2;
  config.min_instances = 1000000;  // nobody qualifies
  config.optimizer = FastAdam();
  DlDn dldn(config, factory_);
  Rng rng(23);
  dldn.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  EXPECT_EQ(dldn.num_networks(), 0);
}

// ------------------------------------------------------------ FixedTarget --

TEST_F(BaselinesTest, FixedTargetMvRuleTrains) {
  FixedTargetConfig config;
  config.epochs = 5;
  config.patience = 5;
  config.k_schedule = core::SentimentKSchedule();
  config.optimizer = FastAdam();

  // Shared model pointer quirk: the rule projector needs the model being
  // trained; construct trainer first, then wire the rule to its model after
  // Fit begins is impossible - instead use a separate frozen helper model
  // for clause-B scoring (mirrors MV-Rule closely enough for a smoke test).
  Rng rng(5);
  auto helper = factory_(&rng);
  core::SentimentButRule rule(helper.get(), corpus_.but_token);

  FixedTargetTrainer trainer(config, factory_, &rule);
  const auto mv = annotations_->MajorityVote(
      inference::ItemsPerInstance(corpus_.train));
  const FixedTargetResult result =
      trainer.Fit(corpus_.train, mv, corpus_.dev, &rng);
  EXPECT_GT(result.best_dev_score, 0.6);
  EXPECT_EQ(result.qf.size(), static_cast<size_t>(corpus_.train.size()));
}

TEST_F(BaselinesTest, FixedTargetWithoutProjectorEqualsPlainTraining) {
  FixedTargetConfig config;
  config.epochs = 3;
  config.optimizer = FastAdam();
  FixedTargetTrainer trainer(config, factory_, nullptr);
  Rng rng(6);
  const auto mv = annotations_->MajorityVote(
      inference::ItemsPerInstance(corpus_.train));
  const FixedTargetResult result =
      trainer.Fit(corpus_.train, mv, corpus_.dev, &rng);
  EXPECT_GT(result.best_dev_score, 0.55);
}

}  // namespace
}  // namespace lncl::baselines
