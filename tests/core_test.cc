#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "core/logic_lncl.h"
#include "core/ner_rules.h"
#include "core/sentiment_rules.h"
#include "core/trainer.h"
#include "crowd/simulator.h"
#include "data/sentiment_gen.h"
#include "eval/metrics.h"
#include "inference/truth_inference.h"
#include "models/logreg.h"
#include "models/text_cnn.h"
#include "util/rng.h"

namespace lncl::core {
namespace {

using util::Matrix;
using util::Rng;

// ------------------------------------------------------------- Schedules --

TEST(KScheduleTest, PaperSchedules) {
  const KSchedule sent = SentimentKSchedule();
  const KSchedule ner = NerKSchedule();
  // Monotone increasing, bounded by the caps.
  double prev_s = -1.0, prev_n = -1.0;
  for (int t = 0; t < 60; ++t) {
    const double s = sent(t);
    const double n = ner(t);
    EXPECT_GE(s, prev_s);
    EXPECT_GE(n, prev_n);
    EXPECT_LE(s, 1.0);
    EXPECT_LE(n, 0.8);
    prev_s = s;
    prev_n = n;
  }
  // k(0) = 1 - 0.94 = 0.06 for sentiment.
  EXPECT_NEAR(sent(0), 0.06, 1e-9);
  EXPECT_NEAR(ner(0), 0.10, 1e-9);
  EXPECT_NEAR(ner(59), 0.8, 1e-9);  // cap reached
  EXPECT_DOUBLE_EQ(ConstantK(0.4)(17), 0.4);
}

// --------------------------------------------------------------- ComputeQa --

TEST(ComputeQaTest, MatchesHandComputedBayes) {
  // Two classes, classifier prior (0.6, 0.4), one annotator with known
  // confusion, label = 1.
  Matrix probs(1, 2);
  probs(0, 0) = 0.6f;
  probs(0, 1) = 0.4f;
  crowd::ConfusionSet confusions{crowd::ConfusionMatrix(2, 0.8)};
  crowd::InstanceAnnotations ann;
  ann.entries.push_back({0, {1}});
  const Matrix qa = ComputeQa(probs, ann, confusions);
  // q(0) ∝ 0.6 * pi(0,1) = 0.6*0.2 = 0.12 ; q(1) ∝ 0.4 * 0.8 = 0.32.
  EXPECT_NEAR(qa(0, 0), 0.12 / 0.44, 1e-5);
  EXPECT_NEAR(qa(0, 1), 0.32 / 0.44, 1e-5);
}

TEST(ComputeQaTest, NoAnnotationsReturnsPrior) {
  Matrix probs(2, 3);
  for (int t = 0; t < 2; ++t) {
    probs(t, 0) = 0.2f;
    probs(t, 1) = 0.5f;
    probs(t, 2) = 0.3f;
  }
  crowd::InstanceAnnotations ann;
  const Matrix qa = ComputeQa(probs, ann, crowd::ConfusionSet{});
  for (int t = 0; t < 2; ++t) {
    EXPECT_NEAR(qa(t, 1), 0.5, 1e-5);
  }
}

TEST(ComputeQaTest, MultipleAnnotatorsMultiply) {
  Matrix probs(1, 2);
  probs(0, 0) = 0.5f;
  probs(0, 1) = 0.5f;
  crowd::ConfusionSet confusions{crowd::ConfusionMatrix(2, 0.9),
                                 crowd::ConfusionMatrix(2, 0.9)};
  crowd::InstanceAnnotations ann;
  ann.entries.push_back({0, {0}});
  ann.entries.push_back({1, {0}});
  const Matrix qa = ComputeQa(probs, ann, confusions);
  // q(0) ∝ 0.5 * 0.9 * 0.9 ; q(1) ∝ 0.5 * 0.1 * 0.1.
  EXPECT_NEAR(qa(0, 0), 0.81 / 0.82, 1e-5);
}

// --------------------------------------------------------- UpdateConfusions --

TEST(UpdateConfusionsTest, MatchesEq12OnToyData) {
  // One annotator, two instances with hard q_f.
  crowd::AnnotationSet ann(2, 1, 2);
  ann.instance(0).entries.push_back({0, {1}});
  ann.instance(1).entries.push_back({0, {1}});
  std::vector<Matrix> qf;
  Matrix q0(1, 2), q1(1, 2);
  q0(0, 0) = 1.0f;  // truth 0, annotator said 1 -> confusion (0,1)
  q1(0, 1) = 1.0f;  // truth 1, annotator said 1 -> confusion (1,1)
  qf.push_back(q0);
  qf.push_back(q1);
  crowd::ConfusionSet confusions;
  UpdateConfusions(qf, ann, 0.0, &confusions);
  EXPECT_NEAR(confusions[0](0, 1), 1.0, 1e-5);
  EXPECT_NEAR(confusions[0](1, 1), 1.0, 1e-5);
}

TEST(UpdateConfusionsTest, SoftCountsWeighted) {
  crowd::AnnotationSet ann(1, 1, 2);
  ann.instance(0).entries.push_back({0, {0}});
  std::vector<Matrix> qf;
  Matrix q(1, 2);
  q(0, 0) = 0.75f;
  q(0, 1) = 0.25f;
  qf.push_back(q);
  crowd::ConfusionSet confusions;
  UpdateConfusions(qf, ann, 0.0, &confusions);
  // Row 0: all mass on reported label 0. Row 1: likewise.
  EXPECT_NEAR(confusions[0](0, 0), 1.0, 1e-5);
  EXPECT_NEAR(confusions[0](1, 0), 1.0, 1e-5);
}

// ------------------------------------------------------------ EarlyStopper --

TEST(EarlyStopperTest, StopsAfterPatienceAndRestoresBest) {
  nn::Parameter p("p", 1, 1);
  EarlyStopper stopper(2);
  p.value(0, 0) = 1.0f;
  EXPECT_FALSE(stopper.Update(0.5, {&p}));  // best
  p.value(0, 0) = 2.0f;
  EXPECT_FALSE(stopper.Update(0.8, {&p}));  // new best
  p.value(0, 0) = 3.0f;
  EXPECT_FALSE(stopper.Update(0.7, {&p}));  // worse (1)
  p.value(0, 0) = 4.0f;
  EXPECT_TRUE(stopper.Update(0.6, {&p}));  // worse (2) -> stop
  stopper.Restore({&p});
  EXPECT_FLOAT_EQ(p.value(0, 0), 2.0f);
  EXPECT_DOUBLE_EQ(stopper.best_score(), 0.8);
  EXPECT_EQ(stopper.best_epoch(), 1);
}

TEST(EarlyStopperTest, TieDoesNotCountAsImprovement) {
  nn::Parameter p("p", 1, 1);
  EarlyStopper stopper(1);
  EXPECT_FALSE(stopper.Update(0.5, {&p}));
  EXPECT_TRUE(stopper.Update(0.5, {&p}));  // tie -> patience exhausted
}

// ---------------------------------------------------------- AnnotatorCount --

TEST(AnnotatorCountWeightsTest, CountsEntries) {
  crowd::AnnotationSet ann(2, 3, 2);
  ann.instance(0).entries.push_back({0, {1}});
  ann.instance(0).entries.push_back({1, {0}});
  ann.instance(1).entries.push_back({2, {1}});
  const std::vector<float> w = AnnotatorCountWeights(ann);
  EXPECT_FLOAT_EQ(w[0], 2.0f);
  EXPECT_FLOAT_EQ(w[1], 1.0f);
}


TEST(RunMinibatchEpochTest, LossDecreasesOverEpochs) {
  Rng rng(70);
  auto emb = std::make_shared<data::EmbeddingTable>(20, 4);
  for (int v = 1; v < 20; ++v) {
    for (int d = 0; d < 4; ++d) {
      emb->table()(v, d) = static_cast<float>(rng.Gaussian());
    }
  }
  data::Dataset train;
  train.num_classes = 2;
  std::vector<Matrix> targets;
  for (int i = 0; i < 40; ++i) {
    data::Instance x;
    for (int t = 0; t < 5; ++t) x.tokens.push_back(1 + rng.UniformInt(19));
    x.label = rng.UniformInt(2);
    train.instances.push_back(x);
    Matrix q(1, 2);
    q(0, x.label) = 1.0f;
    targets.push_back(q);
  }
  models::LogisticRegression model(2, emb, &rng);
  nn::Adam opt(0.05);
  double first = 0.0, last = 0.0;
  for (int epoch = 0; epoch < 15; ++epoch) {
    const double loss = RunMinibatchEpoch(train, targets, {}, 8, &model, &opt,
                                          &rng);
    if (epoch == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

TEST(RunMinibatchEpochTest, WeightsScaleTheLoss) {
  Rng rng(71);
  auto emb = std::make_shared<data::EmbeddingTable>(10, 3);
  data::Dataset train;
  train.num_classes = 2;
  data::Instance x;
  x.tokens = {1, 2};
  x.label = 0;
  train.instances.push_back(x);
  Matrix q(1, 2);
  q(0, 0) = 1.0f;
  std::vector<Matrix> targets = {q};

  models::LogisticRegression a(2, emb, &rng);
  models::LogisticRegression b(2, emb, &rng);
  // Same params for a fair comparison.
  for (size_t i = 0; i < a.Params().size(); ++i) {
    b.Params()[i]->value = a.Params()[i]->value;
  }
  nn::Sgd opt_a(0.0), opt_b(0.0);  // lr 0: loss measured, params frozen
  Rng ra(1), rb(1);
  const double plain =
      RunMinibatchEpoch(train, targets, {}, 1, &a, &opt_a, &ra);
  const double weighted =
      RunMinibatchEpoch(train, targets, {5.0f}, 1, &b, &opt_b, &rb);
  EXPECT_NEAR(weighted, 5.0 * plain, 1e-6);
}

TEST(UpdateConfusionsTest, SmoothingPullsTowardUniform) {
  crowd::AnnotationSet ann(1, 1, 2);
  ann.instance(0).entries.push_back({0, {0}});
  std::vector<Matrix> qf;
  Matrix q(1, 2);
  q(0, 0) = 1.0f;
  qf.push_back(q);
  crowd::ConfusionSet sharp, smooth;
  UpdateConfusions(qf, ann, 0.0, &sharp);
  UpdateConfusions(qf, ann, 10.0, &smooth);
  // With massive smoothing the confusion approaches uniform.
  EXPECT_GT(sharp[0](0, 0), 0.99f);
  EXPECT_NEAR(smooth[0](0, 0), 0.5, 0.05);
}

TEST(SentimentRuleTest, WrongMarkerTokenIsPassThrough) {
  SentimentButRule rule(nullptr, /*marker_token=*/42);
  data::Instance x;
  x.tokens = {1, 7, 3};
  x.contrast_index = 1;  // marker token 7 != 42: no grounding
  Matrix q(1, 2);
  q(0, 0) = 0.3f;
  q(0, 1) = 0.7f;
  const Matrix out = rule.Project(x, q, 5.0);
  EXPECT_FLOAT_EQ(out(0, 0), 0.3f);
  EXPECT_FLOAT_EQ(out(0, 1), 0.7f);
}

TEST(SentimentRuleTest, MarkerAtSentenceEndIsPassThrough) {
  SentimentButRule rule(nullptr, /*marker_token=*/7);
  data::Instance x;
  x.tokens = {1, 3, 7};
  x.contrast_index = 2;  // "but" with empty clause B
  Matrix q(1, 2);
  q(0, 0) = 0.4f;
  q(0, 1) = 0.6f;
  const Matrix out = rule.Project(x, q, 5.0);
  EXPECT_FLOAT_EQ(out(0, 1), 0.6f);
}

// --------------------------------------------------- Logic-LNCL end-to-end --

class LogicLnclSmallTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    data::SentimentGenConfig gcfg;
    corpus_ = data::GenerateSentimentCorpus(gcfg, 300, 80, 80, &rng);
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 25;
    auto sim = crowd::CrowdSimulator::MakeClassification(ccfg, 2, &rng);
    annotations_ = std::make_unique<crowd::AnnotationSet>(
        sim.Annotate(corpus_.train, &rng));

    models::TextCnnConfig mcfg;
    mcfg.feature_maps = 8;
    factory_ = models::TextCnn::Factory(mcfg, corpus_.embeddings);
  }

  LogicLnclConfig SmallConfig() const {
    LogicLnclConfig config;
    config.epochs = 6;
    config.batch_size = 32;
    config.patience = 6;
    config.k_schedule = SentimentKSchedule();
    config.optimizer.kind = "adadelta";
    config.optimizer.lr = 1.0;
    return config;
  }

  data::SentimentCorpus corpus_;
  std::unique_ptr<crowd::AnnotationSet> annotations_;
  models::ModelFactory factory_;
};

TEST_F(LogicLnclSmallTest, FitProducesSensibleModelAndPosteriors) {
  Rng rng(1);
  LogicLncl learner(SmallConfig(), factory_, nullptr);
  const LogicLnclResult result =
      learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  EXPECT_GT(result.best_dev_score, 0.6);
  EXPECT_GE(result.best_epoch, 0);
  EXPECT_EQ(learner.qf().size(), static_cast<size_t>(corpus_.train.size()));
  // Inference accuracy above the raw-MV baseline is expected after EM.
  const double inf_acc = eval::PosteriorAccuracy(learner.qf(), corpus_.train);
  const auto mv = annotations_->MajorityVote(
      inference::ItemsPerInstance(corpus_.train));
  EXPECT_GT(inf_acc, eval::PosteriorAccuracy(mv, corpus_.train) - 0.02);
  // Confusions available for all annotators.
  EXPECT_EQ(learner.confusions().size(), 25u);
}

TEST_F(LogicLnclSmallTest, TeacherEqualsStudentWithoutProjector) {
  Rng rng(2);
  LogicLncl learner(SmallConfig(), factory_, nullptr);
  learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  const data::Instance& x = corpus_.test.instances[0];
  const Matrix s = learner.PredictStudent(x);
  const Matrix t = learner.PredictTeacher(x);
  EXPECT_NEAR(s(0, 0), t(0, 0), 1e-6);
}

TEST_F(LogicLnclSmallTest, TeacherDiffersOnlyOnRuledInstances) {
  Rng rng(3);
  LogicLncl learner(SmallConfig(), factory_, nullptr);
  learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  SentimentButRule rule(learner.model(), corpus_.but_token);
  // Rebuild a learner-alike teacher by projecting manually.
  for (const data::Instance& x : corpus_.test.instances) {
    const Matrix s = learner.PredictStudent(x);
    const Matrix t = rule.Project(x, s, 5.0);
    if (x.contrast_index < 0 ||
        x.tokens[x.contrast_index] != corpus_.but_token) {
      EXPECT_NEAR(s(0, 0), t(0, 0), 1e-6);
    }
  }
}

TEST_F(LogicLnclSmallTest, RuleProjectionPullsTowardClauseB) {
  Rng rng(4);
  LogicLncl learner(SmallConfig(), factory_, nullptr);
  learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  SentimentButRule rule(learner.model(), corpus_.but_token);
  int checked = 0;
  for (const data::Instance& x : corpus_.test.instances) {
    if (x.contrast_index < 0 ||
        x.tokens[x.contrast_index] != corpus_.but_token) {
      continue;
    }
    const Matrix pb = learner.model()->Predict(data::ClauseB(x));
    Matrix uniform(1, 2);
    uniform(0, 0) = 0.5f;
    uniform(0, 1) = 0.5f;
    const Matrix projected = rule.Project(x, uniform, 5.0);
    // Starting from a uniform posterior, the projection must move toward
    // the clause-B prediction.
    const int pb_argmax = pb(0, 1) > pb(0, 0) ? 1 : 0;
    EXPECT_GE(projected(0, pb_argmax), 0.5f - 1e-5);
    ++checked;
  }
  EXPECT_GT(checked, 5);
}


TEST_F(LogicLnclSmallTest, SemiSupervisedAnchorsGoldIndices) {
  Rng rng(44);
  LogicLncl learner(SmallConfig(), factory_, nullptr);
  std::vector<int> gold = {0, 5, 17, 42};
  learner.FitSemiSupervised(corpus_.train, *annotations_, gold, corpus_.dev,
                            &rng);
  for (int idx : gold) {
    const Matrix& q = learner.qf()[idx];
    EXPECT_FLOAT_EQ(q(0, corpus_.train.instances[idx].label), 1.0f);
  }
  // Anchoring a chunk of gold labels should not hurt inference accuracy.
  const double inf = eval::PosteriorAccuracy(learner.qf(), corpus_.train);
  EXPECT_GT(inf, 0.7);
}

TEST_F(LogicLnclSmallTest, SemiSupervisedBeatsUnsupervisedInference) {
  // Anchor 30% of the training set: inference accuracy must rise (the
  // anchored instances alone guarantee it).
  Rng rng_a(45), rng_b(45);
  LogicLncl plain(SmallConfig(), factory_, nullptr);
  plain.Fit(corpus_.train, *annotations_, corpus_.dev, &rng_a);
  LogicLncl semi(SmallConfig(), factory_, nullptr);
  std::vector<int> gold;
  for (int i = 0; i < corpus_.train.size(); i += 3) gold.push_back(i);
  semi.FitSemiSupervised(corpus_.train, *annotations_, gold, corpus_.dev,
                         &rng_b);
  EXPECT_GT(eval::PosteriorAccuracy(semi.qf(), corpus_.train),
            eval::PosteriorAccuracy(plain.qf(), corpus_.train));
}

TEST_F(LogicLnclSmallTest, SaveLoadModelRoundTrip) {
  Rng rng(46);
  LogicLncl learner(SmallConfig(), factory_, nullptr);
  learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  std::stringstream checkpoint;
  learner.SaveModel(checkpoint);

  Rng rng2(47);
  LogicLncl restored(SmallConfig(), factory_(&rng2), nullptr);
  ASSERT_TRUE(restored.LoadModel(checkpoint));
  for (int i = 0; i < 5; ++i) {
    const Matrix pa = learner.PredictStudent(corpus_.test.instances[i]);
    const Matrix pb = restored.PredictStudent(corpus_.test.instances[i]);
    EXPECT_FLOAT_EQ(pa(0, 0), pb(0, 0));
  }
}

TEST_F(LogicLnclSmallTest, WeightedLossRuns) {
  Rng rng(5);
  LogicLnclConfig config = SmallConfig();
  config.weighted_loss = true;
  config.epochs = 3;
  LogicLncl learner(config, factory_, nullptr);
  const LogicLnclResult result =
      learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  EXPECT_GT(result.best_dev_score, 0.55);
}

TEST_F(LogicLnclSmallTest, RaykarStyleLogisticRegressionWorks) {
  Rng rng(6);
  LogicLnclConfig config = SmallConfig();
  config.k_schedule = ConstantK(0.0);
  LogicLncl learner(
      config, models::LogisticRegression::Factory(2, corpus_.embeddings),
      nullptr);
  const LogicLnclResult result =
      learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
  EXPECT_GT(result.best_dev_score, 0.6);
}


TEST_F(LogicLnclSmallTest, DeterministicGivenSeed) {
  Rng rng_a(99), rng_b(99);
  LogicLncl a(SmallConfig(), factory_, nullptr);
  LogicLncl b(SmallConfig(), factory_, nullptr);
  a.Fit(corpus_.train, *annotations_, corpus_.dev, &rng_a);
  b.Fit(corpus_.train, *annotations_, corpus_.dev, &rng_b);
  for (int i = 0; i < 10; ++i) {
    const Matrix pa = a.PredictStudent(corpus_.test.instances[i]);
    const Matrix pb = b.PredictStudent(corpus_.test.instances[i]);
    EXPECT_FLOAT_EQ(pa(0, 0), pb(0, 0)) << "instance " << i;
  }
}

// Eq. 7's two-term loss equals Eq. 8's single blended-target cross entropy
// up to a constant in Theta (the entropy of q_b does not depend on the
// network), so their GRADIENTS coincide. Verify on a toy model.
TEST(BlendEquivalenceTest, BlendedTargetGradEqualsTwoTermGrad) {
  Rng rng(7);
  auto emb = std::make_shared<data::EmbeddingTable>(10, 4);
  for (int v = 1; v < 10; ++v) {
    for (int d = 0; d < 4; ++d) {
      emb->table()(v, d) = static_cast<float>(rng.Gaussian());
    }
  }
  models::LogisticRegression model(2, emb, &rng);
  data::Instance x;
  x.tokens = {1, 3, 5};

  Matrix qa(1, 2), qb(1, 2), qf(1, 2);
  qa(0, 0) = 0.8f;
  qa(0, 1) = 0.2f;
  qb(0, 0) = 0.3f;
  qb(0, 1) = 0.7f;
  const float k = 0.4f;
  for (int c = 0; c < 2; ++c) qf(0, c) = (1 - k) * qa(0, c) + k * qb(0, c);

  // Gradient of CE(qf, p).
  nn::ZeroGrads(model.Params());
  model.ForwardTrain(x, &rng);
  model.BackwardSoftTarget(qf, 1.0f);
  const Matrix grad_blended = model.Params()[0]->grad;

  // Gradient of (1-k) CE(qa, p) + k CE(qb, p).
  nn::ZeroGrads(model.Params());
  model.ForwardTrain(x, &rng);
  model.BackwardSoftTarget(qa, 1.0f - k);
  model.ForwardTrain(x, &rng);
  model.BackwardSoftTarget(qb, k);
  const Matrix grad_two_term = model.Params()[0]->grad;

  for (int r = 0; r < grad_blended.rows(); ++r) {
    for (int c = 0; c < grad_blended.cols(); ++c) {
      EXPECT_NEAR(grad_blended(r, c), grad_two_term(r, c), 1e-5);
    }
  }
}

}  // namespace
}  // namespace lncl::core
