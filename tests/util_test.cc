#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <algorithm>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>

#include "util/chain.h"
#include "util/logging.h"
#include "util/config.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/threadpool.h"

namespace lncl::util {
namespace {

// ---------------------------------------------------------------- Matrix --

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
  m(0, 1) = -2.0f;
  EXPECT_FLOAT_EQ(m(0, 1), -2.0f);
}

TEST(MatrixTest, FillZeroResize) {
  Matrix m(2, 2, 3.0f);
  m.Zero();
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  m.Fill(2.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 2.0f);
  m.Resize(3, 1);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 1);
  EXPECT_FLOAT_EQ(m(2, 0), 0.0f);
}

TEST(MatrixTest, AddScaledAndScale) {
  Matrix a(2, 2);
  Matrix b(2, 2, 1.0f);
  a.AddScaled(b, 2.0f);
  EXPECT_FLOAT_EQ(a(0, 0), 2.0f);
  a.Scale(0.5f);
  EXPECT_FLOAT_EQ(a(1, 1), 1.0f);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 4.0);
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 3);
  // a = [[1, 2, 3], [4, 5, 6]]
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) a(i, j) = static_cast<float>(3 * i + j + 1);
  }
  Matrix b(3, 2);
  // b = [[7, 8], [9, 10], [11, 12]]
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) b(i, j) = static_cast<float>(2 * i + j + 7);
  }
  Matrix c;
  MatMul(a, b, &c);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(MatrixTest, TransposedProductsAgreeWithExplicitTranspose) {
  Rng rng(7);
  Matrix a(4, 3), b(4, 5);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) a(i, j) = static_cast<float>(rng.Gaussian());
    for (int j = 0; j < 5; ++j) b(i, j) = static_cast<float>(rng.Gaussian());
  }
  // Explicit a^T.
  Matrix at(3, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) at(j, i) = a(i, j);
  }
  Matrix expected, got;
  MatMul(at, b, &expected);
  MatMulTransA(a, b, &got);
  ASSERT_EQ(got.rows(), expected.rows());
  for (int i = 0; i < got.rows(); ++i) {
    for (int j = 0; j < got.cols(); ++j) {
      EXPECT_NEAR(got(i, j), expected(i, j), 1e-4);
    }
  }
  // a * (b^T with b reshaped): test MatMulTransB via small identity.
  Matrix c(2, 3), d(4, 3), e;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) c(i, j) = static_cast<float>(i + j);
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) d(i, j) = static_cast<float>(i * j + 1);
  }
  MatMulTransB(c, d, &e);
  EXPECT_EQ(e.rows(), 2);
  EXPECT_EQ(e.cols(), 4);
  // e(1, 2) = row1(c) . row2(d) = [1,2,3] . [1,3,5] = 22.
  EXPECT_FLOAT_EQ(e(1, 2), 22.0f);
}

TEST(MatrixTest, MatVecAndTranspose) {
  Matrix w(2, 3);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) w(i, j) = static_cast<float>(i * 3 + j);
  }
  Vector x = {1.0f, 2.0f, 3.0f};
  Vector y;
  MatVec(w, x, &y);
  EXPECT_FLOAT_EQ(y[0], 8.0f);   // 0+2+6
  EXPECT_FLOAT_EQ(y[1], 26.0f);  // 3+8+15
  Vector z = {1.0f, -1.0f};
  Vector back;
  MatVecTrans(w, z, &back);
  EXPECT_FLOAT_EQ(back[0], -3.0f);
  EXPECT_FLOAT_EQ(back[1], -3.0f);
  EXPECT_FLOAT_EQ(back[2], -3.0f);
}

TEST(MatrixTest, OuterAddAndDot) {
  Matrix w(2, 2);
  OuterAdd({1.0f, 2.0f}, {3.0f, 4.0f}, 1.0f, &w);
  EXPECT_FLOAT_EQ(w(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(w(1, 1), 8.0f);
  EXPECT_FLOAT_EQ(Dot({1.0f, 2.0f}, {3.0f, 4.0f}), 11.0f);
  Vector y = {1.0f, 1.0f};
  AddScaled({2.0f, 3.0f}, 2.0f, &y);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // Child and parent should produce different sequences.
  int diff = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Uniform() != child.Uniform()) ++diff;
  }
  EXPECT_GT(diff, 20);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    const int w = rng.UniformInt(3, 5);
    EXPECT_GE(w, 3);
    EXPECT_LE(w, 5);
  }
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalSkipsZeroWeight) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(3);
  const std::vector<int> s = rng.SampleWithoutReplacement(10, 6);
  EXPECT_EQ(s.size(), 6u);
  std::vector<bool> seen(10, false);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, BetaInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double b = rng.Beta(2.0, 5.0);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    sum += b;
  }
  EXPECT_NEAR(sum / 2000.0, 2.0 / 7.0, 0.02);  // mean of Beta(2,5)
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(2.0, 3.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 3.0, 0.1);
}

// ----------------------------------------------------------------- Stats --

TEST(StatsTest, MeanAndStdDev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(StdDev(xs), 2.13809, 1e-4);  // sample std
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(StatsTest, QuantileInterpolation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 1.75);
}

TEST(StatsTest, BoxplotSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(static_cast<double>(i));
  const BoxplotSummary s = Summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.q1, 26.0);
  EXPECT_DOUBLE_EQ(s.q3, 76.0);
  EXPECT_EQ(s.n, 101);
}

TEST(StatsTest, LogGammaMatchesFactorials) {
  // Gamma(n) = (n-1)!.
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-9);
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-9);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-9);
}

TEST(StatsTest, IncompleteBetaBoundsAndSymmetry) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  const double x = 0.3;
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 5.0, x),
              1.0 - RegularizedIncompleteBeta(5.0, 2.0, 1.0 - x), 1e-10);
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.42), 0.42, 1e-10);
}

TEST(StatsTest, StudentTCdfReferenceValues) {
  // Symmetric around zero.
  EXPECT_NEAR(StudentTCdf(0.0, 10.0), 0.5, 1e-10);
  // t-dist with large df approaches the normal: P(T < 1.96) ~ 0.975.
  EXPECT_NEAR(StudentTCdf(1.96, 10000.0), 0.975, 1e-3);
  // Reference: P(T < 2.228 | df=10) = 0.975.
  EXPECT_NEAR(StudentTCdf(2.228, 10.0), 0.975, 1e-3);
}

TEST(StatsTest, NormalQuantileReference) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.99), 2.326348, 1e-4);
}

TEST(StatsTest, ChiSquaredQuantileReference) {
  // chi2 median with k df is approximately k(1 - 2/(9k))^3.
  EXPECT_NEAR(ChiSquaredQuantile(0.95, 10.0), 18.307, 0.2);
  EXPECT_NEAR(ChiSquaredQuantile(0.05, 10.0), 3.940, 0.2);
  // Monotone in df.
  EXPECT_LT(ChiSquaredQuantile(0.05, 5.0), ChiSquaredQuantile(0.05, 50.0));
}

TEST(StatsTest, WelchTTestDetectsDifference) {
  std::vector<double> a, b;
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.Gaussian(1.0, 0.5));
    b.push_back(rng.Gaussian(0.0, 0.5));
  }
  const TTestResult r = WelchTTest(a, b);
  EXPECT_GT(r.t, 3.0);
  EXPECT_LT(r.p_one_sided, 0.01);
  EXPECT_LT(r.p_two_sided, 0.02);
}

TEST(StatsTest, WelchTTestNullCase) {
  std::vector<double> a, b;
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.Gaussian(0.0, 1.0));
    b.push_back(rng.Gaussian(0.0, 1.0));
  }
  const TTestResult r = WelchTTest(a, b);
  EXPECT_GT(r.p_two_sided, 0.01);  // should not be wildly significant
  EXPECT_GT(r.df, 100.0);
}

TEST(StatsTest, WelchTTestDegenerate) {
  const TTestResult r = WelchTTest({1.0}, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(r.p_one_sided, 1.0);  // too few samples -> no signal
}



TEST(TableTest, RaggedRowsPrintSafely) {
  Table t("Ragged");
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only-one"});
  t.AddRow({"x", "y", "z"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
  EXPECT_NE(os.str().find("z"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(LoggingTest, ThresholdSuppressesAndRestores) {
  // Only checks that the API round-trips; output goes to stderr.
  const LogLevel before = Logger::GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(Logger::GetLogLevel(), LogLevel::kError);
  LNCL_LOG(Info) << "suppressed";
  SetLogLevel(before);
  EXPECT_EQ(Logger::GetLogLevel(), before);
}

TEST(StatsTest, SummarizeSingleValue) {
  const BoxplotSummary s = Summarize({3.5});
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_EQ(s.n, 1);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(55);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

// ------------------------------------------------------------------ Chain --

TEST(ChainViterbiTest, FollowsDominantEmissions) {
  const int k = 3;
  Vector prior(k, 1.0f / k);
  Matrix transition(k, k, 1.0f / k);
  Matrix emission(4, k, 0.01f);
  emission(0, 2) = 1.0f;
  emission(1, 0) = 1.0f;
  emission(2, 1) = 1.0f;
  emission(3, 1) = 1.0f;
  std::vector<int> path;
  ChainViterbi(prior, transition, emission, &path);
  EXPECT_EQ(path, (std::vector<int>{2, 0, 1, 1}));
}

TEST(ChainViterbiTest, TransitionsBreakEmissionTies) {
  // Both states equally likely by emission; sticky transitions plus a prior
  // nudge should keep the chain in state 0.
  const int k = 2;
  Vector prior = {0.9f, 0.1f};
  Matrix transition(k, k);
  transition(0, 0) = 0.9f; transition(0, 1) = 0.1f;
  transition(1, 0) = 0.1f; transition(1, 1) = 0.9f;
  Matrix emission(5, k, 1.0f);
  std::vector<int> path;
  ChainViterbi(prior, transition, emission, &path);
  for (int s : path) EXPECT_EQ(s, 0);
}

TEST(ChainViterbiTest, MatchesBruteForceOnRandomChains) {
  Rng rng(97);
  for (int trial = 0; trial < 20; ++trial) {
    const int k = 2 + rng.UniformInt(2);   // 2-3 states
    const int t_len = 2 + rng.UniformInt(3);  // 2-4 steps
    Vector prior(k);
    Matrix transition(k, k), emission(t_len, k);
    for (int m = 0; m < k; ++m) prior[m] = static_cast<float>(rng.Uniform(0.05, 1.0));
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        transition(a, b) = static_cast<float>(rng.Uniform(0.05, 1.0));
      }
    }
    for (int t = 0; t < t_len; ++t) {
      for (int m = 0; m < k; ++m) {
        emission(t, m) = static_cast<float>(rng.Uniform(0.05, 1.0));
      }
    }
    std::vector<int> viterbi;
    ChainViterbi(prior, transition, emission, &viterbi);

    // Brute force.
    std::vector<int> assign(t_len, 0), best_assign(t_len, 0);
    double best = -1.0;
    for (;;) {
      double w = prior[assign[0]] * emission(0, assign[0]);
      for (int t = 1; t < t_len; ++t) {
        w *= transition(assign[t - 1], assign[t]) * emission(t, assign[t]);
      }
      if (w > best) {
        best = w;
        best_assign = assign;
      }
      int pos = t_len - 1;
      while (pos >= 0 && ++assign[pos] == k) {
        assign[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
    }
    EXPECT_EQ(viterbi, best_assign) << "trial " << trial;
  }
}

TEST(ChainForwardBackwardTest, MarginalsMatchBruteForce) {
  Rng rng(98);
  const int k = 3, t_len = 4;
  Vector prior(k);
  Matrix transition(k, k), emission(t_len, k);
  for (int m = 0; m < k; ++m) prior[m] = static_cast<float>(rng.Uniform(0.05, 1.0));
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      transition(a, b) = static_cast<float>(rng.Uniform(0.05, 1.0));
    }
  }
  for (int t = 0; t < t_len; ++t) {
    for (int m = 0; m < k; ++m) {
      emission(t, m) = static_cast<float>(rng.Uniform(0.05, 1.0));
    }
  }
  Matrix gamma;
  ChainForwardBackward(prior, transition, emission, &gamma, nullptr);

  std::vector<double> marg(static_cast<size_t>(t_len) * k, 0.0);
  double total = 0.0;
  std::vector<int> assign(t_len, 0);
  for (;;) {
    double w = prior[assign[0]] * emission(0, assign[0]);
    for (int t = 1; t < t_len; ++t) {
      w *= transition(assign[t - 1], assign[t]) * emission(t, assign[t]);
    }
    total += w;
    for (int t = 0; t < t_len; ++t) {
      marg[static_cast<size_t>(t) * k + assign[t]] += w;
    }
    int pos = t_len - 1;
    while (pos >= 0 && ++assign[pos] == k) {
      assign[pos] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  for (int t = 0; t < t_len; ++t) {
    for (int m = 0; m < k; ++m) {
      EXPECT_NEAR(gamma(t, m), marg[static_cast<size_t>(t) * k + m] / total,
                  1e-4);
    }
  }
}

// ---------------------------------------------------------------- Config --

TEST(ConfigTest, ParsesKeyValueForms) {
  // Note: a bare "--flag" consumes a following non-flag token as its value,
  // so flags without values go last (or use --flag=1).
  const char* argv[] = {"prog", "--alpha=0.5", "--beta", "7",
                        "positional", "--flag"};
  Config config(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(config.GetDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(config.GetInt("beta", 0), 7);
  EXPECT_TRUE(config.GetBool("flag", false));
  EXPECT_FALSE(config.GetBool("missing", false));
  EXPECT_EQ(config.GetString("missing", "d"), "d");
  ASSERT_EQ(config.positional().size(), 1u);
  EXPECT_EQ(config.positional()[0], "positional");
}

TEST(ConfigTest, EnvironmentFallback) {
  setenv("LNCL_TESTKEY", "99", 1);
  Config config;
  EXPECT_EQ(config.GetInt("testkey", 0), 99);
  unsetenv("LNCL_TESTKEY");
  EXPECT_EQ(config.GetInt("testkey", 3), 3);
}

TEST(ConfigTest, MalformedNumbersFallBack) {
  const char* argv[] = {"prog", "--n=abc"};
  Config config(2, const_cast<char**>(argv));
  EXPECT_EQ(config.GetInt("n", 5), 5);
  EXPECT_DOUBLE_EQ(config.GetDouble("n", 2.5), 2.5);
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, PrintsAlignedRows) {
  Table t("Demo");
  t.SetHeader({"Method", "Acc"});
  t.AddRow({"MV", "88.58"});
  t.AddSeparator();
  t.AddRow({"Logic-LNCL", "91.82"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("Logic-LNCL"), std::string::npos);
  EXPECT_NE(s.find("88.58"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t("X");
  t.SetHeader({"a", "b"});
  t.AddRow({"va,l", "quo\"te"});
  const std::string path = testing::TempDir() + "/lncl_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"va,l\",\"quo\"\"te\"");
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(2.0, 0), "2");
  EXPECT_EQ(FormatMeanStd(1.234, 0.056), "1.23 ±0.06");
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitThenSubmitMore) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(10); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::ParallelFor(64, 8, [&hits](int i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelRunCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelRun(257, [&hits](int i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // The pool is reusable afterwards.
  std::atomic<int> counter{0};
  pool.ParallelRun(10, [&counter](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ParallelRunHandlesEmptyAndSingle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelRun(0, [&counter](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
  pool.ParallelRun(1, [&counter](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 1);
}

// ---------------------------------------------------------- Parallelizer --

TEST(ParallelizerTest, SlotRangePartitionsExactly) {
  for (int n : {0, 1, 7, 8, 9, 63, 64, 100}) {
    int covered = 0;
    int prev_end = 0;
    for (int s = 0; s < Parallelizer::kSlots; ++s) {
      const auto [b, e] = Parallelizer::SlotRange(n, s, Parallelizer::kSlots);
      EXPECT_EQ(b, prev_end) << "gap before slot " << s << " for n=" << n;
      EXPECT_LE(b, e);
      // Balanced: slot sizes differ by at most one.
      EXPECT_LE(e - b, n / Parallelizer::kSlots + 1);
      covered += e - b;
      prev_end = e;
    }
    EXPECT_EQ(covered, n);
    EXPECT_EQ(prev_end, n);
  }
}

TEST(ParallelizerTest, RunSlotsVisitsEachSlotOnceAnyThreadCount) {
  for (int threads : {1, 2, 8}) {
    Parallelizer exec(threads);
    std::vector<std::atomic<int>> hits(Parallelizer::kSlots);
    exec.RunSlots(Parallelizer::kSlots,
                  [&hits](int s) { hits[s].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelizerTest, SlotPartitionIndependentOfThreadCount) {
  // The determinism contract: the slot -> index-range mapping is a pure
  // function of (n, kSlots), never of the thread count.
  const int n = 37;
  auto gather = [&](int threads) {
    Parallelizer exec(threads);
    std::vector<int> owner(n, -1);
    std::mutex mu;
    exec.RunSlots(Parallelizer::kSlots, [&](int s) {
      const auto [b, e] = Parallelizer::SlotRange(n, s, Parallelizer::kSlots);
      std::lock_guard<std::mutex> lock(mu);
      for (int i = b; i < e; ++i) owner[i] = s;
    });
    return owner;
  };
  EXPECT_EQ(gather(1), gather(4));
}

// ------------------------------------------------------------------ Gemm --

namespace {

// Double-accumulated reference, oblivious to blocking and unrolling.
Matrix NaiveGemm(float alpha, const Matrix& a, Trans ta, const Matrix& b,
                 Trans tb, float beta, const Matrix& c0) {
  const int m = ta == Trans::kNo ? a.rows() : a.cols();
  const int k = ta == Trans::kNo ? a.cols() : a.rows();
  const int n = tb == Trans::kNo ? b.cols() : b.rows();
  Matrix c(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        const float av = ta == Trans::kNo ? a(i, kk) : a(kk, i);
        const float bv = tb == Trans::kNo ? b(kk, j) : b(j, kk);
        acc += static_cast<double>(av) * bv;
      }
      const float prior = beta == 0.0f ? 0.0f : beta * c0(i, j);
      c(i, j) = static_cast<float>(alpha * acc) + prior;
    }
  }
  return c;
}

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Gaussian(0.0, 1.0);
  }
  return m;
}

void ExpectNear(const Matrix& got, const Matrix& want, float tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (int r = 0; r < got.rows(); ++r) {
    for (int c = 0; c < got.cols(); ++c) {
      EXPECT_NEAR(got(r, c), want(r, c), tol) << "at (" << r << "," << c << ")";
    }
  }
}

}  // namespace

TEST(GemmTest, MatchesNaiveAcrossShapesTransposesAndBetas) {
  Rng rng(1234);
  // Shapes chosen to hit the kNc=128 column blocking, the k-unroll remainder,
  // and the degenerate edges (1xN, Nx1, empty m/n, k=0).
  const int shapes[][3] = {{3, 5, 4},   {1, 7, 9},   {7, 1, 9},  {9, 7, 1},
                           {2, 130, 3}, {130, 2, 5}, {4, 6, 133}, {17, 31, 29},
                           {0, 5, 4},   {5, 0, 4},   {5, 4, 0}};
  for (const auto& s : shapes) {
    const int m = s[0], n = s[1], k = s[2];
    for (Trans ta : {Trans::kNo, Trans::kYes}) {
      for (Trans tb : {Trans::kNo, Trans::kYes}) {
        for (float beta : {0.0f, 1.0f, 0.5f}) {
          const Matrix a = ta == Trans::kNo ? RandomMatrix(m, k, &rng)
                                            : RandomMatrix(k, m, &rng);
          const Matrix b = tb == Trans::kNo ? RandomMatrix(k, n, &rng)
                                            : RandomMatrix(n, k, &rng);
          const Matrix c0 = RandomMatrix(m, n, &rng);
          const float alpha = 0.75f;
          Matrix c = c0;
          Gemm(alpha, a, ta, b, tb, beta, &c);
          const Matrix want = NaiveGemm(alpha, a, ta, b, tb, beta, c0);
          const float tol = 1e-4f * (k + 1);
          ExpectNear(c, want, tol);
        }
      }
    }
  }
}

TEST(GemmTest, BetaZeroResizesAndIgnoresGarbage) {
  Rng rng(5);
  const Matrix a = RandomMatrix(3, 4, &rng);
  const Matrix b = RandomMatrix(4, 6, &rng);
  Matrix c(9, 9, std::numeric_limits<float>::quiet_NaN());
  Gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, &c);
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 6);
  const Matrix want = NaiveGemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  ExpectNear(c, want, 1e-4f);
}

TEST(GemmTest, LegacyWrappersAgreeWithGemm) {
  Rng rng(6);
  const Matrix a = RandomMatrix(5, 7, &rng);
  const Matrix b = RandomMatrix(7, 3, &rng);
  Matrix out;
  MatMul(a, b, &out);
  ExpectNear(out, NaiveGemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, out),
             1e-4f);
}

TEST(GemmRawTest, StridedViewMatchesMaterializedCopy) {
  // The conv use case: the sliding windows of a row-major T x D input are an
  // (out_rows x window*D) operand with lda = D. Multiplying that view against
  // the filter bank must match the same product over materialized patches.
  Rng rng(7);
  const int t = 12, d = 5, window = 3, f = 4;
  const int out_rows = t - window + 1;
  const int k_dim = window * d;
  const Matrix x = RandomMatrix(t, d, &rng);
  const Matrix w = RandomMatrix(f, k_dim, &rng);

  Matrix patches(out_rows, k_dim);
  for (int o = 0; o < out_rows; ++o) {
    for (int k = 0; k < k_dim; ++k) patches(o, k) = x(o + k / d, k % d);
  }
  Matrix want;
  Gemm(1.0f, patches, Trans::kNo, w, Trans::kYes, 0.0f, &want);

  Matrix got(out_rows, f);
  GemmRaw(out_rows, f, k_dim, 1.0f, x.data(), d, Trans::kNo, w.data(), k_dim,
          Trans::kYes, 0.0f, got.data(), f);
  ExpectNear(got, want, 1e-4f);
}

TEST(GemmRawTest, StridedOutputWritesOnlyTheView) {
  // C with ldc wider than n: columns outside the view must be untouched.
  Rng rng(8);
  const Matrix a = RandomMatrix(3, 4, &rng);
  const Matrix b = RandomMatrix(4, 2, &rng);
  Matrix c(3, 5, 9.0f);
  GemmRaw(3, 2, 4, 1.0f, a.data(), 4, Trans::kNo, b.data(), 2, Trans::kNo,
          0.0f, c.data(), 5);
  Matrix want;
  Gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, &want);
  for (int r = 0; r < 3; ++r) {
    for (int col = 0; col < 2; ++col) {
      EXPECT_NEAR(c(r, col), want(r, col), 1e-4f);
    }
    for (int col = 2; col < 5; ++col) EXPECT_EQ(c(r, col), 9.0f);
  }
}

// -------------------------------------------------------- Resize capacity --

TEST(MatrixTest, ResizeReusesAllocationWhenShapeFits) {
  Matrix m(16, 16);
  const float* p = m.data();
  m.Resize(4, 8);  // shrink: must not reallocate
  EXPECT_EQ(m.data(), p);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 8);
  m.Resize(16, 16);  // regrow within original capacity: still no realloc
  EXPECT_EQ(m.data(), p);
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) EXPECT_EQ(m(r, c), 0.0f);
  }
}

TEST(MatrixTest, ResizeNoZeroKeepsShapeButSkipsFill) {
  Matrix m(2, 3, 7.0f);
  m.ResizeNoZero(3, 2);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m.size(), 6u);
  m.Resize(1, 2);
  EXPECT_EQ(m(0, 0), 0.0f);
  EXPECT_EQ(m(0, 1), 0.0f);
}

TEST(CheckTest, PassingCheckIsSilent) {
  LNCL_CHECK(1 + 1 == 2);  // must not abort or log
}

TEST(CheckDeathTest, FailingCheckAbortsWithFileAndLine) {
  // LNCL_CHECK is always on — release builds included — and must identify
  // the failing expression and call site even when the log threshold would
  // swallow an Error record.
  Logger::SetLogLevel(LogLevel::kError);
  EXPECT_DEATH(LNCL_CHECK(2 + 2 == 5),
               "util_test\\.cc:[0-9]+\\] CHECK failed: 2 \\+ 2 == 5");
  Logger::SetLogLevel(LogLevel::kInfo);
}

TEST(CheckDeathTest, CheckFailureCarriesDetail) {
  EXPECT_DEATH(CheckFailure("dir/some_file.cc", 42, "p != nullptr", "ctx"),
               "some_file\\.cc:42\\] CHECK failed: p != nullptr \\(ctx\\)");
}

TEST(CheckTest, DcheckMatchesBuildMode) {
#if LNCL_AUDIT_ENABLED
  EXPECT_DEATH(LNCL_DCHECK(false), "CHECK failed: false");
#else
  LNCL_DCHECK(false);  // compiled out: must be a no-op
#endif
}

}  // namespace
}  // namespace lncl::util
