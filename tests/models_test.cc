#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/embedding.h"
#include "models/crf_tagger.h"
#include "models/logreg.h"
#include "models/model.h"
#include "models/ner_tagger.h"
#include "models/text_cnn.h"
#include "nn/gradcheck.h"
#include "nn/optimizer.h"
#include "nn/softmax.h"
#include "util/rng.h"

namespace lncl::models {
namespace {

using util::Matrix;
using util::Rng;

data::EmbeddingPtr MakeEmbeddings(int vocab, int dim, Rng* rng) {
  auto table = std::make_shared<data::EmbeddingTable>(vocab, dim);
  for (int v = 1; v < vocab; ++v) {
    for (int d = 0; d < dim; ++d) {
      table->table()(v, d) = static_cast<float>(rng->Gaussian());
    }
  }
  return table;
}

data::Instance MakeInstance(int len, int vocab, Rng* rng, bool sequence,
                            int num_classes) {
  data::Instance x;
  for (int i = 0; i < len; ++i) x.tokens.push_back(1 + rng->UniformInt(vocab - 1));
  if (sequence) {
    for (int i = 0; i < len; ++i) x.tag_labels.push_back(rng->UniformInt(num_classes));
  } else {
    x.label = rng->UniformInt(num_classes);
  }
  return x;
}

void ExpectRowStochastic(const Matrix& p) {
  for (int r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < p.cols(); ++c) {
      EXPECT_GE(p(r, c), 0.0f);
      sum += p(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

// Generic soft-target gradient check for any Model.
void RunModelGradCheck(Model* model, const data::Instance& x,
                       const Matrix& q, Rng* rng, double tol) {
  // Deterministic loss: fixed rng clone for dropout inside forward.
  auto loss_fn = [&]() {
    Rng fixed(12345);
    const Matrix& p = model->ForwardTrain(x, &fixed);
    return nn::CrossEntropyRows(q, p);
  };
  auto compute_grads = [&]() {
    nn::ZeroGrads(model->Params());
    Rng fixed(12345);
    model->ForwardTrain(x, &fixed);
    model->BackwardSoftTarget(q, 1.0f);
  };
  const nn::GradCheckResult r = nn::CheckGradients(
      loss_fn, compute_grads, model->Params(), rng, 1e-3, 8);
  EXPECT_LT(r.max_rel_error, tol) << "abs " << r.max_abs_error;
}

// ---------------------------------------------------------------- TextCnn --

TEST(TextCnnTest, PredictShapeAndNormalization) {
  Rng rng(1);
  auto emb = MakeEmbeddings(50, 8, &rng);
  TextCnnConfig config;
  config.feature_maps = 4;
  TextCnn cnn(config, emb, &rng);
  const data::Instance x = MakeInstance(12, 50, &rng, false, 2);
  const Matrix p = cnn.Predict(x);
  EXPECT_EQ(p.rows(), 1);
  EXPECT_EQ(p.cols(), 2);
  ExpectRowStochastic(p);
  EXPECT_EQ(cnn.NumItems(x), 1);
}

TEST(TextCnnTest, HandlesShortSentences) {
  Rng rng(2);
  auto emb = MakeEmbeddings(50, 8, &rng);
  TextCnnConfig config;
  config.feature_maps = 4;
  TextCnn cnn(config, emb, &rng);
  for (int len = 1; len <= 6; ++len) {
    const data::Instance x = MakeInstance(len, 50, &rng, false, 2);
    const Matrix p = cnn.Predict(x);
    ExpectRowStochastic(p);
  }
}

TEST(TextCnnTest, GradientCheckNoDropout) {
  Rng rng(3);
  auto emb = MakeEmbeddings(40, 6, &rng);
  TextCnnConfig config;
  config.feature_maps = 3;
  config.dropout = 0.0;  // deterministic for finite differences
  TextCnn cnn(config, emb, &rng);
  const data::Instance x = MakeInstance(9, 40, &rng, false, 2);
  Matrix q(1, 2);
  q(0, 0) = 0.3f;
  q(0, 1) = 0.7f;
  RunModelGradCheck(&cnn, x, q, &rng, 2e-2);
}

TEST(TextCnnTest, GradientCheckWithFixedDropoutMask) {
  Rng rng(4);
  auto emb = MakeEmbeddings(40, 6, &rng);
  TextCnnConfig config;
  config.feature_maps = 3;
  config.dropout = 0.5;
  TextCnn cnn(config, emb, &rng);
  const data::Instance x = MakeInstance(9, 40, &rng, false, 2);
  Matrix q(1, 2);
  q(0, 0) = 1.0f;
  // The fixed-seed rng inside RunModelGradCheck makes the mask reproducible.
  RunModelGradCheck(&cnn, x, q, &rng, 2e-2);
}

TEST(TextCnnTest, TrainingReducesLossOnOneInstance) {
  Rng rng(5);
  auto emb = MakeEmbeddings(40, 8, &rng);
  TextCnnConfig config;
  config.feature_maps = 4;
  config.dropout = 0.0;
  TextCnn cnn(config, emb, &rng);
  const data::Instance x = MakeInstance(10, 40, &rng, false, 2);
  Matrix q(1, 2);
  q(0, 0) = 1.0f;
  nn::Sgd sgd(0.5);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 30; ++step) {
    cnn.ForwardTrain(x, &rng);
    const double loss = cnn.BackwardSoftTarget(q, 1.0f);
    if (step == 0) first = loss;
    last = loss;
    sgd.Step(cnn.Params());
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(TextCnnTest, FactoryProducesIndependentModels) {
  Rng rng(6);
  auto emb = MakeEmbeddings(40, 8, &rng);
  TextCnnConfig config;
  config.feature_maps = 4;
  auto factory = TextCnn::Factory(config, emb);
  auto m1 = factory(&rng);
  auto m2 = factory(&rng);
  const data::Instance x = MakeInstance(10, 40, &rng, false, 2);
  const Matrix p1 = m1->Predict(x);
  const Matrix p2 = m2->Predict(x);
  EXPECT_NE(p1(0, 0), p2(0, 0));  // different random init
}


TEST(TextCnnTest, TrainableEmbeddingsGradientCheck) {
  Rng rng(15);
  auto emb = MakeEmbeddings(40, 6, &rng);
  TextCnnConfig config;
  config.feature_maps = 3;
  config.dropout = 0.0;
  config.trainable_embeddings = true;
  TextCnn cnn(config, emb, &rng);
  // The table itself is now a parameter.
  EXPECT_EQ(cnn.Params().front()->name, "cnn.emb.table");
  const data::Instance x = MakeInstance(9, 40, &rng, false, 2);
  Matrix q(1, 2);
  q(0, 1) = 1.0f;
  RunModelGradCheck(&cnn, x, q, &rng, 2e-2);
}

TEST(TextCnnTest, TrainableEmbeddingsActuallyMove) {
  Rng rng(16);
  auto emb = MakeEmbeddings(40, 6, &rng);
  TextCnnConfig config;
  config.feature_maps = 3;
  config.dropout = 0.0;
  config.trainable_embeddings = true;
  TextCnn cnn(config, emb, &rng);
  const data::Instance x = MakeInstance(9, 40, &rng, false, 2);
  nn::Parameter* table = cnn.Params().front();
  const Matrix before = table->value;
  const Matrix shared_before = emb->table();
  Matrix q(1, 2);
  q(0, 0) = 1.0f;
  nn::Sgd sgd(0.5);
  for (int step = 0; step < 5; ++step) {
    cnn.ForwardTrain(x, &rng);
    cnn.BackwardSoftTarget(q, 1.0f);
    sgd.Step(cnn.Params());
  }
  // Some embedding row used by the instance moved...
  double moved = 0.0;
  for (int v = 0; v < table->value.rows(); ++v) {
    for (int d = 0; d < table->value.cols(); ++d) {
      moved += std::fabs(table->value(v, d) - before(v, d));
    }
  }
  EXPECT_GT(moved, 1e-4);
  // ...while the shared static table is untouched.
  for (int v = 0; v < shared_before.rows(); ++v) {
    for (int d = 0; d < shared_before.cols(); ++d) {
      ASSERT_FLOAT_EQ(emb->table()(v, d), shared_before(v, d));
    }
  }
}

// -------------------------------------------------------------- NerTagger --

TEST(NerTaggerTest, PredictShape) {
  Rng rng(7);
  auto emb = MakeEmbeddings(60, 8, &rng);
  NerTaggerConfig config;
  config.conv_features = 6;
  config.gru_hidden = 5;
  NerTagger tagger(config, emb, &rng);
  const data::Instance x = MakeInstance(11, 60, &rng, true, 9);
  const Matrix p = tagger.Predict(x);
  EXPECT_EQ(p.rows(), 11);
  EXPECT_EQ(p.cols(), 9);
  ExpectRowStochastic(p);
  EXPECT_EQ(tagger.NumItems(x), 11);
}

TEST(NerTaggerTest, GradientCheckNoDropout) {
  Rng rng(8);
  auto emb = MakeEmbeddings(30, 5, &rng);
  NerTaggerConfig config;
  config.conv_features = 4;
  config.gru_hidden = 3;
  config.dropout = 0.0;
  config.num_classes = 4;
  NerTagger tagger(config, emb, &rng);
  const data::Instance x = MakeInstance(6, 30, &rng, true, 4);
  Matrix q(6, 4);
  Rng qrng(9);
  for (int t = 0; t < 6; ++t) {
    float sum = 0.0f;
    for (int c = 0; c < 4; ++c) {
      q(t, c) = static_cast<float>(qrng.Uniform(0.1, 1.0));
      sum += q(t, c);
    }
    for (int c = 0; c < 4; ++c) q(t, c) /= sum;
  }
  RunModelGradCheck(&tagger, x, q, &rng, 3e-2);
}

TEST(NerTaggerTest, GradientCheckWithDropout) {
  Rng rng(10);
  auto emb = MakeEmbeddings(30, 5, &rng);
  NerTaggerConfig config;
  config.conv_features = 4;
  config.gru_hidden = 3;
  config.dropout = 0.4;
  config.num_classes = 3;
  NerTagger tagger(config, emb, &rng);
  const data::Instance x = MakeInstance(5, 30, &rng, true, 3);
  Matrix q(5, 3);
  for (int t = 0; t < 5; ++t) q(t, t % 3) = 1.0f;
  RunModelGradCheck(&tagger, x, q, &rng, 3e-2);
}

TEST(NerTaggerTest, LearnsConstantTag) {
  Rng rng(11);
  auto emb = MakeEmbeddings(30, 6, &rng);
  NerTaggerConfig config;
  config.conv_features = 6;
  config.gru_hidden = 4;
  config.dropout = 0.0;
  config.num_classes = 3;
  NerTagger tagger(config, emb, &rng);
  const data::Instance x = MakeInstance(8, 30, &rng, true, 3);
  Matrix q(8, 3);
  for (int t = 0; t < 8; ++t) q(t, 1) = 1.0f;
  nn::Adam adam(0.02);
  for (int step = 0; step < 60; ++step) {
    tagger.ForwardTrain(x, &rng);
    tagger.BackwardSoftTarget(q, 1.0f);
    adam.Step(tagger.Params());
  }
  const Matrix p = tagger.Predict(x);
  for (int t = 0; t < 8; ++t) EXPECT_GT(p(t, 1), 0.8f);
}


TEST(NerTaggerTest, LstmVariantGradientCheck) {
  Rng rng(30);
  auto emb = MakeEmbeddings(30, 5, &rng);
  NerTaggerConfig config;
  config.conv_features = 4;
  config.gru_hidden = 3;
  config.dropout = 0.0;
  config.num_classes = 4;
  config.recurrent = NerTaggerConfig::Recurrent::kLstm;
  NerTagger tagger(config, emb, &rng);
  const data::Instance x = MakeInstance(6, 30, &rng, true, 4);
  Matrix q(6, 4);
  for (int t = 0; t < 6; ++t) q(t, t % 4) = 1.0f;
  RunModelGradCheck(&tagger, x, q, &rng, 3e-2);
}

TEST(NerTaggerTest, LstmVariantPredictShape) {
  Rng rng(31);
  auto emb = MakeEmbeddings(30, 5, &rng);
  NerTaggerConfig config;
  config.conv_features = 4;
  config.gru_hidden = 3;
  config.recurrent = NerTaggerConfig::Recurrent::kLstm;
  NerTagger tagger(config, emb, &rng);
  const data::Instance x = MakeInstance(7, 30, &rng, true, 9);
  const Matrix p = tagger.Predict(x);
  EXPECT_EQ(p.rows(), 7);
  EXPECT_EQ(p.cols(), 9);
  ExpectRowStochastic(p);
}

// ----------------------------------------------------- LogisticRegression --

TEST(LogisticRegressionTest, PredictAndGradCheck) {
  Rng rng(12);
  auto emb = MakeEmbeddings(30, 6, &rng);
  LogisticRegression lr(3, emb, &rng);
  const data::Instance x = MakeInstance(7, 30, &rng, false, 3);
  const Matrix p = lr.Predict(x);
  EXPECT_EQ(p.rows(), 1);
  EXPECT_EQ(p.cols(), 3);
  ExpectRowStochastic(p);

  Matrix q(1, 3);
  q(0, 2) = 1.0f;
  RunModelGradCheck(&lr, x, q, &rng, 1e-2);
}

TEST(LogisticRegressionTest, EmptyTokenListSafe) {
  Rng rng(13);
  auto emb = MakeEmbeddings(30, 6, &rng);
  LogisticRegression lr(2, emb, &rng);
  data::Instance x;
  x.label = 0;
  const Matrix p = lr.Predict(x);
  ExpectRowStochastic(p);
}

TEST(ModelProbGradTest, BackwardProbGradMatchesSoftTargetDirection) {
  // For loss CE(q, p), dL/dp = -q/p. Feeding that through BackwardProbGrad
  // must match BackwardSoftTarget gradients.
  Rng rng(14);
  auto emb = MakeEmbeddings(30, 6, &rng);
  LogisticRegression lr(2, emb, &rng);
  const data::Instance x = MakeInstance(5, 30, &rng, false, 2);
  Matrix q(1, 2);
  q(0, 0) = 0.4f;
  q(0, 1) = 0.6f;

  Rng fixed(999);
  nn::ZeroGrads(lr.Params());
  const Matrix& p = lr.ForwardTrain(x, &fixed);
  lr.BackwardSoftTarget(q, 1.0f);
  Matrix grad_soft = lr.Params()[0]->grad;

  nn::ZeroGrads(lr.Params());
  Rng fixed2(999);
  lr.ForwardTrain(x, &fixed2);
  Matrix grad_p(1, 2);
  grad_p(0, 0) = -q(0, 0) / p(0, 0);
  grad_p(0, 1) = -q(0, 1) / p(0, 1);
  lr.BackwardProbGrad(grad_p, 1.0f);
  Matrix grad_prob_path = lr.Params()[0]->grad;

  for (int r = 0; r < grad_soft.rows(); ++r) {
    for (int c = 0; c < grad_soft.cols(); ++c) {
      EXPECT_NEAR(grad_soft(r, c), grad_prob_path(r, c), 1e-4);
    }
  }
}


// -------------------------------------------------------------- CrfTagger --

TEST(CrfTaggerTest, MarginalsAreRowStochastic) {
  Rng rng(20);
  auto emb = MakeEmbeddings(40, 6, &rng);
  CrfTaggerConfig config;
  config.conv_features = 5;
  config.gru_hidden = 4;
  config.num_classes = 4;
  CrfTagger crf(config, emb, &rng);
  const data::Instance x = MakeInstance(7, 40, &rng, true, 4);
  const Matrix p = crf.Predict(x);
  EXPECT_EQ(p.rows(), 7);
  EXPECT_EQ(p.cols(), 4);
  ExpectRowStochastic(p);
}

TEST(CrfTaggerTest, GradientCheckNllAgainstFiniteDifferences) {
  Rng rng(21);
  auto emb = MakeEmbeddings(30, 5, &rng);
  CrfTaggerConfig config;
  config.conv_features = 4;
  config.gru_hidden = 3;
  config.dropout = 0.0;
  config.num_classes = 3;
  CrfTagger crf(config, emb, &rng);
  const data::Instance x = MakeInstance(5, 30, &rng, true, 3);
  Matrix q(5, 3);
  for (int t = 0; t < 5; ++t) q(t, (t * 2) % 3) = 1.0f;

  auto loss_fn = [&]() {
    // BackwardSoftTarget both computes the loss and accumulates grads; the
    // checker compares against the grads from compute_grads, so save and
    // restore them around the probe evaluation.
    const std::vector<nn::Parameter*> params = crf.Params();
    std::vector<Matrix> saved;
    for (nn::Parameter* p : params) saved.push_back(p->grad);
    Rng fixed(7);
    crf.ForwardTrain(x, &fixed);
    const double loss = crf.BackwardSoftTarget(q, 1.0f);
    for (size_t i = 0; i < params.size(); ++i) params[i]->grad = saved[i];
    return loss;
  };
  auto compute_grads = [&]() {
    nn::ZeroGrads(crf.Params());
    Rng fixed(7);
    crf.ForwardTrain(x, &fixed);
    crf.BackwardSoftTarget(q, 1.0f);
  };
  const nn::GradCheckResult r = nn::CheckGradients(
      loss_fn, compute_grads, crf.Params(), &rng, 1e-3, 8);
  EXPECT_LT(r.max_rel_error, 3e-2) << "abs " << r.max_abs_error;
}

TEST(CrfTaggerTest, LearnsTransitionStructure) {
  // Supervision where class 1 is ALWAYS followed by class 2. After training,
  // the learned transition score T(1, 2) should dominate row 1.
  Rng rng(22);
  auto emb = MakeEmbeddings(30, 6, &rng);
  CrfTaggerConfig config;
  config.conv_features = 6;
  config.gru_hidden = 4;
  config.dropout = 0.0;
  config.num_classes = 3;
  CrfTagger crf(config, emb, &rng);
  nn::Adam adam(0.05);
  for (int step = 0; step < 120; ++step) {
    data::Instance x = MakeInstance(6, 30, &rng, true, 3);
    Matrix q(6, 3);
    for (int t = 0; t < 6; ++t) {
      const int label = t % 2 == 0 ? 1 : 2;  // 1 2 1 2 ...
      q(t, label) = 1.0f;
    }
    crf.ForwardTrain(x, &rng);
    crf.BackwardSoftTarget(q, 1.0f);
    adam.Step(crf.Params());
  }
  // Inspect the transition parameter through Params() (index: conv 2 +
  // gru 9 + fc 2 = 13 -> transition at 13).
  const nn::Parameter* transition = crf.Params()[13];
  ASSERT_EQ(transition->name, "crf.transition");
  EXPECT_GT(transition->value(1, 2), transition->value(1, 0));
  EXPECT_GT(transition->value(1, 2), transition->value(1, 1));
}

TEST(CrfTaggerTest, ViterbiAgreesWithMarginalsOnConfidentInput) {
  Rng rng(23);
  auto emb = MakeEmbeddings(40, 6, &rng);
  CrfTaggerConfig config;
  config.conv_features = 5;
  config.gru_hidden = 4;
  config.num_classes = 4;
  CrfTagger crf(config, emb, &rng);
  const data::Instance x = MakeInstance(6, 40, &rng, true, 4);
  const std::vector<int> viterbi = crf.Decode(x);
  ASSERT_EQ(viterbi.size(), 6u);
  for (int v : viterbi) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 4);
  }
}

TEST(CrfTaggerDeathTest, ProbGradPathAborts) {
  Rng rng(24);
  auto emb = MakeEmbeddings(20, 4, &rng);
  CrfTaggerConfig config;
  config.conv_features = 3;
  config.gru_hidden = 3;
  config.num_classes = 3;
  CrfTagger crf(config, emb, &rng);
  const data::Instance x = MakeInstance(4, 20, &rng, true, 3);
  crf.ForwardTrain(x, &rng);
  Matrix g(4, 3);
  EXPECT_DEATH(crf.BackwardProbGrad(g, 1.0f), "CrfTagger");
}

}  // namespace
}  // namespace lncl::models
