// Bit-identity regression tests for the deterministic sharded training path
// (DESIGN.md §5). Training with config.threads = 1 and config.threads = 4
// must produce byte-for-byte identical final parameters, loss curves, dev
// curves, posteriors q_f, and confusion estimates: the sharded path always
// partitions work over Parallelizer::kSlots fixed slots and reduces the
// per-slot accumulators in slot order, so the thread count only changes who
// executes a slot, never what is summed in which order.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/logic_lncl.h"
#include "core/ner_rules.h"
#include "crowd/simulator.h"
#include "data/ner_gen.h"
#include "data/sentiment_gen.h"
#include "models/ner_tagger.h"
#include "models/text_cnn.h"
#include "util/gemm_kernel.h"
#include "util/rng.h"

namespace lncl {
namespace {

using util::Rng;

// Byte-level snapshot of every parameter value matrix.
std::vector<std::vector<float>> SnapshotParams(models::Model* model) {
  std::vector<std::vector<float>> out;
  for (nn::Parameter* p : model->Params()) {
    out.emplace_back(p->value.data(), p->value.data() + p->value.size());
  }
  return out;
}

bool BitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

bool BitEqual(const util::Matrix& a, const util::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

struct FitSnapshot {
  core::LogicLnclResult result;
  std::vector<std::vector<float>> params;
  std::vector<util::Matrix> qf;
  std::vector<util::Matrix> confusions;
};

void ExpectBitIdentical(const FitSnapshot& a, const FitSnapshot& b) {
  // Exact double equality is intentional: the guarantee is bit-identity,
  // not closeness.
  ASSERT_EQ(a.result.loss_curve.size(), b.result.loss_curve.size());
  for (size_t i = 0; i < a.result.loss_curve.size(); ++i) {
    EXPECT_EQ(a.result.loss_curve[i], b.result.loss_curve[i])
        << "loss diverges at epoch " << i;
  }
  ASSERT_EQ(a.result.dev_curve.size(), b.result.dev_curve.size());
  for (size_t i = 0; i < a.result.dev_curve.size(); ++i) {
    EXPECT_EQ(a.result.dev_curve[i], b.result.dev_curve[i])
        << "dev score diverges at epoch " << i;
  }
  EXPECT_EQ(a.result.best_epoch, b.result.best_epoch);
  EXPECT_EQ(a.result.best_dev_score, b.result.best_dev_score);

  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_TRUE(BitEqual(a.params[i], b.params[i]))
        << "parameter " << i << " differs";
  }
  ASSERT_EQ(a.qf.size(), b.qf.size());
  for (size_t i = 0; i < a.qf.size(); ++i) {
    EXPECT_TRUE(BitEqual(a.qf[i], b.qf[i])) << "q_f[" << i << "] differs";
  }
  ASSERT_EQ(a.confusions.size(), b.confusions.size());
  for (size_t i = 0; i < a.confusions.size(); ++i) {
    EXPECT_TRUE(BitEqual(a.confusions[i], b.confusions[i]))
        << "confusion " << i << " differs";
  }
}

// ------------------------------------------------------- sentiment TextCnn

class SentimentDeterminismTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    data::SentimentGenConfig gcfg;
    corpus_ = data::GenerateSentimentCorpus(gcfg, 200, 60, 60, &rng);
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 15;
    auto sim = crowd::CrowdSimulator::MakeClassification(ccfg, 2, &rng);
    annotations_ = std::make_unique<crowd::AnnotationSet>(
        sim.Annotate(corpus_.train, &rng));
    models::TextCnnConfig mcfg;
    mcfg.feature_maps = 8;
    factory_ = models::TextCnn::Factory(mcfg, corpus_.embeddings);
  }

  FitSnapshot Run(int threads) const {
    core::LogicLnclConfig config;
    config.epochs = 4;
    config.batch_size = 32;
    config.patience = 4;
    config.k_schedule = core::SentimentKSchedule();
    config.optimizer.kind = "adadelta";
    config.optimizer.lr = 1.0;
    config.threads = threads;
    Rng rng(1);
    core::LogicLncl learner(config, factory_, nullptr);
    FitSnapshot snap;
    snap.result = learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
    snap.params = SnapshotParams(learner.model());
    snap.qf = learner.qf();
    for (const auto& c : learner.confusions()) {
      snap.confusions.push_back(c.matrix());
    }
    return snap;
  }

  data::SentimentCorpus corpus_;
  std::unique_ptr<crowd::AnnotationSet> annotations_;
  models::ModelFactory factory_;
};

TEST_F(SentimentDeterminismTest, OneVsFourThreadsBitIdentical) {
  const FitSnapshot one = Run(1);
  const FitSnapshot four = Run(4);
  ExpectBitIdentical(one, four);
}

TEST_F(SentimentDeterminismTest, RepeatedRunsBitIdentical) {
  // Same thread count twice: the sharded path must also be reproducible
  // run-to-run (no address-dependent or scheduling-dependent state leaks).
  const FitSnapshot a = Run(4);
  const FitSnapshot b = Run(4);
  ExpectBitIdentical(a, b);
}

TEST_F(SentimentDeterminismTest, ScalarKernelOverrideBitIdentical) {
  // Whole-fit analogue of the LNCL_GEMM_KERNEL=scalar override: the scalar
  // GEMM backend must reproduce the SIMD trajectory byte-for-byte
  // (DESIGN.md §9 — one sequential-fma accumulator per output element in
  // both backends).
  if (!util::gemm::SimdCompiled()) {
    GTEST_SKIP() << "no SIMD kernel in this build";
  }
  util::gemm::SetActiveKindForTest(util::gemm::Kind::kSimd);
  const FitSnapshot simd = Run(1);
  util::gemm::SetActiveKindForTest(util::gemm::Kind::kScalar);
  const FitSnapshot scalar = Run(1);
  util::gemm::SetActiveKindForTest(util::gemm::ParseKindEnv());
  ExpectBitIdentical(simd, scalar);
}

// ------------------------------------------------------------- NER tagger

class NerDeterminismTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(4048);
    data::NerGenConfig gcfg;
    corpus_ = data::GenerateNerCorpus(gcfg, 120, 40, 40, &rng);
    crowd::CrowdConfig ccfg;
    ccfg.num_annotators = 10;
    auto sim = crowd::CrowdSimulator::MakeSequence(ccfg, &rng);
    annotations_ = std::make_unique<crowd::AnnotationSet>(
        sim.AnnotateSequences(corpus_.train, &rng));
    models::NerTaggerConfig mcfg;
    mcfg.conv_features = 16;
    mcfg.gru_hidden = 8;
    factory_ = models::NerTagger::Factory(mcfg, corpus_.embeddings);
    projector_ = core::MakeNerRuleProjector();
  }

  FitSnapshot Run(int threads) const {
    core::LogicLnclConfig config;
    config.epochs = 3;
    config.batch_size = 16;
    config.patience = 3;
    config.weighted_loss = true;
    config.k_schedule = core::NerKSchedule();
    config.optimizer.kind = "adam";
    config.optimizer.lr = 0.002;
    config.threads = threads;
    Rng rng(1);
    core::LogicLncl learner(config, factory_, projector_.get());
    FitSnapshot snap;
    snap.result = learner.Fit(corpus_.train, *annotations_, corpus_.dev, &rng);
    snap.params = SnapshotParams(learner.model());
    snap.qf = learner.qf();
    for (const auto& c : learner.confusions()) {
      snap.confusions.push_back(c.matrix());
    }
    return snap;
  }

  data::NerCorpus corpus_;
  std::unique_ptr<crowd::AnnotationSet> annotations_;
  models::ModelFactory factory_;
  std::unique_ptr<logic::SequenceRuleProjector> projector_;
};

TEST_F(NerDeterminismTest, OneVsFourThreadsBitIdentical) {
  const FitSnapshot one = Run(1);
  const FitSnapshot four = Run(4);
  ExpectBitIdentical(one, four);
}

}  // namespace
}  // namespace lncl
