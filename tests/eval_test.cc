#include <gtest/gtest.h>

#include <memory>

#include "data/bio.h"
#include "eval/metrics.h"
#include "eval/reliability.h"
#include "models/logreg.h"
#include "util/matrix.h"

namespace lncl::eval {
namespace {

using data::kBLoc;
using data::kBOrg;
using data::kBPer;
using data::kILoc;
using data::kIOrg;
using data::kIPer;
using data::kO;

data::Dataset MakeSequenceDataset(
    const std::vector<std::vector<int>>& gold_tags) {
  data::Dataset d;
  d.num_classes = data::kNumBioLabels;
  d.sequence = true;
  for (const auto& tags : gold_tags) {
    data::Instance x;
    x.tokens.assign(tags.size(), 1);
    x.tag_labels = tags;
    d.instances.push_back(x);
  }
  return d;
}

// ----------------------------------------------------------------- Argmax --

TEST(ArgmaxRowsTest, PicksRowWinners) {
  util::Matrix m(2, 3);
  m(0, 1) = 0.9f;
  m(1, 2) = 0.4f;
  m(1, 0) = 0.3f;
  const std::vector<int> winners = ArgmaxRows(m);
  EXPECT_EQ(winners[0], 1);
  EXPECT_EQ(winners[1], 2);
}

// --------------------------------------------------------------- Accuracy --

TEST(AccuracyTest, ClassificationCountsArgmaxMatches) {
  data::Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < 4; ++i) {
    data::Instance x;
    x.tokens = {1};
    x.label = i % 2;
    d.instances.push_back(x);
  }
  // Predictor always says class 1 => accuracy 0.5 on balanced labels.
  const Predictor always_one = [](const data::Instance&) {
    util::Matrix p(1, 2);
    p(0, 1) = 1.0f;
    return p;
  };
  EXPECT_DOUBLE_EQ(Accuracy(always_one, d), 0.5);
}

TEST(AccuracyTest, PosteriorAccuracyTokenLevel) {
  data::Dataset d = MakeSequenceDataset({{kO, kBPer, kIPer}});
  std::vector<util::Matrix> posteriors;
  util::Matrix q(3, data::kNumBioLabels);
  q(0, kO) = 1.0f;
  q(1, kBPer) = 1.0f;
  q(2, kO) = 1.0f;  // one wrong token
  posteriors.push_back(q);
  EXPECT_NEAR(PosteriorAccuracy(posteriors, d), 2.0 / 3.0, 1e-9);
}

// ----------------------------------------------------------------- SpanF1 --

TEST(SpanF1Test, PerfectPrediction) {
  data::Dataset d = MakeSequenceDataset({{kO, kBPer, kIPer, kO, kBOrg}});
  const PrF1 r = SpanF1({{kO, kBPer, kIPer, kO, kBOrg}}, d);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
}

TEST(SpanF1Test, StrictCriteriaRejectsBoundaryMismatch) {
  // Prediction covers [1, 2) instead of [1, 3): no credit under strict.
  data::Dataset d = MakeSequenceDataset({{kO, kBPer, kIPer, kO}});
  const PrF1 r = SpanF1({{kO, kBPer, kO, kO}}, d);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(SpanF1Test, StrictCriteriaRejectsTypeMismatch) {
  data::Dataset d = MakeSequenceDataset({{kO, kBPer, kIPer, kO}});
  const PrF1 r = SpanF1({{kO, kBOrg, kIOrg, kO}}, d);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(SpanF1Test, PrecisionRecallAsymmetry) {
  // Gold: two entities. Prediction: one exactly right, one spurious, one
  // missed -> P = 1/2, R = 1/2.
  data::Dataset d =
      MakeSequenceDataset({{kBPer, kO, kBOrg, kO, kO, kO}});
  const PrF1 r = SpanF1({{kBPer, kO, kO, kO, kBLoc, kO}}, d);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 0.5);
  EXPECT_DOUBLE_EQ(r.f1, 0.5);
}

TEST(SpanF1Test, NoEntitiesAnywhere) {
  data::Dataset d = MakeSequenceDataset({{kO, kO, kO}});
  const PrF1 r = SpanF1({{kO, kO, kO}}, d);
  EXPECT_DOUBLE_EQ(r.precision, 0.0);  // nothing predicted
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(SpanF1Test, MultiInstanceAggregation) {
  data::Dataset d = MakeSequenceDataset(
      {{kBPer, kO}, {kO, kBOrg}, {kBLoc, kILoc}});
  // Get 2 of 3 right.
  const PrF1 r =
      SpanF1({{kBPer, kO}, {kO, kO}, {kBLoc, kILoc}}, d);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_NEAR(r.recall, 2.0 / 3.0, 1e-9);
}

TEST(SpanF1Test, F1IsHarmonicMean) {
  data::Dataset d = MakeSequenceDataset(
      {{kBPer, kO, kBOrg, kO, kBLoc, kO, kBPer, kO}});
  // 4 gold; predict 2 of them (correct) -> P = 1, R = 0.5, F1 = 2/3.
  const PrF1 r = SpanF1({{kBPer, kO, kBOrg, kO, kO, kO, kO, kO}}, d);
  EXPECT_NEAR(r.f1, 2.0 * 1.0 * 0.5 / 1.5, 1e-9);
}

TEST(SpanF1Test, DevScoreDispatchesOnTaskKind) {
  data::Dataset seq = MakeSequenceDataset({{kBPer, kO}});
  const Predictor perfect = [](const data::Instance& x) {
    util::Matrix p(static_cast<int>(x.tokens.size()), data::kNumBioLabels);
    p(0, kBPer) = 1.0f;
    for (int t = 1; t < p.rows(); ++t) p(t, kO) = 1.0f;
    return p;
  };
  EXPECT_DOUBLE_EQ(DevScore(perfect, seq), 1.0);

  data::Dataset cls;
  cls.num_classes = 2;
  data::Instance x;
  x.tokens = {1};
  x.label = 0;
  cls.instances.push_back(x);
  const Predictor zero = [](const data::Instance&) {
    util::Matrix p(1, 2);
    p(0, 0) = 1.0f;
    return p;
  };
  EXPECT_DOUBLE_EQ(DevScore(zero, cls), 1.0);
}


TEST(SpanF1Test, EmptyDataset) {
  data::Dataset d;
  d.num_classes = data::kNumBioLabels;
  d.sequence = true;
  const PrF1 r = SpanF1(std::vector<std::vector<int>>{}, d);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(SpanF1Test, DanglingInsidePredictionsCountAsSpans) {
  // Crowd-style invalid BIO in predictions: the conventional decode treats
  // a dangling I-X as starting a span, which then fails the strict match.
  data::Dataset d = MakeSequenceDataset({{kO, kBPer, kIPer}});
  const PrF1 r = SpanF1({{kIPer, kBPer, kIPer}}, d);
  // Predicted spans: [0,1) PER (dangling) and [1,3) PER; only the second
  // matches -> P = 1/2, R = 1.
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(AccuracyTest, ModelPredictorWrapsConstModel) {
  // ModelPredictor must be usable with any Model; verified with a tiny
  // logistic regression.
  util::Rng rng(5);
  auto emb = std::make_shared<data::EmbeddingTable>(5, 2);
  models::LogisticRegression lr(2, emb, &rng);
  data::Dataset d;
  d.num_classes = 2;
  data::Instance x;
  x.tokens = {1};
  x.label = 0;
  d.instances.push_back(x);
  const Predictor p = ModelPredictor(lr);
  const double acc = Accuracy(p, d);
  EXPECT_TRUE(acc == 0.0 || acc == 1.0);
}

// ------------------------------------------------------------ Reliability --

TEST(ReliabilityTest, PerfectEstimatesZeroError) {
  crowd::ConfusionSet est{crowd::ConfusionMatrix(2, 0.9),
                          crowd::ConfusionMatrix(2, 0.6)};
  const ReliabilityReport r =
      CompareReliability(est, est, {100, 100}, 0);
  EXPECT_DOUBLE_EQ(r.mean_abs_reliability_error, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_matrix_distance, 0.0);
  ASSERT_EQ(r.estimated.size(), 2u);
}

TEST(ReliabilityTest, MinLabelsFilters) {
  crowd::ConfusionSet est{crowd::ConfusionMatrix(2, 0.9),
                          crowd::ConfusionMatrix(2, 0.6)};
  const ReliabilityReport r = CompareReliability(est, est, {3, 100}, 5);
  EXPECT_EQ(r.estimated.size(), 1u);
  EXPECT_NEAR(r.estimated[0], 0.6, 1e-6);
}

TEST(ReliabilityTest, CorrelationDetectsOrdering) {
  crowd::ConfusionSet est{crowd::ConfusionMatrix(2, 0.95),
                          crowd::ConfusionMatrix(2, 0.75),
                          crowd::ConfusionMatrix(2, 0.55)};
  crowd::ConfusionSet act{crowd::ConfusionMatrix(2, 0.9),
                          crowd::ConfusionMatrix(2, 0.7),
                          crowd::ConfusionMatrix(2, 0.5)};
  const ReliabilityReport r =
      CompareReliability(est, act, {10, 10, 10}, 0);
  EXPECT_NEAR(r.pearson_correlation, 1.0, 1e-6);
  // Anti-correlated case.
  crowd::ConfusionSet anti{crowd::ConfusionMatrix(2, 0.5),
                           crowd::ConfusionMatrix(2, 0.7),
                           crowd::ConfusionMatrix(2, 0.9)};
  const ReliabilityReport r2 =
      CompareReliability(anti, act, {10, 10, 10}, 0);
  EXPECT_NEAR(r2.pearson_correlation, -1.0, 1e-6);
}

TEST(ReliabilityTest, TopAnnotatorsByVolume) {
  const std::vector<int> top = TopAnnotatorsByVolume({5, 100, 30, 70}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 3);
}

}  // namespace
}  // namespace lncl::eval
