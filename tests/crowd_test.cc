#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <sstream>

#include "crowd/annotation.h"
#include "crowd/confusion.h"
#include "crowd/io.h"
#include "crowd/ner_noise.h"
#include "crowd/simulator.h"
#include "crowd/weak_supervision.h"
#include "data/bio.h"
#include "data/ner_gen.h"
#include "data/sentiment_gen.h"
#include "eval/metrics.h"
#include "inference/truth_inference.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lncl::crowd {
namespace {

using util::Rng;

// ------------------------------------------------------------ Annotation --

TEST(AnnotationSetTest, CountsAndMajorityVote) {
  AnnotationSet ann(2, 3, 2);
  ann.instance(0).entries.push_back({0, {1}});
  ann.instance(0).entries.push_back({1, {1}});
  ann.instance(0).entries.push_back({2, {0}});
  ann.instance(1).entries.push_back({0, {0}});

  EXPECT_EQ(ann.NumAnnotators(0), 3);
  EXPECT_EQ(ann.NumAnnotators(1), 1);
  EXPECT_EQ(ann.TotalAnnotations(), 4);
  const auto counts = ann.LabelsPerAnnotator();
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[2], 1);

  const auto mv = ann.MajorityVote({1, 1});
  EXPECT_NEAR(mv[0](0, 1), 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(mv[1](0, 0), 1.0, 1e-6);
}

TEST(AnnotationSetTest, MajorityVoteUniformWhenUnlabeled) {
  AnnotationSet ann(1, 2, 4);
  const auto mv = ann.MajorityVote({1});
  for (int k = 0; k < 4; ++k) EXPECT_NEAR(mv[0](0, k), 0.25, 1e-6);
}

TEST(AnnotationSetTest, SequenceMajorityVote) {
  AnnotationSet ann(1, 2, 3);
  ann.instance(0).entries.push_back({0, {0, 1, 2}});
  ann.instance(0).entries.push_back({1, {0, 2, 2}});
  const auto mv = ann.MajorityVote({3});
  EXPECT_NEAR(mv[0](0, 0), 1.0, 1e-6);
  EXPECT_NEAR(mv[0](1, 1), 0.5, 1e-6);
  EXPECT_NEAR(mv[0](2, 2), 1.0, 1e-6);
}

// ------------------------------------------------------------- Confusion --

TEST(ConfusionMatrixTest, DiagonalPriorConstruction) {
  ConfusionMatrix cm(4, 0.7);
  for (int m = 0; m < 4; ++m) {
    double row = 0.0;
    for (int n = 0; n < 4; ++n) row += cm(m, n);
    EXPECT_NEAR(row, 1.0, 1e-6);
    EXPECT_NEAR(cm(m, m), 0.7, 1e-6);
  }
  EXPECT_NEAR(cm.Reliability(), 0.7, 1e-6);
}

TEST(ConfusionMatrixTest, NormalizeRowsHandlesZeros) {
  ConfusionMatrix cm(3, 0.0);
  cm.matrix().Zero();
  cm.NormalizeRows(0.0);
  for (int m = 0; m < 3; ++m) {
    for (int n = 0; n < 3; ++n) EXPECT_NEAR(cm(m, n), 1.0 / 3.0, 1e-6);
  }
}

TEST(ConfusionMatrixTest, DistanceIsMetricLike) {
  ConfusionMatrix a(2, 0.9), b(2, 0.9), c(2, 0.5);
  EXPECT_NEAR(a.Distance(b), 0.0, 1e-6);
  EXPECT_GT(a.Distance(c), 0.0);
  EXPECT_NEAR(a.Distance(c), c.Distance(a), 1e-6);
}

TEST(EmpiricalConfusionsTest, RecoversPlantedLabels) {
  data::Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < 4; ++i) {
    data::Instance x;
    x.tokens = {1};
    x.label = i % 2;
    d.instances.push_back(x);
  }
  AnnotationSet ann(4, 1, 2);
  // Annotator 0 always reports the truth.
  for (int i = 0; i < 4; ++i) {
    ann.instance(i).entries.push_back({0, {i % 2}});
  }
  const ConfusionSet cs = EmpiricalConfusions(ann, d);
  EXPECT_NEAR(cs[0](0, 0), 1.0, 1e-5);
  EXPECT_NEAR(cs[0](1, 1), 1.0, 1e-5);
}

// -------------------------------------------------------------- NerNoise --

class NerNoiseTest : public testing::Test {
 protected:
  const std::vector<int> truth_ = {
      data::kO, data::kBPer, data::kIPer, data::kO,
      data::kO, data::kBOrg, data::kO,    data::kO};
};

TEST_F(NerNoiseTest, NoErrorRatesMeansExactCopy) {
  Rng rng(1);
  const NerErrorRates rates;  // all zero
  for (int trial = 0; trial < 10; ++trial) {
    EXPECT_EQ(CorruptNerTags(truth_, rates, 0.5, &rng), truth_);
  }
}

TEST_F(NerNoiseTest, IgnoreErrorRemovesEntities) {
  Rng rng(2);
  NerErrorRates rates;
  rates.p_ignore = 2.0;  // scaled and clamped to 0.95
  int removed = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto out = CorruptNerTags(truth_, rates, 0.5, &rng);
    removed += data::ExtractSpans(out).size() < 2;
  }
  EXPECT_GT(removed, 150);
}

TEST_F(NerNoiseTest, TypeErrorKeepsSpanBoundaries) {
  Rng rng(3);
  NerErrorRates rates;
  rates.p_type = 2.0;
  int type_changed = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto out = CorruptNerTags(truth_, rates, 0.5, &rng);
    const auto spans = data::ExtractSpans(out);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].begin, 1);
    EXPECT_EQ(spans[0].end, 3);
    if (spans[0].type != 0) ++type_changed;
  }
  EXPECT_GT(type_changed, 80);
}

TEST_F(NerNoiseTest, BoundaryErrorShiftsByAtMostOne) {
  Rng rng(4);
  NerErrorRates rates;
  rates.p_boundary = 2.0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto out = CorruptNerTags(truth_, rates, 0.5, &rng);
    for (const auto& span : data::ExtractSpans(out)) {
      if (span.type == 0) {  // the PER entity, truth [1, 3)
        EXPECT_GE(span.begin, 0);
        EXPECT_LE(std::abs(span.begin - 1), 1);
        EXPECT_LE(std::abs(span.end - 3), 1);
      }
    }
  }
}

TEST_F(NerNoiseTest, DifficultyScalesErrors) {
  NerErrorRates rates;
  rates.p_ignore = 0.3;
  int removed_easy = 0, removed_hard = 0;
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    if (data::ExtractSpans(CorruptNerTags(truth_, rates, 0.0, &rng)).size() < 2) {
      ++removed_easy;
    }
    if (data::ExtractSpans(CorruptNerTags(truth_, rates, 1.0, &rng)).size() < 2) {
      ++removed_hard;
    }
  }
  EXPECT_GT(removed_hard, removed_easy);
}

TEST_F(NerNoiseTest, OutputLengthPreserved) {
  Rng rng(6);
  NerErrorRates rates;
  rates.p_ignore = 0.3;
  rates.p_boundary = 0.3;
  rates.p_type = 0.3;
  rates.p_false_positive = 0.3;
  for (int trial = 0; trial < 100; ++trial) {
    EXPECT_EQ(CorruptNerTags(truth_, rates, 0.7, &rng).size(), truth_.size());
  }
}

// ------------------------------------------------------------- Simulator --

class ClassificationSimTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    data::SentimentGenConfig gcfg;
    corpus_ = data::GenerateSentimentCorpus(gcfg, 400, 50, 50, &rng);
    config_.num_annotators = 30;
    sim_ = std::make_unique<CrowdSimulator>(
        CrowdSimulator::MakeClassification(config_, 2, &rng));
    annotations_ = sim_->Annotate(corpus_.train, &rng);
  }
  CrowdConfig config_;
  data::SentimentCorpus corpus_;
  std::unique_ptr<CrowdSimulator> sim_;
  AnnotationSet annotations_;
};

TEST_F(ClassificationSimTest, EveryInstanceGetsLabelsInRange) {
  for (int i = 0; i < annotations_.num_instances(); ++i) {
    EXPECT_GE(annotations_.NumAnnotators(i), config_.min_per_instance);
    EXPECT_LE(annotations_.NumAnnotators(i), config_.max_per_instance);
    for (const AnnotatorLabels& e : annotations_.instance(i).entries) {
      EXPECT_GE(e.annotator, 0);
      EXPECT_LT(e.annotator, 30);
      ASSERT_EQ(e.labels.size(), 1u);
      EXPECT_GE(e.labels[0], 0);
      EXPECT_LT(e.labels[0], 2);
    }
  }
}

TEST_F(ClassificationSimTest, NoDuplicateAnnotatorPerInstance) {
  for (int i = 0; i < annotations_.num_instances(); ++i) {
    std::set<int> seen;
    for (const AnnotatorLabels& e : annotations_.instance(i).entries) {
      EXPECT_TRUE(seen.insert(e.annotator).second);
    }
  }
}

TEST_F(ClassificationSimTest, AverageLabelsPerInstanceNearTarget) {
  const double avg = static_cast<double>(annotations_.TotalAnnotations()) /
                     annotations_.num_instances();
  EXPECT_NEAR(avg, config_.avg_per_instance, 0.6);
}

TEST_F(ClassificationSimTest, SkilledAnnotatorsAreMoreAccurate) {
  // Empirical accuracy should correlate with profile skill.
  const ConfusionSet empirical =
      EmpiricalConfusions(annotations_, corpus_.train);
  const auto labels = annotations_.LabelsPerAnnotator();
  double acc_good = 0.0, acc_bad = 0.0;
  int n_good = 0, n_bad = 0;
  for (int j = 0; j < 30; ++j) {
    if (labels[j] < 20) continue;
    if (sim_->profiles()[j].skill > 0.8) {
      acc_good += empirical[j].Reliability();
      ++n_good;
    } else if (sim_->profiles()[j].skill < 0.6) {
      acc_bad += empirical[j].Reliability();
      ++n_bad;
    }
  }
  if (n_good > 0 && n_bad > 0) {
    EXPECT_GT(acc_good / n_good, acc_bad / n_bad);
  }
}

TEST_F(ClassificationSimTest, ParticipationIsLongTailed) {
  const auto labels = annotations_.LabelsPerAnnotator();
  std::vector<double> counts(labels.begin(), labels.end());
  const util::BoxplotSummary s = util::Summarize(counts);
  EXPECT_GT(s.max, 3.0 * s.median);  // a heavy hitter exists
}

class SequenceSimTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(13);
    data::NerGenConfig gcfg;
    corpus_ = data::GenerateNerCorpus(gcfg, 200, 30, 30, &rng);
    config_.num_annotators = 20;
    sim_ = std::make_unique<CrowdSimulator>(
        CrowdSimulator::MakeSequence(config_, &rng));
    annotations_ = sim_->AnnotateSequences(corpus_.train, &rng);
  }
  CrowdConfig config_;
  data::NerCorpus corpus_;
  std::unique_ptr<CrowdSimulator> sim_;
  AnnotationSet annotations_;
};

TEST_F(SequenceSimTest, LabelsPerTokenAndRange) {
  for (int i = 0; i < annotations_.num_instances(); ++i) {
    const size_t len = corpus_.train.instances[i].tokens.size();
    for (const AnnotatorLabels& e : annotations_.instance(i).entries) {
      ASSERT_EQ(e.labels.size(), len);
      for (int y : e.labels) {
        EXPECT_GE(y, 0);
        EXPECT_LT(y, data::kNumBioLabels);
      }
    }
  }
}

TEST_F(SequenceSimTest, AnnotatorF1SpansWideRange) {
  // Per-annotator span F1 against gold should span a wide range, echoing the
  // paper's 17.6%-89.1%.
  std::vector<double> f1s;
  for (int j = 0; j < 20; ++j) {
    std::vector<std::vector<int>> pred;
    data::Dataset gold;
    gold.num_classes = data::kNumBioLabels;
    gold.sequence = true;
    for (int i = 0; i < annotations_.num_instances(); ++i) {
      for (const AnnotatorLabels& e : annotations_.instance(i).entries) {
        if (e.annotator == j) {
          pred.push_back(e.labels);
          gold.instances.push_back(corpus_.train.instances[i]);
        }
      }
    }
    if (gold.size() < 10) continue;
    f1s.push_back(eval::SpanF1(pred, gold).f1);
  }
  ASSERT_GT(f1s.size(), 5u);
  const double lo = *std::min_element(f1s.begin(), f1s.end());
  const double hi = *std::max_element(f1s.begin(), f1s.end());
  EXPECT_LT(lo, 0.55);
  EXPECT_GT(hi, 0.70);
}

TEST_F(SequenceSimTest, MajorityVoteBeatsWorstAnnotator) {
  const auto mv = annotations_.MajorityVote(
      inference::ItemsPerInstance(corpus_.train));
  const double mv_f1 = eval::PosteriorSpanF1(mv, corpus_.train).f1;
  EXPECT_GT(mv_f1, 0.4);
}


// ------------------------------------------------------- WeakSupervision --

class WeakSupervisionTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(91);
    data::SentimentGenConfig gcfg;
    corpus_ = data::GenerateSentimentCorpus(gcfg, 400, 50, 50, &rng);
    functions_ = MakeSentimentLabelingFunctions(corpus_.vocab, 4, 8, 1.0,
                                                &rng);
    annotations_ = ApplyLabelingFunctions(functions_, corpus_.train, 2, &rng);
  }
  data::SentimentCorpus corpus_;
  std::vector<LabelingFunction> functions_;
  AnnotationSet annotations_;
};

TEST_F(WeakSupervisionTest, BuildsOneFunctionPerSlot) {
  ASSERT_EQ(functions_.size(), 8u);
  int pos = 0, neg = 0;
  for (const LabelingFunction& lf : functions_) {
    EXPECT_EQ(lf.triggers.size(), 8u);
    (lf.label == data::kSentimentPositive ? pos : neg) += 1;
  }
  EXPECT_EQ(pos, 4);
  EXPECT_EQ(neg, 4);
}

TEST_F(WeakSupervisionTest, VotesMatchFunctionLabel) {
  for (int i = 0; i < annotations_.num_instances(); ++i) {
    for (const AnnotatorLabels& e : annotations_.instance(i).entries) {
      EXPECT_EQ(e.labels.size(), 1u);
      EXPECT_EQ(e.labels[0], functions_[e.annotator].label);
    }
  }
}

TEST_F(WeakSupervisionTest, FiresOnlyWhenTriggered) {
  // With fire_prob = 1, an LF vote on instance i implies a trigger token is
  // present, and absence of all triggers implies no vote.
  for (int i = 0; i < annotations_.num_instances(); ++i) {
    const auto& tokens = corpus_.train.instances[i].tokens;
    for (size_t j = 0; j < functions_.size(); ++j) {
      const LabelingFunction& lf = functions_[j];
      bool has_trigger = false;
      for (int t : tokens) {
        for (int trig : lf.triggers) has_trigger |= t == trig;
      }
      bool voted = false;
      for (const AnnotatorLabels& e : annotations_.instance(i).entries) {
        voted |= e.annotator == static_cast<int>(j);
      }
      EXPECT_EQ(voted, has_trigger) << "instance " << i << " lf " << j;
    }
  }
}

TEST_F(WeakSupervisionTest, FunctionsAreBetterThanChanceButImperfect) {
  const LfCoverage cov =
      MeasureCoverage(functions_, annotations_, corpus_.train);
  EXPECT_GT(cov.covered, 0.5);
  EXPECT_GT(cov.votes_per_instance, 1.0);
  int informative = 0;
  for (double acc : cov.lf_accuracy) {
    EXPECT_LT(acc, 1.0);  // polarity words leak into wrong-class sentences
    informative += acc > 0.55;
  }
  EXPECT_GE(informative, 6);  // most LFs carry real signal
}

TEST_F(WeakSupervisionTest, FireProbThinsCoverage) {
  Rng rng(92);
  AnnotationSet sparse = ApplyLabelingFunctions(
      [this] {
        auto fns = functions_;
        for (auto& lf : fns) lf.fire_prob = 0.3;
        return fns;
      }(),
      corpus_.train, 2, &rng);
  EXPECT_LT(sparse.TotalAnnotations(), annotations_.TotalAnnotations());
}



// ----------------------------------------------------- Correlated traps --

TEST(TrapTest, FullTrapFractionFlipsTheCrowd) {
  Rng rng(101);
  data::SentimentGenConfig gcfg;
  const data::SentimentCorpus corpus =
      data::GenerateSentimentCorpus(gcfg, 200, 10, 10, &rng);
  CrowdConfig ccfg;
  ccfg.num_annotators = 15;
  ccfg.trap_frac = 1.0;           // every plain instance misleads everyone
  ccfg.trap_frac_contrast = 1.0;  // and every contrastive one too
  ccfg.difficulty_aware = false;
  auto sim = CrowdSimulator::MakeClassification(ccfg, 2, &rng);
  const AnnotationSet ann = sim.Annotate(corpus.train, &rng);
  const auto mv = ann.MajorityVote(
      inference::ItemsPerInstance(corpus.train));
  // The majority vote now tracks the flipped class: far below chance.
  EXPECT_LT(eval::PosteriorAccuracy(mv, corpus.train), 0.35);
}

TEST(TrapTest, SequenceIgnoreTrapHidesEveryEntity) {
  Rng rng(102);
  data::NerGenConfig gcfg;
  const data::NerCorpus corpus = data::GenerateNerCorpus(gcfg, 60, 5, 5, &rng);
  CrowdConfig ccfg;
  ccfg.num_annotators = 8;
  ccfg.seq_trap_ignore = 1.0;  // the whole crowd perceives no entities
  auto sim = CrowdSimulator::MakeSequence(ccfg, &rng);
  const AnnotationSet ann = sim.AnnotateSequences(corpus.train, &rng);
  long entity_labels = 0;
  for (int i = 0; i < ann.num_instances(); ++i) {
    for (const AnnotatorLabels& e : ann.instance(i).entries) {
      for (int y : e.labels) entity_labels += y != data::kO;
    }
  }
  // Only annotator false positives can produce entity labels now.
  const double rate = static_cast<double>(entity_labels) /
                      std::max<long>(1, ann.LabelsPerAnnotator().size());
  EXPECT_LT(entity_labels, ann.TotalAnnotations());  // sparse leftovers only
  (void)rate;
}

TEST(TrapTest, SequenceTypeTrapIsSharedAcrossAnnotators) {
  // With type traps at 1.0 and no individual noise, every annotator reports
  // the same (wrong) type for each entity.
  Rng rng(103);
  data::NerGenConfig gcfg;
  const data::NerCorpus corpus = data::GenerateNerCorpus(gcfg, 40, 5, 5, &rng);
  CrowdConfig ccfg;
  ccfg.num_annotators = 6;
  ccfg.seq_trap_type = 1.0;
  // Perfect annotators otherwise.
  ccfg.frac_good = 1.0;
  ccfg.good_lo = 1.0;
  ccfg.good_hi = 1.0;
  auto sim = CrowdSimulator::MakeSequence(ccfg, &rng);
  // Zero the individual error rates directly for a clean check.
  AnnotationSet ann = [&] {
    CrowdConfig clean = ccfg;
    auto s = CrowdSimulator::MakeSequence(clean, &rng);
    return s.AnnotateSequences(corpus.train, &rng);
  }();
  int disagreements = 0, comparisons = 0;
  for (int i = 0; i < ann.num_instances(); ++i) {
    const auto& entries = ann.instance(i).entries;
    for (size_t a = 1; a < entries.size(); ++a) {
      for (size_t t = 0; t < entries[a].labels.size(); ++t) {
        ++comparisons;
        disagreements += entries[a].labels[t] != entries[0].labels[t];
      }
    }
  }
  ASSERT_GT(comparisons, 0);
  // Perfect annotators (skill 1 -> zero error rates) all copy the same
  // perceived truth, so agreement is total.
  EXPECT_EQ(disagreements, 0);
}

// --------------------------------------------------------------------- IO --

TEST(AnswersMatrixIoTest, ClassificationRoundTrip) {
  AnnotationSet ann(3, 4, 2);
  ann.instance(0).entries.push_back({0, {1}});
  ann.instance(0).entries.push_back({2, {0}});
  ann.instance(1).entries.push_back({3, {1}});
  // instance 2 unlabeled.
  std::stringstream ss;
  SaveAnswersMatrix(ss, ann);
  EXPECT_EQ(ss.str(), "2 0 1 0\n0 0 0 2\n0 0 0 0\n");

  AnnotationSet loaded;
  ASSERT_TRUE(LoadAnswersMatrix(ss, 2, &loaded));
  EXPECT_EQ(loaded.num_instances(), 3);
  EXPECT_EQ(loaded.num_annotators(), 4);
  EXPECT_EQ(loaded.NumAnnotators(0), 2);
  EXPECT_EQ(loaded.NumAnnotators(2), 0);
  EXPECT_EQ(loaded.instance(1).entries[0].annotator, 3);
  EXPECT_EQ(loaded.instance(1).entries[0].labels[0], 1);
}

TEST(AnswersMatrixIoTest, RejectsOutOfRangeAndRagged) {
  AnnotationSet loaded;
  std::stringstream too_big("3 0\n");
  EXPECT_FALSE(LoadAnswersMatrix(too_big, 2, &loaded));
  std::stringstream ragged("1 0\n1 0 2\n");
  EXPECT_FALSE(LoadAnswersMatrix(ragged, 2, &loaded));
  std::stringstream junk("1 x\n");
  EXPECT_FALSE(LoadAnswersMatrix(junk, 2, &loaded));
}

TEST(AnswersMatrixIoTest, SequenceRoundTrip) {
  AnnotationSet ann(2, 3, 9);
  ann.instance(0).entries.push_back({0, {0, 1, 2}});
  ann.instance(0).entries.push_back({2, {0, 0, 0}});
  ann.instance(1).entries.push_back({1, {5, 6}});
  std::stringstream ss;
  SaveSequenceAnswers(ss, ann, {3, 2});

  AnnotationSet loaded;
  ASSERT_TRUE(LoadSequenceAnswers(ss, 9, &loaded));
  EXPECT_EQ(loaded.num_instances(), 2);
  EXPECT_EQ(loaded.NumAnnotators(0), 2);
  EXPECT_EQ(loaded.instance(0).entries[0].labels,
            (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(loaded.instance(1).entries[0].annotator, 1);
  EXPECT_EQ(loaded.instance(1).entries[0].labels, (std::vector<int>{5, 6}));
}

TEST(AnswersMatrixIoTest, SequenceRejectsPartialAnnotation) {
  // Annotator column with a mix of labeled and unlabeled tokens is invalid.
  AnnotationSet loaded;
  std::stringstream partial("1 0\n0 0\n\n");
  EXPECT_FALSE(LoadSequenceAnswers(partial, 9, &loaded));
}

TEST(AnswersMatrixIoTest, SimulatedCrowdSurvivesRoundTrip) {
  Rng rng(77);
  data::NerGenConfig gcfg;
  const data::NerCorpus corpus = data::GenerateNerCorpus(gcfg, 30, 1, 1, &rng);
  CrowdConfig ccfg;
  ccfg.num_annotators = 8;
  auto sim = CrowdSimulator::MakeSequence(ccfg, &rng);
  const AnnotationSet ann = sim.AnnotateSequences(corpus.train, &rng);
  std::stringstream ss;
  SaveSequenceAnswers(ss, ann,
                      inference::ItemsPerInstance(corpus.train));
  AnnotationSet loaded;
  ASSERT_TRUE(LoadSequenceAnswers(ss, data::kNumBioLabels, &loaded));
  ASSERT_EQ(loaded.num_instances(), ann.num_instances());
  EXPECT_EQ(loaded.TotalAnnotations(), ann.TotalAnnotations());
  for (int i = 0; i < ann.num_instances(); ++i) {
    ASSERT_EQ(loaded.NumAnnotators(i), ann.NumAnnotators(i));
    for (int e = 0; e < ann.NumAnnotators(i); ++e) {
      EXPECT_EQ(loaded.instance(i).entries[e].annotator,
                ann.instance(i).entries[e].annotator);
      EXPECT_EQ(loaded.instance(i).entries[e].labels,
                ann.instance(i).entries[e].labels);
    }
  }
}

}  // namespace
}  // namespace lncl::crowd
