#!/usr/bin/env python3
"""Repo-convention linter for the Logic-LNCL tree (stdlib only).

Rules (each with a per-rule allowlist of path globs):

  io           printf / fprintf / puts / std::cout / std::cerr are banned
               in src/ outside the logging sink — library code must report
               through LNCL_LOG or CheckFailure, never stdout.
  alloc        raw new[] / malloc / calloc / realloc / free are banned in
               src/ — buffers belong in util::Matrix, std::vector, or the
               util::Workspace arena.
  pragma-once  every header under src/ and bench/ must open with
               #pragma once.
  assert       raw assert( is banned in src/ — use LNCL_CHECK (always on)
               or LNCL_DCHECK / LNCL_AUDIT_* (audit builds), which abort
               with file:line context in every build type instead of
               vanishing under NDEBUG.
  timing       raw clock reads (std::chrono, clock_gettime, gettimeofday)
               are banned in src/ and bench/ outside util/timer.h and the
               obs/ telemetry layer — timings must flow through
               util::Stopwatch or obs::PhaseSpan so every duration lands in
               PhaseSeconds / trace events instead of ad-hoc prints.
  intrinsics   raw SIMD intrinsics (_mm*_ calls, __m128/256/512 types,
               immintrin.h) are banned outside src/util/gemm_kernel.* —
               vector code lives behind the microkernel layer so the rest
               of the tree stays portable and the scalar/SIMD bit-equality
               contract has a single enforcement point.
  prof         perf_event_open (and its __NR_ spelling) and procfs reads
               (/proc/self, /proc/cpuinfo) are banned in src/ and bench/
               outside src/obs/ — the raw syscall/procfs surface lives
               behind obs::PerfCounters / obs::ReadSelfStatus so its
               graceful-degradation story (PMU-less VMs, seccomp,
               perf_event_paranoid) has a single enforcement point.
               (bench/bench_history.cc reads only .git, not procfs.)

A line may waive a rule explicitly with a trailing `// lint: allow(<rule>)`
comment; prefer extending the allowlist for whole-file exemptions.

Rules that need structure rather than a regex live in tools/analyze/ (the
AST-grounded analyzer). The old `rng` rule moved there: the determinism
check bans entropy sources (rand/srand, std::random_device, raw std
engines) outside src/util/rng.* on the token stream, where string and
comment contexts can't fool it.

Usage:
  tools/lint.py [--root DIR]   lint the tree; exit 1 on any violation
  tools/lint.py --self-test    prove every rule fires on its fixture in
                               tools/lint_fixtures/ and stays quiet on the
                               clean ones; exit 1 on any rule that fails
"""

import argparse
import fnmatch
import os
import re
import sys


class Rule:
    def __init__(self, name, description, pattern, roots, extensions,
                 allowlist=()):
        self.name = name
        self.description = description
        self.pattern = re.compile(pattern)
        self.roots = roots
        self.extensions = extensions
        self.allowlist = allowlist

    def applies_to(self, relpath):
        if not relpath.endswith(self.extensions):
            return False
        if not any(relpath.startswith(r + os.sep) for r in self.roots):
            return False
        return not any(fnmatch.fnmatch(relpath, g) for g in self.allowlist)


HEADER_EXTS = (".h",)
CODE_EXTS = (".h", ".cc")

RULES = [
    Rule(
        name="io",
        description="direct stdout/stderr write; use LNCL_LOG",
        pattern=r"(?<!\w)(?:std::)?(?:fprintf|printf|puts)\s*\(|"
                r"std::c(?:out|err|log)\b",
        roots=("src",),
        extensions=CODE_EXTS,
        # logging.* is the sanctioned sink; check.cc writes straight to
        # stderr on purpose so invariant failures bypass the log threshold.
        allowlist=("src/util/logging.h", "src/util/logging.cc",
                   "src/util/check.cc"),
    ),
    Rule(
        name="alloc",
        description="raw allocation; use Matrix/std::vector/Workspace",
        pattern=r"\bnew\s+[A-Za-z_][\w:<>,\s]*\[|"
                r"(?<!\w)(?:std::)?(?:malloc|calloc|realloc|free)\s*\(",
        roots=("src",),
        extensions=CODE_EXTS,
    ),
    Rule(
        name="pragma-once",
        description="header missing #pragma once",
        # Whole-file rule: the check lives in lint_file(); the pattern is a
        # never-matching placeholder so the Rule machinery stays uniform.
        pattern=r"(?!x)x",
        roots=("src", "bench"),
        extensions=HEADER_EXTS,
    ),
    Rule(
        name="assert",
        description="raw assert; use LNCL_CHECK or LNCL_DCHECK",
        pattern=r"(?<![\w.])assert\s*\(",
        roots=("src",),
        extensions=CODE_EXTS,
    ),
    Rule(
        name="timing",
        description="raw clock read; use util::Stopwatch or obs::PhaseSpan",
        pattern=r"std::chrono\b|"
                r"(?<!\w)(?:clock_gettime|gettimeofday)\s*\(",
        roots=("src", "bench"),
        extensions=CODE_EXTS,
        # timer.h wraps the steady clock for everyone else; the obs/ layer
        # timestamps trace events and phase spans itself so it can stay
        # freestanding (no util dependency).
        allowlist=("src/util/timer.h", "src/obs/*"),
    ),
    Rule(
        name="intrinsics",
        description="raw SIMD intrinsic; keep vector code in "
                    "util/gemm_kernel.*",
        pattern=r"\b_mm\d*_\w+|\b__m(?:128|256|512)[a-z]*\b|"
                r"\b__mmask\d+\b|\bimmintrin\.h\b",
        roots=("src", "bench"),
        extensions=CODE_EXTS,
        allowlist=("src/util/gemm_kernel.h", "src/util/gemm_kernel.cc"),
    ),
    Rule(
        name="prof",
        description="raw perf/procfs access; use obs::PerfCounters / "
                    "obs::ReadSelfStatus",
        # No \b before perf_event_open: it must also catch the
        # __NR_perf_event_open syscall-number spelling.
        pattern=r"perf_event_open|/proc/self|/proc/cpuinfo",
        roots=("src", "bench"),
        extensions=CODE_EXTS,
        allowlist=("src/obs/*",),
    ),
]

WAIVER = re.compile(r"//\s*lint:\s*allow\(([\w-]+)\)")


def iter_files(root):
    for sub in ("src", "bench"):
        top = os.path.join(root, sub)
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith(CODE_EXTS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root)


def lint_file(root, relpath):
    """Returns a list of (relpath, line_number, rule, line_text)."""
    violations = []
    with open(os.path.join(root, relpath), encoding="utf-8") as f:
        lines = f.read().splitlines()
    for rule in RULES:
        if not rule.applies_to(relpath):
            continue
        if rule.name == "pragma-once":
            if not any(l.strip() == "#pragma once" for l in lines[:5]):
                violations.append((relpath, 1, rule, "(missing #pragma once)"))
            continue
        for i, line in enumerate(lines, start=1):
            if not rule.pattern.search(line):
                continue
            waiver = WAIVER.search(line)
            if waiver and waiver.group(1) == rule.name:
                continue
            violations.append((relpath, i, rule, line.strip()))
    return violations


def lint_tree(root):
    violations = []
    for relpath in iter_files(root):
        violations.extend(lint_file(root, relpath))
    return violations


def report(violations):
    for relpath, line_no, rule, text in violations:
        print(f"{relpath}:{line_no}: [{rule.name}] {rule.description}")
        print(f"    {text}")
    print(f"lint: {len(violations)} violation(s)")


def self_test(root):
    """Each bad_<rule> fixture must trip exactly its rule; clean fixtures
    must trip nothing. Fixtures live in tools/lint_fixtures/ and are checked
    as if they sat at a src/-relative path, so the rule scoping applies."""
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    cases = {
        "bad_io.cc": "io",
        "bad_alloc.cc": "alloc",
        "bad_pragma_once.h": "pragma-once",
        "bad_assert.cc": "assert",
        "bad_timing.cc": "timing",
        "bad_intrinsics.cc": "intrinsics",
        "bad_prof.cc": "prof",
        "good.cc": None,
        "good.h": None,
    }
    failures = 0
    for name, expected in sorted(cases.items()):
        src = os.path.join(fixture_dir, name)
        if not os.path.exists(src):
            print(f"self-test: MISSING fixture {name}")
            failures += 1
            continue
        # Present the fixture to the linter under a src/ path so scoping
        # rules see it as library code.
        staged = os.path.join("src", "lint_fixture_stage", name)
        staged_abs = os.path.join(root, staged)
        os.makedirs(os.path.dirname(staged_abs), exist_ok=True)
        try:
            with open(src, encoding="utf-8") as f:
                body = f.read()
            with open(staged_abs, "w", encoding="utf-8") as f:
                f.write(body)
            tripped = sorted({v[2].name for v in lint_file(root, staged)})
            want = [expected] if expected else []
            ok = tripped == want
            status = "ok" if ok else "FAIL"
            print(f"self-test: {name}: expected {want or 'clean'}, "
                  f"got {tripped or 'clean'} [{status}]")
            failures += 0 if ok else 1
        finally:
            os.remove(staged_abs)
            os.rmdir(os.path.dirname(staged_abs))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on its fixture")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.self_test:
        failures = self_test(root)
        print(f"self-test: {failures} failing rule(s)")
        return 1 if failures else 0

    violations = lint_tree(root)
    if violations:
        report(violations)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
