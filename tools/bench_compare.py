#!/usr/bin/env python3
"""Bench-history regression gate (stdlib only).

Diffs the newest lncl.bench.v1 record per (host, bench) in
results/BENCH_history.jsonl against the committed per-host baseline
(results/bench_baseline.json) and exits non-zero when

  * the headline time regresses by more than --wall-tolerance-pct, or
  * the cache-miss rate regresses by more than --miss-tolerance-pct
    (only when BOTH records were taken with hardware counters available —
    a PMU-less VM cannot produce a miss-rate signal, so none is judged).

The headline time is the "batched" fit's fit_seconds when the record has
timed fits (end-to-end fit time is what the paper tables report and is far
less noisy than process wall time, which includes data synthesis and
baseline sweeps); otherwise wall_seconds. Benches present in history but
absent from the baseline are SKIPPED (reported, exit 0) — a gate that
fails on first contact would block adding benches. Timing comparisons are
only meaningful on the same host, hence per-host keying; records from
hosts absent from the baseline are likewise skipped.

Usage:
  tools/bench_compare.py                        # gate vs committed baseline
  tools/bench_compare.py --update-baseline      # bless current newest records
  tools/bench_compare.py --self-test            # fixture-driven check of the
                                                # gate itself (CI runs this)

Exit codes: 0 ok/skip, 1 regression detected, 2 bad input.
"""

import argparse
import json
import os
import sys
import tempfile

SCHEMA = "lncl.bench.v1"
BASELINE_SCHEMA = "lncl.bench_baseline.v1"
DEFAULT_HISTORY = "results/BENCH_history.jsonl"
DEFAULT_BASELINE = "results/bench_baseline.json"
DEFAULT_WALL_TOL_PCT = 25.0
DEFAULT_MISS_TOL_PCT = 30.0


def load_history(path):
    """All lncl.bench.v1 records, in file order. Unknown schemas are fatal:
    a silently-skipped record would make the gate vacuously green."""
    records = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: bad JSON: {err}")
            if rec.get("schema") != SCHEMA:
                raise SystemExit(
                    f"{path}:{lineno}: unknown schema {rec.get('schema')!r}")
            records.append(rec)
    return records


def newest_per_key(records):
    """{(host, bench): record} keeping the newest record per key.
    Later file position wins ties, so append order is the tiebreak."""
    newest = {}
    for rec in records:
        key = (rec.get("host", ""), rec.get("bench", ""))
        prev = newest.get(key)
        if prev is None or rec.get("unix_time", 0) >= prev.get("unix_time", 0):
            newest[key] = rec
    return newest


def headline_seconds(rec):
    """(seconds, source) — the number the gate judges."""
    fits = rec.get("fits") or []
    for fit in fits:
        if fit.get("mode") == "batched":
            return float(fit["fit_seconds"]), "fit:batched"
    if fits:
        return float(fits[0]["fit_seconds"]), f"fit:{fits[0].get('mode')}"
    return float(rec.get("wall_seconds", 0.0)), "wall"


def summarize(rec):
    """The slice of a record the baseline stores and the gate compares."""
    seconds, source = headline_seconds(rec)
    counters = rec.get("counters") or {}
    return {
        "bench": rec.get("bench", ""),
        "host": rec.get("host", ""),
        "git_rev": rec.get("git_rev", "unknown"),
        "unix_time": rec.get("unix_time", 0),
        "headline_seconds": seconds,
        "headline_source": source,
        "hw_counters_available": bool(rec.get("hw_counters_available")),
        "cache_miss_rate": float(counters.get("cache_miss_rate", 0.0)),
        "peak_rss_kb": int(rec.get("peak_rss_kb", 0)),
    }


def load_baseline(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != BASELINE_SCHEMA:
        raise SystemExit(f"{path}: unknown schema {doc.get('schema')!r}")
    return doc


def write_baseline(path, newest):
    entries = {}
    for (host, bench), rec in sorted(newest.items()):
        entries.setdefault(host, {})[bench] = summarize(rec)
    doc = {"schema": BASELINE_SCHEMA, "entries": entries}
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return doc


def pct_delta(new, old):
    return (new - old) / old * 100.0 if old > 0 else 0.0


def compare_one(base, cur, wall_tol_pct, miss_tol_pct):
    """One (host, bench) pair -> (failures, report_lines). Pure."""
    failures = []
    lines = []
    d_wall = pct_delta(cur["headline_seconds"], base["headline_seconds"])
    lines.append(
        f"  time [{cur['headline_source']}]: "
        f"{base['headline_seconds']:.4f}s -> {cur['headline_seconds']:.4f}s "
        f"({d_wall:+.1f}%, tolerance +{wall_tol_pct:.0f}%)")
    if d_wall > wall_tol_pct:
        failures.append(
            f"{cur['bench']}: headline time regressed {d_wall:+.1f}% "
            f"(> +{wall_tol_pct:.0f}%)")

    if base["hw_counters_available"] and cur["hw_counters_available"] \
            and base["cache_miss_rate"] > 0:
        d_miss = pct_delta(cur["cache_miss_rate"], base["cache_miss_rate"])
        lines.append(
            f"  cache-miss rate: {base['cache_miss_rate']:.4f} -> "
            f"{cur['cache_miss_rate']:.4f} "
            f"({d_miss:+.1f}%, tolerance +{miss_tol_pct:.0f}%)")
        if d_miss > miss_tol_pct:
            failures.append(
                f"{cur['bench']}: cache-miss rate regressed {d_miss:+.1f}% "
                f"(> +{miss_tol_pct:.0f}%)")
    else:
        lines.append("  cache-miss rate: skipped (hw counters unavailable "
                     "in baseline and/or current)")

    if base["peak_rss_kb"] > 0 and cur["peak_rss_kb"] > 0:
        d_rss = pct_delta(cur["peak_rss_kb"], base["peak_rss_kb"])
        lines.append(f"  peak RSS: {base['peak_rss_kb']} kB -> "
                     f"{cur['peak_rss_kb']} kB ({d_rss:+.1f}%, informational)")
    return failures, lines


def run_gate(history_path, baseline_path, wall_tol_pct, miss_tol_pct):
    if not os.path.exists(history_path):
        print(f"bench_compare: no history at {history_path}; nothing to gate")
        return 0
    newest = newest_per_key(load_history(history_path))
    if not newest:
        print(f"bench_compare: {history_path} holds no records")
        return 0
    if not os.path.exists(baseline_path):
        print(f"bench_compare: no baseline at {baseline_path}; "
              f"run --update-baseline to create one (skip-pass)")
        return 0
    entries = load_baseline(baseline_path).get("entries", {})

    failures = []
    checked = skipped = 0
    for (host, bench), rec in sorted(newest.items()):
        base = entries.get(host, {}).get(bench)
        cur = summarize(rec)
        if base is None:
            skipped += 1
            print(f"SKIP {bench} on {host}: no baseline entry")
            continue
        checked += 1
        fails, lines = compare_one(base, cur, wall_tol_pct, miss_tol_pct)
        verdict = "FAIL" if fails else "OK"
        print(f"{verdict} {bench} on {host} "
              f"(baseline {base['git_rev']} -> current {cur['git_rev']})")
        for line in lines:
            print(line)
        failures.extend(fails)

    print(f"bench_compare: {checked} gated, {skipped} skipped, "
          f"{len(failures)} regression(s)")
    for fail in failures:
        print(f"REGRESSION: {fail}")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# Self-test: synthesizes history/baseline fixtures in a temp dir and checks
# the gate's verdicts, including that an injected 20% slowdown FAILS at 10%
# tolerance. CI runs this (ctest bench_compare_selftest / scripts/check.sh);
# the real-baseline gate is a developer tool, too timing-noisy for CI.
# ---------------------------------------------------------------------------

def make_record(bench, host, seconds, unix_time, hw=False, miss_rate=0.0,
                rss_kb=100000, batched=True):
    counters = {"spans": 2, "cycles": 0, "instructions": 0,
                "cache_references": 0, "cache_misses": 0, "branch_misses": 0,
                "task_clock_ns": int(seconds * 1e9), "page_faults": 10,
                "context_switches": 1, "ipc": 0.0,
                "cache_miss_rate": miss_rate}
    fits = []
    if batched:
        fits = [{"mode": "batched", "digest": "d" * 16,
                 "fit_seconds": seconds,
                 "phase_seconds": {"m_step": seconds * 0.6, "confusion": 0.0,
                                   "e_step": seconds * 0.3,
                                   "dev_eval": seconds * 0.1}}]
    return {"schema": SCHEMA, "bench": bench, "unix_time": unix_time,
            "git_rev": "abcdef123456", "host": host, "audit": False,
            "prof_active": True, "hw_counters_available": hw,
            "sw_counters_available": True, "peak_rss_kb": rss_kb,
            "wall_seconds": seconds * 2.0, "counters": counters,
            "fits": fits}


def self_test():
    host = "testhost/test-cpu/1t"
    failures = []

    def check(name, ok, detail=""):
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] {name}" + (f" — {detail}" if detail else ""))
        if not ok:
            failures.append(name)

    with tempfile.TemporaryDirectory(prefix="bench_compare_selftest.") as tmp:
        history = os.path.join(tmp, "BENCH_history.jsonl")
        baseline = os.path.join(tmp, "bench_baseline.json")

        def write_history(records):
            with open(history, "w", encoding="utf-8") as f:
                for rec in records:
                    f.write(json.dumps(rec) + "\n")

        print("bench_compare --self-test")

        # 1. Missing baseline -> skip-pass.
        write_history([make_record("table2", host, 1.0, 100)])
        rc = run_gate(history, baseline, 10.0, 10.0)
        check("missing baseline skip-passes", rc == 0, f"rc={rc}")

        # 2. Bless the 1.0s record, then a 5% drift passes at 10% tolerance.
        write_baseline(baseline, newest_per_key(load_history(history)))
        write_history([make_record("table2", host, 1.0, 100),
                       make_record("table2", host, 1.05, 200)])
        rc = run_gate(history, baseline, 10.0, 30.0)
        check("5% slowdown passes at 10% tolerance", rc == 0, f"rc={rc}")

        # 3. The acceptance case: injected 20% slowdown MUST fail at 10%.
        write_history([make_record("table2", host, 1.0, 100),
                       make_record("table2", host, 1.20, 300)])
        rc = run_gate(history, baseline, 10.0, 30.0)
        check("injected 20% slowdown fails at 10% tolerance", rc == 1,
              f"rc={rc}")

        # 4. Newest-record selection: a fast record appended after the slow
        #    one must win (unix_time ordering), turning the gate green again.
        write_history([make_record("table2", host, 1.0, 100),
                       make_record("table2", host, 1.20, 300),
                       make_record("table2", host, 1.01, 400)])
        rc = run_gate(history, baseline, 10.0, 30.0)
        check("newest record wins", rc == 0, f"rc={rc}")

        # 5. Cache-miss regression fails only with hw counters on both sides.
        write_history([make_record("table3", host, 1.0, 100, hw=True,
                                   miss_rate=0.10)])
        write_baseline(baseline, newest_per_key(load_history(history)))
        write_history([make_record("table3", host, 1.0, 100, hw=True,
                                   miss_rate=0.10),
                       make_record("table3", host, 1.0, 200, hw=True,
                                   miss_rate=0.20)])
        rc = run_gate(history, baseline, 25.0, 30.0)
        check("doubled cache-miss rate fails", rc == 1, f"rc={rc}")
        write_history([make_record("table3", host, 1.0, 100, hw=True,
                                   miss_rate=0.10),
                       make_record("table3", host, 1.0, 200, hw=False,
                                   miss_rate=0.0)])
        rc = run_gate(history, baseline, 25.0, 30.0)
        check("miss-rate check skipped without hw counters", rc == 0,
              f"rc={rc}")

        # 6. Fit-less records gate on wall_seconds.
        rec = make_record("micro", host, 0.5, 100, batched=False)
        sec, src = headline_seconds(rec)
        check("fit-less record headlines wall_seconds",
              src == "wall" and abs(sec - 1.0) < 1e-12, f"{src} {sec}")

        # 7. Foreign-host records are skipped, not judged.
        write_history([make_record("table2", "otherhost/cpu/8t", 9.0, 500)])
        rc = run_gate(history, baseline, 10.0, 30.0)
        check("foreign host skip-passes", rc == 0, f"rc={rc}")

    print("self-test: " +
          (f"{len(failures)} FAILURE(S)" if failures else "all checks passed"))
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="bench history JSONL (lncl.bench.v1)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline JSON (lncl.bench_baseline.v1)")
    parser.add_argument("--wall-tolerance-pct", type=float,
                        default=DEFAULT_WALL_TOL_PCT,
                        help="max allowed headline-time regression")
    parser.add_argument("--miss-tolerance-pct", type=float,
                        default=DEFAULT_MISS_TOL_PCT,
                        help="max allowed cache-miss-rate regression")
    parser.add_argument("--update-baseline", action="store_true",
                        help="bless the newest record per (host, bench)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture-driven gate self-test")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.update_baseline:
        if not os.path.exists(args.history):
            raise SystemExit(f"no history at {args.history}")
        newest = newest_per_key(load_history(args.history))
        if not newest:
            raise SystemExit(f"{args.history} holds no records")
        write_baseline(args.baseline, newest)
        print(f"baseline updated: {args.baseline} "
              f"({len(newest)} entry/entries)")
        return 0
    return run_gate(args.history, args.baseline,
                    args.wall_tolerance_pct, args.miss_tolerance_pct)


if __name__ == "__main__":
    sys.exit(main())
