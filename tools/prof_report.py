#!/usr/bin/env python3
"""Merge trace + perf counters + metrics into one per-phase profile table.

Joins, per span name:

  * results/trace_<id>.json  (Chrome trace)  — count, inclusive ms, and
    SELF ms (exclusive of child spans, via trace_summary.compute_self_us);
  * results/prof_<id>.json   (lncl.prof.v1)  — task-clock CPU ms, IPC and
    cache-miss rate (zeros with a "hw counters unavailable" note on
    PMU-less hosts, where only the software group counts), page faults;
  * results/metrics_<id>.json (lncl.metrics.v1 snapshot) — gemm.flops,
    turned into achieved GFLOP/s over the fit span's CPU time and compared
    against the roofline peak from results/BENCH_micro.json (max GFLOPS
    counter across BM_GemmMicrokernel shapes).

The trace and the prof file see the same spans from two angles: the trace
measures wall time between ctor and dtor, the prof file counts what the
CPU retired in between. Divergence between self wall-ms and task-clock ms
is scheduling (preemption, page faults), not compute.

Usage:
  tools/prof_report.py --id table2            # expands the results/ paths
  tools/prof_report.py --trace T --prof P [--metrics M] [--micro B]
  tools/prof_report.py --self-test

Exit codes: 0 ok, 1 self-test failure, 2 bad input.
"""

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from trace_summary import aggregate_trace, load_trace_spans  # noqa: E402


def load_prof(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "lncl.prof.v1":
        raise SystemExit(f"{path}: unknown schema {doc.get('schema')!r}")
    return doc


def micro_roofline_gflops(path):
    """Peak GFLOPS over the GEMM microkernel sweep — the roofline the
    end-to-end fit is judged against. 0.0 when absent."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    peak = 0.0
    for bm in doc.get("benchmarks", []):
        if "GemmMicrokernel" in bm.get("name", ""):
            peak = max(peak, float(bm.get("GFLOPS", 0.0)))
    return peak


def build_report(trace_spans, prof_doc, metrics_doc=None, roofline=0.0):
    """Pure merge -> {"rows": [...], "gemm": {...}|None, "hw": bool}."""
    trace_agg = aggregate_trace(trace_spans)
    prof_spans = prof_doc.get("spans", {})
    hw = bool(prof_doc.get("hw_counters_available"))

    rows = []
    for name in sorted(set(trace_agg) | set(prof_spans),
                       key=lambda n: -trace_agg.get(n, {}).get("self_us", 0)):
        t = trace_agg.get(name, {"count": 0, "total_us": 0.0, "self_us": 0.0})
        p = prof_spans.get(name, {})
        rows.append({
            "span": name,
            "count": t["count"] or p.get("spans", 0),
            "incl_ms": t["total_us"] / 1000.0,
            "self_ms": t["self_us"] / 1000.0,
            "cpu_ms": p.get("task_clock_ns", 0) / 1e6,
            "ipc": p.get("ipc", 0.0),
            "cache_miss_rate": p.get("cache_miss_rate", 0.0),
            "page_faults": p.get("page_faults", 0),
        })

    gemm = None
    if metrics_doc is not None:
        flops = metrics_doc.get("counters", {}).get("gemm.flops", 0)
        fit = prof_spans.get("fit", {})
        # Prefer the fit span's CPU time (task-clock, survives preemption);
        # fall back to its inclusive wall time from the trace.
        fit_s = fit.get("task_clock_ns", 0) / 1e9
        basis = "fit task-clock"
        if fit_s <= 0.0:
            fit_s = trace_agg.get("fit", {}).get("total_us", 0.0) / 1e6
            basis = "fit wall"
        if flops > 0 and fit_s > 0:
            achieved = flops / fit_s / 1e9
            gemm = {"flops": flops, "seconds": fit_s, "basis": basis,
                    "achieved_gflops": achieved, "roofline_gflops": roofline,
                    "roofline_pct": (achieved / roofline * 100.0
                                     if roofline > 0 else 0.0)}
    return {"rows": rows, "gemm": gemm, "hw": hw}


def print_report(report, title=""):
    if title:
        print(f"== prof report: {title}")
    total_self = sum(r["self_ms"] for r in report["rows"]) or 1.0
    print(f"   {'span':<16} {'count':>7} {'incl ms':>10} {'self ms':>10} "
          f"{'self%':>6} {'cpu ms':>10} {'ipc':>6} {'miss%':>6} {'pgflt':>7}")
    for r in report["rows"]:
        print(f"   {r['span']:<16} {r['count']:>7} {r['incl_ms']:>10.2f} "
              f"{r['self_ms']:>10.2f} {r['self_ms'] / total_self:>6.1%} "
              f"{r['cpu_ms']:>10.2f} {r['ipc']:>6.2f} "
              f"{r['cache_miss_rate']:>6.1%} {r['page_faults']:>7}")
    if not report["hw"]:
        print("   (hw counters unavailable on this host — ipc/miss% are "
              "zeros; cpu ms/pgflt come from the software group)")
    g = report["gemm"]
    if g is not None:
        line = (f"   gemm: {g['flops']:,} flops / {g['seconds']:.3f}s "
                f"{g['basis']} = {g['achieved_gflops']:.2f} GFLOP/s")
        if g["roofline_gflops"] > 0:
            line += (f"  ({g['roofline_pct']:.1f}% of "
                     f"{g['roofline_gflops']:.1f} GFLOP/s micro roofline)")
        print(line)
        print("   (end-to-end fit spends time outside GEMM too, so this is "
              "a lower bound on kernel efficiency)")


# ---------------------------------------------------------------------------
# Self-test: fixture trace/prof/metrics/micro files with hand-computable
# numbers. CI runs this (ctest prof_selftest / scripts/check.sh).
# ---------------------------------------------------------------------------

def self_test():
    failures = []

    def check(name, ok, detail=""):
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] {name}" + (f" — {detail}" if detail else ""))
        if not ok:
            failures.append(name)

    print("prof_report --self-test")
    # fit [0,1000us] wraps epoch [100,900] wraps m_step [150,450] and
    # e_step [500,850]; a second thread adds e_step_shard [0,300].
    trace = {"traceEvents": [
        {"ph": "X", "tid": 1, "ts": 0, "dur": 1000, "name": "fit"},
        {"ph": "X", "tid": 1, "ts": 100, "dur": 800, "name": "epoch"},
        {"ph": "X", "tid": 1, "ts": 150, "dur": 300, "name": "m_step"},
        {"ph": "X", "tid": 1, "ts": 500, "dur": 350, "name": "e_step"},
        {"ph": "X", "tid": 2, "ts": 0, "dur": 300, "name": "e_step_shard"},
    ]}
    prof = {"schema": "lncl.prof.v1", "hw_counters_available": True,
            "sw_counters_available": True,
            "spans": {
                "fit": {"spans": 1, "cycles": 4000, "instructions": 8000,
                        "cache_references": 1000, "cache_misses": 100,
                        "branch_misses": 5, "task_clock_ns": 2_000_000_000,
                        "page_faults": 7, "context_switches": 1,
                        "ipc": 2.0, "cache_miss_rate": 0.1},
                "m_step": {"spans": 1, "cycles": 1000, "instructions": 1500,
                           "task_clock_ns": 300_000, "page_faults": 2,
                           "ipc": 1.5, "cache_miss_rate": 0.0},
            }}
    metrics = {"counters": {"gemm.flops": 4_000_000_000}}
    micro = {"benchmarks": [
        {"name": "BM_GemmMicrokernel/14/16/160", "GFLOPS": 50.0},
        {"name": "BM_GemmMicrokernel/64/32/32", "GFLOPS": 80.0},
        {"name": "BM_LogicProject/32", "GFLOPS": 999.0},  # not a GEMM kernel
    ]}

    with tempfile.TemporaryDirectory(prefix="prof_report_selftest.") as tmp:
        paths = {}
        for stem, doc in [("trace", trace), ("prof", prof),
                          ("metrics", metrics), ("micro", micro)]:
            paths[stem] = os.path.join(tmp, f"{stem}.json")
            with open(paths[stem], "w", encoding="utf-8") as f:
                json.dump(doc, f)

        spans = load_trace_spans(paths["trace"])
        report = build_report(spans, load_prof(paths["prof"]),
                              json.load(open(paths["metrics"],
                                             encoding="utf-8")),
                              micro_roofline_gflops(paths["micro"]))
        rows = {r["span"]: r for r in report["rows"]}

        # Self times: fit = 1000-800 = 200; epoch = 800-300-350 = 150;
        # leaves keep their full duration; tid 2 is its own stack.
        for name, want in [("fit", 0.200), ("epoch", 0.150),
                           ("m_step", 0.300), ("e_step", 0.350),
                           ("e_step_shard", 0.300)]:
            got = rows[name]["self_ms"]
            check(f"self time {name}", abs(got - want) < 1e-9,
                  f"{got} vs {want}")
        check("inclusive unchanged", abs(rows["fit"]["incl_ms"] - 1.0) < 1e-9,
              str(rows["fit"]["incl_ms"]))

        # Counter join: prof rows land on the right spans.
        check("fit cpu ms", abs(rows["fit"]["cpu_ms"] - 2000.0) < 1e-9,
              str(rows["fit"]["cpu_ms"]))
        check("fit ipc", rows["fit"]["ipc"] == 2.0)
        check("m_step page faults", rows["m_step"]["page_faults"] == 2)
        check("prof-less span zeroed", rows["e_step"]["cpu_ms"] == 0.0)

        # Roofline: 4e9 flops / 2.0s task-clock = 2 GFLOP/s; peak is the
        # max over GEMM kernels only (80, not 999).
        g = report["gemm"]
        check("achieved gflops", g is not None
              and abs(g["achieved_gflops"] - 2.0) < 1e-9, str(g))
        check("roofline from gemm kernels only",
              g["roofline_gflops"] == 80.0, str(g["roofline_gflops"]))
        check("roofline pct", abs(g["roofline_pct"] - 2.5) < 1e-9,
              str(g["roofline_pct"]))

        # The table must render without exceptions.
        print_report(report, title="self-test fixture")

    print("self-test: " +
          (f"{len(failures)} FAILURE(S)" if failures else "all checks passed"))
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--id", help="expands to results/{trace,prof,"
                        "metrics}_<id>.json + results/BENCH_micro.json")
    parser.add_argument("--trace", help="Chrome trace JSON")
    parser.add_argument("--prof", help="lncl.prof.v1 JSON")
    parser.add_argument("--metrics", help="metrics snapshot JSON (optional)")
    parser.add_argument("--micro", help="BENCH_micro.json for the roofline "
                        "(optional)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.id:
        args.trace = args.trace or f"results/trace_{args.id}.json"
        args.prof = args.prof or f"results/prof_{args.id}.json"
        if not args.metrics:
            cand = f"results/metrics_{args.id}.json"
            args.metrics = cand if os.path.exists(cand) else None
        if not args.micro and os.path.exists("results/BENCH_micro.json"):
            args.micro = "results/BENCH_micro.json"
    if not args.trace or not args.prof:
        parser.error("pass --id or both --trace and --prof")

    metrics_doc = None
    if args.metrics:
        with open(args.metrics, encoding="utf-8") as f:
            metrics_doc = json.load(f)
    roofline = micro_roofline_gflops(args.micro) if args.micro else 0.0
    report = build_report(load_trace_spans(args.trace), load_prof(args.prof),
                          metrics_doc, roofline)
    print_report(report, title=args.id or args.trace)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
