// Fixture: trips the `alloc` rule — raw array new in library code.
float* MakeBuffer(int n) { return new float[n]; }
