#pragma once
// Fixture: clean header — must trip no rule.
int Version();
