// Fixture: trips the `timing` rule — raw clock read outside util/timer.h
// and the obs/ telemetry layer.
#include <chrono>
double Now() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
