// Fixture: trips the `prof` rule — raw perf_event_open / procfs access
// outside src/obs/. Both the libc-less syscall spelling and a procfs read
// must fire.
#include <fstream>
#include <string>
long OpenCycles() {
  // syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0) in real code.
  return __NR_perf_event_open;
}
std::string PeakRss() {
  std::ifstream is("/proc/self/status");
  std::string line;
  std::getline(is, line);
  return line;
}
