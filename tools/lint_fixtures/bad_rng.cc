// Fixture: trips the `rng` rule — unseeded library randomness.
#include <cstdlib>
int Roll() { return std::rand() % 6; }
