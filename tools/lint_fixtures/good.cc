// Fixture: clean library code — must trip no rule. snprintf and
// static_assert are legal and must not be confused with printf / assert.
#include <cstdio>
static_assert(sizeof(int) >= 4, "int width");
int Format(char* buf, int n) { return std::snprintf(buf, 8, "%d", n); }
