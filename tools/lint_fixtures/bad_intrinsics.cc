// Fixture: must trip the `intrinsics` rule (and only it) when staged under
// src/. Raw SIMD belongs in src/util/gemm_kernel.* behind the microkernel
// API.
#include <immintrin.h>

float SumLanes(const float* p) {
  __m256 v = _mm256_loadu_ps(p);
  float out[8];
  _mm256_storeu_ps(out, v);
  return out[0];
}
