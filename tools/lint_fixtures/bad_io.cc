// Fixture: trips the `io` rule — direct stdout write from library code.
#include <cstdio>
void Report(int n) { printf("n=%d\n", n); }
