// Fixture: trips the `pragma-once` rule — legacy include guard only.
#ifndef LNCL_LINT_FIXTURE_H_
#define LNCL_LINT_FIXTURE_H_
int Version();
#endif  // LNCL_LINT_FIXTURE_H_
