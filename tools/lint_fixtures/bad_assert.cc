// Fixture: trips the `assert` rule — vanishes under NDEBUG.
#include <cassert>
void Check(int n) { assert(n > 0); }
