// fixture-path: src/nn/workspace_lifetime_bad.cc
// Positive cases for the workspace-lifetime check: arena storage escaping
// its acquiring scope via return, member store, or an outliving lambda.
#include <functional>

#include "util/workspace.h"

namespace lncl::nn {

util::Matrix& DanglingReference() {
  util::WorkspaceScope scope;
  util::Matrix& m = scope.NewMatrix(4, 4);
  return m;  // EXPECT: workspace-lifetime
}

const float* DanglingPointer() {
  util::WorkspaceScope scope;
  util::Matrix& m = scope.NewMatrix(4, 4);
  return m.data();  // EXPECT: workspace-lifetime
}

class Cache {
 public:
  void Fill();
  void FillPointer();
  void Defer(util::ThreadPool* pool);

 private:
  float* data_ = nullptr;
  util::Matrix* scratch_ = nullptr;
  std::function<void()> deferred_ = nullptr;
};

void Cache::Fill() {
  util::WorkspaceScope scope;
  util::Matrix& m = scope.NewMatrix(8, 8);
  scratch_ = &m;  // EXPECT: workspace-lifetime
}

void Cache::FillPointer() {
  util::WorkspaceScope scope;
  util::Matrix& m = scope.NewMatrix(8, 8);
  float* p = m.data();
  data_ = p;  // EXPECT: workspace-lifetime
}

void Cache::Defer(util::ThreadPool* pool) {
  util::WorkspaceScope scope;
  util::Matrix& m = scope.NewMatrix(2, 2);
  deferred_ = [&] { Touch(m); };  // EXPECT: workspace-lifetime
  pool->Submit([&] { Touch(m); });  // EXPECT: workspace-lifetime
}

}  // namespace lncl::nn
