// fixture-path: src/nn/workspace_lifetime_ok.cc
// Negative cases for the workspace-lifetime check: scope-local use,
// value copies out, and lambdas that run before the scope dies.
#include "util/threadpool.h"
#include "util/workspace.h"

namespace lncl::nn {

util::Matrix CopyOutIsFine(int rows, int cols) {
  util::WorkspaceScope scope;
  util::Matrix& m = scope.NewMatrix(rows, cols);
  m.Fill(0.0f);
  util::Matrix owned = m;
  return owned;  // by-value: the arena contents are copied out
}

float ScopeLocalUse() {
  util::WorkspaceScope scope;
  util::Matrix& a = scope.NewMatrix(4, 4);
  util::Matrix& b = scope.NewMatrix(4, 4);
  a.Fill(1.0f);
  b.Fill(2.0f);
  float total = 0.0f;
  for (int i = 0; i < 4; ++i) {
    total += a(i, i) + b(i, i);
  }
  return total;
}

class Packer {
 public:
  void Pack(const util::Matrix& in);

 private:
  util::Matrix packed_;  // owned storage: copies are fine
};

void Packer::Pack(const util::Matrix& in) {
  util::WorkspaceScope scope;
  util::Matrix& staging = scope.NewMatrix(in.rows(), in.cols());
  staging.Fill(0.5f);
  packed_ = staging;  // value copy into owned member storage
}

void ImmediateLambdaIsFine(util::Parallelizer* exec) {
  util::WorkspaceScope scope;
  util::Matrix& m = scope.NewMatrix(8, util::Parallelizer::kSlots);
  exec->RunSlots(util::Parallelizer::kSlots,
                 [&](int s) { m(0, s) = static_cast<float>(s); });
}

float ScopeLocalLambdaIsFine(const util::Matrix& in) {
  util::WorkspaceScope scope;
  util::Matrix& m = scope.NewMatrix(in.rows(), in.cols());
  // A lambda held in a scope-local dies with the arena scope: no escape.
  auto fill = [&](float v) { m.Fill(v); };
  fill(0.25f);
  return m(0, 0);
}

}  // namespace lncl::nn
