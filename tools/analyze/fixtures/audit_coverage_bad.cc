// fixture-path: src/inference/audit_coverage_bad.cc
// Positive cases for the audit-coverage check: public probability
// producers with no LNCL_AUDIT_* contract and no audited callee.
#include "inference/truth_inference.h"
#include "util/check.h"

namespace lncl::inference {

std::vector<util::Matrix> NoisyBayes::Infer(const crowd::AnnotationSet& annotations, const std::vector<int>& items, util::Rng* rng) const {  // EXPECT: audit-coverage
  std::vector<util::Matrix> q(items.size());
  for (size_t i = 0; i < q.size(); ++i) {
    q[i] = Normalize(annotations, static_cast<int>(i), rng);
  }
  return q;
}

util::Matrix ComputeQPrior(int k) {  // EXPECT: audit-coverage
  util::Matrix prior(1, k);
  prior.Fill(1.0f / static_cast<float>(k));
  return prior;
}

}  // namespace lncl::inference
