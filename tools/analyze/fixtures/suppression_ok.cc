// fixture-path: src/nn/suppression_ok.cc
// Negative case for the suppression policy: a justified allow() names a
// known check, silences the finding on its line, and reports nothing.
#include <unordered_map>

namespace lncl::nn {

double Fold(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    // lncl-analyze: allow(determinism) -- addition is proven order-insensitive in this fixture's imaginary world
    total += kv.second;
  }
  return total;
}

}  // namespace lncl::nn
