// fixture-path: src/nn/determinism_bad.cc
// Positive cases for the determinism check: raw entropy sources outside
// src/util/rng.*, and order-sensitive folds over unordered containers.
#include <random>
#include <unordered_map>

namespace lncl::nn {

int RawEntropy() {
  std::random_device rd;              // EXPECT: determinism
  std::mt19937 gen(rd());             // EXPECT: determinism
  int x = rand();                     // EXPECT: determinism
  srand(42);                          // EXPECT: determinism
  return x + static_cast<int>(gen());
}

class FeatureTable {
 public:
  double Fold() const;
  void Flatten(std::vector<int>* out) const;

 private:
  std::unordered_map<std::string, double> weights_;
};

double FeatureTable::Fold() const {
  double total = 0.0;
  for (const auto& kv : weights_) {
    total += kv.second;  // EXPECT: determinism
  }
  return total;
}

void FeatureTable::Flatten(std::vector<int>* out) const {
  for (const auto& kv : weights_) {
    out->push_back(static_cast<int>(kv.second));  // EXPECT: determinism
  }
}

}  // namespace lncl::nn
