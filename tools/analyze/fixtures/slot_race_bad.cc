// fixture-path: src/nn/slot_race_bad.cc
// Positive cases for the slot-race check: writes through by-reference
// captures inside RunSlots lambdas that are NOT slot-indexed.
#include "util/threadpool.h"

namespace lncl::nn {

void SharedAccumulator(util::Parallelizer* exec, int n) {
  double total = 0.0;
  std::vector<int> out;
  exec->RunSlots(util::Parallelizer::kSlots, [&](int s) {
    const auto [b, e] = util::Parallelizer::SlotRange(
        n, s, util::Parallelizer::kSlots);
    for (int i = b; i < e; ++i) {
      total += static_cast<double>(i);  // EXPECT: slot-race
      out.push_back(i);                 // EXPECT: slot-race
    }
  });
}

void SharedCounterAndEscape(util::Parallelizer* exec, std::vector<int>* acc) {
  int hits = 0;
  exec->RunSlots(4, [&](int s) {
    (void)s;
    ++hits;          // EXPECT: slot-race
  });
  exec->RunSlots(4, [&acc, &hits](int slot) {
    (void)slot;
    acc->clear();    // EXPECT: slot-race
    Take(&hits);     // EXPECT: slot-race
  });
}

void NamedCallable(util::Parallelizer* exec,
                   const std::function<void(int)>& fn) {
  exec->RunSlots(4, fn);  // EXPECT: slot-race
}

}  // namespace lncl::nn
