// fixture-path: src/nn/determinism_ok.cc
// Negative cases for the determinism check: ordered-container folds,
// unordered iteration that only touches loop-locals, the seeded util::Rng,
// and the sanctioned collect-then-sort pattern under a justified waiver.
#include <map>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace lncl::nn {

class FeatureTable {
 public:
  double OrderedFold() const;
  double LocalOnly() const;
  std::vector<std::string> SortedKeys() const;
  int Draw(util::Rng* rng) const;

 private:
  std::map<std::string, double> ordered_;
  std::unordered_map<std::string, double> weights_;
};

double FeatureTable::OrderedFold() const {
  double total = 0.0;
  for (const auto& kv : ordered_) {
    total += kv.second;  // std::map iterates in key order: deterministic
  }
  return total;
}

double FeatureTable::LocalOnly() const {
  double best = 0.0;
  for (const auto& kv : weights_) {
    const double scaled = kv.second * 2.0;
    double tmp = scaled;
    tmp += 1.0;
  }
  return best;
}

std::vector<std::string> FeatureTable::SortedKeys() const {
  std::vector<std::string> keys;
  for (const auto& kv : weights_) {
    keys.push_back(kv.first);  // lncl-analyze: allow(determinism) -- keys are sorted on the next line, erasing iteration order
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

int FeatureTable::Draw(util::Rng* rng) const {
  return rng->UniformInt(0, 10);
}

}  // namespace lncl::nn
