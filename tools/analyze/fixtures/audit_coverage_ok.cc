// fixture-path: src/inference/audit_coverage_ok.cc
// Negative cases for the audit-coverage check: a direct LNCL_AUDIT_*
// contract, delegation to an audited callee, internal (anonymous
// namespace) helpers, and non-producer functions.
#include "inference/truth_inference.h"
#include "util/check.h"

namespace lncl::inference {

namespace {

// Internal helper: not public API, exempt even though it shapes rows.
util::Matrix ComputeQScratch(int k) {
  util::Matrix q(1, k);
  q.Fill(1.0f / static_cast<float>(k));
  return q;
}

}  // namespace

util::Matrix ComputeQUniform(int k) {
  util::Matrix q = ComputeQScratch(k);
  LNCL_AUDIT_SIMPLEX(q);
  return q;
}

std::vector<util::Matrix> NoisyBayes::Infer(const crowd::AnnotationSet& annotations, const std::vector<int>& items, util::Rng* rng) const {
  (void)annotations;
  (void)rng;
  std::vector<util::Matrix> q(items.size());
  for (size_t i = 0; i < q.size(); ++i) {
    q[i] = ComputeQUniform(items[static_cast<int>(i)]);  // audited callee
  }
  return q;
}

double NoisyBayes::Score(const util::Matrix& q) const {
  return static_cast<double>(q(0, 0));
}

}  // namespace lncl::inference
