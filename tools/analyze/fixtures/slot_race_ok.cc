// fixture-path: src/nn/slot_race_ok.cc
// Negative cases for the slot-race check: the repo's sanctioned patterns
// (per-slot buffers indexed by the slot parameter, SlotRange-derived
// indices, slot-local aliases, locals, by-value captures) plus one
// justified escape hatch.
#include "util/threadpool.h"

namespace lncl::nn {

void SlotIndexedReduction(util::Parallelizer* exec, int n,
                          std::vector<double>* qf) {
  constexpr int kSlots = util::Parallelizer::kSlots;
  double slot_loss[kSlots] = {0.0};
  std::vector<std::vector<double>> acc(kSlots);
  exec->RunSlots(kSlots, [&](int s) {
    const auto [b, e] = util::Parallelizer::SlotRange(n, s, kSlots);
    acc[s].assign(4, 0.0);
    std::vector<double>& mine = acc[s];
    double local = 0.0;
    for (int i = b; i < e; ++i) {
      const int pos = i + 1;
      local += static_cast<double>(pos);
      mine.push_back(local);
      (*qf)[i] = local;
      slot_loss[s] += local;
    }
  });
}

void AddressOfSlotIndexedElement(util::Parallelizer* exec, int n,
                                 const std::vector<float>& pool) {
  exec->RunSlots(util::Parallelizer::kSlots, [&](int s) {
    const auto [b, e] = util::Parallelizer::SlotRange(
        n, s, util::Parallelizer::kSlots);
    std::vector<const float*> xs;  // slot-local collector
    for (int i = b; i < e; ++i) {
      xs.push_back(&pool[i]);  // &elem at a SlotRange-derived index: a read
    }
    Consume(xs);
  });
}

void ValueCaptureIsACopy(util::Parallelizer* exec, int seed) {
  exec->RunSlots(4, [seed](int s) mutable {
    seed += s;
    std::vector<int> scratch;
    scratch.push_back(seed);
  });
}

void JustifiedEscapeHatch(util::Parallelizer* exec, Histogram* shared) {
  exec->RunSlots(4, [&](int s) {
    (void)s;
    // Histogram::Record is internally sharded per thread and merged in a
    // fixed order, so concurrent non-slot-indexed writes stay
    // deterministic (see src/obs/metrics.h).
    shared->insert(0);  // lncl-analyze: allow(slot-race) -- Histogram insert is per-thread sharded, fixed-order merged
  });
}

}  // namespace lncl::nn
