// fixture-path: src/nn/suppression_bad.cc
// Positive cases for the suppression policy: every allow() must name a
// known check and carry a `-- <reason>` justification.
#include <unordered_map>

namespace lncl::nn {

double Fold(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    total += kv.second;  // lncl-analyze: allow(determinism) EXPECT: bad-suppression
  }
  return total;
}

// lncl-analyze: allow(slot-races) -- plural is not a check name, EXPECT: bad-suppression
void Stub() {}

}  // namespace lncl::nn
