#!/usr/bin/env python3
"""AST-grounded static analysis for the Logic-LNCL tree.

The tier above tools/lint.py's regex rules: structural checks that need to
see lambdas, captures, declarations, and writes, not lines. Checks:

  slot-race           writes through by-reference captures in a
                      Parallelizer::RunSlots lambda must be slot-indexed
  determinism         raw entropy outside util/rng.*; order-sensitive
                      folds over unordered containers
  workspace-lifetime  util::Workspace storage must not escape its
                      acquiring scope (return / member store / outliving
                      lambda capture)
  audit-coverage      probability producers in core/ + inference/ must
                      carry an LNCL_AUDIT_* contract (directly or via an
                      audited callee)

plus the suppression policy: `// lncl-analyze: allow(<check>)` waives a
finding on its line (or the line below the comment), but MUST carry a
justification (`-- <reason>`); a bare or unknown allow is itself reported
as [bad-suppression].

Frontends (tools/analyze/frontends.py): clang.cindex over the
CMake-exported compile_commands.json when the libclang python bindings are
installed (pinned library lookup, LNCL_LIBCLANG to override), otherwise a
dependency-free builtin lexer — the analyze step never silently vanishes
on machines without libclang.

Usage:
  tools/analyze/analyze.py                    analyze src/; exit 1 on
                                              findings
  tools/analyze/analyze.py --compdb build/compile_commands.json
  tools/analyze/analyze.py --self-test        run the fixture corpus in
                                              tools/analyze/fixtures/
  tools/analyze/analyze.py --list-checks
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks as checks_pkg  # noqa: E402
from checks import TreeContext, all_checks, check_names  # noqa: E402
from engine import SUPPRESS_RE, suppression_for  # noqa: E402
from frontends import (BuiltinFrontend, load_compile_args,  # noqa: E402
                       select_frontend)

FIXTURE_PATH_DIRECTIVE = "fixture-path:"


def iter_tree_files(root):
    """Analysis scope: library code under src/ (headers + sources)."""
    top = os.path.join(root, "src")
    for dirpath, _, names in os.walk(top):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root)


def build_context(root, relpaths, frontend, compile_args, errors):
    ctx = TreeContext()
    for rel in relpaths:
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8") as f:
                raw = f.read()
            ir = frontend.parse(path, rel,
                                compile_args.get(os.path.normpath(path)))
        except Exception as e:  # frontend bug or unparsable file
            try:
                ir = BuiltinFrontend().parse(path, rel)
            except Exception:
                errors.append(f"{rel}: unparsable: {e}")
                continue
        ctx.add_file(ir, raw)
    ctx.finalize()
    return ctx


def run_checks(ctx):
    """Returns a list of (relpath, line, check, message), suppression policy
    applied."""
    findings = []
    known = set(check_names())
    for rel in sorted(ctx.files):
        ir = ctx.files[rel]
        for mod in all_checks():
            for line, msg in mod.run(ir, ctx) or ():
                present, justified = suppression_for(ir, line, mod.NAME)
                if present:
                    # Justified or not, the allow wins the line — an
                    # unjustified one is reported by the policy scan below.
                    continue
                findings.append((rel, line, mod.NAME, msg))
        # Suppression policy: every allow() must name a known check and
        # carry a `-- <reason>` justification.
        for ln in sorted(ir.comments):
            for m in SUPPRESS_RE.finditer(ir.comments[ln]):
                target, reason = m.group(1), m.group(2)
                if target not in known:
                    findings.append(
                        (rel, ln, "bad-suppression",
                         f"allow({target}) names an unknown check "
                         f"(known: {', '.join(sorted(known))})"))
                elif not reason:
                    findings.append(
                        (rel, ln, "bad-suppression",
                         f"allow({target}) carries no justification — "
                         "write `// lncl-analyze: allow(" + target +
                         ") -- <reason>`"))
    return findings


def report(findings):
    for rel, line, check, msg in sorted(findings):
        print(f"{rel}:{line}: [{check}] {msg}")
    print(f"analyze: {len(findings)} finding(s)")


# ---------------------------------------------------------------------------
# Self-test over the fixture corpus
# ---------------------------------------------------------------------------


def _fixture_expectations(path):
    """EXPECT: <check> comments mark the exact lines findings must land on.
    Returns (staged_relpath, {(line, check), ...})."""
    staged = None
    expect = set()
    with open(path, encoding="utf-8") as f:
        for i, line in enumerate(f, start=1):
            if FIXTURE_PATH_DIRECTIVE in line:
                staged = line.split(FIXTURE_PATH_DIRECTIVE, 1)[1].strip()
            if "EXPECT:" in line:
                for name in line.split("EXPECT:", 1)[1].split(","):
                    expect.add((i, name.strip()))
    name = os.path.basename(path)
    return staged or f"src/core/{name}", expect


def self_test(root):
    fixture_dir = os.path.join(root, "tools", "analyze", "fixtures")
    names = sorted(n for n in os.listdir(fixture_dir) if n.endswith(".cc"))
    frontend = BuiltinFrontend()
    failures = 0
    fired = {}  # check -> [firing fixtures, clean fixtures]
    for c in check_names():
        fired[c] = [0, 0]
    for name in names:
        src = os.path.join(fixture_dir, name)
        staged_rel, expect = _fixture_expectations(src)
        errors = []
        ctx = TreeContext()
        with open(src, encoding="utf-8") as f:
            raw = f.read()
        try:
            ir = frontend.parse(src, staged_rel)
        except Exception as e:
            print(f"self-test: {name}: PARSE ERROR: {e}")
            failures += 1
            continue
        ir.relpath = staged_rel
        ctx.add_file(ir, raw)
        ctx.finalize()
        got = {(line, check) for _, line, check, _ in run_checks(ctx)}
        ok = got == expect
        for c in {c for _, c in expect}:
            fired[c][0] += 1
        if not expect:
            for c in check_names():
                fired[c][1] += 1
        status = "ok" if ok else "FAIL"
        detail = ""
        if not ok:
            missing = sorted(expect - got)
            extra = sorted(got - expect)
            detail = f"  missing={missing} extra={extra}"
        print(f"self-test: {name}: expected {len(expect)} finding(s), "
              f"got {len(got)} [{status}]{detail}")
        failures += 0 if ok else 1
        del errors
    for check, (pos, neg) in sorted(fired.items()):
        if pos == 0 or neg == 0:
            print(f"self-test: check '{check}' lacks "
                  f"{'a firing' if pos == 0 else 'a clean'} fixture [FAIL]")
            failures += 1
    print(f"self-test: {failures} failure(s) across {len(names)} fixtures")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="AST-grounded static analysis (see tools/analyze/)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: grandparent of this file)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json (default: "
                             "<root>/build/compile_commands.json if present)")
    parser.add_argument("--frontend", choices=("auto", "builtin", "clang"),
                        default="auto")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args()
    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))

    if args.list_checks:
        for mod in all_checks():
            print(f"{mod.NAME:20s} {mod.DESCRIPTION}")
        print(f"{'bad-suppression':20s} allow() without a known check name "
              "or a `-- <reason>` justification")
        return 0

    if args.self_test:
        return 1 if self_test(root) else 0

    frontend, note = select_frontend(args.frontend)
    if note:
        print(f"analyze: {note}")
    compdb = args.compdb
    if compdb is None:
        default = os.path.join(root, "build", "compile_commands.json")
        compdb = default if os.path.exists(default) else None
    compile_args = load_compile_args(compdb)
    if compdb:
        print(f"analyze: using {os.path.relpath(compdb, root)} "
              f"({frontend.name} frontend)")
    else:
        print(f"analyze: no compile_commands.json; walking src/ "
              f"({frontend.name} frontend)")

    errors = []
    relpaths = list(iter_tree_files(root))
    ctx = build_context(root, relpaths, frontend, compile_args, errors)
    findings = run_checks(ctx)
    for e in errors:
        findings.append((e.split(":")[0], 1, "parse-error", e))
    if findings:
        report(findings)
        return 1
    print(f"analyze: clean ({len(relpaths)} files, "
          f"{len(all_checks())} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
