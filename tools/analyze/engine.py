"""Token/structural IR for the lncl static analysis suite (stdlib only).

The checks in tools/analyze/checks/ operate on a deliberately small IR:

  * a token stream (``Tok``) with line/column positions,
  * bracket match maps over ``()``/``{}``/``[]``,
  * a per-line comment map (suppression + fixture annotations), and
  * structural helpers: lambda parsing, namespace-scope function-definition
    discovery, statement/declaration walking, and write detection.

Two frontends produce this IR (tools/analyze/frontends.py): the builtin
lexer below (dependency-free, always available) and a clang.cindex lexer
over the CMake-exported compile_commands.json. They are twins in the same
sense as the scalar/SIMD GEMM kernels: the builtin frontend is the
reference everyone can run; the clang frontend adds exact preprocessing
and TU diagnostics when libclang is installed.

The builtin lexer keeps only the *first* branch of every preprocessor
conditional (#if/#ifdef/#ifndef ... #elif/#else ... #endif). Dropping the
alternate branches keeps the brace structure balanced whenever each branch
is internally balanced — true across this tree — which is what the
structural layer needs; the alternate branches are twins of the kept code
(scalar GEMM fallbacks, compiled-out audit macros) and are linted by the
plain regex linter anyway.
"""

import os
import re

# ---------------------------------------------------------------------------
# Tokens
# ---------------------------------------------------------------------------


class Tok:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind, text, line, col):
        self.kind = kind  # 'id' | 'num' | 'str' | 'char' | 'punct'
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self):
        return f"Tok({self.kind},{self.text!r},L{self.line})"


# Longest-match punctuation. '>>'/'<<' are fine unsplit: the IR never parses
# template angle brackets.
_PUNCTS = [
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "{", "}", "(", ")", "[", "]", ";", ",", ".", "<", ">", "+", "-",
    "*", "/", "%", "&", "|", "^", "!", "~", "=", "?", ":", "#",
]

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
              ">>="}
COMPOUND_ASSIGN_OPS = ASSIGN_OPS - {"="}

_ID_START = re.compile(r"[A-Za-z_]")
_ID_BODY = re.compile(r"[A-Za-z0-9_]")

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else",
                    "return", "case", "default", "goto", "break", "continue"}
TYPE_KEYWORDS = {
    "auto", "void", "bool", "char", "short", "int", "long", "float",
    "double", "unsigned", "signed", "size_t", "ssize_t", "int8_t", "int16_t",
    "int32_t", "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "uintptr_t", "intptr_t", "wchar_t", "char32_t", "char16_t",
}
DECL_QUALIFIERS = {"const", "constexpr", "static", "thread_local", "mutable",
                   "volatile", "register", "inline", "typename"}


def _preprocess_lines(text):
    """Returns (kept_line_flags, directive_line_flags).

    Line-oriented pre-pass: marks preprocessor-directive lines (including
    backslash continuations) so the lexer skips them, and drops every
    non-first branch of conditional blocks (see module docstring).
    """
    lines = text.split("\n")
    n = len(lines)
    keep = [True] * n
    directive = [False] * n
    # Stack of booleans: is the current branch of each open conditional
    # kept (first branch, and every enclosing branch kept too)?
    cond_stack = []
    i = 0
    while i < n:
        stripped = lines[i].lstrip()
        is_directive = stripped.startswith("#")
        j = i
        if is_directive:
            while j < n and lines[j].rstrip().endswith("\\"):
                j += 1
        if is_directive:
            for k in range(i, j + 1):
                directive[k] = True
                keep[k] = False
            word = stripped[1:].lstrip().split("(")[0].split()
            word = word[0] if word else ""
            if word in ("if", "ifdef", "ifndef"):
                outer = cond_stack[-1] if cond_stack else True
                cond_stack.append(outer)  # first branch: kept iff outer is
            elif word in ("elif", "else"):
                if cond_stack:
                    cond_stack[-1] = False  # non-first branch: dropped
            elif word == "endif":
                if cond_stack:
                    cond_stack.pop()
        else:
            if cond_stack and not cond_stack[-1]:
                keep[i] = False
        i = j + 1
    return keep, directive


class LexError(Exception):
    pass


def lex(text, path="<buf>"):
    """Builtin lexer. Returns (tokens, comments) where comments maps
    line -> concatenated comment text on that line."""
    keep, _ = _preprocess_lines(text)
    lines = text.split("\n")
    # Blank dropped lines so offsets/line numbers stay true.
    src = "\n".join(l if keep[i] else "" for i, l in enumerate(lines))
    toks = []
    comments = {}

    def add_comment(line, body):
        comments[line] = (comments.get(line, "") + " " + body).strip()

    i, n = 0, len(src)
    line, col = 1, 1

    def advance(k):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and src[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = src[i]
        if c in " \t\r\n":
            advance(1)
            continue
        if c == "/" and i + 1 < n:
            if src[i + 1] == "/":
                end = src.find("\n", i)
                end = n if end == -1 else end
                add_comment(line, src[i + 2:end].strip())
                advance(end - i)
                continue
            if src[i + 1] == "*":
                end = src.find("*/", i + 2)
                if end == -1:
                    raise LexError(f"{path}:{line}: unterminated /* comment")
                add_comment(line, src[i + 2:end].strip())
                advance(end + 2 - i)
                continue
        if c == "R" and src[i:i + 2] == 'R"':
            m = re.match(r'R"([^()\\ ]{0,16})\(', src[i:])
            if m:
                delim = m.group(1)
                close = ')' + delim + '"'
                end = src.find(close, i + m.end())
                if end == -1:
                    raise LexError(f"{path}:{line}: unterminated raw string")
                toks.append(Tok("str", src[i:end + len(close)], line, col))
                advance(end + len(close) - i)
                continue
        if c == '"' or (c == "'" and not _is_digit_sep(src, i)):
            q = c
            j = i + 1
            while j < n:
                if src[j] == "\\":
                    j += 2
                    continue
                if src[j] == q:
                    break
                if src[j] == "\n":
                    break  # tolerate — never valid C++ but keep lexing
                j += 1
            toks.append(Tok("str" if q == '"' else "char",
                            src[i:j + 1], line, col))
            advance(j + 1 - i)
            continue
        if c.isdigit() or (c == "." and i + 1 < n and src[i + 1].isdigit()):
            j = i
            while j < n and (src[j].isalnum() or src[j] in "._'"
                             or (src[j] in "+-" and src[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", src[i:j], line, col))
            advance(j - i)
            continue
        if _ID_START.match(c):
            j = i
            while j < n and _ID_BODY.match(src[j]):
                j += 1
            toks.append(Tok("id", src[i:j], line, col))
            advance(j - i)
            continue
        for p in _PUNCTS:
            if src.startswith(p, i):
                toks.append(Tok("punct", p, line, col))
                advance(len(p))
                break
        else:
            advance(1)  # unknown byte (e.g. stray backslash): skip
    return toks, comments


def _is_digit_sep(src, i):
    # 1'000'000 digit separators: a ' directly between alnums.
    return (i > 0 and src[i - 1].isalnum() and i + 1 < len(src)
            and src[i + 1].isalnum())


# ---------------------------------------------------------------------------
# Structural layer
# ---------------------------------------------------------------------------

_OPEN = {"(": ")", "{": "}", "[": "]"}
_CLOSE = {v: k for k, v in _OPEN.items()}


def match_brackets(toks):
    """Tolerant bracket matcher: open_idx -> close_idx and vice versa.
    Mismatched tokens simply stay unmapped."""
    match = {}
    stack = []
    for i, t in enumerate(toks):
        if t.kind != "punct":
            continue
        if t.text in _OPEN:
            stack.append(i)
        elif t.text in _CLOSE:
            want = _CLOSE[t.text]
            # Pop until a matching opener (tolerates imbalance).
            while stack:
                j = stack.pop()
                if toks[j].text == want:
                    match[j] = i
                    match[i] = j
                    break
    return match


class Lambda:
    def __init__(self, cap_begin, cap_end, params, body_begin, body_end,
                 captures, default_capture, captures_this):
        self.cap_begin = cap_begin            # index of '['
        self.cap_end = cap_end                # index of ']'
        self.params = params                  # [name, ...]
        self.body_begin = body_begin          # index of '{'
        self.body_end = body_end              # index of matching '}'
        self.captures = captures              # {name: 'ref'|'val'}
        self.default_capture = default_capture  # 'ref' | 'val' | None
        self.captures_this = captures_this


class FuncDef:
    def __init__(self, name, qualname, ret_tokens, body_begin, body_end,
                 anon_ns, line):
        self.name = name              # last component, e.g. 'Infer'
        self.qualname = qualname      # e.g. 'DawidSkene::Infer'
        self.ret_tokens = ret_tokens  # list[str]
        self.body_begin = body_begin
        self.body_end = body_end
        self.anon_ns = anon_ns
        self.line = line


class FileIR:
    """Everything a check needs about one file."""

    def __init__(self, path, relpath, toks, comments):
        self.path = path
        self.relpath = relpath
        self.toks = toks
        self.comments = comments
        self.match = match_brackets(toks)

    # -- token utilities ---------------------------------------------------

    def text(self, i):
        return self.toks[i].text

    def find_ident(self, name, begin=0, end=None):
        end = len(self.toks) if end is None else end
        for i in range(begin, end):
            t = self.toks[i]
            if t.kind == "id" and t.text == name:
                yield i

    def call_args(self, open_paren):
        """Splits the argument list of the '(' at open_paren into top-level
        comma-separated (begin, end) token index ranges."""
        close = self.match.get(open_paren)
        if close is None:
            return []
        args = []
        depth = 0
        start = open_paren + 1
        for i in range(open_paren + 1, close):
            t = self.toks[i]
            if t.kind == "punct":
                if t.text in _OPEN:
                    depth += 1
                elif t.text in _CLOSE:
                    depth -= 1
                elif t.text == "," and depth == 0:
                    args.append((start, i))
                    start = i + 1
        if start < close:
            args.append((start, close))
        return args

    # -- lambdas -----------------------------------------------------------

    def parse_lambda(self, i):
        """Parses a lambda whose '[' is at token i. Returns Lambda or None."""
        toks = self.toks
        if toks[i].text != "[":
            return None
        if i > 0:
            prev = toks[i - 1]
            if prev.kind in ("id", "num") or prev.text in ("]", ")"):
                return None  # subscript (`x[i]`), not a lambda introducer
        cap_end = self.match.get(i)
        if cap_end is None:
            return None
        captures = {}
        default_capture = None
        captures_this = False
        j = i + 1
        while j < cap_end:
            t = toks[j]
            if t.text == "&":
                if j + 1 < cap_end and toks[j + 1].kind == "id":
                    captures[toks[j + 1].text] = "ref"
                    j += 2
                    continue
                default_capture = "ref"
            elif t.text == "=":
                default_capture = "val"
            elif t.text == "this":
                captures_this = True
            elif t.kind == "id":
                captures[t.text] = "val"
            j += 1
        # Optional parameter list.
        params = []
        j = cap_end + 1
        if j < len(toks) and toks[j].text == "(":
            close = self.match.get(j)
            if close is None:
                return None
            for begin, end in self.call_args(j):
                # Parameter name: last non-type identifier of the declarator.
                name = None
                for k in range(end - 1, begin - 1, -1):
                    if toks[k].kind == "id":
                        name = toks[k].text
                        if name not in TYPE_KEYWORDS \
                                and name not in DECL_QUALIFIERS:
                            break
                if name:
                    params.append(name)
            j = close + 1
        # Skip specifiers (mutable, noexcept, -> ret) until the body brace.
        while j < len(toks) and toks[j].text != "{":
            if toks[j].text in (";", ")", "]", "}"):
                return None
            j += 1
        if j >= len(toks):
            return None
        body_end = self.match.get(j)
        if body_end is None:
            return None
        return Lambda(i, cap_end, params, j, body_end, captures,
                      default_capture, captures_this)

    # -- namespace-scope function definitions -------------------------------

    def function_defs(self):
        """Discovers out-of-line function definitions, skipping their
        bodies. Tracks namespace nesting (incl. anonymous namespaces)."""
        toks = self.toks
        defs = []
        ns_stack = []  # (close_idx, is_anon)
        stmt_start = 0
        i = 0
        while i < len(toks):
            # Retire namespaces whose closing brace we've passed.
            while ns_stack and i > ns_stack[-1][0]:
                ns_stack.pop()
            t = toks[i]
            if t.kind == "punct" and t.text in (";",):
                stmt_start = i + 1
                i += 1
                continue
            if t.kind == "punct" and t.text == "{":
                close = self.match.get(i)
                if close is None:
                    i += 1
                    stmt_start = i
                    continue
                lead = toks[stmt_start:i]
                kinds = self._classify_brace(lead)
                if kinds == "namespace":
                    is_anon = not any(x.kind == "id" and x.text != "namespace"
                                      for x in lead)
                    ns_stack.append((close, is_anon))
                    i += 1
                    stmt_start = i
                    continue
                if kinds == "function":
                    fd = self._parse_funcdef(stmt_start, i, close,
                                             any(a for _, a in ns_stack))
                    if fd is not None:
                        defs.append(fd)
                    i = close + 1
                    stmt_start = i
                    continue
                # class/struct/initializer/other: descend.
                i += 1
                stmt_start = i
                continue
            if t.kind == "punct" and t.text == "}":
                i += 1
                stmt_start = i
                continue
            i += 1
        return defs

    def _classify_brace(self, lead):
        texts = [t.text for t in lead]
        if "namespace" in texts:
            return "namespace"
        if not lead:
            return "other"
        for kw in ("class", "struct", "enum", "union"):
            if kw in texts:
                # `struct X {` with no parens is a type; `X foo(struct ...)`
                # never occurs at namespace scope in this tree.
                if "(" not in texts:
                    return "type"
        if texts and texts[0] in CONTROL_KEYWORDS:
            return "control"
        if "=" in texts and "(" not in texts[:texts.index("=")]:
            return "init"
        # function: declarator parens present and balanced just before
        # (allowing const/noexcept/override/final/-> trailing).
        if ")" in texts:
            return "function"
        return "other"

    def _parse_funcdef(self, stmt_start, brace, close, anon_ns):
        toks = self.toks
        # Find the declarator '(' : the one matching the last ')' before any
        # trailing specifiers.
        j = brace - 1
        # skip member-init lists: walk back to the ')' that closes the
        # parameter list. Strategy: find the first '(' after stmt_start whose
        # preceding token is an identifier that is not a control keyword and
        # whose match exists.
        open_paren = None
        name_idx = None
        k = stmt_start
        while k < brace:
            t = toks[k]
            if t.kind == "punct" and t.text == "(" and k > stmt_start:
                prev = toks[k - 1]
                if prev.kind == "id" and prev.text not in CONTROL_KEYWORDS \
                        and prev.text not in ("operator",):
                    open_paren = k
                    name_idx = k - 1
                    break
                if prev.kind == "punct" and prev.text in (">", "&", "*"):
                    # e.g. conversion/operator forms: skip this file's def.
                    return None
            k += 1
        if open_paren is None or self.match.get(open_paren) is None:
            return None
        name = toks[name_idx].text
        if name in DECL_QUALIFIERS or name in TYPE_KEYWORDS:
            return None
        # Qualified name: walk back over `X::` pairs.
        qual = [name]
        q = name_idx - 1
        while q - 1 >= stmt_start and toks[q].text == "::" \
                and toks[q - 1].kind == "id":
            qual.insert(0, toks[q - 1].text)
            q -= 2
        ret_tokens = [t.text for t in toks[stmt_start:q + 1]]
        if ret_tokens and ret_tokens[0] == "template":
            # strip template intro `template < ... >`
            try:
                gt = ret_tokens.index(">")
                ret_tokens = ret_tokens[gt + 1:]
            except ValueError:
                pass
        return FuncDef(name, "::".join(qual), ret_tokens, brace, close,
                       anon_ns, toks[name_idx].line)

    # -- statements, declarations, writes ------------------------------------

    def statements(self, begin, end):
        """Yields (stmt_begin, stmt_end_exclusive) ranges inside a body,
        recursing into compound statements; `for(...)`/`if(...)` headers are
        yielded as their own ranges."""
        out = []

        def walk(b, e):
            i = b
            start = b
            while i < e:
                t = self.toks[i]
                if t.kind == "punct" and t.text == "{":
                    close = self.match.get(i)
                    if close is None or close > e:
                        i += 1
                        continue
                    if start < i:
                        out.append((start, i))
                    walk(i + 1, close)
                    i = close + 1
                    start = i
                    continue
                if t.kind == "punct" and t.text in ("(",):
                    close = self.match.get(i)
                    if close is None or close > e:
                        i += 1
                        continue
                    i = close + 1
                    continue
                if t.kind == "punct" and t.text == ";":
                    if start < i:
                        out.append((start, i))
                    start = i + 1
                i += 1
            if start < e:
                out.append((start, e))

        walk(begin, end)
        return out

    def local_decls(self, begin, end):
        """Declaration scan over a body range. Returns
        {name: (init_begin, init_end, is_ref)} — heuristic, tuned to repo
        style (see tools/analyze fixtures for the pinned contract)."""
        decls = {}
        toks = self.toks

        def scan_decl_range(b, e, *, loop_header=False):
            # lead = tokens to the first top-level '=', ';', '(', '[' or ':'
            lead_end = None
            lead_stop = None
            depth = 0
            for i in range(b, e):
                t = toks[i]
                if t.kind == "punct":
                    if t.text in _OPEN:
                        if t.text == "(" and lead_end is None:
                            lead_end, lead_stop = i, "("
                            break
                        if t.text == "[" and lead_end is None:
                            # `auto [a, b] = ...` structured binding or
                            # array declarator
                            lead_end, lead_stop = i, "["
                            break
                        depth += 1
                    elif t.text in _CLOSE:
                        depth -= 1
                    elif depth == 0 and t.text in ("=", ":", ";"):
                        lead_end, lead_stop = i, t.text
                        break
                    elif depth == 0 and t.text in COMPOUND_ASSIGN_OPS:
                        return  # `x += ...` is a write, not a decl
            if lead_end is None:
                lead_end, lead_stop = e, None
            lead = toks[b:lead_end]
            if not _looks_like_decl(lead):
                return
            is_ref = any(t.text == "&" for t in lead)
            if lead_stop == "[" and any(t.text == "auto" for t in lead):
                # structured binding: auto [a, b] = init
                close = self.match.get(lead_end)
                if close is None:
                    return
                names = [t.text for t in toks[lead_end + 1:close]
                         if t.kind == "id"]
                init_b = close + 1
                for nm in names:
                    decls[nm] = (init_b, e, is_ref)
                return
            # declared name: last identifier in lead not a keyword
            name_idx = None
            for k in range(len(lead) - 1, -1, -1):
                t = lead[k]
                if t.kind == "id" and t.text not in DECL_QUALIFIERS \
                        and t.text not in TYPE_KEYWORDS:
                    name_idx = k
                    break
            if name_idx is None:
                return
            name = lead[name_idx].text
            if name in CONTROL_KEYWORDS:
                return
            # The name needs an actual type in front of it: a bare
            # `Func(args);` or qualified `ns::Func(args);` statement is a
            # call expression, not a constructor-style declaration.
            pre = lead[:name_idx]
            if not pre or pre[-1].text == "::":
                return
            if lead_stop == "[":
                # array declarator `double x[k] = {...}`
                close = self.match.get(lead_end)
                init_b = (close + 1) if close is not None else e
                decls[name] = (init_b, e, is_ref)
                return
            if lead_stop in ("=", "("):
                decls[name] = (lead_end + 1, e, is_ref)
            elif lead_stop == ":" and loop_header:
                decls[name] = (lead_end + 1, e, is_ref)
            elif lead_stop in (";", None):
                decls[name] = (lead_end, lead_end, is_ref)

        i = begin
        while i < end:
            t = toks[i]
            if t.kind == "id" and t.text == "for" and i + 1 < end \
                    and toks[i + 1].text == "(":
                close = self.match.get(i + 1)
                if close is not None and close <= end:
                    inner_b, inner_e = i + 2, close
                    # range-for: top-level ':' splits decl : range
                    colon = None
                    depth = 0
                    semi = None
                    for k in range(inner_b, inner_e):
                        tk = toks[k]
                        if tk.kind != "punct":
                            continue
                        if tk.text in _OPEN:
                            depth += 1
                        elif tk.text in _CLOSE:
                            depth -= 1
                        elif depth == 0 and tk.text == ":" and colon is None:
                            colon = k
                        elif depth == 0 and tk.text == ";" and semi is None:
                            semi = k
                    if semi is not None:
                        scan_decl_range(inner_b, semi)
                    elif colon is not None:
                        scan_decl_range(inner_b, inner_e, loop_header=True)
                    i = close + 1
                    continue
            i += 1
        # plain statements
        for b, e in self.statements(begin, end):
            scan_decl_range(b, e)
        return decls

    def writes(self, begin, end, mutators):
        """Scans [begin, end) for mutation sites. Yields dicts:
          {kind: 'assign'|'incdec'|'call'|'addr',
           base: str, line: int, lhs: (b, e), indices: [(b, e), ...]}
        `indices` are the token ranges of every [...]/(...) group attached
        to the written postfix chain (slot-index candidates)."""
        toks = self.toks
        out = []
        i = begin
        while i < end:
            t = toks[i]
            if t.kind == "punct" and t.text in ASSIGN_OPS:
                # Exclude declaration initializers: handled by caller via
                # local_decls; here we still record them — callers subtract
                # declared names at the same line when needed. To keep the
                # contract simple we skip assignments whose LHS chain start
                # looks like a declaration lead.
                lhs_b = self._lhs_begin(i, begin)
                if lhs_b is not None and not self._is_decl_context(lhs_b, i):
                    base, indices = self._chain_info(lhs_b, i)
                    if base is not None:
                        out.append({"kind": "assign", "base": base,
                                    "line": toks[i].line,
                                    "lhs": (lhs_b, i), "indices": indices,
                                    "rhs": (i + 1, self._stmt_end(i, end))})
                i += 1
                continue
            if t.kind == "punct" and t.text in ("++", "--"):
                # adjacent identifier chain (prefix or postfix)
                tgt = None
                if i + 1 < end and toks[i + 1].kind == "id":
                    tgt = i + 1
                elif i - 1 >= begin and (toks[i - 1].kind == "id"
                                         or toks[i - 1].text in ("]", ")")):
                    tgt = self._lhs_begin(i, begin)
                if tgt is not None:
                    base, indices = self._chain_info(tgt, i) \
                        if tgt < i else (toks[tgt].text, [])
                    if base is not None:
                        out.append({"kind": "incdec", "base": base,
                                    "line": t.line, "lhs": (tgt, i),
                                    "indices": indices, "rhs": (i, i)})
                i += 1
                continue
            if t.kind == "punct" and t.text in (".", "->") \
                    and i + 2 < end and toks[i + 1].kind == "id" \
                    and toks[i + 1].text in mutators \
                    and toks[i + 2].text == "(":
                lhs_b = self._lhs_begin(i, begin)
                if lhs_b is not None:
                    base, indices = self._chain_info(lhs_b, i)
                    if base is not None:
                        out.append({"kind": "call", "base": base,
                                    "line": t.line, "lhs": (lhs_b, i),
                                    "indices": indices,
                                    "method": toks[i + 1].text,
                                    "rhs": (i + 2, self.match.get(i + 2,
                                                                  i + 2))})
                i += 1
                continue
            if t.kind == "punct" and t.text == "&" and i + 1 < end \
                    and toks[i + 1].kind == "id" and i - 1 >= begin \
                    and toks[i - 1].text in ("(", ","):
                # absorb the postfix chain: `&a.b[i]` exposes `[i]` as an
                # index so slot-partitioned address-of reads stay quiet
                j = i + 1
                indices = []
                while j + 1 < end:
                    nt = toks[j + 1]
                    if nt.kind == "punct" and nt.text in (".", "->", "::") \
                            and j + 2 < end and toks[j + 2].kind == "id":
                        j += 2
                        continue
                    if nt.kind == "punct" and nt.text == "[":
                        close = self.match.get(j + 1)
                        if close is None or close >= end:
                            break
                        indices.append((j + 2, close))
                        j = close
                        continue
                    break
                out.append({"kind": "addr", "base": toks[i + 1].text,
                            "line": t.line, "lhs": (i + 1, j + 1),
                            "indices": indices, "rhs": (i + 1, j + 1)})
                i += 1
                continue
            i += 1
        return out

    def _stmt_end(self, i, end):
        depth = 0
        for k in range(i, end):
            t = self.toks[k]
            if t.kind != "punct":
                continue
            if t.text in _OPEN:
                depth += 1
            elif t.text in _CLOSE:
                if depth == 0:
                    return k
                depth -= 1
            elif t.text == ";" and depth == 0:
                return k
        return end

    def _lhs_begin(self, op_idx, floor):
        """Walks backward from an operator over a postfix chain
        (identifiers, ::, ., ->, matched []/() groups, a leading * or
        parenthesized deref). Returns chain start index or None."""
        toks = self.toks
        i = op_idx - 1
        saw_any = False
        while i >= floor:
            t = toks[i]
            if t.kind == "punct" and t.text in ("]", ")"):
                j = self.match.get(i)
                if j is None or j < floor:
                    return None
                i = j - 1
                saw_any = True
                continue
            if t.kind == "id":
                saw_any = True
                # keep absorbing `X::` / `a.` / `p->` to the left
                if i - 1 >= floor and toks[i - 1].kind == "punct" \
                        and toks[i - 1].text in ("::", ".", "->"):
                    i -= 2
                    continue
                # leading deref `*p` → absorb the star
                if i - 1 >= floor and toks[i - 1].text == "*":
                    prev2 = toks[i - 2] if i - 2 >= floor else None
                    if prev2 is None or prev2.kind == "punct" and \
                            prev2.text in ("(", ",", ";", "{", "}", "="):
                        i -= 1
                return i
            return i + 1 if saw_any else None
        return floor if saw_any else None

    def _is_decl_context(self, lhs_b, op_idx):
        """True when tokens immediately before the LHS look like a type
        (declaration with initializer, not a write)."""
        toks = self.toks
        j = lhs_b - 1
        seen_type = False
        while j >= 0:
            t = toks[j]
            if t.kind == "punct" and t.text in (";", "{", "}", "(", ","):
                break
            if t.kind == "punct" and t.text in ("&", "*", "::", "<", ">",
                                                "[", "]"):
                j -= 1
                continue
            if t.kind == "id":
                seen_type = True
                j -= 1
                continue
            return False
        return seen_type

    def _chain_info(self, chain_b, chain_e):
        """Base identifier + index-group ranges of the postfix chain in
        [chain_b, chain_e)."""
        toks = self.toks
        base = None
        indices = []
        i = chain_b
        while i < chain_e:
            t = toks[i]
            if t.kind == "id":
                if base is None:
                    # Base is the last component of a qualified `A::B` name
                    # but the first of a member chain `a.b.c`.
                    j = i
                    base = t.text
                    while j + 1 < chain_e and toks[j + 1].text == "::":
                        j += 2
                        if j < chain_e and toks[j].kind == "id":
                            base = toks[j].text
                    i = j
            elif t.kind == "punct" and t.text == "*" and base is None:
                pass  # leading deref: `*out = ...`
            elif t.kind == "punct" and t.text in ("[", "("):
                close = self.match.get(i)
                if close is None or close > chain_e:
                    break
                if base is None:
                    # Parenthesized deref head: `(*ptr)[...]` — resolve the
                    # base inside the group, the group is not an index.
                    inner_base, _ = self._chain_info(i + 1, close)
                    base = inner_base
                else:
                    indices.append((i + 1, close))
                i = close
            i += 1
        return base, indices


def _looks_like_decl(lead):
    """Heuristic: does this statement lead declare a variable?"""
    if not lead:
        return False
    texts = [t.text for t in lead]
    if texts[0] in CONTROL_KEYWORDS or texts[0] == "return":
        return False
    for t in lead:
        if t.kind == "punct" and t.text in (".", "->", "!", "=="):
            return False
    ids = [t for t in lead if t.kind == "id"]
    if any(t.text in TYPE_KEYWORDS or t.text in DECL_QUALIFIERS
           for t in ids):
        return True
    if "::" in texts:
        return True
    # Two adjacent plain identifiers: `Foo bar`
    for a, b in zip(lead, lead[1:]):
        if a.kind == "id" and b.kind == "id" \
                and a.text not in CONTROL_KEYWORDS:
            return True
    return False


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

SUPPRESS_RE = re.compile(
    r"lncl-analyze:\s*allow\(([\w-]+)\)\s*(?:--\s*(\S.*))?")


def suppression_for(ir, line, check):
    """Looks for an `lncl-analyze: allow(<check>)` comment on the finding's
    line or the line above. Returns (present, justified)."""
    for ln in (line, line - 1):
        body = ir.comments.get(ln)
        if not body:
            continue
        for m in SUPPRESS_RE.finditer(body):
            if m.group(1) == check:
                return True, bool(m.group(2))
    return False, False
