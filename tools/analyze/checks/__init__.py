"""Check registry + cross-file context for the lncl analyzer.

Each check module exposes NAME, DESCRIPTION and run(ir, ctx) yielding
(line, message) findings. The driver owns suppression handling
(`// lncl-analyze: allow(<check>) -- <justification>`) and the
bad-suppression policy check.
"""

import os
import re

# Method names treated as writes when invoked through a captured object.
# Deliberately curated (soundness traded for zero false positives); the
# fixtures pin the contract, extend the set alongside a fixture update.
MUTATORS = {
    "push_back", "emplace_back", "pop_back", "insert", "emplace", "erase",
    "clear", "resize", "reserve", "assign", "swap",
    # util::Matrix / repo-specific mutators
    "Zero", "Fill", "Set", "Add", "AddScaled", "Resize", "ResizeNoZero",
    "NormalizeRows", "Accumulate", "Merge",
}

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


class TreeContext:
    """Facts that need the whole tree: the audited-function set for the
    audit-coverage delegation rule, unordered-container variable names for
    the determinism check, and the include graph that scopes them."""

    def __init__(self):
        self.files = {}            # relpath -> FileIR
        self.includes = {}         # relpath -> [relpath, ...]
        self.audited_fns = set()   # function names containing LNCL_AUDIT_*
        self.unordered_decls = {}  # relpath -> {var name, ...}

    def add_file(self, ir, raw_text):
        rel = ir.relpath
        self.files[rel] = ir
        incs = []
        for line in raw_text.split("\n"):
            m = _INCLUDE_RE.match(line)
            if m:
                incs.append("src/" + m.group(1)
                            if not m.group(1).startswith("src/")
                            else m.group(1))
        self.includes[rel] = incs
        self.unordered_decls[rel] = _harvest_unordered(ir)

    def finalize(self):
        # Transitive fixpoint over the call-name graph: a function is
        # "audited" if its body contains an LNCL_AUDIT_* contract directly,
        # or if it calls (by name) a function that is. This lets
        # `Infer -> RunDetailed -> UnflattenPosteriors` count as coverage
        # without each hop restating the contract.
        calls = {}  # name -> {called names}
        for ir in self.files.values():
            for fd in ir.function_defs():
                toks = ir.toks
                body = toks[fd.body_begin:fd.body_end]
                if any(t.kind == "id" and t.text.startswith("LNCL_AUDIT_")
                       for t in body):
                    self.audited_fns.add(fd.name)
                callees = calls.setdefault(fd.name, set())
                for k in range(fd.body_begin, fd.body_end - 1):
                    if toks[k].kind == "id" and toks[k + 1].text == "(":
                        callees.add(toks[k].text)
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                if name not in self.audited_fns \
                        and callees & self.audited_fns:
                    self.audited_fns.add(name)
                    changed = True

    def unordered_names_for(self, relpath):
        """Unordered-container variable names visible to a TU: its own plus
        those of transitively included repo headers."""
        seen = set()
        names = set()
        stack = [relpath]
        while stack:
            rel = stack.pop()
            if rel in seen:
                continue
            seen.add(rel)
            names |= self.unordered_decls.get(rel, set())
            stack.extend(i for i in self.includes.get(rel, ())
                         if i in self.files)
        return names


def _harvest_unordered(ir):
    names = set()
    toks = ir.toks
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in ("unordered_map",
                                            "unordered_set",
                                            "unordered_multimap",
                                            "unordered_multiset"):
            continue
        j = i + 1
        if j >= len(toks) or toks[j].text != "<":
            continue
        depth = 0
        while j < len(toks):
            text = toks[j].text
            if toks[j].kind == "punct":
                depth += text.count("<") - text.count(">")
            j += 1
            if depth <= 0:
                break
        while j < len(toks) and toks[j].text in ("&", "*", "const"):
            j += 1
        if j < len(toks) and toks[j].kind == "id":
            names.add(toks[j].text)
    return names


def all_checks():
    from checks import (audit_coverage, determinism, slot_race,
                        workspace_lifetime)
    return [slot_race, determinism, workspace_lifetime, audit_coverage]


def check_names():
    return [c.NAME for c in all_checks()] + ["bad-suppression"]
