"""workspace-lifetime: matrices handed out by util::Workspace /
WorkspaceScope are valid only until the acquiring scope dies (workspace.h
lifetime rules). Spans, pointers, or references obtained from the arena
must not (1) escape through `return`, (2) be stored into members, or
(3) be captured by a lambda that outlives the statement (stored, returned,
or submitted to a thread pool).

Escape hatch: `// lncl-analyze: allow(workspace-lifetime) -- <why safe>`.
"""

import checks

NAME = "workspace-lifetime"
DESCRIPTION = ("workspace-arena matrix escapes its acquiring scope "
               "(return/member-store/captured by an outliving lambda)")

_SOURCES = {"NewMatrix", "Acquire"}
_DEFERRING_SINKS = {"Submit"}


def _ws_bound(ir, locals_):
    """names bound to workspace storage; `ptrs` additionally tracks raw
    pointers/references *into* that storage (x.data(), &x)."""
    bound = set()
    ptrs = set()
    changed = True
    while changed:
        changed = False
        for name, (ib, ie, is_ref) in locals_.items():
            if name in bound:
                continue
            init = ir.toks[ib:ie]
            direct = any(t.kind == "id" and t.text in _SOURCES for t in init)
            via = any(t.kind == "id" and t.text in bound for t in init)
            if direct or (via and is_ref):
                bound.add(name)
                changed = True
            elif via:
                # pointer/data() derivation: `float* p = m.data();`
                texts = [t.text for t in init]
                if "data" in texts or "&" in texts:
                    bound.add(name)
                    ptrs.add(name)
                    changed = True
    return bound, ptrs


def _escape_in(ir, b, e, bound, ptrs):
    """Is there an address/pointer escape of a bound name in [b, e)?
    Returns the offending name or None. Value copies are fine."""
    toks = ir.toks
    for k in range(b, e):
        t = toks[k]
        if t.kind != "id" or t.text not in bound:
            continue
        prev = toks[k - 1] if k > b else None
        nxt = toks[k + 1] if k + 1 < e else None
        nxt2 = toks[k + 2] if k + 2 < e else None
        if prev is not None and prev.text == "&":
            return t.text
        if nxt is not None and nxt.text in (".", "->") \
                and nxt2 is not None and nxt2.text == "data":
            return t.text
        if t.text in ptrs:
            return t.text  # a raw pointer into the arena, passed around
    return None


def run(ir, ctx):
    for fd in ir.function_defs():
        body_b, body_e = fd.body_begin + 1, fd.body_end
        locals_ = ir.local_decls(body_b, body_e)
        bound, ptrs = _ws_bound(ir, locals_)
        has_source = bound or any(
            t.kind == "id" and t.text in _SOURCES
            for t in ir.toks[body_b:body_e])
        if not has_source:
            continue
        returns_indirect = fd.ret_tokens and fd.ret_tokens[-1] in ("&", "*")

        for sb, se in ir.statements(body_b, body_e):
            toks = ir.toks
            if sb < se and toks[sb].kind == "id" \
                    and toks[sb].text == "return":
                name = _escape_in(ir, sb + 1, se, bound, ptrs)
                if name is None and returns_indirect:
                    name = next((t.text for t in toks[sb + 1:se]
                                 if t.kind == "id" and t.text in bound),
                                None)
                if name is None and returns_indirect and any(
                        t.kind == "id" and t.text in _SOURCES
                        for t in toks[sb + 1:se]):
                    name = "workspace matrix"
                if name is not None:
                    yield (toks[sb].line,
                           f"returning workspace-arena storage ('{name}') "
                           f"from '{fd.qualname}' — the arena reclaims it "
                           "when the acquiring scope dies")

        for w in ir.writes(body_b, body_e, checks.MUTATORS):
            if w["kind"] != "assign":
                continue
            base = w["base"]
            is_member = base is not None and base not in locals_ \
                and (base.endswith("_") or any(
                    t.text == "this" for t in ir.toks[w["lhs"][0]:w["lhs"][1]]
                ))
            if not is_member:
                continue
            rb, re_ = w["rhs"]
            name = _escape_in(ir, rb, re_, bound, ptrs)
            if name is None and any(t.kind == "id" and t.text in _SOURCES
                                    for t in ir.toks[rb:re_]):
                name = "workspace matrix"
            if name is not None:
                yield (w["line"],
                       f"storing workspace-arena storage ('{name}') into "
                       f"member '{base}' — it outlives the acquiring "
                       "scope; copy the values or use owned storage")

        # Lambdas capturing bound names, in outliving positions.
        i = body_b
        while i < body_e:
            t = ir.toks[i]
            if t.kind == "punct" and t.text == "[":
                lam = ir.parse_lambda(i)
                if lam is not None:
                    uses = {tt.text for tt in
                            ir.toks[lam.body_begin:lam.body_end]
                            if tt.kind == "id"} & bound
                    explicit = {n for n, k in lam.captures.items()
                                if n in bound}
                    captured = explicit or (
                        uses if lam.default_capture is not None else set())
                    if captured:
                        prev = ir.toks[i - 1] if i > body_b else None
                        # A lambda escapes only when it outlives the scope:
                        # returned, stored into a member, or handed to a
                        # deferring sink. `auto f = [...]` is a scope-local
                        # and dies with the arena scope — fine.
                        stored = prev is not None and prev.kind == "id" \
                            and prev.text == "return"
                        if not stored and prev is not None \
                                and prev.text == "=":
                            lhs_b = ir._lhs_begin(i - 1, body_b)
                            if lhs_b is not None \
                                    and not ir._is_decl_context(lhs_b, i - 1):
                                lbase, _ = ir._chain_info(lhs_b, i - 1)
                                stored = lbase is not None and (
                                    lbase.endswith("_") or any(
                                        tt.text == "this"
                                        for tt in ir.toks[lhs_b:i - 1]))
                        deferred = prev is not None and prev.text == "(" \
                            and i - 2 >= body_b \
                            and ir.toks[i - 2].kind == "id" \
                            and ir.toks[i - 2].text in _DEFERRING_SINKS
                        if stored or deferred:
                            nm = sorted(captured)[0]
                            how = ("submitted to a deferred executor"
                                   if deferred else
                                   "stored/returned, outliving the scope")
                            yield (t.line,
                                   f"lambda capturing workspace-arena "
                                   f"matrix '{nm}' is {how} — the arena "
                                   "slot is reclaimed before it runs")
                    i = lam.body_end + 1
                    continue
            i += 1
