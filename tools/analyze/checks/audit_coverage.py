"""audit-coverage: public probability producers in src/core/ and
src/inference/ must carry an LNCL_AUDIT_* contract (PR 3's macro layer) so
audit builds can see their rows. A producer is an out-of-line,
non-anonymous-namespace function definition whose return type involves
Matrix/Vector and whose name matches the repo's producer conventions
(Infer/Run/ComputeQ*/...Posterior*/Project*). Delegation counts: calling
any function (tree-wide) whose body audits directly satisfies the
contract — e.g. every TruthInference::Infer that returns through
UnflattenPosteriors.

Escape hatch: `// lncl-analyze: allow(audit-coverage) -- <why exempt>`.
"""

import re

NAME = "audit-coverage"
DESCRIPTION = ("probability producer lacks an LNCL_AUDIT_* contract "
               "(directly or via an audited callee)")

_SCOPES = ("src/core/", "src/inference/")
_PRODUCER = re.compile(
    r"^(Infer|Run|ComputeQ\w*|\w*Posteriors?\w*|Project\w*)$")
_RET = re.compile(r"\b(Matrix|Vector)\b")


def run(ir, ctx):
    if not ir.relpath.startswith(_SCOPES) or not ir.relpath.endswith(".cc"):
        return
    for fd in ir.function_defs():
        if fd.anon_ns:
            continue
        if not _PRODUCER.match(fd.name):
            continue
        if not _RET.search(" ".join(fd.ret_tokens)):
            continue
        body = ir.toks[fd.body_begin:fd.body_end]
        if any(t.kind == "id" and t.text.startswith("LNCL_AUDIT_")
               for t in body):
            continue
        delegated = any(
            t.kind == "id" and t.text in ctx.audited_fns
            and k + 1 < len(body) and body[k + 1].text == "("
            for k, t in enumerate(body))
        if delegated:
            continue
        yield (fd.line,
               f"'{fd.qualname}' produces probability rows but contains "
               "no LNCL_AUDIT_* contract and calls no audited function — "
               "audit builds (-DLNCL_AUDIT=ON) cannot verify its output")
