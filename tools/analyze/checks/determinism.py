"""determinism: sources of run-to-run nondeterminism.

  (a) raw entropy — rand()/srand(), std::random_device, direct mt19937
      construction — anywhere outside src/util/rng.* (every stochastic
      component must draw from the seeded util::Rng);
  (b) iteration over an unordered container whose loop body writes state
      declared outside the loop (iteration order is unspecified, so any
      fold over it — float accumulation especially — is nondeterministic
      across libstdc++ versions, hash seeds, and element histories).

Escape hatch: `// lncl-analyze: allow(determinism) -- <why order-safe>`
(e.g. the loop fills a container that is sorted immediately afterwards).
"""

import checks

NAME = "determinism"
DESCRIPTION = ("raw entropy source or order-sensitive fold over an "
               "unordered container")

_RNG_EXEMPT = ("src/util/rng.h", "src/util/rng.cc")
_ENTROPY_CALLS = {"rand", "srand"}
_ENTROPY_TYPES = {"random_device", "mt19937", "mt19937_64", "minstd_rand",
                  "default_random_engine", "ranlux24", "ranlux48"}


def run(ir, ctx):
    toks = ir.toks
    if ir.relpath not in _RNG_EXEMPT:
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text in _ENTROPY_CALLS and i + 1 < len(toks) \
                    and toks[i + 1].text == "(" \
                    and (i == 0 or toks[i - 1].text not in (".", "->")):
                yield (t.line, f"raw '{t.text}()' call — draw from the "
                               "seeded util::Rng (src/util/rng.h) instead")
            elif t.text in _ENTROPY_TYPES:
                yield (t.line, f"'std::{t.text}' outside src/util/rng.* — "
                               "unseeded/raw engines break reproducible "
                               "runs; use util::Rng")

    unordered = ctx.unordered_names_for(ir.relpath)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "for" or i + 1 >= len(toks) \
                or toks[i + 1].text != "(":
            continue
        close = ir.match.get(i + 1)
        if close is None:
            continue
        header = toks[i + 2:close]
        # range-for only: top-level ':' present, no ';'
        depth = 0
        colon = None
        semi = False
        for k, ht in enumerate(header):
            if ht.kind != "punct":
                continue
            if ht.text in "([{":
                depth += 1
            elif ht.text in ")]}":
                depth -= 1
            elif depth == 0 and ht.text == ";":
                semi = True
            elif depth == 0 and ht.text == ":" and colon is None:
                colon = k
        if semi or colon is None:
            continue
        range_ids = [ht.text for ht in header[colon + 1:] if ht.kind == "id"]
        over = next((n for n in range_ids if n in unordered), None)
        if over is None and not any(n in ("unordered_map", "unordered_set")
                                    for n in range_ids):
            continue
        over = over or "unordered temporary"
        # loop body: '{...}' or single statement
        body_b = close + 1
        if body_b >= len(toks):
            continue
        if toks[body_b].text == "{":
            body_e = ir.match.get(body_b)
            if body_e is None:
                continue
            body_b += 1
        else:
            body_e = ir._stmt_end(body_b, len(toks))
        from engine import DECL_QUALIFIERS, TYPE_KEYWORDS
        body_locals = set(ir.local_decls(body_b, body_e))
        body_locals |= {ht.text for ht in header[:colon]
                        if ht.kind == "id"
                        and ht.text not in TYPE_KEYWORDS
                        and ht.text not in DECL_QUALIFIERS}
        for w in ir.writes(body_b, body_e, checks.MUTATORS):
            base = w["base"]
            if base is None or base in body_locals:
                continue
            kind = ("accumulation into"
                    if w["kind"] == "assign" else "write to")
            yield (w["line"],
                   f"{kind} '{base}' (declared outside the loop) while "
                   f"iterating unordered container '{over}' — iteration "
                   "order is unspecified, so the result is "
                   "nondeterministic")
