"""slot-race: writes through by-reference captures inside a lambda passed
to Parallelizer::RunSlots must be indexed by the slot parameter (or by a
value derived from it / from SlotRange). This is the AST form of the
determinism contract in DESIGN.md §5: slots may run on any thread in any
order, so every write that is not slot-partitioned is a data race AND a
float-merge-order change.

Escape hatch: `// lncl-analyze: allow(slot-race) -- <why this is safe>`
on (or directly above) the offending line.
"""

import checks

NAME = "slot-race"
DESCRIPTION = ("write through a by-reference capture in a RunSlots lambda "
               "is not slot-indexed")


def _slot_derived(ir, locals_, seed):
    """Fixpoint of 'initialized from the slot parameter / SlotRange'."""
    derived = set(seed)
    changed = True
    while changed:
        changed = False
        for name, (ib, ie, _is_ref) in locals_.items():
            if name in derived:
                continue
            for t in ir.toks[ib:ie]:
                if t.kind == "id" and (t.text in derived
                                       or t.text == "SlotRange"):
                    derived.add(name)
                    changed = True
                    break
    return derived


def run(ir, ctx):
    for i in ir.find_ident("RunSlots"):
        if i + 1 >= len(ir.toks) or ir.toks[i + 1].text != "(":
            continue
        # Only call sites: repo style always invokes through the executor
        # object (`exec->RunSlots`, `pool.RunSlots`). This skips the
        # declaration/definition of RunSlots itself in threadpool.{h,cc}.
        if i == 0 or ir.toks[i - 1].text not in (".", "->"):
            continue
        lam = None
        for b, _e in ir.call_args(i + 1):
            if ir.toks[b].text == "[":
                lam = ir.parse_lambda(b)
                break
        if lam is None:
            # RunSlots handed a named callable: the analyzer only reasons
            # about inline lambdas; demand one (cheap to comply with).
            yield (ir.toks[i].line,
                   "RunSlots argument is not an inline lambda; the "
                   "slot-race check cannot see its writes")
            continue
        if not lam.params:
            continue
        slot_param = lam.params[0]
        body_b, body_e = lam.body_begin + 1, lam.body_end
        locals_ = ir.local_decls(body_b, body_e)
        derived = _slot_derived(ir, locals_, {slot_param})
        for w in ir.writes(body_b, body_e, checks.MUTATORS):
            base = w["base"]
            if base is None or base in locals_ or base in lam.params:
                continue
            if lam.captures.get(base) == "val":
                continue  # writes to a by-value capture touch a copy
            if base in derived:
                continue
            indexed = any(
                t.kind == "id" and t.text in derived
                for ib, ie in w["indices"]
                for t in ir.toks[ib:ie])
            if indexed:
                continue
            what = {"assign": "assignment to", "incdec": "increment of",
                    "call": f"mutating call .{w.get('method', '?')}() on",
                    "addr": "pointer escape (&) of"}[w["kind"]]
            yield (w["line"],
                   f"{what} shared '{base}' inside a RunSlots lambda is "
                   f"not indexed by slot parameter '{slot_param}' or a "
                   "SlotRange-derived index")
