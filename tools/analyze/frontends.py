"""Frontends producing the engine.FileIR token stream.

``BuiltinFrontend``   dependency-free lexer (engine.lex). Always available;
                      the reference frontend, like the scalar GEMM twin.
``ClangFrontend``     clang.cindex over the CMake-exported
                      compile_commands.json. Exact preprocessing + TU
                      diagnostics. Requires the libclang python bindings;
                      the library lookup is PINNED (ordered candidate list
                      below, overridable with LNCL_LIBCLANG) so two machines
                      with several LLVM installs resolve the same library.

select_frontend('auto') prefers clang when importable and falls back to the
builtin frontend with a one-line note — the analyze step must never go
silent just because libclang is missing (same policy as the clang-format
gate in scripts/lint.sh).
"""

import json
import os

from engine import FileIR, lex

# Pinned, ordered libclang lookup. First hit wins; keep newest-first so a
# deliberate upgrade is a one-line diff here rather than an ambient change.
LIBCLANG_CANDIDATES = [
    "/usr/lib/llvm-18/lib/libclang.so.1",
    "/usr/lib/llvm-17/lib/libclang.so.1",
    "/usr/lib/llvm-16/lib/libclang.so.1",
    "/usr/lib/llvm-15/lib/libclang.so.1",
    "/usr/lib/llvm-14/lib/libclang.so.1",
    "/usr/lib/llvm-14/lib/libclang-14.so.1",
    "/usr/lib/x86_64-linux-gnu/libclang-14.so.1",
]


class BuiltinFrontend:
    name = "builtin"

    def parse(self, path, relpath, compile_args=None):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        toks, comments = lex(text, path)
        return FileIR(path, relpath, toks, comments)


class ClangUnavailable(Exception):
    pass


def _load_cindex():
    try:
        from clang import cindex  # noqa: deferred, optional dependency
    except ImportError as e:
        raise ClangUnavailable(f"clang.cindex not importable ({e})")
    if not cindex.Config.loaded:
        override = os.environ.get("LNCL_LIBCLANG")
        candidates = [override] if override else LIBCLANG_CANDIDATES
        lib = next((c for c in candidates if c and os.path.exists(c)), None)
        if lib is None:
            raise ClangUnavailable(
                "no libclang shared library found (set LNCL_LIBCLANG)")
        cindex.Config.set_library_file(lib)
    return cindex


class ClangFrontend:
    """Lexes through libclang so macro bodies, skipped #if branches, and
    disabled code regions are resolved by a real preprocessor. The token
    stream then feeds the same structural checks as the builtin frontend."""

    name = "clang"

    def __init__(self):
        self.cindex = _load_cindex()
        self.index = self.cindex.Index.create()

    def parse(self, path, relpath, compile_args=None):
        args = [a for a in (compile_args or [])
                if not a.endswith((".cc", ".o")) and a not in ("-c", "-o")]
        tu = self.index.parse(path, args=args or ["-std=c++20"])
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            raise ClangUnavailable(
                f"{relpath}: clang could not parse ({fatal[0].spelling})")
        toks = []
        comments = {}
        from engine import Tok
        kinds = self.cindex.TokenKind
        skip_directive_line = -1
        for ct in tu.get_tokens(extent=tu.cursor.extent):
            line = ct.location.line
            text = ct.spelling
            if ct.kind == kinds.COMMENT:
                body = text.lstrip("/").lstrip("*").rstrip("*/").strip()
                comments[line] = (comments.get(line, "") + " " + body).strip()
                continue
            if ct.kind == kinds.PUNCTUATION and text == "#" \
                    and (not toks or toks[-1].line != line):
                skip_directive_line = line
                continue
            if line == skip_directive_line:
                continue
            if ct.kind == kinds.IDENTIFIER or ct.kind == kinds.KEYWORD:
                kind = "id"
            elif ct.kind == kinds.LITERAL:
                kind = "str" if text.startswith(('"', "R\"")) else \
                    ("char" if text.startswith("'") else "num")
            else:
                kind = "punct"
            toks.append(Tok(kind, text, line, ct.location.column))
        return FileIR(path, relpath, toks, comments)


def load_compile_args(compdb_path):
    """file -> argument list, from a compile_commands.json."""
    if not compdb_path or not os.path.exists(compdb_path):
        return {}
    with open(compdb_path, encoding="utf-8") as f:
        entries = json.load(f)
    out = {}
    for e in entries:
        path = os.path.normpath(os.path.join(e.get("directory", "."),
                                             e["file"]))
        if "arguments" in e:
            args = list(e["arguments"][1:])
        else:
            args = e.get("command", "").split()[1:]
        out[path] = args
    return out


def select_frontend(requested="auto"):
    """Returns (frontend, note). note is non-empty when falling back."""
    if requested == "builtin":
        return BuiltinFrontend(), ""
    try:
        fe = ClangFrontend()
        return fe, ""
    except ClangUnavailable as e:
        if requested == "clang":
            raise
        return BuiltinFrontend(), f"libclang unavailable ({e}); " \
                                  "using builtin frontend"
