#!/usr/bin/env python3
"""Summarize src/obs telemetry artifacts (stdlib only).

Reads a Chrome trace-event JSON (results/trace_*.json, as written by
obs::Trace::Stop) and/or an EM run log (results/runlog_*.jsonl, schema
lncl.em_run.v1, as written by obs::JsonlRunLogger) and prints:

  * per-span aggregates from the trace — count, inclusive total/mean
    milliseconds, **self** milliseconds (exclusive of enclosed child
    spans), and self share of the traced time, sorted by self total.
    Inclusive time answers "how long does this phase take end to end";
    self time answers "where is the clock actually spent" — an epoch span
    is ~100% inclusive but near-0% self, because its time belongs to the
    m_step/e_step/... spans nested inside it; and
  * a per-epoch table from the run log — loss, dev score, k(t),
    KL(q_a‖q_b), rule satisfaction, phase seconds, E-step throughput —
    plus the fit_end summary line.

Usage:
  tools/trace_summary.py --trace results/trace_table2.json \
                         --runlog results/runlog_table2.jsonl
  tools/trace_summary.py --trace results/trace_table3.json
"""

import argparse
import json
import sys
from collections import defaultdict


def compute_self_us(spans):
    """Self time (duration minus direct children) per span event.

    Spans are complete ("X") events. Within each tid, sort by (ts, -dur):
    a parent starts no later than its children and, on ties, sorts first.
    A containment stack then assigns every span's duration to itself minus
    whatever its direct children cover. Returns a parallel list of
    microsecond self times (same order as `spans`).

    Also used by prof_report.py — keep the signature stable.
    """
    self_us = [float(e.get("dur", 0.0)) for e in spans]
    order = sorted(range(len(spans)),
                   key=lambda i: (spans[i].get("tid", 0),
                                  float(spans[i].get("ts", 0.0)),
                                  -float(spans[i].get("dur", 0.0))))
    stack = []  # indices of open ancestor spans (same tid)
    current_tid = object()
    for i in order:
        e = spans[i]
        tid = e.get("tid", 0)
        ts = float(e.get("ts", 0.0))
        dur = float(e.get("dur", 0.0))
        if tid != current_tid:
            stack = []
            current_tid = tid
        while stack:
            top = spans[stack[-1]]
            top_end = float(top.get("ts", 0.0)) + float(top.get("dur", 0.0))
            if top_end <= ts:
                stack.pop()
            else:
                break
        if stack:
            self_us[stack[-1]] -= dur  # direct parent loses this span's time
        stack.append(i)
    return self_us


def aggregate_trace(spans):
    """Per-name aggregates: count, inclusive total, self total (us)."""
    self_us = compute_self_us(spans)
    by_name = defaultdict(lambda: {"count": 0, "total_us": 0.0,
                                   "self_us": 0.0})
    for e, s in zip(spans, self_us):
        agg = by_name[e["name"]]
        agg["count"] += 1
        agg["total_us"] += float(e.get("dur", 0.0))
        agg["self_us"] += s
    return by_name


def load_trace_spans(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents", [])
    return [e for e in events if e.get("ph") == "X"]


def summarize_trace(path):
    spans = load_trace_spans(path)
    threads = {e.get("tid") for e in spans}
    by_name = aggregate_trace(spans)
    # Total self time equals total wall time actually covered by spans, so
    # it is the denominator that makes shares sum to 100%.
    grand_self = sum(a["self_us"] for a in by_name.values())

    print(f"== trace: {path}")
    print(f"   {len(spans)} spans over {len(threads)} thread track(s)")
    print(f"   {'span':<16} {'count':>8} {'incl ms':>12} "
          f"{'mean ms':>10} {'self ms':>12} {'self share':>11}")
    for name, agg in sorted(by_name.items(),
                            key=lambda kv: -kv[1]["self_us"]):
        total_ms = agg["total_us"] / 1000.0
        mean_ms = total_ms / agg["count"]
        self_ms = agg["self_us"] / 1000.0
        share = agg["self_us"] / grand_self if grand_self else 0.0
        print(f"   {name:<16} {agg['count']:>8} {total_ms:>12.3f} "
              f"{mean_ms:>10.4f} {self_ms:>12.3f} {share:>10.1%}")


def summarize_runlog(path):
    epochs, ends = [], []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("schema") != "lncl.em_run.v1":
                raise SystemExit(f"{path}: unknown schema {rec.get('schema')}")
            (epochs if rec["record"] == "epoch" else ends).append(rec)

    print(f"== run log: {path}")
    runs = sorted({r.get("run", "") for r in epochs})
    for run in runs:
        rows = [r for r in epochs if r.get("run", "") == run]
        if run:
            print(f"   run: {run}")
        print(f"   {'ep':>3} {'loss':>10} {'dev':>8} {'k':>6} "
              f"{'KL(qa|qb)':>10} {'satisf':>7} {'m_step s':>9} "
              f"{'e_step s':>9} {'inst/s':>10} {'best':>5}")
        for r in rows:
            ph = r.get("phase_seconds", {})
            print(f"   {r['epoch']:>3} {r['loss']:>10.4f} "
                  f"{r['dev_score']:>8.4f} {r['k']:>6.3f} "
                  f"{r['mean_kl_qa_qb']:>10.5f} "
                  f"{r['rule_satisfaction']:>7.3f} "
                  f"{ph.get('m_step', 0.0):>9.3f} "
                  f"{ph.get('e_step', 0.0):>9.3f} "
                  f"{r['e_step_instances_per_second']:>10.0f} "
                  f"{'*' if r.get('is_best') else '':>5}")
    for end in ends:
        run = end.get("run", "")
        tag = f" [{run}]" if run else ""
        stopped = "early-stopped" if end.get("early_stopped") else "ran full"
        print(f"   fit_end{tag}: best epoch {end['best_epoch']} "
              f"(dev {end['best_dev_score']:.4f}), "
              f"{end['epochs_run']} epochs, {stopped}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace-event JSON to summarize")
    parser.add_argument("--runlog", help="lncl.em_run.v1 JSONL to summarize")
    args = parser.parse_args()
    if not args.trace and not args.runlog:
        parser.error("pass --trace and/or --runlog")
    if args.trace:
        summarize_trace(args.trace)
    if args.runlog:
        summarize_runlog(args.runlog)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
