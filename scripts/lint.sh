#!/usr/bin/env bash
# Repo-convention lint pass: runs the dependency-free rule linter
# (tools/lint.py), proves each rule still fires via its fixture self-test,
# then the AST-grounded analyzer (tools/analyze/) the same way, then checks
# formatting with clang-format and the curated .clang-tidy baseline when
# those binaries are available (the rule linter and analyzer never need
# them, so CI without LLVM tools still gets full convention coverage — the
# analyzer's builtin frontend is dependency-free and libclang only sharpens
# it).
#
#   scripts/lint.sh         # lint + analyze + self-tests + format check
#   scripts/lint.sh --fix   # same, but clang-format rewrites files in place
set -euo pipefail
cd "$(dirname "$0")/.."

fix=0
if [ "${1:-}" = "--fix" ]; then
  fix=1
fi

echo "===== lint: repo conventions (tools/lint.py) ====="
python3 tools/lint.py

echo "===== lint: rule self-test (tools/lint_fixtures/) ====="
python3 tools/lint.py --self-test

echo "===== lint: analyzer self-test (tools/analyze/fixtures/) ====="
python3 tools/analyze/analyze.py --self-test

echo "===== lint: static analysis (tools/analyze/) ====="
python3 tools/analyze/analyze.py

echo "===== lint: clang-tidy baseline (scripts/tidy.sh) ====="
scripts/tidy.sh

if command -v clang-format >/dev/null 2>&1; then
  echo "===== lint: clang-format ($([ "$fix" = 1 ] && echo fix || echo check)) ====="
  files=$(git ls-files 'src/*.cc' 'src/*.h' 'tests/*.cc' 'bench/*.cc' \
    'bench/*.h' 'examples/*.cc')
  if [ "$fix" = 1 ]; then
    # shellcheck disable=SC2086
    clang-format -i $files
  else
    # shellcheck disable=SC2086
    clang-format --dry-run -Werror $files
  fi
else
  echo "lint: clang-format not installed; skipping format check"
fi

echo "Lint pass complete."
