#!/usr/bin/env bash
# Measures the runtime cost of -DLNCL_AUDIT=ON and proves the audit layer
# only reads: builds the table2/table3 benches in a plain and an audit
# tree, runs only their timed Logic-LNCL fits (--runs=0 skips the method
# sweep; the timed section always runs, seed 424242), and then
#
#   1. asserts that each fit's FitDigest is bit-identical across the two
#      binaries (same seed + digests equal ==> the audit checks changed
#      no number anywhere in the trajectory), and
#   2. appends an "audit_overhead" block — per-mode release vs audit fit
#      seconds, the overhead ratio, and the matched digests — to the
#      canonical results/BENCH_table2.json / BENCH_table3.json.
#
#   scripts/bench_audit_overhead.sh
set -euo pipefail
cd "$(dirname "$0")/.."
root=$(pwd)

echo "===== building plain (build/) and audit (build-audit/) benches ====="
cmake -B build -S . >/dev/null
cmake -B build-audit -S . -DLNCL_AUDIT=ON >/dev/null
cmake --build build -j "$(nproc)" --target table2_sentiment table3_ner
cmake --build build-audit -j "$(nproc)" --target table2_sentiment table3_ner

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

for bench in table2_sentiment:table2 table3_ner:table3; do
  target=${bench%%:*}
  id=${bench##*:}
  for mode in release audit; do
    build_dir=build
    [ "$mode" = audit ] && build_dir=build-audit
    echo "===== ${id}: timed fits, ${mode} build ====="
    mkdir -p "$scratch/$mode"
    (cd "$scratch/$mode" && "$root/$build_dir/bench/$target" --runs=0)
  done
  python3 - "$root" "$scratch" "$id" <<'EOF'
import json
import sys

root, scratch, bench_id = sys.argv[1:4]
release = json.load(open(f"{scratch}/release/results/BENCH_{bench_id}.json"))
audit = json.load(open(f"{scratch}/audit/results/BENCH_{bench_id}.json"))

by_mode = lambda doc: {f["mode"]: f for f in doc["timed_fits"]}
rel, aud = by_mode(release), by_mode(audit)
assert set(rel) == set(aud), (sorted(rel), sorted(aud))

fits = []
for mode in sorted(rel):
    r, a = rel[mode], aud[mode]
    assert not r["audit"] and a["audit"], (mode, r["audit"], a["audit"])
    match = r["result_digest"] == a["result_digest"]
    fits.append({
        "mode": mode,
        "release_fit_seconds": r["fit_seconds"],
        "audit_fit_seconds": a["fit_seconds"],
        "overhead_ratio": round(a["fit_seconds"] / r["fit_seconds"], 3),
        "result_digest": r["result_digest"],
        "digests_match": match,
    })
    print(f"{bench_id} [{mode}]: release {r['fit_seconds']:.3f}s, "
          f"audit {a['fit_seconds']:.3f}s "
          f"(x{a['fit_seconds'] / r['fit_seconds']:.3f}), "
          f"digest {'MATCH' if match else 'MISMATCH'}")

if not all(f["digests_match"] for f in fits):
    print(f"{bench_id}: FAIL — audit build changed the computed numbers")
    sys.exit(1)

path = f"{root}/results/BENCH_{bench_id}.json"
doc = json.load(open(path))
doc["audit_overhead"] = {
    "timed_fit_seed": 424242,
    "note": "same-seed timed fits, plain vs -DLNCL_AUDIT=ON binaries; "
            "matching FitDigest proves the audit checks are read-only",
    "fits": fits,
}
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"[audit overhead appended to {path}]")
EOF
done

echo "Audit overhead measured; all digests bit-identical."
