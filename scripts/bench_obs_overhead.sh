#!/usr/bin/env bash
# Measures the runtime cost of the src/obs telemetry layer and proves it
# only observes. Four configurations of the table2/table3 timed fits
# (--runs=0 skips the method sweep; the timed section always runs, seed
# 424242):
#
#   notrace    -DLNCL_TRACE=OFF build, --telemetry=0 — every span compiled
#              out; the pre-telemetry baseline
#   idle       default build, --telemetry=0 — spans compiled in but no
#              session active, metrics disabled: the null-sink cost every
#              user pays (one relaxed load + branch per site)
#   telemetry  default build, telemetry on — metrics registry, trace
#              recording, and the per-epoch run log all live
#   prof       default build, --telemetry=0 --prof=1 — perf-counter span
#              attribution alone: every span entry/exit reads the
#              thread's counter groups (LNCL_PROF compile switch + Prof
#              session gate)
#
# Then:
#   1. asserts every fit's FitDigest is bit-identical across all four
#      configurations (same seed + equal digests ==> observation changed
#      no number anywhere in the trajectory), and
#   2. appends a "telemetry_overhead" block — per-mode fit seconds for the
#      four configurations, the idle / full-telemetry / prof overhead
#      ratios, and the matched digests — to results/BENCH_table2.json /
#      BENCH_table3.json.
#
# The null-sink budget is <= 1.05x; the script warns (does not fail) when a
# noisy machine exceeds it, since the digest assertions are the correctness
# contract.
#
#   scripts/bench_obs_overhead.sh
set -euo pipefail
cd "$(dirname "$0")/.."
root=$(pwd)

echo "===== building default (build/) and -DLNCL_TRACE=OFF (build-notrace/) ====="
cmake -B build -S . >/dev/null
cmake -B build-notrace -S . -DLNCL_TRACE=OFF >/dev/null
cmake --build build -j "$(nproc)" --target table2_sentiment table3_ner
cmake --build build-notrace -j "$(nproc)" --target table2_sentiment table3_ner

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

for bench in table2_sentiment:table2 table3_ner:table3; do
  target=${bench%%:*}
  id=${bench##*:}
  for mode in notrace idle telemetry prof; do
    build_dir=build
    flags=()
    case "$mode" in
      notrace) build_dir=build-notrace; flags=(--telemetry=0) ;;
      idle) flags=(--telemetry=0) ;;
      telemetry) ;;
      prof) flags=(--telemetry=0 --prof=1) ;;
    esac
    echo "===== ${id}: timed fits, ${mode} ====="
    mkdir -p "$scratch/$mode"
    (cd "$scratch/$mode" && "$root/$build_dir/bench/$target" --runs=0 "${flags[@]}")
  done
  for artifact in "trace_${id}.json" "runlog_${id}.jsonl" "metrics_${id}.json"; do
    test -s "$scratch/telemetry/results/$artifact" \
      || { echo "FAIL: missing telemetry artifact $artifact"; exit 1; }
  done
  test -s "$scratch/prof/results/prof_${id}.json" \
    || { echo "FAIL: missing prof artifact prof_${id}.json"; exit 1; }
  python3 - "$root" "$scratch" "$id" <<'EOF'
import json
import sys

root, scratch, bench_id = sys.argv[1:4]
docs = {
    mode: json.load(open(f"{scratch}/{mode}/results/BENCH_{bench_id}.json"))
    for mode in ("notrace", "idle", "telemetry", "prof")
}
by_mode = lambda doc: {f["mode"]: f for f in doc["timed_fits"]}
fits_by = {mode: by_mode(doc) for mode, doc in docs.items()}
modes = sorted(fits_by["notrace"])
assert all(sorted(fits_by[m]) == modes for m in fits_by), fits_by

fits = []
budget_ok = True
for mode in modes:
    base, idle, full, prof = (fits_by[m][mode]
                              for m in ("notrace", "idle", "telemetry",
                                        "prof"))
    match = base["result_digest"] == idle["result_digest"] == \
        full["result_digest"] == prof["result_digest"]
    idle_ratio = idle["fit_seconds"] / base["fit_seconds"]
    full_ratio = full["fit_seconds"] / base["fit_seconds"]
    prof_ratio = prof["fit_seconds"] / base["fit_seconds"]
    budget_ok &= idle_ratio <= 1.05
    fits.append({
        "mode": mode,
        "notrace_fit_seconds": base["fit_seconds"],
        "idle_fit_seconds": idle["fit_seconds"],
        "telemetry_fit_seconds": full["fit_seconds"],
        "prof_fit_seconds": prof["fit_seconds"],
        "idle_overhead_ratio": round(idle_ratio, 3),
        "telemetry_overhead_ratio": round(full_ratio, 3),
        "prof_overhead_ratio": round(prof_ratio, 3),
        "result_digest": base["result_digest"],
        "digests_match": match,
    })
    print(f"{bench_id} [{mode}]: notrace {base['fit_seconds']:.3f}s, "
          f"idle x{idle_ratio:.3f}, telemetry x{full_ratio:.3f}, "
          f"prof x{prof_ratio:.3f}, "
          f"digest {'MATCH' if match else 'MISMATCH'}")

if not all(f["digests_match"] for f in fits):
    print(f"{bench_id}: FAIL — observation changed the computed numbers")
    sys.exit(1)
if not budget_ok:
    print(f"{bench_id}: WARNING — null-sink overhead above the 1.05x budget "
          "(noisy machine, or a regression worth profiling)")

path = f"{root}/results/BENCH_{bench_id}.json"
doc = json.load(open(path))
doc["telemetry_overhead"] = {
    "timed_fit_seed": 424242,
    "note": "same-seed timed fits: -DLNCL_TRACE=OFF vs default-idle vs "
            "telemetry-on vs prof-on; matching FitDigest proves the obs "
            "layer (spans, metrics, run log, perf counters) is read-only",
    "fits": fits,
}
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"[telemetry overhead appended to {path}]")
EOF
done

echo "Telemetry + prof overhead measured; all digests bit-identical."
