#!/usr/bin/env bash
# clang-tidy gate with a committed zero-warning baseline.
#
# The curated check set lives in .clang-tidy (bugprone-*, performance-*,
# concurrency-*, selected cppcoreguidelines). The committed baseline at
# tools/analyze/clang_tidy_baseline.txt is the full normalized warning list
# the tree is allowed to produce — kept empty: the tree is tidy-clean, and
# any new warning is a diff against the baseline and fails the gate.
#
# clang-tidy is optional tooling (same policy as the clang-format gate in
# scripts/lint.sh): when no pinned binary is found the gate skips with a
# note instead of failing, so dependency-free CI keeps full coverage from
# tools/lint.py + tools/analyze/.
#
#   scripts/tidy.sh             # gate against the committed baseline
#   scripts/tidy.sh --rebase    # rewrite the baseline from current output
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=tools/analyze/clang_tidy_baseline.txt
compdb=build/compile_commands.json

# Pinned lookup, newest first, so the gate is reproducible across hosts
# that carry several LLVM majors. LNCL_CLANG_TIDY overrides.
tidy_bin=""
for cand in "${LNCL_CLANG_TIDY:-}" clang-tidy-18 clang-tidy-17 \
    clang-tidy-16 clang-tidy-15 clang-tidy-14 clang-tidy; do
  [ -n "$cand" ] || continue
  if command -v "$cand" >/dev/null 2>&1; then
    tidy_bin=$cand
    break
  fi
done

if [ -z "$tidy_bin" ]; then
  echo "tidy: no clang-tidy binary found (set LNCL_CLANG_TIDY to pin one);" \
       "skipping baseline gate"
  exit 0
fi

if [ ! -f "$compdb" ]; then
  echo "tidy: $compdb missing — configure first (cmake -B build -S .);" \
       "skipping baseline gate"
  exit 0
fi

files=$(git ls-files 'src/*.cc')
out=$(mktemp)
trap 'rm -f "$out"' EXIT

# shellcheck disable=SC2086
"$tidy_bin" -p build --quiet $files 2>/dev/null \
  | grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' \
  | sed "s|^$(pwd)/||" | LC_ALL=C sort -u > "$out" || true

if [ "${1:-}" = "--rebase" ]; then
  cp "$out" "$baseline"
  echo "tidy: baseline rewritten ($(wc -l < "$baseline") line(s))"
  exit 0
fi

if ! diff -u "$baseline" "$out"; then
  echo "tidy: findings differ from the committed baseline" \
       "($baseline); fix them or justify via NOLINT with a reason"
  exit 1
fi
echo "tidy: clean against baseline ($tidy_bin)"
