#!/usr/bin/env bash
# Sanitizer sweep over the tier-1 test suite: builds and runs the tests
# under ASan+UBSan, then under TSan (which exercises the deterministic
# parallel training paths in determinism_test / util_test with real data
# races flagged, not just bit-identity checked). Each sweep finishes with an
# explicit run of the batched-prediction equivalence + determinism tests so
# the PredictBatch bit-identity contract is checked under both sanitizers.
#
#   scripts/check.sh              # both sweeps
#   scripts/check.sh address,undefined
#   scripts/check.sh thread
set -euo pipefail
cd "$(dirname "$0")/.."

sweeps=("address,undefined" "thread")
if [ $# -ge 1 ]; then
  sweeps=("$@")
fi

for san in "${sweeps[@]}"; do
  build="build-san-${san//,/ -}"
  build="${build// /}"
  echo "===== LNCL_SANITIZE=${san} (${build}) ====="
  cmake -B "$build" -S . -DLNCL_SANITIZE="$san" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$build" -j "$(nproc)"
  ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
  echo "----- ${san}: batched-prediction equivalence + determinism -----"
  ctest --test-dir "$build" --output-on-failure -R 'batch_predict|determinism'
done

echo "All sanitizer sweeps passed."
