#!/usr/bin/env bash
# CI gate: lint first, then build-and-test sweeps.
#
# The lint pass (scripts/lint.sh) runs before anything is compiled: repo
# conventions are the cheapest failures to surface. Then each requested
# sweep builds the tree and runs the tier-1 suite:
#
#   audit              -DLNCL_AUDIT=ON: every LNCL_DCHECK / LNCL_AUDIT_*
#                      numeric-invariant contract live (simplex posteriors,
#                      row-stochastic confusions, finite gradients, poisoned
#                      workspace arenas), plus the expect-fail death tests
#                      in audit_test
#   address,undefined  ASan + UBSan
#   thread             TSan (exercises the deterministic parallel training
#                      paths in determinism_test / util_test with real data
#                      races flagged, not just bit-identity checked)
#
# Sanitizer sweeps finish with an explicit run of the batched-prediction
# equivalence + determinism tests so the PredictBatch bit-identity contract
# is checked under both sanitizers. All sweeps build with -DLNCL_WERROR=ON:
# the tree must stay warning-clean under -Wall -Wextra -Wshadow.
#
#   scripts/check.sh              # lint + all three sweeps
#   scripts/check.sh audit        # lint + audit sweep only
#   scripts/check.sh thread       # lint + TSan only
set -euo pipefail
cd "$(dirname "$0")/.."

scripts/lint.sh

sweeps=("audit" "address,undefined" "thread")
if [ $# -ge 1 ]; then
  sweeps=("$@")
fi

for sweep in "${sweeps[@]}"; do
  if [ "$sweep" = "audit" ]; then
    build="build-audit-check"
    echo "===== LNCL_AUDIT=ON (${build}) ====="
    cmake -B "$build" -S . -DLNCL_AUDIT=ON -DLNCL_WERROR=ON >/dev/null
    cmake --build "$build" -j "$(nproc)"
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
    continue
  fi
  san="$sweep"
  build="build-san-${san//,/ -}"
  build="${build// /}"
  echo "===== LNCL_SANITIZE=${san} (${build}) ====="
  cmake -B "$build" -S . -DLNCL_SANITIZE="$san" -DLNCL_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$build" -j "$(nproc)"
  ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
  echo "----- ${san}: batched-prediction equivalence + determinism -----"
  ctest --test-dir "$build" --output-on-failure -R 'batch_predict|determinism'
done

echo "All check sweeps passed."
