#!/usr/bin/env bash
# CI gate: lint first, then build-and-test sweeps.
#
# The lint pass (scripts/lint.sh) runs before anything is compiled: repo
# conventions are the cheapest failures to surface. Then each requested
# sweep builds the tree and runs the tier-1 suite:
#
#   analyze            AST-grounded static analysis (tools/analyze/): the
#                      fixture self-test, the full-tree run (builtin
#                      frontend always; libclang sharpens it when present),
#                      and the clang-tidy zero-warning baseline gate (skips
#                      gracefully when the binary is absent). Also runs as
#                      part of the lint pass; the named sweep re-runs it
#                      after the tree is configured so the analyzer sees
#                      build/compile_commands.json.
#   audit              -DLNCL_AUDIT=ON: every LNCL_DCHECK / LNCL_AUDIT_*
#                      numeric-invariant contract live (simplex posteriors,
#                      row-stochastic confusions, finite gradients, poisoned
#                      workspace arenas), plus the expect-fail death tests
#                      in audit_test
#   address,undefined  ASan + UBSan
#   thread             TSan (exercises the deterministic parallel training
#                      paths in determinism_test / util_test with real data
#                      races flagged, not just bit-identity checked)
#
# Sanitizer sweeps finish with an explicit run of the batched-prediction
# equivalence + determinism tests so the PredictBatch bit-identity contract
# is checked under both sanitizers. The ASan/UBSan sweep additionally reruns
# the whole suite with LNCL_GEMM_KERNEL=scalar so the scalar GEMM twin (the
# bit-equality reference for the SIMD microkernels) gets its own sanitized
# pass. All sweeps build with -DLNCL_WERROR=ON: the tree must stay
# warning-clean under -Wall -Wextra -Wshadow.
#
# Between lint and the sweeps, a trace-smoke step runs a tiny table2 bench
# with telemetry on and validates the emitted artifacts: the trace file must
# parse as Chrome trace-event JSON with span events, every run-log line
# must parse as JSON carrying the lncl.em_run.v1 schema, the prof file must
# carry lncl.prof.v1 span aggregates, and the bench-history append must be a
# well-formed lncl.bench.v1 record. The same smoke run then drives the
# profiling tools end to end: prof_report.py renders the merged per-phase
# table and bench_compare.py gates the smoke history (skip-pass without a
# baseline). Both tools' fixture self-tests run with the lint pass —
# bench_compare's includes the injected-20%-slowdown fixture that must fail.
#
#   scripts/check.sh              # lint + trace smoke + all three sweeps
#   scripts/check.sh audit        # lint + trace smoke + audit sweep only
#   scripts/check.sh thread       # lint + trace smoke + TSan only
set -euo pipefail
cd "$(dirname "$0")/.."
root=$(pwd)

scripts/lint.sh

echo "===== profiling-tool self-tests ====="
python3 tools/prof_report.py --self-test
python3 tools/bench_compare.py --self-test

echo "===== trace smoke (tiny telemetry-on table2 run) ====="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target table2_sentiment
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
(cd "$smoke" && "$root/build/bench/table2_sentiment" --runs=0 --train=120 \
  --dev=60 --test=60 --annotators=8 --epochs=2 >/dev/null)
python3 - "$smoke" <<'EOF'
import json
import sys

smoke = sys.argv[1]
trace = json.load(open(f"{smoke}/results/trace_table2.json"))
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "trace has no complete ('X') span events"
names = {e["name"] for e in spans}
for expected in ("fit", "epoch", "e_step"):
    assert expected in names, f"trace missing span '{expected}': {sorted(names)}"
assert all("ts" in e and "dur" in e for e in spans), "span missing ts/dur"

lines = [l for l in open(f"{smoke}/results/runlog_table2.jsonl")
         if l.strip()]
assert lines, "run log is empty"
for line in lines:
    rec = json.loads(line)
    assert rec["schema"] == "lncl.em_run.v1", rec
    assert rec["record"] in ("epoch", "fit_end"), rec
    if rec["record"] == "epoch":
        for key in ("epoch", "loss", "dev_score", "k", "phase_seconds",
                    "rule_satisfaction", "confusion_diag_mass"):
            assert key in rec, f"epoch record missing {key}"
assert lines and json.loads(lines[-1])["record"] == "fit_end", \
    "run log does not end with a fit_end record"

json.load(open(f"{smoke}/results/metrics_table2.json"))

prof = json.load(open(f"{smoke}/results/prof_table2.json"))
assert prof["schema"] == "lncl.prof.v1", prof
assert "fit" in prof["spans"], sorted(prof["spans"])
assert "sw_counters_available" in prof and "hw_counters_available" in prof
for span in prof["spans"].values():
    for key in ("spans", "cycles", "instructions", "task_clock_ns",
                "ipc", "cache_miss_rate"):
        assert key in span, f"prof span missing {key}: {span}"

history = [json.loads(l) for l in
           open(f"{smoke}/results/BENCH_history.jsonl") if l.strip()]
assert len(history) == 1, f"expected one history record, got {len(history)}"
rec = history[0]
assert rec["schema"] == "lncl.bench.v1", rec
assert rec["bench"] == "table2" and rec["prof_active"] is True, rec
assert rec["peak_rss_kb"] > 0 and rec["wall_seconds"] > 0, rec
assert rec["fits"] and all(f["digest"] for f in rec["fits"]), rec

print(f"trace smoke ok: {len(spans)} spans, {len(lines)} run-log records, "
      f"prof spans {sorted(prof['spans'])}, 1 history record")
EOF
echo "----- prof smoke: report + history gate on the smoke artifacts -----"
python3 tools/prof_report.py --trace "$smoke/results/trace_table2.json" \
  --prof "$smoke/results/prof_table2.json" \
  --metrics "$smoke/results/metrics_table2.json"
python3 tools/bench_compare.py \
  --history "$smoke/results/BENCH_history.jsonl" \
  --baseline "$smoke/results/no_baseline.json"
rm -rf "$smoke"
trap - EXIT

sweeps=("audit" "address,undefined" "thread")
if [ $# -ge 1 ]; then
  sweeps=("$@")
fi

for sweep in "${sweeps[@]}"; do
  if [ "$sweep" = "analyze" ]; then
    echo "===== static analysis (tools/analyze + clang-tidy gate) ====="
    python3 tools/analyze/analyze.py --self-test
    python3 tools/analyze/analyze.py
    scripts/tidy.sh
    continue
  fi
  if [ "$sweep" = "audit" ]; then
    build="build-audit-check"
    echo "===== LNCL_AUDIT=ON (${build}) ====="
    cmake -B "$build" -S . -DLNCL_AUDIT=ON -DLNCL_WERROR=ON >/dev/null
    cmake --build "$build" -j "$(nproc)"
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
    continue
  fi
  san="$sweep"
  build="build-san-${san//,/ -}"
  build="${build// /}"
  echo "===== LNCL_SANITIZE=${san} (${build}) ====="
  cmake -B "$build" -S . -DLNCL_SANITIZE="$san" -DLNCL_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$build" -j "$(nproc)"
  ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
  echo "----- ${san}: batched-prediction equivalence + determinism -----"
  ctest --test-dir "$build" --output-on-failure -R 'batch_predict|determinism'
  if [ "$san" = "address,undefined" ]; then
    echo "----- ${san}: full suite under LNCL_GEMM_KERNEL=scalar -----"
    LNCL_GEMM_KERNEL=scalar ctest --test-dir "$build" \
      --output-on-failure -j "$(nproc)"
  fi
done

echo "All check sweeps passed."
