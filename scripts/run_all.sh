#!/usr/bin/env bash
# One-shot reproduction: build, test, and regenerate every table/figure.
#
#   scripts/run_all.sh            # reduced (laptop) scale, minutes
#   LNCL_FULL=1 scripts/run_all.sh  # paper-scale sweeps, hours
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b ====="
    "$b"
  fi
done
