// Reproduces Table III: performance (%) on the CoNLL-2003 NER (MTurk)
// synthetic stand-in — strict-span precision/recall/F1 for prediction (test
// split) and inference (training split), averaged over --runs runs.
#include <iostream>
#include <map>
#include <mutex>

#include "baselines/crowd_layer.h"
#include "baselines/dl_dn.h"
#include "baselines/two_stage.h"
#include "bench_common.h"
#include "bench_history.h"
#include "core/ner_rules.h"
#include "eval/metrics.h"
#include "inference/bsc_seq.h"
#include "inference/dawid_skene.h"
#include "inference/hmm_crowd.h"
#include "inference/ibcc.h"
#include "inference/majority_vote.h"
#include "obs/mem_stats.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace lncl::bench {
namespace {

class Collector {
 public:
  void Add(const std::string& name, const eval::PrF1& prediction,
           const eval::PrF1& inference, bool has_pred = true,
           bool has_inf = true) {
    std::unique_lock<std::mutex> lock(mu_);
    MethodScores& s = scores_[name];
    s.name = name;
    if (has_pred) {
      s.precision.push_back(prediction.precision);
      s.recall.push_back(prediction.recall);
      s.prediction.push_back(prediction.f1);
    }
    if (has_inf) {
      s.inf_precision.push_back(inference.precision);
      s.inf_recall.push_back(inference.recall);
      s.inference.push_back(inference.f1);
    }
  }
  const MethodScores& Get(const std::string& name) {
    std::unique_lock<std::mutex> lock(mu_);
    return scores_[name];
  }

 private:
  std::mutex mu_;
  std::map<std::string, MethodScores> scores_;
};

void Run(int argc, char** argv) {
  util::Stopwatch bench_timer;
  const util::Config config(argc, argv);
  const Scale scale = NerScale(config);
  PrintConfigBanner("Table III — CoNLL-2003 NER (MTurk, synthetic stand-in)",
                    scale, config);

  const NerSetup setup = MakeNerSetup(scale, 2);
  const data::Dataset& train = setup.corpus.train;
  const data::Dataset& dev = setup.corpus.dev;
  const data::Dataset& test = setup.corpus.test;
  const crowd::AnnotationSet& ann = setup.annotations;
  const auto items = inference::ItemsPerInstance(train);
  const models::ModelFactory tagger =
      models::NerTagger::Factory(NerModelConfig(), setup.corpus.embeddings);
  const auto projector = core::MakeNerRuleProjector();

  Collector collect;

  // ---- Truth-inference rows. ----
  const inference::MajorityVote mv;
  std::vector<util::Matrix> mv_posteriors;
  {
    util::Rng rng(13);
    mv_posteriors = mv.Infer(ann, items, &rng);
    collect.Add("MV", {}, eval::PosteriorSpanF1(mv_posteriors, train),
                /*has_pred=*/false);
    collect.Add("DS", {},
                eval::PosteriorSpanF1(
                    inference::DawidSkene().Infer(ann, items, &rng), train),
                false);
    collect.Add("IBCC", {},
                eval::PosteriorSpanF1(
                    inference::Ibcc().Infer(ann, items, &rng), train),
                false);
    collect.Add("BSC-seq", {},
                eval::PosteriorSpanF1(
                    inference::BscSeq().Infer(ann, items, &rng), train),
                false);
    collect.Add("HMM-Crowd", {},
                eval::PosteriorSpanF1(
                    inference::HmmCrowd().Infer(ann, items, &rng), train),
                false);
  }

  util::ThreadPool pool(config.GetInt("threads", 0));
  for (int r = 0; r < scale.runs; ++r) {
    const uint64_t seed = 7000003ULL * (r + 1);

    // MV-Classifier.
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x11);
      baselines::TwoStageConfig ts;
      ts.epochs = scale.epochs;
      ts.batch_size = scale.batch;
      ts.patience = scale.patience;
      ts.optimizer = NerOptimizer();
      baselines::TwoStage m(ts, tagger);
      m.FitOnTargets(train, baselines::HardenTargets(mv_posteriors), dev,
                     &rng);
      collect.Add("MV-Classifier",
                  eval::SpanF1(*m.model(), test),
                  eval::PosteriorSpanF1(mv_posteriors, train));
    });

    // AggNet.
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x22);
      core::LogicLnclConfig lcfg = NerLnclConfig(scale);
      lcfg.k_schedule = core::ConstantK(0.0);
      core::LogicLncl m(lcfg, tagger, nullptr);
      m.Fit(train, ann, dev, &rng);
      collect.Add("AggNet",
                  eval::PosteriorSpanF1(m.PredictStudentBatch(test), test),
                  eval::PosteriorSpanF1(m.qf(), train));
    });

    // Crowd layers (with the paper's MV pre-training counts).
    struct ClVariant {
      const char* name;
      baselines::CrowdLayerConfig::Kind kind;
      int pretrain;
    };
    const ClVariant variants[] = {
        {"CL (VW, 5)", baselines::CrowdLayerConfig::Kind::kVW, 5},
        {"CL (VW-B, 5)", baselines::CrowdLayerConfig::Kind::kVWB, 5},
        {"CL (MW, 5)", baselines::CrowdLayerConfig::Kind::kMW, 5},
        {"CL (MW, 1)", baselines::CrowdLayerConfig::Kind::kMW, 1},
    };
    for (const ClVariant& v : variants) {
      pool.Submit([&, seed, v] {
        util::Rng rng(seed ^ (0x40 + static_cast<int>(v.kind) * 4 +
                              v.pretrain));
        baselines::CrowdLayerConfig clcfg;
        clcfg.kind = v.kind;
        clcfg.pretrain_epochs = v.pretrain;
        clcfg.epochs = scale.epochs;
        clcfg.batch_size = scale.batch;
        clcfg.patience = scale.patience;
        clcfg.optimizer = NerOptimizer();
        baselines::CrowdLayer m(clcfg, tagger);
        m.Fit(train, ann, dev, &rng);
        collect.Add(v.name,
                    eval::SpanF1(*m.model(), test),
                    eval::PosteriorSpanF1(m.TrainPosteriors(train), train));
      });
    }

    // DL-DN / DL-WDN (prediction only, as in the paper).
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x88);
      baselines::DlDnConfig dcfg;
      dcfg.epochs = scale.epochs * 2;
      dcfg.batch_size = 8;
      dcfg.patience = scale.epochs * 2;  // tiny per-net data: never stop early
      dcfg.optimizer = NerOptimizer();
      baselines::DlDn m(dcfg, tagger);
      m.Fit(train, ann, dev, &rng);
      collect.Add("DL-DN",
                  eval::SpanF1(
                      [&m](const data::Instance& x) { return m.Predict(x); },
                      test),
                  {}, true, false);
      collect.Add("DL-WDN",
                  eval::SpanF1(
                      [&m](const data::Instance& x) {
                        return m.PredictWeighted(x);
                      },
                      test),
                  {}, true, false);
    });

    // Logic-LNCL (student + teacher from one fit).
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x66);
      const core::LogicLnclConfig lcfg = NerLnclConfig(scale);
      core::LogicLncl m(lcfg, tagger, projector.get());
      m.Fit(train, ann, dev, &rng);
      const eval::PrF1 inference = eval::PosteriorSpanF1(m.qf(), train);
      collect.Add("Logic-LNCL-student",
                  eval::PosteriorSpanF1(m.PredictStudentBatch(test), test),
                  inference);
      collect.Add("Logic-LNCL-teacher",
                  eval::PosteriorSpanF1(m.PredictTeacherBatch(test), test),
                  inference);
    });

    // Gold upper bound.
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x77);
      baselines::TwoStageConfig ts;
      ts.epochs = scale.epochs;
      ts.batch_size = scale.batch;
      ts.patience = scale.patience;
      ts.optimizer = NerOptimizer();
      baselines::TwoStage m(ts, tagger);
      m.FitOnTargets(train, baselines::GoldTargets(train), dev, &rng);
      collect.Add("Gold (Upper Bound)",
                  eval::SpanF1(*m.model(), test),
                  {1.0, 1.0, 1.0});
    });
  }
  pool.Wait();

  util::Table table("Table III: CoNLL-2003 NER (strict span, %)");
  table.SetHeader({"Paradigm", "Method", "Pred-P", "Pred-R", "Pred-F1",
                   "Inf-P", "Inf-R", "Inf-F1", "Avg F1"});
  auto add_row = [&](const std::string& paradigm, const std::string& name) {
    const MethodScores& s = collect.Get(name);
    std::string avg = "-";
    if (!s.prediction.empty() && !s.inference.empty()) {
      avg = util::FormatFixed(
          (util::Mean(s.prediction) + util::Mean(s.inference)) * 50.0, 2);
    }
    table.AddRow({paradigm, name, Pct(s.precision), Pct(s.recall),
                  Pct(s.prediction, true), Pct(s.inf_precision),
                  Pct(s.inf_recall), Pct(s.inference), avg});
  };
  add_row("Two-stage LNCL", "MV-Classifier");
  table.AddSeparator();
  add_row("One-stage LNCL", "AggNet");
  add_row("One-stage LNCL", "CL (VW, 5)");
  add_row("One-stage LNCL", "CL (VW-B, 5)");
  add_row("One-stage LNCL", "CL (MW, 5)");
  add_row("One-stage LNCL", "CL (MW, 1)");
  add_row("One-stage LNCL", "Logic-LNCL-student");
  add_row("One-stage LNCL", "Logic-LNCL-teacher");
  add_row("One-stage LNCL", "DL-DN");
  add_row("One-stage LNCL", "DL-WDN");
  table.AddSeparator();
  add_row("Truth Inference", "MV");
  add_row("Truth Inference", "DS");
  add_row("Truth Inference", "IBCC");
  add_row("Truth Inference", "BSC-seq");
  add_row("Truth Inference", "HMM-Crowd");
  table.AddSeparator();
  add_row("-", "Gold (Upper Bound)");
  EmitTable(&table, "table3_ner");

  const MethodScores& cl_mw = collect.Get("CL (MW, 5)");
  for (const std::string& ours :
       {std::string("Logic-LNCL-student"), std::string("Logic-LNCL-teacher")}) {
    const MethodScores& s = collect.Get(ours);
    const util::TTestResult pred =
        util::WelchTTest(s.prediction, cl_mw.prediction);
    std::cout << ours << " vs CL (MW, 5): prediction-F1 t="
              << util::FormatFixed(pred.t, 2)
              << " p=" << util::FormatFixed(pred.p_one_sided, 4) << "\n";
  }

  // ---- Timed end-to-end fit: batched pipeline vs the per-instance path.
  // Same seed for both, so the trajectories (and therefore the work done per
  // epoch) are bit-identical; only the prediction pipeline differs.
  // --telemetry (default on) additionally records a trace of both fits, a
  // per-epoch run log of the batched one, and a metrics snapshot — all
  // observation-only (digest equality in BENCH_table3.json is unaffected).
  // --prof (default: follow --telemetry) arms perf-counter span attribution
  // over the timed fits (results/prof_table3.json).
  const bool telemetry = config.GetBool("telemetry", true);
  const bool prof = config.GetBool("prof", telemetry);
  std::unique_ptr<obs::JsonlRunLogger> run_log;
  if (telemetry) {
    obs::Metrics::Enable(true);
    obs::Metrics::Reset();
    obs::Trace::Start("results/trace_table3.json");
    run_log = std::make_unique<obs::JsonlRunLogger>(
        "results/runlog_table3.jsonl", "table3/batched");
  }
  if (prof) obs::Prof::Start();
  std::cout << "--- timed Logic-LNCL fit (same seed, batched vs "
               "per-instance) ---\n";
  std::vector<TimedFit> fits;
  Int8Gate int8_gate;
  for (const bool batched : {false, true}) {
    util::Rng rng(424242);
    core::LogicLnclConfig lcfg = NerLnclConfig(scale);
    lcfg.batch_predict = batched;
    if (batched && run_log != nullptr) lcfg.run_observer = run_log.get();
    core::LogicLncl m(lcfg, tagger, projector.get());
    core::LogicLnclResult res;
    {
      LNCL_TRACE_SPAN_ARG("timed_fit", "batched", batched ? 1 : 0);
      res = m.Fit(train, ann, dev, &rng);
    }
    const std::string mode = batched ? "batched" : "per_instance";
    PrintPhaseSeconds("Logic-LNCL fit (" + mode + ")", res.phase_seconds);
    fits.push_back({mode, res});
    if (batched) {
      // Quantized-serving gate: strict-span F1 of int8 vs fp32 serving on
      // the test split (LogicLnclConfig.quantized_predict).
      int8_gate = MeasureInt8Gate(&m, test, [&](
          const std::vector<util::Matrix>& p) {
        return eval::PosteriorSpanF1(p, test).f1;
      });
      PrintInt8Gate(int8_gate);
    }
  }
  if (prof) {
    obs::Prof::Stop();
    obs::Prof::WriteJson("results/prof_table3.json");
    std::cout << "[prof: results/prof_table3.json (hw counters "
              << (obs::Prof::HwCountersAvailable() ? "on" : "unavailable")
              << ")]\n";
  }
  if (telemetry) {
    obs::SampleMemStatsToMetrics();
    obs::Trace::Stop();
    obs::Metrics::WriteSnapshotJson("results/metrics_table3.json");
    std::cout << "[telemetry: results/trace_table3.json "
                 "results/runlog_table3.jsonl results/metrics_table3.json]\n";
  }
  EmitBenchJson("table3", bench_timer.Seconds(), fits, &int8_gate);
  AppendBenchHistory("table3", bench_timer.Seconds(), fits, &int8_gate);
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  lncl::bench::Run(argc, argv);
  return 0;
}
