// Reproduces Table II: performance (accuracy, %) on the Sentiment Polarity
// (MTurk) dataset — prediction accuracy on the test split and inference
// accuracy on the training split for every compared method, averaged over
// --runs runs, plus the paper's t-test of Logic-LNCL against AggNet.
#include <iostream>
#include <map>
#include <mutex>

#include "baselines/crowd_layer.h"
#include "baselines/two_stage.h"
#include "bench_common.h"
#include "bench_history.h"
#include "core/sentiment_rules.h"
#include "eval/metrics.h"
#include "inference/catd.h"
#include "inference/dawid_skene.h"
#include "inference/glad.h"
#include "inference/majority_vote.h"
#include "inference/pm.h"
#include "models/logreg.h"
#include "obs/mem_stats.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace lncl::bench {
namespace {

class Collector {
 public:
  void Add(const std::string& name, double prediction, double inference) {
    std::unique_lock<std::mutex> lock(mu_);
    MethodScores& s = scores_[name];
    s.name = name;
    if (prediction >= 0.0) s.prediction.push_back(prediction);
    if (inference >= 0.0) s.inference.push_back(inference);
  }
  const MethodScores& Get(const std::string& name) {
    std::unique_lock<std::mutex> lock(mu_);
    return scores_[name];
  }

 private:
  std::mutex mu_;
  std::map<std::string, MethodScores> scores_;
};

void Run(int argc, char** argv) {
  util::Stopwatch bench_timer;
  const util::Config config(argc, argv);
  const Scale scale = SentimentScale(config);
  PrintConfigBanner("Table II — Sentiment Polarity (MTurk, synthetic stand-in)",
                    scale, config);

  const SentimentSetup setup = MakeSentimentSetup(scale, 1);
  const data::Dataset& train = setup.corpus.train;
  const data::Dataset& dev = setup.corpus.dev;
  const data::Dataset& test = setup.corpus.test;
  const crowd::AnnotationSet& ann = setup.annotations;
  const auto items = inference::ItemsPerInstance(train);
  const models::ModelFactory cnn =
      models::TextCnn::Factory(SentimentModelConfig(), setup.corpus.embeddings);

  Collector collect;

  // ---- Truth-inference rows (deterministic; one evaluation each). ----
  const inference::MajorityVote mv;
  const inference::DawidSkene ds;
  const inference::Glad glad;
  const inference::Pm pm;
  const inference::Catd catd;
  std::vector<util::Matrix> mv_posteriors, glad_posteriors;
  {
    util::Rng rng(11);
    mv_posteriors = mv.Infer(ann, items, &rng);
    glad_posteriors = glad.Infer(ann, items, &rng);
    collect.Add("MV", -1.0, eval::PosteriorAccuracy(mv_posteriors, train));
    collect.Add("GLAD", -1.0, eval::PosteriorAccuracy(glad_posteriors, train));
    collect.Add("DS", -1.0,
                eval::PosteriorAccuracy(ds.Infer(ann, items, &rng), train));
    collect.Add("PM", -1.0,
                eval::PosteriorAccuracy(pm.Infer(ann, items, &rng), train));
    collect.Add("CATD", -1.0,
                eval::PosteriorAccuracy(catd.Infer(ann, items, &rng), train));
  }

  // ---- Trainable methods, one job per (method, run). ----
  util::ThreadPool pool(config.GetInt("threads", 0));
  for (int r = 0; r < scale.runs; ++r) {
    const uint64_t seed = 1000003ULL * (r + 1);

    // MV-Classifier.
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x11);
      baselines::TwoStageConfig ts;
      ts.epochs = scale.epochs;
      ts.batch_size = scale.batch;
      ts.optimizer = SentimentOptimizer();
      baselines::TwoStage m(ts, cnn);
      m.FitOnTargets(train, baselines::HardenTargets(mv_posteriors), dev,
                     &rng);
      collect.Add("MV-Classifier",
                  eval::Accuracy(*m.model(), test),
                  eval::PosteriorAccuracy(mv_posteriors, train));
    });

    // GLAD-Classifier.
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x22);
      baselines::TwoStageConfig ts;
      ts.epochs = scale.epochs;
      ts.batch_size = scale.batch;
      ts.optimizer = SentimentOptimizer();
      baselines::TwoStage m(ts, cnn);
      m.FitOnTargets(train, baselines::HardenTargets(glad_posteriors), dev,
                     &rng);
      collect.Add("GLAD-Classifier",
                  eval::Accuracy(*m.model(), test),
                  eval::PosteriorAccuracy(glad_posteriors, train));
    });

    // Raykar: EM with a logistic-regression classifier.
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x33);
      core::LogicLnclConfig lcfg = SentimentLnclConfig(scale);
      lcfg.k_schedule = core::ConstantK(0.0);
      lcfg.optimizer.kind = "adam";
      lcfg.optimizer.lr = 0.05;
      core::LogicLncl m(
          lcfg,
          models::LogisticRegression::Factory(2, setup.corpus.embeddings),
          nullptr);
      m.Fit(train, ann, dev, &rng);
      collect.Add("Raykar",
                  eval::PosteriorAccuracy(m.PredictStudentBatch(test), test),
                  eval::PosteriorAccuracy(m.qf(), train));
    });

    // AggNet: EM with the deep classifier (k = 0, no rules).
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x44);
      core::LogicLnclConfig lcfg = SentimentLnclConfig(scale);
      lcfg.k_schedule = core::ConstantK(0.0);
      core::LogicLncl m(lcfg, cnn, nullptr);
      m.Fit(train, ann, dev, &rng);
      collect.Add("AggNet",
                  eval::PosteriorAccuracy(m.PredictStudentBatch(test), test),
                  eval::PosteriorAccuracy(m.qf(), train));
    });

    // Crowd layers.
    const std::vector<std::pair<std::string, baselines::CrowdLayerConfig::Kind>>
        kinds = {{"CL (VW)", baselines::CrowdLayerConfig::Kind::kVW},
                 {"CL (VW-B)", baselines::CrowdLayerConfig::Kind::kVWB},
                 {"CL (MW)", baselines::CrowdLayerConfig::Kind::kMW}};
    for (const auto& [name, kind] : kinds) {
      pool.Submit([&, seed, name = name, kind = kind] {
        util::Rng rng(seed ^ (0x55 + static_cast<int>(kind)));
        baselines::CrowdLayerConfig clcfg;
        clcfg.kind = kind;
        clcfg.epochs = scale.epochs;
        clcfg.batch_size = scale.batch;
        clcfg.optimizer = SentimentOptimizer();
        baselines::CrowdLayer m(clcfg, cnn);
        m.Fit(train, ann, dev, &rng);
        collect.Add(name,
                    eval::Accuracy(*m.model(), test),
                    eval::PosteriorAccuracy(m.TrainPosteriors(train), train));
      });
    }

    // Logic-LNCL (one fit yields both the student and the teacher row).
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x66);
      std::unique_ptr<models::Model> model = cnn(&rng);
      core::SentimentButRule rule(model.get(), setup.corpus.but_token);
      const core::LogicLnclConfig lcfg = SentimentLnclConfig(scale);
      // `cnn` doubles as the replica factory for the sharded training path
      // (only used when --intra_threads >= 1).
      core::LogicLncl m(lcfg, std::move(model), &rule, cnn);
      m.Fit(train, ann, dev, &rng);
      const double inference = eval::PosteriorAccuracy(m.qf(), train);
      collect.Add("Logic-LNCL-student",
                  eval::PosteriorAccuracy(m.PredictStudentBatch(test), test),
                  inference);
      collect.Add("Logic-LNCL-teacher",
                  eval::PosteriorAccuracy(m.PredictTeacherBatch(test), test),
                  inference);
    });

    // Gold upper bound.
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x77);
      baselines::TwoStageConfig ts;
      ts.epochs = scale.epochs;
      ts.batch_size = scale.batch;
      ts.optimizer = SentimentOptimizer();
      baselines::TwoStage m(ts, cnn);
      m.FitOnTargets(train, baselines::GoldTargets(train), dev, &rng);
      collect.Add("Gold",
                  eval::Accuracy(*m.model(), test), 1.0);
    });
  }
  pool.Wait();

  // ---- Assemble the table in the paper's row order. ----
  util::Table table("Table II: Sentiment Polarity (accuracy, %)");
  table.SetHeader({"Paradigm", "Method", "Prediction", "Inference", "Average"});
  auto add_row = [&](const std::string& paradigm, const std::string& name) {
    const MethodScores& s = collect.Get(name);
    std::string avg = "-";
    if (!s.prediction.empty() && !s.inference.empty()) {
      avg = util::FormatFixed(
          (util::Mean(s.prediction) + util::Mean(s.inference)) * 50.0, 2);
    }
    table.AddRow({paradigm, name, Pct(s.prediction, true), Pct(s.inference),
                  avg});
  };
  add_row("Two-stage LNCL", "MV-Classifier");
  add_row("Two-stage LNCL", "GLAD-Classifier");
  table.AddSeparator();
  add_row("One-stage LNCL", "Raykar");
  add_row("One-stage LNCL", "AggNet");
  add_row("One-stage LNCL", "CL (VW)");
  add_row("One-stage LNCL", "CL (VW-B)");
  add_row("One-stage LNCL", "CL (MW)");
  add_row("One-stage LNCL", "Logic-LNCL-student");
  add_row("One-stage LNCL", "Logic-LNCL-teacher");
  table.AddSeparator();
  add_row("Truth Inference", "MV");
  add_row("Truth Inference", "DS");
  add_row("Truth Inference", "GLAD");
  add_row("Truth Inference", "PM");
  add_row("Truth Inference", "CATD");
  table.AddSeparator();
  add_row("-", "Gold");
  EmitTable(&table, "table2_sentiment");

  // ---- Significance vs AggNet (the paper's unilateral t-test). ----
  const MethodScores& aggnet = collect.Get("AggNet");
  for (const std::string& ours :
       {std::string("Logic-LNCL-student"), std::string("Logic-LNCL-teacher")}) {
    const MethodScores& s = collect.Get(ours);
    const util::TTestResult pred =
        util::WelchTTest(s.prediction, aggnet.prediction);
    const util::TTestResult inf =
        util::WelchTTest(s.inference, aggnet.inference);
    std::cout << ours << " vs AggNet: prediction t=" << util::FormatFixed(
                     pred.t, 2)
              << " p=" << util::FormatFixed(pred.p_one_sided, 4)
              << " | inference t=" << util::FormatFixed(inf.t, 2)
              << " p=" << util::FormatFixed(inf.p_one_sided, 4) << "\n";
  }

  // ---- Timed end-to-end fit: batched pipeline vs the per-instance path.
  // Same seed for both, so the trajectories (and therefore the work done per
  // epoch) are bit-identical; only the prediction pipeline differs.
  //
  // --telemetry (default on) turns the timed fits into the telemetry
  // showcase: metrics registry enabled, a Perfetto-loadable trace of both
  // fits, and a per-epoch run log attached to the batched one. All of it is
  // observation-only, so the batched/per_instance digest equality in
  // results/BENCH_table2.json is unaffected.
  // --prof (default: follow --telemetry) additionally arms perf-counter
  // span attribution (obs::Prof) over the timed fits and writes the
  // per-span counter aggregates to results/prof_table2.json.
  const bool telemetry = config.GetBool("telemetry", true);
  const bool prof = config.GetBool("prof", telemetry);
  std::unique_ptr<obs::JsonlRunLogger> run_log;
  if (telemetry) {
    obs::Metrics::Enable(true);
    obs::Metrics::Reset();
    obs::Trace::Start("results/trace_table2.json");
    run_log = std::make_unique<obs::JsonlRunLogger>(
        "results/runlog_table2.jsonl", "table2/batched");
  }
  if (prof) obs::Prof::Start();
  std::cout << "--- timed Logic-LNCL fit (same seed, batched vs "
               "per-instance) ---\n";
  std::vector<TimedFit> fits;
  Int8Gate int8_gate;
  for (const bool batched : {false, true}) {
    util::Rng rng(424242);
    std::unique_ptr<models::Model> model = cnn(&rng);
    core::SentimentButRule rule(model.get(), setup.corpus.but_token);
    core::LogicLnclConfig lcfg = SentimentLnclConfig(scale);
    lcfg.batch_predict = batched;
    if (batched && run_log != nullptr) lcfg.run_observer = run_log.get();
    core::LogicLncl m(lcfg, std::move(model), &rule, cnn);
    core::LogicLnclResult res;
    {
      LNCL_TRACE_SPAN_ARG("timed_fit", "batched", batched ? 1 : 0);
      res = m.Fit(train, ann, dev, &rng);
    }
    const std::string mode = batched ? "batched" : "per_instance";
    PrintPhaseSeconds("Logic-LNCL fit (" + mode + ")", res.phase_seconds);
    fits.push_back({mode, res});
    if (batched) {
      // Quantized-serving accuracy gate on the fitted model (see
      // LogicLnclConfig.quantized_predict): both arms score the test split.
      int8_gate = MeasureInt8Gate(&m, test, [&](
          const std::vector<util::Matrix>& p) {
        return eval::PosteriorAccuracy(p, test);
      });
      PrintInt8Gate(int8_gate);
    }
  }
  if (prof) {
    obs::Prof::Stop();
    obs::Prof::WriteJson("results/prof_table2.json");
    std::cout << "[prof: results/prof_table2.json (hw counters "
              << (obs::Prof::HwCountersAvailable() ? "on" : "unavailable")
              << ")]\n";
  }
  if (telemetry) {
    obs::SampleMemStatsToMetrics();
    obs::Trace::Stop();
    obs::Metrics::WriteSnapshotJson("results/metrics_table2.json");
    std::cout << "[telemetry: results/trace_table2.json "
                 "results/runlog_table2.jsonl results/metrics_table2.json]\n";
  }
  EmitBenchJson("table2", bench_timer.Seconds(), fits, &int8_gate);
  AppendBenchHistory("table2", bench_timer.Seconds(), fits, &int8_gate);
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  lncl::bench::Run(argc, argv);
  return 0;
}
