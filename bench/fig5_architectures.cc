// Reproduces Figure 5 (the architecture panel): a layer-by-layer summary of
// the two networks — Kim's sentence CNN and the Rodrigues & Pereira NER
// tagger — with every parameter tensor and its shape, at both the reduced
// default width and the paper's width.
#include <iostream>

#include "bench_common.h"
#include "bench_history.h"
#include "models/crf_tagger.h"
#include "models/ner_tagger.h"
#include "models/text_cnn.h"
#include "util/logging.h"
#include "util/timer.h"

namespace lncl::bench {
namespace {

void Summarize(const std::string& title, models::Model* model) {
  util::Table table(title);
  table.SetHeader({"Parameter", "Shape", "Weights"});
  size_t total = 0;
  for (const nn::Parameter* p :
       const_cast<models::Model*>(model)->Params()) {
    table.AddRow({p->name,
                  std::to_string(p->value.rows()) + " x " +
                      std::to_string(p->value.cols()),
                  std::to_string(p->value.size())});
    total += p->value.size();
  }
  table.AddSeparator();
  table.AddRow({"total", "", std::to_string(total)});
  table.Print(std::cout);
}

void Run(int argc, char** argv) {
  const util::Config config(argc, argv);
  util::Stopwatch bench_timer;
  const bool full = config.GetBool("full", false);
  util::Rng rng(1);

  // Embedding stand-in just to instantiate the models.
  data::SentimentGenConfig sent_gen;
  data::NerGenConfig ner_gen;
  if (full) {
    sent_gen.embedding_dim = 300;  // paper: 300-d word2vec / GloVe
    ner_gen.embedding_dim = 300;
  }
  const auto sent_corpus = data::GenerateSentimentCorpus(sent_gen, 1, 1, 1, &rng);
  const auto ner_corpus = data::GenerateNerCorpus(ner_gen, 1, 1, 1, &rng);

  models::TextCnnConfig cnn_config = SentimentModelConfig();
  models::NerTaggerConfig tagger_config = NerModelConfig();
  if (full) {
    cnn_config.feature_maps = 100;  // Kim (2014)
    tagger_config.conv_features = 512;  // Rodrigues & Pereira (2018)
    tagger_config.gru_hidden = 50;
  }

  std::cout << "Figure 5 — network architectures ("
            << (full ? "paper widths" : "reduced widths") << ")\n\n"
            << "Left (sentiment): static " << sent_gen.embedding_dim
            << "-d embeddings -> conv windows {3,4,5} x "
            << cnn_config.feature_maps
            << " maps (ReLU) -> max-over-time -> dropout 0.5 -> softmax\n";
  models::TextCnn cnn(cnn_config, sent_corpus.embeddings, &rng);
  Summarize("TextCnn (Kim 2014)", &cnn);

  std::cout << "\nRight (NER): static " << ner_gen.embedding_dim
            << "-d embeddings -> conv width 5 x " << tagger_config.conv_features
            << " (ReLU) -> dropout 0.5 -> GRU(" << tagger_config.gru_hidden
            << ") -> per-token softmax\n";
  models::NerTagger tagger(tagger_config, ner_corpus.embeddings, &rng);
  Summarize("NerTagger (Rodrigues & Pereira 2018)", &tagger);

  std::cout << "\n(extension) Linear-chain CRF variant of the tagger:\n";
  models::CrfTaggerConfig crf_config;
  crf_config.conv_features = tagger_config.conv_features;
  crf_config.gru_hidden = tagger_config.gru_hidden;
  models::CrfTagger crf(crf_config, ner_corpus.embeddings, &rng);
  Summarize("CrfTagger (Lample-style contrast)", &crf);
  AppendBenchHistory("fig5_architectures", bench_timer.Seconds());
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  lncl::bench::Run(argc, argv);
  return 0;
}
