// Reproduces the Section VI-B "Advantage of sample-efficiency" experiment:
// Logic-LNCL (student/teacher) trained on shrinking subsets of the training
// data, against the strongest baseline trained on ALL of it (AggNet on
// sentiment, CL(MW, 5) on NER). The paper finds both variants match or beat
// the full-data baseline while using only ~66-95% of the samples.
#include <iostream>
#include <map>
#include <mutex>

#include "baselines/crowd_layer.h"
#include "bench_common.h"
#include "bench_history.h"
#include "core/ner_rules.h"
#include "core/sentiment_rules.h"
#include "eval/metrics.h"
#include "util/logging.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace lncl::bench {
namespace {

constexpr double kFractions[] = {0.5, 0.65, 0.8, 1.0};

struct Cell {
  std::vector<double> student;
  std::vector<double> teacher;
  std::vector<double> inference;
};

// Crowd labels restricted to a subset of instances.
crowd::AnnotationSet SubsetAnnotations(const crowd::AnnotationSet& ann,
                                       const std::vector<int>& indices) {
  crowd::AnnotationSet out(static_cast<int>(indices.size()),
                           ann.num_annotators(), ann.num_classes());
  for (size_t i = 0; i < indices.size(); ++i) {
    out.instance(static_cast<int>(i)) = ann.instance(indices[i]);
  }
  return out;
}

void Run(int argc, char** argv) {
  const util::Config config(argc, argv);
  util::Stopwatch bench_timer;
  Scale sent_scale = SentimentScale(config);
  Scale ner_scale = NerScale(config);
  sent_scale.runs = config.GetInt("runs", 3);
  ner_scale.runs = sent_scale.runs;
  PrintConfigBanner("Sample efficiency (Section VI-B)", sent_scale, config);

  std::mutex mu;
  std::map<std::string, Cell> cells;
  std::vector<double> sent_baseline, ner_baseline;
  util::ThreadPool pool(config.GetInt("threads", 0));

  // ---------------------------------------------------------- Sentiment --
  auto* sent = new SentimentSetup(MakeSentimentSetup(sent_scale, 1));
  auto* cnn = new models::ModelFactory(models::TextCnn::Factory(
      SentimentModelConfig(), sent->corpus.embeddings));
  for (int r = 0; r < sent_scale.runs; ++r) {
    const uint64_t seed = 33301ULL * (r + 1);
    // Full-data AggNet baseline.
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x1);
      core::LogicLnclConfig lcfg = SentimentLnclConfig(sent_scale);
      lcfg.k_schedule = core::ConstantK(0.0);
      core::LogicLncl m(lcfg, *cnn, nullptr);
      m.Fit(sent->corpus.train, sent->annotations, sent->corpus.dev, &rng);
      const double acc = eval::Accuracy(
          [&m](const data::Instance& x) { return m.PredictStudent(x); },
          sent->corpus.test);
      std::unique_lock<std::mutex> lock(mu);
      sent_baseline.push_back(acc);
    });
    for (const double frac : kFractions) {
      pool.Submit([&, seed, frac] {
        util::Rng rng(seed ^ static_cast<uint64_t>(frac * 1000));
        const auto idx = data::SampleSubset(
            sent->corpus.train,
            static_cast<int>(frac * sent->corpus.train.size()), &rng);
        const data::Dataset sub = data::Subset(sent->corpus.train, idx);
        const crowd::AnnotationSet sub_ann =
            SubsetAnnotations(sent->annotations, idx);
        std::unique_ptr<models::Model> model = (*cnn)(&rng);
        core::SentimentButRule rule(model.get(), sent->corpus.but_token);
        core::LogicLncl m(SentimentLnclConfig(sent_scale), std::move(model),
                          &rule);
        m.Fit(sub, sub_ann, sent->corpus.dev, &rng);
        const double stu = eval::Accuracy(
            [&m](const data::Instance& x) { return m.PredictStudent(x); },
            sent->corpus.test);
        const double tea = eval::Accuracy(
            [&m](const data::Instance& x) { return m.PredictTeacher(x); },
            sent->corpus.test);
        const double inf = eval::PosteriorAccuracy(m.qf(), sub);
        std::unique_lock<std::mutex> lock(mu);
        Cell& c = cells["sent|" + util::FormatFixed(frac, 2)];
        c.student.push_back(stu);
        c.teacher.push_back(tea);
        c.inference.push_back(inf);
      });
    }
  }

  // ---------------------------------------------------------------- NER --
  auto* ner = new NerSetup(MakeNerSetup(ner_scale, 2));
  auto* tagger = new models::ModelFactory(models::NerTagger::Factory(
      NerModelConfig(), ner->corpus.embeddings));
  auto* projector = new std::unique_ptr<logic::SequenceRuleProjector>(
      core::MakeNerRuleProjector());
  for (int r = 0; r < ner_scale.runs; ++r) {
    const uint64_t seed = 77801ULL * (r + 1);
    // Full-data CL(MW, 5) baseline.
    pool.Submit([&, seed] {
      util::Rng rng(seed ^ 0x2);
      baselines::CrowdLayerConfig clcfg;
      clcfg.kind = baselines::CrowdLayerConfig::Kind::kMW;
      clcfg.pretrain_epochs = 5;
      clcfg.epochs = ner_scale.epochs;
      clcfg.batch_size = ner_scale.batch;
      clcfg.patience = ner_scale.patience;
      clcfg.optimizer = NerOptimizer();
      baselines::CrowdLayer m(clcfg, *tagger);
      m.Fit(ner->corpus.train, ner->annotations, ner->corpus.dev, &rng);
      const double f1 =
          eval::SpanF1(eval::ModelPredictor(*m.model()), ner->corpus.test).f1;
      std::unique_lock<std::mutex> lock(mu);
      ner_baseline.push_back(f1);
    });
    for (const double frac : kFractions) {
      pool.Submit([&, seed, frac] {
        util::Rng rng(seed ^ static_cast<uint64_t>(frac * 1000));
        const auto idx = data::SampleSubset(
            ner->corpus.train,
            static_cast<int>(frac * ner->corpus.train.size()), &rng);
        const data::Dataset sub = data::Subset(ner->corpus.train, idx);
        const crowd::AnnotationSet sub_ann =
            SubsetAnnotations(ner->annotations, idx);
        core::LogicLncl m(NerLnclConfig(ner_scale), *tagger,
                          projector->get());
        m.Fit(sub, sub_ann, ner->corpus.dev, &rng);
        const double stu = eval::SpanF1(
            [&m](const data::Instance& x) { return m.PredictStudent(x); },
            ner->corpus.test).f1;
        const double tea = eval::SpanF1(
            [&m](const data::Instance& x) { return m.PredictTeacher(x); },
            ner->corpus.test).f1;
        const double inf = eval::PosteriorSpanF1(m.qf(), sub).f1;
        std::unique_lock<std::mutex> lock(mu);
        Cell& c = cells["ner|" + util::FormatFixed(frac, 2)];
        c.student.push_back(stu);
        c.teacher.push_back(tea);
        c.inference.push_back(inf);
      });
    }
  }
  pool.Wait();

  util::Table table("Sample efficiency: Logic-LNCL on data subsets");
  table.SetHeader({"Task", "Train frac", "Student", "Teacher", "Inference",
                   "Full-data baseline"});
  for (const char* task : {"sent", "ner"}) {
    const std::vector<double>& baseline =
        std::string(task) == "sent" ? sent_baseline : ner_baseline;
    const std::string baseline_name =
        std::string(task) == "sent" ? "AggNet" : "CL (MW, 5)";
    for (const double frac : kFractions) {
      const Cell& c = cells[std::string(task) + "|" +
                            util::FormatFixed(frac, 2)];
      table.AddRow({task, util::FormatFixed(frac, 2), Pct(c.student, true),
                    Pct(c.teacher, true), Pct(c.inference),
                    baseline_name + " = " + Pct(baseline)});
    }
    table.AddSeparator();
  }
  EmitTable(&table, "sample_efficiency");
  std::cout << "Paper's finding: the student/teacher variants match the best "
               "full-data baseline\nusing only part of the training data "
               "(sentiment 86%/66%, NER 95%/82%).\n";
  AppendBenchHistory("sample_efficiency", bench_timer.Seconds());
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  lncl::bench::Run(argc, argv);
  return 0;
}
