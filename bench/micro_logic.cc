// google-benchmark micro-benchmarks for the logic substrate and the
// EM-adjacent kernels: Eq. 15 projection, forward-backward sequence
// projection, q_a computation and the confusion update.
#include <benchmark/benchmark.h>

#include "core/ner_rules.h"
#include "core/trainer.h"
#include "crowd/confusion.h"
#include "logic/posterior_reg.h"
#include "logic/sequence_rules.h"
#include "util/rng.h"

namespace lncl {
namespace {

util::Matrix RandomDistributions(int rows, int k, util::Rng* rng) {
  util::Matrix q(rows, k);
  for (int r = 0; r < rows; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < k; ++c) {
      q(r, c) = static_cast<float>(rng->Uniform(0.05, 1.0));
      sum += q(r, c);
    }
    for (int c = 0; c < k; ++c) q(r, c) /= sum;
  }
  return q;
}

void BM_ProjectIndependent(benchmark::State& state) {
  util::Rng rng(1);
  const int rows = static_cast<int>(state.range(0));
  const util::Matrix q = RandomDistributions(rows, 2, &rng);
  util::Matrix pen(rows, 2);
  for (int r = 0; r < rows; ++r) pen(r, 0) = 0.5f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::ProjectIndependent(q, pen, 5.0));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ProjectIndependent)->Arg(1)->Arg(64)->Arg(1024);

void BM_SequenceProjection(benchmark::State& state) {
  util::Rng rng(2);
  const int t_len = static_cast<int>(state.range(0));
  const logic::SequenceRuleProjector projector(
      core::BuildNerTransitionPenalty());
  const util::Matrix q = RandomDistributions(t_len, 9, &rng);
  data::Instance x;
  for (auto _ : state) {
    benchmark::DoNotOptimize(projector.Project(x, q, 5.0));
  }
  state.SetItemsProcessed(state.iterations() * t_len);
}
BENCHMARK(BM_SequenceProjection)->Arg(8)->Arg(16)->Arg(32);

void BM_ComputeQa(benchmark::State& state) {
  util::Rng rng(3);
  const int t_len = 14;
  const int annotators = static_cast<int>(state.range(0));
  const util::Matrix probs = RandomDistributions(t_len, 9, &rng);
  crowd::ConfusionSet confusions(annotators, crowd::ConfusionMatrix(9, 0.8));
  crowd::InstanceAnnotations ann;
  for (int j = 0; j < annotators; ++j) {
    crowd::AnnotatorLabels e;
    e.annotator = j;
    for (int t = 0; t < t_len; ++t) e.labels.push_back(rng.UniformInt(9));
    ann.entries.push_back(std::move(e));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeQa(probs, ann, confusions));
  }
  state.SetItemsProcessed(state.iterations() * t_len * annotators);
}
BENCHMARK(BM_ComputeQa)->Arg(1)->Arg(5)->Arg(20);

void BM_UpdateConfusions(benchmark::State& state) {
  util::Rng rng(4);
  const int instances = static_cast<int>(state.range(0));
  const int annotators = 50;
  crowd::AnnotationSet ann(instances, annotators, 2);
  std::vector<util::Matrix> qf;
  for (int i = 0; i < instances; ++i) {
    for (int j = 0; j < 5; ++j) {
      crowd::AnnotatorLabels e;
      e.annotator = rng.UniformInt(annotators);
      e.labels.push_back(rng.UniformInt(2));
      ann.instance(i).entries.push_back(std::move(e));
    }
    qf.push_back(RandomDistributions(1, 2, &rng));
  }
  crowd::ConfusionSet confusions;
  for (auto _ : state) {
    core::UpdateConfusions(qf, ann, 0.01, &confusions);
    benchmark::DoNotOptimize(confusions.data());
  }
  state.SetItemsProcessed(state.iterations() * instances);
}
BENCHMARK(BM_UpdateConfusions)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace lncl

#ifndef LNCL_MICRO_COMBINED
BENCHMARK_MAIN();
#endif
