// Calibration harness (not a paper table): trains the Gold upper bound and
// the MV baseline on both tasks and prints the headline numbers, so the
// synthetic-corpus difficulty and optimizer settings can be tuned to land in
// the paper's bands (sentiment Gold ~79%, MV-inference ~88.6%; NER Gold F1
// ~73, MV-inference F1 ~67).
#include <iostream>

#include "baselines/two_stage.h"
#include "bench_common.h"
#include "eval/metrics.h"
#include "inference/majority_vote.h"
#include "util/logging.h"

namespace lncl::bench {
namespace {

void CalibrateSentiment(const util::Config& config) {
  const Scale scale = SentimentScale(config);
  SentimentSetup setup = MakeSentimentSetup(scale, 1);

  const auto mv_posteriors = setup.annotations.MajorityVote(
      inference::ItemsPerInstance(setup.corpus.train));
  std::cout << "[sentiment] MV inference acc: "
            << Pct({eval::PosteriorAccuracy(mv_posteriors,
                                            setup.corpus.train)})
            << "\n";

  baselines::TwoStageConfig ts;
  ts.epochs = scale.epochs;
  ts.batch_size = scale.batch;
  ts.patience = 5;
  ts.optimizer = SentimentOptimizer();
  util::Rng rng(7);
  baselines::TwoStage gold(
      ts, models::TextCnn::Factory(SentimentModelConfig(),
                                   setup.corpus.embeddings));
  const auto result = gold.FitOnTargets(
      setup.corpus.train, baselines::GoldTargets(setup.corpus.train),
      setup.corpus.dev, &rng);
  const double test_acc = eval::Accuracy(
      [&](const data::Instance& x) { return gold.Predict(x); },
      setup.corpus.test);
  std::cout << "[sentiment] Gold: dev " << Pct({result.best_dev_score})
            << " test " << Pct({test_acc}) << " (best epoch "
            << result.best_epoch << ")\n";
}

void CalibrateNer(const util::Config& config) {
  const Scale scale = NerScale(config);
  NerSetup setup = MakeNerSetup(scale, 2);

  const auto mv_posteriors = setup.annotations.MajorityVote(
      inference::ItemsPerInstance(setup.corpus.train));
  const eval::PrF1 mv = eval::PosteriorSpanF1(mv_posteriors,
                                              setup.corpus.train);
  std::cout << "[ner] MV inference P/R/F1: " << Pct({mv.precision}) << "/"
            << Pct({mv.recall}) << "/" << Pct({mv.f1}) << "\n";

  baselines::TwoStageConfig ts;
  ts.epochs = scale.epochs;
  ts.batch_size = scale.batch;
  ts.patience = 5;
  ts.optimizer = NerOptimizer();
  util::Rng rng(9);
  baselines::TwoStage gold(
      ts, models::NerTagger::Factory(NerModelConfig(),
                                     setup.corpus.embeddings));
  const auto result = gold.FitOnTargets(
      setup.corpus.train, baselines::GoldTargets(setup.corpus.train),
      setup.corpus.dev, &rng);
  const eval::PrF1 test = eval::SpanF1(
      [&](const data::Instance& x) { return gold.Predict(x); },
      setup.corpus.test);
  std::cout << "[ner] Gold: dev-F1 " << Pct({result.best_dev_score})
            << " test P/R/F1 " << Pct({test.precision}) << "/"
            << Pct({test.recall}) << "/" << Pct({test.f1}) << " (best epoch "
            << result.best_epoch << ")\n";
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::Config config(argc, argv);
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  if (!config.GetBool("skip_sentiment", false)) {
    lncl::bench::CalibrateSentiment(config);
  }
  if (!config.GetBool("skip_ner", false)) {
    lncl::bench::CalibrateNer(config);
  }
  return 0;
}
