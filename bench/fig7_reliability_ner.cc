// Reproduces Figure 7: annotator reliability estimated by Logic-LNCL on the
// NER dataset. (a) estimated vs. true 9x9 confusion matrices of the four
// most prolific annotators (printed as diagonals plus the largest
// off-diagonal confusions); (b) estimated vs. true scalar reliability for
// all annotators.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "bench_history.h"
#include "core/ner_rules.h"
#include "crowd/confusion.h"
#include "data/bio.h"
#include "eval/metrics.h"
#include "eval/reliability.h"
#include "inference/truth_inference.h"
#include "util/logging.h"
#include "util/timer.h"

namespace lncl::bench {
namespace {

void PrintMatrixPair(const std::string& header,
                     const crowd::ConfusionMatrix& estimated,
                     const crowd::ConfusionMatrix& actual) {
  std::cout << header << "\n  diag (est | true):\n";
  for (int m = 0; m < estimated.num_classes(); ++m) {
    std::cout << "    " << data::BioLabelName(m) << ": "
              << util::FormatFixed(estimated(m, m), 2) << " | "
              << util::FormatFixed(actual(m, m), 2) << "\n";
  }
  // Largest true off-diagonal confusion and its estimate.
  int bm = 0, bn = 1;
  float best = -1.0f;
  for (int m = 0; m < actual.num_classes(); ++m) {
    for (int n = 0; n < actual.num_classes(); ++n) {
      if (m != n && actual(m, n) > best) {
        best = actual(m, n);
        bm = m;
        bn = n;
      }
    }
  }
  std::cout << "  top true confusion " << data::BioLabelName(bm) << "->"
            << data::BioLabelName(bn) << ": true "
            << util::FormatFixed(actual(bm, bn), 2) << ", est "
            << util::FormatFixed(estimated(bm, bn), 2) << "\n";
}

void Run(int argc, char** argv) {
  const util::Config config(argc, argv);
  util::Stopwatch bench_timer;
  const Scale scale = NerScale(config);
  PrintConfigBanner("Figure 7 — Annotator reliability (NER)", scale, config);
  const NerSetup setup = MakeNerSetup(scale, 2);

  util::Rng rng(37);
  const auto projector = core::MakeNerRuleProjector();
  core::LogicLncl learner(
      NerLnclConfig(scale),
      models::NerTagger::Factory(NerModelConfig(), setup.corpus.embeddings),
      projector.get());
  const core::LogicLnclResult fit =
      learner.Fit(setup.corpus.train, setup.annotations, setup.corpus.dev,
                  &rng);
  PrintPhaseSeconds("Logic-LNCL fit", fit.phase_seconds);

  const crowd::ConfusionSet empirical =
      crowd::EmpiricalConfusions(setup.annotations, setup.corpus.train);
  const auto labels = setup.annotations.LabelsPerAnnotator();

  std::cout << "--- Fig 7(a): top-4 annotators by volume ---\n";
  for (int j : eval::TopAnnotatorsByVolume(labels, 4)) {
    PrintMatrixPair("annotator " + std::to_string(j) + " (" +
                        std::to_string(labels[j]) + " token labels)",
                    learner.confusions()[j], empirical[j]);
  }

  // (b) All annotators.
  const eval::ReliabilityReport report = eval::CompareReliability(
      learner.confusions(), empirical, labels, /*min_labels=*/0);
  util::Table table("Figure 7(b): estimated vs true annotator reliability");
  table.SetHeader({"Annotator", "Labels", "Estimated", "True", "AbsErr"});
  int row = 0;
  for (size_t j = 0; j < labels.size(); ++j) {
    if (labels[j] <= 0) continue;
    table.AddRow({std::to_string(j), std::to_string(labels[j]),
                  util::FormatFixed(report.estimated[row], 3),
                  util::FormatFixed(report.actual[row], 3),
                  util::FormatFixed(
                      std::fabs(report.estimated[row] - report.actual[row]),
                      3)});
    ++row;
  }
  EmitTable(&table, "fig7_reliability_ner");
  std::cout << "pearson(estimated, true) = "
            << util::FormatFixed(report.pearson_correlation, 3)
            << "   mean |err| = "
            << util::FormatFixed(report.mean_abs_reliability_error, 3)
            << "   mean matrix distance = "
            << util::FormatFixed(report.mean_matrix_distance, 3) << "\n";
  AppendBenchHistory("fig7_reliability_ner", bench_timer.Seconds());
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  lncl::bench::Run(argc, argv);
  return 0;
}
