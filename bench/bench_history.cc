#include "bench_history.h"

#include <cctype>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/mem_stats.h"
#include "obs/perf_counters.h"
#include "util/check.h"

namespace lncl::bench {

namespace {

bool IsHex(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

std::string ReadFirstLine(const std::filesystem::path& path) {
  std::ifstream is(path);
  std::string line;
  if (is) std::getline(is, line);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return line;
}

// Resolves a "refs/heads/..." name to its commit inside `git_dir`: the loose
// ref file first, then packed-refs ("<40-hex> <refname>" lines).
std::string ResolveRef(const std::filesystem::path& git_dir,
                       const std::string& ref) {
  const std::string loose = ReadFirstLine(git_dir / ref);
  if (IsHex(loose) && loose.size() >= 12) return loose.substr(0, 12);
  std::ifstream packed(git_dir / "packed-refs");
  std::string line;
  while (packed && std::getline(packed, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '^') continue;
    const size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    if (line.substr(space + 1) == ref && IsHex(line.substr(0, space)) &&
        space >= 12) {
      return line.substr(0, 12);
    }
  }
  return std::string();
}

}  // namespace

std::string GitRevision() {
  std::error_code ec;
  std::filesystem::path dir = std::filesystem::current_path(ec);
  if (ec) return "unknown";
  for (; !dir.empty(); dir = dir.parent_path()) {
    const std::filesystem::path git_dir = dir / ".git";
    if (!std::filesystem::is_directory(git_dir, ec)) {
      if (dir == dir.parent_path()) break;
      continue;
    }
    const std::string head = ReadFirstLine(git_dir / "HEAD");
    if (head.rfind("ref: ", 0) == 0) {
      const std::string rev = ResolveRef(git_dir, head.substr(5));
      return rev.empty() ? "unknown" : rev;
    }
    if (IsHex(head) && head.size() >= 12) return head.substr(0, 12);
    return "unknown";
  }
  return "unknown";
}

namespace {

std::string Num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void WriteCounters(std::ostream& os, const obs::Prof::SpanAgg& agg) {
  const obs::CounterValues& t = agg.totals;
  os << "{\"spans\": " << agg.spans << ", \"cycles\": " << t.cycles
     << ", \"instructions\": " << t.instructions
     << ", \"cache_references\": " << t.cache_references
     << ", \"cache_misses\": " << t.cache_misses
     << ", \"branch_misses\": " << t.branch_misses
     << ", \"task_clock_ns\": " << t.task_clock_ns
     << ", \"page_faults\": " << t.page_faults
     << ", \"context_switches\": " << t.context_switches
     << ", \"ipc\": " << Num(t.Ipc())
     << ", \"cache_miss_rate\": " << Num(t.CacheMissRate()) << "}";
}

}  // namespace

bool AppendBenchHistory(const std::string& id, double wall_seconds,
                        const std::vector<TimedFit>& fits,
                        const Int8Gate* int8, const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream os(path, std::ios::app);
  if (!os) {
    std::cout << "[failed to append bench history to " << path << "]\n";
    return false;
  }
  // The "fit" PhaseSpan aggregate is the headline counter set: it covers
  // exactly the timed end-to-end fits a Prof session bracketed.
  const obs::Prof::SpanAgg fit_counters = obs::Prof::SnapshotSpan("fit");
  const obs::MemSample mem = obs::ReadSelfStatus();
  os << "{\"schema\": \"lncl.bench.v1\", \"bench\": \"" << id << "\""
     << ", \"unix_time\": " << static_cast<long long>(std::time(nullptr))
     << ", \"git_rev\": \"" << GitRevision() << "\""
     << ", \"host\": \"" << obs::HostFingerprint() << "\""
     << ", \"audit\": " << (LNCL_AUDIT_ENABLED ? "true" : "false")
     << ", \"prof_active\": "
     << (fit_counters.spans > 0 ? "true" : "false")
     << ", \"hw_counters_available\": "
     << (obs::Prof::HwCountersAvailable() ? "true" : "false")
     << ", \"sw_counters_available\": "
     << (obs::Prof::SwCountersAvailable() ? "true" : "false")
     << ", \"peak_rss_kb\": " << (mem.ok ? mem.vm_hwm_kb : 0)
     << ", \"wall_seconds\": " << Num(wall_seconds) << ", \"counters\": ";
  WriteCounters(os, fit_counters);
  os << ", \"fits\": [";
  for (size_t i = 0; i < fits.size(); ++i) {
    const TimedFit& fit = fits[i];
    const core::PhaseSeconds& p = fit.result.phase_seconds;
    os << (i ? ", " : "") << "{\"mode\": \"" << fit.mode << "\""
       << ", \"digest\": \"" << FitDigest(fit.result) << "\""
       << ", \"fit_seconds\": " << Num(p.total)
       << ", \"phase_seconds\": {\"m_step\": " << Num(p.m_step)
       << ", \"confusion\": " << Num(p.confusion)
       << ", \"e_step\": " << Num(p.e_step)
       << ", \"dev_eval\": " << Num(p.dev_eval) << "}}";
  }
  os << "]";
  if (int8 != nullptr) {
    os << ", \"int8_argmax_agreement\": " << Num(int8->argmax_agreement);
  }
  os << "}\n";
  if (os) {
    std::cout << "[bench history appended to " << path << "]\n";
    return true;
  }
  return false;
}

bool AppendBenchHistory(const std::string& id, double wall_seconds) {
  return AppendBenchHistory(id, wall_seconds, {}, nullptr);
}

}  // namespace lncl::bench
