#pragma once

// Append-only bench history (schema lncl.bench.v1) + the metadata it needs.
//
// Every bench run appends one JSONL record to results/BENCH_history.jsonl:
// fit digests, wall/phase seconds, perf-counter aggregates of the "fit"
// span (when a Prof session ran), peak RSS, git revision, and host
// fingerprint. Unlike results/BENCH_<id>.json — which each run overwrites —
// the history accumulates, so the perf trajectory across commits is a file,
// not folklore. tools/bench_compare.py diffs the newest record per
// (host, bench) against the committed baseline (results/bench_baseline.json)
// and fails on wall-time / cache-miss regressions.
//
// Record shape (one line, abridged):
//   {"schema": "lncl.bench.v1", "bench": "table2", "unix_time": ...,
//    "git_rev": "<12 hex or unknown>", "host": "<HostFingerprint()>",
//    "audit": false, "prof_active": true, "hw_counters_available": false,
//    "sw_counters_available": true, "peak_rss_kb": 123456,
//    "wall_seconds": 1.23,
//    "counters": {"spans": 2, "cycles": 0, ..., "ipc": 0.0, ...},
//    "fits": [{"mode": "batched", "digest": "...", "fit_seconds": 0.2,
//              "phase_seconds": {"m_step": ..., ...}}, ...],
//    "int8_argmax_agreement": 1.0}            // only when int8 != nullptr
//
// Fig-style benches with no timed fits call the two-argument overload; the
// record then carries an empty fits array and zero counters unless a Prof
// session supplied them.

#include <string>
#include <vector>

#include "bench_common.h"

namespace lncl::bench {

// Short (12-hex) git revision, read straight from .git — HEAD, the ref file
// it points at, or packed-refs — walking up from the current directory.
// "unknown" when no repository is reachable (e.g. scratch-dir smoke runs).
// No subprocess: benches must not fork to git.
std::string GitRevision();

// Appends one lncl.bench.v1 record. Returns false when the file cannot be
// opened/written (the bench itself is unaffected).
bool AppendBenchHistory(const std::string& id, double wall_seconds,
                        const std::vector<TimedFit>& fits,
                        const Int8Gate* int8 = nullptr,
                        const std::string& path =
                            "results/BENCH_history.jsonl");

// Convenience for benches without timed fits (figs, micro).
bool AppendBenchHistory(const std::string& id, double wall_seconds);

}  // namespace lncl::bench
