#include "bench_common.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/check.h"
#include "util/threadpool.h"

namespace lncl::bench {

Scale SentimentScale(const util::Config& config) {
  Scale scale;
  const bool full = config.GetBool("full", false);
  scale.train = config.GetInt("train", full ? 4999 : 1500);
  scale.dev = config.GetInt("dev", full ? 3000 : 400);
  scale.test = config.GetInt("test", full ? 2789 : 800);
  scale.annotators = config.GetInt("annotators", full ? 203 : 50);
  scale.epochs = config.GetInt("epochs", full ? 30 : 15);
  scale.runs = config.GetInt("runs", full ? 50 : 5);
  scale.batch = config.GetInt("batch", 50);
  scale.intra_threads = config.GetInt("intra_threads", 0);
  return scale;
}

Scale NerScale(const util::Config& config) {
  Scale scale;
  const bool full = config.GetBool("full", false);
  scale.train = config.GetInt("train", full ? 5985 : 900);
  scale.dev = config.GetInt("dev", full ? 2000 : 250);
  scale.test = config.GetInt("test", full ? 1250 : 350);
  scale.annotators = config.GetInt("annotators", full ? 47 : 30);
  scale.epochs = config.GetInt("epochs", full ? 30 : 15);
  scale.runs = config.GetInt("runs", full ? 30 : 5);
  // The paper's batch of 64 assumes ~6k sentences; at the reduced scale we
  // shrink the batch so the per-epoch optimizer step count stays comparable.
  scale.batch = config.GetInt("batch", full ? 64 : 16);
  // At reduced scale an epoch has ~10x fewer optimizer steps, so give
  // slow-starting methods (crowd layer, per-annotator nets) more patience.
  scale.patience = config.GetInt("patience", full ? 5 : 8);
  scale.intra_threads = config.GetInt("intra_threads", 0);
  return scale;
}

SentimentSetup MakeSentimentSetup(const Scale& scale, uint64_t seed) {
  util::Rng rng(seed);
  SentimentSetup setup;
  data::SentimentGenConfig gcfg;
  setup.corpus = data::GenerateSentimentCorpus(gcfg, scale.train, scale.dev,
                                               scale.test, &rng);
  crowd::CrowdConfig ccfg;
  ccfg.num_annotators = scale.annotators;
  ccfg.avg_per_instance = 5.5;  // the dataset's 5.55 labels/instance
  // Calibrated so MV inference lands near the paper's 88.6% while leaving
  // headroom for the model-based aggregators (DS/GLAD ~91.5).
  ccfg.frac_good = 0.72;
  ccfg.good_lo = 0.86;
  ccfg.good_hi = 0.97;
  ccfg.frac_mediocre = 0.20;
  ccfg.mediocre_lo = 0.62;
  ccfg.mediocre_hi = 0.84;
  ccfg.difficulty_strength = 0.28;
  ccfg.trap_frac = 0.04;
  ccfg.trap_frac_contrast = 0.15;
  setup.simulator = std::make_unique<crowd::CrowdSimulator>(
      crowd::CrowdSimulator::MakeClassification(ccfg, 2, &rng));
  setup.annotations = setup.simulator->Annotate(setup.corpus.train, &rng);
  return setup;
}

NerSetup MakeNerSetup(const Scale& scale, uint64_t seed) {
  util::Rng rng(seed);
  NerSetup setup;
  data::NerGenConfig gcfg;
  setup.corpus = data::GenerateNerCorpus(gcfg, scale.train, scale.dev,
                                         scale.test, &rng);
  crowd::CrowdConfig ccfg;
  ccfg.num_annotators = scale.annotators;
  ccfg.avg_per_instance = 5.0;
  // Calibrated toward the paper's crowd: annotator F1 spanning ~0.18-0.89
  // and MV inference F1 near 67.
  ccfg.frac_good = 0.45;
  ccfg.good_lo = 0.72;
  ccfg.good_hi = 0.92;
  ccfg.frac_mediocre = 0.37;
  ccfg.mediocre_lo = 0.50;
  ccfg.mediocre_hi = 0.72;
  ccfg.spam_lo = 0.15;
  ccfg.spam_hi = 0.45;
  ccfg.ner_ignore = 0.40;
  ccfg.ner_boundary = 0.60;
  ccfg.ner_type = 0.38;
  ccfg.ner_false_positive = 0.30;
  // Correlated per-entity errors shared by the whole crowd: caps the
  // inference ceiling near the paper's band (best aggregators ~79 F1).
  ccfg.seq_trap_ignore = 0.07;
  ccfg.seq_trap_type = 0.05;
  ccfg.seq_trap_boundary = 0.04;
  setup.simulator = std::make_unique<crowd::CrowdSimulator>(
      crowd::CrowdSimulator::MakeSequence(ccfg, &rng));
  setup.annotations =
      setup.simulator->AnnotateSequences(setup.corpus.train, &rng);
  return setup;
}

models::TextCnnConfig SentimentModelConfig() {
  models::TextCnnConfig config;
  config.windows = {3, 4, 5};
  config.feature_maps = 16;  // paper: 100 per window on GPU
  config.dropout = 0.5;
  config.num_classes = 2;
  return config;
}

models::NerTaggerConfig NerModelConfig() {
  models::NerTaggerConfig config;
  config.conv_window = 5;
  config.conv_features = 64;  // paper: 512 on GPU
  config.gru_hidden = 32;     // paper: 50
  config.dropout = 0.5;
  config.num_classes = 9;
  return config;
}

nn::OptimizerConfig SentimentOptimizer() {
  nn::OptimizerConfig opt;
  opt.kind = "adadelta";
  opt.lr = 1.0;
  opt.lr_decay = 0.5;      // "decay by half every 5 epochs"
  opt.lr_decay_every = 5;
  return opt;
}

nn::OptimizerConfig NerOptimizer() {
  nn::OptimizerConfig opt;
  opt.kind = "adam";
  opt.lr = 0.002;  // paper: 0.001 at 4x width; rescaled for the CPU model
  return opt;
}

core::LogicLnclConfig SentimentLnclConfig(const Scale& scale) {
  core::LogicLnclConfig config;
  config.C = 5.0;
  config.k_schedule = core::SentimentKSchedule();
  config.weighted_loss = false;  // Eq. 6 objective on sentiment
  config.epochs = scale.epochs;
  config.batch_size = scale.batch;
  config.patience = 5;
  config.optimizer = SentimentOptimizer();
  config.threads = scale.intra_threads;
  return config;
}

core::LogicLnclConfig NerLnclConfig(const Scale& scale) {
  core::LogicLnclConfig config;
  config.C = 5.0;
  config.k_schedule = core::NerKSchedule();
  config.weighted_loss = true;  // Eq. 5 objective on NER
  config.epochs = scale.epochs;
  config.batch_size = scale.batch;
  config.patience = scale.patience;
  config.optimizer = NerOptimizer();
  config.threads = scale.intra_threads;
  return config;
}

std::string Pct(const std::vector<double>& xs, bool with_std) {
  if (xs.empty()) return "-";
  const double mean = util::Mean(xs) * 100.0;
  if (!with_std || xs.size() < 2) return util::FormatFixed(mean, 2);
  return util::FormatMeanStd(mean, util::StdDev(xs) * 100.0);
}

void ForEachRun(const util::Config& config, int runs,
                const std::function<void(int, uint64_t)>& fn) {
  const int threads = config.GetInt("threads", 0);
  util::ThreadPool::ParallelFor(runs, threads, [&fn](int r) {
    fn(r, 0x5bd1e995UL + 7919ULL * static_cast<uint64_t>(r));
  });
}

void PrintConfigBanner(const std::string& bench, const Scale& scale,
                       const util::Config& config) {
  std::cout << "=================================================\n"
            << bench << "\n"
            << "  train/dev/test: " << scale.train << "/" << scale.dev << "/"
            << scale.test << "\n"
            << "  annotators: " << scale.annotators
            << "  epochs: " << scale.epochs << "  runs: " << scale.runs
            << "\n"
            << "  mode: " << (config.GetBool("full", false) ? "FULL (paper scale)"
                                                            : "default (reduced)")
            << "\n"
            << "=================================================\n";
}

void EmitTable(util::Table* table, const std::string& id) {
  table->Print(std::cout);
  std::filesystem::create_directories("results");
  const std::string path = "results/" + id + ".csv";
  if (table->WriteCsv(path)) {
    std::cout << "[csv written to " << path << "]\n";
  }
}

void PrintPhaseSeconds(const std::string& label,
                       const core::PhaseSeconds& phases) {
  std::cout << label << ": total " << util::FormatFixed(phases.total, 2)
            << "s  (m_step " << util::FormatFixed(phases.m_step, 2)
            << "s, confusion " << util::FormatFixed(phases.confusion, 2)
            << "s, e_step " << util::FormatFixed(phases.e_step, 2)
            << "s, dev_eval " << util::FormatFixed(phases.dev_eval, 2)
            << "s)\n";
}

std::string FitDigest(const core::LogicLnclResult& result) {
  // 64-bit FNV-1a over the exact bytes of every double in the outcome.
  // Hashing bytes (not formatted values) makes the digest sensitive to
  // single-ulp differences that fixed-precision printing would hide.
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](const void* data, size_t n) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  auto mix_double = [&mix](double x) {
    uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    mix(&bits, sizeof(bits));
  };
  mix_double(result.best_dev_score);
  mix(&result.best_epoch, sizeof(result.best_epoch));
  for (double x : result.dev_curve) mix_double(x);
  for (double x : result.loss_curve) mix_double(x);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

namespace {
int ArgmaxRow(const util::Matrix& m, int row) {
  int best = 0;
  for (int j = 1; j < m.cols(); ++j) {
    if (m(row, j) > m(row, best)) best = j;
  }
  return best;
}
}  // namespace

Int8Gate MeasureInt8Gate(
    core::LogicLncl* m, const data::Dataset& eval_set,
    const std::function<double(const std::vector<util::Matrix>&)>& score) {
  Int8Gate gate;
  m->SetQuantizedPredict(false);
  const std::vector<util::Matrix> fp32 = m->PredictStudentBatch(eval_set);
  m->SetQuantizedPredict(true);
  const std::vector<util::Matrix> int8 = m->PredictStudentBatch(eval_set);
  m->SetQuantizedPredict(false);
  gate.fp32_score = score(fp32);
  gate.int8_score = score(int8);
  int agree = 0;
  for (size_t i = 0; i < fp32.size(); ++i) {
    for (int r = 0; r < fp32[i].rows(); ++r) {
      ++gate.rows;
      if (ArgmaxRow(fp32[i], r) == ArgmaxRow(int8[i], r)) ++agree;
    }
  }
  gate.argmax_agreement =
      gate.rows > 0 ? static_cast<double>(agree) / gate.rows : 1.0;
  return gate;
}

void PrintInt8Gate(const Int8Gate& gate) {
  std::cout << "int8 serving gate: argmax agreement "
            << util::FormatFixed(gate.argmax_agreement * 100.0, 2) << "% over "
            << gate.rows << " rows; score fp32 "
            << util::FormatFixed(gate.fp32_score * 100.0, 2) << " vs int8 "
            << util::FormatFixed(gate.int8_score * 100.0, 2) << " (delta "
            << util::FormatFixed(
                   (gate.int8_score - gate.fp32_score) * 100.0, 3)
            << ")\n";
}

namespace {
void WriteFitJson(std::ostream& os, const TimedFit& fit) {
  const core::PhaseSeconds& p = fit.result.phase_seconds;
  os << "    {\"mode\": \"" << fit.mode << "\", "
     << "\"audit\": " << (LNCL_AUDIT_ENABLED ? "true" : "false") << ", "
     << "\"result_digest\": \"" << FitDigest(fit.result) << "\", "
     << "\"best_dev_score\": " << util::FormatFixed(
            fit.result.best_dev_score, 10) << ", "
     << "\"fit_seconds\": " << util::FormatFixed(p.total, 4) << ", "
     << "\"epochs_run\": " << fit.result.epochs_run << ", "
     << "\"phase_seconds\": {"
     << "\"m_step\": " << util::FormatFixed(p.m_step, 4) << ", "
     << "\"confusion\": " << util::FormatFixed(p.confusion, 4) << ", "
     << "\"e_step\": " << util::FormatFixed(p.e_step, 4) << ", "
     << "\"dev_eval\": " << util::FormatFixed(p.dev_eval, 4) << "}}";
}
}  // namespace

void EmitBenchJson(const std::string& id, double bench_seconds,
                   const std::vector<TimedFit>& fits, const Int8Gate* int8) {
  std::filesystem::create_directories("results");
  const std::string path = "results/BENCH_" + id + ".json";
  std::ofstream os(path);
  if (!os) {
    std::cout << "[failed to open " << path << "]\n";
    return;
  }
  os << "{\n  \"bench\": \"" << id << "\",\n"
     << "  \"bench_seconds\": " << util::FormatFixed(bench_seconds, 4)
     << ",\n  \"timed_fits\": [\n";
  for (size_t i = 0; i < fits.size(); ++i) {
    WriteFitJson(os, fits[i]);
    os << (i + 1 < fits.size() ? ",\n" : "\n");
  }
  os << "  ]";
  double batched = 0.0, per_instance = 0.0;
  for (const TimedFit& fit : fits) {
    if (fit.mode == "batched") batched = fit.result.phase_seconds.total;
    if (fit.mode == "per_instance") {
      per_instance = fit.result.phase_seconds.total;
    }
  }
  if (batched > 0.0 && per_instance > 0.0) {
    os << ",\n  \"speedup_end_to_end\": "
       << util::FormatFixed(per_instance / batched, 3);
    std::cout << "end-to-end fit speedup (per_instance / batched): "
              << util::FormatFixed(per_instance / batched, 2) << "x\n";
  }
  if (int8 != nullptr) {
    os << ",\n  \"int8_gate\": {"
       << "\"argmax_agreement\": "
       << util::FormatFixed(int8->argmax_agreement, 6) << ", "
       << "\"rows\": " << int8->rows << ", "
       << "\"fp32_score\": " << util::FormatFixed(int8->fp32_score, 10)
       << ", "
       << "\"int8_score\": " << util::FormatFixed(int8->int8_score, 10)
       << ", "
       << "\"score_delta\": "
       << util::FormatFixed(int8->int8_score - int8->fp32_score, 10) << "}";
  }
  os << "\n}\n";
  std::cout << "[bench json written to " << path << "]\n";
}

}  // namespace lncl::bench
