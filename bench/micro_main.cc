// Combined micro-benchmark driver: links micro_nn.cc and micro_logic.cc
// (their BENCHMARK_MAINs are compiled out via LNCL_MICRO_COMBINED) and
// defaults the reporter to machine-readable JSON at results/BENCH_micro.json,
// so perf regressions can be diffed per kernel (ns/op) across commits:
//
//   ./bench/micro_all                       # console + JSON side file
//   ./bench/micro_all --benchmark_out=...   # explicit output wins
//
// Any google-benchmark flag still applies (--benchmark_filter, etc.).
// Each run also appends a wall-time + peak-RSS record to
// results/BENCH_history.jsonl (schema lncl.bench.v1) for bench_compare.py.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "bench_history.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  lncl::util::Stopwatch bench_timer;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::vector<std::string> extra;
  if (!has_out) {
    std::filesystem::create_directories("results");
    extra.push_back("--benchmark_out=results/BENCH_micro.json");
    extra.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args(argv, argv + argc);
  for (std::string& s : extra) args.push_back(s.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lncl::bench::AppendBenchHistory("micro", bench_timer.Seconds());
  return 0;
}
