#pragma once

// Shared harness pieces for the table/figure benchmarks: experiment scales,
// corpus + crowd construction, the paper's Table-I configurations, and
// aggregation across runs.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/logic_lncl.h"
#include "crowd/annotation.h"
#include "crowd/simulator.h"
#include "data/ner_gen.h"
#include "data/sentiment_gen.h"
#include "models/ner_tagger.h"
#include "models/text_cnn.h"
#include "util/config.h"
#include "util/stats.h"
#include "util/table.h"

namespace lncl::bench {

// Experiment scale. The default is laptop-sized so the full bench sweep
// finishes in minutes; --full (or LNCL_FULL=1) selects the paper-sized
// configuration.
struct Scale {
  int train = 0;
  int dev = 0;
  int test = 0;
  int annotators = 0;
  int epochs = 0;
  int runs = 0;
  int batch = 0;
  int patience = 5;
  // Deterministic intra-model threads per fit (LogicLnclConfig.threads):
  // 0 keeps the legacy serial trajectory; >=1 selects the sharded
  // bit-reproducible path with that many threads. Set --intra_threads when
  // runs < cores and the per-run parallelism of ForEachRun leaves cores idle.
  int intra_threads = 0;
};

Scale SentimentScale(const util::Config& config);
Scale NerScale(const util::Config& config);

// A generated task: corpus + simulated crowd + crowd labels on train.
struct SentimentSetup {
  data::SentimentCorpus corpus;
  std::unique_ptr<crowd::CrowdSimulator> simulator;
  crowd::AnnotationSet annotations;
};

struct NerSetup {
  data::NerCorpus corpus;
  std::unique_ptr<crowd::CrowdSimulator> simulator;
  crowd::AnnotationSet annotations;
};

// Deterministic in `seed`.
SentimentSetup MakeSentimentSetup(const Scale& scale, uint64_t seed);
NerSetup MakeNerSetup(const Scale& scale, uint64_t seed);

// Model architectures (reduced-width versions of the paper's networks).
models::TextCnnConfig SentimentModelConfig();
models::NerTaggerConfig NerModelConfig();

// Table-I optimization settings.
// Sentiment: Adadelta, lr 1.0 halved every 5 epochs, batch 50.
// NER: Adam, lr 0.001, batch 64. (Learning rates are rescaled for the
// reduced-width CPU models; see bench_common.cc.)
nn::OptimizerConfig SentimentOptimizer();
nn::OptimizerConfig NerOptimizer();

core::LogicLnclConfig SentimentLnclConfig(const Scale& scale);
core::LogicLnclConfig NerLnclConfig(const Scale& scale);

// Scores of one method across runs (fractions in [0, 1]; printed as %).
struct MethodScores {
  std::string name;
  std::vector<double> prediction;  // accuracy or F1 per run
  std::vector<double> inference;
  // NER extras.
  std::vector<double> precision;
  std::vector<double> recall;
  std::vector<double> inf_precision;
  std::vector<double> inf_recall;
};

// "mean" or "mean ±std" (percent) for a metric vector; "-" when empty.
std::string Pct(const std::vector<double>& xs, bool with_std = false);

// Runs fn(run_index, seed) for every run, in parallel across a thread pool
// sized by --threads (default: hardware concurrency).
void ForEachRun(const util::Config& config, int runs,
                const std::function<void(int, uint64_t)>& fn);

// Echoes the experimental configuration (the paper's Table I analogue).
void PrintConfigBanner(const std::string& bench, const Scale& scale,
                       const util::Config& config);

// Writes the table to stdout and a CSV next to the binary (results/<id>.csv
// under the current working directory).
void EmitTable(util::Table* table, const std::string& id);

// One end-to-end Logic-LNCL fit timed under a prediction-pipeline mode:
// "batched" = LogicLnclConfig.batch_predict on (length-bucketed PredictBatch
// for the E-step, projection, and dev eval), "per_instance" = the legacy
// one-Predict-per-instance pipeline (the pre-batching baseline).
struct TimedFit {
  std::string mode;
  core::LogicLnclResult result;
};

// One-line wall-clock breakdown of a fit (phase_seconds).
void PrintPhaseSeconds(const std::string& label,
                       const core::PhaseSeconds& phases);

// FNV-1a over the raw bytes of the fit's numeric outcome (best dev score,
// best epoch, and the full per-epoch dev/loss curves), as a 16-hex-digit
// string. Any single-ulp divergence anywhere in the training trajectory
// changes the curves, so equal digests across two binaries witness that
// they computed bit-identical fits. scripts/bench_audit_overhead.sh uses
// this to assert that -DLNCL_AUDIT=ON only reads: same seed, same digest.
std::string FitDigest(const core::LogicLnclResult& result);

// Int8-vs-fp32 serving gate: scores the same fitted model through
// PredictStudentBatch twice (fp32, then config.quantized_predict = true) and
// records row-level argmax agreement plus a task metric for each arm.
// `score` maps batched posteriors to the bench's headline metric (accuracy
// for sentiment, span-F1 for NER). Leaves the model back in fp32 mode.
struct Int8Gate {
  double argmax_agreement = 0.0;  // fraction of rows with equal argmax
  double fp32_score = 0.0;
  double int8_score = 0.0;
  int rows = 0;                   // rows compared (tokens for sequences)
};

Int8Gate MeasureInt8Gate(
    core::LogicLncl* m, const data::Dataset& eval_set,
    const std::function<double(const std::vector<util::Matrix>&)>& score);

// One-line report of the gate.
void PrintInt8Gate(const Int8Gate& gate);

// Writes results/BENCH_<id>.json: the bench-wide wall time plus, per timed
// fit, the end-to-end Fit seconds, the per-phase breakdown, whether the
// binary was an audit build, and FitDigest of the result. When both a
// "batched" and a "per_instance" fit are present, also records their
// end-to-end speedup (per_instance total / batched total). When `int8` is
// non-null, records the quantized-serving gate next to the fits.
void EmitBenchJson(const std::string& id, double bench_seconds,
                   const std::vector<TimedFit>& fits,
                   const Int8Gate* int8 = nullptr);

}  // namespace lncl::bench

