// Reproduces Figure 4: boxplots of (a) the number of instances annotated per
// annotator and (b) annotator accuracy / F1 against ground truth, for both
// datasets. Rendered as five-number summaries (min / Q1 / median / Q3 / max).
#include <iostream>

#include "bench_common.h"
#include "bench_history.h"
#include "crowd/confusion.h"
#include "eval/metrics.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/timer.h"

namespace lncl::bench {
namespace {

void PrintSummary(util::Table* table, const std::string& label,
                  const std::vector<double>& xs) {
  const util::BoxplotSummary s = util::Summarize(xs);
  table->AddRow({label, util::FormatFixed(s.min, 2),
                 util::FormatFixed(s.q1, 2), util::FormatFixed(s.median, 2),
                 util::FormatFixed(s.q3, 2), util::FormatFixed(s.max, 2),
                 util::FormatFixed(s.mean, 2), std::to_string(s.n)});
}

void Run(int argc, char** argv) {
  const util::Config config(argc, argv);
  util::Stopwatch bench_timer;
  util::Table table("Figure 4: Annotator statistics (boxplot summaries)");
  table.SetHeader(
      {"Statistic", "Min", "Q1", "Median", "Q3", "Max", "Mean", "N"});

  // ---- Sentiment. ----
  {
    const Scale scale = SentimentScale(config);
    const SentimentSetup setup = MakeSentimentSetup(scale, 1);
    const auto labels = setup.annotations.LabelsPerAnnotator();
    std::vector<double> counts;
    for (long c : labels) {
      if (c > 0) counts.push_back(static_cast<double>(c));
    }
    PrintSummary(&table, "Sentiment: #annotations per annotator", counts);

    const crowd::ConfusionSet empirical = crowd::EmpiricalConfusions(
        setup.annotations, setup.corpus.train);
    std::vector<double> accuracies;
    for (size_t j = 0; j < empirical.size(); ++j) {
      if (labels[j] < 5) continue;  // skip anomalous annotators (paper)
      // Empirical accuracy: diagonal weighted by labels... the mean diagonal
      // equals balanced accuracy; classes are balanced here.
      accuracies.push_back(empirical[j].Reliability());
    }
    PrintSummary(&table, "Sentiment: annotator accuracy", accuracies);
  }
  table.AddSeparator();

  // ---- NER. ----
  {
    const Scale scale = NerScale(config);
    const NerSetup setup = MakeNerSetup(scale, 2);
    const auto labels = setup.annotations.LabelsPerAnnotator();
    std::vector<double> counts;
    for (long c : labels) {
      if (c > 0) counts.push_back(static_cast<double>(c));
    }
    PrintSummary(&table, "NER: #token labels per annotator", counts);

    // Per-annotator strict span F1 against gold (the paper reports a
    // 17.60%-89.11% range on the real crowd).
    std::vector<double> f1s;
    for (int j = 0; j < setup.annotations.num_annotators(); ++j) {
      std::vector<std::vector<int>> pred;
      data::Dataset gold;
      gold.num_classes = setup.corpus.train.num_classes;
      gold.sequence = true;
      for (int i = 0; i < setup.annotations.num_instances(); ++i) {
        for (const crowd::AnnotatorLabels& e :
             setup.annotations.instance(i).entries) {
          if (e.annotator != j) continue;
          pred.push_back(e.labels);
          gold.instances.push_back(setup.corpus.train.instances[i]);
        }
      }
      if (gold.size() < 5) continue;
      f1s.push_back(eval::SpanF1(pred, gold).f1 * 100.0);
    }
    PrintSummary(&table, "NER: annotator span F1 (%)", f1s);
  }

  EmitTable(&table, "fig4_annotator_stats");
  AppendBenchHistory("fig4_annotator_stats", bench_timer.Seconds());
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  lncl::bench::Run(argc, argv);
  return 0;
}
