// Reproduces Table IV: the ablation study on both datasets.
//
//   MV-Rule / GLAD-Rule (AggNet-Rule on NER): rule distillation with a FIXED
//       stage-1 estimate in place of the iteratively refined q_a;
//   w/o-Rule: Logic-LNCL with the logic-knowledge distillation removed
//       (k = 0; equals AggNet);
//   MV-t: the plain MV-Classifier with the teacher trick bolted on at test
//       time;
//   our-other-rules: the framework with deliberately weak/wrong rules —
//       "however" instead of "but" for sentiment; the unrealistic
//       I-X => B-X-only transition rule for NER;
//   Logic-LNCL student/teacher: the full method.
//
// Reported: prediction (test) and inference (train) accuracy / span-F1.
#include <iostream>
#include <map>
#include <mutex>

#include "baselines/fixed_target.h"
#include "baselines/two_stage.h"
#include "bench_common.h"
#include "bench_history.h"
#include "core/ner_rules.h"
#include "core/sentiment_rules.h"
#include "eval/metrics.h"
#include "inference/glad.h"
#include "inference/majority_vote.h"
#include "util/logging.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace lncl::bench {
namespace {

struct Cell {
  std::vector<double> prediction;
  std::vector<double> inference;
};

class Collector {
 public:
  void Add(const std::string& name, const std::string& dataset,
           double prediction, double inference) {
    std::unique_lock<std::mutex> lock(mu_);
    Cell& c = cells_[name + "|" + dataset];
    c.prediction.push_back(prediction);
    c.inference.push_back(inference);
  }
  Cell Get(const std::string& name, const std::string& dataset) {
    std::unique_lock<std::mutex> lock(mu_);
    return cells_[name + "|" + dataset];
  }

 private:
  std::mutex mu_;
  std::map<std::string, Cell> cells_;
};

// ---------------------------------------------------------------- Sentiment

void RunSentiment(const Scale& scale, util::ThreadPool* pool,
                  Collector* collect) {
  // Setup is shared by reference across jobs; it must outlive them, so it is
  // heap-allocated and leaked deliberately (process-lifetime bench data).
  auto* setup = new SentimentSetup(MakeSentimentSetup(scale, 1));
  const auto items = inference::ItemsPerInstance(setup->corpus.train);
  auto* cnn = new models::ModelFactory(models::TextCnn::Factory(
      SentimentModelConfig(), setup->corpus.embeddings));

  util::Rng post_rng(17);
  auto* mv_posteriors = new std::vector<util::Matrix>(
      inference::MajorityVote().Infer(setup->annotations, items, &post_rng));
  auto* glad_posteriors = new std::vector<util::Matrix>(
      inference::Glad().Infer(setup->annotations, items, &post_rng));
  const double mv_inf =
      eval::PosteriorAccuracy(*mv_posteriors, setup->corpus.train);
  const double glad_inf =
      eval::PosteriorAccuracy(*glad_posteriors, setup->corpus.train);

  for (int r = 0; r < scale.runs; ++r) {
    const uint64_t seed = 6101ULL * (r + 1);

    // MV-Rule / GLAD-Rule: fixed-target distillation.
    struct FixedVariant {
      const char* name;
      const std::vector<util::Matrix>* base;
      double base_inference;
    };
    const FixedVariant fixed[] = {
        {"MV-Rule", mv_posteriors, mv_inf},
        {"GLAD-Rule", glad_posteriors, glad_inf},
    };
    for (const FixedVariant& v : fixed) {
      pool->Submit([=] {
        util::Rng rng(seed ^ 0x9a);
        baselines::FixedTargetConfig fcfg;
        fcfg.epochs = scale.epochs;
        fcfg.batch_size = scale.batch;
        fcfg.patience = scale.patience;
        fcfg.k_schedule = core::SentimentKSchedule();
        fcfg.optimizer = SentimentOptimizer();
        std::unique_ptr<models::Model> model = (*cnn)(&rng);
        core::SentimentButRule rule(model.get(), setup->corpus.but_token);
        baselines::FixedTargetTrainer m(fcfg, std::move(model), &rule);
        const auto result =
            m.Fit(setup->corpus.train, *v.base, setup->corpus.dev, &rng);
        collect->Add(v.name, "sent",
                     eval::Accuracy(
                         [&m](const data::Instance& x) { return m.Predict(x); },
                         setup->corpus.test),
                     eval::PosteriorAccuracy(result.qf, setup->corpus.train));
      });
    }

    // w/o-Rule (AggNet).
    pool->Submit([=] {
      util::Rng rng(seed ^ 0xab);
      core::LogicLnclConfig lcfg = SentimentLnclConfig(scale);
      lcfg.k_schedule = core::ConstantK(0.0);
      core::LogicLncl m(lcfg, *cnn, nullptr);
      m.Fit(setup->corpus.train, setup->annotations, setup->corpus.dev, &rng);
      collect->Add("w/o-Rule", "sent",
                   eval::Accuracy(
                       [&m](const data::Instance& x) {
                         return m.PredictStudent(x);
                       },
                       setup->corpus.test),
                   eval::PosteriorAccuracy(m.qf(), setup->corpus.train));
    });

    // MV-t: plain MV classifier + teacher trick at test time.
    pool->Submit([=] {
      util::Rng rng(seed ^ 0xbc);
      baselines::TwoStageConfig ts;
      ts.epochs = scale.epochs;
      ts.batch_size = scale.batch;
      ts.patience = scale.patience;
      ts.optimizer = SentimentOptimizer();
      baselines::TwoStage m(ts, *cnn);
      m.FitOnTargets(setup->corpus.train,
                     baselines::HardenTargets(*mv_posteriors),
                     setup->corpus.dev, &rng);
      core::SentimentButRule rule(m.model(), setup->corpus.but_token);
      collect->Add("MV-t", "sent",
                   eval::Accuracy(
                       [&](const data::Instance& x) {
                         return m.PredictWithRules(x, rule, 5.0);
                       },
                       setup->corpus.test),
                   mv_inf);
    });

    // our-other-rules: the weak "however" rule.
    pool->Submit([=] {
      util::Rng rng(seed ^ 0xcd);
      std::unique_ptr<models::Model> model = (*cnn)(&rng);
      core::SentimentButRule rule(model.get(), setup->corpus.however_token);
      const core::LogicLnclConfig lcfg = SentimentLnclConfig(scale);
      core::LogicLncl m(lcfg, std::move(model), &rule);
      m.Fit(setup->corpus.train, setup->annotations, setup->corpus.dev, &rng);
      const double inf =
          eval::PosteriorAccuracy(m.qf(), setup->corpus.train);
      collect->Add("our-other-rules-student", "sent",
                   eval::Accuracy(
                       [&m](const data::Instance& x) {
                         return m.PredictStudent(x);
                       },
                       setup->corpus.test),
                   inf);
      collect->Add("our-other-rules-teacher", "sent",
                   eval::Accuracy(
                       [&m](const data::Instance& x) {
                         return m.PredictTeacher(x);
                       },
                       setup->corpus.test),
                   inf);
    });

    // Full Logic-LNCL.
    pool->Submit([=] {
      util::Rng rng(seed ^ 0xde);
      std::unique_ptr<models::Model> model = (*cnn)(&rng);
      core::SentimentButRule rule(model.get(), setup->corpus.but_token);
      const core::LogicLnclConfig lcfg = SentimentLnclConfig(scale);
      core::LogicLncl m(lcfg, std::move(model), &rule);
      m.Fit(setup->corpus.train, setup->annotations, setup->corpus.dev, &rng);
      const double inf =
          eval::PosteriorAccuracy(m.qf(), setup->corpus.train);
      collect->Add("Logic-LNCL-student", "sent",
                   eval::Accuracy(
                       [&m](const data::Instance& x) {
                         return m.PredictStudent(x);
                       },
                       setup->corpus.test),
                   inf);
      collect->Add("Logic-LNCL-teacher", "sent",
                   eval::Accuracy(
                       [&m](const data::Instance& x) {
                         return m.PredictTeacher(x);
                       },
                       setup->corpus.test),
                   inf);
    });
  }
}

// ---------------------------------------------------------------------- NER

void RunNer(const util::Config& config, const Scale& scale,
            util::ThreadPool* pool, Collector* collect) {
  auto* setup = new NerSetup(MakeNerSetup(scale, 2));
  const auto items = inference::ItemsPerInstance(setup->corpus.train);
  auto* tagger = new models::ModelFactory(models::NerTagger::Factory(
      NerModelConfig(), setup->corpus.embeddings));
  auto* good_rule = new std::unique_ptr<logic::SequenceRuleProjector>(
      core::MakeNerRuleProjector());
  auto* bad_rule = new std::unique_ptr<logic::SequenceRuleProjector>(
      core::MakeBadNerRuleProjector());

  util::Rng post_rng(19);
  auto* mv_posteriors = new std::vector<util::Matrix>(
      inference::MajorityVote().Infer(setup->annotations, items, &post_rng));
  const double mv_inf =
      eval::PosteriorSpanF1(*mv_posteriors, setup->corpus.train).f1;

  for (int r = 0; r < scale.runs; ++r) {
    const uint64_t seed = 9203ULL * (r + 1);

    // MV-Rule (fixed MV targets + transition rules).
    pool->Submit([=] {
      util::Rng rng(seed ^ 0x9a);
      baselines::FixedTargetConfig fcfg;
      fcfg.epochs = scale.epochs;
      fcfg.batch_size = scale.batch;
      fcfg.patience = scale.patience;
      fcfg.k_schedule = core::NerKSchedule();
      fcfg.optimizer = NerOptimizer();
      baselines::FixedTargetTrainer m(fcfg, *tagger, good_rule->get());
      const auto result =
          m.Fit(setup->corpus.train, *mv_posteriors, setup->corpus.dev, &rng);
      collect->Add("MV-Rule", "ner",
                   eval::SpanF1(
                       [&m](const data::Instance& x) { return m.Predict(x); },
                       setup->corpus.test)
                       .f1,
                   eval::PosteriorSpanF1(result.qf, setup->corpus.train).f1);
    });

    // AggNet-Rule (the paper's NER replacement for GLAD-Rule) + w/o-Rule:
    // one AggNet fit provides both the w/o-Rule row and the fixed targets.
    pool->Submit([=] {
      util::Rng rng(seed ^ 0xab);
      core::LogicLnclConfig lcfg = NerLnclConfig(scale);
      lcfg.k_schedule = core::ConstantK(0.0);
      core::LogicLncl aggnet(lcfg, *tagger, nullptr);
      aggnet.Fit(setup->corpus.train, setup->annotations, setup->corpus.dev,
                 &rng);
      collect->Add("w/o-Rule", "ner",
                   eval::SpanF1(
                       [&aggnet](const data::Instance& x) {
                         return aggnet.PredictStudent(x);
                       },
                       setup->corpus.test)
                       .f1,
                   eval::PosteriorSpanF1(aggnet.qf(), setup->corpus.train).f1);

      baselines::FixedTargetConfig fcfg;
      fcfg.epochs = scale.epochs;
      fcfg.batch_size = scale.batch;
      fcfg.patience = scale.patience;
      fcfg.k_schedule = core::NerKSchedule();
      fcfg.optimizer = NerOptimizer();
      baselines::FixedTargetTrainer m(fcfg, *tagger, good_rule->get());
      const auto result =
          m.Fit(setup->corpus.train, aggnet.qf(), setup->corpus.dev, &rng);
      collect->Add("GLAD-Rule", "ner",
                   eval::SpanF1(
                       [&m](const data::Instance& x) { return m.Predict(x); },
                       setup->corpus.test)
                       .f1,
                   eval::PosteriorSpanF1(result.qf, setup->corpus.train).f1);
    });

    // MV-t.
    pool->Submit([=] {
      util::Rng rng(seed ^ 0xbc);
      baselines::TwoStageConfig ts;
      ts.epochs = scale.epochs;
      ts.batch_size = scale.batch;
      ts.patience = scale.patience;
      ts.optimizer = NerOptimizer();
      baselines::TwoStage m(ts, *tagger);
      m.FitOnTargets(setup->corpus.train,
                     baselines::HardenTargets(*mv_posteriors),
                     setup->corpus.dev, &rng);
      collect->Add("MV-t", "ner",
                   eval::SpanF1(
                       [&](const data::Instance& x) {
                         return m.PredictWithRules(x, **good_rule, 5.0);
                       },
                       setup->corpus.test)
                       .f1,
                   mv_inf);
    });

    // our-other-rules: the unrealistic transition rule.
    pool->Submit([=] {
      util::Rng rng(seed ^ 0xcd);
      const core::LogicLnclConfig lcfg = NerLnclConfig(scale);
      core::LogicLncl m(lcfg, *tagger, bad_rule->get());
      m.Fit(setup->corpus.train, setup->annotations, setup->corpus.dev, &rng);
      const double inf =
          eval::PosteriorSpanF1(m.qf(), setup->corpus.train).f1;
      collect->Add("our-other-rules-student", "ner",
                   eval::SpanF1(
                       [&m](const data::Instance& x) {
                         return m.PredictStudent(x);
                       },
                       setup->corpus.test)
                       .f1,
                   inf);
      collect->Add("our-other-rules-teacher", "ner",
                   eval::SpanF1(
                       [&m](const data::Instance& x) {
                         return m.PredictTeacher(x);
                       },
                       setup->corpus.test)
                       .f1,
                   inf);
    });

    // Full Logic-LNCL.
    pool->Submit([=] {
      util::Rng rng(seed ^ 0xde);
      const core::LogicLnclConfig lcfg = NerLnclConfig(scale);
      core::LogicLncl m(lcfg, *tagger, good_rule->get());
      m.Fit(setup->corpus.train, setup->annotations, setup->corpus.dev, &rng);
      const double inf =
          eval::PosteriorSpanF1(m.qf(), setup->corpus.train).f1;
      collect->Add("Logic-LNCL-student", "ner",
                   eval::SpanF1(
                       [&m](const data::Instance& x) {
                         return m.PredictStudent(x);
                       },
                       setup->corpus.test)
                       .f1,
                   inf);
      collect->Add("Logic-LNCL-teacher", "ner",
                   eval::SpanF1(
                       [&m](const data::Instance& x) {
                         return m.PredictTeacher(x);
                       },
                       setup->corpus.test)
                       .f1,
                   inf);
    });
  }
  (void)config;
}

void Run(int argc, char** argv) {
  const util::Config config(argc, argv);
  util::Stopwatch bench_timer;
  Scale sent_scale = SentimentScale(config);
  Scale ner_scale = NerScale(config);
  PrintConfigBanner("Table IV — Ablation study (both datasets)", sent_scale,
                    config);

  Collector collect;
  util::ThreadPool pool(config.GetInt("threads", 0));
  RunSentiment(sent_scale, &pool, &collect);
  RunNer(config, ner_scale, &pool, &collect);
  pool.Wait();

  util::Table table("Table IV: Ablation study (accuracy / span-F1, %)");
  table.SetHeader({"Method", "Sent-Pred", "Sent-Inf", "NER-Pred", "NER-Inf",
                   "Average"});
  auto add_row = [&](const std::string& name) {
    const Cell sent = collect.Get(name, "sent");
    const Cell ner = collect.Get(name, "ner");
    double total = 0.0;
    int parts = 0;
    for (const auto* v : {&sent.prediction, &sent.inference, &ner.prediction,
                          &ner.inference}) {
      if (!v->empty()) {
        total += util::Mean(*v);
        ++parts;
      }
    }
    table.AddRow({name, Pct(sent.prediction, true), Pct(sent.inference),
                  Pct(ner.prediction, true), Pct(ner.inference),
                  parts > 0 ? util::FormatFixed(total / parts * 100.0, 2)
                            : "-"});
  };
  add_row("MV-Rule");
  add_row("GLAD-Rule");
  add_row("w/o-Rule");
  add_row("MV-t");
  add_row("our-other-rules-student");
  add_row("our-other-rules-teacher");
  table.AddSeparator();
  add_row("Logic-LNCL-student");
  add_row("Logic-LNCL-teacher");
  EmitTable(&table, "table4_ablation");
  std::cout << "(NER GLAD-Rule row uses AggNet posteriors: GLAD is "
               "inapplicable to sequence tasks, as in the paper.)\n";
  AppendBenchHistory("table4_ablation", bench_timer.Seconds());
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  lncl::bench::Run(argc, argv);
  return 0;
}
