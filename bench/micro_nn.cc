// google-benchmark micro-benchmarks for the neural-network substrate:
// forward/backward costs of the layers that dominate Logic-LNCL training,
// plus microkernel-level GEMM cases at the exact shapes those layers issue
// (GFLOP/s reported per case; see src/util/gemm_kernel.h).
#include <benchmark/benchmark.h>

#include <vector>

#include "data/embedding.h"
#include "models/ner_tagger.h"
#include "models/text_cnn.h"
#include "nn/conv1d.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/quantize.h"
#include "nn/softmax.h"
#include "util/gemm_kernel.h"
#include "util/rng.h"

namespace lncl {
namespace {

util::Matrix RandomMatrix(int rows, int cols, util::Rng* rng) {
  util::Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m(r, c) = static_cast<float>(rng->Gaussian());
    }
  }
  return m;
}

std::vector<float> RandomBuffer(size_t n, util::Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->Gaussian());
  return v;
}

// Raw microkernel GEMM at the shapes the model forwards actually issue:
//   14x16x160   Kim-CNN conv interior rows (T=18, window 5, 32-dim emb)
//   14x64x160   NER conv interior rows (window 5)
//   14x32x64    GRU per-gate input product gx = X W^T
//   64x32x32    GRU recurrent gate over a 64-row length bucket
//   1x32x32     GRU recurrent gate, per-instance serving
//   1x2x48      Kim-CNN fc head, per-instance serving
// Bias + ReLU ride the fused epilogue, as in the layer code.
void GemmShapeBench(benchmark::State& state, util::gemm::Kind kind) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  if (kind == util::gemm::Kind::kSimd && !util::gemm::SimdCompiled()) {
    state.SkipWithError("no SIMD kernel in this build");
    return;
  }
  util::Rng rng(7);
  const std::vector<float> a = RandomBuffer(static_cast<size_t>(m) * k, &rng);
  const std::vector<float> b = RandomBuffer(static_cast<size_t>(k) * n, &rng);
  const std::vector<float> bias = RandomBuffer(n, &rng);
  std::vector<float> c(static_cast<size_t>(m) * n);
  util::gemm::SetActiveKindForTest(kind);
  for (auto _ : state) {
    util::gemm::GemmEx(m, n, k, 1.0f, a.data(), k, util::Trans::kNo,
                       b.data(), n, util::Trans::kNo, 0.0f, c.data(), n,
                       bias.data(), util::Act::kRelu);
    benchmark::DoNotOptimize(c.data());
  }
  util::gemm::SetActiveKindForTest(util::gemm::ParseKindEnv());
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * m * n * k * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_GemmMicrokernel(benchmark::State& state) {
  GemmShapeBench(state, util::gemm::Kind::kSimd);
}
BENCHMARK(BM_GemmMicrokernel)
    ->Args({14, 16, 160})
    ->Args({14, 64, 160})
    ->Args({14, 32, 64})
    ->Args({64, 32, 32})
    ->Args({1, 32, 32})
    ->Args({1, 2, 48});

void BM_GemmScalarRef(benchmark::State& state) {
  GemmShapeBench(state, util::gemm::Kind::kScalar);
}
BENCHMARK(BM_GemmScalarRef)->Args({14, 16, 160})->Args({14, 64, 160});

// Int8 serving kernel at the conv-interior shapes (per-row-quantized
// weights, fp32 accumulate; see nn/quantize.h).
void BM_GemmInt8Microkernel(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  util::Rng rng(8);
  const std::vector<float> a = RandomBuffer(static_cast<size_t>(m) * k, &rng);
  const std::vector<float> bias = RandomBuffer(n, &rng);
  util::Matrix w(n, k);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) w(i, j) = static_cast<float>(rng.Gaussian());
  }
  nn::RowQuantized qw;
  nn::QuantizeRows(w, &qw);
  std::vector<float> c(static_cast<size_t>(m) * n);
  for (auto _ : state) {
    util::gemm::GemmInt8(m, n, k, a.data(), k, qw.q.data(), qw.scale.data(),
                         c.data(), n, bias.data(), util::Act::kRelu);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * m * n * k * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmInt8Microkernel)
    ->Args({14, 16, 160})
    ->Args({14, 64, 160});

void BM_LinearForward(benchmark::State& state) {
  util::Rng rng(1);
  const int dim = static_cast<int>(state.range(0));
  nn::Linear layer("fc", dim, dim, &rng);
  util::Vector x(dim, 0.5f), y;
  for (auto _ : state) {
    layer.Forward(x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_LinearForward)->Arg(32)->Arg(128)->Arg(512);

void BM_Conv1dForwardBackward(benchmark::State& state) {
  util::Rng rng(2);
  const int t_len = static_cast<int>(state.range(0));
  nn::Conv1d conv("conv", 5, 32, 64, nn::Conv1d::Padding::kSame, &rng);
  const util::Matrix x = RandomMatrix(t_len, 32, &rng);
  util::Matrix y;
  for (auto _ : state) {
    conv.Forward(x, &y);
    conv.Backward(x, y, nullptr);
    nn::ZeroGrads(conv.Params());
  }
  state.SetItemsProcessed(state.iterations() * t_len);
}
BENCHMARK(BM_Conv1dForwardBackward)->Arg(10)->Arg(20)->Arg(40);

void BM_GruForwardBackward(benchmark::State& state) {
  util::Rng rng(3);
  const int t_len = static_cast<int>(state.range(0));
  nn::Gru gru("gru", 64, 32, &rng);
  const util::Matrix x = RandomMatrix(t_len, 64, &rng);
  nn::Gru::Cache cache;
  util::Matrix h, grad_h(t_len, 32, 0.01f);
  for (auto _ : state) {
    gru.Forward(x, &cache, &h);
    gru.Backward(x, cache, grad_h, nullptr);
    nn::ZeroGrads(gru.Params());
  }
  state.SetItemsProcessed(state.iterations() * t_len);
}
BENCHMARK(BM_GruForwardBackward)->Arg(10)->Arg(20)->Arg(40);

void BM_SoftmaxRows(benchmark::State& state) {
  util::Rng rng(4);
  const util::Matrix logits =
      RandomMatrix(static_cast<int>(state.range(0)), 9, &rng);
  util::Matrix probs;
  for (auto _ : state) {
    nn::SoftmaxRows(logits, &probs);
    benchmark::DoNotOptimize(probs.data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(16)->Arg(128);

void BM_TextCnnTrainStep(benchmark::State& state) {
  util::Rng rng(5);
  auto emb = std::make_shared<data::EmbeddingTable>(500, 32);
  for (int v = 1; v < 500; ++v) {
    for (int d = 0; d < 32; ++d) {
      emb->table()(v, d) = static_cast<float>(rng.Gaussian());
    }
  }
  models::TextCnnConfig config;
  models::TextCnn cnn(config, emb, &rng);
  data::Instance x;
  for (int i = 0; i < 18; ++i) x.tokens.push_back(1 + rng.UniformInt(499));
  util::Matrix q(1, 2);
  q(0, 0) = 0.7f;
  q(0, 1) = 0.3f;
  for (auto _ : state) {
    cnn.ForwardTrain(x, &rng);
    cnn.BackwardSoftTarget(q, 1.0f);
    nn::ZeroGrads(cnn.Params());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextCnnTrainStep);

void BM_NerTaggerTrainStep(benchmark::State& state) {
  util::Rng rng(6);
  auto emb = std::make_shared<data::EmbeddingTable>(500, 32);
  for (int v = 1; v < 500; ++v) {
    for (int d = 0; d < 32; ++d) {
      emb->table()(v, d) = static_cast<float>(rng.Gaussian());
    }
  }
  models::NerTaggerConfig config;
  models::NerTagger tagger(config, emb, &rng);
  data::Instance x;
  const int t_len = 14;
  for (int i = 0; i < t_len; ++i) x.tokens.push_back(1 + rng.UniformInt(499));
  util::Matrix q(t_len, 9);
  for (int t = 0; t < t_len; ++t) q(t, t % 9) = 1.0f;
  for (auto _ : state) {
    tagger.ForwardTrain(x, &rng);
    tagger.BackwardSoftTarget(q, 1.0f);
    nn::ZeroGrads(tagger.Params());
  }
  state.SetItemsProcessed(state.iterations() * t_len);
}
BENCHMARK(BM_NerTaggerTrainStep);

}  // namespace
}  // namespace lncl

#ifndef LNCL_MICRO_COMBINED
BENCHMARK_MAIN();
#endif
