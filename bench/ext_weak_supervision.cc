// Extension experiment (paper Section VIII, Discussion): Logic-LNCL on two
// settings beyond human crowds —
//
//  (a) programmatic weak supervision: Snorkel-style keyword labeling
//      functions act as the "annotators" (with abstention);
//  (b) learning from noisy labels: exactly ONE noisy label per instance
//      (the classic noisy-labels regime the paper proposes extending to).
//
// In both, the question is whether the EM + logic distillation machinery
// still beats majority voting and the rule-free EM.
#include <iostream>
#include <map>
#include <mutex>

#include "baselines/two_stage.h"
#include "bench_common.h"
#include "bench_history.h"
#include "core/sentiment_rules.h"
#include "crowd/weak_supervision.h"
#include "eval/metrics.h"
#include "inference/dawid_skene.h"
#include "inference/majority_vote.h"
#include "util/logging.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace lncl::bench {
namespace {

struct Cell {
  std::vector<double> prediction;
  std::vector<double> inference;
};

void RunSetting(const std::string& tag, const Scale& scale,
                const SentimentSetup& setup,
                const crowd::AnnotationSet& annotations,
                const util::Config& config, std::map<std::string, Cell>* cells,
                std::mutex* mu, util::ThreadPool* pool) {
  const models::ModelFactory cnn = models::TextCnn::Factory(
      SentimentModelConfig(), setup.corpus.embeddings);
  const auto items = inference::ItemsPerInstance(setup.corpus.train);

  // Deterministic truth-inference rows.
  {
    util::Rng rng(3);
    const auto mv = inference::MajorityVote().Infer(annotations, items, &rng);
    const auto ds = inference::DawidSkene().Infer(annotations, items, &rng);
    std::unique_lock<std::mutex> lock(*mu);
    (*cells)[tag + "|MV"].inference.push_back(
        eval::PosteriorAccuracy(mv, setup.corpus.train));
    (*cells)[tag + "|DS"].inference.push_back(
        eval::PosteriorAccuracy(ds, setup.corpus.train));
  }

  for (int r = 0; r < scale.runs; ++r) {
    const uint64_t seed = 41117ULL * (r + 1);
    // MV-Classifier.
    pool->Submit([=, &setup, &annotations] {
      util::Rng rng(seed ^ 0x1);
      baselines::TwoStageConfig ts;
      ts.epochs = scale.epochs;
      ts.batch_size = scale.batch;
      ts.optimizer = SentimentOptimizer();
      baselines::TwoStage m(ts, cnn);
      inference::MajorityVote mv;
      m.Fit(setup.corpus.train, annotations, mv, setup.corpus.dev, &rng);
      const double acc =
          eval::Accuracy(eval::ModelPredictor(*m.model()), setup.corpus.test);
      std::unique_lock<std::mutex> lock(*mu);
      (*cells)[tag + "|MV-Classifier"].prediction.push_back(acc);
    });
    // Rule-free EM (AggNet / w/o-Rule).
    pool->Submit([=, &setup, &annotations] {
      util::Rng rng(seed ^ 0x2);
      core::LogicLnclConfig lcfg = SentimentLnclConfig(scale);
      lcfg.k_schedule = core::ConstantK(0.0);
      core::LogicLncl m(lcfg, cnn, nullptr);
      m.Fit(setup.corpus.train, annotations, setup.corpus.dev, &rng);
      const double acc = eval::Accuracy(
          [&m](const data::Instance& x) { return m.PredictStudent(x); },
          setup.corpus.test);
      const double inf =
          eval::PosteriorAccuracy(m.qf(), setup.corpus.train);
      std::unique_lock<std::mutex> lock(*mu);
      (*cells)[tag + "|w/o-Rule"].prediction.push_back(acc);
      (*cells)[tag + "|w/o-Rule"].inference.push_back(inf);
    });
    // Logic-LNCL.
    pool->Submit([=, &setup, &annotations] {
      util::Rng rng(seed ^ 0x3);
      std::unique_ptr<models::Model> model = cnn(&rng);
      core::SentimentButRule rule(model.get(), setup.corpus.but_token);
      core::LogicLncl m(SentimentLnclConfig(scale), std::move(model), &rule);
      m.Fit(setup.corpus.train, annotations, setup.corpus.dev, &rng);
      const double stu = eval::Accuracy(
          [&m](const data::Instance& x) { return m.PredictStudent(x); },
          setup.corpus.test);
      const double tea = eval::Accuracy(
          [&m](const data::Instance& x) { return m.PredictTeacher(x); },
          setup.corpus.test);
      const double inf =
          eval::PosteriorAccuracy(m.qf(), setup.corpus.train);
      std::unique_lock<std::mutex> lock(*mu);
      (*cells)[tag + "|Logic-LNCL-student"].prediction.push_back(stu);
      (*cells)[tag + "|Logic-LNCL-student"].inference.push_back(inf);
      (*cells)[tag + "|Logic-LNCL-teacher"].prediction.push_back(tea);
      (*cells)[tag + "|Logic-LNCL-teacher"].inference.push_back(inf);
    });
  }
  (void)config;
}

void Run(int argc, char** argv) {
  const util::Config config(argc, argv);
  util::Stopwatch bench_timer;
  Scale scale = SentimentScale(config);
  scale.runs = config.GetInt("runs", 3);
  PrintConfigBanner("Extension — weak supervision & single noisy label",
                    scale, config);

  SentimentSetup setup = MakeSentimentSetup(scale, 1);
  std::map<std::string, Cell> cells;
  std::mutex mu;
  util::ThreadPool pool(config.GetInt("threads", 0));

  // (a) Labeling functions as annotators.
  util::Rng lf_rng(71);
  const auto functions = crowd::MakeSentimentLabelingFunctions(
      setup.corpus.vocab, /*per_class=*/5, /*triggers_each=*/8,
      /*fire_prob=*/0.9, &lf_rng);
  const crowd::AnnotationSet lf_ann = crowd::ApplyLabelingFunctions(
      functions, setup.corpus.train, 2, &lf_rng);
  const crowd::LfCoverage cov =
      crowd::MeasureCoverage(functions, lf_ann, setup.corpus.train);
  std::cout << "labeling functions: " << functions.size() << ", coverage "
            << util::FormatFixed(cov.covered * 100.0, 1) << "%, "
            << util::FormatFixed(cov.votes_per_instance, 2)
            << " votes/instance\n";

  // (b) One noisy label per instance.
  util::Rng one_rng(72);
  crowd::CrowdConfig one_cfg;
  one_cfg.num_annotators = scale.annotators;
  one_cfg.avg_per_instance = 1.0;
  one_cfg.min_per_instance = 1;
  one_cfg.max_per_instance = 1;
  auto one_sim =
      crowd::CrowdSimulator::MakeClassification(one_cfg, 2, &one_rng);
  const crowd::AnnotationSet one_ann =
      one_sim.Annotate(setup.corpus.train, &one_rng);

  RunSetting("weak", scale, setup, lf_ann, config, &cells, &mu, &pool);
  RunSetting("noisy1", scale, setup, one_ann, config, &cells, &mu, &pool);
  pool.Wait();

  util::Table table("Extension: weak supervision / single noisy label");
  table.SetHeader({"Setting", "Method", "Prediction", "Inference"});
  for (const char* tag : {"weak", "noisy1"}) {
    for (const char* method :
         {"MV", "DS", "MV-Classifier", "w/o-Rule", "Logic-LNCL-student",
          "Logic-LNCL-teacher"}) {
      const Cell& c = cells[std::string(tag) + "|" + method];
      table.AddRow({tag, method, Pct(c.prediction, true), Pct(c.inference)});
    }
    table.AddSeparator();
  }
  EmitTable(&table, "ext_weak_supervision");
  AppendBenchHistory("ext_weak_supervision", bench_timer.Seconds());
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  lncl::bench::Run(argc, argv);
  return 0;
}
