// Reproduces Figure 6: annotator reliability estimated by Logic-LNCL on the
// sentiment dataset. (a) estimated vs. true confusion matrices of the six
// annotators with the most labels; (b) estimated vs. true scalar reliability
// for every annotator with more than five labels, with their correlation.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "bench_history.h"
#include "core/sentiment_rules.h"
#include "crowd/confusion.h"
#include "eval/metrics.h"
#include "eval/reliability.h"
#include "inference/truth_inference.h"
#include "util/logging.h"
#include "util/timer.h"

namespace lncl::bench {
namespace {

void PrintMatrixPair(const std::string& header,
                     const crowd::ConfusionMatrix& estimated,
                     const crowd::ConfusionMatrix& actual) {
  std::cout << header << "\n";
  const int k = estimated.num_classes();
  for (int m = 0; m < k; ++m) {
    std::cout << "  est [";
    for (int n = 0; n < k; ++n) {
      std::cout << (n ? " " : "") << util::FormatFixed(estimated(m, n), 2);
    }
    std::cout << "]   true [";
    for (int n = 0; n < k; ++n) {
      std::cout << (n ? " " : "") << util::FormatFixed(actual(m, n), 2);
    }
    std::cout << "]\n";
  }
}

void Run(int argc, char** argv) {
  const util::Config config(argc, argv);
  util::Stopwatch bench_timer;
  const Scale scale = SentimentScale(config);
  PrintConfigBanner("Figure 6 — Annotator reliability (sentiment)", scale,
                    config);
  const SentimentSetup setup = MakeSentimentSetup(scale, 1);

  util::Rng rng(31);
  std::unique_ptr<models::Model> model = models::TextCnn::Factory(
      SentimentModelConfig(), setup.corpus.embeddings)(&rng);
  core::SentimentButRule rule(model.get(), setup.corpus.but_token);
  core::LogicLncl learner(SentimentLnclConfig(scale), std::move(model), &rule);
  const core::LogicLnclResult fit =
      learner.Fit(setup.corpus.train, setup.annotations, setup.corpus.dev,
                  &rng);
  PrintPhaseSeconds("Logic-LNCL fit", fit.phase_seconds);

  const crowd::ConfusionSet empirical =
      crowd::EmpiricalConfusions(setup.annotations, setup.corpus.train);
  const auto labels = setup.annotations.LabelsPerAnnotator();

  // (a) The six most prolific annotators.
  std::cout << "--- Fig 6(a): top-6 annotators by volume ---\n";
  for (int j : eval::TopAnnotatorsByVolume(labels, 6)) {
    PrintMatrixPair("annotator " + std::to_string(j) + " (" +
                        std::to_string(labels[j]) + " labels)",
                    learner.confusions()[j], empirical[j]);
  }

  // (b) Scalar reliability for every annotator with > 5 labels.
  const eval::ReliabilityReport report = eval::CompareReliability(
      learner.confusions(), empirical, labels, /*min_labels=*/5);
  util::Table table("Figure 6(b): estimated vs true annotator reliability");
  table.SetHeader({"Annotator", "Labels", "Estimated", "True", "AbsErr"});
  int row = 0;
  for (size_t j = 0; j < labels.size(); ++j) {
    if (labels[j] <= 5) continue;
    table.AddRow({std::to_string(j), std::to_string(labels[j]),
                  util::FormatFixed(report.estimated[row], 3),
                  util::FormatFixed(report.actual[row], 3),
                  util::FormatFixed(
                      std::fabs(report.estimated[row] - report.actual[row]),
                      3)});
    ++row;
  }
  EmitTable(&table, "fig6_reliability_sentiment");
  std::cout << "pearson(estimated, true) = "
            << util::FormatFixed(report.pearson_correlation, 3)
            << "   mean |err| = "
            << util::FormatFixed(report.mean_abs_reliability_error, 3)
            << "   mean matrix distance = "
            << util::FormatFixed(report.mean_matrix_distance, 3) << "\n";
  AppendBenchHistory("fig6_reliability_sentiment", bench_timer.Seconds());
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  lncl::bench::Run(argc, argv);
  return 0;
}
