// Design-choice ablations beyond the paper's Table IV (the starred items in
// DESIGN.md §5):
//
//   A. imitation schedule: the paper's rising k(t) vs constant k;
//   B. regularization strength C sweep for the NER teacher;
//   C. weighted (Eq. 10) vs unweighted (Eq. 8) objective on NER;
//   D. NER rule form: disjunctive validity rule vs the literal weighted
//      Eqs. 18-19 (0.8/0.2) reading;
//   E. parameters vs rules: a linear-chain CRF (learned transitions,
//      Lample-style) trained on MV labels, against the parameter-free logic
//      rules of Logic-LNCL and the plain MV-Classifier;
//   F. recurrent cell: the paper's GRU vs an LSTM in the NER tagger.
#include <iostream>
#include <map>
#include <mutex>

#include "baselines/two_stage.h"
#include "bench_common.h"
#include "bench_history.h"
#include "core/ner_rules.h"
#include "core/sentiment_rules.h"
#include "eval/metrics.h"
#include "inference/majority_vote.h"
#include "models/crf_tagger.h"
#include "util/logging.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace lncl::bench {
namespace {

struct Cell {
  std::vector<double> prediction;
  std::vector<double> inference;
};

void Run(int argc, char** argv) {
  const util::Config config(argc, argv);
  util::Stopwatch bench_timer;
  Scale sent_scale = SentimentScale(config);
  Scale ner_scale = NerScale(config);
  sent_scale.runs = config.GetInt("runs", 2);
  ner_scale.runs = sent_scale.runs;
  PrintConfigBanner("Design ablations (DESIGN.md §5)", ner_scale, config);

  std::map<std::string, Cell> cells;
  std::mutex mu;
  util::ThreadPool pool(config.GetInt("threads", 0));

  auto* sent = new SentimentSetup(MakeSentimentSetup(sent_scale, 1));
  auto* ner = new NerSetup(MakeNerSetup(ner_scale, 2));
  auto* cnn = new models::ModelFactory(models::TextCnn::Factory(
      SentimentModelConfig(), sent->corpus.embeddings));
  auto* tagger = new models::ModelFactory(models::NerTagger::Factory(
      NerModelConfig(), ner->corpus.embeddings));

  // inf < 0 marks "not applicable" (two-stage rows have no q_f).
  auto add = [&cells, &mu](const std::string& key, double pred, double inf) {
    std::unique_lock<std::mutex> lock(mu);
    cells[key].prediction.push_back(pred);
    if (inf >= 0.0) cells[key].inference.push_back(inf);
  };

  for (int r = 0; r < sent_scale.runs; ++r) {
    const uint64_t seed = 52361ULL * (r + 1);

    // ---- A. k schedules (sentiment). ----
    struct KVariant {
      const char* name;
      core::KSchedule schedule;
    };
    const KVariant k_variants[] = {
        {"A: k(t)=min{1,1-0.94^t} (paper)", core::SentimentKSchedule()},
        {"A: k=0.3 constant", core::ConstantK(0.3)},
        {"A: k=0.7 constant", core::ConstantK(0.7)},
        {"A: k=1.0 constant", core::ConstantK(1.0)},
    };
    for (const KVariant& v : k_variants) {
      pool.Submit([=] {
        util::Rng rng(seed ^ 0x100);
        core::LogicLnclConfig lcfg = SentimentLnclConfig(sent_scale);
        lcfg.k_schedule = v.schedule;
        std::unique_ptr<models::Model> model = (*cnn)(&rng);
        core::SentimentButRule rule(model.get(), sent->corpus.but_token);
        core::LogicLncl m(lcfg, std::move(model), &rule);
        m.Fit(sent->corpus.train, sent->annotations, sent->corpus.dev, &rng);
        add(v.name,
            eval::Accuracy(
                [&m](const data::Instance& x) { return m.PredictStudent(x); },
                sent->corpus.test),
            eval::PosteriorAccuracy(m.qf(), sent->corpus.train));
      });
    }

    // ---- B. C sweep (NER teacher). ----
    for (const double c_value : {0.5, 5.0, 50.0}) {
      pool.Submit([=] {
        util::Rng rng(seed ^ 0x200);
        core::LogicLnclConfig lcfg = NerLnclConfig(ner_scale);
        lcfg.C = c_value;
        const auto projector = core::MakeNerRuleProjector();
        core::LogicLncl m(lcfg, *tagger, projector.get());
        m.Fit(ner->corpus.train, ner->annotations, ner->corpus.dev, &rng);
        add("B: teacher, C=" + util::FormatFixed(c_value, 1),
            eval::SpanF1(
                [&m](const data::Instance& x) { return m.PredictTeacher(x); },
                ner->corpus.test)
                .f1,
            eval::PosteriorSpanF1(m.qf(), ner->corpus.train).f1);
      });
    }

    // ---- C. weighted vs unweighted loss (NER). ----
    for (const bool weighted : {true, false}) {
      pool.Submit([=] {
        util::Rng rng(seed ^ 0x300);
        core::LogicLnclConfig lcfg = NerLnclConfig(ner_scale);
        lcfg.weighted_loss = weighted;
        const auto projector = core::MakeNerRuleProjector();
        core::LogicLncl m(lcfg, *tagger, projector.get());
        m.Fit(ner->corpus.train, ner->annotations, ner->corpus.dev, &rng);
        add(weighted ? "C: Eq.10 weighted (paper, NER)"
                     : "C: Eq.8 unweighted",
            eval::SpanF1(
                [&m](const data::Instance& x) { return m.PredictStudent(x); },
                ner->corpus.test)
                .f1,
            eval::PosteriorSpanF1(m.qf(), ner->corpus.train).f1);
      });
    }

    // ---- D. rule form (NER teacher). ----
    struct RuleVariant {
      const char* name;
      std::shared_ptr<logic::SequenceRuleProjector> projector;
    };
    const RuleVariant rule_variants[] = {
        {"D: disjunctive validity rule",
         std::shared_ptr<logic::SequenceRuleProjector>(
             core::MakeNerRuleProjector())},
        {"D: weighted Eqs.18-19 (0.8/0.2)",
         std::shared_ptr<logic::SequenceRuleProjector>(
             core::MakeWeightedNerRuleProjector())},
    };
    for (const RuleVariant& v : rule_variants) {
      pool.Submit([=] {
        util::Rng rng(seed ^ 0x400);
        core::LogicLncl m(NerLnclConfig(ner_scale), *tagger,
                          v.projector.get());
        m.Fit(ner->corpus.train, ner->annotations, ner->corpus.dev, &rng);
        add(v.name,
            eval::SpanF1(
                [&m](const data::Instance& x) { return m.PredictTeacher(x); },
                ner->corpus.test)
                .f1,
            eval::PosteriorSpanF1(m.qf(), ner->corpus.train).f1);
      });
    }

    // ---- E. learned CRF transitions vs logic rules. ----
    pool.Submit([=] {
      util::Rng rng(seed ^ 0x500);
      models::CrfTaggerConfig crf_config;
      baselines::TwoStageConfig ts;
      ts.epochs = ner_scale.epochs;
      ts.batch_size = ner_scale.batch;
      ts.patience = ner_scale.patience;
      ts.optimizer = NerOptimizer();
      baselines::TwoStage m(
          ts, models::CrfTagger::Factory(crf_config, ner->corpus.embeddings));
      inference::MajorityVote mv;
      m.Fit(ner->corpus.train, ner->annotations, mv, ner->corpus.dev, &rng);
      add("E: CRF-Classifier (MV labels)",
          eval::SpanF1(eval::ModelPredictor(*m.model()), ner->corpus.test).f1,
          -1.0);
    });
    pool.Submit([=] {
      util::Rng rng(seed ^ 0x600);
      baselines::TwoStageConfig ts;
      ts.epochs = ner_scale.epochs;
      ts.batch_size = ner_scale.batch;
      ts.patience = ner_scale.patience;
      ts.optimizer = NerOptimizer();
      baselines::TwoStage m(ts, *tagger);
      inference::MajorityVote mv;
      m.Fit(ner->corpus.train, ner->annotations, mv, ner->corpus.dev, &rng);
      add("E: MV-Classifier (no CRF, no rules)",
          eval::SpanF1(eval::ModelPredictor(*m.model()), ner->corpus.test).f1,
          -1.0);
    });
    pool.Submit([=] {
      util::Rng rng(seed ^ 0x700);
      const auto projector = core::MakeNerRuleProjector();
      core::LogicLncl m(NerLnclConfig(ner_scale), *tagger, projector.get());
      m.Fit(ner->corpus.train, ner->annotations, ner->corpus.dev, &rng);
      add("E: Logic-LNCL-teacher (rules)",
          eval::SpanF1(
              [&m](const data::Instance& x) { return m.PredictTeacher(x); },
              ner->corpus.test)
              .f1,
          eval::PosteriorSpanF1(m.qf(), ner->corpus.train).f1);
    });

    // ---- F. recurrent cell (GRU vs LSTM) under Logic-LNCL. ----
    for (const bool use_lstm : {false, true}) {
      pool.Submit([=] {
        util::Rng rng(seed ^ (use_lstm ? 0x800 : 0x900));
        models::NerTaggerConfig mcfg = NerModelConfig();
        mcfg.recurrent = use_lstm ? models::NerTaggerConfig::Recurrent::kLstm
                                  : models::NerTaggerConfig::Recurrent::kGru;
        const auto projector = core::MakeNerRuleProjector();
        core::LogicLncl m(
            NerLnclConfig(ner_scale),
            models::NerTagger::Factory(mcfg, ner->corpus.embeddings),
            projector.get());
        m.Fit(ner->corpus.train, ner->annotations, ner->corpus.dev, &rng);
        add(use_lstm ? "F: LSTM tagger" : "F: GRU tagger (paper)",
            eval::SpanF1(
                [&m](const data::Instance& x) { return m.PredictStudent(x); },
                ner->corpus.test)
                .f1,
            eval::PosteriorSpanF1(m.qf(), ner->corpus.train).f1);
      });
    }
  }
  pool.Wait();

  util::Table table("Design ablations");
  table.SetHeader({"Variant", "Prediction", "Inference"});
  std::string prev_section;
  for (const auto& [name, cell] : cells) {
    if (!prev_section.empty() && name.substr(0, 1) != prev_section) {
      table.AddSeparator();
    }
    prev_section = name.substr(0, 1);
    table.AddRow({name, Pct(cell.prediction, true), Pct(cell.inference)});
  }
  EmitTable(&table, "ablation_design");
  AppendBenchHistory("ablation_design", bench_timer.Seconds());
}

}  // namespace
}  // namespace lncl::bench

int main(int argc, char** argv) {
  lncl::util::SetLogLevel(lncl::util::LogLevel::kWarning);
  lncl::bench::Run(argc, argv);
  return 0;
}
