#pragma once

#include <vector>

namespace lncl::util {

// Descriptive statistics over a sample of doubles.
double Mean(const std::vector<double>& xs);
// Sample standard deviation (Bessel-corrected). Returns 0 for n < 2.
double StdDev(const std::vector<double>& xs);
// Linear-interpolated quantile, q in [0, 1]. Input need not be sorted.
double Quantile(std::vector<double> xs, double q);

// Five-number summary used to print the paper's Figure 4 boxplots as text.
struct BoxplotSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  int n = 0;
};
BoxplotSummary Summarize(const std::vector<double>& xs);

// Result of a two-sample Welch t-test (unequal variances).
struct TTestResult {
  double t = 0.0;        // test statistic
  double df = 0.0;       // Welch-Satterthwaite degrees of freedom
  double p_one_sided = 1.0;  // P(T > t): "a beats b" when means imply so
  double p_two_sided = 1.0;
};

// Welch's t-test for H0: mean(a) == mean(b). The one-sided p-value tests
// mean(a) > mean(b), matching the paper's unilateral statistics.
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

// Regularized incomplete beta function I_x(a, b), used for the Student-t CDF.
// Implemented with the standard continued-fraction expansion.
double RegularizedIncompleteBeta(double a, double b, double x);

// CDF of the Student-t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

// Log of the gamma function (Lanczos approximation).
double LogGamma(double x);

// Inverse standard-normal CDF (Acklam's rational approximation, |err|<1e-9).
double NormalQuantile(double p);

// Chi-squared quantile via the Wilson-Hilferty cube approximation:
// chi2_q(n) ~ n * (1 - 2/(9n) + z_q * sqrt(2/(9n)))^3. Used by CATD's
// confidence-aware annotator weights.
double ChiSquaredQuantile(double p, double df);

}  // namespace lncl::util

