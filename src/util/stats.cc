#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace lncl::util {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(n - 1));
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

BoxplotSummary Summarize(const std::vector<double>& xs) {
  BoxplotSummary s;
  s.n = static_cast<int>(xs.size());
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.q1 = Quantile(xs, 0.25);
  s.median = Quantile(xs, 0.5);
  s.q3 = Quantile(xs, 0.75);
  s.mean = Mean(xs);
  return s;
}

double LogGamma(double x) {
  // Lanczos approximation, g = 7, n = 9.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

double NormalQuantile(double p) {
  // Acklam's algorithm.
  static const double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                              -2.759285104469687e+02, 1.383577518672690e+02,
                              -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                              -1.556989798598866e+02, 6.680131188771972e+01,
                              -1.328068155288572e+01};
  static const double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                              -2.400758277161838e+00, -2.549732539343734e+00,
                              4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
  p = std::clamp(p, 1e-15, 1.0 - 1e-15);
  const double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double ChiSquaredQuantile(double p, double df) {
  if (df <= 0.0) return 0.0;
  const double z = NormalQuantile(p);
  const double t = 2.0 / (9.0 * df);
  const double cube = 1.0 - t + z * std::sqrt(t);
  return df * cube * cube * cube;
}

namespace {

// Continued fraction for the incomplete beta function (Numerical-Recipes
// style modified Lentz algorithm).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  if (df <= 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - p : p;
}

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  TTestResult r;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  if (a.size() < 2 || b.size() < 2) return r;
  const double ma = Mean(a);
  const double mb = Mean(b);
  const double va = StdDev(a) * StdDev(a);
  const double vb = StdDev(b) * StdDev(b);
  const double se2 = va / na + vb / nb;
  if (se2 <= 0.0) {
    r.t = (ma > mb) ? 1e9 : (ma < mb ? -1e9 : 0.0);
    r.df = na + nb - 2.0;
    r.p_one_sided = ma > mb ? 0.0 : 1.0;
    r.p_two_sided = ma == mb ? 1.0 : 0.0;
    return r;
  }
  r.t = (ma - mb) / std::sqrt(se2);
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1.0) +
                     (vb / nb) * (vb / nb) / (nb - 1.0);
  r.df = den > 0.0 ? num / den : na + nb - 2.0;
  r.p_one_sided = 1.0 - StudentTCdf(r.t, r.df);
  const double tail = 1.0 - StudentTCdf(std::fabs(r.t), r.df);
  r.p_two_sided = 2.0 * tail;
  return r;
}

}  // namespace lncl::util
