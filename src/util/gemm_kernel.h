#pragma once

// Register-blocked GEMM microkernel layer.
//
// Every dense product in the library funnels through GemmEx below (the
// Matrix-level Gemm/GemmEx/MatVec wrappers in matrix.h delegate here). The
// layer owns three things:
//
//  * The microkernels. One scalar kernel and one explicitly vectorized SIMD
//    kernel (AVX-512 or AVX2+FMA, whichever the build targets) share a
//    single numeric contract: each output element C(i, j) is one
//    accumulator updated by a sequential fused multiply-add over ascending
//    k — the SIMD kernel vectorizes across output *columns* (lanes are
//    different j), never across k, and the scalar kernel uses std::fma per
//    element. Both therefore produce bit-identical results, and a result
//    row never depends on how many other rows the call computed — which is
//    what keeps the per-instance and batched prediction paths byte-equal.
//    Fused epilogues (alpha/beta combination, bias broadcast, ReLU/tanh)
//    run in the same pass over C, with one scalar formula mirrored exactly
//    by the vector code.
//
//  * Operand packing. The kernels consume op(B) in k-major layout (row k
//    holds op(B)(k, 0..n)), so trans_b == kYes operands are transposed into
//    a panel first. PackedOpB serves those panels from a per-thread cache
//    keyed by (data pointer, Matrix::version()): weight matrices — the only
//    B operands layers pass transposed — are repacked once per optimizer
//    step instead of once per layer call, which is what won back the
//    batched m_step regression. Raw-pointer callers without a Matrix (and
//    hence without a version) get an uncached per-call pack.
//
//  * Dispatch. The kernel kind is selected once at startup — the SIMD
//    kernel when the build compiled one, overridable with the environment
//    variable LNCL_GEMM_KERNEL in {auto, scalar, simd} (anything else
//    aborts) — and is observable through the gemm.kernel.{simd,scalar}
//    metrics counters. Because scalar and SIMD agree bitwise, the override
//    is a determinism test fixture, not a numerics switch.
//
// This file is the one place in the tree allowed to touch raw SIMD
// intrinsics (tools/lint.py enforces it); everything else stays portable.

#include <cstdint>

#include "util/matrix.h"

namespace lncl::util::gemm {

// Which microkernel family executes GemmEx calls.
enum class Kind { kScalar, kSimd };

// True when the build compiled a SIMD kernel (AVX-512F or AVX2+FMA target).
bool SimdCompiled();

// Width tag of the compiled SIMD kernel for diagnostics: "avx512", "avx2",
// or "none".
const char* SimdIsa();

// The kernel kind every GemmEx call uses, selected on first use from
// LNCL_GEMM_KERNEL (see ParseKindEnv).
Kind ActiveKind();

// "scalar" / "simd".
const char* KindName(Kind kind);

// Re-reads LNCL_GEMM_KERNEL and returns the kind it selects: unset/empty
// and "auto" pick the best compiled kernel, "scalar" forces the scalar
// kernel, "simd" requires a compiled SIMD kernel (aborts otherwise), and
// any other value aborts through LNCL_CHECK. Exposed separately from
// ActiveKind so tests can exercise the parse (including its death paths)
// after startup.
Kind ParseKindEnv();

// Test hook: overrides the active kind for subsequent GemmEx calls. The
// scalar/SIMD bit-equality contract makes this invisible to results.
void SetActiveKindForTest(Kind kind);

// C = act(alpha * op(A) * op(B) + beta * C + bias).
//
// op(A) is m x k (trans_a == kYes reads A stored k x m), op(B) is k x n,
// C is m x n; lda/ldb/ldc are storage leading dimensions, so operands may
// be strided views into larger buffers. bias (length n) may be null. The
// epilogue applies, per element and in this order: alpha scaling, the
// beta * C term (std::fma(beta, c, t) when beta is neither 0 nor 1), the
// bias broadcast, then act. The caller owns all shape checking; C is never
// resized (beta = 0 overwrites).
void GemmEx(int m, int n, int k, float alpha, const float* a, int lda,
            Trans trans_a, const float* b, int ldb, Trans trans_b, float beta,
            float* c, int ldc, const float* bias, Act act);

// Returns op(B) of the Matrix operand in k-major layout and writes its
// leading dimension to *ldb. trans_b == kNo is b.data() itself; trans_b ==
// kYes returns a transposed panel from the per-thread pack cache, valid
// until the owning thread packs ~32 further distinct operands (callers
// must not hold it across other GemmEx-issuing work). Cache hits/misses
// are counted as gemm.pack.{hit,miss}.
const float* PackedOpB(const Matrix& b, Trans trans_b, int* ldb);

// Int8 serving kernel: C = act(scale[j] * (A * Q) + bias), with Q a k x n
// int8 panel (k-major, as produced by nn::QuantizeRows from a transposed
// weight matrix) and per-output-column dequantization scales. Accumulation
// is fp32 over the exactly-representable int8 values, in the same
// one-accumulator / ascending-k order as GemmEx, so the scalar and SIMD
// paths agree bitwise and batching never changes a row. bias may be null.
void GemmInt8(int m, int n, int k, const float* a, int lda,
              const int8_t* b_kmajor, const float* scale, float* c, int ldc,
              const float* bias, Act act);

}  // namespace lncl::util::gemm
