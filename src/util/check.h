#pragma once

// Contract macros for the numeric invariants of the EM-alike loop.
//
// Two tiers share one failure sink (CheckFailure: stderr + abort, immune to
// the Logger threshold):
//
//  * LNCL_CHECK(cond)  — always on, release builds included. For cheap
//    structural contracts whose violation means the process must not
//    continue (missing model, corrupt serialization).
//  * LNCL_DCHECK / LNCL_AUDIT_* — compiled only under -DLNCL_AUDIT=ON
//    (CMake option; defines LNCL_AUDIT project-wide). Audit builds verify
//    the probabilistic invariants the type system cannot see:
//
//      LNCL_AUDIT_FINITE(x)          every entry finite (no NaN/inf) —
//                                    gradients, DP marginals, penalties
//      LNCL_AUDIT_SIMPLEX(x)         rows are probability simplexes
//                                    (q_a/q_b/q_f, Eqs. 8-10/13/15;
//                                    softmax outputs)
//      LNCL_AUDIT_ROW_STOCHASTIC(x)  annotator confusion rows sum to 1
//                                    after the Eq. 12 M-step
//      LNCL_AUDIT_SHAPE(m, r, c)     dimension contract at kernel entry
//      LNCL_DCHECK(cond)             generic audited condition
//
// When LNCL_AUDIT is off every macro expands to an unevaluated-operand
// no-op: zero code, zero reads, operands kept "used" so -Wall -Wextra
// -Werror builds stay clean either way. Audit builds must therefore be
// bit-identical in output to plain builds — the checks only read
// (scripts/bench_audit_overhead.sh asserts this on the table2/table3 fits).

#include <string>
#include <vector>

namespace lncl::util {

class Matrix;

// Prints "CHECK failed at file:line: expr (detail)" to stderr — bypassing
// the Logger threshold so a failing invariant is never silent — and aborts.
[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& detail = std::string());

namespace audit {

// Out-of-line bodies for the LNCL_AUDIT_* macros. Each aborts through
// CheckFailure with the offending index/value in the detail string.
void CheckFinite(float x, const char* expr, const char* file, int line);
void CheckFinite(double x, const char* expr, const char* file, int line);
void CheckFinite(const std::vector<float>& v, const char* expr,
                 const char* file, int line);
void CheckFinite(const Matrix& m, const char* expr, const char* file,
                 int line);
void CheckSimplex(const std::vector<float>& v, const char* expr,
                  const char* file, int line);
void CheckSimplex(const Matrix& m, const char* expr, const char* file,
                  int line);
void CheckRowStochastic(const Matrix& m, const char* expr, const char* file,
                        int line);
void CheckShape(const Matrix& m, int rows, int cols, const char* expr,
                const char* file, int line);

// Declared, never defined: the compiled-out macro forms wrap their operands
// in sizeof(Sink(...)), an unevaluated context, so expressions with side
// effects are neither executed nor warned about as unused.
template <typename... Ts>
int Sink(const Ts&...);

}  // namespace audit
}  // namespace lncl::util

#define LNCL_CHECK(cond)                                             \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::lncl::util::CheckFailure(__FILE__, __LINE__, #cond);         \
    }                                                                \
  } while (0)

#if defined(LNCL_AUDIT)

#define LNCL_AUDIT_ENABLED 1

#define LNCL_DCHECK(cond)                                            \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::lncl::util::CheckFailure(__FILE__, __LINE__, #cond);         \
    }                                                                \
  } while (0)

#define LNCL_AUDIT_FINITE(x) \
  ::lncl::util::audit::CheckFinite((x), #x, __FILE__, __LINE__)
#define LNCL_AUDIT_SIMPLEX(x) \
  ::lncl::util::audit::CheckSimplex((x), #x, __FILE__, __LINE__)
#define LNCL_AUDIT_ROW_STOCHASTIC(x) \
  ::lncl::util::audit::CheckRowStochastic((x), #x, __FILE__, __LINE__)
#define LNCL_AUDIT_SHAPE(m, rows, cols)                                   \
  ::lncl::util::audit::CheckShape((m), (rows), (cols), #m, __FILE__,      \
                                  __LINE__)

#else  // !LNCL_AUDIT

#define LNCL_AUDIT_ENABLED 0

#define LNCL_AUDIT_NOOP_(...) \
  static_cast<void>(sizeof(::lncl::util::audit::Sink(__VA_ARGS__)))

#define LNCL_DCHECK(cond) LNCL_AUDIT_NOOP_(cond)
#define LNCL_AUDIT_FINITE(x) LNCL_AUDIT_NOOP_(x)
#define LNCL_AUDIT_SIMPLEX(x) LNCL_AUDIT_NOOP_(x)
#define LNCL_AUDIT_ROW_STOCHASTIC(x) LNCL_AUDIT_NOOP_(x)
#define LNCL_AUDIT_SHAPE(m, rows, cols) LNCL_AUDIT_NOOP_(m, rows, cols)

#endif  // LNCL_AUDIT
