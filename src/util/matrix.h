#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace lncl::util {

// Globally unique, monotonically consumed content-version tickets for
// Matrix (see Matrix::version below). Thread-local block allocation: a
// thread grabs a block of 2^20 tickets with one atomic fetch_add and then
// hands them out locally, so bumping a version on the training hot path
// costs no shared-memory traffic.
uint64_t NextMatrixVersion();

// Dense row-major matrix of floats.
//
// This is the numeric workhorse of the neural-network substrate. It is a
// plain value type (copyable, movable) with bounds-checked access in audit
// builds (LNCL_AUDIT=ON). Heavy kernels (matrix products) live as free functions below so
// call sites read like math.
//
// Content versioning: every matrix carries a version ticket that changes on
// any mutating access (non-const data()/Row()/operator(), Fill, Resize,
// AddScaled, ...) and is *copied* by copy/move, so equal versions imply
// equal contents. The GEMM pack cache (util/gemm_kernel.h) keys transposed
// weight panels on (data pointer, version): a weight matrix is repacked
// once per optimizer step instead of once per layer call, and a replica
// synced by plain assignment inherits the master's ticket. The bump is a
// thread-local counter increment — cheap enough for per-row accessors.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
    LNCL_DCHECK(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Bytes of backing storage actually held (capacity, not logical size) —
  // what the workspace arena's byte-accounting gauges report.
  size_t allocated_bytes() const { return data_.capacity() * sizeof(float); }

  // Content-version ticket: version() == version() of another matrix implies
  // equal contents (the converse need not hold). 0 only for a default-built,
  // never-mutated matrix.
  uint64_t version() const { return version_; }

  float& operator()(int r, int c) {
    LNCL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    BumpVersion();
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float operator()(int r, int c) const {
    LNCL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  float* Row(int r) {
    BumpVersion();
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  const float* Row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  float* data() {
    BumpVersion();
    return data_.data();
  }
  const float* data() const { return data_.data(); }

  void Fill(float v) {
    BumpVersion();
    std::fill(data_.begin(), data_.end(), v);
  }
  void Zero() { Fill(0.0f); }

  // Resizes to rows x cols, zero-filling. Existing contents are discarded,
  // but the allocation is kept whenever the new shape fits the existing
  // capacity, so layers that reuse a scratch matrix across calls stop
  // paying a heap round-trip per Forward.
  void Resize(int rows, int cols) {
    ResizeNoZero(rows, cols);
    std::fill(data_.begin(), data_.end(), 0.0f);
  }

  // Resizes without initializing the contents (old values, if any, are
  // garbage with respect to the new shape). For outputs that are fully
  // overwritten, e.g. by a beta=0 Gemm.
  void ResizeNoZero(int rows, int cols) {
    LNCL_DCHECK(rows >= 0 && cols >= 0);
    BumpVersion();
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows) * cols);
  }

  void Reserve(int rows, int cols) {
    data_.reserve(static_cast<size_t>(rows) * cols);
  }

  // this += alpha * other (same shape).
  void AddScaled(const Matrix& other, float alpha);

  // this *= alpha.
  void Scale(float alpha);

  // Sum of squared entries.
  double SquaredNorm() const;

 private:
  void BumpVersion() { version_ = NextMatrixVersion(); }

  int rows_;
  int cols_;
  uint64_t version_ = 0;
  std::vector<float> data_;
};

// Dense float vector with the same conventions as Matrix.
using Vector = std::vector<float>;

// Whether a Gemm operand is transposed.
enum class Trans { kNo, kYes };

// Fused epilogue activation for GemmEx (util/gemm_kernel.h): applied to
// each output element after the alpha/beta/bias combination, inside the
// kernel's single pass over C.
enum class Act { kNone, kRelu, kTanh };

// General matrix multiply, the single optimized entry point every dense
// kernel funnels through:
//
//   C = alpha * op(A) * op(B) + beta * C
//
// with op(X) = X or X^T per the Trans flags. When beta == 0, C is resized to
// the product shape and fully overwritten (its previous contents, including
// NaNs, are ignored); otherwise C must already have the product shape.
// The implementation is cache-blocked and register-unrolled; it assumes
// dense operands (no zero-skipping branches).
void Gemm(float alpha, const Matrix& a, Trans trans_a, const Matrix& b,
          Trans trans_b, float beta, Matrix* c);

// Raw-pointer Gemm for operands that are strided views into larger buffers
// (e.g. the sliding windows of a 1-D convolution, which form an m x k
// operand over x with lda = in_dim and no copying). op(A) is m x k, op(B) is
// k x n, C is m x n; each operand's rows are `ld` floats apart in storage,
// with the transpose applying to the logical operand: op(A)(i, kk) is
// a[i * lda + kk] for kNo and a[kk * lda + i] for kYes. The caller owns all
// shape checking; C is never resized (use beta = 0 to overwrite).
void GemmRaw(int m, int n, int k, float alpha, const float* a, int lda,
             Trans trans_a, const float* b, int ldb, Trans trans_b, float beta,
             float* c, int ldc);

// Fused Gemm: C = act(alpha * op(A) * op(B) + beta * C + bias), where
// `bias` (length n, nullable) is broadcast over rows and `act` is applied
// elementwise, all in the kernel's single pass over C. Layers use this to
// fold their bias-add / ReLU second pass into the product. Resizing rules
// match Gemm. When trans_b == kYes, op(B) is served from the version-keyed
// pack cache (see util/gemm_kernel.h), so a weight matrix reused across a
// minibatch is transposed once per optimizer step, not once per call.
void GemmEx(float alpha, const Matrix& a, Trans trans_a, const Matrix& b,
            Trans trans_b, float beta, Matrix* c, const float* bias, Act act);

// out = a (rows_a x k) * b (k x cols_b). out is resized.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

// out = a^T * b, where a is (k x rows_out) and b is (k x cols_out).
void MatMulTransA(const Matrix& a, const Matrix& b, Matrix* out);

// out = a * b^T, where a is (rows_out x k) and b is (cols_out x k).
void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out);

// out = src^T; out is resized to cols x rows. Layers transpose a weight
// matrix once per call so the repeated products over it can run in the NN
// Gemm form, whose inner loop over independent output columns vectorizes
// (the NT form's per-output dot products cannot without reordering sums).
void TransposeInto(const Matrix& src, Matrix* out);

// y = W (m x n) * x (n) ; y is resized to m.
void MatVec(const Matrix& w, const Vector& x, Vector* y);

// y = W^T (m x n) * x (m) ; y is resized to n.
void MatVecTrans(const Matrix& w, const Vector& x, Vector* y);

// W += alpha * x (m) * y^T (n); W must be m x n.
void OuterAdd(const Vector& x, const Vector& y, float alpha, Matrix* w);

// Elementwise vector helpers.
void AddScaled(const Vector& x, float alpha, Vector* y);  // y += alpha*x
float Dot(const Vector& a, const Vector& b);

}  // namespace lncl::util

