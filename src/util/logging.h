#ifndef LNCL_UTIL_LOGGING_H_
#define LNCL_UTIL_LOGGING_H_

#include <mutex>
#include <sstream>
#include <string>

namespace lncl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Minimal thread-safe leveled logger writing to stderr.
//
// Usage: LNCL_LOG(INFO) << "epoch " << e << " loss " << loss;
// The global threshold defaults to kInfo and can be raised by benches to
// silence per-epoch chatter (SetLogLevel(LogLevel::kWarning)).
class Logger {
 public:
  Logger(LogLevel level, const char* file, int line);
  ~Logger();

  template <typename T>
  Logger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  static void SetLogLevel(LogLevel level);
  static LogLevel GetLogLevel();

 private:
  LogLevel level_;
  std::ostringstream stream_;
  static std::mutex mu_;
  static LogLevel threshold_;
};

void SetLogLevel(LogLevel level);

}  // namespace lncl::util

#define LNCL_LOG(severity)                                           \
  ::lncl::util::Logger(::lncl::util::LogLevel::k##severity, __FILE__, \
                       __LINE__)

// Always-on invariant check (also in release builds). Aborts with a message
// identifying the failing expression and location.
#define LNCL_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      LNCL_LOG(Error) << "CHECK failed: " #cond;                           \
      ::abort();                                                           \
    }                                                                      \
  } while (0)

#endif  // LNCL_UTIL_LOGGING_H_
