#pragma once

#include <mutex>
#include <sstream>
#include <string>

// LNCL_CHECK (and the audit-build LNCL_DCHECK / LNCL_AUDIT_* family) live in
// check.h; logging.h re-exports them so existing call sites keep compiling.
#include "util/check.h"

namespace lncl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Minimal thread-safe leveled logger writing to stderr.
//
// Usage: LNCL_LOG(INFO) << "epoch " << e << " loss " << loss;
// The global threshold defaults to kInfo and can be raised by benches to
// silence per-epoch chatter (SetLogLevel(LogLevel::kWarning)).
//
// Invariant failures do NOT go through this class: LNCL_CHECK and the audit
// macros report via util::CheckFailure, which writes to stderr regardless of
// the threshold and aborts with file:line context.
class Logger {
 public:
  Logger(LogLevel level, const char* file, int line);
  ~Logger();

  template <typename T>
  Logger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  static void SetLogLevel(LogLevel level);
  static LogLevel GetLogLevel();

 private:
  LogLevel level_;
  std::ostringstream stream_;
  static std::mutex mu_;
  static LogLevel threshold_;
};

void SetLogLevel(LogLevel level);

}  // namespace lncl::util

#define LNCL_LOG(severity)                                           \
  ::lncl::util::Logger(::lncl::util::LogLevel::k##severity, __FILE__, \
                       __LINE__)
