#include "util/workspace.h"

#include "obs/metrics.h"

namespace lncl::util {

Workspace& Workspace::PerThread() {
  thread_local Workspace ws;
  return ws;
}

Matrix* Workspace::Acquire() {
  if (in_use_ == pool_.size()) pool_.emplace_back();
  Matrix* m = &pool_[in_use_++];
  if (obs::Metrics::enabled()) {
    // High-water marks of the per-thread arena: deepest simultaneous
    // acquisition and total pooled matrices (gauges merge by max across
    // threads, so the snapshot shows the worst thread).
    static obs::Gauge* const high_water =
        obs::Metrics::GetGauge("workspace.in_use_high_water");
    static obs::Gauge* const pooled =
        obs::Metrics::GetGauge("workspace.pool_matrices");
    high_water->Update(static_cast<int64_t>(in_use_));
    pooled->Update(static_cast<int64_t>(pool_.size()));
  }
  return m;
}

}  // namespace lncl::util
