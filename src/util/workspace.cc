#include "util/workspace.h"

namespace lncl::util {

Workspace& Workspace::PerThread() {
  thread_local Workspace ws;
  return ws;
}

Matrix* Workspace::Acquire() {
  if (in_use_ == pool_.size()) pool_.emplace_back();
  return &pool_[in_use_++];
}

}  // namespace lncl::util
