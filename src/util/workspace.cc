#include "util/workspace.h"

#include "obs/metrics.h"

namespace lncl::util {

Workspace& Workspace::PerThread() {
  thread_local Workspace ws;
  return ws;
}

Matrix* Workspace::Acquire() {
  if (in_use_ == pool_.size()) pool_.emplace_back();
  Matrix* m = &pool_[in_use_++];
  if (obs::Metrics::enabled()) {
    // High-water marks of the per-thread arena: deepest simultaneous
    // acquisition, total pooled matrices, and pooled capacity in bytes
    // (gauges merge by max across threads, so the snapshot shows the worst
    // thread). The byte figure is the arena-side view that mem_stats'
    // process-wide VmRSS/VmHWM gauges bracket from the malloc side.
    static obs::Gauge* const high_water =
        obs::Metrics::GetGauge("workspace.in_use_high_water");
    static obs::Gauge* const pooled =
        obs::Metrics::GetGauge("workspace.pool_matrices");
    static obs::Gauge* const pool_bytes =
        obs::Metrics::GetGauge("workspace.pool_bytes_high_water");
    high_water->Update(static_cast<int64_t>(in_use_));
    pooled->Update(static_cast<int64_t>(pool_.size()));
    size_t bytes = 0;
    for (const Matrix& pooled_m : pool_) bytes += pooled_m.allocated_bytes();
    pool_bytes->Update(static_cast<int64_t>(bytes));
  }
  return m;
}

}  // namespace lncl::util
