#include "util/config.h"

#include <cctype>
#include <cstdlib>

namespace lncl::util {

Config::Config(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";
    }
  }
}

bool Config::Lookup(const std::string& key, std::string* value) const {
  auto it = values_.find(key);
  if (it != values_.end()) {
    *value = it->second;
    return true;
  }
  std::string env_key = "LNCL_";
  for (char c : key) {
    env_key += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (const char* env = std::getenv(env_key.c_str())) {
    *value = env;
    return true;
  }
  return false;
}

bool Config::Has(const std::string& key) const {
  std::string unused;
  return Lookup(key, &unused);
}

std::string Config::GetString(const std::string& key,
                              const std::string& default_value) const {
  std::string v;
  return Lookup(key, &v) ? v : default_value;
}

int Config::GetInt(const std::string& key, int default_value) const {
  std::string v;
  if (!Lookup(key, &v)) return default_value;
  try {
    return std::stoi(v);
  } catch (...) {
    return default_value;
  }
}

double Config::GetDouble(const std::string& key, double default_value) const {
  std::string v;
  if (!Lookup(key, &v)) return default_value;
  try {
    return std::stod(v);
  } catch (...) {
    return default_value;
  }
}

bool Config::GetBool(const std::string& key, bool default_value) const {
  std::string v;
  if (!Lookup(key, &v)) return default_value;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

}  // namespace lncl::util
