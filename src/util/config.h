#pragma once

#include <map>
#include <string>
#include <vector>

namespace lncl::util {

// Tiny command-line / environment configuration reader for the benchmark
// harness and examples.
//
// Accepted argv forms: `--key=value`, `--key value`, and bare `--flag`
// (treated as "1"). An environment variable `LNCL_<KEY>` (upper-cased key)
// provides a fallback, so e.g. `LNCL_FULL=1` switches benches to paper-scale
// sweeps without editing scripts.
class Config {
 public:
  Config() = default;
  Config(int argc, char** argv);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int GetInt(const std::string& key, int default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  void Set(const std::string& key, const std::string& value);

  // All unparsed positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  // Returns the raw value for key, checking argv first and the LNCL_<KEY>
  // environment variable second; empty optional-ish "" + found flag.
  bool Lookup(const std::string& key, std::string* value) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lncl::util

