#pragma once

#include <chrono>

namespace lncl::util {

// Monotonic wall-clock stopwatch for phase timing (epoch-loop breakdowns,
// bench end-to-end measurements).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Seconds since construction / the last Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Seconds(), then Reset() — for accumulating consecutive phases.
  double Lap() {
    const Clock::time_point now = Clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lncl::util

