#include "util/chain.h"
#include "util/check.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace lncl::util {


void ChainForwardBackward(const Vector& prior,
                          const Matrix& transition,
                          const Matrix& emission, Matrix* gamma,
                          Matrix* xi_sum) {
  const int t_len = emission.rows();
  const int k = emission.cols();
  LNCL_DCHECK(static_cast<int>(prior.size()) == k);
  LNCL_DCHECK(transition.rows() == k && transition.cols() == k);
  gamma->Resize(t_len, k);
  if (t_len == 0) return;

  auto normalize = [k](std::vector<double>* v) {
    double sum = 0.0;
    for (double x : *v) sum += x;
    if (sum <= 1e-300) {
      for (double& x : *v) x = 1.0 / k;
    } else {
      for (double& x : *v) x /= sum;
    }
  };

  std::vector<std::vector<double>> alpha(t_len, std::vector<double>(k));
  std::vector<std::vector<double>> beta(t_len, std::vector<double>(k, 1.0));
  for (int m = 0; m < k; ++m) alpha[0][m] = prior[m] * emission(0, m);
  normalize(&alpha[0]);
  for (int t = 1; t < t_len; ++t) {
    for (int b = 0; b < k; ++b) {
      double s = 0.0;
      for (int a = 0; a < k; ++a) s += alpha[t - 1][a] * transition(a, b);
      alpha[t][b] = s * emission(t, b);
    }
    normalize(&alpha[t]);
  }
  for (int t = t_len - 2; t >= 0; --t) {
    for (int a = 0; a < k; ++a) {
      double s = 0.0;
      for (int b = 0; b < k; ++b) {
        s += transition(a, b) * emission(t + 1, b) * beta[t + 1][b];
      }
      beta[t][a] = s;
    }
    normalize(&beta[t]);
  }

  for (int t = 0; t < t_len; ++t) {
    std::vector<double> g(k);
    for (int m = 0; m < k; ++m) g[m] = alpha[t][m] * beta[t][m];
    normalize(&g);
    for (int m = 0; m < k; ++m) {
      (*gamma)(t, m) = static_cast<float>(g[m]);
    }
  }

  if (xi_sum != nullptr) {
    LNCL_DCHECK(xi_sum->rows() == k && xi_sum->cols() == k);
    for (int t = 0; t + 1 < t_len; ++t) {
      double total = 0.0;
      std::vector<double> xi(static_cast<size_t>(k) * k);
      for (int a = 0; a < k; ++a) {
        for (int b = 0; b < k; ++b) {
          const double v = alpha[t][a] * transition(a, b) *
                           emission(t + 1, b) * beta[t + 1][b];
          xi[static_cast<size_t>(a) * k + b] = v;
          total += v;
        }
      }
      if (total <= 1e-300) continue;
      for (int a = 0; a < k; ++a) {
        for (int b = 0; b < k; ++b) {
          (*xi_sum)(a, b) += static_cast<float>(
              xi[static_cast<size_t>(a) * k + b] / total);
        }
      }
    }
  }
}


void ChainViterbi(const Vector& prior, const Matrix& transition,
                  const Matrix& emission, std::vector<int>* path) {
  const int t_len = emission.rows();
  const int k = emission.cols();
  path->assign(t_len, 0);
  if (t_len == 0) return;
  auto safe_log = [](double v) { return std::log(std::max(v, 1e-300)); };
  std::vector<std::vector<double>> delta(t_len, std::vector<double>(k));
  std::vector<std::vector<int>> back(t_len, std::vector<int>(k, 0));
  for (int m = 0; m < k; ++m) {
    delta[0][m] = safe_log(prior[m]) + safe_log(emission(0, m));
  }
  for (int t = 1; t < t_len; ++t) {
    for (int b = 0; b < k; ++b) {
      double best = -1e300;
      int arg = 0;
      for (int a = 0; a < k; ++a) {
        const double v = delta[t - 1][a] + safe_log(transition(a, b));
        if (v > best) {
          best = v;
          arg = a;
        }
      }
      delta[t][b] = best + safe_log(emission(t, b));
      back[t][b] = arg;
    }
  }
  int cur = 0;
  double best = -1e300;
  for (int m = 0; m < k; ++m) {
    if (delta[t_len - 1][m] > best) {
      best = delta[t_len - 1][m];
      cur = m;
    }
  }
  for (int t = t_len - 1; t >= 0; --t) {
    (*path)[t] = cur;
    cur = back[t][cur];
  }
}

}  // namespace lncl::util
