#include "util/matrix.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lncl::util {

void Matrix::AddScaled(const Matrix& other, float alpha) {
  LNCL_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  const float* src = other.data_.data();
  float* dst = data_.data();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += alpha * src[i];
}

void Matrix::Scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

namespace {

// Column block width: one panel of 4 B-rows (4 * kNc floats = 2 KB) plus the
// C row stays comfortably inside L1 while the k loop streams.
constexpr int kNc = 128;

inline void ScaleRow(float* c, int n, float beta) {
  if (beta == 0.0f) {
    std::fill(c, c + n, 0.0f);
  } else if (beta != 1.0f) {
    for (int j = 0; j < n; ++j) c[j] *= beta;
  }
}

// C (m x n) = alpha * A (m x k) * B (k x n) + beta * C.
void GemmNN(int m, int n, int kd, float alpha, const float* a, int lda,
            const float* b, int ldb, float beta, float* c, int ldc) {
  for (int jc = 0; jc < n; jc += kNc) {
    const int nb = std::min(kNc, n - jc);
    for (int i = 0; i < m; ++i) {
      float* __restrict cr = c + static_cast<size_t>(i) * ldc + jc;
      ScaleRow(cr, nb, beta);
      const float* ar = a + static_cast<size_t>(i) * lda;
      int k = 0;
      for (; k + 4 <= kd; k += 4) {
        const float a0 = alpha * ar[k];
        const float a1 = alpha * ar[k + 1];
        const float a2 = alpha * ar[k + 2];
        const float a3 = alpha * ar[k + 3];
        const float* __restrict b0 = b + static_cast<size_t>(k) * ldb + jc;
        const float* __restrict b1 = b0 + ldb;
        const float* __restrict b2 = b1 + ldb;
        const float* __restrict b3 = b2 + ldb;
        for (int j = 0; j < nb; ++j) {
          cr[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
      }
      for (; k < kd; ++k) {
        const float ak = alpha * ar[k];
        const float* __restrict br = b + static_cast<size_t>(k) * ldb + jc;
        for (int j = 0; j < nb; ++j) cr[j] += ak * br[j];
      }
    }
  }
}

// C (m x n) = alpha * A^T * B + beta * C, with A stored k x m.
void GemmTN(int m, int n, int kd, float alpha, const float* a, int lda,
            const float* b, int ldb, float beta, float* c, int ldc) {
  for (int jc = 0; jc < n; jc += kNc) {
    const int nb = std::min(kNc, n - jc);
    for (int i = 0; i < m; ++i) {
      ScaleRow(c + static_cast<size_t>(i) * ldc + jc, nb, beta);
    }
    int k = 0;
    for (; k + 4 <= kd; k += 4) {
      const float* a0r = a + static_cast<size_t>(k) * lda;
      const float* a1r = a0r + lda;
      const float* a2r = a1r + lda;
      const float* a3r = a2r + lda;
      const float* __restrict b0 = b + static_cast<size_t>(k) * ldb + jc;
      const float* __restrict b1 = b0 + ldb;
      const float* __restrict b2 = b1 + ldb;
      const float* __restrict b3 = b2 + ldb;
      for (int i = 0; i < m; ++i) {
        const float a0 = alpha * a0r[i];
        const float a1 = alpha * a1r[i];
        const float a2 = alpha * a2r[i];
        const float a3 = alpha * a3r[i];
        float* __restrict cr = c + static_cast<size_t>(i) * ldc + jc;
        for (int j = 0; j < nb; ++j) {
          cr[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
      }
    }
    for (; k < kd; ++k) {
      const float* akr = a + static_cast<size_t>(k) * lda;
      const float* __restrict br = b + static_cast<size_t>(k) * ldb + jc;
      for (int i = 0; i < m; ++i) {
        const float ak = alpha * akr[i];
        float* __restrict cr = c + static_cast<size_t>(i) * ldc + jc;
        for (int j = 0; j < nb; ++j) cr[j] += ak * br[j];
      }
    }
  }
}

// C (m x n) = alpha * A * B^T + beta * C, with B stored n x k: every entry
// is a stride-1 dot product; four output columns share one load of A's row.
void GemmNT(int m, int n, int kd, float alpha, const float* a, int lda,
            const float* b, int ldb, float beta, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    const float* __restrict ar = a + static_cast<size_t>(i) * lda;
    float* __restrict cr = c + static_cast<size_t>(i) * ldc;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* __restrict b0 = b + static_cast<size_t>(j) * ldb;
      const float* __restrict b1 = b0 + ldb;
      const float* __restrict b2 = b1 + ldb;
      const float* __restrict b3 = b2 + ldb;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int k = 0; k < kd; ++k) {
        const float ak = ar[k];
        s0 += ak * b0[k];
        s1 += ak * b1[k];
        s2 += ak * b2[k];
        s3 += ak * b3[k];
      }
      if (beta == 0.0f) {
        cr[j] = alpha * s0;
        cr[j + 1] = alpha * s1;
        cr[j + 2] = alpha * s2;
        cr[j + 3] = alpha * s3;
      } else {
        cr[j] = alpha * s0 + beta * cr[j];
        cr[j + 1] = alpha * s1 + beta * cr[j + 1];
        cr[j + 2] = alpha * s2 + beta * cr[j + 2];
        cr[j + 3] = alpha * s3 + beta * cr[j + 3];
      }
    }
    for (; j < n; ++j) {
      const float* __restrict br = b + static_cast<size_t>(j) * ldb;
      float s = 0.0f;
      for (int k = 0; k < kd; ++k) s += ar[k] * br[k];
      cr[j] = beta == 0.0f ? alpha * s : alpha * s + beta * cr[j];
    }
  }
}

// C (m x n) = alpha * A^T * B^T + beta * C (A: k x m, B: n x k). Not on any
// hot path; kept simple.
void GemmTT(int m, int n, int kd, float alpha, const float* a, int lda,
            const float* b, int ldb, float beta, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    float* cr = c + static_cast<size_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      const float* br = b + static_cast<size_t>(j) * ldb;
      float s = 0.0f;
      for (int k = 0; k < kd; ++k) s += a[static_cast<size_t>(k) * lda + i] * br[k];
      cr[j] = beta == 0.0f ? alpha * s : alpha * s + beta * cr[j];
    }
  }
}

}  // namespace

void GemmRaw(int m, int n, int k, float alpha, const float* a, int lda,
             Trans trans_a, const float* b, int ldb, Trans trans_b, float beta,
             float* c, int ldc) {
  if (obs::Metrics::enabled()) {
    // Every dense product funnels through here (Gemm delegates), so these
    // two counters are the system-wide GEMM call/FLOP ledger.
    static obs::Counter* const calls = obs::Metrics::GetCounter("gemm.calls");
    static obs::Counter* const flops = obs::Metrics::GetCounter("gemm.flops");
    calls->Increment();
    flops->Add(2ull * static_cast<uint64_t>(m) * static_cast<uint64_t>(n) *
               static_cast<uint64_t>(k));
  }
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (int i = 0; i < m; ++i) ScaleRow(c + static_cast<size_t>(i) * ldc, n, beta);
    return;
  }
  if (trans_a == Trans::kNo && trans_b == Trans::kNo) {
    GemmNN(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else if (trans_a == Trans::kYes && trans_b == Trans::kNo) {
    GemmTN(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else if (trans_a == Trans::kNo && trans_b == Trans::kYes) {
    GemmNT(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else {
    GemmTT(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  }
}

void Gemm(float alpha, const Matrix& a, Trans trans_a, const Matrix& b,
          Trans trans_b, float beta, Matrix* c) {
  const int m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const int kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const int n = trans_b == Trans::kNo ? b.cols() : b.rows();
  LNCL_DCHECK(ka == kb);
  (void)kb;
  if (beta == 0.0f) {
    c->ResizeNoZero(m, n);
  } else {
    LNCL_AUDIT_SHAPE(*c, m, n);
  }
  GemmRaw(m, n, ka, alpha, a.data(), a.cols(), trans_a, b.data(), b.cols(),
          trans_b, beta, c->data(), c->cols());
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  LNCL_DCHECK(a.cols() == b.rows());
  Gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, out);
}

void MatMulTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  LNCL_DCHECK(a.rows() == b.rows());
  Gemm(1.0f, a, Trans::kYes, b, Trans::kNo, 0.0f, out);
}

void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  LNCL_DCHECK(a.cols() == b.cols());
  Gemm(1.0f, a, Trans::kNo, b, Trans::kYes, 0.0f, out);
}

void TransposeInto(const Matrix& src, Matrix* out) {
  const int rows = src.rows();
  const int cols = src.cols();
  out->ResizeNoZero(cols, rows);
  for (int i = 0; i < rows; ++i) {
    const float* sr = src.Row(i);
    for (int j = 0; j < cols; ++j) (*out)(j, i) = sr[j];
  }
}

void MatVec(const Matrix& w, const Vector& x, Vector* y) {
  LNCL_DCHECK(static_cast<int>(x.size()) == w.cols());
  const int m = w.rows();
  const int n = w.cols();
  y->resize(m);
  const float* __restrict xv = x.data();
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* __restrict r0 = w.Row(i);
    const float* __restrict r1 = w.Row(i + 1);
    const float* __restrict r2 = w.Row(i + 2);
    const float* __restrict r3 = w.Row(i + 3);
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    for (int j = 0; j < n; ++j) {
      const float xj = xv[j];
      s0 += r0[j] * xj;
      s1 += r1[j] * xj;
      s2 += r2[j] * xj;
      s3 += r3[j] * xj;
    }
    (*y)[i] = s0;
    (*y)[i + 1] = s1;
    (*y)[i + 2] = s2;
    (*y)[i + 3] = s3;
  }
  for (; i < m; ++i) {
    const float* __restrict row = w.Row(i);
    float s = 0.0f;
    for (int j = 0; j < n; ++j) s += row[j] * xv[j];
    (*y)[i] = s;
  }
}

void MatVecTrans(const Matrix& w, const Vector& x, Vector* y) {
  LNCL_DCHECK(static_cast<int>(x.size()) == w.rows());
  const int m = w.rows();
  const int n = w.cols();
  y->assign(n, 0.0f);
  float* __restrict yv = y->data();
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    const float x0 = x[i];
    const float x1 = x[i + 1];
    const float x2 = x[i + 2];
    const float x3 = x[i + 3];
    const float* __restrict r0 = w.Row(i);
    const float* __restrict r1 = w.Row(i + 1);
    const float* __restrict r2 = w.Row(i + 2);
    const float* __restrict r3 = w.Row(i + 3);
    for (int j = 0; j < n; ++j) {
      yv[j] += x0 * r0[j] + x1 * r1[j] + x2 * r2[j] + x3 * r3[j];
    }
  }
  for (; i < m; ++i) {
    const float xi = x[i];
    const float* __restrict row = w.Row(i);
    for (int j = 0; j < n; ++j) yv[j] += xi * row[j];
  }
}

void OuterAdd(const Vector& x, const Vector& y, float alpha, Matrix* w) {
  LNCL_DCHECK(w->rows() == static_cast<int>(x.size()));
  LNCL_DCHECK(w->cols() == static_cast<int>(y.size()));
  const int m = w->rows();
  const int n = w->cols();
  const float* __restrict yv = y.data();
  for (int i = 0; i < m; ++i) {
    const float xi = alpha * x[i];
    float* __restrict row = w->Row(i);
    for (int j = 0; j < n; ++j) row[j] += xi * yv[j];
  }
}

void AddScaled(const Vector& x, float alpha, Vector* y) {
  LNCL_DCHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

float Dot(const Vector& a, const Vector& b) {
  LNCL_DCHECK(a.size() == b.size());
  float s = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace lncl::util
