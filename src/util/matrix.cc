#include "util/matrix.h"

#include <algorithm>
#include <atomic>

#include "util/gemm_kernel.h"

namespace lncl::util {

uint64_t NextMatrixVersion() {
  // Ticket block size: one shared fetch_add hands a thread 2^20 tickets.
  constexpr uint64_t kBlock = uint64_t{1} << 20;
  static std::atomic<uint64_t> g_next_block{1};
  thread_local uint64_t next = 0;
  thread_local uint64_t limit = 0;
  if (next == limit) {
    next = g_next_block.fetch_add(kBlock, std::memory_order_relaxed);
    limit = next + kBlock;
  }
  return next++;
}

void Matrix::AddScaled(const Matrix& other, float alpha) {
  LNCL_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  BumpVersion();
  const float* src = other.data_.data();
  float* dst = data_.data();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += alpha * src[i];
}

void Matrix::Scale(float alpha) {
  BumpVersion();
  for (float& v : data_) v *= alpha;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

// All four transpose variants run on the register-blocked microkernels in
// util/gemm_kernel.cc (scalar/SIMD selected once at startup; bit-identical
// either way). GemmRaw serves raw-pointer strided operands; the Matrix
// wrappers below additionally route trans_b == kYes operands through the
// version-keyed pack cache so weight matrices are transposed once per
// optimizer step instead of once per call.

void GemmRaw(int m, int n, int k, float alpha, const float* a, int lda,
             Trans trans_a, const float* b, int ldb, Trans trans_b, float beta,
             float* c, int ldc) {
  gemm::GemmEx(m, n, k, alpha, a, lda, trans_a, b, ldb, trans_b, beta, c, ldc,
               nullptr, Act::kNone);
}

void GemmEx(float alpha, const Matrix& a, Trans trans_a, const Matrix& b,
            Trans trans_b, float beta, Matrix* c, const float* bias,
            Act act) {
  const int m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const int kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const int n = trans_b == Trans::kNo ? b.cols() : b.rows();
  LNCL_DCHECK(ka == kb);
  (void)kb;
  if (beta == 0.0f) {
    c->ResizeNoZero(m, n);
  } else {
    LNCL_AUDIT_SHAPE(*c, m, n);
  }
  int ldb = 0;
  const float* bp = gemm::PackedOpB(b, trans_b, &ldb);
  gemm::GemmEx(m, n, ka, alpha, a.data(), a.cols(), trans_a, bp, ldb,
               Trans::kNo, beta, c->data(), c->cols(), bias, act);
}

void Gemm(float alpha, const Matrix& a, Trans trans_a, const Matrix& b,
          Trans trans_b, float beta, Matrix* c) {
  GemmEx(alpha, a, trans_a, b, trans_b, beta, c, nullptr, Act::kNone);
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  LNCL_DCHECK(a.cols() == b.rows());
  Gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, out);
}

void MatMulTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  LNCL_DCHECK(a.rows() == b.rows());
  Gemm(1.0f, a, Trans::kYes, b, Trans::kNo, 0.0f, out);
}

void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  LNCL_DCHECK(a.cols() == b.cols());
  Gemm(1.0f, a, Trans::kNo, b, Trans::kYes, 0.0f, out);
}

void TransposeInto(const Matrix& src, Matrix* out) {
  const int rows = src.rows();
  const int cols = src.cols();
  out->ResizeNoZero(cols, rows);
  float* dst = out->data();
  for (int i = 0; i < rows; ++i) {
    const float* sr = src.Row(i);
    for (int j = 0; j < cols; ++j) dst[static_cast<size_t>(j) * rows + i] = sr[j];
  }
}

void MatVec(const Matrix& w, const Vector& x, Vector* y) {
  LNCL_DCHECK(static_cast<int>(x.size()) == w.cols());
  const int m = w.rows();
  const int n = w.cols();
  y->resize(m);
  // y^T = x^T * W^T: the m = 1 row form of the batched product, so a vector
  // forward is bit-identical to any row of the corresponding rows forward,
  // and W's packed panel comes from the same cache.
  int ldb = 0;
  const float* wp = gemm::PackedOpB(w, Trans::kYes, &ldb);
  gemm::GemmEx(1, m, n, 1.0f, x.data(), n, Trans::kNo, wp, ldb, Trans::kNo,
               0.0f, y->data(), m, nullptr, Act::kNone);
}

void MatVecTrans(const Matrix& w, const Vector& x, Vector* y) {
  LNCL_DCHECK(static_cast<int>(x.size()) == w.rows());
  const int m = w.rows();
  const int n = w.cols();
  y->resize(n);
  gemm::GemmEx(1, n, m, 1.0f, x.data(), m, Trans::kNo, w.data(), n,
               Trans::kNo, 0.0f, y->data(), n, nullptr, Act::kNone);
}

void OuterAdd(const Vector& x, const Vector& y, float alpha, Matrix* w) {
  LNCL_DCHECK(w->rows() == static_cast<int>(x.size()));
  LNCL_DCHECK(w->cols() == static_cast<int>(y.size()));
  const int m = w->rows();
  const int n = w->cols();
  const float* __restrict yv = y.data();
  for (int i = 0; i < m; ++i) {
    const float xi = alpha * x[i];
    float* __restrict row = w->Row(i);
    for (int j = 0; j < n; ++j) row[j] += xi * yv[j];
  }
}

void AddScaled(const Vector& x, float alpha, Vector* y) {
  LNCL_DCHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

float Dot(const Vector& a, const Vector& b) {
  LNCL_DCHECK(a.size() == b.size());
  float s = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace lncl::util
