#include "util/matrix.h"

#include <algorithm>

namespace lncl::util {

void Matrix::AddScaled(const Matrix& other, float alpha) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  const float* src = other.data_.data();
  float* dst = data_.data();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += alpha * src[i];
}

void Matrix::Scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  out->Resize(a.rows(), b.cols());
  const int n = b.cols();
  for (int i = 0; i < a.rows(); ++i) {
    float* out_row = out->Row(i);
    for (int k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      if (aik == 0.0f) continue;
      const float* b_row = b.Row(k);
      for (int j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
}

void MatMulTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  out->Resize(a.cols(), b.cols());
  const int n = b.cols();
  for (int k = 0; k < a.rows(); ++k) {
    const float* a_row = a.Row(k);
    const float* b_row = b.Row(k);
    for (int i = 0; i < a.cols(); ++i) {
      const float aki = a_row[i];
      if (aki == 0.0f) continue;
      float* out_row = out->Row(i);
      for (int j = 0; j < n; ++j) out_row[j] += aki * b_row[j];
    }
  }
}

void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.cols());
  out->Resize(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out->Row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const float* b_row = b.Row(j);
      float s = 0.0f;
      for (int k = 0; k < a.cols(); ++k) s += a_row[k] * b_row[k];
      out_row[j] = s;
    }
  }
}

void MatVec(const Matrix& w, const Vector& x, Vector* y) {
  assert(static_cast<int>(x.size()) == w.cols());
  y->assign(w.rows(), 0.0f);
  for (int i = 0; i < w.rows(); ++i) {
    const float* row = w.Row(i);
    float s = 0.0f;
    for (int j = 0; j < w.cols(); ++j) s += row[j] * x[j];
    (*y)[i] = s;
  }
}

void MatVecTrans(const Matrix& w, const Vector& x, Vector* y) {
  assert(static_cast<int>(x.size()) == w.rows());
  y->assign(w.cols(), 0.0f);
  for (int i = 0; i < w.rows(); ++i) {
    const float xi = x[i];
    if (xi == 0.0f) continue;
    const float* row = w.Row(i);
    for (int j = 0; j < w.cols(); ++j) (*y)[j] += xi * row[j];
  }
}

void OuterAdd(const Vector& x, const Vector& y, float alpha, Matrix* w) {
  assert(w->rows() == static_cast<int>(x.size()));
  assert(w->cols() == static_cast<int>(y.size()));
  for (int i = 0; i < w->rows(); ++i) {
    const float xi = alpha * x[i];
    if (xi == 0.0f) continue;
    float* row = w->Row(i);
    for (int j = 0; j < w->cols(); ++j) row[j] += xi * y[j];
  }
}

void AddScaled(const Vector& x, float alpha, Vector* y) {
  assert(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

float Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  float s = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace lncl::util
