#include "util/check.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/run_log.h"
#include "util/matrix.h"

namespace lncl::util {

namespace {

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

std::string Format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

// Row sums after an explicit normalization are a few float ulps per class
// off 1.0; anything past this tolerance is a real denormalization, not
// rounding.
constexpr double kSumTol = 1e-4;

// A probability mildly below 0 or above 1 from rounding is impossible after
// normalization with non-negative inputs, so entries are checked strictly.
bool IsProbability(float x) {
  return std::isfinite(x) && x >= 0.0f && x <= 1.0f + 1e-6f;
}

void CheckDistributionRow(const float* row, int n, int r, const char* what,
                          const char* expr, const char* file, int line) {
  double sum = 0.0;
  for (int c = 0; c < n; ++c) {
    if (!IsProbability(row[c])) {
      CheckFailure(file, line, expr,
                   Format("%s: entry (%d,%d) = %g is not a probability", what,
                          r, c, static_cast<double>(row[c])));
    }
    sum += row[c];
  }
  if (!(std::fabs(sum - 1.0) <= kSumTol)) {
    CheckFailure(
        file, line, expr,
        Format("%s: row %d sums to %.9g, not 1", what, r, sum));
  }
}

}  // namespace

void CheckFailure(const char* file, int line, const char* expr,
                  const std::string& detail) {
  std::fprintf(stderr, "[CHECK %s:%d] CHECK failed: %s%s%s%s\n",
               Basename(file), line, expr, detail.empty() ? "" : " (",
               detail.c_str(), detail.empty() ? "" : ")");
  std::fflush(stderr);
  // Drain any live run logs so the crashed fit leaves an inspectable JSONL
  // tail (best-effort; never blocks the abort).
  obs::FlushRunLogs();
  std::abort();
}

namespace audit {

void CheckFinite(float x, const char* expr, const char* file, int line) {
  if (!std::isfinite(x)) {
    CheckFailure(file, line, expr,
                 Format("value %g is not finite", static_cast<double>(x)));
  }
}

void CheckFinite(double x, const char* expr, const char* file, int line) {
  if (!std::isfinite(x)) {
    CheckFailure(file, line, expr, Format("value %g is not finite", x));
  }
}

void CheckFinite(const std::vector<float>& v, const char* expr,
                 const char* file, int line) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      CheckFailure(file, line, expr,
                   Format("entry %zu = %g is not finite", i,
                          static_cast<double>(v[i])));
    }
  }
}

void CheckFinite(const Matrix& m, const char* expr, const char* file,
                 int line) {
  const float* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(data[i])) {
      CheckFailure(file, line, expr,
                   Format("entry (%d,%d) = %g is not finite",
                          static_cast<int>(i) / m.cols(),
                          static_cast<int>(i) % m.cols(),
                          static_cast<double>(data[i])));
    }
  }
}

void CheckSimplex(const std::vector<float>& v, const char* expr,
                  const char* file, int line) {
  if (v.empty()) return;
  CheckDistributionRow(v.data(), static_cast<int>(v.size()), 0, "simplex",
                       expr, file, line);
}

void CheckSimplex(const Matrix& m, const char* expr, const char* file,
                  int line) {
  for (int r = 0; r < m.rows(); ++r) {
    CheckDistributionRow(m.Row(r), m.cols(), r, "simplex", expr, file, line);
  }
}

void CheckRowStochastic(const Matrix& m, const char* expr, const char* file,
                        int line) {
  for (int r = 0; r < m.rows(); ++r) {
    CheckDistributionRow(m.Row(r), m.cols(), r, "row-stochastic", expr, file,
                         line);
  }
}

void CheckShape(const Matrix& m, int rows, int cols, const char* expr,
                const char* file, int line) {
  if (m.rows() != rows || m.cols() != cols) {
    CheckFailure(file, line, expr,
                 Format("shape %dx%d, expected %dx%d", m.rows(), m.cols(),
                        rows, cols));
  }
}

}  // namespace audit
}  // namespace lncl::util
