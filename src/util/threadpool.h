#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace lncl::util {

// Fixed-size worker pool. Used in two ways:
//  * by the benchmark harness to run independent (method, seed) experiments
//    concurrently — each submitted job owns all of its state;
//  * through ParallelRun / Parallelizer below for deterministic
//    intra-model parallelism (parallel E-step sweeps, sharded minibatch
//    gradient accumulation).
class ThreadPool {
 public:
  // Spawns `num_threads` workers (>=1; defaults to hardware concurrency).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a job. Safe to call from any thread until Wait()/destruction.
  void Submit(std::function<void()> job);

  // Blocks until every submitted job has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs fn(i) for i in [0, n) across the pool workers AND the calling
  // thread, returning when exactly these n calls have completed (other
  // concurrently submitted work is unaffected). Indices are handed out
  // dynamically, so this is safe to call even when every worker is busy:
  // the caller participates and can drain the whole range alone.
  void ParallelRun(int n, const std::function<void(int)>& fn);

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  static void ParallelFor(int n, int num_threads,
                          const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  int in_flight_ = 0;
  bool stop_ = false;
};

// Deterministic intra-model parallelism.
//
// Work is split into a FIXED number of contiguous slots (kSlots, independent
// of the worker count). Each slot owns its accumulator state, computed
// serially within the slot in index order; the caller then merges the slot
// states in slot-index order. Because neither the slot structure nor the
// merge order depends on how many threads execute the slots, the result is
// bit-identical for ANY thread count — including 1, where the slots simply
// run back to back on the calling thread. This is what lets training use
// all cores without giving up reproducibility (see DESIGN.md §5).
class Parallelizer {
 public:
  // Fixed slot count for sharded reductions. Changing it changes the
  // floating-point merge order (and therefore results); it is a build-time
  // constant, not a tuning knob.
  static constexpr int kSlots = 8;

  // num_threads <= 1 means serial execution (no pool is created).
  explicit Parallelizer(int num_threads = 1);

  // Runs fn(slot) for slot in [0, slots). Slots may execute on any thread
  // and in any order; they must only touch per-slot state.
  void RunSlots(int slots, const std::function<void(int)>& fn);

  // Contiguous range [begin, end) of items owned by `slot` when n items are
  // statically split across `slots` slots (remainder spread over the first
  // slots). Pure function of (n, slot, slots) — never of the thread count.
  static std::pair<int, int> SlotRange(int n, int slot, int slots);

  int num_threads() const { return num_threads_; }

 private:
  int num_threads_;
  std::unique_ptr<ThreadPool> pool_;  // only when num_threads > 1
};

}  // namespace lncl::util

