#ifndef LNCL_UTIL_THREADPOOL_H_
#define LNCL_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lncl::util {

// Fixed-size worker pool used by the benchmark harness to run independent
// (method, seed) experiments concurrently. Each submitted job owns all of its
// state (models, RNGs), so jobs never share mutable data.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (>=1; defaults to hardware concurrency).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a job. Safe to call from any thread until Wait()/destruction.
  void Submit(std::function<void()> job);

  // Blocks until every submitted job has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  static void ParallelFor(int n, int num_threads,
                          const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  int in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace lncl::util

#endif  // LNCL_UTIL_THREADPOOL_H_
