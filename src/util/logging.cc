#include "util/logging.h"

#include <cstdio>
#include <cstring>

namespace lncl::util {

std::mutex Logger::mu_;
LogLevel Logger::threshold_ = LogLevel::kInfo;

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

Logger::Logger(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

Logger::~Logger() {
  if (level_ < threshold_) return;
  std::unique_lock<std::mutex> lock(mu_);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

void Logger::SetLogLevel(LogLevel level) {
  std::unique_lock<std::mutex> lock(mu_);
  threshold_ = level;
}

LogLevel Logger::GetLogLevel() { return threshold_; }

void SetLogLevel(LogLevel level) { Logger::SetLogLevel(level); }

}  // namespace lncl::util
