#include "util/logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lncl::util {

namespace {

// LNCL_LOG_LEVEL (debug|info|warning|error, case-insensitive; warn/err
// accepted) pins the threshold for the whole process: it is read once, and
// while forced, programmatic SetLogLevel calls are ignored — so e.g.
// LNCL_LOG_LEVEL=debug surfaces per-epoch trainer chatter through benches
// that default themselves to kWarning.
struct EnvLevel {
  bool forced = false;
  LogLevel level = LogLevel::kInfo;
};

bool EqualsIgnoreCase(const char* a, const char* b) {
  for (; *a && *b; ++a, ++b) {
    if (std::tolower(static_cast<unsigned char>(*a)) !=
        std::tolower(static_cast<unsigned char>(*b))) {
      return false;
    }
  }
  return *a == '\0' && *b == '\0';
}

EnvLevel ReadEnvLevel() {
  EnvLevel env;
  const char* value = std::getenv("LNCL_LOG_LEVEL");
  if (value == nullptr || *value == '\0') return env;
  if (EqualsIgnoreCase(value, "debug")) {
    env = {true, LogLevel::kDebug};
  } else if (EqualsIgnoreCase(value, "info")) {
    env = {true, LogLevel::kInfo};
  } else if (EqualsIgnoreCase(value, "warning") ||
             EqualsIgnoreCase(value, "warn")) {
    env = {true, LogLevel::kWarning};
  } else if (EqualsIgnoreCase(value, "error") ||
             EqualsIgnoreCase(value, "err")) {
    env = {true, LogLevel::kError};
  } else {
    std::fprintf(stderr,
                 "[WARN logging.cc] unrecognized LNCL_LOG_LEVEL '%s' "
                 "(want debug|info|warning|error); ignoring\n",
                 value);
  }
  return env;
}

const EnvLevel& GetEnvLevel() {
  static const EnvLevel env = ReadEnvLevel();
  return env;
}

}  // namespace

std::mutex Logger::mu_;
LogLevel Logger::threshold_ =
    GetEnvLevel().forced ? GetEnvLevel().level : LogLevel::kInfo;

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

Logger::Logger(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

Logger::~Logger() {
  if (level_ < threshold_) return;
  std::unique_lock<std::mutex> lock(mu_);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

void Logger::SetLogLevel(LogLevel level) {
  if (GetEnvLevel().forced) return;  // LNCL_LOG_LEVEL wins for the process
  std::unique_lock<std::mutex> lock(mu_);
  threshold_ = level;
}

LogLevel Logger::GetLogLevel() { return threshold_; }

void SetLogLevel(LogLevel level) { Logger::SetLogLevel(level); }

}  // namespace lncl::util
