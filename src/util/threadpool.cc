#include "util/threadpool.h"

#include <algorithm>

namespace lncl::util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    jobs_.push(std::move(job));
    ++in_flight_;
  }
  cv_job_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int n, int num_threads,
                             const std::function<void(int)>& fn) {
  if (n <= 0) return;
  ThreadPool pool(std::min(n, num_threads <= 0 ? n : num_threads));
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace lncl::util
