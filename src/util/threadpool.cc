#include "util/threadpool.h"

#include <algorithm>
#include <atomic>

namespace lncl::util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    jobs_.push(std::move(job));
    ++in_flight_;
  }
  cv_job_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

namespace {

// Shared state for one ParallelRun call. Helper jobs may outlive the call
// (a queued helper can start after the range is drained and exit
// immediately), so the state — including a copy of fn — is shared_ptr-owned.
struct RunState {
  explicit RunState(int n_in, std::function<void(int)> fn_in)
      : n(n_in), fn(std::move(fn_in)) {}
  const int n;
  const std::function<void(int)> fn;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

void DrainRange(const std::shared_ptr<RunState>& st) {
  int i;
  while ((i = st->next.fetch_add(1, std::memory_order_relaxed)) < st->n) {
    st->fn(i);
    if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 == st->n) {
      std::lock_guard<std::mutex> lock(st->mu);
      st->cv.notify_all();
    }
  }
}

}  // namespace

void ThreadPool::ParallelRun(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  auto st = std::make_shared<RunState>(n, fn);
  const int helpers = std::min(num_threads(), n - 1);
  for (int h = 0; h < helpers; ++h) {
    Submit([st] { DrainRange(st); });
  }
  DrainRange(st);  // the caller participates, so progress never stalls
  std::unique_lock<std::mutex> lock(st->mu);
  st->cv.wait(lock,
              [&] { return st->done.load(std::memory_order_acquire) == n; });
}

void ThreadPool::ParallelFor(int n, int num_threads,
                             const std::function<void(int)>& fn) {
  if (n <= 0) return;
  ThreadPool pool(std::min(n, num_threads <= 0 ? n : num_threads));
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

Parallelizer::Parallelizer(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  if (num_threads_ > 1) {
    // The calling thread participates in RunSlots, so spawn one fewer
    // worker than the requested parallelism.
    pool_ = std::make_unique<ThreadPool>(num_threads_ - 1);
  }
}

void Parallelizer::RunSlots(int slots, const std::function<void(int)>& fn) {
  if (slots <= 0) return;
  if (pool_ == nullptr || slots == 1) {
    for (int s = 0; s < slots; ++s) fn(s);
    return;
  }
  pool_->ParallelRun(slots, fn);
}

std::pair<int, int> Parallelizer::SlotRange(int n, int slot, int slots) {
  const int base = n / slots;
  const int rem = n % slots;
  const int begin = slot * base + std::min(slot, rem);
  const int end = begin + base + (slot < rem ? 1 : 0);
  return {begin, end};
}

}  // namespace lncl::util
