#pragma once

#include <cstddef>
#include <deque>

#include "util/check.h"
#include "util/matrix.h"

#if LNCL_AUDIT_ENABLED
#include <algorithm>
#include <limits>
#endif

namespace lncl::util {

// Per-thread arena of reusable Matrix temporaries for the batched prediction
// kernels.
//
// A batched forward pass needs a handful of scratch matrices (packed inputs,
// GEMM staging buffers, per-step recurrent state) whose shapes change with
// the bucket composition. Allocating them per call would put the heap on the
// hot path; keeping them as thread_local statics in every layer scatters the
// memory and leaks capacity into idle threads one layer at a time. The
// workspace centralizes the pool: acquisition is a bump of a cursor into a
// deque (pointer-stable, so nested scopes never invalidate each other), and
// each Matrix keeps its capacity across reuses (Resize reuses allocations).
//
// Lifetime rules:
//  * Acquire matrices only through WorkspaceScope; the scope restores the
//    cursor on destruction, LIFO, so a matrix is valid until its scope dies.
//  * Scopes nest: a layer kernel may open its own scope while its caller
//    holds live workspace matrices (the deque guarantees their addresses
//    survive the inner scope's acquisitions).
//  * Never hand a workspace matrix across threads or store a reference
//    beyond the scope that acquired it.
class Workspace {
 public:
  // The calling thread's arena (created on first use, reused for the life of
  // the thread).
  static Workspace& PerThread();

  struct Mark {
    size_t in_use = 0;
  };

  Mark Save() const { return {in_use_}; }
  void Restore(Mark mark) { in_use_ = mark.in_use; }

  // Next free pooled matrix; contents are stale garbage from a previous use.
  Matrix* Acquire();

 private:
  std::deque<Matrix> pool_;
  size_t in_use_ = 0;
};

#if LNCL_AUDIT_ENABLED
// Audit builds hand out workspace matrices filled with signaling NaN instead
// of stale garbage: a packed kernel that reads a lane before writing it then
// propagates NaN into its (audited) outputs instead of silently reusing a
// previous bucket's values. Plain builds keep the contents untouched — the
// contract that they are unspecified is unchanged.
inline void PoisonForAudit(Matrix* m) {
  std::fill_n(m->data(), m->size(),
              std::numeric_limits<float>::signaling_NaN());
}
#endif

// RAII cursor mark over the calling thread's Workspace. All matrices handed
// out by this scope are reclaimed (capacity kept, contents abandoned) when
// the scope is destroyed.
class WorkspaceScope {
 public:
  WorkspaceScope() : ws_(Workspace::PerThread()), mark_(ws_.Save()) {}
  ~WorkspaceScope() { ws_.Restore(mark_); }

  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

  // A pooled matrix with unspecified contents and shape.
  Matrix& NewMatrix() {
    Matrix& m = *ws_.Acquire();
#if LNCL_AUDIT_ENABLED
    PoisonForAudit(&m);
#endif
    return m;
  }

  // A pooled matrix resized to rows x cols without initialization.
  Matrix& NewMatrix(int rows, int cols) {
    Matrix& m = *ws_.Acquire();
    m.ResizeNoZero(rows, cols);
#if LNCL_AUDIT_ENABLED
    PoisonForAudit(&m);
#endif
    return m;
  }

 private:
  Workspace& ws_;
  Workspace::Mark mark_;
};

}  // namespace lncl::util
