#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace lncl::util {

void Table::Print(std::ostream& os) const {
  // Column widths over header and all rows.
  size_t num_cols = header_.size();
  for (const auto& row : rows_) num_cols = std::max(num_cols, row.size());
  std::vector<size_t> widths(num_cols, 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  size_t total = 0;
  for (size_t w : widths) total += w + 3;

  auto print_rule = [&os, total] { os << std::string(total, '-') << "\n"; };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size() + 3, ' ');
    }
    os << "\n";
  };

  os << "== " << title_ << " ==\n";
  print_rule();
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), static_cast<int>(r)) !=
        separators_.end()) {
      print_rule();
    }
    print_row(rows_[r]);
  }
  print_rule();
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      const bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out << '"';
        for (char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << "\n";
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(out);
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatMeanStd(double mean, double stddev) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.2f ±%.2f", mean, stddev);
  return buf;
}

}  // namespace lncl::util
