#pragma once

#include "util/matrix.h"

namespace lncl::util {

// Exact smoothing on a discrete hidden Markov chain.
//
// Inputs: initial distribution `prior` (K), row-stochastic transition matrix
// `transition` (K x K), and per-step emission likelihoods `emission`
// (T x K; entry (t, m) = p(observations at step t | state m), any positive
// scale). Outputs: posterior state marginals gamma (T x K) and, when
// `xi_sum` is non-null, the summed pairwise posteriors
// sum_t p(s_t = a, s_{t+1} = b | obs) accumulated *into* xi_sum (callers
// zero it once and accumulate across instances for an EM M-step).
//
// Messages are locally renormalized, so long sequences are numerically
// safe. Used by the sequence truth-inference methods (HMM-Crowd, BSC-seq),
// the rule projector, and the linear-chain CRF.
void ChainForwardBackward(const Vector& prior, const Matrix& transition,
                          const Matrix& emission, Matrix* gamma,
                          Matrix* xi_sum);

// Viterbi decoding on the same parameterization: returns the most probable
// state sequence. `path` is resized to emission.rows().
void ChainViterbi(const Vector& prior, const Matrix& transition,
                  const Matrix& emission, std::vector<int>* path);

}  // namespace lncl::util

