#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace lncl::util {

// Aligned text-table writer used by the bench harness to print the paper's
// tables (Tables II-IV) in the same row/column layout. Also exports CSV so
// results can be diffed or plotted downstream.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

  // Appends a row of preformatted cells. Rows may be ragged; missing cells
  // print as empty.
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Appends a visual separator between row groups (e.g. paradigms).
  void AddSeparator() { separators_.push_back(static_cast<int>(rows_.size())); }

  // Renders the aligned table to `os`.
  void Print(std::ostream& os) const;

  // Writes the table as CSV (header + rows, comma-separated, quoted as
  // needed) to `path`. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  const std::string& title() const { return title_; }
  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<int> separators_;
};

// Formats a double with `digits` decimal places.
std::string FormatFixed(double value, int digits = 2);

// Formats "mean ± std" with two decimals.
std::string FormatMeanStd(double mean, double stddev);

}  // namespace lncl::util

