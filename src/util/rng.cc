#include "util/rng.h"

#include <numeric>

namespace lncl::util {

double Rng::Beta(double a, double b) {
  std::gamma_distribution<double> ga(a, 1.0);
  std::gamma_distribution<double> gb(b, 1.0);
  const double x = ga(engine_);
  const double y = gb(engine_);
  const double sum = x + y;
  if (sum <= 0.0) return 0.5;
  return x / sum;
}

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return static_cast<int>(weights.size()) - 1;
  double u = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return static_cast<int>(i);
  }
  // Numerical slack: fall back to the last index with positive weight.
  for (int i = static_cast<int>(weights.size()) - 1; i >= 0; --i) {
    if (weights[i] > 0.0) return i;
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);
  Shuffle(&all);
  all.resize(k);
  return all;
}

}  // namespace lncl::util
