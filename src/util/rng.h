#pragma once

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace lncl::util {

// Deterministic random number generator used throughout the library.
//
// Every stochastic component (data generators, crowd simulators, weight
// initializers, dropout masks, EM initializations, ...) receives an explicit
// `Rng`, so a run is fully reproducible from a single seed and independent
// runs can execute in parallel without sharing generator state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  // Derives an independent child generator. Useful for handing dedicated
  // streams to parallel workers while keeping determinism.
  Rng Fork() { return Rng(engine_() ^ 0xda3e39cb94b95bdbULL); }

  // Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n) {
    return static_cast<int>(std::uniform_int_distribution<int>(0, n - 1)(engine_));
  }

  // Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Standard normal sample scaled to N(mean, stddev^2).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return mean + stddev * normal_(engine_);
  }

  // Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  // Beta(a, b) sample via two gamma draws.
  double Beta(double a, double b);

  // Samples an index from an (unnormalized) non-negative weight vector.
  // Returns the last index with positive weight on numerical underflow.
  int Categorical(const std::vector<double>& weights);

  // In-place Fisher-Yates shuffle of an index container.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (int i = static_cast<int>(items->size()) - 1; i > 0; --i) {
      std::swap((*items)[i], (*items)[UniformInt(i + 1)]);
    }
  }

  // Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace lncl::util

