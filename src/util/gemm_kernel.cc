#include "util/gemm_kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#define LNCL_GEMM_SIMD 1
#else
#define LNCL_GEMM_SIMD 0
#endif

#include "obs/metrics.h"
#include "util/check.h"

namespace lncl::util::gemm {
namespace {

// Row-block height of the microkernel: 6 C rows x 2 vector registers of
// accumulators leaves broadcast and B-load registers free in both the
// 16-register AVX2 file and the 32-register AVX-512 file.
constexpr int kMr = 6;

// A(i, k) under the trans_a flag: kTa reads A stored k x m.
template <bool kTa>
inline float AElem(const float* a, int lda, int i, int k) {
  return kTa ? a[static_cast<size_t>(k) * lda + i]
             : a[static_cast<size_t>(i) * lda + k];
}

// The one epilogue formula, per element. The vector code below applies the
// same operations lane-wise in the same order; keeping this scalar twin in
// one place is what the SIMD-vs-scalar bit-equality tests lean on.
inline float FinishElem(float acc, float alpha, float beta, float cprev,
                        bool has_bias, float bias, Act act) {
  float t = acc;
  if (alpha != 1.0f) t *= alpha;
  if (beta == 1.0f) {
    t += cprev;
  } else if (beta != 0.0f) {
    t = std::fma(beta, cprev, t);
  }
  if (has_bias) t += bias;
  if (act == Act::kRelu) {
    t = t > 0.0f ? t : 0.0f;  // matches max_ps(t, 0): NaN and -0 both -> +0
  } else if (act == Act::kTanh) {
    t = std::tanh(t);
  }
  return t;
}

// ---------------------------------------------------------------------------
// Scalar kernel: one accumulator per output element, sequential std::fma
// over ascending k. std::fma is a single correctly-rounded fused operation,
// so each lane of the SIMD kernel computes exactly this.
// ---------------------------------------------------------------------------

template <bool kTa>
void ScalarGemmImpl(int m, int n, int kd, float alpha, const float* a,
                    int lda, const float* b, int ldb, float beta, float* c,
                    int ldc, const float* bias, Act act) {
  constexpr int kJb = 16;
  float acc[kJb];
  for (int i = 0; i < m; ++i) {
    float* __restrict cr = c + static_cast<size_t>(i) * ldc;
    for (int j0 = 0; j0 < n; j0 += kJb) {
      const int jb = std::min(kJb, n - j0);
      for (int j = 0; j < jb; ++j) acc[j] = 0.0f;
      for (int k = 0; k < kd; ++k) {
        const float av = AElem<kTa>(a, lda, i, k);
        const float* __restrict br = b + static_cast<size_t>(k) * ldb + j0;
        for (int j = 0; j < jb; ++j) acc[j] = std::fma(av, br[j], acc[j]);
      }
      for (int j = 0; j < jb; ++j) {
        cr[j0 + j] = FinishElem(acc[j], alpha, beta, cr[j0 + j],
                                bias != nullptr, bias != nullptr ? bias[j0 + j] : 0.0f,
                                act);
      }
    }
  }
}

void ScalarGemmInt8Impl(int m, int n, int kd, const float* a, int lda,
                        const int8_t* q, const float* scale, float* c,
                        int ldc, const float* bias, Act act) {
  constexpr int kJb = 16;
  float acc[kJb];
  for (int i = 0; i < m; ++i) {
    const float* __restrict ar = a + static_cast<size_t>(i) * lda;
    float* __restrict cr = c + static_cast<size_t>(i) * ldc;
    for (int j0 = 0; j0 < n; j0 += kJb) {
      const int jb = std::min(kJb, n - j0);
      for (int j = 0; j < jb; ++j) acc[j] = 0.0f;
      for (int k = 0; k < kd; ++k) {
        const float av = ar[k];
        const int8_t* __restrict qr = q + static_cast<size_t>(k) * n + j0;
        for (int j = 0; j < jb; ++j) {
          acc[j] = std::fma(av, static_cast<float>(qr[j]), acc[j]);
        }
      }
      for (int j = 0; j < jb; ++j) {
        // Dequantize in the epilogue: alpha = scale[j], beta = 0.
        cr[j0 + j] = FinishElem(acc[j] * scale[j0 + j], 1.0f, 0.0f, 0.0f,
                                bias != nullptr, bias != nullptr ? bias[j0 + j] : 0.0f,
                                act);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD kernel. One ISA is compiled per build; thin wrappers give both the
// same face so the blocked kernel is written once. Lanes are output columns
// j; k is never split, so every lane runs the scalar recurrence exactly.
// ---------------------------------------------------------------------------

#if LNCL_GEMM_SIMD

#if defined(__AVX512F__)

using VReg = __m512;
constexpr int kVecLen = 16;
constexpr const char* kSimdIsa = "avx512";

inline __mmask16 TailMask(int rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}
inline VReg VZero() { return _mm512_setzero_ps(); }
inline VReg VSet1(float x) { return _mm512_set1_ps(x); }
inline VReg VLoad(const float* p) { return _mm512_loadu_ps(p); }
inline void VStore(float* p, VReg v) { _mm512_storeu_ps(p, v); }
inline VReg VLoadTail(const float* p, int rem) {
  return _mm512_maskz_loadu_ps(TailMask(rem), p);
}
inline void VStoreTail(float* p, int rem, VReg v) {
  _mm512_mask_storeu_ps(p, TailMask(rem), v);
}
inline VReg VAdd(VReg x, VReg y) { return _mm512_add_ps(x, y); }
inline VReg VMul(VReg x, VReg y) { return _mm512_mul_ps(x, y); }
inline VReg VFma(VReg x, VReg y, VReg z) { return _mm512_fmadd_ps(x, y, z); }
// max(t, 0) with 0 as the second operand: NaN lanes become +0, matching the
// scalar `t > 0 ? t : 0`.
inline VReg VRelu(VReg x) { return _mm512_max_ps(x, _mm512_setzero_ps()); }
inline VReg VLoadQ(const int8_t* p) {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(raw));
}
inline VReg VLoadQTail(const int8_t* p, int rem) {
  alignas(16) int8_t buf[16] = {};
  std::memcpy(buf, p, static_cast<size_t>(rem));
  const __m128i raw = _mm_load_si128(reinterpret_cast<const __m128i*>(buf));
  return _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(raw));
}

#else  // __AVX2__ && __FMA__

using VReg = __m256;
constexpr int kVecLen = 8;
constexpr const char* kSimdIsa = "avx2";

inline __m256i TailMask(int rem) {
  const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(rem), idx);
}
inline VReg VZero() { return _mm256_setzero_ps(); }
inline VReg VSet1(float x) { return _mm256_set1_ps(x); }
inline VReg VLoad(const float* p) { return _mm256_loadu_ps(p); }
inline void VStore(float* p, VReg v) { _mm256_storeu_ps(p, v); }
inline VReg VLoadTail(const float* p, int rem) {
  return _mm256_maskload_ps(p, TailMask(rem));
}
inline void VStoreTail(float* p, int rem, VReg v) {
  _mm256_maskstore_ps(p, TailMask(rem), v);
}
inline VReg VAdd(VReg x, VReg y) { return _mm256_add_ps(x, y); }
inline VReg VMul(VReg x, VReg y) { return _mm256_mul_ps(x, y); }
inline VReg VFma(VReg x, VReg y, VReg z) { return _mm256_fmadd_ps(x, y, z); }
inline VReg VRelu(VReg x) { return _mm256_max_ps(x, _mm256_setzero_ps()); }
inline VReg VLoadQ(const int8_t* p) {
  const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
}
inline VReg VLoadQTail(const int8_t* p, int rem) {
  alignas(16) int8_t buf[16] = {};
  std::memcpy(buf, p, static_cast<size_t>(rem));
  const __m128i raw = _mm_load_si128(reinterpret_cast<const __m128i*>(buf));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
}

#endif  // ISA selection

// Vector epilogue over `width` (<= kVecLen) columns starting at column j of
// row pointer cr: lane-wise FinishElem, with tanh applied scalar-wise after
// the store (std::tanh has no bit-compatible vector form).
inline void FinishVec(VReg acc, float alpha, float beta, float* cr, int j,
                      int width, const float* bias, Act act) {
  VReg t = acc;
  if (alpha != 1.0f) t = VMul(t, VSet1(alpha));
  if (beta == 1.0f) {
    t = VAdd(t, width == kVecLen ? VLoad(cr + j) : VLoadTail(cr + j, width));
  } else if (beta != 0.0f) {
    t = VFma(VSet1(beta),
             width == kVecLen ? VLoad(cr + j) : VLoadTail(cr + j, width), t);
  }
  if (bias != nullptr) {
    t = VAdd(t,
             width == kVecLen ? VLoad(bias + j) : VLoadTail(bias + j, width));
  }
  if (act == Act::kRelu) t = VRelu(t);
  if (width == kVecLen) {
    VStore(cr + j, t);
  } else {
    VStoreTail(cr + j, width, t);
  }
  if (act == Act::kTanh) {
    for (int jj = j; jj < j + width; ++jj) cr[jj] = std::tanh(cr[jj]);
  }
}

// One kMrT x (kNv * kVecLen) register block, full-width columns.
template <bool kTa, int kMrT, int kNv>
inline void SimdBlock(int kd, float alpha, const float* a, int lda, int i0,
                      const float* b, int ldb, int j0, float beta, float* c,
                      int ldc, const float* bias, Act act) {
  VReg acc[kMrT][kNv];
  for (int r = 0; r < kMrT; ++r) {
    for (int v = 0; v < kNv; ++v) acc[r][v] = VZero();
  }
  for (int k = 0; k < kd; ++k) {
    const float* __restrict br = b + static_cast<size_t>(k) * ldb + j0;
    VReg bv[kNv];
    for (int v = 0; v < kNv; ++v) bv[v] = VLoad(br + v * kVecLen);
    for (int r = 0; r < kMrT; ++r) {
      const VReg av = VSet1(AElem<kTa>(a, lda, i0 + r, k));
      for (int v = 0; v < kNv; ++v) acc[r][v] = VFma(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < kMrT; ++r) {
    float* cr = c + static_cast<size_t>(i0 + r) * ldc;
    for (int v = 0; v < kNv; ++v) {
      FinishVec(acc[r][v], alpha, beta, cr, j0 + v * kVecLen, kVecLen, bias,
                act);
    }
  }
}

// Masked column tail (rem < kVecLen columns): dead lanes accumulate zeros
// and are never stored.
template <bool kTa, int kMrT>
inline void SimdBlockTail(int kd, float alpha, const float* a, int lda,
                          int i0, const float* b, int ldb, int j0, int rem,
                          float beta, float* c, int ldc, const float* bias,
                          Act act) {
  VReg acc[kMrT];
  for (int r = 0; r < kMrT; ++r) acc[r] = VZero();
  for (int k = 0; k < kd; ++k) {
    const VReg bv = VLoadTail(b + static_cast<size_t>(k) * ldb + j0, rem);
    for (int r = 0; r < kMrT; ++r) {
      acc[r] = VFma(VSet1(AElem<kTa>(a, lda, i0 + r, k)), bv, acc[r]);
    }
  }
  for (int r = 0; r < kMrT; ++r) {
    FinishVec(acc[r], alpha, beta, c + static_cast<size_t>(i0 + r) * ldc, j0,
              rem, bias, act);
  }
}

template <bool kTa, int kMrT>
void SimdRowBlock(int n, int kd, float alpha, const float* a, int lda, int i0,
                  const float* b, int ldb, float beta, float* c, int ldc,
                  const float* bias, Act act) {
  int j0 = 0;
  for (; j0 + 2 * kVecLen <= n; j0 += 2 * kVecLen) {
    SimdBlock<kTa, kMrT, 2>(kd, alpha, a, lda, i0, b, ldb, j0, beta, c, ldc,
                            bias, act);
  }
  if (j0 + kVecLen <= n) {
    SimdBlock<kTa, kMrT, 1>(kd, alpha, a, lda, i0, b, ldb, j0, beta, c, ldc,
                            bias, act);
    j0 += kVecLen;
  }
  if (j0 < n) {
    SimdBlockTail<kTa, kMrT>(kd, alpha, a, lda, i0, b, ldb, j0, n - j0, beta,
                             c, ldc, bias, act);
  }
}

template <bool kTa>
void SimdGemmImpl(int m, int n, int kd, float alpha, const float* a, int lda,
                  const float* b, int ldb, float beta, float* c, int ldc,
                  const float* bias, Act act) {
  for (int i0 = 0; i0 < m; i0 += kMr) {
    switch (std::min(kMr, m - i0)) {
      case 6:
        SimdRowBlock<kTa, 6>(n, kd, alpha, a, lda, i0, b, ldb, beta, c, ldc,
                             bias, act);
        break;
      case 5:
        SimdRowBlock<kTa, 5>(n, kd, alpha, a, lda, i0, b, ldb, beta, c, ldc,
                             bias, act);
        break;
      case 4:
        SimdRowBlock<kTa, 4>(n, kd, alpha, a, lda, i0, b, ldb, beta, c, ldc,
                             bias, act);
        break;
      case 3:
        SimdRowBlock<kTa, 3>(n, kd, alpha, a, lda, i0, b, ldb, beta, c, ldc,
                             bias, act);
        break;
      case 2:
        SimdRowBlock<kTa, 2>(n, kd, alpha, a, lda, i0, b, ldb, beta, c, ldc,
                             bias, act);
        break;
      default:
        SimdRowBlock<kTa, 1>(n, kd, alpha, a, lda, i0, b, ldb, beta, c, ldc,
                             bias, act);
        break;
    }
  }
}

// Int8 analog: B lanes come from a widening int8 -> fp32 conversion (exact
// for the int8 range), scales fold in through the epilogue's alpha slot.
template <int kMrT>
inline void SimdInt8Block(int kd, const float* a, int lda, int i0,
                          const int8_t* q, int n, int j0, int width,
                          const float* scale, float* c, int ldc,
                          const float* bias, Act act) {
  VReg acc[kMrT];
  for (int r = 0; r < kMrT; ++r) acc[r] = VZero();
  for (int k = 0; k < kd; ++k) {
    const int8_t* qr = q + static_cast<size_t>(k) * n + j0;
    const VReg bv = width == kVecLen ? VLoadQ(qr) : VLoadQTail(qr, width);
    for (int r = 0; r < kMrT; ++r) {
      acc[r] = VFma(VSet1(a[static_cast<size_t>(i0 + r) * lda + k]), bv,
                    acc[r]);
    }
  }
  const VReg sv = width == kVecLen ? VLoad(scale + j0)
                                   : VLoadTail(scale + j0, width);
  for (int r = 0; r < kMrT; ++r) {
    FinishVec(VMul(acc[r], sv), 1.0f, 0.0f,
              c + static_cast<size_t>(i0 + r) * ldc, j0, width, bias, act);
  }
}

template <int kMrT>
void SimdInt8RowBlock(int n, int kd, const float* a, int lda, int i0,
                      const int8_t* q, const float* scale, float* c, int ldc,
                      const float* bias, Act act) {
  int j0 = 0;
  for (; j0 + kVecLen <= n; j0 += kVecLen) {
    SimdInt8Block<kMrT>(kd, a, lda, i0, q, n, j0, kVecLen, scale, c, ldc,
                        bias, act);
  }
  if (j0 < n) {
    SimdInt8Block<kMrT>(kd, a, lda, i0, q, n, j0, n - j0, scale, c, ldc,
                        bias, act);
  }
}

void SimdGemmInt8Impl(int m, int n, int kd, const float* a, int lda,
                      const int8_t* q, const float* scale, float* c, int ldc,
                      const float* bias, Act act) {
  for (int i0 = 0; i0 < m; i0 += kMr) {
    switch (std::min(kMr, m - i0)) {
      case 6:
        SimdInt8RowBlock<6>(n, kd, a, lda, i0, q, scale, c, ldc, bias, act);
        break;
      case 5:
        SimdInt8RowBlock<5>(n, kd, a, lda, i0, q, scale, c, ldc, bias, act);
        break;
      case 4:
        SimdInt8RowBlock<4>(n, kd, a, lda, i0, q, scale, c, ldc, bias, act);
        break;
      case 3:
        SimdInt8RowBlock<3>(n, kd, a, lda, i0, q, scale, c, ldc, bias, act);
        break;
      case 2:
        SimdInt8RowBlock<2>(n, kd, a, lda, i0, q, scale, c, ldc, bias, act);
        break;
      default:
        SimdInt8RowBlock<1>(n, kd, a, lda, i0, q, scale, c, ldc, bias, act);
        break;
    }
  }
}

#endif  // LNCL_GEMM_SIMD

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

// -1 = not yet selected. A racing first use computes the same value twice.
std::atomic<int> g_active_kind{-1};

// ---------------------------------------------------------------------------
// Packing.
// ---------------------------------------------------------------------------

// Per-call pack scratch for raw-pointer trans_b == kYes operands (no
// version to key a cache on). Grow-only, reused across calls.
thread_local std::vector<float> tls_pack_scratch;

// Writes op(B) = B^T (B stored n x k with leading dimension ldb) into dst
// in k-major layout (k rows of n).
void TransposePack(const float* b, int ldb, int n, int kd, float* dst) {
  for (int j = 0; j < n; ++j) {
    const float* __restrict src = b + static_cast<size_t>(j) * ldb;
    for (int k = 0; k < kd; ++k) dst[static_cast<size_t>(k) * n + j] = src[k];
  }
}

// Version-keyed pack cache: bounded, per-thread, LRU-evicted. 32 entries
// cover every weight matrix of the bundled models (largest: NER with 21
// parameter matrices) with headroom; the key includes the data pointer so
// per-slot training replicas get distinct entries, and Matrix::version()
// equality guarantees content equality (see matrix.h).
constexpr int kPackCacheSlots = 32;

struct PackEntry {
  const float* src = nullptr;
  uint64_t version = 0;
  int rows = 0;
  int cols = 0;
  uint64_t stamp = 0;
  std::vector<float> panel;
};

thread_local PackEntry tls_pack_cache[kPackCacheSlots];
thread_local uint64_t tls_pack_stamp = 0;

}  // namespace

bool SimdCompiled() { return LNCL_GEMM_SIMD != 0; }

const char* SimdIsa() {
#if LNCL_GEMM_SIMD
  return kSimdIsa;
#else
  return "none";
#endif
}

const char* KindName(Kind kind) {
  return kind == Kind::kSimd ? "simd" : "scalar";
}

Kind ParseKindEnv() {
  const char* env = std::getenv("LNCL_GEMM_KERNEL");
  const std::string value = env != nullptr ? env : "";
  if (value.empty() || value == "auto") {
    return SimdCompiled() ? Kind::kSimd : Kind::kScalar;
  }
  if (value == "scalar") return Kind::kScalar;
  if (value == "simd") {
    if (!SimdCompiled()) {
      CheckFailure(__FILE__, __LINE__, "LNCL_GEMM_KERNEL=simd",
                   "no SIMD kernel compiled into this build");
    }
    return Kind::kSimd;
  }
  CheckFailure(__FILE__, __LINE__, "LNCL_GEMM_KERNEL",
               "invalid value \"" + value + "\" (want auto, scalar, or simd)");
}

Kind ActiveKind() {
  int kind = g_active_kind.load(std::memory_order_relaxed);
  if (kind < 0) {
    kind = static_cast<int>(ParseKindEnv());
    g_active_kind.store(kind, std::memory_order_relaxed);
  }
  return static_cast<Kind>(kind);
}

void SetActiveKindForTest(Kind kind) {
  g_active_kind.store(static_cast<int>(kind), std::memory_order_relaxed);
}

const float* PackedOpB(const Matrix& b, Trans trans_b, int* ldb) {
  if (trans_b == Trans::kNo) {
    *ldb = b.cols();
    return b.data();
  }
  const int n = b.rows();   // columns of op(B)
  const int kd = b.cols();  // k extent
  *ldb = n;
  PackEntry* lru = &tls_pack_cache[0];
  for (int s = 0; s < kPackCacheSlots; ++s) {
    PackEntry& e = tls_pack_cache[s];
    if (e.src == b.data() && e.version == b.version() && e.rows == n &&
        e.cols == kd) {
      e.stamp = ++tls_pack_stamp;
      if (obs::Metrics::enabled()) {
        static obs::Counter* const hits =
            obs::Metrics::GetCounter("gemm.pack.hit");
        hits->Increment();
      }
      return e.panel.data();
    }
    if (e.stamp < lru->stamp) lru = &e;
  }
  if (obs::Metrics::enabled()) {
    static obs::Counter* const misses =
        obs::Metrics::GetCounter("gemm.pack.miss");
    misses->Increment();
  }
  lru->src = b.data();
  lru->version = b.version();
  lru->rows = n;
  lru->cols = kd;
  lru->stamp = ++tls_pack_stamp;
  lru->panel.resize(static_cast<size_t>(n) * kd);
  TransposePack(b.data(), kd, n, kd, lru->panel.data());
  return lru->panel.data();
}

void GemmEx(int m, int n, int k, float alpha, const float* a, int lda,
            Trans trans_a, const float* b, int ldb, Trans trans_b, float beta,
            float* c, int ldc, const float* bias, Act act) {
  const bool simd = ActiveKind() == Kind::kSimd;
  if (obs::Metrics::enabled()) {
    // Every dense product funnels through here, so these counters are the
    // system-wide GEMM call/FLOP/dispatch ledger.
    static obs::Counter* const calls = obs::Metrics::GetCounter("gemm.calls");
    static obs::Counter* const flops = obs::Metrics::GetCounter("gemm.flops");
    static obs::Counter* const simd_calls =
        obs::Metrics::GetCounter("gemm.kernel.simd");
    static obs::Counter* const scalar_calls =
        obs::Metrics::GetCounter("gemm.kernel.scalar");
    calls->Increment();
    flops->Add(2ull * static_cast<uint64_t>(m) * static_cast<uint64_t>(n) *
               static_cast<uint64_t>(k));
    (simd ? simd_calls : scalar_calls)->Increment();
  }
  if (m == 0 || n == 0) return;
  const float* bp = b;
  int ldbp = ldb;
  if (trans_b == Trans::kYes && k > 0) {
    tls_pack_scratch.resize(static_cast<size_t>(n) * k);
    TransposePack(b, ldb, n, k, tls_pack_scratch.data());
    bp = tls_pack_scratch.data();
    ldbp = n;
  }
#if LNCL_GEMM_SIMD
  if (simd) {
    if (trans_a == Trans::kNo) {
      SimdGemmImpl<false>(m, n, k, alpha, a, lda, bp, ldbp, beta, c, ldc,
                          bias, act);
    } else {
      SimdGemmImpl<true>(m, n, k, alpha, a, lda, bp, ldbp, beta, c, ldc,
                         bias, act);
    }
    return;
  }
#else
  (void)simd;
#endif
  if (trans_a == Trans::kNo) {
    ScalarGemmImpl<false>(m, n, k, alpha, a, lda, bp, ldbp, beta, c, ldc,
                          bias, act);
  } else {
    ScalarGemmImpl<true>(m, n, k, alpha, a, lda, bp, ldbp, beta, c, ldc,
                         bias, act);
  }
}

void GemmInt8(int m, int n, int k, const float* a, int lda,
              const int8_t* b_kmajor, const float* scale, float* c, int ldc,
              const float* bias, Act act) {
  const bool simd = ActiveKind() == Kind::kSimd;
  if (obs::Metrics::enabled()) {
    static obs::Counter* const calls =
        obs::Metrics::GetCounter("gemm.int8.calls");
    static obs::Counter* const flops = obs::Metrics::GetCounter("gemm.flops");
    calls->Increment();
    flops->Add(2ull * static_cast<uint64_t>(m) * static_cast<uint64_t>(n) *
               static_cast<uint64_t>(k));
  }
  if (m == 0 || n == 0) return;
#if LNCL_GEMM_SIMD
  if (simd) {
    SimdGemmInt8Impl(m, n, k, a, lda, b_kmajor, scale, c, ldc, bias, act);
    return;
  }
#else
  (void)simd;
#endif
  ScalarGemmInt8Impl(m, n, k, a, lda, b_kmajor, scale, c, ldc, bias, act);
}

}  // namespace lncl::util::gemm
