#include "inference/ibcc.h"

namespace lncl::inference {

std::vector<util::Matrix> Ibcc::Infer(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance, util::Rng*) const {
  DawidSkene::Options ds_options;
  ds_options.max_iters = options_.max_iters;
  ds_options.smoothing = options_.smoothing;
  DawidSkene ds(ds_options);
  const ItemView view = FlattenItems(annotations, items_per_instance);
  return UnflattenPosteriors(view,
                             ds.Run(view, options_.diag_pseudo, nullptr));
}

}  // namespace lncl::inference
