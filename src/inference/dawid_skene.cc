#include "inference/dawid_skene.h"

#include <algorithm>
#include <cmath>

namespace lncl::inference {

namespace {

// Majority-vote initialization over the flat item view.
std::vector<util::Vector> MvInit(const ItemView& view) {
  std::vector<util::Vector> q(view.items.size());
  for (size_t i = 0; i < view.items.size(); ++i) {
    q[i].assign(view.num_classes, 0.0f);
    if (view.items[i].labels.empty()) {
      for (float& v : q[i]) v = 1.0f / view.num_classes;
      continue;
    }
    for (const auto& [j, y] : view.items[i].labels) {
      (void)j;
      q[i][y] += 1.0f;
    }
    const float inv = 1.0f / static_cast<float>(view.items[i].labels.size());
    for (float& v : q[i]) v *= inv;
  }
  return q;
}

}  // namespace

std::vector<util::Vector> DawidSkene::Run(
    const ItemView& view, double diag_pseudo,
    crowd::ConfusionSet* confusions) const {
  const int k = view.num_classes;
  std::vector<util::Vector> q = MvInit(view);

  crowd::ConfusionSet pis(view.num_annotators, crowd::ConfusionMatrix(k, 0.7));
  std::vector<double> prior(k, 1.0 / k);

  for (int iter = 0; iter < options_.max_iters; ++iter) {
    // ---- M-step: confusions + prior from current posteriors. ----
    for (auto& pi : pis) pi.matrix().Zero();
    std::vector<double> class_counts(k, options_.smoothing);
    for (size_t i = 0; i < view.items.size(); ++i) {
      for (int m = 0; m < k; ++m) class_counts[m] += q[i][m];
      for (const auto& [j, y] : view.items[i].labels) {
        for (int m = 0; m < k; ++m) pis[j](m, y) += q[i][m];
      }
    }
    if (diag_pseudo > 0.0) {
      for (auto& pi : pis) {
        for (int m = 0; m < k; ++m) {
          pi(m, m) += static_cast<float>(diag_pseudo);
        }
      }
    }
    for (auto& pi : pis) pi.NormalizeRows(options_.smoothing);
    double prior_total = 0.0;
    for (double c : class_counts) prior_total += c;
    for (int m = 0; m < k; ++m) prior[m] = class_counts[m] / prior_total;

    // ---- E-step: posteriors from confusions (log space). ----
    double delta = 0.0;
    for (size_t i = 0; i < view.items.size(); ++i) {
      util::Vector lp(k);
      for (int m = 0; m < k; ++m) {
        lp[m] = static_cast<float>(std::log(std::max(prior[m], 1e-300)));
      }
      for (const auto& [j, y] : view.items[i].labels) {
        for (int m = 0; m < k; ++m) {
          lp[m] += static_cast<float>(
              std::log(std::max(static_cast<double>(pis[j](m, y)), 1e-300)));
        }
      }
      float mx = lp[0];
      for (int m = 1; m < k; ++m) mx = std::max(mx, lp[m]);
      double sum = 0.0;
      util::Vector nq(k);
      for (int m = 0; m < k; ++m) {
        nq[m] = std::exp(lp[m] - mx);
        sum += nq[m];
      }
      for (int m = 0; m < k; ++m) {
        nq[m] = static_cast<float>(nq[m] / sum);
        delta += std::fabs(nq[m] - q[i][m]);
      }
      q[i] = nq;
    }
    delta /= static_cast<double>(view.items.size() * k);
    if (delta < options_.tol) break;
  }

  if (confusions != nullptr) *confusions = pis;
  return q;
}

std::vector<util::Matrix> DawidSkene::Infer(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance, util::Rng*) const {
  const ItemView view = FlattenItems(annotations, items_per_instance);
  return UnflattenPosteriors(view, Run(view, /*diag_pseudo=*/0.0, nullptr));
}

}  // namespace lncl::inference
