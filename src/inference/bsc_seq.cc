#include "inference/bsc_seq.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "crowd/confusion.h"
#include "inference/chain.h"

namespace lncl::inference {

namespace {
// Collapses the annotator's previous label to a binary context:
// 0 = outside any entity (or sentence start), 1 = inside an annotation.
int Context(const std::vector<int>& labels, size_t t) {
  if (t == 0) return 0;
  return labels[t - 1] == 0 ? 0 : 1;
}
}  // namespace

std::vector<util::Matrix> BscSeq::Infer(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance, util::Rng*) const {
  const int k = annotations.num_classes();
  const int num_instances = annotations.num_instances();
  const int num_annotators = annotations.num_annotators();

  std::vector<util::Matrix> gamma =
      annotations.MajorityVote(items_per_instance);

  util::Vector prior(k, 1.0f / k);
  util::Matrix transition(k, k, 1.0f / k);
  // Context-conditioned confusions: [annotator][context] -> K x K.
  using ContextPis = std::array<crowd::ConfusionMatrix, 2>;
  std::vector<ContextPis> pis(
      num_annotators,
      {crowd::ConfusionMatrix(k, 0.7), crowd::ConfusionMatrix(k, 0.7)});

  util::Matrix emission;
  util::Matrix xi_sum(k, k);
  bool have_xi = false;
  for (int iter = 0; iter < options_.max_iters; ++iter) {
    // ---- M-step. ----
    util::Vector prior_counts(k, 0.5f);
    util::Matrix trans_counts(k, k,
                              static_cast<float>(options_.transition_pseudo));
    if (have_xi) trans_counts.AddScaled(xi_sum, 1.0f);
    for (auto& cp : pis) {
      for (auto& pi : cp) pi.matrix().Zero();
    }
    for (int i = 0; i < num_instances; ++i) {
      const util::Matrix& g = gamma[i];
      if (g.rows() == 0) continue;
      for (int m = 0; m < k; ++m) prior_counts[m] += g(0, m);
      if (!have_xi) {
        for (int t = 0; t + 1 < g.rows(); ++t) {
          for (int a = 0; a < k; ++a) {
            for (int b = 0; b < k; ++b) {
              trans_counts(a, b) += g(t, a) * g(t + 1, b);
            }
          }
        }
      }
      for (const crowd::AnnotatorLabels& e : annotations.instance(i).entries) {
        for (size_t t = 0; t < e.labels.size(); ++t) {
          const int c = Context(e.labels, t);
          for (int m = 0; m < k; ++m) {
            pis[e.annotator][c](m, e.labels[t]) += g(static_cast<int>(t), m);
          }
        }
      }
    }
    double prior_total = 0.0;
    for (float c : prior_counts) prior_total += c;
    for (int m = 0; m < k; ++m) {
      prior[m] = static_cast<float>(prior_counts[m] / prior_total);
    }
    for (int a = 0; a < k; ++a) {
      double row_total = 0.0;
      for (int b = 0; b < k; ++b) row_total += trans_counts(a, b);
      for (int b = 0; b < k; ++b) {
        transition(a, b) = static_cast<float>(trans_counts(a, b) / row_total);
      }
    }
    for (auto& cp : pis) {
      for (auto& pi : cp) {
        for (int m = 0; m < k; ++m) {
          pi(m, m) += static_cast<float>(options_.diag_pseudo);
        }
        pi.NormalizeRows(options_.confusion_pseudo);
      }
    }

    // ---- E-step. ----
    double delta = 0.0;
    long items = 0;
    xi_sum.Zero();
    have_xi = true;
    for (int i = 0; i < num_instances; ++i) {
      const int t_len = items_per_instance[i];
      emission.Resize(t_len, k);
      for (int t = 0; t < t_len; ++t) {
        util::Vector lp(k, 0.0f);
        for (const crowd::AnnotatorLabels& e :
             annotations.instance(i).entries) {
          const int c = Context(e.labels, static_cast<size_t>(t));
          const int y = e.labels[t];
          for (int m = 0; m < k; ++m) {
            lp[m] += static_cast<float>(std::log(std::max(
                static_cast<double>(pis[e.annotator][c](m, y)), 1e-300)));
          }
        }
        float mx = lp[0];
        for (int m = 1; m < k; ++m) mx = std::max(mx, lp[m]);
        for (int m = 0; m < k; ++m) emission(t, m) = std::exp(lp[m] - mx);
      }
      util::Matrix new_gamma;
      ChainForwardBackward(prior, transition, emission, &new_gamma, &xi_sum);
      for (int t = 0; t < t_len; ++t) {
        for (int m = 0; m < k; ++m) {
          delta += std::fabs(new_gamma(t, m) - gamma[i](t, m));
        }
        ++items;
      }
      gamma[i] = std::move(new_gamma);
    }
    if (items > 0 && delta / static_cast<double>(items * k) < options_.tol) {
      break;
    }
  }
  return gamma;
}

}  // namespace lncl::inference
