#include "inference/pm.h"

#include <algorithm>
#include <cmath>

namespace lncl::inference {

std::vector<util::Matrix> Pm::Infer(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance, util::Rng*) const {
  const ItemView view = FlattenItems(annotations, items_per_instance);
  const int k = view.num_classes;
  const int num_items = static_cast<int>(view.items.size());

  std::vector<double> weight(view.num_annotators, 1.0);
  std::vector<util::Vector> q(num_items, util::Vector(k, 1.0f / k));

  for (int iter = 0; iter < options_.max_iters; ++iter) {
    // Weighted vote tallies.
    for (int i = 0; i < num_items; ++i) {
      std::fill(q[i].begin(), q[i].end(), 0.0f);
      double total = 0.0;
      for (const auto& [j, y] : view.items[i].labels) {
        q[i][y] += static_cast<float>(weight[j]);
        total += weight[j];
      }
      if (total <= 0.0) {
        std::fill(q[i].begin(), q[i].end(), 1.0f / k);
      } else {
        for (float& v : q[i]) v = static_cast<float>(v / total);
      }
    }
    // Error rates against the hard vote winners.
    std::vector<double> mistakes(view.num_annotators, 0.0);
    std::vector<double> counts(view.num_annotators, 0.0);
    for (int i = 0; i < num_items; ++i) {
      const int t = static_cast<int>(
          std::max_element(q[i].begin(), q[i].end()) - q[i].begin());
      for (const auto& [j, y] : view.items[i].labels) {
        counts[j] += 1.0;
        if (y != t) mistakes[j] += 1.0;
      }
    }
    for (int j = 0; j < view.num_annotators; ++j) {
      const double err = (mistakes[j] + options_.smoothing) /
                         (counts[j] + 2.0 * options_.smoothing);
      weight[j] = std::max(0.0, std::log((1.0 - err) / err));
    }
  }
  return UnflattenPosteriors(view, q);
}

}  // namespace lncl::inference
