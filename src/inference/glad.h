#pragma once

#include "inference/truth_inference.h"

namespace lncl::inference {

// GLAD (Whitehill et al., 2009): jointly models annotator ability alpha_j
// and item difficulty 1/beta_i,
//
//   p(y_ij = t_i) = sigmoid(alpha_j * beta_i),   beta_i = exp(gamma_i) > 0,
//
// with the remaining probability mass spread uniformly over the other K-1
// labels (the standard multi-class generalization; the original model is
// binary). Inference is EM; the M-step runs a few epochs of gradient ascent
// on alpha and gamma, as in the original implementation.
class Glad : public TruthInference {
 public:
  struct Options {
    int max_iters = 30;
    int m_step_passes = 3;
    double learning_rate = 0.1;
    double alpha_init = 1.0;
    double tol = 1e-5;
  };

  Glad() = default;
  explicit Glad(Options options) : options_(options) {}

  std::string name() const override { return "GLAD"; }

  std::vector<util::Matrix> Infer(const crowd::AnnotationSet& annotations,
                                  const std::vector<int>& items_per_instance,
                                  util::Rng* rng) const override;

  // Final ability estimates from the last Infer call are not retained (the
  // method is const/stateless); use RunDetailed for them.
  struct Detailed {
    std::vector<util::Matrix> posteriors;
    std::vector<double> ability;     // alpha_j
    std::vector<double> difficulty;  // 1/beta_i (larger = harder)
  };
  Detailed RunDetailed(const crowd::AnnotationSet& annotations,
                       const std::vector<int>& items_per_instance) const;

 private:
  Options options_;
};

}  // namespace lncl::inference

