#pragma once

#include "inference/truth_inference.h"

namespace lncl::inference {

// Bayesian sequence combination, "seq" worker model (after Simpson &
// Gurevych, 2019). Extends HMM-Crowd in two ways that matter for span
// annotations:
//
//  1. Each annotator's confusion matrix is *conditioned on the annotator's
//     own previous label* (collapsed to the O / inside-an-entity dichotomy),
//     which captures sequential error behavior such as boundary slips —
//     an annotator inside an entity mislabels differently than one in O
//     context.
//  2. All parameters carry Dirichlet priors (MAP point estimates here),
//     echoing BSC's Bayesian treatment and stabilizing the long tail.
//
// Like HMM-Crowd, the latent truth is a first-order chain inferred by
// forward-backward.
class BscSeq : public TruthInference {
 public:
  struct Options {
    int max_iters = 30;
    double confusion_pseudo = 0.3;  // Dirichlet prior on confusion rows
    double diag_pseudo = 1.0;       // extra prior mass on the diagonal
    double transition_pseudo = 0.2;
    double tol = 1e-5;
  };

  BscSeq() = default;
  explicit BscSeq(Options options) : options_(options) {}

  std::string name() const override { return "BSC-seq"; }

  std::vector<util::Matrix> Infer(const crowd::AnnotationSet& annotations,
                                  const std::vector<int>& items_per_instance,
                                  util::Rng* rng) const override;

 private:
  Options options_;
};

}  // namespace lncl::inference

