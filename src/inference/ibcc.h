#pragma once

#include "inference/dawid_skene.h"

namespace lncl::inference {

// Independent Bayesian Classifier Combination (Kim & Ghahramani, 2012),
// implemented as Dawid-Skene with a Dirichlet MAP prior on the confusion
// rows: an informative diagonal pseudo-count encodes the belief that
// annotators are better than chance, which stabilizes estimates for
// low-volume annotators (the long tail in the MTurk pools).
class Ibcc : public TruthInference {
 public:
  struct Options {
    double diag_pseudo = 2.0;  // extra pseudo-counts on the diagonal
    double smoothing = 0.5;    // symmetric Dirichlet pseudo-count
    int max_iters = 50;
  };

  Ibcc() = default;
  explicit Ibcc(Options options) : options_(options) {}

  std::string name() const override { return "IBCC"; }

  std::vector<util::Matrix> Infer(const crowd::AnnotationSet& annotations,
                                  const std::vector<int>& items_per_instance,
                                  util::Rng* rng) const override;

 private:
  Options options_;
};

}  // namespace lncl::inference

