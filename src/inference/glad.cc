#include "inference/glad.h"

#include <algorithm>
#include <cmath>

namespace lncl::inference {

namespace {
double SigmoidD(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

Glad::Detailed Glad::RunDetailed(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance) const {
  const ItemView view = FlattenItems(annotations, items_per_instance);
  const int k = view.num_classes;
  const int num_items = static_cast<int>(view.items.size());

  std::vector<double> alpha(view.num_annotators, options_.alpha_init);
  std::vector<double> gamma(num_items, 0.0);  // beta = exp(gamma)

  // Posteriors, initialized by majority vote.
  std::vector<util::Vector> q(num_items);
  for (int i = 0; i < num_items; ++i) {
    q[i].assign(k, 1.0f / k);
    if (!view.items[i].labels.empty()) {
      std::fill(q[i].begin(), q[i].end(), 0.0f);
      for (const auto& [j, y] : view.items[i].labels) {
        (void)j;
        q[i][y] += 1.0f;
      }
      const float inv = 1.0f / view.items[i].labels.size();
      for (float& v : q[i]) v *= inv;
    }
  }

  std::vector<long> labels_per_annotator(view.num_annotators, 0);
  for (const auto& item : view.items) {
    for (const auto& [j, y] : item.labels) {
      (void)y;
      ++labels_per_annotator[j];
    }
  }

  for (int iter = 0; iter < options_.max_iters; ++iter) {
    // ---- M-step: gradient ascent on alpha, gamma. ----
    for (int pass = 0; pass < options_.m_step_passes; ++pass) {
      std::vector<double> g_alpha(view.num_annotators, 0.0);
      std::vector<double> g_gamma(num_items, 0.0);
      for (int i = 0; i < num_items; ++i) {
        const double beta = std::exp(gamma[i]);
        for (const auto& [j, y] : view.items[i].labels) {
          const double s = SigmoidD(alpha[j] * beta);
          const double c = q[i][y];  // P(label was correct)
          g_alpha[j] += (c - s) * beta;
          g_gamma[i] += (c - s) * alpha[j] * beta;
        }
      }
      for (int j = 0; j < view.num_annotators; ++j) {
        if (labels_per_annotator[j] == 0) continue;
        alpha[j] += options_.learning_rate * g_alpha[j] /
                    static_cast<double>(labels_per_annotator[j]);
        alpha[j] = std::clamp(alpha[j], -6.0, 6.0);
      }
      for (int i = 0; i < num_items; ++i) {
        const size_t n = view.items[i].labels.size();
        if (n == 0) continue;
        gamma[i] += options_.learning_rate * g_gamma[i] /
                    static_cast<double>(n);
        gamma[i] = std::clamp(gamma[i], -3.0, 3.0);
      }
    }

    // ---- E-step. ----
    double delta = 0.0;
    for (int i = 0; i < num_items; ++i) {
      const double beta = std::exp(gamma[i]);
      util::Vector lp(k, 0.0f);
      for (const auto& [j, y] : view.items[i].labels) {
        const double s =
            std::clamp(SigmoidD(alpha[j] * beta), 1e-6, 1.0 - 1e-6);
        const double log_correct = std::log(s);
        const double log_wrong = std::log((1.0 - s) / (k - 1));
        for (int m = 0; m < k; ++m) {
          lp[m] += static_cast<float>(m == y ? log_correct : log_wrong);
        }
      }
      float mx = lp[0];
      for (int m = 1; m < k; ++m) mx = std::max(mx, lp[m]);
      double sum = 0.0;
      util::Vector nq(k);
      for (int m = 0; m < k; ++m) {
        nq[m] = std::exp(lp[m] - mx);
        sum += nq[m];
      }
      for (int m = 0; m < k; ++m) {
        nq[m] = static_cast<float>(nq[m] / sum);
        delta += std::fabs(nq[m] - q[i][m]);
      }
      q[i] = nq;
    }
    if (delta / std::max(1, num_items * k) < options_.tol) break;
  }

  Detailed out;
  out.posteriors = UnflattenPosteriors(view, q);
  out.ability = std::move(alpha);
  out.difficulty.resize(num_items);
  for (int i = 0; i < num_items; ++i) {
    out.difficulty[i] = std::exp(-gamma[i]);
  }
  return out;
}

std::vector<util::Matrix> Glad::Infer(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance, util::Rng*) const {
  return RunDetailed(annotations, items_per_instance).posteriors;
}

}  // namespace lncl::inference
