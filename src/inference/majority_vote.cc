#include "inference/majority_vote.h"

namespace lncl::inference {

std::vector<util::Matrix> MajorityVote::Infer(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance, util::Rng*) const {
  return annotations.MajorityVote(items_per_instance);
}

}  // namespace lncl::inference
