#pragma once

#include "inference/truth_inference.h"

namespace lncl::inference {

// PM (Aydin et al., 2014): heuristic iterative weighted voting. Annotator
// weights and truth estimates are alternately refined:
//
//   truth_i  = argmax_k sum_j w_j [y_ij = k]           (weighted vote)
//   err_j    = smoothed fraction of j's labels that disagree with truth
//   w_j      = log((1 - err_j) / err_j), floored at 0  (log-odds weighting)
//
// The returned posteriors are the normalized weighted vote tallies of the
// final iteration, so downstream consumers get soft estimates.
class Pm : public TruthInference {
 public:
  struct Options {
    int max_iters = 20;
    double smoothing = 0.5;  // pseudo-counts in the error-rate estimate
  };

  Pm() = default;
  explicit Pm(Options options) : options_(options) {}

  std::string name() const override { return "PM"; }

  std::vector<util::Matrix> Infer(const crowd::AnnotationSet& annotations,
                                  const std::vector<int>& items_per_instance,
                                  util::Rng* rng) const override;

 private:
  Options options_;
};

}  // namespace lncl::inference

