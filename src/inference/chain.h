#pragma once

#include "util/chain.h"

namespace lncl::inference {

// The chain smoother lives in util/chain.h so lower layers (the CRF model)
// can share it; this alias keeps the historical spelling used by the
// sequence aggregators.
using util::ChainForwardBackward;

}  // namespace lncl::inference

