#ifndef LNCL_INFERENCE_CHAIN_H_
#define LNCL_INFERENCE_CHAIN_H_

#include "util/chain.h"

namespace lncl::inference {

// The chain smoother lives in util/chain.h so lower layers (the CRF model)
// can share it; this alias keeps the historical spelling used by the
// sequence aggregators.
using util::ChainForwardBackward;

}  // namespace lncl::inference

#endif  // LNCL_INFERENCE_CHAIN_H_
