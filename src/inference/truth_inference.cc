#include "inference/truth_inference.h"
#include "util/check.h"


namespace lncl::inference {

std::vector<int> ItemsPerInstance(const data::Dataset& dataset) {
  std::vector<int> items(dataset.size());
  for (int i = 0; i < dataset.size(); ++i) items[i] = dataset.NumItems(i);
  return items;
}

ItemView FlattenItems(const crowd::AnnotationSet& annotations,
                      const std::vector<int>& items_per_instance) {
  LNCL_DCHECK(static_cast<int>(items_per_instance.size()) ==
         annotations.num_instances());
  ItemView view;
  view.num_annotators = annotations.num_annotators();
  view.num_classes = annotations.num_classes();
  view.begin.resize(items_per_instance.size() + 1, 0);
  int total = 0;
  for (size_t i = 0; i < items_per_instance.size(); ++i) {
    view.begin[i] = total;
    total += items_per_instance[i];
  }
  view.begin.back() = total;
  view.items.resize(total);
  for (int i = 0; i < annotations.num_instances(); ++i) {
    for (const crowd::AnnotatorLabels& e : annotations.instance(i).entries) {
      LNCL_DCHECK(static_cast<int>(e.labels.size()) == items_per_instance[i]);
      for (size_t t = 0; t < e.labels.size(); ++t) {
        view.items[view.begin[i] + static_cast<int>(t)].labels.emplace_back(
            e.annotator, e.labels[t]);
      }
    }
  }
  return view;
}

std::vector<util::Matrix> UnflattenPosteriors(
    const ItemView& view, const std::vector<util::Vector>& posterior) {
  LNCL_DCHECK(posterior.size() == view.items.size());
  std::vector<util::Matrix> out;
  const int num_instances = static_cast<int>(view.begin.size()) - 1;
  out.reserve(num_instances);
  for (int i = 0; i < num_instances; ++i) {
    const int items = view.begin[i + 1] - view.begin[i];
    util::Matrix m(items, view.num_classes);
    for (int t = 0; t < items; ++t) {
      const util::Vector& p = posterior[view.begin[i] + t];
      for (int k = 0; k < view.num_classes; ++k) m(t, k) = p[k];
    }
    LNCL_AUDIT_SIMPLEX(m);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace lncl::inference
