#pragma once

#include "inference/truth_inference.h"

namespace lncl::inference {

// CATD (Li et al., 2014): confidence-aware truth discovery for long-tail
// annotators. Like PM, truth and source weights are refined alternately, but
// the weight of annotator j is the upper chi-squared confidence bound on the
// precision of their error estimate,
//
//   w_j = chi2_{alpha/2}(n_j) / (sum of j's distances to the truth),
//
// which deliberately discounts annotators with few labels (small n_j shrinks
// the quantile relative to the error mass).
class Catd : public TruthInference {
 public:
  struct Options {
    int max_iters = 20;
    double alpha = 0.05;     // confidence level
    double smoothing = 0.5;  // distance pseudo-mass
  };

  Catd() = default;
  explicit Catd(Options options) : options_(options) {}

  std::string name() const override { return "CATD"; }

  std::vector<util::Matrix> Infer(const crowd::AnnotationSet& annotations,
                                  const std::vector<int>& items_per_instance,
                                  util::Rng* rng) const override;

 private:
  Options options_;
};

}  // namespace lncl::inference

