#include "inference/catd.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace lncl::inference {

std::vector<util::Matrix> Catd::Infer(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance, util::Rng*) const {
  const ItemView view = FlattenItems(annotations, items_per_instance);
  const int k = view.num_classes;
  const int num_items = static_cast<int>(view.items.size());

  std::vector<double> weight(view.num_annotators, 1.0);
  std::vector<util::Vector> q(num_items, util::Vector(k, 1.0f / k));

  for (int iter = 0; iter < options_.max_iters; ++iter) {
    for (int i = 0; i < num_items; ++i) {
      std::fill(q[i].begin(), q[i].end(), 0.0f);
      double total = 0.0;
      for (const auto& [j, y] : view.items[i].labels) {
        q[i][y] += static_cast<float>(weight[j]);
        total += weight[j];
      }
      if (total <= 0.0) {
        std::fill(q[i].begin(), q[i].end(), 1.0f / k);
      } else {
        for (float& v : q[i]) v = static_cast<float>(v / total);
      }
    }
    std::vector<double> distance(view.num_annotators, options_.smoothing);
    std::vector<double> counts(view.num_annotators, 0.0);
    for (int i = 0; i < num_items; ++i) {
      const int t = static_cast<int>(
          std::max_element(q[i].begin(), q[i].end()) - q[i].begin());
      for (const auto& [j, y] : view.items[i].labels) {
        counts[j] += 1.0;
        if (y != t) distance[j] += 1.0;
      }
    }
    double max_w = 0.0;
    for (int j = 0; j < view.num_annotators; ++j) {
      if (counts[j] <= 0.0) {
        weight[j] = 0.0;
        continue;
      }
      const double quantile =
          util::ChiSquaredQuantile(options_.alpha / 2.0, counts[j]);
      weight[j] = quantile / distance[j];
      max_w = std::max(max_w, weight[j]);
    }
    if (max_w > 0.0) {
      for (double& w : weight) w /= max_w;  // scale invariance of the vote
    }
  }
  return UnflattenPosteriors(view, q);
}

}  // namespace lncl::inference
