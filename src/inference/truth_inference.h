#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crowd/annotation.h"
#include "data/dataset.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace lncl::inference {

// Interface for stand-alone truth-inference ("label aggregation") methods:
// estimate a posterior over the latent true label of every item from crowd
// labels alone — no instance features. These populate the "Truth Inference"
// rows of the paper's Tables II/III and feed the two-stage baselines.
class TruthInference {
 public:
  virtual ~TruthInference() = default;

  virtual std::string name() const = 0;

  // Returns per-instance (items x K) row-stochastic posterior estimates.
  // `items_per_instance` gives the item count of every instance (1 for
  // classification, sequence length for tagging).
  virtual std::vector<util::Matrix> Infer(
      const crowd::AnnotationSet& annotations,
      const std::vector<int>& items_per_instance, util::Rng* rng) const = 0;
};

using TruthInferencePtr = std::unique_ptr<TruthInference>;

// Item counts of a dataset split, for passing to Infer.
std::vector<int> ItemsPerInstance(const data::Dataset& dataset);

// A flattened view of an annotation set: every item across all instances in
// one array, each with its (annotator, label) pairs. Used by the
// item-independent methods (MV, DS, GLAD, IBCC, PM, CATD).
struct ItemView {
  struct Item {
    std::vector<std::pair<int, int>> labels;  // (annotator, label)
  };
  std::vector<Item> items;
  // items index range [begin[i], begin[i+1]) belongs to instance i.
  std::vector<int> begin;
  int num_annotators = 0;
  int num_classes = 0;
};

ItemView FlattenItems(const crowd::AnnotationSet& annotations,
                      const std::vector<int>& items_per_instance);

// Reassembles flat per-item posteriors into per-instance matrices.
std::vector<util::Matrix> UnflattenPosteriors(
    const ItemView& view, const std::vector<util::Vector>& posterior);

}  // namespace lncl::inference

