#include "inference/zencrowd.h"

#include <algorithm>
#include <cmath>

namespace lncl::inference {

ZenCrowd::Detailed ZenCrowd::RunDetailed(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance) const {
  const ItemView view = FlattenItems(annotations, items_per_instance);
  const int k = view.num_classes;
  const int num_items = static_cast<int>(view.items.size());
  const int num_annotators = view.num_annotators;

  std::vector<double> r(num_annotators, options_.r_init);
  std::vector<double> prior(k, 1.0 / k);
  std::vector<util::Vector> q(num_items, util::Vector(k, 1.0f / k));

  for (int iter = 0; iter < options_.max_iters; ++iter) {
    // ---- E-step. ----
    double delta = 0.0;
    for (int i = 0; i < num_items; ++i) {
      util::Vector lp(k);
      for (int m = 0; m < k; ++m) {
        lp[m] = static_cast<float>(std::log(std::max(prior[m], 1e-300)));
      }
      for (const auto& [j, y] : view.items[i].labels) {
        const double wrong = (1.0 - r[j]) / (k - 1);
        for (int m = 0; m < k; ++m) {
          lp[m] += static_cast<float>(
              std::log(std::max(m == y ? r[j] : wrong, 1e-300)));
        }
      }
      float mx = lp[0];
      for (int m = 1; m < k; ++m) mx = std::max(mx, lp[m]);
      double sum = 0.0;
      util::Vector nq(k);
      for (int m = 0; m < k; ++m) {
        nq[m] = std::exp(lp[m] - mx);
        sum += nq[m];
      }
      for (int m = 0; m < k; ++m) {
        nq[m] = static_cast<float>(nq[m] / sum);
        delta += std::fabs(nq[m] - q[i][m]);
      }
      q[i] = nq;
    }

    // ---- M-step. ----
    std::vector<double> correct(num_annotators, options_.smoothing);
    std::vector<double> total(num_annotators, 2.0 * options_.smoothing);
    std::vector<double> prior_counts(k, options_.smoothing);
    for (int i = 0; i < num_items; ++i) {
      for (int m = 0; m < k; ++m) prior_counts[m] += q[i][m];
      for (const auto& [j, y] : view.items[i].labels) {
        correct[j] += q[i][y];
        total[j] += 1.0;
      }
    }
    for (int j = 0; j < num_annotators; ++j) {
      r[j] = std::clamp(correct[j] / total[j], 1e-4, 1.0 - 1e-4);
    }
    double prior_total = 0.0;
    for (double c : prior_counts) prior_total += c;
    for (int m = 0; m < k; ++m) prior[m] = prior_counts[m] / prior_total;

    if (delta / std::max(1, num_items * k) < options_.tol) break;
  }

  Detailed out;
  out.posteriors = UnflattenPosteriors(view, q);
  out.reliability = std::move(r);
  return out;
}

std::vector<util::Matrix> ZenCrowd::Infer(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance, util::Rng*) const {
  return RunDetailed(annotations, items_per_instance).posteriors;
}

}  // namespace lncl::inference
