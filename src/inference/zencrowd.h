#pragma once

#include "inference/truth_inference.h"

namespace lncl::inference {

// ZenCrowd (Demartini et al., WWW 2012): the "one-coin" EM aggregator. Each
// annotator has a single reliability r_j — the probability of reporting the
// true label — with errors spread uniformly over the other K-1 classes:
//
//   E: q_i(m) ∝ prior(m) * prod_j [ r_j        if y_ij = m
//                                   (1-r_j)/(K-1) otherwise ]
//   M: r_j = (smoothed) expected fraction of j's labels that match the truth
//
// One parameter per annotator, sitting between Majority Voting (no
// parameters) and Dawid-Skene (K^2 per annotator); the right bias/variance
// point for very sparse annotators.
class ZenCrowd : public TruthInference {
 public:
  struct Options {
    int max_iters = 50;
    double smoothing = 1.0;  // Beta(s, s)-style pseudo-counts on r_j
    double r_init = 0.7;
    double tol = 1e-5;
  };

  ZenCrowd() = default;
  explicit ZenCrowd(Options options) : options_(options) {}

  std::string name() const override { return "ZenCrowd"; }

  std::vector<util::Matrix> Infer(const crowd::AnnotationSet& annotations,
                                  const std::vector<int>& items_per_instance,
                                  util::Rng* rng) const override;

  struct Detailed {
    std::vector<util::Matrix> posteriors;
    std::vector<double> reliability;  // r_j
  };
  Detailed RunDetailed(const crowd::AnnotationSet& annotations,
                       const std::vector<int>& items_per_instance) const;

 private:
  Options options_{};
};

}  // namespace lncl::inference

