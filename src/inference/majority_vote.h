#pragma once

#include "inference/truth_inference.h"

namespace lncl::inference {

// Majority Voting: per item, the empirical frequency of each label among the
// received crowd labels (uniform where no labels exist). The weakest — and
// universal — baseline; also Algorithm 1's initializer for q_f.
class MajorityVote : public TruthInference {
 public:
  std::string name() const override { return "MV"; }

  std::vector<util::Matrix> Infer(const crowd::AnnotationSet& annotations,
                                  const std::vector<int>& items_per_instance,
                                  util::Rng* rng) const override;
};

}  // namespace lncl::inference

