#pragma once

#include "crowd/confusion.h"
#include "inference/truth_inference.h"

namespace lncl::inference {

// Dawid & Skene (1979): EM over latent item truths with per-annotator
// confusion matrices and a shared class prior.
//
//   E: q_i(k) ∝ prior(k) * prod_{(j, y) in labels(i)} pi^j(k, y)
//   M: pi^j(m, n) ∝ sum_i q_i(m) [y_ij = n];  prior(k) ∝ sum_i q_i(k)
//
// `smoothing` is the additive pseudo-count applied in the M-step (0 gives
// plain maximum likelihood; IBCC builds on this with a Dirichlet MAP prior).
class DawidSkene : public TruthInference {
 public:
  struct Options {
    int max_iters = 50;
    double tol = 1e-5;        // mean |Δq| convergence threshold
    double smoothing = 1e-2;  // M-step additive smoothing
  };

  DawidSkene() = default;
  explicit DawidSkene(Options options) : options_(options) {}

  std::string name() const override { return "DS"; }

  std::vector<util::Matrix> Infer(const crowd::AnnotationSet& annotations,
                                  const std::vector<int>& items_per_instance,
                                  util::Rng* rng) const override;

  // Core EM on a flattened item view. Exposed for reuse by IBCC and the
  // tests; fills `confusions` with the final annotator estimates when
  // non-null. `diag_prior` adds diag_pseudo extra pseudo-counts on the
  // confusion diagonal (IBCC's informative prior); 0 disables.
  std::vector<util::Vector> Run(const ItemView& view, double diag_pseudo,
                                crowd::ConfusionSet* confusions) const;

 private:
  Options options_;
};

}  // namespace lncl::inference

