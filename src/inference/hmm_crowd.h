#pragma once

#include "inference/truth_inference.h"

namespace lncl::inference {

// HMM-Crowd (Nguyen et al., 2017): sequence-aware crowd aggregation. The
// latent true tag sequence follows a first-order Markov chain (initial
// distribution + transition matrix shared across sentences), and each
// annotator emits labels through a per-annotator confusion matrix at every
// token. EM alternates exact forward-backward smoothing (E) with
// closed-form count updates (M).
class HmmCrowd : public TruthInference {
 public:
  struct Options {
    int max_iters = 30;
    double smoothing = 0.1;  // Dirichlet pseudo-counts in all M-step updates
    double tol = 1e-5;
  };

  HmmCrowd() = default;
  explicit HmmCrowd(Options options) : options_(options) {}

  std::string name() const override { return "HMM-Crowd"; }

  std::vector<util::Matrix> Infer(const crowd::AnnotationSet& annotations,
                                  const std::vector<int>& items_per_instance,
                                  util::Rng* rng) const override;

 private:
  Options options_;
};

}  // namespace lncl::inference

