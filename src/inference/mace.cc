#include "inference/mace.h"

#include <algorithm>
#include <cmath>

namespace lncl::inference {

Mace::Detailed Mace::RunDetailed(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance) const {
  const ItemView view = FlattenItems(annotations, items_per_instance);
  const int k = view.num_classes;
  const int num_items = static_cast<int>(view.items.size());
  const int num_annotators = view.num_annotators;

  std::vector<double> eps(num_annotators, options_.eps_init);
  // Spam distributions, initialized uniform.
  std::vector<std::vector<double>> xi(
      num_annotators, std::vector<double>(k, 1.0 / k));
  std::vector<double> prior(k, 1.0 / k);

  std::vector<util::Vector> q(num_items, util::Vector(k, 1.0f / k));
  for (int iter = 0; iter < options_.max_iters; ++iter) {
    // ---- E-step: truth posteriors. ----
    double delta = 0.0;
    for (int i = 0; i < num_items; ++i) {
      util::Vector lp(k);
      for (int m = 0; m < k; ++m) {
        lp[m] = static_cast<float>(std::log(std::max(prior[m], 1e-300)));
      }
      for (const auto& [j, y] : view.items[i].labels) {
        for (int m = 0; m < k; ++m) {
          const double like =
              (m == y ? (1.0 - eps[j]) : 0.0) + eps[j] * xi[j][y];
          lp[m] += static_cast<float>(std::log(std::max(like, 1e-300)));
        }
      }
      float mx = lp[0];
      for (int m = 1; m < k; ++m) mx = std::max(mx, lp[m]);
      double sum = 0.0;
      util::Vector nq(k);
      for (int m = 0; m < k; ++m) {
        nq[m] = std::exp(lp[m] - mx);
        sum += nq[m];
      }
      for (int m = 0; m < k; ++m) {
        nq[m] = static_cast<float>(nq[m] / sum);
        delta += std::fabs(nq[m] - q[i][m]);
      }
      q[i] = nq;
    }

    // ---- Spam responsibilities + M-step. ----
    std::vector<double> spam_mass(num_annotators, options_.smoothing);
    std::vector<double> label_mass(num_annotators, 2.0 * options_.smoothing);
    std::vector<std::vector<double>> xi_counts(
        num_annotators, std::vector<double>(k, options_.smoothing));
    std::vector<double> prior_counts(k, options_.smoothing);
    for (int i = 0; i < num_items; ++i) {
      for (int m = 0; m < k; ++m) prior_counts[m] += q[i][m];
      for (const auto& [j, y] : view.items[i].labels) {
        // r = E_q[ P(spam | T, y) ].
        double r = 0.0;
        for (int m = 0; m < k; ++m) {
          const double spam = eps[j] * xi[j][y];
          const double honest = m == y ? (1.0 - eps[j]) : 0.0;
          r += q[i][m] * spam / std::max(spam + honest, 1e-300);
        }
        spam_mass[j] += r;
        label_mass[j] += 1.0;
        xi_counts[j][y] += r;
      }
    }
    for (int j = 0; j < num_annotators; ++j) {
      eps[j] = std::clamp(spam_mass[j] / label_mass[j], 1e-4, 1.0 - 1e-4);
      double total = 0.0;
      for (int m = 0; m < k; ++m) total += xi_counts[j][m];
      for (int m = 0; m < k; ++m) xi[j][m] = xi_counts[j][m] / total;
    }
    double prior_total = 0.0;
    for (double c : prior_counts) prior_total += c;
    for (int m = 0; m < k; ++m) prior[m] = prior_counts[m] / prior_total;

    if (delta / std::max(1, num_items * k) < options_.tol) break;
  }

  Detailed out;
  out.posteriors = UnflattenPosteriors(view, q);
  out.competence.resize(num_annotators);
  for (int j = 0; j < num_annotators; ++j) out.competence[j] = 1.0 - eps[j];
  return out;
}

std::vector<util::Matrix> Mace::Infer(
    const crowd::AnnotationSet& annotations,
    const std::vector<int>& items_per_instance, util::Rng*) const {
  return RunDetailed(annotations, items_per_instance).posteriors;
}

}  // namespace lncl::inference
