#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "nn/parameter.h"

namespace lncl::nn {

// Binary parameter snapshot: magic, count, then per parameter name, shape and
// float payload. Used for early-stopping checkpoints (best-on-dev weights)
// and for persisting trained models from examples.
void SaveParams(std::ostream& os, const std::vector<Parameter*>& params);

// Restores values into the given parameters. Names and shapes must match the
// saved snapshot exactly; returns false (leaving params partially updated
// only on a stream error mid-way, never on mismatch) otherwise.
bool LoadParams(std::istream& is, const std::vector<Parameter*>& params);

// In-memory snapshot helpers for early stopping.
std::vector<util::Matrix> SnapshotValues(const std::vector<Parameter*>& params);
void RestoreValues(const std::vector<util::Matrix>& snapshot,
                   const std::vector<Parameter*>& params);

}  // namespace lncl::nn

