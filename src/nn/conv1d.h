#pragma once

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace lncl::nn {

// One-dimensional convolution over a token sequence.
//
// The input is a T x D matrix (one embedding row per token). Each of F
// filters spans `window` consecutive tokens (a window x D patch, flattened to
// a window*D weight row). Two padding modes:
//
//  * kValid: output is (T - window + 1) x F — the Kim (2014) text-CNN filter.
//  * kSame:  output is T x F with zero padding on both sides — the
//    Rodrigues & Pereira (2018) NER feature extractor (window 5).
//
// Forward emits pre-activations; apply ReluForward separately so backward can
// use the retained post-activation mask.
class Conv1d {
 public:
  enum class Padding { kValid, kSame };

  Conv1d(const std::string& name, int window, int in_dim, int filters,
         Padding padding, util::Rng* rng);

  Conv1d(const Conv1d&) = delete;
  Conv1d& operator=(const Conv1d&) = delete;

  // x: T x in_dim. y: rows depend on padding (see above), cols = filters.
  // For kValid inputs shorter than `window`, the input is implicitly
  // zero-padded at the end to `window` rows (output has exactly one row).
  // Implemented as a strided GEMM directly over x's sliding windows (im2row
  // without the copy), so convolutions share the blocked matrix kernel with
  // Linear and the recurrent gate projections; safe to call concurrently
  // from multiple threads (scratch buffers are thread-local).
  void Forward(const util::Matrix& x, util::Matrix* y) const;

  // Batched forward over `batch` equal-length sequences packed row-major into
  // x_packed ((batch * t) x in_dim; instance b occupies rows [b*t, (b+1)*t)).
  // y_packed gets the same instance-major layout, (batch * OutRows(t)) x
  // filters. Each instance's block is byte-for-byte what Forward produces on
  // its slice: all interior windows of the packed buffer go through one
  // GemmRaw of the exact same shape (n, k, lda) as Forward's — the windows
  // that straddle an instance boundary are computed into workspace scratch
  // and discarded — and boundary rows reuse Forward's scalar clipped-window
  // path. Scratch lives in the per-thread util::Workspace arena.
  void ForwardPacked(const util::Matrix& x_packed, int batch, int t,
                     util::Matrix* y_packed) const;

  // Accumulates parameter grads; writes dL/dx (same shape as x) when grad_x
  // is non-null.
  void Backward(const util::Matrix& x, const util::Matrix& grad_y,
                util::Matrix* grad_x);

  std::vector<Parameter*> Params() { return {&w_, &b_}; }

  int window() const { return window_; }
  int in_dim() const { return in_dim_; }
  int filters() const { return w_.value.rows(); }
  Padding padding() const { return padding_; }

  // Number of output rows for a T-row input.
  int OutRows(int t) const;

 private:
  // Leftmost input row index covered by output row `o` (may be negative for
  // kSame padding).
  int WindowStart(int o) const {
    return padding_ == Padding::kSame ? o - (window_ - 1) / 2 : o;
  }

  // Adds output row `o` of a t-row input starting at `x_base` into `yr`
  // (which already holds the bias), over the clipped window overlap, as an
  // m = 1 slice of the interior NN GEMM against the transposed filters `wt`.
  // Shared by Forward and ForwardPacked so both compute boundary rows with
  // the identical accumulation order.
  void AccumulateBoundaryRow(const util::Matrix& wt, const float* x_base,
                             int t, int o, float* yr) const;

  // Writes the filter bank transposed to (window * in_dim) x filters, the NN
  // GEMM operand of the interior passes. Shared by Forward and ForwardPacked
  // so both run the interior windows through the identical kernel.
  void TransposeFilters(util::Matrix* wt) const;

  int window_;
  int in_dim_;
  Padding padding_;
  Parameter w_;  // filters x (window * in_dim)
  Parameter b_;  // 1 x filters
};

}  // namespace lncl::nn

