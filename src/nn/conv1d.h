#pragma once

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "nn/quantize.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace lncl::nn {

// One-dimensional convolution over a token sequence.
//
// The input is a T x D matrix (one embedding row per token). Each of F
// filters spans `window` consecutive tokens (a window x D patch, flattened to
// a window*D weight row). Two padding modes:
//
//  * kValid: output is (T - window + 1) x F — the Kim (2014) text-CNN filter.
//  * kSame:  output is T x F with zero padding on both sides — the
//    Rodrigues & Pereira (2018) NER feature extractor (window 5).
//
// Forward takes the activation to fuse (kNone for pre-activations, kRelu for
// the conv+ReLU stacks in both models): bias and activation apply in the
// GEMM epilogue's single pass over the output instead of a separate sweep.
// Backward still expects the caller to retain the post-activation output
// (ReluBackward masks on it, exactly as before).
class Conv1d {
 public:
  enum class Padding { kValid, kSame };

  Conv1d(const std::string& name, int window, int in_dim, int filters,
         Padding padding, util::Rng* rng);

  Conv1d(const Conv1d&) = delete;
  Conv1d& operator=(const Conv1d&) = delete;

  // x: T x in_dim. y: rows depend on padding (see above), cols = filters,
  // y = act(conv(x) + bias). For kValid inputs shorter than `window`, the
  // input is implicitly zero-padded at the end to `window` rows (output has
  // exactly one row). Implemented as a strided GEMM directly over x's
  // sliding windows (im2row without the copy), so convolutions share the
  // blocked microkernels with Linear and the recurrent gate projections;
  // safe to call concurrently from multiple threads (the filter panel comes
  // from the per-thread pack cache).
  void Forward(const util::Matrix& x, util::Matrix* y,
               util::Act act = util::Act::kNone) const;

  // Batched forward over `batch` equal-length sequences packed row-major into
  // x_packed ((batch * t) x in_dim; instance b occupies rows [b*t, (b+1)*t)).
  // y_packed gets the same instance-major layout, (batch * OutRows(t)) x
  // filters. Each instance's block is byte-for-byte what Forward produces on
  // its slice: all interior windows go through a GEMM of the exact same
  // shape (n, k, lda) as Forward's, and boundary rows reuse Forward's scalar
  // clipped-window path.
  void ForwardPacked(const util::Matrix& x_packed, int batch, int t,
                     util::Matrix* y_packed,
                     util::Act act = util::Act::kNone) const;

  // Accumulates parameter grads; writes dL/dx (same shape as x) when grad_x
  // is non-null.
  void Backward(const util::Matrix& x, const util::Matrix& grad_y,
                util::Matrix* grad_x);

  std::vector<Parameter*> Params() { return {&w_, &b_}; }

  int window() const { return window_; }
  int in_dim() const { return in_dim_; }
  int filters() const { return w_.value.rows(); }
  Padding padding() const { return padding_; }

  // Number of output rows for a T-row input.
  int OutRows(int t) const;

  // Toggles the int8 serving path for Forward/ForwardPacked (eager
  // quantization at the toggle point; see Linear::SetQuantized). Backward
  // always reads the fp32 weights.
  void SetQuantized(bool on);
  bool quantized() const { return quantized_; }

 private:
  // Leftmost input row index covered by output row `o` (may be negative for
  // kSame padding).
  int WindowStart(int o) const {
    return padding_ == Padding::kSame ? o - (window_ - 1) / 2 : o;
  }

  // Computes the raw accumulator of output row `o` of a t-row input starting
  // at `x_base` into `yr` (zero-initialized here), over the clipped window
  // overlap, as an m = 1 slice of the interior NN GEMM against the k-major
  // filter panel `wt` (leading dimension = filters). The caller applies the
  // bias/activation epilogue afterwards. Shared by Forward and ForwardPacked
  // so both compute boundary rows in the identical accumulation order.
  void AccumulateBoundaryRow(const float* wt, const float* x_base, int t,
                             int o, float* yr) const;

  // Int8 twin of AccumulateBoundaryRow over the quantized panel; leaves the
  // un-scaled fp32 accumulator in yr.
  void QuantizedBoundaryRow(const float* x_base, int t, int o,
                            float* yr) const;

  int window_;
  int in_dim_;
  Padding padding_;
  Parameter w_;  // filters x (window * in_dim)
  Parameter b_;  // 1 x filters
  bool quantized_ = false;
  RowQuantized qw_;
};

}  // namespace lncl::nn
