#include "nn/optimizer.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace lncl::nn {

namespace {

// One optimizer update applied to a parameter set (any optimizer kind).
void CountStep() {
  if (obs::Metrics::enabled()) {
    static obs::Counter* const steps =
        obs::Metrics::GetCounter("optimizer.steps");
    steps->Increment();
  }
}

}  // namespace

void Sgd::Step(const std::vector<Parameter*>& params) {
  CountStep();
  MaybeClip(params);
  for (Parameter* p : params) {
    LNCL_AUDIT_FINITE(p->grad);
    ApplyL2(p);
    if (momentum_ > 0.0) {
      util::Matrix& v = velocity_[p];
      if (v.rows() != p->value.rows() || v.cols() != p->value.cols()) {
        v.Resize(p->value.rows(), p->value.cols());
      }
      v.Scale(static_cast<float>(momentum_));
      v.AddScaled(p->grad, 1.0f);
      p->value.AddScaled(v, static_cast<float>(-lr_));
    } else {
      p->value.AddScaled(p->grad, static_cast<float>(-lr_));
    }
    LNCL_AUDIT_FINITE(p->value);
    p->ZeroGrad();
  }
}

void Adam::Step(const std::vector<Parameter*>& params) {
  CountStep();
  MaybeClip(params);
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (Parameter* p : params) {
    LNCL_AUDIT_FINITE(p->grad);
    ApplyL2(p);
    State& s = state_[p];
    if (s.m.rows() != p->value.rows() || s.m.cols() != p->value.cols()) {
      s.m.Resize(p->value.rows(), p->value.cols());
      s.v.Resize(p->value.rows(), p->value.cols());
    }
    float* m = s.m.data();
    float* v = s.v.data();
    float* val = p->value.data();
    const float* g = p->grad.data();
    const float b1 = static_cast<float>(beta1_);
    const float b2 = static_cast<float>(beta2_);
    for (size_t i = 0; i < p->value.size(); ++i) {
      m[i] = b1 * m[i] + (1.0f - b1) * g[i];
      v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      val[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
    LNCL_AUDIT_FINITE(p->value);
    p->ZeroGrad();
  }
}

void Adadelta::Step(const std::vector<Parameter*>& params) {
  CountStep();
  MaybeClip(params);
  for (Parameter* p : params) {
    LNCL_AUDIT_FINITE(p->grad);
    ApplyL2(p);
    State& s = state_[p];
    if (s.avg_sq_grad.rows() != p->value.rows() ||
        s.avg_sq_grad.cols() != p->value.cols()) {
      s.avg_sq_grad.Resize(p->value.rows(), p->value.cols());
      s.avg_sq_update.Resize(p->value.rows(), p->value.cols());
    }
    float* eg = s.avg_sq_grad.data();
    float* eu = s.avg_sq_update.data();
    float* val = p->value.data();
    const float* g = p->grad.data();
    const float rho = static_cast<float>(rho_);
    const float eps = static_cast<float>(eps_);
    for (size_t i = 0; i < p->value.size(); ++i) {
      eg[i] = rho * eg[i] + (1.0f - rho) * g[i] * g[i];
      const float update =
          std::sqrt((eu[i] + eps) / (eg[i] + eps)) * g[i];
      eu[i] = rho * eu[i] + (1.0f - rho) * update * update;
      val[i] -= static_cast<float>(lr_) * update;
    }
    LNCL_AUDIT_FINITE(p->value);
    p->ZeroGrad();
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(const OptimizerConfig& config) {
  std::unique_ptr<Optimizer> opt;
  if (config.kind == "sgd") {
    opt = std::make_unique<Sgd>(config.lr, config.momentum, config.l2);
  } else if (config.kind == "adadelta") {
    opt = std::make_unique<Adadelta>(config.lr, 0.95, 1e-6, config.l2);
  } else {
    if (config.kind != "adam") {
      LNCL_LOG(Warning) << "unknown optimizer kind '" << config.kind
                        << "', falling back to adam";
    }
    opt = std::make_unique<Adam>(config.lr, 0.9, 0.999, 1e-8, config.l2);
  }
  opt->set_clip_norm(config.clip_norm);
  return opt;
}

void ApplyLrSchedule(const OptimizerConfig& config, int epoch, Optimizer* opt) {
  if (config.lr_decay_every <= 0 || config.lr_decay == 1.0) return;
  const int steps = epoch / config.lr_decay_every;
  opt->set_lr(config.lr * std::pow(config.lr_decay, steps));
}

}  // namespace lncl::nn
