#pragma once

#include <vector>

#include "util/matrix.h"

namespace lncl::nn {

// Max-over-time pooling: collapses a T x F feature map to an F-vector by
// taking the per-column maximum (Kim 2014). `argmax` records, per column,
// the winning row index for the backward pass.
void MaxOverTimeForward(const util::Matrix& x, util::Vector* out,
                        std::vector<int>* argmax);

// Max-over-time over the row range [row_begin, row_end) of x, written to
// out[0..F) — the batched-inference entry (one packed conv output holds
// several instances' rows back to back). Same strict-> ascending scan as
// MaxOverTimeForward on the slice, so the result is bit-identical; no argmax
// (inference only).
void MaxOverTimeRange(const util::Matrix& x, int row_begin, int row_end,
                      float* out);

// Routes dL/dout back to the winning rows; grad_x is resized to rows x F and
// zero elsewhere.
void MaxOverTimeBackward(const std::vector<int>& argmax,
                         const util::Vector& grad_out, int rows,
                         util::Matrix* grad_x);

}  // namespace lncl::nn

