#ifndef LNCL_NN_MAXPOOL_H_
#define LNCL_NN_MAXPOOL_H_

#include <vector>

#include "util/matrix.h"

namespace lncl::nn {

// Max-over-time pooling: collapses a T x F feature map to an F-vector by
// taking the per-column maximum (Kim 2014). `argmax` records, per column,
// the winning row index for the backward pass.
void MaxOverTimeForward(const util::Matrix& x, util::Vector* out,
                        std::vector<int>* argmax);

// Routes dL/dout back to the winning rows; grad_x is resized to rows x F and
// zero elsewhere.
void MaxOverTimeBackward(const std::vector<int>& argmax,
                         const util::Vector& grad_out, int rows,
                         util::Matrix* grad_x);

}  // namespace lncl::nn

#endif  // LNCL_NN_MAXPOOL_H_
