#pragma once

#include <cmath>

#include "util/matrix.h"

namespace lncl::nn {

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// In-place ReLU on pre-activations; the pre-activation matrix must be kept by
// the caller if a backward pass follows (see ReluBackward).
void ReluForward(util::Matrix* x);
void ReluForward(util::Vector* x);

// Zeroes gradient entries where the pre-activation was <= 0. `pre` is the
// matrix BEFORE ReluForward was applied... since ReluForward is in-place the
// post-activation works equally (relu(x) > 0 iff x > 0).
void ReluBackward(const util::Matrix& post, util::Matrix* grad);
void ReluBackward(const util::Vector& post, util::Vector* grad);

// Elementwise tanh / sigmoid forward (in place).
void TanhForward(util::Vector* x);
void SigmoidForward(util::Vector* x);

}  // namespace lncl::nn

