#include "nn/gru.h"

#include <cassert>
#include <cmath>

#include "nn/activations.h"

namespace lncl::nn {

Gru::Gru(const std::string& name, int in_dim, int hidden_dim, util::Rng* rng)
    : wz_(name + ".wz", hidden_dim, in_dim),
      uz_(name + ".uz", hidden_dim, hidden_dim),
      bz_(name + ".bz", 1, hidden_dim),
      wr_(name + ".wr", hidden_dim, in_dim),
      ur_(name + ".ur", hidden_dim, hidden_dim),
      br_(name + ".br", 1, hidden_dim),
      wc_(name + ".wc", hidden_dim, in_dim),
      uc_(name + ".uc", hidden_dim, hidden_dim),
      bc_(name + ".bc", 1, hidden_dim) {
  GlorotInit(rng, &wz_.value);
  GlorotInit(rng, &uz_.value);
  GlorotInit(rng, &wr_.value);
  GlorotInit(rng, &ur_.value);
  GlorotInit(rng, &wc_.value);
  GlorotInit(rng, &uc_.value);
}

void Gru::Forward(const util::Matrix& x, Cache* cache,
                  util::Matrix* h_out) const {
  assert(x.cols() == in_dim());
  const int t_len = x.rows();
  const int h_dim = hidden_dim();
  cache->h.Resize(t_len, h_dim);
  cache->z.Resize(t_len, h_dim);
  cache->r.Resize(t_len, h_dim);
  cache->c.Resize(t_len, h_dim);

  util::Vector h_prev(h_dim, 0.0f);
  util::Vector xt(in_dim());
  util::Vector tmp_a, tmp_b, rh(h_dim);
  for (int t = 0; t < t_len; ++t) {
    const float* xrow = x.Row(t);
    std::copy(xrow, xrow + in_dim(), xt.begin());

    float* z = cache->z.Row(t);
    float* r = cache->r.Row(t);
    float* c = cache->c.Row(t);
    float* h = cache->h.Row(t);

    // z_t
    util::MatVec(wz_.value, xt, &tmp_a);
    util::MatVec(uz_.value, h_prev, &tmp_b);
    for (int k = 0; k < h_dim; ++k) {
      z[k] = Sigmoid(tmp_a[k] + tmp_b[k] + bz_.value(0, k));
    }
    // r_t
    util::MatVec(wr_.value, xt, &tmp_a);
    util::MatVec(ur_.value, h_prev, &tmp_b);
    for (int k = 0; k < h_dim; ++k) {
      r[k] = Sigmoid(tmp_a[k] + tmp_b[k] + br_.value(0, k));
    }
    // c_t
    for (int k = 0; k < h_dim; ++k) rh[k] = r[k] * h_prev[k];
    util::MatVec(wc_.value, xt, &tmp_a);
    util::MatVec(uc_.value, rh, &tmp_b);
    for (int k = 0; k < h_dim; ++k) {
      c[k] = std::tanh(tmp_a[k] + tmp_b[k] + bc_.value(0, k));
    }
    // h_t
    for (int k = 0; k < h_dim; ++k) {
      h[k] = (1.0f - z[k]) * h_prev[k] + z[k] * c[k];
      h_prev[k] = h[k];
    }
  }
  *h_out = cache->h;
}

void Gru::Backward(const util::Matrix& x, const Cache& cache,
                   const util::Matrix& grad_h, util::Matrix* grad_x) {
  const int t_len = x.rows();
  const int h_dim = hidden_dim();
  assert(grad_h.rows() == t_len && grad_h.cols() == h_dim);
  if (grad_x != nullptr) grad_x->Resize(t_len, in_dim());

  util::Vector dh_next(h_dim, 0.0f);
  util::Vector dh(h_dim), dz_pre(h_dim), dr_pre(h_dim), dc_pre(h_dim);
  util::Vector drh(h_dim), xt(in_dim()), h_prev(h_dim), tmp;
  for (int t = t_len - 1; t >= 0; --t) {
    const float* xrow = x.Row(t);
    std::copy(xrow, xrow + in_dim(), xt.begin());
    if (t > 0) {
      const float* hp = cache.h.Row(t - 1);
      std::copy(hp, hp + h_dim, h_prev.begin());
    } else {
      std::fill(h_prev.begin(), h_prev.end(), 0.0f);
    }
    const float* z = cache.z.Row(t);
    const float* r = cache.r.Row(t);
    const float* c = cache.c.Row(t);
    const float* gh = grad_h.Row(t);

    for (int k = 0; k < h_dim; ++k) dh[k] = gh[k] + dh_next[k];

    // Through h_t = (1-z) h_prev + z c.
    for (int k = 0; k < h_dim; ++k) {
      const float dzk = dh[k] * (c[k] - h_prev[k]);
      const float dck = dh[k] * z[k];
      dh_next[k] = dh[k] * (1.0f - z[k]);  // start accumulating dL/dh_{t-1}
      dz_pre[k] = dzk * z[k] * (1.0f - z[k]);
      dc_pre[k] = dck * (1.0f - c[k] * c[k]);
    }

    // Candidate branch: c = tanh(Wc x + Uc (r.h_prev) + bc).
    util::Vector rh(h_dim);
    for (int k = 0; k < h_dim; ++k) rh[k] = r[k] * h_prev[k];
    util::OuterAdd(dc_pre, xt, 1.0f, &wc_.grad);
    util::OuterAdd(dc_pre, rh, 1.0f, &uc_.grad);
    for (int k = 0; k < h_dim; ++k) bc_.grad(0, k) += dc_pre[k];
    util::MatVecTrans(uc_.value, dc_pre, &drh);
    for (int k = 0; k < h_dim; ++k) {
      const float drk = drh[k] * h_prev[k];
      dh_next[k] += drh[k] * r[k];
      dr_pre[k] = drk * r[k] * (1.0f - r[k]);
    }

    // Gate branches.
    util::OuterAdd(dz_pre, xt, 1.0f, &wz_.grad);
    util::OuterAdd(dz_pre, h_prev, 1.0f, &uz_.grad);
    util::OuterAdd(dr_pre, xt, 1.0f, &wr_.grad);
    util::OuterAdd(dr_pre, h_prev, 1.0f, &ur_.grad);
    for (int k = 0; k < h_dim; ++k) {
      bz_.grad(0, k) += dz_pre[k];
      br_.grad(0, k) += dr_pre[k];
    }
    util::MatVecTrans(uz_.value, dz_pre, &tmp);
    for (int k = 0; k < h_dim; ++k) dh_next[k] += tmp[k];
    util::MatVecTrans(ur_.value, dr_pre, &tmp);
    for (int k = 0; k < h_dim; ++k) dh_next[k] += tmp[k];

    if (grad_x != nullptr) {
      float* gx = grad_x->Row(t);
      util::MatVecTrans(wz_.value, dz_pre, &tmp);
      for (int d = 0; d < in_dim(); ++d) gx[d] += tmp[d];
      util::MatVecTrans(wr_.value, dr_pre, &tmp);
      for (int d = 0; d < in_dim(); ++d) gx[d] += tmp[d];
      util::MatVecTrans(wc_.value, dc_pre, &tmp);
      for (int d = 0; d < in_dim(); ++d) gx[d] += tmp[d];
    }
  }
}

}  // namespace lncl::nn
