#include "nn/gru.h"

#include <cmath>

#include "nn/activations.h"
#include "util/check.h"
#include "util/gemm_kernel.h"
#include "util/workspace.h"

namespace lncl::nn {

Gru::Gru(const std::string& name, int in_dim, int hidden_dim, util::Rng* rng)
    : wz_(name + ".wz", hidden_dim, in_dim),
      uz_(name + ".uz", hidden_dim, hidden_dim),
      bz_(name + ".bz", 1, hidden_dim),
      wr_(name + ".wr", hidden_dim, in_dim),
      ur_(name + ".ur", hidden_dim, hidden_dim),
      br_(name + ".br", 1, hidden_dim),
      wc_(name + ".wc", hidden_dim, in_dim),
      uc_(name + ".uc", hidden_dim, hidden_dim),
      bc_(name + ".bc", 1, hidden_dim) {
  GlorotInit(rng, &wz_.value);
  GlorotInit(rng, &uz_.value);
  GlorotInit(rng, &wr_.value);
  GlorotInit(rng, &ur_.value);
  GlorotInit(rng, &wc_.value);
  GlorotInit(rng, &uc_.value);
}

namespace {

// Per-thread scratch: the input-side gate projections for the whole
// sequence (forward) and the per-step pre-activation gradients (backward).
// thread_local keeps const Forward safe under the parallel E-step.
thread_local util::Matrix tls_gxz, tls_gxr, tls_gxc;
thread_local util::Matrix tls_dz, tls_dr, tls_dc, tls_hprev, tls_rh;

}  // namespace

// Both forward passes below run every gate product in the NN kernel form
// against k-major weight panels served by the per-thread pack cache (see
// util::gemm::PackedOpB): the inner loop updates h_dim independent
// accumulators with stride-1 loads, and the panels are repacked once per
// optimizer step rather than once per call — previously each Forward paid
// six TransposeInto copies, the dominant per-call cost of the batched
// m-step. The kernels compute each output row independently of the total
// row count, so row b of a batched recurrent product in ForwardPacked is
// bit-identical to Forward's one-row product on lane b — the packed path
// stays byte-for-byte equal to the per-instance path. The input-side gate
// biases ride the GEMM epilogue, so the per-step gate loops add only the
// recurrent term.

void Gru::Forward(const util::Matrix& x, Cache* cache,
                  util::Matrix* h_out) const {
  LNCL_DCHECK(x.cols() == in_dim());
  const int t_len = x.rows();
  const int h_dim = hidden_dim();
  cache->h.ResizeNoZero(t_len, h_dim);
  cache->z.ResizeNoZero(t_len, h_dim);
  cache->r.ResizeNoZero(t_len, h_dim);
  cache->c.ResizeNoZero(t_len, h_dim);

  // Input-side gate pre-activations (bias included) for every timestep in
  // one GEMM each: GX_g = X * W_g^T + b_g. Only the h x h recurrent
  // products remain sequential.
  util::GemmEx(1.0f, x, util::Trans::kNo, wz_.value, util::Trans::kYes, 0.0f,
               &tls_gxz, bz_.value.Row(0), util::Act::kNone);
  util::GemmEx(1.0f, x, util::Trans::kNo, wr_.value, util::Trans::kYes, 0.0f,
               &tls_gxr, br_.value.Row(0), util::Act::kNone);
  util::GemmEx(1.0f, x, util::Trans::kNo, wc_.value, util::Trans::kYes, 0.0f,
               &tls_gxc, bc_.value.Row(0), util::Act::kNone);

  // Recurrent weight panels, hoisted out of the step loop; the loop body
  // only issues non-packing kernel calls, so the pointers stay valid.
  int ldu = 0;
  const float* uzp = util::gemm::PackedOpB(uz_.value, util::Trans::kYes, &ldu);
  const float* urp = util::gemm::PackedOpB(ur_.value, util::Trans::kYes, &ldu);
  const float* ucp = util::gemm::PackedOpB(uc_.value, util::Trans::kYes, &ldu);

  util::Vector h_prev(h_dim, 0.0f);
  util::Vector tmp_b(h_dim), rh(h_dim);
  const auto recur = [h_dim](const float* u, const util::Vector& v,
                             util::Vector* out) {
    util::gemm::GemmEx(1, h_dim, h_dim, 1.0f, v.data(), h_dim,
                       util::Trans::kNo, u, h_dim, util::Trans::kNo, 0.0f,
                       out->data(), h_dim, nullptr, util::Act::kNone);
  };
  for (int t = 0; t < t_len; ++t) {
    float* z = cache->z.Row(t);
    float* r = cache->r.Row(t);
    float* c = cache->c.Row(t);
    float* h = cache->h.Row(t);

    // z_t
    const float* gxz = tls_gxz.Row(t);
    recur(uzp, h_prev, &tmp_b);
    for (int k = 0; k < h_dim; ++k) {
      z[k] = Sigmoid(gxz[k] + tmp_b[k]);
    }
    // r_t
    const float* gxr = tls_gxr.Row(t);
    recur(urp, h_prev, &tmp_b);
    for (int k = 0; k < h_dim; ++k) {
      r[k] = Sigmoid(gxr[k] + tmp_b[k]);
    }
    // c_t
    const float* gxc = tls_gxc.Row(t);
    for (int k = 0; k < h_dim; ++k) rh[k] = r[k] * h_prev[k];
    recur(ucp, rh, &tmp_b);
    for (int k = 0; k < h_dim; ++k) {
      c[k] = std::tanh(gxc[k] + tmp_b[k]);
    }
    // h_t
    for (int k = 0; k < h_dim; ++k) {
      h[k] = (1.0f - z[k]) * h_prev[k] + z[k] * c[k];
      h_prev[k] = h[k];
    }
  }
  *h_out = cache->h;
}

void Gru::ForwardPacked(const util::Matrix& x_packed, int batch, int t_len,
                        util::Matrix* h_packed) const {
  LNCL_DCHECK(x_packed.rows() == batch * t_len);
  LNCL_DCHECK(t_len == 0 || x_packed.cols() == in_dim());
  const int h_dim = hidden_dim();
  h_packed->ResizeNoZero(batch * t_len, h_dim);
  if (batch == 0 || t_len == 0) return;

  util::WorkspaceScope scope;
  // Input-side gate pre-activations (bias fused) for every (instance, step)
  // row at once — the same per-row GEMMs as Forward, just over more rows.
  util::Matrix& gx_z = scope.NewMatrix();
  util::Matrix& gx_r = scope.NewMatrix();
  util::Matrix& gx_c = scope.NewMatrix();
  util::GemmEx(1.0f, x_packed, util::Trans::kNo, wz_.value, util::Trans::kYes,
               0.0f, &gx_z, bz_.value.Row(0), util::Act::kNone);
  util::GemmEx(1.0f, x_packed, util::Trans::kNo, wr_.value, util::Trans::kYes,
               0.0f, &gx_r, br_.value.Row(0), util::Act::kNone);
  util::GemmEx(1.0f, x_packed, util::Trans::kNo, wc_.value, util::Trans::kYes,
               0.0f, &gx_c, bc_.value.Row(0), util::Act::kNone);

  util::Matrix& h_prev = scope.NewMatrix();
  h_prev.Resize(batch, h_dim);  // zero initial state, as in Forward
  util::Matrix& zs = scope.NewMatrix(batch, h_dim);
  util::Matrix& rs = scope.NewMatrix(batch, h_dim);
  util::Matrix& cs = scope.NewMatrix(batch, h_dim);
  util::Matrix& rh = scope.NewMatrix(batch, h_dim);
  util::Matrix& tmp = scope.NewMatrix();
  for (int t = 0; t < t_len; ++t) {
    // z_t for all lanes: row b of H_prev * Uz^T is exactly Forward's one-row
    // recurrent product — the batch dimension only adds kernel rows, and the
    // Uz panel comes from the same pack cache.
    util::Gemm(1.0f, h_prev, util::Trans::kNo, uz_.value, util::Trans::kYes,
               0.0f, &tmp);
    for (int b = 0; b < batch; ++b) {
      const float* gxz = gx_z.Row(b * t_len + t);
      const float* tmp_b = tmp.Row(b);
      float* z = zs.Row(b);
      for (int k = 0; k < h_dim; ++k) {
        z[k] = Sigmoid(gxz[k] + tmp_b[k]);
      }
    }
    // r_t
    util::Gemm(1.0f, h_prev, util::Trans::kNo, ur_.value, util::Trans::kYes,
               0.0f, &tmp);
    for (int b = 0; b < batch; ++b) {
      const float* gxr = gx_r.Row(b * t_len + t);
      const float* tmp_b = tmp.Row(b);
      float* r = rs.Row(b);
      for (int k = 0; k < h_dim; ++k) {
        r[k] = Sigmoid(gxr[k] + tmp_b[k]);
      }
    }
    // c_t
    for (int b = 0; b < batch; ++b) {
      const float* r = rs.Row(b);
      const float* hp = h_prev.Row(b);
      float* rhb = rh.Row(b);
      for (int k = 0; k < h_dim; ++k) rhb[k] = r[k] * hp[k];
    }
    util::Gemm(1.0f, rh, util::Trans::kNo, uc_.value, util::Trans::kYes, 0.0f,
               &tmp);
    for (int b = 0; b < batch; ++b) {
      const float* gxc = gx_c.Row(b * t_len + t);
      const float* tmp_b = tmp.Row(b);
      float* c = cs.Row(b);
      for (int k = 0; k < h_dim; ++k) {
        c[k] = std::tanh(gxc[k] + tmp_b[k]);
      }
    }
    // h_t
    for (int b = 0; b < batch; ++b) {
      const float* z = zs.Row(b);
      const float* c = cs.Row(b);
      float* hp = h_prev.Row(b);
      float* h = h_packed->Row(b * t_len + t);
      for (int k = 0; k < h_dim; ++k) {
        h[k] = (1.0f - z[k]) * hp[k] + z[k] * c[k];
        hp[k] = h[k];
      }
    }
  }
}

void Gru::Backward(const util::Matrix& x, const Cache& cache,
                   const util::Matrix& grad_h, util::Matrix* grad_x) {
  const int t_len = x.rows();
  const int h_dim = hidden_dim();
  LNCL_DCHECK(grad_h.rows() == t_len && grad_h.cols() == h_dim);

  // The sequential sweep only resolves the recurrent coupling; the
  // pre-activation gradients are staged per timestep and the parameter /
  // input gradients are then computed with batched GEMMs below.
  tls_dz.ResizeNoZero(t_len, h_dim);
  tls_dr.ResizeNoZero(t_len, h_dim);
  tls_dc.ResizeNoZero(t_len, h_dim);
  tls_hprev.ResizeNoZero(t_len, h_dim);  // row t = h_{t-1} (zeros at t=0)
  tls_rh.ResizeNoZero(t_len, h_dim);     // row t = r_t . h_{t-1}

  util::Vector dh_next(h_dim, 0.0f);
  util::Vector dh(h_dim), dz_pre(h_dim), dr_pre(h_dim), dc_pre(h_dim);
  util::Vector drh(h_dim), tmp;
  for (int t = t_len - 1; t >= 0; --t) {
    float* h_prev = tls_hprev.Row(t);
    if (t > 0) {
      const float* hp = cache.h.Row(t - 1);
      std::copy(hp, hp + h_dim, h_prev);
    } else {
      std::fill(h_prev, h_prev + h_dim, 0.0f);
    }
    const float* z = cache.z.Row(t);
    const float* r = cache.r.Row(t);
    const float* c = cache.c.Row(t);
    const float* gh = grad_h.Row(t);

    for (int k = 0; k < h_dim; ++k) dh[k] = gh[k] + dh_next[k];

    // Through h_t = (1-z) h_prev + z c.
    for (int k = 0; k < h_dim; ++k) {
      const float dzk = dh[k] * (c[k] - h_prev[k]);
      const float dck = dh[k] * z[k];
      dh_next[k] = dh[k] * (1.0f - z[k]);  // start accumulating dL/dh_{t-1}
      dz_pre[k] = dzk * z[k] * (1.0f - z[k]);
      dc_pre[k] = dck * (1.0f - c[k] * c[k]);
    }

    // Candidate branch: c = tanh(Wc x + Uc (r.h_prev) + bc).
    float* rh = tls_rh.Row(t);
    for (int k = 0; k < h_dim; ++k) rh[k] = r[k] * h_prev[k];
    util::MatVecTrans(uc_.value, dc_pre, &drh);
    for (int k = 0; k < h_dim; ++k) {
      const float drk = drh[k] * h_prev[k];
      dh_next[k] += drh[k] * r[k];
      dr_pre[k] = drk * r[k] * (1.0f - r[k]);
    }

    // Gate branches: the recurrent coupling into dL/dh_{t-1}.
    util::MatVecTrans(uz_.value, dz_pre, &tmp);
    for (int k = 0; k < h_dim; ++k) dh_next[k] += tmp[k];
    util::MatVecTrans(ur_.value, dr_pre, &tmp);
    for (int k = 0; k < h_dim; ++k) dh_next[k] += tmp[k];

    std::copy(dz_pre.begin(), dz_pre.end(), tls_dz.Row(t));
    std::copy(dr_pre.begin(), dr_pre.end(), tls_dr.Row(t));
    std::copy(dc_pre.begin(), dc_pre.end(), tls_dc.Row(t));
  }

  // Parameter gradients, batched over the whole sequence.
  util::Gemm(1.0f, tls_dz, util::Trans::kYes, x, util::Trans::kNo, 1.0f,
             &wz_.grad);
  util::Gemm(1.0f, tls_dz, util::Trans::kYes, tls_hprev, util::Trans::kNo,
             1.0f, &uz_.grad);
  util::Gemm(1.0f, tls_dr, util::Trans::kYes, x, util::Trans::kNo, 1.0f,
             &wr_.grad);
  util::Gemm(1.0f, tls_dr, util::Trans::kYes, tls_hprev, util::Trans::kNo,
             1.0f, &ur_.grad);
  util::Gemm(1.0f, tls_dc, util::Trans::kYes, x, util::Trans::kNo, 1.0f,
             &wc_.grad);
  util::Gemm(1.0f, tls_dc, util::Trans::kYes, tls_rh, util::Trans::kNo, 1.0f,
             &uc_.grad);
  float* gbz = bz_.grad.Row(0);
  float* gbr = br_.grad.Row(0);
  float* gbc = bc_.grad.Row(0);
  for (int t = 0; t < t_len; ++t) {
    const float* dz = tls_dz.Row(t);
    const float* dr = tls_dr.Row(t);
    const float* dc = tls_dc.Row(t);
    for (int k = 0; k < h_dim; ++k) {
      gbz[k] += dz[k];
      gbr[k] += dr[k];
      gbc[k] += dc[k];
    }
  }

  if (grad_x != nullptr) {
    // dX = dZ Wz + dR Wr + dC Wc.
    util::Gemm(1.0f, tls_dz, util::Trans::kNo, wz_.value, util::Trans::kNo,
               0.0f, grad_x);
    util::Gemm(1.0f, tls_dr, util::Trans::kNo, wr_.value, util::Trans::kNo,
               1.0f, grad_x);
    util::Gemm(1.0f, tls_dc, util::Trans::kNo, wc_.value, util::Trans::kNo,
               1.0f, grad_x);
  }
}

}  // namespace lncl::nn
