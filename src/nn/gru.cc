#include "nn/gru.h"

#include <cassert>
#include <cmath>

#include "nn/activations.h"

namespace lncl::nn {

Gru::Gru(const std::string& name, int in_dim, int hidden_dim, util::Rng* rng)
    : wz_(name + ".wz", hidden_dim, in_dim),
      uz_(name + ".uz", hidden_dim, hidden_dim),
      bz_(name + ".bz", 1, hidden_dim),
      wr_(name + ".wr", hidden_dim, in_dim),
      ur_(name + ".ur", hidden_dim, hidden_dim),
      br_(name + ".br", 1, hidden_dim),
      wc_(name + ".wc", hidden_dim, in_dim),
      uc_(name + ".uc", hidden_dim, hidden_dim),
      bc_(name + ".bc", 1, hidden_dim) {
  GlorotInit(rng, &wz_.value);
  GlorotInit(rng, &uz_.value);
  GlorotInit(rng, &wr_.value);
  GlorotInit(rng, &ur_.value);
  GlorotInit(rng, &wc_.value);
  GlorotInit(rng, &uc_.value);
}

namespace {

// Per-thread scratch: the input-side gate projections for the whole
// sequence (forward) and the per-step pre-activation gradients (backward).
// thread_local keeps const Forward safe under the parallel E-step.
thread_local util::Matrix tls_gxz, tls_gxr, tls_gxc;
thread_local util::Matrix tls_dz, tls_dr, tls_dc, tls_hprev, tls_rh;

}  // namespace

void Gru::Forward(const util::Matrix& x, Cache* cache,
                  util::Matrix* h_out) const {
  assert(x.cols() == in_dim());
  const int t_len = x.rows();
  const int h_dim = hidden_dim();
  cache->h.ResizeNoZero(t_len, h_dim);
  cache->z.ResizeNoZero(t_len, h_dim);
  cache->r.ResizeNoZero(t_len, h_dim);
  cache->c.ResizeNoZero(t_len, h_dim);

  // Input-side gate pre-activations for every timestep in one GEMM each:
  // GX_g = X * W_g^T. Only the h x h recurrent products remain sequential.
  util::Gemm(1.0f, x, util::Trans::kNo, wz_.value, util::Trans::kYes, 0.0f,
             &tls_gxz);
  util::Gemm(1.0f, x, util::Trans::kNo, wr_.value, util::Trans::kYes, 0.0f,
             &tls_gxr);
  util::Gemm(1.0f, x, util::Trans::kNo, wc_.value, util::Trans::kYes, 0.0f,
             &tls_gxc);

  util::Vector h_prev(h_dim, 0.0f);
  util::Vector tmp_b, rh(h_dim);
  const float* bz = bz_.value.Row(0);
  const float* br = br_.value.Row(0);
  const float* bc = bc_.value.Row(0);
  for (int t = 0; t < t_len; ++t) {
    float* z = cache->z.Row(t);
    float* r = cache->r.Row(t);
    float* c = cache->c.Row(t);
    float* h = cache->h.Row(t);

    // z_t
    const float* gxz = tls_gxz.Row(t);
    util::MatVec(uz_.value, h_prev, &tmp_b);
    for (int k = 0; k < h_dim; ++k) {
      z[k] = Sigmoid(gxz[k] + tmp_b[k] + bz[k]);
    }
    // r_t
    const float* gxr = tls_gxr.Row(t);
    util::MatVec(ur_.value, h_prev, &tmp_b);
    for (int k = 0; k < h_dim; ++k) {
      r[k] = Sigmoid(gxr[k] + tmp_b[k] + br[k]);
    }
    // c_t
    const float* gxc = tls_gxc.Row(t);
    for (int k = 0; k < h_dim; ++k) rh[k] = r[k] * h_prev[k];
    util::MatVec(uc_.value, rh, &tmp_b);
    for (int k = 0; k < h_dim; ++k) {
      c[k] = std::tanh(gxc[k] + tmp_b[k] + bc[k]);
    }
    // h_t
    for (int k = 0; k < h_dim; ++k) {
      h[k] = (1.0f - z[k]) * h_prev[k] + z[k] * c[k];
      h_prev[k] = h[k];
    }
  }
  *h_out = cache->h;
}

void Gru::Backward(const util::Matrix& x, const Cache& cache,
                   const util::Matrix& grad_h, util::Matrix* grad_x) {
  const int t_len = x.rows();
  const int h_dim = hidden_dim();
  assert(grad_h.rows() == t_len && grad_h.cols() == h_dim);

  // The sequential sweep only resolves the recurrent coupling; the
  // pre-activation gradients are staged per timestep and the parameter /
  // input gradients are then computed with batched GEMMs below.
  tls_dz.ResizeNoZero(t_len, h_dim);
  tls_dr.ResizeNoZero(t_len, h_dim);
  tls_dc.ResizeNoZero(t_len, h_dim);
  tls_hprev.ResizeNoZero(t_len, h_dim);  // row t = h_{t-1} (zeros at t=0)
  tls_rh.ResizeNoZero(t_len, h_dim);     // row t = r_t . h_{t-1}

  util::Vector dh_next(h_dim, 0.0f);
  util::Vector dh(h_dim), dz_pre(h_dim), dr_pre(h_dim), dc_pre(h_dim);
  util::Vector drh(h_dim), tmp;
  for (int t = t_len - 1; t >= 0; --t) {
    float* h_prev = tls_hprev.Row(t);
    if (t > 0) {
      const float* hp = cache.h.Row(t - 1);
      std::copy(hp, hp + h_dim, h_prev);
    } else {
      std::fill(h_prev, h_prev + h_dim, 0.0f);
    }
    const float* z = cache.z.Row(t);
    const float* r = cache.r.Row(t);
    const float* c = cache.c.Row(t);
    const float* gh = grad_h.Row(t);

    for (int k = 0; k < h_dim; ++k) dh[k] = gh[k] + dh_next[k];

    // Through h_t = (1-z) h_prev + z c.
    for (int k = 0; k < h_dim; ++k) {
      const float dzk = dh[k] * (c[k] - h_prev[k]);
      const float dck = dh[k] * z[k];
      dh_next[k] = dh[k] * (1.0f - z[k]);  // start accumulating dL/dh_{t-1}
      dz_pre[k] = dzk * z[k] * (1.0f - z[k]);
      dc_pre[k] = dck * (1.0f - c[k] * c[k]);
    }

    // Candidate branch: c = tanh(Wc x + Uc (r.h_prev) + bc).
    float* rh = tls_rh.Row(t);
    for (int k = 0; k < h_dim; ++k) rh[k] = r[k] * h_prev[k];
    util::MatVecTrans(uc_.value, dc_pre, &drh);
    for (int k = 0; k < h_dim; ++k) {
      const float drk = drh[k] * h_prev[k];
      dh_next[k] += drh[k] * r[k];
      dr_pre[k] = drk * r[k] * (1.0f - r[k]);
    }

    // Gate branches: the recurrent coupling into dL/dh_{t-1}.
    util::MatVecTrans(uz_.value, dz_pre, &tmp);
    for (int k = 0; k < h_dim; ++k) dh_next[k] += tmp[k];
    util::MatVecTrans(ur_.value, dr_pre, &tmp);
    for (int k = 0; k < h_dim; ++k) dh_next[k] += tmp[k];

    std::copy(dz_pre.begin(), dz_pre.end(), tls_dz.Row(t));
    std::copy(dr_pre.begin(), dr_pre.end(), tls_dr.Row(t));
    std::copy(dc_pre.begin(), dc_pre.end(), tls_dc.Row(t));
  }

  // Parameter gradients, batched over the whole sequence.
  util::Gemm(1.0f, tls_dz, util::Trans::kYes, x, util::Trans::kNo, 1.0f,
             &wz_.grad);
  util::Gemm(1.0f, tls_dz, util::Trans::kYes, tls_hprev, util::Trans::kNo,
             1.0f, &uz_.grad);
  util::Gemm(1.0f, tls_dr, util::Trans::kYes, x, util::Trans::kNo, 1.0f,
             &wr_.grad);
  util::Gemm(1.0f, tls_dr, util::Trans::kYes, tls_hprev, util::Trans::kNo,
             1.0f, &ur_.grad);
  util::Gemm(1.0f, tls_dc, util::Trans::kYes, x, util::Trans::kNo, 1.0f,
             &wc_.grad);
  util::Gemm(1.0f, tls_dc, util::Trans::kYes, tls_rh, util::Trans::kNo, 1.0f,
             &uc_.grad);
  float* gbz = bz_.grad.Row(0);
  float* gbr = br_.grad.Row(0);
  float* gbc = bc_.grad.Row(0);
  for (int t = 0; t < t_len; ++t) {
    const float* dz = tls_dz.Row(t);
    const float* dr = tls_dr.Row(t);
    const float* dc = tls_dc.Row(t);
    for (int k = 0; k < h_dim; ++k) {
      gbz[k] += dz[k];
      gbr[k] += dr[k];
      gbc[k] += dc[k];
    }
  }

  if (grad_x != nullptr) {
    // dX = dZ Wz + dR Wr + dC Wc.
    util::Gemm(1.0f, tls_dz, util::Trans::kNo, wz_.value, util::Trans::kNo,
               0.0f, grad_x);
    util::Gemm(1.0f, tls_dr, util::Trans::kNo, wr_.value, util::Trans::kNo,
               1.0f, grad_x);
    util::Gemm(1.0f, tls_dc, util::Trans::kNo, wc_.value, util::Trans::kNo,
               1.0f, grad_x);
  }
}

}  // namespace lncl::nn
