#pragma once

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "nn/quantize.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace lncl::nn {

// Fully connected layer: y = W x + b.
//
// The layer is *functionally* stateless: Forward does not retain activations.
// Backward receives the original input again, accumulates dL/dW and dL/db
// into the parameter gradients, and optionally emits dL/dx. This keeps layers
// reusable at several points of a network (e.g. per token) without cache
// management.
//
// Forward and ForwardRows run through the same fused bias epilogue in the
// GEMM microkernel (util/gemm_kernel.h) — the vector forward is the m = 1
// row form, so a vector result is bit-identical to the matching row of a
// rows forward. SetQuantized(true) switches both forwards to the int8
// serving path (per-row quantized weights, fp32 accumulate); training-side
// entry points (Backward*) always read the fp32 weights.
class Linear {
 public:
  // in -> out, Glorot-initialized weights, zero bias.
  Linear(const std::string& name, int in_dim, int out_dim, util::Rng* rng);

  Linear(const Linear&) = delete;
  Linear& operator=(const Linear&) = delete;

  void Forward(const util::Vector& x, util::Vector* y) const;

  // Row-wise forward: each row of x is an independent input.
  void ForwardRows(const util::Matrix& x, util::Matrix* y) const;

  // Accumulates parameter gradients for dL/dy at input x; writes dL/dx if
  // grad_x is non-null.
  void Backward(const util::Vector& x, const util::Vector& grad_y,
                util::Vector* grad_x);
  void BackwardRows(const util::Matrix& x, const util::Matrix& grad_y,
                    util::Matrix* grad_x);

  std::vector<Parameter*> Params() { return {&w_, &b_}; }

  int in_dim() const { return w_.value.cols(); }
  int out_dim() const { return w_.value.rows(); }

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }
  const Parameter& weight() const { return w_; }
  const Parameter& bias() const { return b_; }

  // Toggles the int8 serving path. Quantization happens eagerly here (the
  // caller's single-threaded toggle point), never lazily inside the const
  // forwards, so concurrent Forward calls stay race-free.
  void SetQuantized(bool on);
  bool quantized() const { return quantized_; }

 private:
  Parameter w_;  // out x in
  Parameter b_;  // 1 x out
  bool quantized_ = false;
  RowQuantized qw_;
};

}  // namespace lncl::nn

