#include "nn/conv1d.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/gemm_kernel.h"

namespace lncl::nn {

Conv1d::Conv1d(const std::string& name, int window, int in_dim, int filters,
               Padding padding, util::Rng* rng)
    : window_(window),
      in_dim_(in_dim),
      padding_(padding),
      w_(name + ".w", filters, window * in_dim),
      b_(name + ".b", 1, filters) {
  GlorotInit(rng, &w_.value, window * in_dim, filters);
}

int Conv1d::OutRows(int t) const {
  if (padding_ == Padding::kSame) return t;
  return std::max(1, t - window_ + 1);
}

void Conv1d::SetQuantized(bool on) {
  quantized_ = on;
  if (on) {
    QuantizeRows(w_.value, &qw_);
    if (obs::Metrics::enabled()) {
      // Requantization volume (see Linear::SetQuantized).
      static obs::Counter* const tensors =
          obs::Metrics::GetCounter("quantize.requantized_tensors");
      static obs::Counter* const rows =
          obs::Metrics::GetCounter("quantize.requantized_rows");
      tensors->Add(1);
      rows->Add(static_cast<uint64_t>(w_.value.rows()));
    }
  } else {
    qw_ = RowQuantized();
  }
}

namespace {

// Backward scratch for the dense grad_x path. thread_local (rather than a
// mutable member) keeps the layer safe under the parallel E-step.
thread_local util::Matrix tls_grad_patches;

// Boundary-row epilogue, mirroring the kernel's fused epilogue formula
// (alpha = 1, beta = 0 case): add bias, then the activation, in one pass.
inline void ApplyBiasAct(const float* bias, util::Act act, int f, float* yr) {
  for (int j = 0; j < f; ++j) {
    float v = yr[j] + bias[j];
    if (act == util::Act::kRelu) {
      v = v > 0.0f ? v : 0.0f;
    } else if (act == util::Act::kTanh) {
      v = std::tanh(v);
    }
    yr[j] = v;
  }
}

// Int8 variant: fold the per-filter dequantization scale in first.
inline void ApplyScaleBiasAct(const float* scale, const float* bias,
                              util::Act act, int f, float* yr) {
  for (int j = 0; j < f; ++j) {
    float v = yr[j] * scale[j] + bias[j];
    if (act == util::Act::kRelu) {
      v = v > 0.0f ? v : 0.0f;
    } else if (act == util::Act::kTanh) {
      v = std::tanh(v);
    }
    yr[j] = v;
  }
}

}  // namespace

// The sliding windows of a 1-D convolution over a row-major T x D input are
// already an (out_rows x window*D) operand with leading dimension D — the
// flattened window at output row o starts at x.Row(WindowStart(o)). Both
// passes below exploit that through the microkernel layer instead of
// materializing im2row patch copies. Only output rows whose window overlaps
// the zero padding (at most window-1 of them, kSame borders or a kValid
// input shorter than the window) need scalar handling, over the clipped
// overlap [lo, hi) x in_dim with the matching offset into the filter row.
//
// The interior GEMM runs in the NN form against the k-major filter panel
// (window*D x F) served by the version-keyed pack cache: the panel is
// repacked once per optimizer step, not per call, and the fused epilogue
// writes act(acc + bias) in the same pass over the output. Forward and
// ForwardPacked share the panel and the GEMM shape, so a packed instance
// block stays byte-for-byte equal to Forward on the instance alone.

void Conv1d::Forward(const util::Matrix& x, util::Matrix* y,
                     util::Act act) const {
  LNCL_DCHECK(x.cols() == in_dim_);
  const int t = x.rows();
  const int out_rows = OutRows(t);
  const int f = filters();
  const int k_dim = window_ * in_dim_;
  y->ResizeNoZero(out_rows, f);
  const float* bias = b_.value.Row(0);

  const int interior = t - window_ + 1;
  const int ib = padding_ == Padding::kSame ? (window_ - 1) / 2 : 0;
  const int ie = ib + std::max(0, interior);

  if (quantized_) {
    LNCL_DCHECK(qw_.Matches(w_.value));
    if (interior > 0) {
      util::gemm::GemmInt8(interior, f, k_dim, x.data(), in_dim_,
                           qw_.q.data(), qw_.scale.data(), y->Row(ib), f,
                           bias, act);
    }
    for (int o = 0; o < out_rows; ++o) {
      if (o >= ib && o < ie) continue;
      float* yr = y->Row(o);
      QuantizedBoundaryRow(x.data(), t, o, yr);
      ApplyScaleBiasAct(qw_.scale.data(), bias, act, f, yr);
    }
    return;
  }

  int ldw = 0;
  const float* wt = util::gemm::PackedOpB(w_.value, util::Trans::kYes, &ldw);
  if (interior > 0) {
    util::gemm::GemmEx(interior, f, k_dim, 1.0f, x.data(), in_dim_,
                       util::Trans::kNo, wt, ldw, util::Trans::kNo, 0.0f,
                       y->Row(ib), f, bias, act);
  }
  for (int o = 0; o < out_rows; ++o) {
    if (o >= ib && o < ie) continue;
    float* yr = y->Row(o);
    AccumulateBoundaryRow(wt, x.data(), t, o, yr);
    ApplyBiasAct(bias, act, f, yr);
  }
}

void Conv1d::AccumulateBoundaryRow(const float* wt, const float* x_base,
                                   int t, int o, float* yr) const {
  const int start = WindowStart(o);
  const int lo = std::max(0, start);
  const int hi = std::min(t, start + window_);
  const int off = (lo - start) * in_dim_;
  const int len = (hi - lo) * in_dim_;
  const float* xr = x_base + static_cast<size_t>(lo) * in_dim_;
  const int f = filters();
  std::fill(yr, yr + f, 0.0f);
  // m = 1 slice of the interior NN GEMM over the clipped window: products
  // accumulate with std::fma in ascending-k order (the kernel contract) with
  // the inner loop running over the F independent filter columns.
  for (int k = 0; k < len; ++k) {
    const float xv = xr[k];
    const float* __restrict wr = wt + static_cast<size_t>(off + k) * f;
    for (int j = 0; j < f; ++j) yr[j] = std::fma(xv, wr[j], yr[j]);
  }
}

void Conv1d::QuantizedBoundaryRow(const float* x_base, int t, int o,
                                  float* yr) const {
  const int start = WindowStart(o);
  const int lo = std::max(0, start);
  const int hi = std::min(t, start + window_);
  const int off = (lo - start) * in_dim_;
  const int len = (hi - lo) * in_dim_;
  const float* xr = x_base + static_cast<size_t>(lo) * in_dim_;
  const int f = filters();
  std::fill(yr, yr + f, 0.0f);
  for (int k = 0; k < len; ++k) {
    const float xv = xr[k];
    const int8_t* __restrict qr =
        qw_.q.data() + static_cast<size_t>(off + k) * f;
    for (int j = 0; j < f; ++j) {
      yr[j] = std::fma(xv, static_cast<float>(qr[j]), yr[j]);
    }
  }
}

void Conv1d::ForwardPacked(const util::Matrix& x_packed, int batch, int t,
                           util::Matrix* y_packed, util::Act act) const {
  LNCL_DCHECK(x_packed.rows() == batch * t);
  LNCL_DCHECK(t == 0 || x_packed.cols() == in_dim_);
  const int out_rows = OutRows(t);
  const int f = filters();
  const int k_dim = window_ * in_dim_;
  y_packed->ResizeNoZero(batch * out_rows, f);
  const float* bias = b_.value.Row(0);

  const int interior = t - window_ + 1;
  const int ib = padding_ == Padding::kSame ? (window_ - 1) / 2 : 0;
  const int ie = ib + std::max(0, interior);

  // One interior GEMM per instance, written straight into its y_packed
  // block — the exact n/k/lda/kernel of Forward's interior GEMM, so each
  // instance's output is bit-identical. A single GEMM over the whole packed
  // buffer would also cover the window-1 windows straddling each instance
  // boundary; at these sequence lengths that is 20-40% wasted rows plus a
  // staging copy, measurably slower than skipping them.
  const float* wt = nullptr;
  int ldw = 0;
  if (quantized_) {
    LNCL_DCHECK(qw_.Matches(w_.value));
  } else {
    wt = util::gemm::PackedOpB(w_.value, util::Trans::kYes, &ldw);
  }
  if (interior > 0) {
    for (int b = 0; b < batch; ++b) {
      const float* xb =
          x_packed.data() + static_cast<size_t>(b) * t * in_dim_;
      float* yb = y_packed->Row(b * out_rows + ib);
      if (quantized_) {
        util::gemm::GemmInt8(interior, f, k_dim, xb, in_dim_, qw_.q.data(),
                             qw_.scale.data(), yb, f, bias, act);
      } else {
        util::gemm::GemmEx(interior, f, k_dim, 1.0f, xb, in_dim_,
                           util::Trans::kNo, wt, ldw, util::Trans::kNo, 0.0f,
                           yb, f, bias, act);
      }
    }
  }

  for (int b = 0; b < batch; ++b) {
    const float* x_base =
        x_packed.data() + static_cast<size_t>(b) * t * in_dim_;
    float* y_base = y_packed->Row(b * out_rows);
    for (int o = 0; o < out_rows; ++o) {
      if (o >= ib && o < ie) continue;
      float* yr = y_base + static_cast<size_t>(o) * f;
      if (quantized_) {
        QuantizedBoundaryRow(x_base, t, o, yr);
        ApplyScaleBiasAct(qw_.scale.data(), bias, act, f, yr);
      } else {
        AccumulateBoundaryRow(wt, x_base, t, o, yr);
        ApplyBiasAct(bias, act, f, yr);
      }
    }
  }
}

void Conv1d::Backward(const util::Matrix& x, const util::Matrix& grad_y,
                      util::Matrix* grad_x) {
  const int t = x.rows();
  const int out_rows = grad_y.rows();
  const int f = filters();
  const int k_dim = window_ * in_dim_;
  LNCL_DCHECK(out_rows == OutRows(t));
  LNCL_DCHECK(grad_y.cols() == f);

  // db += column sums of grad_y; count nonzeros on the same pass.
  float* gbias = b_.grad.Row(0);
  int nnz = 0;
  for (int o = 0; o < out_rows; ++o) {
    const float* gout = grad_y.Row(o);
    for (int k = 0; k < f; ++k) {
      gbias[k] += gout[k];
      nnz += gout[k] != 0.0f;
    }
  }

  const int interior = t - window_ + 1;
  const int ib = padding_ == Padding::kSame ? (window_ - 1) / 2 : 0;
  const int ie = ib + std::max(0, interior);

  // After max-over-time pooling (the text-CNN head) grad_y is structurally
  // sparse: at most one nonzero per filter column, further thinned by
  // dropout. Below ~1/8 density the axpy formulation beats the dense GEMMs;
  // the path choice depends only on the data, never on the thread count.
  const bool sparse = static_cast<size_t>(nnz) * 8 < grad_y.size();
  if (sparse) {
    if (grad_x != nullptr) grad_x->Resize(t, in_dim_);
    for (int o = 0; o < out_rows; ++o) {
      const float* gout = grad_y.Row(o);
      const int start = WindowStart(o);
      const int lo = std::max(0, start);
      const int hi = std::min(t, start + window_);
      const int off = (lo - start) * in_dim_;
      const int len = (hi - lo) * in_dim_;  // rows lo..hi-1 are contiguous
      const float* xr = x.Row(lo);
      for (int fi = 0; fi < f; ++fi) {
        const float g = gout[fi];
        if (g == 0.0f) continue;
        float* gw = w_.grad.Row(fi) + off;
        for (int k = 0; k < len; ++k) gw[k] += g * xr[k];
        if (grad_x == nullptr) continue;
        const float* wr = w_.value.Row(fi) + off;
        float* gx = grad_x->Row(lo);
        for (int k = 0; k < len; ++k) gx[k] += g * wr[k];
      }
    }
    return;
  }

  // Dense path. dW += grad_y^T * windows(x): interior rows through the
  // strided GEMM, boundary rows as clipped rank-1 updates.
  if (interior > 0) {
    util::GemmRaw(f, k_dim, interior, 1.0f, grad_y.Row(ib), f,
                  util::Trans::kYes, x.data(), in_dim_, util::Trans::kNo, 1.0f,
                  w_.grad.data(), k_dim);
  }
  for (int o = 0; o < out_rows; ++o) {
    if (o >= ib && o < ie) continue;
    const float* gout = grad_y.Row(o);
    const int start = WindowStart(o);
    const int lo = std::max(0, start);
    const int hi = std::min(t, start + window_);
    const int off = (lo - start) * in_dim_;
    const int len = (hi - lo) * in_dim_;
    const float* xr = x.Row(lo);
    for (int fi = 0; fi < f; ++fi) {
      const float g = gout[fi];
      float* gw = w_.grad.Row(fi) + off;
      for (int k = 0; k < len; ++k) gw[k] += g * xr[k];
    }
  }
  if (grad_x == nullptr) return;
  // dWindows = grad_y * W, then scatter-add each (clipped) flattened window
  // back onto the contiguous input rows it covers (row2im).
  util::Gemm(1.0f, grad_y, util::Trans::kNo, w_.value, util::Trans::kNo, 0.0f,
             &tls_grad_patches);
  grad_x->Resize(t, in_dim_);
  for (int o = 0; o < out_rows; ++o) {
    const int start = WindowStart(o);
    const int lo = std::max(0, start);
    const int hi = std::min(t, start + window_);
    const int off = (lo - start) * in_dim_;
    const int len = (hi - lo) * in_dim_;
    const float* src = tls_grad_patches.Row(o) + off;
    float* gx = grad_x->Row(lo);
    for (int k = 0; k < len; ++k) gx[k] += src[k];
  }
}

}  // namespace lncl::nn
