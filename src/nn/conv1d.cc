#include "nn/conv1d.h"

#include <algorithm>
#include <cassert>

namespace lncl::nn {

Conv1d::Conv1d(const std::string& name, int window, int in_dim, int filters,
               Padding padding, util::Rng* rng)
    : window_(window),
      in_dim_(in_dim),
      padding_(padding),
      w_(name + ".w", filters, window * in_dim),
      b_(name + ".b", 1, filters) {
  GlorotInit(rng, &w_.value, window * in_dim, filters);
}

int Conv1d::OutRows(int t) const {
  if (padding_ == Padding::kSame) return t;
  return std::max(1, t - window_ + 1);
}

void Conv1d::Forward(const util::Matrix& x, util::Matrix* y) const {
  assert(x.cols() == in_dim_);
  const int t = x.rows();
  const int out_rows = OutRows(t);
  const int f = filters();
  y->Resize(out_rows, f);
  const float* bias = b_.value.Row(0);
  for (int o = 0; o < out_rows; ++o) {
    const int start = WindowStart(o);
    float* out = y->Row(o);
    for (int k = 0; k < f; ++k) out[k] = bias[k];
    for (int wi = 0; wi < window_; ++wi) {
      const int r = start + wi;
      if (r < 0 || r >= t) continue;  // zero padding
      const float* xin = x.Row(r);
      for (int k = 0; k < f; ++k) {
        const float* wrow = w_.value.Row(k) + wi * in_dim_;
        float s = 0.0f;
        for (int d = 0; d < in_dim_; ++d) s += wrow[d] * xin[d];
        out[k] += s;
      }
    }
  }
}

void Conv1d::Backward(const util::Matrix& x, const util::Matrix& grad_y,
                      util::Matrix* grad_x) {
  const int t = x.rows();
  assert(grad_y.rows() == OutRows(t));
  assert(grad_y.cols() == filters());
  if (grad_x != nullptr) grad_x->Resize(t, in_dim_);
  float* gbias = b_.grad.Row(0);
  for (int o = 0; o < grad_y.rows(); ++o) {
    const int start = WindowStart(o);
    const float* gout = grad_y.Row(o);
    for (int k = 0; k < filters(); ++k) gbias[k] += gout[k];
    for (int wi = 0; wi < window_; ++wi) {
      const int r = start + wi;
      if (r < 0 || r >= t) continue;
      const float* xin = x.Row(r);
      for (int k = 0; k < filters(); ++k) {
        const float g = gout[k];
        if (g == 0.0f) continue;
        float* gw = w_.grad.Row(k) + wi * in_dim_;
        for (int d = 0; d < in_dim_; ++d) gw[d] += g * xin[d];
        if (grad_x != nullptr) {
          const float* wrow = w_.value.Row(k) + wi * in_dim_;
          float* gx = grad_x->Row(r);
          for (int d = 0; d < in_dim_; ++d) gx[d] += g * wrow[d];
        }
      }
    }
  }
}

}  // namespace lncl::nn
