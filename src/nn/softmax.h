#pragma once

#include "util/matrix.h"

namespace lncl::nn {

// Numerically stable softmax of a logit vector.
void Softmax(const util::Vector& logits, util::Vector* probs);

// Row-wise softmax (each row an independent distribution).
void SoftmaxRows(const util::Matrix& logits, util::Matrix* probs);

// Soft-target cross entropy: -sum_k q[k] * log(p[k]), clamped at p >= 1e-12.
double CrossEntropy(const util::Vector& q, const util::Vector& p);
// Sum of row-wise cross entropies.
double CrossEntropyRows(const util::Matrix& q, const util::Matrix& p);

// Gradient of w * CrossEntropy(q, softmax(z)) with respect to logits z:
// w * (p - q). Written into grad (resized to match).
void SoftmaxCrossEntropyGrad(const util::Vector& q, const util::Vector& p,
                             float w, util::Vector* grad);
void SoftmaxCrossEntropyGradRows(const util::Matrix& q, const util::Matrix& p,
                                 float w, util::Matrix* grad);

// Converts dL/dprobs into dL/dlogits through the softmax Jacobian:
// dz = p .* (dp - <p, dp>). Used by the crowd-layer baselines, which define
// their loss on the bottleneck probabilities rather than a soft target.
void SoftmaxJacobianVecProduct(const util::Vector& p,
                               const util::Vector& grad_p, float w,
                               util::Vector* grad_z);
void SoftmaxJacobianVecProductRows(const util::Matrix& p,
                                   const util::Matrix& grad_p, float w,
                                   util::Matrix* grad_z);

}  // namespace lncl::nn

