#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.h"

namespace lncl::nn {

// Post-training symmetric per-row int8 quantization of a weight matrix.
//
// For a (out x in) weight matrix W, row j gets scale[j] = maxabs(row j)/127
// (1.0 for an all-zero row) and q = lrintf(W / scale) in [-127, 127]. The
// quantized values are stored k-major — q[k * out + j] holds row j's k-th
// entry — which is exactly the packed-op(B) layout the fp32 kernels consume,
// so util::gemm::GemmInt8 streams the panel the same way and keeps the
// one-accumulator / ascending-k contract (scalar == SIMD bitwise, rows
// independent of the batch). Accumulation stays fp32 over the
// exactly-representable int8 values; dequantization folds into the epilogue
// as a per-output-column scale.
//
// This is an inference-only path: training, the E-step, and all gradients
// stay fp32. src_version records Matrix::version() at quantization time so
// layers can assert the quantization is current.
struct RowQuantized {
  std::vector<int8_t> q;     // k-major: q[k * out + j] ~ W(j, k) / scale[j]
  std::vector<float> scale;  // out entries
  int out = 0;
  int in = 0;
  uint64_t src_version = 0;

  // True when this quantization reflects w's current contents.
  bool Matches(const util::Matrix& w) const {
    return out == w.rows() && in == w.cols() && src_version == w.version();
  }
};

// (Re)quantizes w into *qw. Round-trip bound, asserted by
// tests/gemm_kernel_test.cc: |W(j, k) - scale[j] * q| <= scale[j] / 2.
void QuantizeRows(const util::Matrix& w, RowQuantized* qw);

// y (m x out) = act(x (m x in) * dequant(W)^T + bias): the int8 serving
// forward shared by Linear and Conv1d. Rows of x are lda floats apart
// (pass x's column count for dense inputs); rows of y are ldy floats
// apart. bias (length out) may be null.
void QuantizedGemm(const RowQuantized& qw, int m, const float* x, int lda,
                   float* y, int ldy, const float* bias, util::Act act);

}  // namespace lncl::nn
