#include "nn/dropout.h"
#include "util/check.h"


namespace lncl::nn {

namespace {

void ApplyForward(double rate, util::Rng* rng, float* data, size_t n,
                  std::vector<uint8_t>* mask) {
  mask->assign(n, 1);
  if (rate <= 0.0) return;
  const float scale = static_cast<float>(1.0 / (1.0 - rate));
  for (size_t i = 0; i < n; ++i) {
    if (rng->Uniform() < rate) {
      (*mask)[i] = 0;
      data[i] = 0.0f;
    } else {
      data[i] *= scale;
    }
  }
}

void ApplyBackward(double rate, const std::vector<uint8_t>& mask, float* grad,
                   size_t n) {
  LNCL_DCHECK(mask.size() == n);
  if (rate <= 0.0) return;
  const float scale = static_cast<float>(1.0 / (1.0 - rate));
  for (size_t i = 0; i < n; ++i) {
    grad[i] = mask[i] ? grad[i] * scale : 0.0f;
  }
}

}  // namespace

void DropoutForward(double rate, util::Rng* rng, util::Vector* x,
                    std::vector<uint8_t>* mask) {
  ApplyForward(rate, rng, x->data(), x->size(), mask);
}

void DropoutForward(double rate, util::Rng* rng, util::Matrix* x,
                    std::vector<uint8_t>* mask) {
  ApplyForward(rate, rng, x->data(), x->size(), mask);
}

void DropoutBackward(double rate, const std::vector<uint8_t>& mask,
                     util::Vector* grad) {
  ApplyBackward(rate, mask, grad->data(), grad->size());
}

void DropoutBackward(double rate, const std::vector<uint8_t>& mask,
                     util::Matrix* grad) {
  ApplyBackward(rate, mask, grad->data(), grad->size());
}

}  // namespace lncl::nn
