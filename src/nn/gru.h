#pragma once

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace lncl::nn {

// Gated recurrent unit over a token sequence (Cho et al., 2014):
//
//   z_t = sigmoid(Wz x_t + Uz h_{t-1} + bz)        (update gate)
//   r_t = sigmoid(Wr x_t + Ur h_{t-1} + br)        (reset gate)
//   c_t = tanh   (Wc x_t + Uc (r_t . h_{t-1}) + bc)  (candidate)
//   h_t = (1 - z_t) . h_{t-1} + z_t . c_t
//
// The initial hidden state is zero. Forward fills a Cache with the gate
// activations that Backward (truncated-free BPTT over the full sequence)
// consumes. One Gru instance can be reused across instances as long as each
// Forward gets its own Cache.
class Gru {
 public:
  struct Cache {
    util::Matrix h;  // T x H hidden states
    util::Matrix z;  // T x H update gates
    util::Matrix r;  // T x H reset gates
    util::Matrix c;  // T x H candidates
  };

  Gru(const std::string& name, int in_dim, int hidden_dim, util::Rng* rng);

  Gru(const Gru&) = delete;
  Gru& operator=(const Gru&) = delete;

  // x: T x in_dim. h_out: T x hidden_dim (same data as cache->h).
  void Forward(const util::Matrix& x, Cache* cache, util::Matrix* h_out) const;

  // Batched inference over `batch` equal-length sequences packed row-major
  // into x_packed ((batch * t) x in_dim, instance-major); h_packed gets the
  // hidden states in the same layout. Bit-identical per instance to Forward:
  // the input-side projections are the same per-row GEMMs over more rows, and
  // each step's recurrent MatVec becomes one [batch, H] x Uᵀ GEMM whose
  // per-row reduction order equals MatVec's. No cache is produced (inference
  // only). Scratch lives in the per-thread util::Workspace arena.
  void ForwardPacked(const util::Matrix& x_packed, int batch, int t,
                     util::Matrix* h_packed) const;

  // grad_h: T x hidden_dim = dL/dh_t for every step. Accumulates parameter
  // grads; writes dL/dx when grad_x is non-null.
  void Backward(const util::Matrix& x, const Cache& cache,
                const util::Matrix& grad_h, util::Matrix* grad_x);

  std::vector<Parameter*> Params() {
    return {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wc_, &uc_, &bc_};
  }

  int in_dim() const { return wz_.value.cols(); }
  int hidden_dim() const { return wz_.value.rows(); }

 private:
  Parameter wz_, uz_, bz_;
  Parameter wr_, ur_, br_;
  Parameter wc_, uc_, bc_;
};

}  // namespace lncl::nn

