#include "nn/lstm.h"

#include <cassert>
#include <cmath>

#include "nn/activations.h"

namespace lncl::nn {

Lstm::Lstm(const std::string& name, int in_dim, int hidden_dim,
           util::Rng* rng)
    : wi_(name + ".wi", hidden_dim, in_dim),
      ui_(name + ".ui", hidden_dim, hidden_dim),
      bi_(name + ".bi", 1, hidden_dim),
      wf_(name + ".wf", hidden_dim, in_dim),
      uf_(name + ".uf", hidden_dim, hidden_dim),
      bf_(name + ".bf", 1, hidden_dim),
      wo_(name + ".wo", hidden_dim, in_dim),
      uo_(name + ".uo", hidden_dim, hidden_dim),
      bo_(name + ".bo", 1, hidden_dim),
      wg_(name + ".wg", hidden_dim, in_dim),
      ug_(name + ".ug", hidden_dim, hidden_dim),
      bg_(name + ".bg", 1, hidden_dim) {
  GlorotInit(rng, &wi_.value);
  GlorotInit(rng, &ui_.value);
  GlorotInit(rng, &wf_.value);
  GlorotInit(rng, &uf_.value);
  GlorotInit(rng, &wo_.value);
  GlorotInit(rng, &uo_.value);
  GlorotInit(rng, &wg_.value);
  GlorotInit(rng, &ug_.value);
  // Forget-gate bias at +1 keeps early memories alive.
  for (int k = 0; k < hidden_dim; ++k) bf_.value(0, k) = 1.0f;
}

void Lstm::Forward(const util::Matrix& x, Cache* cache,
                   util::Matrix* h_out) const {
  assert(x.cols() == in_dim());
  const int t_len = x.rows();
  const int h_dim = hidden_dim();
  cache->h.Resize(t_len, h_dim);
  cache->c.Resize(t_len, h_dim);
  cache->i.Resize(t_len, h_dim);
  cache->f.Resize(t_len, h_dim);
  cache->o.Resize(t_len, h_dim);
  cache->g.Resize(t_len, h_dim);

  util::Vector h_prev(h_dim, 0.0f), c_prev(h_dim, 0.0f);
  util::Vector xt(in_dim()), a, b;
  auto gate = [&](const Parameter& w, const Parameter& u,
                  const Parameter& bias, float* out, bool tanh_act) {
    util::MatVec(w.value, xt, &a);
    util::MatVec(u.value, h_prev, &b);
    for (int k = 0; k < h_dim; ++k) {
      const float pre = a[k] + b[k] + bias.value(0, k);
      out[k] = tanh_act ? std::tanh(pre) : Sigmoid(pre);
    }
  };
  for (int t = 0; t < t_len; ++t) {
    std::copy(x.Row(t), x.Row(t) + in_dim(), xt.begin());
    float* i = cache->i.Row(t);
    float* f = cache->f.Row(t);
    float* o = cache->o.Row(t);
    float* g = cache->g.Row(t);
    float* c = cache->c.Row(t);
    float* h = cache->h.Row(t);
    gate(wi_, ui_, bi_, i, false);
    gate(wf_, uf_, bf_, f, false);
    gate(wo_, uo_, bo_, o, false);
    gate(wg_, ug_, bg_, g, true);
    for (int k = 0; k < h_dim; ++k) {
      c[k] = f[k] * c_prev[k] + i[k] * g[k];
      h[k] = o[k] * std::tanh(c[k]);
      c_prev[k] = c[k];
      h_prev[k] = h[k];
    }
  }
  *h_out = cache->h;
}

void Lstm::Backward(const util::Matrix& x, const Cache& cache,
                    const util::Matrix& grad_h, util::Matrix* grad_x) {
  const int t_len = x.rows();
  const int h_dim = hidden_dim();
  assert(grad_h.rows() == t_len && grad_h.cols() == h_dim);
  if (grad_x != nullptr) grad_x->Resize(t_len, in_dim());

  util::Vector dh_next(h_dim, 0.0f), dc_next(h_dim, 0.0f);
  util::Vector di_pre(h_dim), df_pre(h_dim), do_pre(h_dim), dg_pre(h_dim);
  util::Vector xt(in_dim()), h_prev(h_dim), c_prev(h_dim), tmp;
  for (int t = t_len - 1; t >= 0; --t) {
    std::copy(x.Row(t), x.Row(t) + in_dim(), xt.begin());
    if (t > 0) {
      std::copy(cache.h.Row(t - 1), cache.h.Row(t - 1) + h_dim,
                h_prev.begin());
      std::copy(cache.c.Row(t - 1), cache.c.Row(t - 1) + h_dim,
                c_prev.begin());
    } else {
      std::fill(h_prev.begin(), h_prev.end(), 0.0f);
      std::fill(c_prev.begin(), c_prev.end(), 0.0f);
    }
    const float* i = cache.i.Row(t);
    const float* f = cache.f.Row(t);
    const float* o = cache.o.Row(t);
    const float* g = cache.g.Row(t);
    const float* c = cache.c.Row(t);
    const float* gh = grad_h.Row(t);

    for (int k = 0; k < h_dim; ++k) {
      const float dh = gh[k] + dh_next[k];
      const float tanh_c = std::tanh(c[k]);
      const float dok = dh * tanh_c;
      const float dc = dh * o[k] * (1.0f - tanh_c * tanh_c) + dc_next[k];
      const float dfk = dc * c_prev[k];
      const float dik = dc * g[k];
      const float dgk = dc * i[k];
      dc_next[k] = dc * f[k];
      di_pre[k] = dik * i[k] * (1.0f - i[k]);
      df_pre[k] = dfk * f[k] * (1.0f - f[k]);
      do_pre[k] = dok * o[k] * (1.0f - o[k]);
      dg_pre[k] = dgk * (1.0f - g[k] * g[k]);
    }

    struct GateGrad {
      Parameter* w;
      Parameter* u;
      Parameter* b;
      const util::Vector* d_pre;
    };
    const GateGrad gates[] = {{&wi_, &ui_, &bi_, &di_pre},
                              {&wf_, &uf_, &bf_, &df_pre},
                              {&wo_, &uo_, &bo_, &do_pre},
                              {&wg_, &ug_, &bg_, &dg_pre}};
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    for (const GateGrad& gg : gates) {
      util::OuterAdd(*gg.d_pre, xt, 1.0f, &gg.w->grad);
      util::OuterAdd(*gg.d_pre, h_prev, 1.0f, &gg.u->grad);
      for (int k = 0; k < h_dim; ++k) gg.b->grad(0, k) += (*gg.d_pre)[k];
      util::MatVecTrans(gg.u->value, *gg.d_pre, &tmp);
      for (int k = 0; k < h_dim; ++k) dh_next[k] += tmp[k];
      if (grad_x != nullptr) {
        util::MatVecTrans(gg.w->value, *gg.d_pre, &tmp);
        float* gx = grad_x->Row(t);
        for (int d = 0; d < in_dim(); ++d) gx[d] += tmp[d];
      }
    }
  }
}

}  // namespace lncl::nn
