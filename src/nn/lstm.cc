#include "nn/lstm.h"

#include <cmath>

#include "nn/activations.h"
#include "util/check.h"
#include "util/gemm_kernel.h"
#include "util/workspace.h"

namespace lncl::nn {

Lstm::Lstm(const std::string& name, int in_dim, int hidden_dim,
           util::Rng* rng)
    : wi_(name + ".wi", hidden_dim, in_dim),
      ui_(name + ".ui", hidden_dim, hidden_dim),
      bi_(name + ".bi", 1, hidden_dim),
      wf_(name + ".wf", hidden_dim, in_dim),
      uf_(name + ".uf", hidden_dim, hidden_dim),
      bf_(name + ".bf", 1, hidden_dim),
      wo_(name + ".wo", hidden_dim, in_dim),
      uo_(name + ".uo", hidden_dim, hidden_dim),
      bo_(name + ".bo", 1, hidden_dim),
      wg_(name + ".wg", hidden_dim, in_dim),
      ug_(name + ".ug", hidden_dim, hidden_dim),
      bg_(name + ".bg", 1, hidden_dim) {
  GlorotInit(rng, &wi_.value);
  GlorotInit(rng, &ui_.value);
  GlorotInit(rng, &wf_.value);
  GlorotInit(rng, &uf_.value);
  GlorotInit(rng, &wo_.value);
  GlorotInit(rng, &uo_.value);
  GlorotInit(rng, &wg_.value);
  GlorotInit(rng, &ug_.value);
  // Forget-gate bias at +1 keeps early memories alive.
  for (int k = 0; k < hidden_dim; ++k) bf_.value(0, k) = 1.0f;
}

namespace {

// Per-thread scratch (see gru.cc for the rationale).
thread_local util::Matrix tls_gxi, tls_gxf, tls_gxo, tls_gxg;
thread_local util::Matrix tls_di, tls_df, tls_do, tls_dg, tls_hprev;

}  // namespace

void Lstm::Forward(const util::Matrix& x, Cache* cache,
                   util::Matrix* h_out) const {
  LNCL_DCHECK(x.cols() == in_dim());
  const int t_len = x.rows();
  const int h_dim = hidden_dim();
  cache->h.ResizeNoZero(t_len, h_dim);
  cache->c.ResizeNoZero(t_len, h_dim);
  cache->i.ResizeNoZero(t_len, h_dim);
  cache->f.ResizeNoZero(t_len, h_dim);
  cache->o.ResizeNoZero(t_len, h_dim);
  cache->g.ResizeNoZero(t_len, h_dim);

  // Every gate product runs in the NN kernel form against k-major weight
  // panels from the per-thread pack cache, with the input-side gate biases
  // fused into the GEMM epilogue; see gru.cc for the vectorization,
  // repack-once-per-step, and bit-identity rationale.
  util::GemmEx(1.0f, x, util::Trans::kNo, wi_.value, util::Trans::kYes, 0.0f,
               &tls_gxi, bi_.value.Row(0), util::Act::kNone);
  util::GemmEx(1.0f, x, util::Trans::kNo, wf_.value, util::Trans::kYes, 0.0f,
               &tls_gxf, bf_.value.Row(0), util::Act::kNone);
  util::GemmEx(1.0f, x, util::Trans::kNo, wo_.value, util::Trans::kYes, 0.0f,
               &tls_gxo, bo_.value.Row(0), util::Act::kNone);
  util::GemmEx(1.0f, x, util::Trans::kNo, wg_.value, util::Trans::kYes, 0.0f,
               &tls_gxg, bg_.value.Row(0), util::Act::kNone);

  // Recurrent panels hoisted out of the step loop (the loop issues only
  // non-packing kernel calls, so the pointers stay valid).
  int ldu = 0;
  const float* uip = util::gemm::PackedOpB(ui_.value, util::Trans::kYes, &ldu);
  const float* ufp = util::gemm::PackedOpB(uf_.value, util::Trans::kYes, &ldu);
  const float* uop = util::gemm::PackedOpB(uo_.value, util::Trans::kYes, &ldu);
  const float* ugp = util::gemm::PackedOpB(ug_.value, util::Trans::kYes, &ldu);

  util::Vector h_prev(h_dim, 0.0f), c_prev(h_dim, 0.0f);
  util::Vector b(h_dim);
  auto gate = [&](const float* u, const float* gx, float* out,
                  bool tanh_act) {
    util::gemm::GemmEx(1, h_dim, h_dim, 1.0f, h_prev.data(), h_dim,
                       util::Trans::kNo, u, h_dim, util::Trans::kNo, 0.0f,
                       b.data(), h_dim, nullptr, util::Act::kNone);
    for (int k = 0; k < h_dim; ++k) {
      const float pre = gx[k] + b[k];
      out[k] = tanh_act ? std::tanh(pre) : Sigmoid(pre);
    }
  };
  for (int t = 0; t < t_len; ++t) {
    float* i = cache->i.Row(t);
    float* f = cache->f.Row(t);
    float* o = cache->o.Row(t);
    float* g = cache->g.Row(t);
    float* c = cache->c.Row(t);
    float* h = cache->h.Row(t);
    gate(uip, tls_gxi.Row(t), i, false);
    gate(ufp, tls_gxf.Row(t), f, false);
    gate(uop, tls_gxo.Row(t), o, false);
    gate(ugp, tls_gxg.Row(t), g, true);
    for (int k = 0; k < h_dim; ++k) {
      c[k] = f[k] * c_prev[k] + i[k] * g[k];
      h[k] = o[k] * std::tanh(c[k]);
      c_prev[k] = c[k];
      h_prev[k] = h[k];
    }
  }
  *h_out = cache->h;
}

void Lstm::ForwardPacked(const util::Matrix& x_packed, int batch, int t_len,
                         util::Matrix* h_packed) const {
  LNCL_DCHECK(x_packed.rows() == batch * t_len);
  LNCL_DCHECK(t_len == 0 || x_packed.cols() == in_dim());
  const int h_dim = hidden_dim();
  h_packed->ResizeNoZero(batch * t_len, h_dim);
  if (batch == 0 || t_len == 0) return;

  util::WorkspaceScope scope;
  util::Matrix& gx_i = scope.NewMatrix();
  util::Matrix& gx_f = scope.NewMatrix();
  util::Matrix& gx_o = scope.NewMatrix();
  util::Matrix& gx_g = scope.NewMatrix();
  util::GemmEx(1.0f, x_packed, util::Trans::kNo, wi_.value, util::Trans::kYes,
               0.0f, &gx_i, bi_.value.Row(0), util::Act::kNone);
  util::GemmEx(1.0f, x_packed, util::Trans::kNo, wf_.value, util::Trans::kYes,
               0.0f, &gx_f, bf_.value.Row(0), util::Act::kNone);
  util::GemmEx(1.0f, x_packed, util::Trans::kNo, wo_.value, util::Trans::kYes,
               0.0f, &gx_o, bo_.value.Row(0), util::Act::kNone);
  util::GemmEx(1.0f, x_packed, util::Trans::kNo, wg_.value, util::Trans::kYes,
               0.0f, &gx_g, bg_.value.Row(0), util::Act::kNone);

  util::Matrix& h_prev = scope.NewMatrix();
  util::Matrix& c_prev = scope.NewMatrix();
  h_prev.Resize(batch, h_dim);  // zero initial states, as in Forward
  c_prev.Resize(batch, h_dim);
  util::Matrix& is = scope.NewMatrix(batch, h_dim);
  util::Matrix& fs = scope.NewMatrix(batch, h_dim);
  util::Matrix& os = scope.NewMatrix(batch, h_dim);
  util::Matrix& gs = scope.NewMatrix(batch, h_dim);
  util::Matrix& tmp = scope.NewMatrix();
  // Row b of H_prev * Uᵀ is exactly Forward's one-row recurrent product
  // (same pack-cache panel); the elementwise gate expression is Forward's,
  // verbatim.
  auto gate = [&](const Parameter& u, const util::Matrix& gx,
                  util::Matrix* out, bool tanh_act, int t) {
    util::Gemm(1.0f, h_prev, util::Trans::kNo, u.value, util::Trans::kYes,
               0.0f, &tmp);
    for (int b = 0; b < batch; ++b) {
      const float* gxr = gx.Row(b * t_len + t);
      const float* tb = tmp.Row(b);
      float* o = out->Row(b);
      for (int k = 0; k < h_dim; ++k) {
        const float pre = gxr[k] + tb[k];
        o[k] = tanh_act ? std::tanh(pre) : Sigmoid(pre);
      }
    }
  };
  for (int t = 0; t < t_len; ++t) {
    gate(ui_, gx_i, &is, false, t);
    gate(uf_, gx_f, &fs, false, t);
    gate(uo_, gx_o, &os, false, t);
    gate(ug_, gx_g, &gs, true, t);
    for (int b = 0; b < batch; ++b) {
      const float* i = is.Row(b);
      const float* f = fs.Row(b);
      const float* o = os.Row(b);
      const float* g = gs.Row(b);
      float* cp = c_prev.Row(b);
      float* hp = h_prev.Row(b);
      float* h = h_packed->Row(b * t_len + t);
      for (int k = 0; k < h_dim; ++k) {
        const float c = f[k] * cp[k] + i[k] * g[k];
        h[k] = o[k] * std::tanh(c);
        cp[k] = c;
        hp[k] = h[k];
      }
    }
  }
}

void Lstm::Backward(const util::Matrix& x, const Cache& cache,
                    const util::Matrix& grad_h, util::Matrix* grad_x) {
  const int t_len = x.rows();
  const int h_dim = hidden_dim();
  LNCL_DCHECK(grad_h.rows() == t_len && grad_h.cols() == h_dim);

  tls_di.ResizeNoZero(t_len, h_dim);
  tls_df.ResizeNoZero(t_len, h_dim);
  tls_do.ResizeNoZero(t_len, h_dim);
  tls_dg.ResizeNoZero(t_len, h_dim);
  tls_hprev.ResizeNoZero(t_len, h_dim);

  util::Vector dh_next(h_dim, 0.0f), dc_next(h_dim, 0.0f);
  util::Vector d_pre(h_dim), c_prev(h_dim), tmp;
  for (int t = t_len - 1; t >= 0; --t) {
    float* h_prev = tls_hprev.Row(t);
    if (t > 0) {
      std::copy(cache.h.Row(t - 1), cache.h.Row(t - 1) + h_dim, h_prev);
      std::copy(cache.c.Row(t - 1), cache.c.Row(t - 1) + h_dim,
                c_prev.begin());
    } else {
      std::fill(h_prev, h_prev + h_dim, 0.0f);
      std::fill(c_prev.begin(), c_prev.end(), 0.0f);
    }
    const float* i = cache.i.Row(t);
    const float* f = cache.f.Row(t);
    const float* o = cache.o.Row(t);
    const float* g = cache.g.Row(t);
    const float* c = cache.c.Row(t);
    const float* gh = grad_h.Row(t);

    float* di_pre = tls_di.Row(t);
    float* df_pre = tls_df.Row(t);
    float* do_pre = tls_do.Row(t);
    float* dg_pre = tls_dg.Row(t);
    for (int k = 0; k < h_dim; ++k) {
      const float dh = gh[k] + dh_next[k];
      const float tanh_c = std::tanh(c[k]);
      const float dok = dh * tanh_c;
      const float dc = dh * o[k] * (1.0f - tanh_c * tanh_c) + dc_next[k];
      const float dfk = dc * c_prev[k];
      const float dik = dc * g[k];
      const float dgk = dc * i[k];
      dc_next[k] = dc * f[k];
      di_pre[k] = dik * i[k] * (1.0f - i[k]);
      df_pre[k] = dfk * f[k] * (1.0f - f[k]);
      do_pre[k] = dok * o[k] * (1.0f - o[k]);
      dg_pre[k] = dgk * (1.0f - g[k] * g[k]);
    }

    // Recurrent coupling into dL/dh_{t-1}: dh_next = sum_g U_g^T d_pre_g.
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    const Parameter* const us[] = {&ui_, &uf_, &uo_, &ug_};
    const float* const d_pres[] = {di_pre, df_pre, do_pre, dg_pre};
    for (int gi = 0; gi < 4; ++gi) {
      d_pre.assign(d_pres[gi], d_pres[gi] + h_dim);
      util::MatVecTrans(us[gi]->value, d_pre, &tmp);
      for (int k = 0; k < h_dim; ++k) dh_next[k] += tmp[k];
    }
  }

  // Parameter and input gradients, batched over the whole sequence.
  const struct {
    Parameter* w;
    Parameter* u;
    Parameter* b;
    util::Matrix* d_pre;
  } gates[] = {{&wi_, &ui_, &bi_, &tls_di},
               {&wf_, &uf_, &bf_, &tls_df},
               {&wo_, &uo_, &bo_, &tls_do},
               {&wg_, &ug_, &bg_, &tls_dg}};
  bool first = true;
  for (const auto& gg : gates) {
    util::Gemm(1.0f, *gg.d_pre, util::Trans::kYes, x, util::Trans::kNo, 1.0f,
               &gg.w->grad);
    util::Gemm(1.0f, *gg.d_pre, util::Trans::kYes, tls_hprev,
               util::Trans::kNo, 1.0f, &gg.u->grad);
    float* gb = gg.b->grad.Row(0);
    for (int t = 0; t < t_len; ++t) {
      const float* dp = gg.d_pre->Row(t);
      for (int k = 0; k < h_dim; ++k) gb[k] += dp[k];
    }
    if (grad_x != nullptr) {
      util::Gemm(1.0f, *gg.d_pre, util::Trans::kNo, gg.w->value,
                 util::Trans::kNo, first ? 0.0f : 1.0f, grad_x);
      first = false;
    }
  }
}

}  // namespace lncl::nn
