#include "nn/linear.h"

#include "obs/metrics.h"
#include "util/check.h"
#include "util/gemm_kernel.h"

namespace lncl::nn {

Linear::Linear(const std::string& name, int in_dim, int out_dim,
               util::Rng* rng)
    : w_(name + ".w", out_dim, in_dim), b_(name + ".b", 1, out_dim) {
  GlorotInit(rng, &w_.value);
}

void Linear::SetQuantized(bool on) {
  quantized_ = on;
  if (on) {
    QuantizeRows(w_.value, &qw_);
    if (obs::Metrics::enabled()) {
      // Requantization volume: each toggle re-derives the int8 weights, so
      // frequent teacher/student flips show up here before they show up as
      // serving latency.
      static obs::Counter* const tensors =
          obs::Metrics::GetCounter("quantize.requantized_tensors");
      static obs::Counter* const rows =
          obs::Metrics::GetCounter("quantize.requantized_rows");
      tensors->Add(1);
      rows->Add(static_cast<uint64_t>(w_.value.rows()));
    }
  } else {
    qw_ = RowQuantized();
  }
}

void Linear::Forward(const util::Vector& x, util::Vector* y) const {
  LNCL_DCHECK(static_cast<int>(x.size()) == in_dim());
  y->resize(out_dim());
  if (quantized_) {
    LNCL_DCHECK(qw_.Matches(w_.value));
    QuantizedGemm(qw_, 1, x.data(), in_dim(), y->data(), out_dim(),
                  b_.value.Row(0), util::Act::kNone);
    return;
  }
  // y^T = x^T W^T with the bias fused into the GEMM epilogue: one pass over
  // the output instead of a GEMM plus a bias sweep.
  int ldb = 0;
  const float* wp = util::gemm::PackedOpB(w_.value, util::Trans::kYes, &ldb);
  util::gemm::GemmEx(1, out_dim(), in_dim(), 1.0f, x.data(), in_dim(),
                     util::Trans::kNo, wp, ldb, util::Trans::kNo, 0.0f,
                     y->data(), out_dim(), b_.value.Row(0), util::Act::kNone);
}

void Linear::ForwardRows(const util::Matrix& x, util::Matrix* y) const {
  LNCL_DCHECK(x.cols() == in_dim());
  if (quantized_) {
    LNCL_DCHECK(qw_.Matches(w_.value));
    y->ResizeNoZero(x.rows(), out_dim());
    QuantizedGemm(qw_, x.rows(), x.data(), x.cols(), y->data(), y->cols(),
                  b_.value.Row(0), util::Act::kNone);
    return;
  }
  util::GemmEx(1.0f, x, util::Trans::kNo, w_.value, util::Trans::kYes, 0.0f,
               y, b_.value.Row(0), util::Act::kNone);
}

void Linear::Backward(const util::Vector& x, const util::Vector& grad_y,
                      util::Vector* grad_x) {
  LNCL_DCHECK(static_cast<int>(grad_y.size()) == out_dim());
  util::OuterAdd(grad_y, x, 1.0f, &w_.grad);
  float* gb = b_.grad.Row(0);
  for (int i = 0; i < out_dim(); ++i) gb[i] += grad_y[i];
  if (grad_x != nullptr) {
    util::MatVecTrans(w_.value, grad_y, grad_x);
  }
}

void Linear::BackwardRows(const util::Matrix& x, const util::Matrix& grad_y,
                          util::Matrix* grad_x) {
  LNCL_DCHECK(x.rows() == grad_y.rows());
  // dW += grad_y^T * x, accumulated in place by the beta=1 GEMM (no temp).
  util::Gemm(1.0f, grad_y, util::Trans::kYes, x, util::Trans::kNo, 1.0f,
             &w_.grad);
  float* gb = b_.grad.Row(0);
  for (int r = 0; r < grad_y.rows(); ++r) {
    const float* row = grad_y.Row(r);
    for (int c = 0; c < grad_y.cols(); ++c) gb[c] += row[c];
  }
  if (grad_x != nullptr) {
    util::MatMul(grad_y, w_.value, grad_x);
  }
}

}  // namespace lncl::nn
