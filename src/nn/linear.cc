#include "nn/linear.h"
#include "util/check.h"


namespace lncl::nn {

Linear::Linear(const std::string& name, int in_dim, int out_dim,
               util::Rng* rng)
    : w_(name + ".w", out_dim, in_dim), b_(name + ".b", 1, out_dim) {
  GlorotInit(rng, &w_.value);
}

void Linear::Forward(const util::Vector& x, util::Vector* y) const {
  util::MatVec(w_.value, x, y);
  const float* b = b_.value.Row(0);
  for (int i = 0; i < out_dim(); ++i) (*y)[i] += b[i];
}

void Linear::ForwardRows(const util::Matrix& x, util::Matrix* y) const {
  LNCL_DCHECK(x.cols() == in_dim());
  util::MatMulTransB(x, w_.value, y);
  const float* b = b_.value.Row(0);
  for (int r = 0; r < y->rows(); ++r) {
    float* row = y->Row(r);
    for (int c = 0; c < y->cols(); ++c) row[c] += b[c];
  }
}

void Linear::Backward(const util::Vector& x, const util::Vector& grad_y,
                      util::Vector* grad_x) {
  LNCL_DCHECK(static_cast<int>(grad_y.size()) == out_dim());
  util::OuterAdd(grad_y, x, 1.0f, &w_.grad);
  float* gb = b_.grad.Row(0);
  for (int i = 0; i < out_dim(); ++i) gb[i] += grad_y[i];
  if (grad_x != nullptr) {
    util::MatVecTrans(w_.value, grad_y, grad_x);
  }
}

void Linear::BackwardRows(const util::Matrix& x, const util::Matrix& grad_y,
                          util::Matrix* grad_x) {
  LNCL_DCHECK(x.rows() == grad_y.rows());
  // dW += grad_y^T * x, accumulated in place by the beta=1 GEMM (no temp).
  util::Gemm(1.0f, grad_y, util::Trans::kYes, x, util::Trans::kNo, 1.0f,
             &w_.grad);
  float* gb = b_.grad.Row(0);
  for (int r = 0; r < grad_y.rows(); ++r) {
    const float* row = grad_y.Row(r);
    for (int c = 0; c < grad_y.cols(); ++c) gb[c] += row[c];
  }
  if (grad_x != nullptr) {
    util::MatMul(grad_y, w_.value, grad_x);
  }
}

}  // namespace lncl::nn
