#include "nn/maxpool.h"
#include "util/check.h"


namespace lncl::nn {

void MaxOverTimeForward(const util::Matrix& x, util::Vector* out,
                        std::vector<int>* argmax) {
  const int t = x.rows();
  const int f = x.cols();
  LNCL_DCHECK(t > 0);
  out->assign(f, 0.0f);
  argmax->assign(f, 0);
  for (int c = 0; c < f; ++c) {
    float best = x(0, c);
    int best_r = 0;
    for (int r = 1; r < t; ++r) {
      if (x(r, c) > best) {
        best = x(r, c);
        best_r = r;
      }
    }
    (*out)[c] = best;
    (*argmax)[c] = best_r;
  }
}

void MaxOverTimeRange(const util::Matrix& x, int row_begin, int row_end,
                      float* out) {
  const int f = x.cols();
  LNCL_DCHECK(row_end > row_begin);
  for (int c = 0; c < f; ++c) {
    float best = x(row_begin, c);
    for (int r = row_begin + 1; r < row_end; ++r) {
      if (x(r, c) > best) best = x(r, c);
    }
    out[c] = best;
  }
}

void MaxOverTimeBackward(const std::vector<int>& argmax,
                         const util::Vector& grad_out, int rows,
                         util::Matrix* grad_x) {
  LNCL_DCHECK(argmax.size() == grad_out.size());
  grad_x->Resize(rows, static_cast<int>(grad_out.size()));
  for (size_t c = 0; c < grad_out.size(); ++c) {
    (*grad_x)(argmax[c], static_cast<int>(c)) = grad_out[c];
  }
}

}  // namespace lncl::nn
