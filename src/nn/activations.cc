#include "nn/activations.h"

namespace lncl::nn {

void ReluForward(util::Matrix* x) {
  float* d = x->data();
  for (size_t i = 0; i < x->size(); ++i) {
    if (d[i] < 0.0f) d[i] = 0.0f;
  }
}

void ReluForward(util::Vector* x) {
  for (float& v : *x) {
    if (v < 0.0f) v = 0.0f;
  }
}

void ReluBackward(const util::Matrix& post, util::Matrix* grad) {
  const float* p = post.data();
  float* g = grad->data();
  for (size_t i = 0; i < grad->size(); ++i) {
    if (p[i] <= 0.0f) g[i] = 0.0f;
  }
}

void ReluBackward(const util::Vector& post, util::Vector* grad) {
  for (size_t i = 0; i < grad->size(); ++i) {
    if (post[i] <= 0.0f) (*grad)[i] = 0.0f;
  }
}

void TanhForward(util::Vector* x) {
  for (float& v : *x) v = std::tanh(v);
}

void SigmoidForward(util::Vector* x) {
  for (float& v : *x) v = Sigmoid(v);
}

}  // namespace lncl::nn
