#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace lncl::nn {

GradCheckResult CheckGradients(const std::function<double()>& loss_fn,
                               const std::function<void()>& compute_grads,
                               const std::vector<Parameter*>& params,
                               util::Rng* rng, double eps,
                               int samples_per_param) {
  GradCheckResult result;
  compute_grads();
  for (Parameter* p : params) {
    const int n = static_cast<int>(p->value.size());
    if (n == 0) continue;
    const int samples = std::min(samples_per_param, n);
    std::vector<int> coords = rng->SampleWithoutReplacement(n, samples);
    for (int idx : coords) {
      // Each write re-fetches the mutable pointer: Matrix::data() bumps the
      // version ticket, which the GEMM pack cache keys on. Writing through a
      // pointer captured before the previous loss_fn() call would leave a
      // stale transposed-weight panel in the cache and zero the finite
      // difference (see src/util/gemm_kernel.cc).
      const float original = p->value.data()[idx];
      p->value.data()[idx] = original + static_cast<float>(eps);
      const double loss_plus = loss_fn();
      p->value.data()[idx] = original - static_cast<float>(eps);
      const double loss_minus = loss_fn();
      p->value.data()[idx] = original;
      const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
      const double analytic = p->grad.data()[idx];
      const double abs_err = std::fabs(analytic - numeric);
      // The denominator floor absorbs float32 finite-difference noise on
      // near-zero gradients (|a|+|n| ~ 1e-4 would otherwise explode the
      // ratio for an absolute error of the same magnitude).
      const double rel_err =
          abs_err / std::max(1e-2, std::fabs(analytic) + std::fabs(numeric));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      ++result.checked;
    }
  }
  return result;
}

}  // namespace lncl::nn
