#pragma once

#include <functional>
#include <vector>

#include "nn/parameter.h"
#include "util/rng.h"

namespace lncl::nn {

// Result of a finite-difference gradient check.
struct GradCheckResult {
  double max_abs_error = 0.0;  // max |analytic - numeric|
  double max_rel_error = 0.0;  // max scaled error (see below)
  int checked = 0;             // number of coordinates compared
};

// Compares analytic gradients against central finite differences.
//
// `loss_fn` must deterministically recompute the scalar loss from the current
// parameter values (no dropout / RNG inside, or a fixed seed). `compute_grads`
// must zero and then fill each parameter's grad for the same loss. At most
// `samples_per_param` random coordinates are probed per parameter. Relative
// error is |a - n| / max(1e-2, |a| + |n|): symmetric scaling with a floor
// that tolerates float32 finite-difference noise on near-zero gradients.
GradCheckResult CheckGradients(const std::function<double()>& loss_fn,
                               const std::function<void()>& compute_grads,
                               const std::vector<Parameter*>& params,
                               util::Rng* rng, double eps = 1e-3,
                               int samples_per_param = 12);

}  // namespace lncl::nn

