#include "nn/embedding.h"
#include "util/check.h"

#include <algorithm>

namespace lncl::nn {

Embedding::Embedding(const std::string& name, const util::Matrix& init)
    : table_(name + ".table", init.rows(), init.cols()) {
  table_.value = init;
}

void Embedding::Forward(const std::vector<int>& tokens,
                        util::Matrix* out) const {
  out->Resize(static_cast<int>(tokens.size()), dim());
  for (size_t t = 0; t < tokens.size(); ++t) {
    const int id = tokens[t];
    if (id <= 0 || id >= vocab_size()) continue;
    const float* src = table_.value.Row(id);
    std::copy(src, src + dim(), out->Row(static_cast<int>(t)));
  }
}

void Embedding::Backward(const std::vector<int>& tokens,
                         const util::Matrix& grad_out) {
  LNCL_DCHECK(grad_out.rows() == static_cast<int>(tokens.size()));
  LNCL_DCHECK(grad_out.cols() == dim());
  for (size_t t = 0; t < tokens.size(); ++t) {
    const int id = tokens[t];
    if (id <= 0 || id >= vocab_size()) continue;
    float* dst = table_.grad.Row(id);
    const float* src = grad_out.Row(static_cast<int>(t));
    for (int d = 0; d < dim(); ++d) dst[d] += src[d];
  }
}

}  // namespace lncl::nn
