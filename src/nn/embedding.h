#pragma once

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/matrix.h"

namespace lncl::nn {

// Trainable embedding lookup (the "non-static" channel of Kim 2014).
//
// The table is a Parameter initialized from a pre-trained matrix; Forward
// gathers one row per token, Backward scatter-adds the output gradient back
// into the table rows. Token id 0 (padding) and out-of-range ids map to a
// zero row and receive no gradient.
class Embedding {
 public:
  Embedding(const std::string& name, const util::Matrix& init);

  Embedding(const Embedding&) = delete;
  Embedding& operator=(const Embedding&) = delete;

  // out is resized to tokens.size() x dim.
  void Forward(const std::vector<int>& tokens, util::Matrix* out) const;

  // grad_out: tokens.size() x dim gradients from the consumer.
  void Backward(const std::vector<int>& tokens, const util::Matrix& grad_out);

  std::vector<Parameter*> Params() { return {&table_}; }

  int dim() const { return table_.value.cols(); }
  int vocab_size() const { return table_.value.rows(); }

 private:
  Parameter table_;
};

}  // namespace lncl::nn

