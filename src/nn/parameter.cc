#include "nn/parameter.h"

#include <cmath>

namespace lncl::nn {

void GlorotInit(util::Rng* rng, util::Matrix* m, int fan_in, int fan_out) {
  if (fan_in < 0) fan_in = m->cols();
  if (fan_out < 0) fan_out = m->rows();
  const double a = std::sqrt(6.0 / (fan_in + fan_out));
  UniformInit(rng, a, m);
}

void UniformInit(util::Rng* rng, double scale, util::Matrix* m) {
  for (int r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    for (int c = 0; c < m->cols(); ++c) {
      row[c] = static_cast<float>(rng->Uniform(-scale, scale));
    }
  }
}

void GaussianInit(util::Rng* rng, double stddev, util::Matrix* m) {
  for (int r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    for (int c = 0; c < m->cols(); ++c) {
      row[c] = static_cast<float>(rng->Gaussian(0.0, stddev));
    }
  }
}

void ZeroGrads(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->ZeroGrad();
}

double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm) {
  double total = 0.0;
  for (const Parameter* p : params) total += p->grad.SquaredNorm();
  const double norm = std::sqrt(total);
  if (max_norm > 0.0 && norm > max_norm) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) p->grad.Scale(scale);
  }
  return norm;
}

size_t CountWeights(const std::vector<Parameter*>& params) {
  size_t n = 0;
  for (const Parameter* p : params) n += p->value.size();
  return n;
}

}  // namespace lncl::nn
