#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/matrix.h"
#include "util/rng.h"

namespace lncl::nn {

// A trainable tensor with its gradient accumulator.
//
// Layers own their parameters and expose raw pointers through `Params()`
// vectors; optimizers hold per-parameter state keyed by those pointers, so a
// Parameter must live at a stable address for the lifetime of training
// (layers therefore store Parameters by value and are not copyable).
struct Parameter {
  Parameter(std::string param_name, int rows, int cols)
      : name(std::move(param_name)), value(rows, cols), grad(rows, cols) {}

  Parameter(const Parameter&) = delete;
  Parameter& operator=(const Parameter&) = delete;

  void ZeroGrad() { grad.Zero(); }

  std::string name;
  util::Matrix value;
  util::Matrix grad;
};

// Glorot/Xavier uniform initialization: U(-a, a) with
// a = sqrt(6 / (fan_in + fan_out)). Fans default to the matrix dimensions.
void GlorotInit(util::Rng* rng, util::Matrix* m, int fan_in = -1,
                int fan_out = -1);

// Uniform initialization in [-scale, scale].
void UniformInit(util::Rng* rng, double scale, util::Matrix* m);

// Gaussian initialization N(0, stddev^2).
void GaussianInit(util::Rng* rng, double stddev, util::Matrix* m);

// Zeroes the gradients of every parameter.
void ZeroGrads(const std::vector<Parameter*>& params);

// Rescales all gradients jointly so their global L2 norm is at most
// `max_norm` (no-op when already smaller or max_norm <= 0). Returns the
// pre-clip norm. The standard guard against exploding recurrent gradients.
double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm);

// Total number of scalar weights across parameters.
size_t CountWeights(const std::vector<Parameter*>& params);

}  // namespace lncl::nn

