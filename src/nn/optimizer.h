#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/parameter.h"
#include "util/matrix.h"

namespace lncl::nn {

// Base class for first-order optimizers.
//
// Step() consumes each parameter's accumulated gradient, applies the update,
// and zeroes the gradient. Per-parameter state (momentum buffers, moment
// estimates) is keyed by the Parameter's address, so parameters must be
// address-stable across steps. The learning rate is mutable to support the
// paper's sentiment schedule ("decay by half every 5 epochs").
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual void Step(const std::vector<Parameter*>& params) = 0;
  virtual std::string name() const = 0;

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

  // Global gradient-norm clipping applied at the start of every Step
  // (0 = off).
  void set_clip_norm(double clip_norm) { clip_norm_ = clip_norm; }
  double clip_norm() const { return clip_norm_; }

 protected:
  explicit Optimizer(double lr, double l2) : lr_(lr), l2_(l2) {}

  // Adds the L2 penalty gradient in place, if configured.
  void ApplyL2(Parameter* p) {
    if (l2_ > 0.0) p->grad.AddScaled(p->value, static_cast<float>(l2_));
  }

  // Clips the joint gradient norm, if configured. Subclasses call this once
  // at the top of Step.
  void MaybeClip(const std::vector<Parameter*>& params) {
    if (clip_norm_ > 0.0) ClipGradNorm(params, clip_norm_);
  }

  double lr_;
  double l2_;        // L2 regularization strength (0 = off)
  double clip_norm_ = 0.0;
};

// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double l2 = 0.0)
      : Optimizer(lr, l2), momentum_(momentum) {}

  void Step(const std::vector<Parameter*>& params) override;
  std::string name() const override { return "sgd"; }

 private:
  double momentum_;
  std::unordered_map<Parameter*, util::Matrix> velocity_;
};

// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 0.001, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double l2 = 0.0)
      : Optimizer(lr, l2), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(const std::vector<Parameter*>& params) override;
  std::string name() const override { return "adam"; }

 private:
  struct State {
    util::Matrix m;
    util::Matrix v;
  };
  double beta1_, beta2_, eps_;
  long step_ = 0;
  std::unordered_map<Parameter*, State> state_;
};

// Adadelta (Zeiler, 2012). `lr` acts as a global scale (1.0 in the paper's
// sentiment configuration).
class Adadelta : public Optimizer {
 public:
  explicit Adadelta(double lr = 1.0, double rho = 0.95, double eps = 1e-6,
                    double l2 = 0.0)
      : Optimizer(lr, l2), rho_(rho), eps_(eps) {}

  void Step(const std::vector<Parameter*>& params) override;
  std::string name() const override { return "adadelta"; }

 private:
  struct State {
    util::Matrix avg_sq_grad;
    util::Matrix avg_sq_update;
  };
  double rho_, eps_;
  std::unordered_map<Parameter*, State> state_;
};

// Configuration blob for building optimizers from bench/table settings.
struct OptimizerConfig {
  std::string kind = "adam";  // "sgd" | "adam" | "adadelta"
  double lr = 0.001;
  double momentum = 0.0;
  double l2 = 0.0;
  // Multiply lr by `lr_decay` every `lr_decay_every` epochs (0 = off). Used
  // for the paper's sentiment setting (halve every 5 epochs).
  double lr_decay = 1.0;
  int lr_decay_every = 0;
  // Global gradient-norm clip applied each step (0 = off).
  double clip_norm = 0.0;
};

std::unique_ptr<Optimizer> MakeOptimizer(const OptimizerConfig& config);

// Applies the epoch-indexed learning-rate schedule from `config` (epoch is
// 0-based; decay applies starting at epoch lr_decay_every).
void ApplyLrSchedule(const OptimizerConfig& config, int epoch, Optimizer* opt);

}  // namespace lncl::nn

