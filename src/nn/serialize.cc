#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <string>

namespace lncl::nn {

namespace {
constexpr uint32_t kMagic = 0x4c4e434c;  // "LNCL"

void WriteU32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::istream& is, uint32_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}
}  // namespace

void SaveParams(std::ostream& os, const std::vector<Parameter*>& params) {
  WriteU32(os, kMagic);
  WriteU32(os, static_cast<uint32_t>(params.size()));
  for (const Parameter* p : params) {
    WriteU32(os, static_cast<uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WriteU32(os, static_cast<uint32_t>(p->value.rows()));
    WriteU32(os, static_cast<uint32_t>(p->value.cols()));
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
}

bool LoadParams(std::istream& is, const std::vector<Parameter*>& params) {
  uint32_t magic = 0, count = 0;
  if (!ReadU32(is, &magic) || magic != kMagic) return false;
  if (!ReadU32(is, &count) || count != params.size()) return false;
  for (Parameter* p : params) {
    uint32_t name_len = 0, rows = 0, cols = 0;
    if (!ReadU32(is, &name_len)) return false;
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is || name != p->name) return false;
    if (!ReadU32(is, &rows) || !ReadU32(is, &cols)) return false;
    if (static_cast<int>(rows) != p->value.rows() ||
        static_cast<int>(cols) != p->value.cols()) {
      return false;
    }
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!is) return false;
  }
  return true;
}

std::vector<util::Matrix> SnapshotValues(
    const std::vector<Parameter*>& params) {
  std::vector<util::Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const Parameter* p : params) snapshot.push_back(p->value);
  return snapshot;
}

void RestoreValues(const std::vector<util::Matrix>& snapshot,
                   const std::vector<Parameter*>& params) {
  for (size_t i = 0; i < params.size() && i < snapshot.size(); ++i) {
    params[i]->value = snapshot[i];
  }
}

}  // namespace lncl::nn
