#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

#include "util/gemm_kernel.h"

namespace lncl::nn {

void QuantizeRows(const util::Matrix& w, RowQuantized* qw) {
  const int out = w.rows();
  const int in = w.cols();
  qw->out = out;
  qw->in = in;
  qw->scale.assign(static_cast<size_t>(out), 1.0f);
  qw->q.assign(static_cast<size_t>(out) * in, 0);
  for (int j = 0; j < out; ++j) {
    const float* row = w.Row(j);
    float maxabs = 0.0f;
    for (int k = 0; k < in; ++k) maxabs = std::max(maxabs, std::fabs(row[k]));
    const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
    qw->scale[j] = scale;
    const float inv = 1.0f / scale;
    for (int k = 0; k < in; ++k) {
      long v = std::lrintf(row[k] * inv);
      v = std::clamp(v, long{-127}, long{127});
      qw->q[static_cast<size_t>(k) * out + j] = static_cast<int8_t>(v);
    }
  }
  qw->src_version = w.version();
}

void QuantizedGemm(const RowQuantized& qw, int m, const float* x, int lda,
                   float* y, int ldy, const float* bias, util::Act act) {
  util::gemm::GemmInt8(m, qw.out, qw.in, x, lda, qw.q.data(), qw.scale.data(),
                       y, ldy, bias, act);
}

}  // namespace lncl::nn
