#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.h"
#include "util/rng.h"

namespace lncl::nn {

// Inverted dropout: kept units are scaled by 1/(1-p) during training so that
// no rescaling is required at inference time. `mask[i]` is 1 when unit i was
// kept. A rate of 0 keeps everything (mask all ones).
void DropoutForward(double rate, util::Rng* rng, util::Vector* x,
                    std::vector<uint8_t>* mask);
void DropoutForward(double rate, util::Rng* rng, util::Matrix* x,
                    std::vector<uint8_t>* mask);

// Backward for the same mask/rate.
void DropoutBackward(double rate, const std::vector<uint8_t>& mask,
                     util::Vector* grad);
void DropoutBackward(double rate, const std::vector<uint8_t>& mask,
                     util::Matrix* grad);

}  // namespace lncl::nn

