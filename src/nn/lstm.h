#pragma once

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace lncl::nn {

// Long short-term memory layer (Hochreiter & Schmidhuber, 1997):
//
//   i_t = sigmoid(Wi x_t + Ui h_{t-1} + bi)        (input gate)
//   f_t = sigmoid(Wf x_t + Uf h_{t-1} + bf)        (forget gate)
//   o_t = sigmoid(Wo x_t + Uo h_{t-1} + bo)        (output gate)
//   g_t = tanh   (Wg x_t + Ug h_{t-1} + bg)        (candidate)
//   c_t = f_t . c_{t-1} + i_t . g_t
//   h_t = o_t . tanh(c_t)
//
// The drop-in alternative to nn::Gru (same Forward/Backward surface with its
// own Cache), used by models::LstmTagger for the recurrent-cell ablation.
// Initial hidden and cell states are zero; the forget-gate bias is
// initialized to +1, the standard trick for healthy gradient flow.
class Lstm {
 public:
  struct Cache {
    util::Matrix h;   // T x H hidden states
    util::Matrix c;   // T x H cell states
    util::Matrix i;   // gates / candidate
    util::Matrix f;
    util::Matrix o;
    util::Matrix g;
  };

  Lstm(const std::string& name, int in_dim, int hidden_dim, util::Rng* rng);

  Lstm(const Lstm&) = delete;
  Lstm& operator=(const Lstm&) = delete;

  void Forward(const util::Matrix& x, Cache* cache, util::Matrix* h_out) const;

  // Batched inference over `batch` equal-length sequences packed row-major
  // into x_packed ((batch * t) x in_dim, instance-major); h_packed gets the
  // hidden states in the same layout, bit-identical per instance to Forward
  // (see nn::Gru::ForwardPacked for the argument).
  void ForwardPacked(const util::Matrix& x_packed, int batch, int t,
                     util::Matrix* h_packed) const;

  // grad_h: T x H = dL/dh_t for every step. Accumulates parameter grads;
  // writes dL/dx when grad_x is non-null.
  void Backward(const util::Matrix& x, const Cache& cache,
                const util::Matrix& grad_h, util::Matrix* grad_x);

  std::vector<Parameter*> Params() {
    return {&wi_, &ui_, &bi_, &wf_, &uf_, &bf_,
            &wo_, &uo_, &bo_, &wg_, &ug_, &bg_};
  }

  int in_dim() const { return wi_.value.cols(); }
  int hidden_dim() const { return wi_.value.rows(); }

 private:
  Parameter wi_, ui_, bi_;
  Parameter wf_, uf_, bf_;
  Parameter wo_, uo_, bo_;
  Parameter wg_, ug_, bg_;
};

}  // namespace lncl::nn

