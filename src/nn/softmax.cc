#include "nn/softmax.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lncl::nn {

namespace {
constexpr double kLogFloor = 1e-12;

void SoftmaxInPlace(const float* z, float* p, int n) {
  float mx = z[0];
  for (int i = 1; i < n; ++i) mx = std::max(mx, z[i]);
  float sum = 0.0f;
  for (int i = 0; i < n; ++i) {
    p[i] = std::exp(z[i] - mx);
    sum += p[i];
  }
  const float inv = 1.0f / sum;
  for (int i = 0; i < n; ++i) p[i] *= inv;
}
}  // namespace

void Softmax(const util::Vector& logits, util::Vector* probs) {
  probs->resize(logits.size());
  SoftmaxInPlace(logits.data(), probs->data(), static_cast<int>(logits.size()));
  LNCL_AUDIT_SIMPLEX(*probs);
}

void SoftmaxRows(const util::Matrix& logits, util::Matrix* probs) {
  probs->Resize(logits.rows(), logits.cols());
  for (int r = 0; r < logits.rows(); ++r) {
    SoftmaxInPlace(logits.Row(r), probs->Row(r), logits.cols());
  }
  LNCL_AUDIT_SIMPLEX(*probs);
}

double CrossEntropy(const util::Vector& q, const util::Vector& p) {
  LNCL_DCHECK(q.size() == p.size());
  double loss = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    if (q[i] > 0.0f) {
      loss -= q[i] * std::log(std::max(static_cast<double>(p[i]), kLogFloor));
    }
  }
  return loss;
}

double CrossEntropyRows(const util::Matrix& q, const util::Matrix& p) {
  LNCL_DCHECK(q.rows() == p.rows() && q.cols() == p.cols());
  double loss = 0.0;
  for (int r = 0; r < q.rows(); ++r) {
    const float* qr = q.Row(r);
    const float* pr = p.Row(r);
    for (int c = 0; c < q.cols(); ++c) {
      if (qr[c] > 0.0f) {
        loss -=
            qr[c] * std::log(std::max(static_cast<double>(pr[c]), kLogFloor));
      }
    }
  }
  return loss;
}

void SoftmaxCrossEntropyGrad(const util::Vector& q, const util::Vector& p,
                             float w, util::Vector* grad) {
  LNCL_DCHECK(q.size() == p.size());
  grad->resize(p.size());
  for (size_t i = 0; i < p.size(); ++i) (*grad)[i] = w * (p[i] - q[i]);
  LNCL_AUDIT_FINITE(*grad);
}

void SoftmaxCrossEntropyGradRows(const util::Matrix& q, const util::Matrix& p,
                                 float w, util::Matrix* grad) {
  LNCL_DCHECK(q.rows() == p.rows() && q.cols() == p.cols());
  grad->Resize(p.rows(), p.cols());
  for (int r = 0; r < p.rows(); ++r) {
    const float* qr = q.Row(r);
    const float* pr = p.Row(r);
    float* gr = grad->Row(r);
    for (int c = 0; c < p.cols(); ++c) gr[c] = w * (pr[c] - qr[c]);
  }
  LNCL_AUDIT_FINITE(*grad);
}

void SoftmaxJacobianVecProduct(const util::Vector& p,
                               const util::Vector& grad_p, float w,
                               util::Vector* grad_z) {
  LNCL_DCHECK(p.size() == grad_p.size());
  grad_z->resize(p.size());
  float dot = 0.0f;
  for (size_t i = 0; i < p.size(); ++i) dot += p[i] * grad_p[i];
  for (size_t i = 0; i < p.size(); ++i) {
    (*grad_z)[i] = w * p[i] * (grad_p[i] - dot);
  }
  LNCL_AUDIT_FINITE(*grad_z);
}

void SoftmaxJacobianVecProductRows(const util::Matrix& p,
                                   const util::Matrix& grad_p, float w,
                                   util::Matrix* grad_z) {
  LNCL_DCHECK(p.rows() == grad_p.rows() && p.cols() == grad_p.cols());
  grad_z->Resize(p.rows(), p.cols());
  for (int r = 0; r < p.rows(); ++r) {
    const float* pr = p.Row(r);
    const float* gr = grad_p.Row(r);
    float* oz = grad_z->Row(r);
    float dot = 0.0f;
    for (int c = 0; c < p.cols(); ++c) dot += pr[c] * gr[c];
    for (int c = 0; c < p.cols(); ++c) oz[c] = w * pr[c] * (gr[c] - dot);
  }
  LNCL_AUDIT_FINITE(*grad_z);
}

}  // namespace lncl::nn
