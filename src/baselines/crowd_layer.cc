#include "baselines/crowd_layer.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "core/trainer.h"
#include "eval/metrics.h"
#include "inference/truth_inference.h"
#include "util/check.h"

namespace lncl::baselines {

namespace {
// Clipping floor for the unnormalized crowd-layer scores, matching the
// epsilon the reference implementation clips cross-entropy inputs with.
constexpr float kScoreFloor = 1e-6f;
}  // namespace

void CrowdLayer::AnnotatorForward(int annotator, const util::Vector& p,
                                  util::Vector* scores) const {
  const nn::Parameter& a = *annotator_params_[annotator];
  const int k = static_cast<int>(p.size());
  scores->assign(k, 0.0f);
  switch (config_.kind) {
    case CrowdLayerConfig::Kind::kMW:
      for (int m = 0; m < k; ++m) {
        const float* row = a.value.Row(m);
        float s = 0.0f;
        for (int n = 0; n < k; ++n) s += row[n] * p[n];
        (*scores)[m] = s;
      }
      break;
    case CrowdLayerConfig::Kind::kVW:
      for (int m = 0; m < k; ++m) (*scores)[m] = a.value(0, m) * p[m];
      break;
    case CrowdLayerConfig::Kind::kVWB:
      for (int m = 0; m < k; ++m) {
        (*scores)[m] = a.value(0, m) * p[m] + a.value(1, m);
      }
      break;
  }
}

void CrowdLayer::AnnotatorBackward(int annotator, const util::Vector& p,
                                   const util::Vector& scores, int label,
                                   util::Vector* grad_p) {
  nn::Parameter& a = *annotator_params_[annotator];
  const int k = static_cast<int>(p.size());
  // loss = -log(clip(scores[label])): only the true-label score receives
  // gradient, dL/dscore_y = -1 / score_y. Like tf.clip_by_value, the clip
  // passes zero gradient when the score sits outside the clip range.
  if (scores[label] <= kScoreFloor || scores[label] >= 1.0f) return;
  const float g = -1.0f / scores[label];
  switch (config_.kind) {
    case CrowdLayerConfig::Kind::kMW: {
      float* grow = a.grad.Row(label);
      const float* wrow = a.value.Row(label);
      for (int n = 0; n < k; ++n) {
        grow[n] += g * p[n];
        (*grad_p)[n] += g * wrow[n];
      }
      break;
    }
    case CrowdLayerConfig::Kind::kVW:
      a.grad(0, label) += g * p[label];
      (*grad_p)[label] += g * a.value(0, label);
      break;
    case CrowdLayerConfig::Kind::kVWB:
      a.grad(0, label) += g * p[label];
      a.grad(1, label) += g;
      (*grad_p)[label] += g * a.value(0, label);
      break;
  }
}

CrowdLayerResult CrowdLayer::Fit(const data::Dataset& train,
                                 const crowd::AnnotationSet& annotations,
                                 const data::Dataset& dev, util::Rng* rng) {
  CrowdLayerResult result;
  model_ = factory_(rng);
  const int k = model_->num_classes();

  // Identity-like initialization: the crowd layer starts as a pass-through.
  annotator_params_.clear();
  for (int j = 0; j < annotations.num_annotators(); ++j) {
    const std::string name = "cl.annotator" + std::to_string(j);
    switch (config_.kind) {
      case CrowdLayerConfig::Kind::kMW: {
        auto p = std::make_unique<nn::Parameter>(name, k, k);
        for (int m = 0; m < k; ++m) p->value(m, m) = 1.0f;
        annotator_params_.push_back(std::move(p));
        break;
      }
      case CrowdLayerConfig::Kind::kVW: {
        auto p = std::make_unique<nn::Parameter>(name, 1, k);
        for (int m = 0; m < k; ++m) p->value(0, m) = 1.0f;
        annotator_params_.push_back(std::move(p));
        break;
      }
      case CrowdLayerConfig::Kind::kVWB: {
        auto p = std::make_unique<nn::Parameter>(name, 2, k);
        for (int m = 0; m < k; ++m) p->value(0, m) = 1.0f;
        annotator_params_.push_back(std::move(p));
        break;
      }
    }
  }

  std::vector<nn::Parameter*> all_params = model_->Params();
  for (auto& p : annotator_params_) all_params.push_back(p.get());

  std::unique_ptr<nn::Optimizer> optimizer =
      nn::MakeOptimizer(config_.optimizer);

  // Optional MV pre-training of the bottleneck network.
  if (config_.pretrain_epochs > 0) {
    const std::vector<util::Matrix> mv_targets =
        annotations.MajorityVote(inference::ItemsPerInstance(train));
    for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
      core::RunMinibatchEpoch(train, mv_targets, {}, config_.batch_size,
                              model_.get(), optimizer.get(), rng);
    }
  }

  core::EarlyStopper stopper(config_.patience);

  std::vector<int> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  util::Vector p_item, scores_j;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    nn::ApplyLrSchedule(config_.optimizer, epoch, optimizer.get());
    rng->Shuffle(&order);
    int in_batch = 0;
    for (int idx : order) {
      const data::Instance& x = train.instances[idx];
      const util::Matrix& probs = model_->ForwardTrain(x, rng);
      util::Matrix grad_probs(probs.rows(), probs.cols());
      for (const crowd::AnnotatorLabels& e :
           annotations.instance(idx).entries) {
        for (int t = 0; t < probs.rows(); ++t) {
          p_item.assign(probs.Row(t), probs.Row(t) + k);
          AnnotatorForward(e.annotator, p_item, &scores_j);
          util::Vector grad_p(k, 0.0f);
          AnnotatorBackward(e.annotator, p_item, scores_j, e.labels[t],
                            &grad_p);
          float* gp_row = grad_probs.Row(t);
          for (int m = 0; m < k; ++m) gp_row[m] += grad_p[m];
        }
      }
      model_->BackwardProbGrad(grad_probs, 1.0f);
      if (++in_batch == config_.batch_size) {
        optimizer->Step(all_params);
        in_batch = 0;
      }
    }
    if (in_batch > 0) optimizer->Step(all_params);
    if (stopper.Update(eval::DevScore(*model_, dev), all_params)) break;
  }
  stopper.Restore(all_params);
  result.best_dev_score = stopper.best_score();
  result.best_epoch = stopper.best_epoch();
  return result;
}

std::vector<util::Matrix> CrowdLayer::TrainPosteriors(
    const data::Dataset& train) const {
  std::vector<util::Matrix> out;
  out.reserve(train.size());
  for (const data::Instance& x : train.instances) {
    out.push_back(model_->Predict(x));
  }
  return out;
}

}  // namespace lncl::baselines
