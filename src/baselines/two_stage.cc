#include "baselines/two_stage.h"

#include "core/trainer.h"
#include "eval/metrics.h"

namespace lncl::baselines {

std::vector<util::Matrix> GoldTargets(const data::Dataset& dataset) {
  std::vector<util::Matrix> targets;
  targets.reserve(dataset.size());
  for (int i = 0; i < dataset.size(); ++i) {
    util::Matrix t(dataset.NumItems(i), dataset.num_classes);
    for (int item = 0; item < dataset.NumItems(i); ++item) {
      t(item, dataset.ItemLabel(i, item)) = 1.0f;
    }
    targets.push_back(std::move(t));
  }
  return targets;
}

std::vector<util::Matrix> HardenTargets(
    const std::vector<util::Matrix>& posteriors) {
  std::vector<util::Matrix> targets;
  targets.reserve(posteriors.size());
  for (const util::Matrix& q : posteriors) {
    util::Matrix t(q.rows(), q.cols());
    const std::vector<int> winners = eval::ArgmaxRows(q);
    for (int r = 0; r < q.rows(); ++r) t(r, winners[r]) = 1.0f;
    targets.push_back(std::move(t));
  }
  return targets;
}

TwoStageResult TwoStage::Fit(const data::Dataset& train,
                             const crowd::AnnotationSet& annotations,
                             const inference::TruthInference& inference,
                             const data::Dataset& dev, util::Rng* rng) {
  std::vector<util::Matrix> posteriors = inference.Infer(
      annotations, inference::ItemsPerInstance(train), rng);
  TwoStageResult result = FitOnTargets(
      train, config_.hard_labels ? HardenTargets(posteriors) : posteriors, dev,
      rng);
  result.posteriors = std::move(posteriors);
  return result;
}

TwoStageResult TwoStage::FitOnTargets(const data::Dataset& train,
                                      const std::vector<util::Matrix>& targets,
                                      const data::Dataset& dev,
                                      util::Rng* rng) {
  TwoStageResult result;
  model_ = factory_(rng);
  std::unique_ptr<nn::Optimizer> optimizer =
      nn::MakeOptimizer(config_.optimizer);
  const std::vector<nn::Parameter*> params = model_->Params();

  core::EarlyStopper stopper(config_.patience);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    nn::ApplyLrSchedule(config_.optimizer, epoch, optimizer.get());
    core::RunMinibatchEpoch(train, targets, {}, config_.batch_size,
                            model_.get(), optimizer.get(), rng);
    if (stopper.Update(eval::DevScore(*model_, dev), params)) break;
  }
  stopper.Restore(params);
  result.best_dev_score = stopper.best_score();
  result.best_epoch = stopper.best_epoch();
  return result;
}

}  // namespace lncl::baselines
