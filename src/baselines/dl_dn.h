#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "crowd/annotation.h"
#include "data/dataset.h"
#include "models/model.h"
#include "nn/optimizer.h"

namespace lncl::baselines {

// "Who said what" (Guan et al., 2018): one network per annotator, trained
// only on that annotator's labels.
//
//   DL-DN:  prediction = unweighted average of the annotator networks'
//           softmax outputs;
//   DL-WDN: weighted average with per-network weights learned from held-out
//           performance (the original learns averaging weights on a
//           validation set; we use each network's dev score, squared, as its
//           weight).
struct DlDnConfig {
  int epochs = 15;
  int batch_size = 32;
  int patience = 4;
  nn::OptimizerConfig optimizer;
  // Annotators with fewer labeled instances than this are skipped (their
  // networks would be pure noise).
  int min_instances = 30;
};

class DlDn {
 public:
  DlDn(DlDnConfig config, models::ModelFactory factory)
      : config_(std::move(config)), factory_(std::move(factory)) {}

  void Fit(const data::Dataset& train, const crowd::AnnotationSet& annotations,
           const data::Dataset& dev, util::Rng* rng);

  // Unweighted ensemble prediction (DL-DN).
  util::Matrix Predict(const data::Instance& x) const;
  // Agreement-weighted ensemble prediction (DL-WDN).
  util::Matrix PredictWeighted(const data::Instance& x) const;

  int num_networks() const { return static_cast<int>(networks_.size()); }

 private:
  util::Matrix Ensemble(const data::Instance& x,
                        const std::vector<double>& weights) const;

  DlDnConfig config_;
  models::ModelFactory factory_;
  std::vector<std::unique_ptr<models::Model>> networks_;
  std::vector<double> dev_weight_;  // per kept network: dev score squared
};

}  // namespace lncl::baselines

