#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "crowd/annotation.h"
#include "data/dataset.h"
#include "models/model.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"
#include "util/matrix.h"

namespace lncl::baselines {

// Deep learning from crowds (Rodrigues & Pereira, 2018): the "crowd layer"
// baseline CL. On top of the bottleneck softmax output p of the shared
// network, a per-annotator transformation produces annotator-specific
// (unnormalized) class scores that are trained against that annotator's
// labels with categorical cross entropy applied *directly* to the clipped
// scores — exactly as in the reference Keras implementation, which does not
// re-normalize the crowd layer's output:
//
//   MW:   q_j = W_j p          (full K x K matrix, identity init)
//   VW:   q_j = w_j . p        (per-class scale, ones init)
//   VW-B: q_j = w_j . p + b_j  (scale + bias)
//
//   loss = -log q_j[y_ij],  q clipped to [eps, 1]
//
// Gradients flow through the crowd layer into the network (via the softmax
// Jacobian). The paper's CL(MW, 5) / CL(MW, 1) variants pre-train the
// bottleneck for 5 / 1 epochs on Majority-Voting estimates before switching
// to crowd-layer training.
struct CrowdLayerConfig {
  enum class Kind { kMW, kVW, kVWB };

  Kind kind = Kind::kMW;
  int pretrain_epochs = 0;  // epochs of MV pre-training
  int epochs = 30;
  int batch_size = 50;
  int patience = 5;
  nn::OptimizerConfig optimizer;
};

struct CrowdLayerResult {
  double best_dev_score = 0.0;
  int best_epoch = -1;
};

class CrowdLayer {
 public:
  CrowdLayer(CrowdLayerConfig config, models::ModelFactory factory)
      : config_(std::move(config)), factory_(std::move(factory)) {}

  CrowdLayerResult Fit(const data::Dataset& train,
                       const crowd::AnnotationSet& annotations,
                       const data::Dataset& dev, util::Rng* rng);

  // Bottleneck prediction (the classifier of interest).
  util::Matrix Predict(const data::Instance& x) const {
    return model_->Predict(x);
  }

  // Classifier outputs on the training set — the paper's "Inference" metric
  // for the CL rows.
  std::vector<util::Matrix> TrainPosteriors(const data::Dataset& train) const;

  models::Model* model() { return model_.get(); }

 private:
  // Per-annotator crowd-layer forward: annotator scores from bottleneck p.
  void AnnotatorForward(int annotator, const util::Vector& p,
                        util::Vector* scores) const;
  // Accumulates crowd-layer parameter grads and dL/dp for one (item, label),
  // where loss = -log(clip(scores[label])).
  void AnnotatorBackward(int annotator, const util::Vector& p,
                         const util::Vector& scores, int label,
                         util::Vector* grad_p);

  CrowdLayerConfig config_;
  models::ModelFactory factory_;
  std::unique_ptr<models::Model> model_;
  // One parameter per annotator: K x K (MW), 1 x K (VW), 2 x K (VW-B:
  // row 0 = scale, row 1 = bias).
  std::vector<std::unique_ptr<nn::Parameter>> annotator_params_;
};

}  // namespace lncl::baselines

