#include "baselines/fixed_target.h"

#include "core/trainer.h"
#include "eval/metrics.h"

namespace lncl::baselines {

FixedTargetResult FixedTargetTrainer::Fit(
    const data::Dataset& train, const std::vector<util::Matrix>& q_base,
    const data::Dataset& dev, util::Rng* rng) {
  FixedTargetResult result;
  if (!model_) model_ = factory_(rng);
  std::unique_ptr<nn::Optimizer> optimizer =
      nn::MakeOptimizer(config_.optimizer);
  const std::vector<nn::Parameter*> params = model_->Params();

  core::EarlyStopper stopper(config_.patience);
  std::vector<util::Matrix> qf = q_base;
  std::vector<util::Matrix> best_qf = qf;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    nn::ApplyLrSchedule(config_.optimizer, epoch, optimizer.get());
    const double k = config_.k_schedule(epoch);
    if (projector_ != nullptr && k > 0.0) {
      for (int i = 0; i < train.size(); ++i) {
        const util::Matrix qb =
            projector_->Project(train.instances[i], q_base[i], config_.C);
        util::Matrix blended(qb.rows(), qb.cols());
        for (int t = 0; t < qb.rows(); ++t) {
          for (int c = 0; c < qb.cols(); ++c) {
            blended(t, c) = static_cast<float>((1.0 - k) * q_base[i](t, c) +
                                               k * qb(t, c));
          }
        }
        qf[i] = std::move(blended);
      }
    }
    core::RunMinibatchEpoch(train, qf, {}, config_.batch_size, model_.get(),
                            optimizer.get(), rng);
    const int prev_best = stopper.best_epoch();
    const bool stop = stopper.Update(eval::DevScore(*model_, dev), params);
    if (stopper.best_epoch() != prev_best) best_qf = qf;
    if (stop) break;
  }
  stopper.Restore(params);
  result.best_dev_score = stopper.best_score();
  result.best_epoch = stopper.best_epoch();
  result.qf = std::move(best_qf);
  return result;
}

}  // namespace lncl::baselines
