#pragma once

#include <memory>
#include <vector>

#include "core/logic_lncl.h"
#include "crowd/annotation.h"
#include "data/dataset.h"
#include "inference/truth_inference.h"
#include "logic/posterior_reg.h"
#include "models/model.h"
#include "nn/optimizer.h"

namespace lncl::baselines {

// The two-stage LNCL paradigm (paper Figure 1, left): first run a
// truth-inference method over the crowd labels, then train the classifier on
// the inferred (hard) labels with ordinary supervised learning. Covers
// MV-Classifier, GLAD-Classifier, and — given gold targets — the "Gold"
// upper bound.
struct TwoStageConfig {
  int epochs = 30;
  int batch_size = 50;
  int patience = 5;
  bool hard_labels = true;  // argmax the stage-1 posterior (the usual recipe)
  nn::OptimizerConfig optimizer;
};

struct TwoStageResult {
  double best_dev_score = 0.0;
  int best_epoch = -1;
  // Stage-1 posteriors on the training set (the "Inference" metric).
  std::vector<util::Matrix> posteriors;
};

class TwoStage {
 public:
  TwoStage(TwoStageConfig config, models::ModelFactory factory)
      : config_(std::move(config)), factory_(std::move(factory)) {}

  // Stage 1 = `inference` over `annotations`; stage 2 = supervised training.
  TwoStageResult Fit(const data::Dataset& train,
                     const crowd::AnnotationSet& annotations,
                     const inference::TruthInference& inference,
                     const data::Dataset& dev, util::Rng* rng);

  // Trains directly on provided per-instance targets (items x K). Pass the
  // gold one-hot targets for the "Gold" row.
  TwoStageResult FitOnTargets(const data::Dataset& train,
                              const std::vector<util::Matrix>& targets,
                              const data::Dataset& dev, util::Rng* rng);

  util::Matrix Predict(const data::Instance& x) const {
    return model_->Predict(x);
  }

  // "MV-t" ablation: predictions projected through a rule set at test time
  // (the teacher trick applied to a plain two-stage classifier).
  util::Matrix PredictWithRules(const data::Instance& x,
                                const logic::RuleProjector& projector,
                                double C) const {
    return projector.Project(x, model_->Predict(x), C);
  }

  models::Model* model() { return model_.get(); }
  const models::Model* model() const { return model_.get(); }

 private:
  TwoStageConfig config_;
  models::ModelFactory factory_;
  std::unique_ptr<models::Model> model_;
};

// One-hot (items x K) targets from ground-truth labels, for Gold training.
std::vector<util::Matrix> GoldTargets(const data::Dataset& dataset);

// Hardens posteriors to one-hot argmax targets.
std::vector<util::Matrix> HardenTargets(
    const std::vector<util::Matrix>& posteriors);

}  // namespace lncl::baselines

