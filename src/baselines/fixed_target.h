#pragma once

#include <memory>
#include <vector>

#include "core/logic_lncl.h"
#include "crowd/annotation.h"
#include "data/dataset.h"
#include "logic/posterior_reg.h"
#include "models/model.h"
#include "nn/optimizer.h"

namespace lncl::baselines {

// The MV-Rule / GLAD-Rule ablations of Table IV: rule distillation WITHOUT
// the iterative truth-posterior refinement. A fixed stage-1 estimate q_base
// (from MV, GLAD, AggNet, ...) replaces q_a in Eq. 15:
//
//   q_b^{(e)} = Project(q_base)   (re-evaluated each epoch: the sentiment
//                                  rule consults the evolving classifier)
//   q_f^{(e)} = (1 - k(e)) q_base + k(e) q_b^{(e)}
//
// and the classifier trains on q_f. Unlike Logic-LNCL, q_base itself is
// never updated from the model or the annotator estimates.
struct FixedTargetConfig {
  double C = 5.0;
  core::KSchedule k_schedule;  // same schedules as Logic-LNCL
  int epochs = 30;
  int batch_size = 50;
  int patience = 5;
  nn::OptimizerConfig optimizer;
};

struct FixedTargetResult {
  double best_dev_score = 0.0;
  int best_epoch = -1;
  // The last q_f used for training (the "Inference" metric of the ablation).
  std::vector<util::Matrix> qf;
};

class FixedTargetTrainer {
 public:
  FixedTargetTrainer(FixedTargetConfig config, models::ModelFactory factory,
                     const logic::RuleProjector* projector)
      : config_(std::move(config)),
        factory_(std::move(factory)),
        projector_(projector) {
    if (!config_.k_schedule) config_.k_schedule = core::ConstantK(0.0);
  }

  // Pre-built-model variant (see core::LogicLncl): lets the caller bind a
  // model-dependent rule projector to the model being trained.
  FixedTargetTrainer(FixedTargetConfig config,
                     std::unique_ptr<models::Model> model,
                     const logic::RuleProjector* projector)
      : config_(std::move(config)),
        projector_(projector),
        model_(std::move(model)) {
    if (!config_.k_schedule) config_.k_schedule = core::ConstantK(0.0);
  }

  FixedTargetResult Fit(const data::Dataset& train,
                        const std::vector<util::Matrix>& q_base,
                        const data::Dataset& dev, util::Rng* rng);

  util::Matrix Predict(const data::Instance& x) const {
    return model_->Predict(x);
  }

  models::Model* model() { return model_.get(); }

 private:
  FixedTargetConfig config_;
  models::ModelFactory factory_;
  const logic::RuleProjector* projector_;
  std::unique_ptr<models::Model> model_;
};

}  // namespace lncl::baselines

