#include "baselines/dl_dn.h"

#include <algorithm>


#include "core/trainer.h"
#include "eval/metrics.h"
#include "inference/truth_inference.h"
#include "util/check.h"

namespace lncl::baselines {

void DlDn::Fit(const data::Dataset& train,
               const crowd::AnnotationSet& annotations,
               const data::Dataset& dev, util::Rng* rng) {
  networks_.clear();
  dev_weight_.clear();

  // Per-annotator sub-datasets with hard targets from that annotator.
  const int num_annotators = annotations.num_annotators();
  std::vector<data::Dataset> sub(num_annotators);
  std::vector<std::vector<util::Matrix>> sub_targets(num_annotators);
  for (int j = 0; j < num_annotators; ++j) {
    sub[j].num_classes = train.num_classes;
    sub[j].sequence = train.sequence;
  }
  for (int i = 0; i < annotations.num_instances(); ++i) {
    for (const crowd::AnnotatorLabels& e : annotations.instance(i).entries) {
      sub[e.annotator].instances.push_back(train.instances[i]);
      util::Matrix t(static_cast<int>(e.labels.size()), train.num_classes);
      for (size_t item = 0; item < e.labels.size(); ++item) {
        t(static_cast<int>(item), e.labels[item]) = 1.0f;
      }
      sub_targets[e.annotator].push_back(std::move(t));
    }
  }

  for (int j = 0; j < num_annotators; ++j) {
    if (sub[j].size() < config_.min_instances) continue;
    std::unique_ptr<models::Model> net = factory_(rng);
    std::unique_ptr<nn::Optimizer> optimizer =
        nn::MakeOptimizer(config_.optimizer);
    const std::vector<nn::Parameter*> params = net->Params();
    core::EarlyStopper stopper(config_.patience);
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      core::RunMinibatchEpoch(sub[j], sub_targets[j], {}, config_.batch_size,
                              net.get(), optimizer.get(), rng);
      if (stopper.Update(eval::DevScore(*net, dev), params)) break;
    }
    stopper.Restore(params);
    networks_.push_back(std::move(net));
    const double dev_score = std::max(0.0, stopper.best_score());
    dev_weight_.push_back(dev_score * dev_score);
  }
}

util::Matrix DlDn::Ensemble(const data::Instance& x,
                            const std::vector<double>& weights) const {
  LNCL_DCHECK(!networks_.empty());
  util::Matrix sum;
  double total_w = 0.0;
  for (size_t n = 0; n < networks_.size(); ++n) {
    const util::Matrix p = networks_[n]->Predict(x);
    const double w = weights.empty() ? 1.0 : weights[n];
    if (sum.rows() == 0) sum.Resize(p.rows(), p.cols());
    sum.AddScaled(p, static_cast<float>(w));
    total_w += w;
  }
  if (total_w > 0.0) sum.Scale(static_cast<float>(1.0 / total_w));
  return sum;
}

util::Matrix DlDn::Predict(const data::Instance& x) const {
  return Ensemble(x, {});
}

util::Matrix DlDn::PredictWeighted(const data::Instance& x) const {
  return Ensemble(x, dev_weight_);
}

}  // namespace lncl::baselines
