#pragma once

#include <memory>

#include "data/embedding.h"
#include "models/model.h"
#include "nn/conv1d.h"
#include "nn/gru.h"
#include "nn/linear.h"

namespace lncl::models {

// Linear-chain CRF sequence tagger: the same neural feature pipeline as
// NerTagger (static embeddings -> same-padded convolution -> ReLU ->
// dropout -> GRU) emitting per-token unary scores, combined with a learned
// K x K transition matrix and start scores — the Lample et al. (2016)
// architecture the paper contrasts its parameter-free logic rules against
// ("unlike recent work that adds a conditional random field to model
// bi-gram dependencies...").
//
// Model-interface semantics:
//   * Predict / ForwardTrain return the exact per-token posterior
//     *marginals* computed by forward-backward (row-stochastic, so they
//     compose with every evaluator in eval/).
//   * BackwardSoftTarget trains the standard sequence NLL
//       -log P(y | x) = -(score(y) - log Z)
//     with y = argmax-decoded from the (possibly soft) target rows; the
//     gradient is the classic (marginal - empirical) for both the unary
//     scores and the transition/start parameters.
//   * BackwardProbGrad is NOT supported (the crowd-layer loss is defined on
//     independent per-item distributions, which a CRF does not produce) and
//     aborts loudly if called.
struct CrfTaggerConfig {
  int conv_window = 5;
  int conv_features = 64;
  int gru_hidden = 32;
  double dropout = 0.5;
  int num_classes = 9;
};

class CrfTagger : public Model {
 public:
  CrfTagger(const CrfTaggerConfig& config, data::EmbeddingPtr embeddings,
            util::Rng* rng);

  int num_classes() const override { return config_.num_classes; }
  int NumItems(const data::Instance& x) const override {
    return static_cast<int>(x.tokens.size());
  }

  util::Matrix Predict(const data::Instance& x) const override;
  const util::Matrix& ForwardTrain(const data::Instance& x,
                                   util::Rng* rng) override;
  double BackwardSoftTarget(const util::Matrix& q, float w) override;
  void BackwardProbGrad(const util::Matrix& grad_probs, float w) override;
  std::vector<nn::Parameter*> Params() override;

  // Most probable tag sequence (Viterbi decoding).
  std::vector<int> Decode(const data::Instance& x) const;

  static ModelFactory Factory(const CrfTaggerConfig& config,
                              data::EmbeddingPtr embeddings);

 private:
  // Neural pipeline up to the unary scores U (T x K). Training mode caches
  // intermediates; eval mode leaves the cache untouched.
  void UnaryForward(const data::Instance& x, bool train, util::Rng* rng,
                    util::Matrix* unary) const;

  // Potentials for the chain smoother: prior_m = exp(start_m + U(0, m)) is
  // folded as prior x emission; emission rows are exp(U(t, .) - rowmax).
  void BuildPotentials(const util::Matrix& unary, util::Vector* prior,
                       util::Matrix* transition_potential,
                       util::Matrix* emission) const;

  // Backprop of dL/dU through the neural pipeline (training cache).
  void BackwardFromUnary(const util::Matrix& grad_unary);

  CrfTaggerConfig config_;
  data::EmbeddingPtr embeddings_;
  nn::Conv1d conv_;
  nn::Gru gru_;
  nn::Linear fc_;
  nn::Parameter transition_;  // K x K scores
  nn::Parameter start_;       // 1 x K scores

  struct Cache {
    util::Matrix embedded;
    util::Matrix conv_relu;
    util::Matrix conv_dropped;
    std::vector<uint8_t> dropout_mask;
    nn::Gru::Cache gru;
    util::Matrix hidden;
    util::Matrix unary;      // T x K scores
    util::Matrix marginals;  // T x K posterior marginals
    util::Matrix xi_sum;     // K x K summed pairwise posteriors
  };
  mutable Cache cache_;
};

}  // namespace lncl::models

