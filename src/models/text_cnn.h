#pragma once

#include <memory>
#include <vector>

#include "data/embedding.h"
#include "models/model.h"
#include "nn/conv1d.h"
#include "nn/embedding.h"
#include "nn/linear.h"

namespace lncl::models {

// The Kim (2014) sentence-classification CNN used by the paper for the
// sentiment task: static word embeddings, parallel convolutions with several
// filter-window sizes, ReLU, max-over-time pooling, dropout on the pooled
// feature vector, and a final softmax layer. Widths default to a
// CPU-friendly scale (the paper used 100 maps per window on 300-d
// embeddings); the architecture is identical.
struct TextCnnConfig {
  std::vector<int> windows = {3, 4, 5};
  int feature_maps = 16;  // per window size
  double dropout = 0.5;
  int num_classes = 2;
  // Kim's "non-static" channel: fine-tune a private copy of the embedding
  // table during training (the default, matching the paper, is the frozen
  // "static" version).
  bool trainable_embeddings = false;
};

class TextCnn : public Model {
 public:
  TextCnn(const TextCnnConfig& config, data::EmbeddingPtr embeddings,
          util::Rng* rng);

  int num_classes() const override { return config_.num_classes; }
  int NumItems(const data::Instance&) const override { return 1; }

  util::Matrix Predict(const data::Instance& x) const override;
  // Length-bucketed batched prediction: one packed embedding gather, one
  // convolution GEMM, and one fc GEMM per bucket instead of per instance.
  // Bit-identical to looping Predict (tests/batch_predict_test.cc).
  void PredictBatch(const std::vector<const data::Instance*>& xs,
                    std::vector<util::Matrix>* out) const override;
  const util::Matrix& ForwardTrain(const data::Instance& x,
                                   util::Rng* rng) override;
  double BackwardSoftTarget(const util::Matrix& q, float w) override;
  void BackwardProbGrad(const util::Matrix& grad_probs, float w) override;
  std::vector<nn::Parameter*> Params() override;
  // Int8 serving: convolutions + classifier head (embeddings are a gather
  // and stay fp32).
  void SetQuantizedPredict(bool on) override;

  // Factory matching models::ModelFactory.
  static ModelFactory Factory(const TextCnnConfig& config,
                              data::EmbeddingPtr embeddings);

 private:
  // Embeddings + convolution + pooling shared by train/eval paths. Fills
  // `feat` (pre-dropout pooled features); per-window activations/argmaxes go
  // to the output arrays when non-null (training needs them for backward).
  void FeatureForward(const data::Instance& x, util::Vector* feat,
                      std::vector<util::Matrix>* conv_post,
                      std::vector<std::vector<int>>* argmax,
                      util::Matrix* embedded) const;

  // Backward from dL/dlogits using the cache of the last ForwardTrain.
  void BackwardFromLogits(const util::Vector& grad_logits);

  TextCnnConfig config_;
  data::EmbeddingPtr embeddings_;
  std::unique_ptr<nn::Embedding> trainable_;  // non-static channel, optional
  std::vector<std::unique_ptr<nn::Conv1d>> convs_;
  nn::Linear fc_;
  bool quantized_predict_ = false;  // mirrors the layers' int8 toggle

  // Cache of the last ForwardTrain.
  struct Cache {
    std::vector<int> tokens;                   // for the embedding backward
    util::Matrix embedded;                     // T x D
    std::vector<util::Matrix> conv_post;       // per window: rows x F (ReLU'd)
    std::vector<std::vector<int>> argmax;      // per window: F winners
    util::Vector feat_dropped;                 // 3F after dropout
    std::vector<uint8_t> dropout_mask;
    util::Matrix probs;                        // 1 x K
  };
  Cache cache_;
};

}  // namespace lncl::models

