#include "models/text_cnn.h"

#include <string>

#include "obs/metrics.h"
#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/maxpool.h"
#include "nn/softmax.h"
#include "util/check.h"
#include "util/workspace.h"

namespace lncl::models {

TextCnn::TextCnn(const TextCnnConfig& config, data::EmbeddingPtr embeddings,
                 util::Rng* rng)
    : config_(config),
      embeddings_(std::move(embeddings)),
      fc_("cnn.fc",
          static_cast<int>(config.windows.size()) * config.feature_maps,
          config.num_classes, rng) {
  if (config_.trainable_embeddings) {
    trainable_ =
        std::make_unique<nn::Embedding>("cnn.emb", embeddings_->table());
  }
  for (size_t i = 0; i < config_.windows.size(); ++i) {
    convs_.push_back(std::make_unique<nn::Conv1d>(
        "cnn.conv" + std::to_string(config_.windows[i]), config_.windows[i],
        embeddings_->dim(), config_.feature_maps, nn::Conv1d::Padding::kValid,
        rng));
  }
}

void TextCnn::FeatureForward(const data::Instance& x, util::Vector* feat,
                             std::vector<util::Matrix>* conv_post,
                             std::vector<std::vector<int>>* argmax,
                             util::Matrix* embedded) const {
  util::Matrix local_embedded;
  util::Matrix* emb = embedded != nullptr ? embedded : &local_embedded;
  if (trainable_ != nullptr) {
    trainable_->Forward(x.tokens, emb);
  } else {
    embeddings_->Lookup(x.tokens, emb);
  }

  const int f = config_.feature_maps;
  feat->assign(convs_.size() * f, 0.0f);
  for (size_t wi = 0; wi < convs_.size(); ++wi) {
    util::Matrix local_post;
    util::Matrix* post =
        conv_post != nullptr ? &(*conv_post)[wi] : &local_post;
    convs_[wi]->Forward(*emb, post, util::Act::kRelu);
    util::Vector pooled;
    std::vector<int> local_arg;
    std::vector<int>* arg = argmax != nullptr ? &(*argmax)[wi] : &local_arg;
    nn::MaxOverTimeForward(*post, &pooled, arg);
    std::copy(pooled.begin(), pooled.end(),
              feat->begin() + static_cast<long>(wi) * f);
  }
}

util::Matrix TextCnn::Predict(const data::Instance& x) const {
  util::Vector feat;
  FeatureForward(x, &feat, nullptr, nullptr, nullptr);
  util::Vector logits, probs;
  fc_.Forward(feat, &logits);
  nn::Softmax(logits, &probs);
  util::Matrix out(1, config_.num_classes);
  std::copy(probs.begin(), probs.end(), out.Row(0));
  return out;
}

void TextCnn::PredictBatch(const std::vector<const data::Instance*>& xs,
                           std::vector<util::Matrix>* out) const {
  out->resize(xs.size());
  if (xs.empty()) return;

  const int f = config_.feature_maps;
  const int feat_dim = static_cast<int>(convs_.size()) * f;
  util::WorkspaceScope scope;
  util::Matrix& feats = scope.NewMatrix(static_cast<int>(xs.size()), feat_dim);
  util::Matrix& packed = scope.NewMatrix();
  util::Matrix& conv_out = scope.NewMatrix();
  util::Matrix& logits = scope.NewMatrix();
  util::Matrix& probs = scope.NewMatrix();

  if (quantized_predict_ && obs::Metrics::enabled()) {
    // Int8 serving visibility: per-call and per-instance volume through the
    // quantized path (the int8 GEMMs themselves count under gemm.int8.*).
    static obs::Counter* const calls =
        obs::Metrics::GetCounter("quantized_predict.calls");
    static obs::Counter* const instances =
        obs::Metrics::GetCounter("quantized_predict.instances");
    calls->Add(1);
    instances->Add(xs.size());
  }

  std::vector<int> tokens;
  for (const LengthBucket& bucket : BucketByLength(xs)) {
    const int batch = static_cast<int>(bucket.members.size());
    const int t = bucket.length;
    if (quantized_predict_ && obs::Metrics::enabled()) {
      // How full the int8 [B, L] blocks run (cap kMaxPredictBatch = 64) —
      // quantized serving throughput depends on this occupancy.
      static obs::Histogram* const occupancy = obs::Metrics::GetHistogram(
          "quantized_predict.bucket_occupancy", {1, 2, 4, 8, 16, 32, 64});
      occupancy->Observe(static_cast<double>(batch));
    }
    // Packed embedding gather: one (batch * t) x D block for the bucket.
    tokens.clear();
    for (int m : bucket.members) {
      tokens.insert(tokens.end(), xs[m]->tokens.begin(), xs[m]->tokens.end());
    }
    if (trainable_ != nullptr) {
      trainable_->Forward(tokens, &packed);
    } else {
      embeddings_->Lookup(tokens, &packed);
    }
    for (size_t wi = 0; wi < convs_.size(); ++wi) {
      convs_[wi]->ForwardPacked(packed, batch, t, &conv_out,
                                util::Act::kRelu);
      const int out_rows = convs_[wi]->OutRows(t);
      for (int b = 0; b < batch; ++b) {
        nn::MaxOverTimeRange(
            conv_out, b * out_rows, (b + 1) * out_rows,
            feats.Row(bucket.members[b]) + static_cast<size_t>(wi) * f);
      }
    }
  }

  // One fc GEMM + softmax over every instance of the batch (rows are
  // independent, so this matches Predict's per-instance Forward + Softmax).
  fc_.ForwardRows(feats, &logits);
  nn::SoftmaxRows(logits, &probs);
  for (size_t i = 0; i < xs.size(); ++i) {
    util::Matrix m(1, config_.num_classes);
    std::copy(probs.Row(static_cast<int>(i)),
              probs.Row(static_cast<int>(i)) + config_.num_classes, m.Row(0));
    (*out)[i] = std::move(m);
  }
}

const util::Matrix& TextCnn::ForwardTrain(const data::Instance& x,
                                          util::Rng* rng) {
  cache_.tokens = x.tokens;
  // resize, not assign: the cached matrices keep their allocations across
  // steps (Resize reuses capacity).
  cache_.conv_post.resize(convs_.size());
  cache_.argmax.resize(convs_.size());
  util::Vector feat;
  FeatureForward(x, &feat, &cache_.conv_post, &cache_.argmax,
                 &cache_.embedded);
  nn::DropoutForward(config_.dropout, rng, &feat, &cache_.dropout_mask);
  cache_.feat_dropped = feat;

  util::Vector logits, probs;
  fc_.Forward(feat, &logits);
  nn::Softmax(logits, &probs);
  cache_.probs.Resize(1, config_.num_classes);
  std::copy(probs.begin(), probs.end(), cache_.probs.Row(0));
  return cache_.probs;
}

void TextCnn::BackwardFromLogits(const util::Vector& grad_logits) {
  util::Vector grad_feat;
  fc_.Backward(cache_.feat_dropped, grad_logits, &grad_feat);
  nn::DropoutBackward(config_.dropout, cache_.dropout_mask, &grad_feat);

  const int f = config_.feature_maps;
  util::Matrix grad_embedded;
  if (trainable_ != nullptr) {
    grad_embedded.Resize(cache_.embedded.rows(), cache_.embedded.cols());
  }
  util::Matrix grad_x;
  for (size_t wi = 0; wi < convs_.size(); ++wi) {
    util::Vector grad_pooled(grad_feat.begin() + static_cast<long>(wi) * f,
                             grad_feat.begin() + static_cast<long>(wi + 1) * f);
    util::Matrix grad_post;
    nn::MaxOverTimeBackward(cache_.argmax[wi], grad_pooled,
                            cache_.conv_post[wi].rows(), &grad_post);
    nn::ReluBackward(cache_.conv_post[wi], &grad_post);
    convs_[wi]->Backward(cache_.embedded, grad_post,
                         trainable_ != nullptr ? &grad_x : nullptr);
    if (trainable_ != nullptr) grad_embedded.AddScaled(grad_x, 1.0f);
  }
  if (trainable_ != nullptr) {
    trainable_->Backward(cache_.tokens, grad_embedded);
  }
}

double TextCnn::BackwardSoftTarget(const util::Matrix& q, float w) {
  LNCL_DCHECK(q.rows() == 1 && q.cols() == config_.num_classes);
  LNCL_AUDIT_SIMPLEX(q);
  const util::Vector p(cache_.probs.Row(0),
                       cache_.probs.Row(0) + config_.num_classes);
  const util::Vector qv(q.Row(0), q.Row(0) + config_.num_classes);
  util::Vector grad_logits;
  nn::SoftmaxCrossEntropyGrad(qv, p, w, &grad_logits);
  BackwardFromLogits(grad_logits);
  return w * nn::CrossEntropy(qv, p);
}

void TextCnn::BackwardProbGrad(const util::Matrix& grad_probs, float w) {
  LNCL_DCHECK(grad_probs.rows() == 1 && grad_probs.cols() == config_.num_classes);
  const util::Vector p(cache_.probs.Row(0),
                       cache_.probs.Row(0) + config_.num_classes);
  const util::Vector gp(grad_probs.Row(0),
                        grad_probs.Row(0) + config_.num_classes);
  util::Vector grad_logits;
  nn::SoftmaxJacobianVecProduct(p, gp, w, &grad_logits);
  BackwardFromLogits(grad_logits);
}

void TextCnn::SetQuantizedPredict(bool on) {
  // Embeddings stay fp32 (a gather, not a GEMM); convolutions and the
  // classifier head take the int8 path.
  quantized_predict_ = on;
  for (auto& conv : convs_) conv->SetQuantized(on);
  fc_.SetQuantized(on);
}

std::vector<nn::Parameter*> TextCnn::Params() {
  std::vector<nn::Parameter*> params;
  if (trainable_ != nullptr) {
    for (nn::Parameter* p : trainable_->Params()) params.push_back(p);
  }
  for (auto& conv : convs_) {
    for (nn::Parameter* p : conv->Params()) params.push_back(p);
  }
  for (nn::Parameter* p : fc_.Params()) params.push_back(p);
  return params;
}

ModelFactory TextCnn::Factory(const TextCnnConfig& config,
                              data::EmbeddingPtr embeddings) {
  return [config, embeddings](util::Rng* rng) {
    return std::make_unique<TextCnn>(config, embeddings, rng);
  };
}

}  // namespace lncl::models
