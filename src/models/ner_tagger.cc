#include "models/ner_tagger.h"

#include "obs/metrics.h"
#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/softmax.h"
#include "util/check.h"
#include "util/workspace.h"

namespace lncl::models {

NerTagger::NerTagger(const NerTaggerConfig& config,
                     data::EmbeddingPtr embeddings, util::Rng* rng)
    : config_(config),
      embeddings_(std::move(embeddings)),
      conv_("ner.conv", config.conv_window, embeddings_->dim(),
            config.conv_features, nn::Conv1d::Padding::kSame, rng),
      fc_("ner.fc", config.gru_hidden, config.num_classes, rng) {
  if (config_.recurrent == NerTaggerConfig::Recurrent::kGru) {
    gru_ = std::make_unique<nn::Gru>("ner.gru", config.conv_features,
                                     config.gru_hidden, rng);
  } else {
    lstm_ = std::make_unique<nn::Lstm>("ner.lstm", config.conv_features,
                                       config.gru_hidden, rng);
  }
}

void NerTagger::RecurrentForward(const util::Matrix& input,
                                 nn::Gru::Cache* gru_cache,
                                 nn::Lstm::Cache* lstm_cache,
                                 util::Matrix* hidden) const {
  if (gru_ != nullptr) {
    gru_->Forward(input, gru_cache, hidden);
  } else {
    lstm_->Forward(input, lstm_cache, hidden);
  }
}

util::Matrix NerTagger::Predict(const data::Instance& x) const {
  util::Matrix embedded, conv_out, hidden, logits, probs;
  embeddings_->Lookup(x.tokens, &embedded);
  conv_.Forward(embedded, &conv_out, util::Act::kRelu);
  nn::Gru::Cache gru_cache;
  nn::Lstm::Cache lstm_cache;
  RecurrentForward(conv_out, &gru_cache, &lstm_cache, &hidden);
  fc_.ForwardRows(hidden, &logits);
  nn::SoftmaxRows(logits, &probs);
  return probs;
}

void NerTagger::PredictBatch(const std::vector<const data::Instance*>& xs,
                             std::vector<util::Matrix>* out) const {
  out->resize(xs.size());
  if (xs.empty()) return;

  const int k_cls = config_.num_classes;
  util::WorkspaceScope scope;
  util::Matrix& packed = scope.NewMatrix();
  util::Matrix& conv_out = scope.NewMatrix();
  util::Matrix& hidden = scope.NewMatrix();
  util::Matrix& logits = scope.NewMatrix();
  util::Matrix& probs = scope.NewMatrix();

  if (quantized_predict_ && obs::Metrics::enabled()) {
    // Int8 serving visibility: per-call and per-instance volume through the
    // quantized path (the int8 GEMMs themselves count under gemm.int8.*).
    static obs::Counter* const calls =
        obs::Metrics::GetCounter("quantized_predict.calls");
    static obs::Counter* const instances =
        obs::Metrics::GetCounter("quantized_predict.instances");
    calls->Add(1);
    instances->Add(xs.size());
  }

  std::vector<int> tokens;
  for (const LengthBucket& bucket : BucketByLength(xs)) {
    const int t = bucket.length;
    if (t == 0) {
      // Predict on an empty instance yields a 0 x K matrix.
      for (int m : bucket.members) (*out)[m] = util::Matrix(0, k_cls);
      continue;
    }
    const int batch = static_cast<int>(bucket.members.size());
    if (quantized_predict_ && obs::Metrics::enabled()) {
      // How full the int8 [B, L] blocks run (cap kMaxPredictBatch = 64) —
      // quantized serving throughput depends on this occupancy.
      static obs::Histogram* const occupancy = obs::Metrics::GetHistogram(
          "quantized_predict.bucket_occupancy", {1, 2, 4, 8, 16, 32, 64});
      occupancy->Observe(static_cast<double>(batch));
    }
    tokens.clear();
    for (int m : bucket.members) {
      tokens.insert(tokens.end(), xs[m]->tokens.begin(), xs[m]->tokens.end());
    }
    embeddings_->Lookup(tokens, &packed);
    conv_.ForwardPacked(packed, batch, t, &conv_out, util::Act::kRelu);
    if (gru_ != nullptr) {
      gru_->ForwardPacked(conv_out, batch, t, &hidden);
    } else {
      lstm_->ForwardPacked(conv_out, batch, t, &hidden);
    }
    fc_.ForwardRows(hidden, &logits);
    nn::SoftmaxRows(logits, &probs);
    for (int b = 0; b < batch; ++b) {
      util::Matrix m(t, k_cls);
      std::copy(probs.Row(b * t), probs.Row(b * t) + static_cast<size_t>(t) * k_cls,
                m.Row(0));
      (*out)[bucket.members[b]] = std::move(m);
    }
  }
}

void NerTagger::SetQuantizedPredict(bool on) {
  quantized_predict_ = on;
  conv_.SetQuantized(on);
  fc_.SetQuantized(on);
}

const util::Matrix& NerTagger::ForwardTrain(const data::Instance& x,
                                            util::Rng* rng) {
  embeddings_->Lookup(x.tokens, &cache_.embedded);
  conv_.Forward(cache_.embedded, &cache_.conv_relu, util::Act::kRelu);
  cache_.conv_dropped = cache_.conv_relu;
  nn::DropoutForward(config_.dropout, rng, &cache_.conv_dropped,
                     &cache_.dropout_mask);
  RecurrentForward(cache_.conv_dropped, &cache_.gru, &cache_.lstm,
                   &cache_.hidden);
  util::Matrix logits;
  fc_.ForwardRows(cache_.hidden, &logits);
  nn::SoftmaxRows(logits, &cache_.probs);
  return cache_.probs;
}

void NerTagger::BackwardFromLogits(const util::Matrix& grad_logits) {
  util::Matrix grad_hidden, grad_conv;
  fc_.BackwardRows(cache_.hidden, grad_logits, &grad_hidden);
  if (gru_ != nullptr) {
    gru_->Backward(cache_.conv_dropped, cache_.gru, grad_hidden, &grad_conv);
  } else {
    lstm_->Backward(cache_.conv_dropped, cache_.lstm, grad_hidden,
                    &grad_conv);
  }
  nn::DropoutBackward(config_.dropout, cache_.dropout_mask, &grad_conv);
  nn::ReluBackward(cache_.conv_relu, &grad_conv);
  conv_.Backward(cache_.embedded, grad_conv, nullptr);
}

double NerTagger::BackwardSoftTarget(const util::Matrix& q, float w) {
  LNCL_DCHECK(q.rows() == cache_.probs.rows() &&
              q.cols() == cache_.probs.cols());
  LNCL_AUDIT_SIMPLEX(q);
  util::Matrix grad_logits;
  nn::SoftmaxCrossEntropyGradRows(q, cache_.probs, w, &grad_logits);
  BackwardFromLogits(grad_logits);
  return w * nn::CrossEntropyRows(q, cache_.probs);
}

void NerTagger::BackwardProbGrad(const util::Matrix& grad_probs, float w) {
  LNCL_DCHECK(grad_probs.rows() == cache_.probs.rows());
  util::Matrix grad_logits;
  nn::SoftmaxJacobianVecProductRows(cache_.probs, grad_probs, w, &grad_logits);
  BackwardFromLogits(grad_logits);
}

std::vector<nn::Parameter*> NerTagger::Params() {
  std::vector<nn::Parameter*> params;
  for (nn::Parameter* p : conv_.Params()) params.push_back(p);
  if (gru_ != nullptr) {
    for (nn::Parameter* p : gru_->Params()) params.push_back(p);
  } else {
    for (nn::Parameter* p : lstm_->Params()) params.push_back(p);
  }
  for (nn::Parameter* p : fc_.Params()) params.push_back(p);
  return params;
}

ModelFactory NerTagger::Factory(const NerTaggerConfig& config,
                                data::EmbeddingPtr embeddings) {
  return [config, embeddings](util::Rng* rng) {
    return std::make_unique<NerTagger>(config, embeddings, rng);
  };
}

}  // namespace lncl::models
