#include "models/crf_tagger.h"

#include <algorithm>
#include <cmath>

#include "nn/activations.h"
#include "nn/dropout.h"
#include "util/chain.h"
#include "util/check.h"
#include "util/logging.h"

namespace lncl::models {

namespace {

double LogSumExp(const std::vector<double>& xs) {
  double mx = xs[0];
  for (double x : xs) mx = std::max(mx, x);
  double s = 0.0;
  for (double x : xs) s += std::exp(x - mx);
  return mx + std::log(s);
}

// log Z of the linear-chain CRF via the log-space forward recursion.
double LogPartition(const util::Matrix& unary, const util::Matrix& transition,
                    const util::Matrix& start) {
  const int t_len = unary.rows();
  const int k = unary.cols();
  std::vector<double> alpha(k), next(k), terms(k);
  for (int m = 0; m < k; ++m) alpha[m] = start(0, m) + unary(0, m);
  for (int t = 1; t < t_len; ++t) {
    for (int b = 0; b < k; ++b) {
      for (int a = 0; a < k; ++a) terms[a] = alpha[a] + transition(a, b);
      next[b] = LogSumExp(terms) + unary(t, b);
    }
    alpha = next;
  }
  return LogSumExp(alpha);
}

}  // namespace

CrfTagger::CrfTagger(const CrfTaggerConfig& config,
                     data::EmbeddingPtr embeddings, util::Rng* rng)
    : config_(config),
      embeddings_(std::move(embeddings)),
      conv_("crf.conv", config.conv_window, embeddings_->dim(),
            config.conv_features, nn::Conv1d::Padding::kSame, rng),
      gru_("crf.gru", config.conv_features, config.gru_hidden, rng),
      fc_("crf.fc", config.gru_hidden, config.num_classes, rng),
      transition_("crf.transition", config.num_classes, config.num_classes),
      start_("crf.start", 1, config.num_classes) {}

void CrfTagger::UnaryForward(const data::Instance& x, bool train,
                             util::Rng* rng, util::Matrix* unary) const {
  if (train) {
    embeddings_->Lookup(x.tokens, &cache_.embedded);
    conv_.Forward(cache_.embedded, &cache_.conv_relu, util::Act::kRelu);
    cache_.conv_dropped = cache_.conv_relu;
    nn::DropoutForward(config_.dropout, rng, &cache_.conv_dropped,
                       &cache_.dropout_mask);
    gru_.Forward(cache_.conv_dropped, &cache_.gru, &cache_.hidden);
    fc_.ForwardRows(cache_.hidden, unary);
  } else {
    util::Matrix embedded, conv_out, hidden;
    embeddings_->Lookup(x.tokens, &embedded);
    conv_.Forward(embedded, &conv_out, util::Act::kRelu);
    nn::Gru::Cache gru_cache;
    gru_.Forward(conv_out, &gru_cache, &hidden);
    fc_.ForwardRows(hidden, unary);
  }
}

void CrfTagger::BuildPotentials(const util::Matrix& unary,
                                util::Vector* prior,
                                util::Matrix* transition_potential,
                                util::Matrix* emission) const {
  const int t_len = unary.rows();
  const int k = config_.num_classes;
  // Global shifts keep the exponentials bounded; per-step constants do not
  // change the chain posteriors.
  float start_max = start_.value(0, 0);
  for (int m = 1; m < k; ++m) start_max = std::max(start_max, start_.value(0, m));
  prior->resize(k);
  for (int m = 0; m < k; ++m) {
    (*prior)[m] = std::exp(start_.value(0, m) - start_max);
  }
  float trans_max = transition_.value(0, 0);
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      trans_max = std::max(trans_max, transition_.value(a, b));
    }
  }
  transition_potential->Resize(k, k);
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      (*transition_potential)(a, b) =
          std::exp(transition_.value(a, b) - trans_max);
    }
  }
  emission->Resize(t_len, k);
  for (int t = 0; t < t_len; ++t) {
    float row_max = unary(t, 0);
    for (int m = 1; m < k; ++m) row_max = std::max(row_max, unary(t, m));
    for (int m = 0; m < k; ++m) {
      (*emission)(t, m) = std::exp(unary(t, m) - row_max);
    }
  }
}

util::Matrix CrfTagger::Predict(const data::Instance& x) const {
  util::Matrix unary;
  UnaryForward(x, /*train=*/false, nullptr, &unary);
  util::Vector prior;
  util::Matrix transition_potential, emission, marginals;
  BuildPotentials(unary, &prior, &transition_potential, &emission);
  util::ChainForwardBackward(prior, transition_potential, emission,
                             &marginals, nullptr);
  return marginals;
}

std::vector<int> CrfTagger::Decode(const data::Instance& x) const {
  util::Matrix unary;
  UnaryForward(x, /*train=*/false, nullptr, &unary);
  util::Vector prior;
  util::Matrix transition_potential, emission;
  BuildPotentials(unary, &prior, &transition_potential, &emission);
  std::vector<int> path;
  util::ChainViterbi(prior, transition_potential, emission, &path);
  return path;
}

const util::Matrix& CrfTagger::ForwardTrain(const data::Instance& x,
                                            util::Rng* rng) {
  UnaryForward(x, /*train=*/true, rng, &cache_.unary);
  util::Vector prior;
  util::Matrix transition_potential, emission;
  BuildPotentials(cache_.unary, &prior, &transition_potential, &emission);
  cache_.xi_sum.Resize(config_.num_classes, config_.num_classes);
  util::ChainForwardBackward(prior, transition_potential, emission,
                             &cache_.marginals, &cache_.xi_sum);
  return cache_.marginals;
}

void CrfTagger::BackwardFromUnary(const util::Matrix& grad_unary) {
  util::Matrix grad_hidden, grad_conv;
  fc_.BackwardRows(cache_.hidden, grad_unary, &grad_hidden);
  gru_.Backward(cache_.conv_dropped, cache_.gru, grad_hidden, &grad_conv);
  nn::DropoutBackward(config_.dropout, cache_.dropout_mask, &grad_conv);
  nn::ReluBackward(cache_.conv_relu, &grad_conv);
  conv_.Backward(cache_.embedded, grad_conv, nullptr);
}

double CrfTagger::BackwardSoftTarget(const util::Matrix& q, float w) {
  const int t_len = cache_.unary.rows();
  const int k = config_.num_classes;
  LNCL_DCHECK(q.rows() == t_len && q.cols() == k);
  LNCL_AUDIT_SIMPLEX(q);

  // Harden the target rows into the supervision sequence.
  std::vector<int> y(t_len);
  for (int t = 0; t < t_len; ++t) {
    const float* row = q.Row(t);
    y[t] = static_cast<int>(std::max_element(row, row + k) - row);
  }

  // NLL = log Z - score(y).
  double score = start_.value(0, y[0]);
  for (int t = 0; t < t_len; ++t) {
    score += cache_.unary(t, y[t]);
    if (t > 0) score += transition_.value(y[t - 1], y[t]);
  }
  const double log_z =
      LogPartition(cache_.unary, transition_.value, start_.value);

  // Gradients: (posterior expectation - empirical count).
  util::Matrix grad_unary(t_len, k);
  for (int t = 0; t < t_len; ++t) {
    for (int m = 0; m < k; ++m) {
      grad_unary(t, m) = w * (cache_.marginals(t, m) - (y[t] == m ? 1.0f : 0.0f));
    }
  }
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      transition_.grad(a, b) += w * cache_.xi_sum(a, b);
    }
  }
  for (int t = 1; t < t_len; ++t) {
    transition_.grad(y[t - 1], y[t]) -= w;
  }
  for (int m = 0; m < k; ++m) {
    start_.grad(0, m) +=
        w * (cache_.marginals(0, m) - (y[0] == m ? 1.0f : 0.0f));
  }
  BackwardFromUnary(grad_unary);
  return w * (log_z - score);
}

void CrfTagger::BackwardProbGrad(const util::Matrix&, float) {
  LNCL_CHECK(false &&
             "CrfTagger does not support per-item probability gradients "
             "(crowd-layer training); use NerTagger for that baseline");
}

std::vector<nn::Parameter*> CrfTagger::Params() {
  std::vector<nn::Parameter*> params;
  for (nn::Parameter* p : conv_.Params()) params.push_back(p);
  for (nn::Parameter* p : gru_.Params()) params.push_back(p);
  for (nn::Parameter* p : fc_.Params()) params.push_back(p);
  params.push_back(&transition_);
  params.push_back(&start_);
  return params;
}

ModelFactory CrfTagger::Factory(const CrfTaggerConfig& config,
                                data::EmbeddingPtr embeddings) {
  return [config, embeddings](util::Rng* rng) {
    return std::make_unique<CrfTagger>(config, embeddings, rng);
  };
}

}  // namespace lncl::models
