#include "models/logreg.h"

#include <algorithm>

#include "nn/softmax.h"
#include "util/check.h"
#include "util/workspace.h"

namespace lncl::models {

LogisticRegression::LogisticRegression(int num_classes,
                                       data::EmbeddingPtr embeddings,
                                       util::Rng* rng)
    : embeddings_(std::move(embeddings)),
      fc_("logreg.fc", embeddings_->dim(), num_classes, rng) {}

util::Vector LogisticRegression::Features(const data::Instance& x) const {
  util::Matrix embedded;
  embeddings_->Lookup(x.tokens, &embedded);
  util::Vector feat(embeddings_->dim(), 0.0f);
  if (embedded.rows() == 0) return feat;
  for (int t = 0; t < embedded.rows(); ++t) {
    const float* row = embedded.Row(t);
    for (int d = 0; d < embedded.cols(); ++d) feat[d] += row[d];
  }
  const float inv = 1.0f / static_cast<float>(embedded.rows());
  for (float& v : feat) v *= inv;
  return feat;
}

util::Matrix LogisticRegression::Predict(const data::Instance& x) const {
  util::Vector logits, probs;
  fc_.Forward(Features(x), &logits);
  nn::Softmax(logits, &probs);
  util::Matrix out(1, num_classes());
  std::copy(probs.begin(), probs.end(), out.Row(0));
  return out;
}

void LogisticRegression::PredictBatch(
    const std::vector<const data::Instance*>& xs,
    std::vector<util::Matrix>* out) const {
  out->resize(xs.size());
  if (xs.empty()) return;

  const int dim = embeddings_->dim();
  const int k_cls = num_classes();
  util::WorkspaceScope scope;
  util::Matrix& feats = scope.NewMatrix(static_cast<int>(xs.size()), dim);
  util::Matrix& embedded = scope.NewMatrix();
  util::Matrix& logits = scope.NewMatrix();
  util::Matrix& probs = scope.NewMatrix();

  // Same accumulation order as Features(), written into row i of the stack.
  for (size_t i = 0; i < xs.size(); ++i) {
    embeddings_->Lookup(xs[i]->tokens, &embedded);
    float* feat = feats.Row(static_cast<int>(i));
    std::fill(feat, feat + dim, 0.0f);
    if (embedded.rows() == 0) continue;
    for (int t = 0; t < embedded.rows(); ++t) {
      const float* row = embedded.Row(t);
      for (int d = 0; d < embedded.cols(); ++d) feat[d] += row[d];
    }
    const float inv = 1.0f / static_cast<float>(embedded.rows());
    for (int d = 0; d < dim; ++d) feat[d] *= inv;
  }

  fc_.ForwardRows(feats, &logits);
  nn::SoftmaxRows(logits, &probs);
  for (size_t i = 0; i < xs.size(); ++i) {
    util::Matrix m(1, k_cls);
    std::copy(probs.Row(static_cast<int>(i)),
              probs.Row(static_cast<int>(i)) + k_cls, m.Row(0));
    (*out)[i] = std::move(m);
  }
}

const util::Matrix& LogisticRegression::ForwardTrain(const data::Instance& x,
                                                     util::Rng*) {
  feat_ = Features(x);
  util::Vector logits, probs;
  fc_.Forward(feat_, &logits);
  nn::Softmax(logits, &probs);
  probs_.Resize(1, num_classes());
  std::copy(probs.begin(), probs.end(), probs_.Row(0));
  return probs_;
}

double LogisticRegression::BackwardSoftTarget(const util::Matrix& q,
                                               float w) {
  LNCL_DCHECK(q.rows() == 1 && q.cols() == num_classes());
  LNCL_AUDIT_SIMPLEX(q);
  const util::Vector p(probs_.Row(0), probs_.Row(0) + num_classes());
  const util::Vector qv(q.Row(0), q.Row(0) + num_classes());
  util::Vector grad_logits;
  nn::SoftmaxCrossEntropyGrad(qv, p, w, &grad_logits);
  fc_.Backward(feat_, grad_logits, nullptr);
  return w * nn::CrossEntropy(qv, p);
}

void LogisticRegression::BackwardProbGrad(const util::Matrix& grad_probs,
                                          float w) {
  LNCL_DCHECK(grad_probs.rows() == 1);
  const util::Vector p(probs_.Row(0), probs_.Row(0) + num_classes());
  const util::Vector gp(grad_probs.Row(0), grad_probs.Row(0) + num_classes());
  util::Vector grad_logits;
  nn::SoftmaxJacobianVecProduct(p, gp, w, &grad_logits);
  fc_.Backward(feat_, grad_logits, nullptr);
}

ModelFactory LogisticRegression::Factory(int num_classes,
                                         data::EmbeddingPtr embeddings) {
  return [num_classes, embeddings](util::Rng* rng) {
    return std::make_unique<LogisticRegression>(num_classes, embeddings, rng);
  };
}

}  // namespace lncl::models
