#include "models/model.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"

namespace lncl::models {

void Model::PredictBatch(const std::vector<const data::Instance*>& xs,
                         std::vector<util::Matrix>* out) const {
  out->resize(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    (*out)[i] = Predict(*xs[i]);
  }
}

std::vector<util::Matrix> Model::PredictBatch(
    const data::Dataset& dataset, const std::vector<int>& indices) const {
  std::vector<const data::Instance*> xs;
  xs.reserve(indices.size());
  for (int idx : indices) xs.push_back(&dataset.instances[idx]);
  std::vector<util::Matrix> out;
  PredictBatch(xs, &out);
  return out;
}

std::vector<util::Matrix> Model::PredictBatch(
    const data::Dataset& dataset) const {
  std::vector<const data::Instance*> xs;
  xs.reserve(dataset.instances.size());
  for (const data::Instance& x : dataset.instances) xs.push_back(&x);
  std::vector<util::Matrix> out;
  PredictBatch(xs, &out);
  return out;
}

std::vector<LengthBucket> BucketByLength(
    const std::vector<const data::Instance*>& xs) {
  std::map<int, std::vector<int>> by_length;
  for (size_t i = 0; i < xs.size(); ++i) {
    by_length[static_cast<int>(xs[i]->tokens.size())].push_back(
        static_cast<int>(i));
  }
  std::vector<LengthBucket> buckets;
  for (auto& [length, members] : by_length) {
    for (size_t at = 0; at < members.size(); at += kMaxPredictBatch) {
      LengthBucket b;
      b.length = length;
      const size_t end = std::min(members.size(),
                                  at + static_cast<size_t>(kMaxPredictBatch));
      b.members.assign(members.begin() + static_cast<long>(at),
                       members.begin() + static_cast<long>(end));
      buckets.push_back(std::move(b));
    }
  }
  if (obs::Metrics::enabled()) {
    // Packing efficiency of the batched prediction path: how full the
    // equal-length [B, L] blocks actually run (cap kMaxPredictBatch = 64).
    static obs::Histogram* const occupancy = obs::Metrics::GetHistogram(
        "predict_batch.bucket_occupancy", {1, 2, 4, 8, 16, 32, 64});
    static obs::Counter* const instances =
        obs::Metrics::GetCounter("predict_batch.instances");
    for (const LengthBucket& b : buckets) {
      occupancy->Observe(static_cast<double>(b.members.size()));
    }
    instances->Add(xs.size());
  }
  return buckets;
}

}  // namespace lncl::models
