#pragma once

#include <memory>

#include "data/embedding.h"
#include "models/model.h"
#include "nn/conv1d.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/lstm.h"

namespace lncl::models {

// The Rodrigues & Pereira (2018) sequence tagger used by the paper for NER:
// static word embeddings, a same-padded width-5 convolution with ReLU,
// dropout, a recurrent layer, and a per-token softmax layer. Widths default
// to a CPU-friendly scale (the paper used 512 conv features and 50 GRU
// units). The recurrent cell is a GRU as in the paper; an LSTM alternative
// is available for the recurrent-cell ablation.
struct NerTaggerConfig {
  enum class Recurrent { kGru, kLstm };

  int conv_window = 5;
  int conv_features = 64;
  int gru_hidden = 32;  // hidden size of the recurrent layer (either cell)
  Recurrent recurrent = Recurrent::kGru;
  double dropout = 0.5;
  int num_classes = 9;
};

class NerTagger : public Model {
 public:
  NerTagger(const NerTaggerConfig& config, data::EmbeddingPtr embeddings,
            util::Rng* rng);

  int num_classes() const override { return config_.num_classes; }
  int NumItems(const data::Instance& x) const override {
    return static_cast<int>(x.tokens.size());
  }

  util::Matrix Predict(const data::Instance& x) const override;
  // Length-bucketed batched prediction: packed embedding gather, one conv
  // GEMM per bucket, time-major batched recurrence, and one fc GEMM over all
  // token rows. Bit-identical to looping Predict
  // (tests/batch_predict_test.cc).
  void PredictBatch(const std::vector<const data::Instance*>& xs,
                    std::vector<util::Matrix>* out) const override;
  const util::Matrix& ForwardTrain(const data::Instance& x,
                                   util::Rng* rng) override;
  double BackwardSoftTarget(const util::Matrix& q, float w) override;
  void BackwardProbGrad(const util::Matrix& grad_probs, float w) override;
  std::vector<nn::Parameter*> Params() override;
  // Int8 serving: convolution + per-token classifier head. The recurrent
  // cell stays fp32 — quantization error would compound through the
  // sequential state, unlike the feed-forward layers (DESIGN.md §9).
  void SetQuantizedPredict(bool on) override;

  static ModelFactory Factory(const NerTaggerConfig& config,
                              data::EmbeddingPtr embeddings);

 private:
  // Recurrent forward over `input`, into hidden (and the training caches).
  void RecurrentForward(const util::Matrix& input, nn::Gru::Cache* gru_cache,
                        nn::Lstm::Cache* lstm_cache,
                        util::Matrix* hidden) const;

  void BackwardFromLogits(const util::Matrix& grad_logits);

  NerTaggerConfig config_;
  data::EmbeddingPtr embeddings_;
  nn::Conv1d conv_;
  std::unique_ptr<nn::Gru> gru_;    // exactly one of gru_/lstm_ is set
  std::unique_ptr<nn::Lstm> lstm_;
  nn::Linear fc_;
  bool quantized_predict_ = false;  // mirrors the layers' int8 toggle

  struct Cache {
    util::Matrix embedded;     // T x D
    util::Matrix conv_relu;    // T x F (post-ReLU, pre-dropout)
    util::Matrix conv_dropped; // T x F (recurrent-layer input)
    std::vector<uint8_t> dropout_mask;
    nn::Gru::Cache gru;
    nn::Lstm::Cache lstm;
    util::Matrix hidden;       // T x H
    util::Matrix probs;        // T x K
  };
  Cache cache_;
};

}  // namespace lncl::models

