#pragma once

#include "data/embedding.h"
#include "models/model.h"
#include "nn/linear.h"

namespace lncl::models {

// Multinomial logistic regression over mean-pooled word embeddings.
//
// This is the classifier of the original Raykar et al. (2010) EM model,
// which the paper reports as a baseline: a single softmax layer on a fixed
// sentence representation (here: the average of the static embeddings).
class LogisticRegression : public Model {
 public:
  LogisticRegression(int num_classes, data::EmbeddingPtr embeddings,
                     util::Rng* rng);

  int num_classes() const override { return fc_.out_dim(); }
  int NumItems(const data::Instance&) const override { return 1; }

  util::Matrix Predict(const data::Instance& x) const override;
  // Batched prediction: mean-pooled features stacked into one B x D matrix,
  // then a single fc GEMM + row softmax. Bit-identical to looping Predict
  // (no bucketing needed — only the pooling loop depends on length).
  void PredictBatch(const std::vector<const data::Instance*>& xs,
                    std::vector<util::Matrix>* out) const override;
  const util::Matrix& ForwardTrain(const data::Instance& x,
                                   util::Rng* rng) override;
  double BackwardSoftTarget(const util::Matrix& q, float w) override;
  void BackwardProbGrad(const util::Matrix& grad_probs, float w) override;
  std::vector<nn::Parameter*> Params() override { return fc_.Params(); }

  static ModelFactory Factory(int num_classes, data::EmbeddingPtr embeddings);

 private:
  util::Vector Features(const data::Instance& x) const;

  data::EmbeddingPtr embeddings_;
  nn::Linear fc_;

  util::Vector feat_;
  util::Matrix probs_;
};

}  // namespace lncl::models

