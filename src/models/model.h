#ifndef LNCL_MODELS_MODEL_H_
#define LNCL_MODELS_MODEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/parameter.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace lncl::models {

// Common interface for trainable classifiers.
//
// The library views every task through the item lens (see data/dataset.h):
// a model maps an instance to an (items x K) matrix of class distributions —
// one row for sentence classification, one row per token for sequence
// tagging. This lets the EM-style trainers (Logic-LNCL, AggNet, Raykar,
// two-stage) and the crowd-layer baselines share a single code path across
// both of the paper's applications.
//
// Training protocol: call ForwardTrain (dropout active, cache retained),
// then exactly one of the Backward* methods, which accumulates parameter
// gradients; the optimizer's Step() later consumes them.
//
// Threading: the const methods (Predict) are safe to call concurrently on
// one instance — layer scratch buffers are thread-local — which is what the
// parallel E-step relies on. The mutable training protocol is not: one
// model replica per thread slot, with gradients merged in fixed slot order,
// is how the sharded trainer uses them (see core/trainer.h and
// DESIGN.md §5).
class Model {
 public:
  virtual ~Model() = default;

  virtual int num_classes() const = 0;
  virtual int NumItems(const data::Instance& x) const = 0;

  // Evaluation-mode prediction (no dropout): items x K row-stochastic matrix.
  virtual util::Matrix Predict(const data::Instance& x) const = 0;

  // Training-mode forward. The returned reference stays valid until the next
  // ForwardTrain call on this model.
  virtual const util::Matrix& ForwardTrain(const data::Instance& x,
                                           util::Rng* rng) = 0;

  // Accumulates gradients of  w * sum_items CE(q_row, p_row)  and returns
  // that loss. q must be items x K.
  virtual double BackwardSoftTarget(const util::Matrix& q, float w) = 0;

  // Accumulates gradients for a caller-provided dLoss/dprobs (items x K),
  // scaled by w. Used by the crowd-layer baselines.
  virtual void BackwardProbGrad(const util::Matrix& grad_probs, float w) = 0;

  virtual std::vector<nn::Parameter*> Params() = 0;
};

// Builds a freshly initialized model; each call must produce independent
// parameters (weights drawn from `rng`).
using ModelFactory =
    std::function<std::unique_ptr<Model>(util::Rng* rng)>;

}  // namespace lncl::models

#endif  // LNCL_MODELS_MODEL_H_
