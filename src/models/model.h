#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/parameter.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace lncl::models {

// Common interface for trainable classifiers.
//
// The library views every task through the item lens (see data/dataset.h):
// a model maps an instance to an (items x K) matrix of class distributions —
// one row for sentence classification, one row per token for sequence
// tagging. This lets the EM-style trainers (Logic-LNCL, AggNet, Raykar,
// two-stage) and the crowd-layer baselines share a single code path across
// both of the paper's applications.
//
// Training protocol: call ForwardTrain (dropout active, cache retained),
// then exactly one of the Backward* methods, which accumulates parameter
// gradients; the optimizer's Step() later consumes them.
//
// Threading: the const methods (Predict) are safe to call concurrently on
// one instance — layer scratch buffers are thread-local — which is what the
// parallel E-step relies on. The mutable training protocol is not: one
// model replica per thread slot, with gradients merged in fixed slot order,
// is how the sharded trainer uses them (see core/trainer.h and
// DESIGN.md §5).
class Model {
 public:
  virtual ~Model() = default;

  virtual int num_classes() const = 0;
  virtual int NumItems(const data::Instance& x) const = 0;

  // Evaluation-mode prediction (no dropout): items x K row-stochastic matrix.
  virtual util::Matrix Predict(const data::Instance& x) const = 0;

  // Batched evaluation-mode prediction: (*out)[i] is the prediction for
  // *xs[i]. The base implementation loops Predict; TextCnn, NerTagger, and
  // LogisticRegression override it with length-bucketed packed kernels
  // (embedding gather + [B*L, .] GEMMs + time-major recurrence) that produce
  // results byte-for-byte equal to the per-instance path — the batch
  // dimension only adds GEMM rows, it never reorders any reduction
  // (tests/batch_predict_test.cc). Thread-safety matches Predict: batch
  // temporaries live in the per-thread util::Workspace arena.
  virtual void PredictBatch(const std::vector<const data::Instance*>& xs,
                            std::vector<util::Matrix>* out) const;

  // Convenience forms over a dataset: predictions for
  // dataset.instances[indices[...]] / for every instance.
  std::vector<util::Matrix> PredictBatch(const data::Dataset& dataset,
                                         const std::vector<int>& indices) const;
  std::vector<util::Matrix> PredictBatch(const data::Dataset& dataset) const;

  // Training-mode forward. The returned reference stays valid until the next
  // ForwardTrain call on this model.
  virtual const util::Matrix& ForwardTrain(const data::Instance& x,
                                           util::Rng* rng) = 0;

  // Accumulates gradients of  w * sum_items CE(q_row, p_row)  and returns
  // that loss. q must be items x K.
  virtual double BackwardSoftTarget(const util::Matrix& q, float w) = 0;

  // Accumulates gradients for a caller-provided dLoss/dprobs (items x K),
  // scaled by w. Used by the crowd-layer baselines.
  virtual void BackwardProbGrad(const util::Matrix& grad_probs, float w) = 0;

  virtual std::vector<nn::Parameter*> Params() = 0;

  // Toggles the post-training int8 serving mode for subsequent Predict /
  // PredictBatch calls (see nn/quantize.h). The default is a no-op: models
  // without a quantizable stack simply keep serving fp32. Quantization
  // happens eagerly inside the call, so it must not race concurrent
  // predictions — the trainers toggle it from the single-threaded serving
  // entry points (core::LogicLncl::PredictStudentBatch and friends), never
  // during the parallel E-step.
  virtual void SetQuantizedPredict(bool /*on*/) {}
};

// Builds a freshly initialized model; each call must produce independent
// parameters (weights drawn from `rng`).
using ModelFactory =
    std::function<std::unique_ptr<Model>(util::Rng* rng)>;

// Ceiling on the instances packed into one [B, L] block by the batched
// prediction kernels: bounds the workspace high-water mark (the packed
// buffers scale with B * L) without affecting results — per-row arithmetic
// is independent of the bucket composition.
inline constexpr int kMaxPredictBatch = 64;

// One equal-length group of a prediction batch: positions (into the `xs`
// span handed to PredictBatch) of the instances with `length` tokens, capped
// at kMaxPredictBatch members per bucket.
struct LengthBucket {
  int length = 0;
  std::vector<int> members;
};

// Deterministic grouping of a batch by token count (ascending length,
// positions in input order, oversize groups split at the cap).
std::vector<LengthBucket> BucketByLength(
    const std::vector<const data::Instance*>& xs);

}  // namespace lncl::models

