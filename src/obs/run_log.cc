#include "obs/run_log.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <vector>

namespace lncl::obs {

namespace {

// Round-trip double formatting (no locale, no trailing-zero padding).
std::string Num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// Registry of live loggers plus the lock that serializes their writes, so
// FlushRunLogs() can flush from the abort path while the training thread is
// mid-line. Leaked: CheckFailure may fire during static teardown.
struct LoggerRegistry {
  std::mutex mu;
  std::vector<JsonlRunLogger*> loggers;
};

LoggerRegistry& GetRegistry() {
  static LoggerRegistry* registry = new LoggerRegistry();
  return *registry;
}

}  // namespace

JsonlRunLogger::JsonlRunLogger(const std::string& path, std::string label)
    : os_(path), label_(std::move(label)) {
  LoggerRegistry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.loggers.push_back(this);
}

JsonlRunLogger::~JsonlRunLogger() {
  LoggerRegistry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.loggers.erase(
      std::remove(registry.loggers.begin(), registry.loggers.end(), this),
      registry.loggers.end());
}

void JsonlRunLogger::Flush() {
  if (os_) os_.flush();
}

void FlushRunLogs() {
  LoggerRegistry& registry = GetRegistry();
  // try_lock, not lock: the caller may be aborting from inside a logging
  // write on this very thread (registry.mu held). Best-effort flush beats a
  // deadlock where an abort should be.
  const bool locked = registry.mu.try_lock();
  for (JsonlRunLogger* logger : registry.loggers) logger->Flush();
  if (locked) registry.mu.unlock();
}

void JsonlRunLogger::OnEpoch(const EpochRecord& r) {
  LoggerRegistry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (!os_) return;
  os_ << "{\"schema\": \"lncl.em_run.v1\", \"record\": \"epoch\""
      << ", \"run\": \"" << label_ << "\""
      << ", \"epoch\": " << r.epoch << ", \"k\": " << Num(r.k)
      << ", \"loss\": " << Num(r.loss)
      << ", \"dev_score\": " << Num(r.dev_score)
      << ", \"is_best\": " << (r.is_best ? "true" : "false")
      << ", \"mean_kl_qa_qb\": " << Num(r.mean_kl_qa_qb)
      << ", \"rule_satisfaction\": " << Num(r.rule_satisfaction)
      << ", \"projected_items\": " << r.projected_items
      << ", \"confusion_diag_mass\": " << Num(r.confusion_diag_mass)
      << ", \"confusion_drift\": " << Num(r.confusion_drift)
      << ", \"phase_seconds\": {\"m_step\": " << Num(r.m_step_seconds)
      << ", \"confusion\": " << Num(r.confusion_seconds)
      << ", \"e_step\": " << Num(r.e_step_seconds)
      << ", \"dev_eval\": " << Num(r.dev_eval_seconds) << "}"
      << ", \"e_step_instances_per_second\": "
      << Num(r.e_step_instances_per_second) << ", \"metric_deltas\": {";
  for (size_t i = 0; i < r.metric_deltas.size(); ++i) {
    os_ << (i ? ", " : "") << "\"" << r.metric_deltas[i].first
        << "\": " << r.metric_deltas[i].second;
  }
  os_ << "}}\n";
  os_.flush();
}

void JsonlRunLogger::OnFitEnd(const FitSummary& s) {
  LoggerRegistry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (!os_) return;
  os_ << "{\"schema\": \"lncl.em_run.v1\", \"record\": \"fit_end\""
      << ", \"run\": \"" << label_ << "\""
      << ", \"best_epoch\": " << s.best_epoch
      << ", \"epochs_run\": " << s.epochs_run
      << ", \"early_stopped\": " << (s.early_stopped ? "true" : "false")
      << ", \"best_dev_score\": " << Num(s.best_dev_score) << "}\n";
  os_.flush();
}

}  // namespace lncl::obs
