#include "obs/run_log.h"

#include <sstream>

namespace lncl::obs {

namespace {

// Round-trip double formatting (no locale, no trailing-zero padding).
std::string Num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

JsonlRunLogger::JsonlRunLogger(const std::string& path, std::string label)
    : os_(path), label_(std::move(label)) {}

void JsonlRunLogger::OnEpoch(const EpochRecord& r) {
  if (!os_) return;
  os_ << "{\"schema\": \"lncl.em_run.v1\", \"record\": \"epoch\""
      << ", \"run\": \"" << label_ << "\""
      << ", \"epoch\": " << r.epoch << ", \"k\": " << Num(r.k)
      << ", \"loss\": " << Num(r.loss)
      << ", \"dev_score\": " << Num(r.dev_score)
      << ", \"is_best\": " << (r.is_best ? "true" : "false")
      << ", \"mean_kl_qa_qb\": " << Num(r.mean_kl_qa_qb)
      << ", \"rule_satisfaction\": " << Num(r.rule_satisfaction)
      << ", \"projected_items\": " << r.projected_items
      << ", \"confusion_diag_mass\": " << Num(r.confusion_diag_mass)
      << ", \"confusion_drift\": " << Num(r.confusion_drift)
      << ", \"phase_seconds\": {\"m_step\": " << Num(r.m_step_seconds)
      << ", \"confusion\": " << Num(r.confusion_seconds)
      << ", \"e_step\": " << Num(r.e_step_seconds)
      << ", \"dev_eval\": " << Num(r.dev_eval_seconds) << "}"
      << ", \"e_step_instances_per_second\": "
      << Num(r.e_step_instances_per_second) << ", \"metric_deltas\": {";
  for (size_t i = 0; i < r.metric_deltas.size(); ++i) {
    os_ << (i ? ", " : "") << "\"" << r.metric_deltas[i].first
        << "\": " << r.metric_deltas[i].second;
  }
  os_ << "}}\n";
  os_.flush();
}

void JsonlRunLogger::OnFitEnd(const FitSummary& s) {
  if (!os_) return;
  os_ << "{\"schema\": \"lncl.em_run.v1\", \"record\": \"fit_end\""
      << ", \"run\": \"" << label_ << "\""
      << ", \"best_epoch\": " << s.best_epoch
      << ", \"epochs_run\": " << s.epochs_run
      << ", \"early_stopped\": " << (s.early_stopped ? "true" : "false")
      << ", \"best_dev_score\": " << Num(s.best_dev_score) << "}\n";
  os_.flush();
}

}  // namespace lncl::obs
