#include "obs/perf_counters.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace lncl::obs {

// ---------------------------------------------------------------------------
// CounterValues
// ---------------------------------------------------------------------------

CounterValues& CounterValues::operator+=(const CounterValues& o) {
  cycles += o.cycles;
  instructions += o.instructions;
  cache_references += o.cache_references;
  cache_misses += o.cache_misses;
  branch_misses += o.branch_misses;
  task_clock_ns += o.task_clock_ns;
  page_faults += o.page_faults;
  context_switches += o.context_switches;
  return *this;
}

namespace {

uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

CounterValues CounterValues::operator-(const CounterValues& o) const {
  CounterValues d;
  d.cycles = SatSub(cycles, o.cycles);
  d.instructions = SatSub(instructions, o.instructions);
  d.cache_references = SatSub(cache_references, o.cache_references);
  d.cache_misses = SatSub(cache_misses, o.cache_misses);
  d.branch_misses = SatSub(branch_misses, o.branch_misses);
  d.task_clock_ns = SatSub(task_clock_ns, o.task_clock_ns);
  d.page_faults = SatSub(page_faults, o.page_faults);
  d.context_switches = SatSub(context_switches, o.context_switches);
  return d;
}

double CounterValues::Ipc() const {
  return cycles == 0 ? 0.0
                     : static_cast<double>(instructions) /
                           static_cast<double>(cycles);
}

double CounterValues::CacheMissRate() const {
  return cache_references == 0 ? 0.0
                               : static_cast<double>(cache_misses) /
                                     static_cast<double>(cache_references);
}

// ---------------------------------------------------------------------------
// PerfCounters
// ---------------------------------------------------------------------------

namespace {

// Test hook state + process-wide availability summary (what any thread saw).
std::atomic<int> g_forced_open_errno{0};
std::atomic<bool> g_hw_warned{false};
std::atomic<bool> g_sw_warned{false};
std::atomic<bool> g_hw_ever_available{false};
std::atomic<bool> g_sw_ever_available{false};

void WarnOnce(std::atomic<bool>* flag, const char* group, int err) {
  bool expected = false;
  if (!flag->compare_exchange_strong(expected, true)) return;
  std::fprintf(  // lint: allow(io)
      stderr,
      "[obs] perf %s counters unavailable (%s); recording zeros for them\n",
      group, std::strerror(err));
}

#if defined(__linux__)

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  const int forced = g_forced_open_errno.load(std::memory_order_relaxed);
  if (forced != 0) {
    errno = forced;
    return -1;
  }
  return syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr MakeAttr(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // measurable even under perf_event_paranoid=2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

// Opens one all-or-nothing group for the calling thread. Returns the leader
// fd or -1; appends every opened fd to *fds. A partially-openable group is
// closed and reported dark rather than silently remapping counter slots.
int OpenGroup(const EventSpec* specs, int n, std::vector<int>* fds,
              int* out_errno) {
  int leader = -1;
  std::vector<int> opened;
  for (int i = 0; i < n; ++i) {
    perf_event_attr attr = MakeAttr(specs[i].type, specs[i].config);
    // Start the leader disabled so the whole group enables atomically once
    // every sibling is attached.
    if (i == 0) attr.disabled = 1;
    const long fd =
        PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, leader, /*flags=*/0);
    if (fd < 0) {
      *out_errno = errno;
      for (const int f : opened) close(f);
      return -1;
    }
    opened.push_back(static_cast<int>(fd));
    if (i == 0) leader = static_cast<int>(fd);
  }
  ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  fds->insert(fds->end(), opened.begin(), opened.end());
  return leader;
}

// PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
// Values are multiplexing-scaled by enabled/running when the kernel rotated
// the group off the PMU.
bool ReadGroup(int leader, int n, uint64_t* out) {
  const int header = 3;
  uint64_t buf[3 + 8] = {0};
  const ssize_t want =
      static_cast<ssize_t>(sizeof(uint64_t)) * (header + n);
  const ssize_t got = read(leader, buf, static_cast<size_t>(want));
  if (got < want || buf[0] != static_cast<uint64_t>(n)) return false;
  const uint64_t enabled = buf[1];
  const uint64_t running = buf[2];
  for (int i = 0; i < n; ++i) {
    uint64_t v = buf[header + i];
    if (running != 0 && running < enabled) {
      const double scaled = static_cast<double>(v) *
                            (static_cast<double>(enabled) /
                             static_cast<double>(running));
      v = static_cast<uint64_t>(std::llround(scaled));
    }
    out[i] = v;
  }
  return true;
}

#endif  // defined(__linux__)

}  // namespace

PerfCounters::PerfCounters() {
#if defined(__linux__)
  static const EventSpec kHwEvents[] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
  };
  static const EventSpec kSwEvents[] = {
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES},
  };
  int err = 0;
  hw_fd_ = OpenGroup(kHwEvents, 5, &fds_, &err);
  if (hw_fd_ < 0) {
    WarnOnce(&g_hw_warned, "hardware", err);
  } else {
    g_hw_ever_available.store(true, std::memory_order_relaxed);
  }
  sw_fd_ = OpenGroup(kSwEvents, 3, &fds_, &err);
  if (sw_fd_ < 0) {
    WarnOnce(&g_sw_warned, "software", err);
  } else {
    g_sw_ever_available.store(true, std::memory_order_relaxed);
  }
#else
  WarnOnce(&g_hw_warned, "hardware", ENOSYS);
  WarnOnce(&g_sw_warned, "software", ENOSYS);
#endif
}

PerfCounters::~PerfCounters() {
#if defined(__linux__)
  for (const int fd : fds_) close(fd);
#endif
}

PerfCounters& PerfCounters::PerThread() {
  thread_local PerfCounters counters;
  return counters;
}

CounterValues PerfCounters::Read() const {
  CounterValues v;
#if defined(__linux__)
  if (hw_fd_ >= 0) {
    uint64_t hw[5] = {0};
    if (ReadGroup(hw_fd_, 5, hw)) {
      v.cycles = hw[0];
      v.instructions = hw[1];
      v.cache_references = hw[2];
      v.cache_misses = hw[3];
      v.branch_misses = hw[4];
    }
  }
  if (sw_fd_ >= 0) {
    uint64_t sw[3] = {0};
    if (ReadGroup(sw_fd_, 3, sw)) {
      v.task_clock_ns = sw[0];  // PERF_COUNT_SW_TASK_CLOCK reports ns
      v.page_faults = sw[1];
      v.context_switches = sw[2];
    }
  }
#endif
  return v;
}

namespace perf_internal {

void ForceOpenErrnoForTest(int err) {
  g_forced_open_errno.store(err, std::memory_order_relaxed);
}

}  // namespace perf_internal

// ---------------------------------------------------------------------------
// Prof
// ---------------------------------------------------------------------------

namespace {

struct ProfState {
  std::mutex mu;
  std::map<std::string, Prof::SpanAgg> spans;
};

ProfState& GetProfState() {
  // Leaked singleton: span destructors may run during static teardown.
  static ProfState* state = new ProfState();
  return *state;
}

std::atomic<bool> g_prof_active{false};

}  // namespace

bool Prof::Start() {
#if LNCL_PROF_ENABLED
  bool expected = false;
  if (!g_prof_active.compare_exchange_strong(expected, true)) return false;
  {
    ProfState& state = GetProfState();
    std::lock_guard<std::mutex> lock(state.mu);
    state.spans.clear();
  }
  // Open the calling thread's groups up front so availability (and the
  // one-time warning) surfaces at session start, not mid-fit.
  PerfCounters::PerThread();
  return true;
#else
  return false;
#endif
}

bool Prof::Stop() {
  bool expected = true;
  return g_prof_active.compare_exchange_strong(expected, false);
}

bool Prof::active() {
  return g_prof_active.load(std::memory_order_relaxed);
}

bool Prof::HwCountersAvailable() {
#if LNCL_PROF_ENABLED
  return PerfCounters::PerThread().hw_available();
#else
  return false;
#endif
}

bool Prof::SwCountersAvailable() {
#if LNCL_PROF_ENABLED
  return PerfCounters::PerThread().sw_available();
#else
  return false;
#endif
}

void Prof::RecordSpan(const char* name, const CounterValues& delta) {
  ProfState& state = GetProfState();
  std::lock_guard<std::mutex> lock(state.mu);
  Prof::SpanAgg& agg = state.spans[name];
  if (agg.name.empty()) agg.name = name;
  agg.spans += 1;
  agg.totals += delta;
}

std::vector<Prof::SpanAgg> Prof::Snapshot() {
  ProfState& state = GetProfState();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<SpanAgg> out;
  out.reserve(state.spans.size());
  for (const auto& [name, agg] : state.spans) out.push_back(agg);
  return out;  // std::map iteration is already name-sorted
}

Prof::SpanAgg Prof::SnapshotSpan(const std::string& name) {
  ProfState& state = GetProfState();
  std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.spans.find(name);
  if (it == state.spans.end()) {
    SpanAgg empty;
    empty.name = name;
    return empty;
  }
  return it->second;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

bool Prof::WriteJson(const std::string& path) {
#if LNCL_PROF_ENABLED
  std::ofstream os(path);
  if (!os) return false;
  const bool hw = g_hw_ever_available.load(std::memory_order_relaxed);
  const bool sw = g_sw_ever_available.load(std::memory_order_relaxed);
  os << "{\n";
  os << "  \"schema\": \"lncl.prof.v1\",\n";
  os << "  \"hw_counters_available\": " << (hw ? "true" : "false") << ",\n";
  os << "  \"sw_counters_available\": " << (sw ? "true" : "false") << ",\n";
  os << "  \"spans\": {\n";
  const std::vector<SpanAgg> spans = Snapshot();
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanAgg& a = spans[i];
    const CounterValues& t = a.totals;
    os << "    \"" << JsonEscape(a.name) << "\": {"
       << "\"spans\": " << a.spans << ", \"cycles\": " << t.cycles
       << ", \"instructions\": " << t.instructions
       << ", \"cache_references\": " << t.cache_references
       << ", \"cache_misses\": " << t.cache_misses
       << ", \"branch_misses\": " << t.branch_misses
       << ", \"task_clock_ns\": " << t.task_clock_ns
       << ", \"page_faults\": " << t.page_faults
       << ", \"context_switches\": " << t.context_switches
       << ", \"ipc\": " << t.Ipc()
       << ", \"cache_miss_rate\": " << t.CacheMissRate() << "}"
       << (i + 1 < spans.size() ? "," : "") << "\n";
  }
  os << "  }\n";
  os << "}\n";
  return static_cast<bool>(os);
#else
  (void)path;
  return false;
#endif
}

}  // namespace lncl::obs
