#include "obs/mem_stats.h"

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace lncl::obs {

namespace {

// Parses a "VmXXX:   1234 kB" line's value; -1 when the key is absent.
int64_t ParseKbLine(const std::string& line) {
  const size_t colon = line.find(':');
  if (colon == std::string::npos) return -1;
  std::istringstream rest(line.substr(colon + 1));
  int64_t kb = -1;
  rest >> kb;
  return kb;
}

}  // namespace

MemSample ReadSelfStatus() {
  MemSample sample;
  std::ifstream status("/proc/self/status");
  if (!status) return sample;
  std::string line;
  int found = 0;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      sample.vm_rss_kb = ParseKbLine(line);
      ++found;
    } else if (line.rfind("VmHWM:", 0) == 0) {
      sample.vm_hwm_kb = ParseKbLine(line);
      ++found;
    } else if (line.rfind("VmData:", 0) == 0) {
      sample.vm_data_kb = ParseKbLine(line);
      ++found;
    }
    if (found == 3) break;
  }
  // VmRSS/VmHWM are the load-bearing fields; VmData is best-effort (absent
  // for some kernel configs).
  sample.ok = sample.vm_rss_kb > 0 && sample.vm_hwm_kb > 0;
  if (sample.vm_data_kb < 0) sample.vm_data_kb = 0;
  return sample;
}

void SampleMemStatsToMetrics() {
  if (!Metrics::enabled()) return;
  const MemSample sample = ReadSelfStatus();
  if (!sample.ok) return;
  static Gauge* const rss = Metrics::GetGauge("mem.vm_rss_kb");
  static Gauge* const hwm = Metrics::GetGauge("mem.vm_hwm_kb");
  static Gauge* const data = Metrics::GetGauge("mem.vm_data_kb");
  rss->Update(sample.vm_rss_kb);
  hwm->Update(sample.vm_hwm_kb);
  if (sample.vm_data_kb > 0) data->Update(sample.vm_data_kb);
}

namespace {

std::string CpuModel() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  if (!cpuinfo) return "unknown";
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    std::string model = line.substr(colon + 1);
    // Trim + collapse whitespace runs to single '-' so the fingerprint is
    // one shell/JSON-friendly token.
    std::string out;
    bool pending_sep = false;
    for (const char c : model) {
      if (c == ' ' || c == '\t') {
        if (!out.empty()) pending_sep = true;
        continue;
      }
      if (pending_sep) {
        out.push_back('-');
        pending_sep = false;
      }
      out.push_back(c);
    }
    return out.empty() ? "unknown" : out;
  }
  return "unknown";
}

std::string Hostname() {
#if defined(__linux__)
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return std::string(buf);
  }
#endif
  return "unknown";
}

}  // namespace

std::string HostFingerprint() {
  const unsigned threads = std::thread::hardware_concurrency();
  std::ostringstream os;
  os << Hostname() << "/" << CpuModel() << "/"
     << (threads == 0 ? 1u : threads) << "t";
  return os.str();
}

}  // namespace lncl::obs
