#pragma once

// Trace-event spans over the EM loop, flushed as Chrome/Perfetto JSON.
//
// Spans are RAII scopes recorded into fixed-capacity per-thread buffers —
// recording never takes a lock: one release store per event, no allocation
// after a buffer's first event, so worker threads in the sharded
// E-step/M-step never serialize on telemetry. Trace::Stop() merges every thread's buffer
// into a `traceEvents` JSON array ("X" complete events, microsecond
// timestamps relative to session start, one tid per recording thread) that
// chrome://tracing and ui.perfetto.dev load directly.
//
// Gating mirrors util/check.h's LNCL_AUDIT pattern, with one difference:
// the compile switch (-DLNCL_TRACE, CMake option LNCL_TRACE, default ON)
// defaults to compiled-in because the idle cost is one relaxed atomic load
// per span — the runtime flag (Trace::Start/Stop) is the everyday switch,
// and -DLNCL_TRACE=OFF exists to prove/remove even that residue. Spans only
// observe; a traced fit is bit-identical to a plain one (FitDigest-checked
// by scripts/bench_obs_overhead.sh).
//
// PhaseSpan is the always-compiled sibling that additionally accumulates
// its elapsed seconds into a caller-owned double. The Fit epoch loop uses
// it for the m_step / confusion / e_step / dev_eval phases, so
// LogicLnclResult::phase_seconds is derived from the very spans the trace
// shows instead of a parallel Stopwatch::Lap() bookkeeping chain.

// When profiling is compiled in (-DLNCL_PROF, default ON) and a Prof
// session is active, every span — TraceSpan and PhaseSpan alike — also
// reads the calling thread's perf counter groups at entry/exit and feeds
// the delta to Prof::RecordSpan, giving the whole span tree IPC and
// cache-miss attribution on top of wall time. Same bit-identity contract:
// counters observe, they never steer.

#include <cstdint>
#include <string>

#include "obs/perf_counters.h"

#if defined(LNCL_TRACE)
#define LNCL_TRACE_ENABLED 1
#else
#define LNCL_TRACE_ENABLED 0
#endif

namespace lncl::obs {

class Trace {
 public:
  // Begins a recording session that will be written to `path` by Stop().
  // Returns false (and records nothing) when tracing is compiled out or a
  // session is already active.
  static bool Start(const std::string& path);

  // Ends the session and flushes the JSON file. Returns false when no
  // session was active or the file could not be written.
  static bool Stop();

  static bool active();

  // Events discarded because a thread's buffer filled (per session).
  static uint64_t dropped_events();
};

#if LNCL_TRACE_ENABLED

namespace trace_internal {

// Appends one complete event. ts/dur in microseconds since session start;
// arg_name may be null (no args object). name/arg_name must be string
// literals (stored as pointers, read at flush).
void RecordComplete(const char* name, double ts_us, double dur_us,
                    const char* arg_name, int64_t arg);

// Microseconds since the session started (0 when inactive).
double NowUs();

}  // namespace trace_internal

// RAII span: records a complete event covering its lifetime when a session
// is active at destruction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : TraceSpan(name, nullptr, 0) {}
  TraceSpan(const char* name, const char* arg_name, int64_t arg)
      : name_(name), arg_name_(arg_name), arg_(arg) {
    if (Trace::active()) start_us_ = trace_internal::NowUs();
#if LNCL_PROF_ENABLED
    if (Prof::active()) {
      prof_start_ = PerfCounters::PerThread().Read();
      prof_on_ = true;
    }
#endif
  }
  ~TraceSpan() {
    if (start_us_ >= 0.0 && Trace::active()) {
      trace_internal::RecordComplete(
          name_, start_us_, trace_internal::NowUs() - start_us_, arg_name_,
          arg_);
    }
#if LNCL_PROF_ENABLED
    if (prof_on_ && Prof::active()) {
      Prof::RecordSpan(name_, PerfCounters::PerThread().Read() - prof_start_);
    }
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* arg_name_;
  int64_t arg_;
  double start_us_ = -1.0;
#if LNCL_PROF_ENABLED
  CounterValues prof_start_;
  bool prof_on_ = false;
#endif
};

#define LNCL_TRACE_CONCAT_(a, b) a##b
#define LNCL_TRACE_CONCAT(a, b) LNCL_TRACE_CONCAT_(a, b)
#define LNCL_TRACE_SPAN(name) \
  ::lncl::obs::TraceSpan LNCL_TRACE_CONCAT(lncl_trace_span_, __LINE__)(name)
#define LNCL_TRACE_SPAN_ARG(name, arg_name, arg)                       \
  ::lncl::obs::TraceSpan LNCL_TRACE_CONCAT(lncl_trace_span_, __LINE__)( \
      name, arg_name, arg)

#else  // !LNCL_TRACE_ENABLED

#define LNCL_TRACE_SPAN(name) static_cast<void>(0)
#define LNCL_TRACE_SPAN_ARG(name, arg_name, arg) static_cast<void>(0)

#endif  // LNCL_TRACE_ENABLED

// Phase timer: always accumulates elapsed seconds into *accum on
// destruction (this is how PhaseSeconds is measured), and doubles as a
// trace span when a session is active and tracing is compiled in.
class PhaseSpan {
 public:
  PhaseSpan(const char* name, double* accum);
  ~PhaseSpan();

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  const char* name_;
  double* accum_;
  int64_t start_ns_;
  double start_us_;  // trace timestamp; < 0 when not tracing
#if LNCL_PROF_ENABLED
  CounterValues prof_start_;
  bool prof_on_ = false;
#endif
};

}  // namespace lncl::obs
