#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

namespace lncl::obs {

std::atomic<bool> Metrics::enabled_{false};

namespace {

// Registry storage. Metric objects are never destroyed (pointers handed to
// call-site statics must stay valid for the process lifetime); the deques
// grow under the mutex, lookups copy nothing.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<std::unique_ptr<Gauge>> gauges;
  std::vector<std::unique_ptr<Histogram>> histograms;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<int> g_next_shard{0};

// Compact JSON number formatting: integers stay integers, doubles keep full
// round-trip precision.
std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);  // lint: allow(io)
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

template <typename T>
T* FindByName(const std::vector<std::unique_ptr<T>>& pool,
              const std::string& name) {
  for (const auto& m : pool) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

}  // namespace

int Metrics::ThreadShard() {
  thread_local const int shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMaxShards;
  return shard;
}

void Counter::Add(uint64_t n) {
  if (!Metrics::enabled()) return;
  shards_[Metrics::ThreadShard()].fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::Total() const {
  uint64_t total = 0;
  for (int s = 0; s < kMaxShards; ++s) {
    total += shards_[s].load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Update(int64_t v) {
  if (!Metrics::enabled()) return;
  std::atomic<int64_t>& shard = shards_[Metrics::ThreadShard()];
  int64_t cur = shard.load(std::memory_order_relaxed);
  while (v > cur &&
         !shard.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int64_t Gauge::Value() const {
  int64_t value = 0;
  for (int s = 0; s < kMaxShards; ++s) {
    value = std::max(value, shards_[s].load(std::memory_order_relaxed));
  }
  return value;
}

Histogram::Histogram(std::string name, std::vector<double> edges)
    : name_(std::move(name)), edges_(std::move(edges)), shards_(kMaxShards) {
  std::sort(edges_.begin(), edges_.end());
  for (Shard& s : shards_) {
    s.buckets = std::vector<std::atomic<uint64_t>>(edges_.size() + 1);
  }
}

void Histogram::Observe(double v) {
  if (!Metrics::enabled()) return;
  Shard& shard = shards_[Metrics::ThreadShard()];
  size_t b = 0;
  while (b < edges_.size() && v > edges_[b]) ++b;
  shard.buckets[b].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  // Single writer per shard in the common case; CAS keeps shared-shard
  // threads (> kMaxShards of them) from losing updates.
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + v,
                                          std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::TotalSum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(edges_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < counts.size(); ++b) {
      counts[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

void Metrics::Enable(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

Counter* Metrics::GetCounter(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (Counter* c = FindByName(r.counters, name)) return c;
  r.counters.push_back(std::unique_ptr<Counter>(new Counter(name)));
  return r.counters.back().get();
}

Gauge* Metrics::GetGauge(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (Gauge* g = FindByName(r.gauges, name)) return g;
  r.gauges.push_back(std::unique_ptr<Gauge>(new Gauge(name)));
  return r.gauges.back().get();
}

Histogram* Metrics::GetHistogram(const std::string& name,
                                 std::vector<double> edges) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (Histogram* h = FindByName(r.histograms, name)) return h;
  r.histograms.push_back(
      std::unique_ptr<Histogram>(new Histogram(name, std::move(edges))));
  return r.histograms.back().get();
}

std::vector<std::pair<std::string, uint64_t>> Metrics::CounterTotals() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, uint64_t>> totals;
  totals.reserve(r.counters.size());
  for (const auto& c : r.counters) {
    totals.emplace_back(c->name(), c->Total());
  }
  std::sort(totals.begin(), totals.end());
  return totals;
}

std::string Metrics::SnapshotJson() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto by_name = [](const auto& a, const auto& b) {
    return a->name() < b->name();
  };
  std::vector<const Counter*> counters;
  for (const auto& c : r.counters) counters.push_back(c.get());
  std::vector<const Gauge*> gauges;
  for (const auto& g : r.gauges) gauges.push_back(g.get());
  std::vector<const Histogram*> histograms;
  for (const auto& h : r.histograms) histograms.push_back(h.get());
  std::sort(counters.begin(), counters.end(),
            [&](const Counter* a, const Counter* b) { return by_name(a, b); });
  std::sort(gauges.begin(), gauges.end(),
            [&](const Gauge* a, const Gauge* b) { return by_name(a, b); });
  std::sort(
      histograms.begin(), histograms.end(),
      [&](const Histogram* a, const Histogram* b) { return by_name(a, b); });

  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ", " : "") << "\"" << EscapeJson(counters[i]->name())
       << "\": " << counters[i]->Total();
  }
  os << "},\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ", " : "") << "\"" << EscapeJson(gauges[i]->name())
       << "\": " << gauges[i]->Value();
  }
  os << "},\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const Histogram* h = histograms[i];
    os << (i ? ",\n    " : "") << "\"" << EscapeJson(h->name())
       << "\": {\"edges\": [";
    for (size_t e = 0; e < h->edges().size(); ++e) {
      os << (e ? ", " : "") << FormatDouble(h->edges()[e]);
    }
    os << "], \"counts\": [";
    const std::vector<uint64_t> counts = h->BucketCounts();
    for (size_t b = 0; b < counts.size(); ++b) {
      os << (b ? ", " : "") << counts[b];
    }
    os << "], \"count\": " << h->TotalCount()
       << ", \"sum\": " << FormatDouble(h->TotalSum()) << "}";
  }
  os << "}\n}\n";
  return os.str();
}

bool Metrics::WriteSnapshotJson(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << SnapshotJson();
  return static_cast<bool>(os);
}

void Metrics::Reset() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& c : r.counters) {
    for (int s = 0; s < kMaxShards; ++s) {
      c->shards_[s].store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : r.gauges) {
    for (int s = 0; s < kMaxShards; ++s) {
      g->shards_[s].store(0, std::memory_order_relaxed);
    }
  }
  for (auto& h : r.histograms) {
    for (Histogram::Shard& s : h->shards_) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0.0, std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace lncl::obs
