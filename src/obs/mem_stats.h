#pragma once

// Process memory accounting + host identification for the profiling layer.
//
// ReadSelfStatus() samples /proc/self/status (VmRSS / VmHWM / VmData), the
// portable-enough Linux source for current and peak resident set size.
// SampleMemStatsToMetrics() pushes a sample into the metrics registry as
// high-water gauges so bench snapshots (results/metrics_*.json) carry memory
// alongside the existing workspace arena gauges (workspace.in_use_high_water,
// workspace.pool_matrices, workspace.pool_bytes_high_water) — the malloc-side
// and arena-side views of the same footprint.
//
// HostFingerprint() identifies the machine for results/BENCH_history.jsonl
// records so tools/bench_compare.py only ever diffs runs against a baseline
// from the same host (comparing wall times across machines is noise).
//
// All of it degrades gracefully off-Linux or in jailed mounts: samples come
// back with ok=false / zeros and the fingerprint falls back to "unknown".
// Like everything in obs/, this header is freestanding (stdlib only), and
// the /proc reads live here by lint decree (tools/lint.py rule `prof`).

#include <cstdint>
#include <string>

namespace lncl::obs {

struct MemSample {
  bool ok = false;        // the sample was actually read
  int64_t vm_rss_kb = 0;  // current resident set size
  int64_t vm_hwm_kb = 0;  // peak resident set size ("high water mark")
  int64_t vm_data_kb = 0; // data segment (heap + arenas)
};

// One sample of /proc/self/status. ok=false (zeros) when unreadable.
MemSample ReadSelfStatus();

// Records a sample into the metrics registry as high-water gauges
// (mem.vm_rss_kb, mem.vm_hwm_kb, mem.vm_data_kb). No-op when the registry
// is disabled or the sample fails; never throws.
void SampleMemStatsToMetrics();

// Stable per-machine identifier: "<hostname>/<cpu model>/<N>t". Spaces in
// the CPU model collapse to '-' so the string stays token-like for JSON and
// baseline keys. "unknown" pieces substitute wherever a source is missing.
std::string HostFingerprint();

}  // namespace lncl::obs
