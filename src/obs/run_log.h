#pragma once

// Structured per-epoch run logs for the EM-alike loop (Algorithm 1).
//
// LogicLnclConfig carries an optional RunObserver*; when set, Fit /
// FitSemiSupervised deliver one EpochRecord per epoch — loss, dev score,
// k(t), mean KL(q_a‖q_b), rule satisfaction, confusion diagonal mass and
// drift, per-epoch phase seconds, E-step throughput, and metric deltas —
// plus one FitSummary when the loop ends. Everything in a record is either
// already computed by the trainer or derived read-only from it, so an
// observed fit is bit-identical to an unobserved one (the extra KL /
// satisfaction sweeps only read q_a/q_b; they are skipped entirely when no
// observer is attached, which is the null-sink default).
//
// JsonlRunLogger is the stock observer: one JSON object per line
// (schema "lncl.em_run.v1"), consumable by tools/trace_summary.py, the
// bench harness, and tests (tests/obs_test.cc golden-schema check). Loggers
// flush after every line and register themselves process-wide so
// FlushRunLogs() — called by util::CheckFailure on the abort path — can
// drain whatever an interrupted fit managed to log; a crashed run always
// leaves an inspectable JSONL tail.

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace lncl::obs {

// One epoch of an EM run, as delivered to RunObserver::OnEpoch.
struct EpochRecord {
  int epoch = 0;       // 0-based epoch index
  double k = 0.0;      // imitation strength k(t) this epoch
  double loss = 0.0;   // mean training loss (M-step)
  double dev_score = 0.0;
  bool is_best = false;  // this epoch became the early-stopping best

  // Projection diagnostics (Eq. 15). KL is the mean over projected items of
  // KL(q_a‖q_b); rule_satisfaction is the fraction of projected items whose
  // argmax the projection left unchanged (1.0 when nothing was projected —
  // check projected_items to distinguish "all satisfied" from "no rules").
  double mean_kl_qa_qb = 0.0;
  double rule_satisfaction = 1.0;
  int64_t projected_items = 0;

  // Annotator-model diagnostics (Eq. 12): mean confusion diagonal mass over
  // annotators, and mean Frobenius distance to the previous epoch's
  // confusions (0 on the first epoch).
  double confusion_diag_mass = 0.0;
  double confusion_drift = 0.0;

  // This epoch's share of each Fit phase (seconds), and the E-step's
  // resulting instance throughput.
  double m_step_seconds = 0.0;
  double confusion_seconds = 0.0;
  double e_step_seconds = 0.0;
  double dev_eval_seconds = 0.0;
  double e_step_instances_per_second = 0.0;

  // Per-epoch deltas of every obs::Metrics counter (sorted by name). Empty
  // unless the metrics registry is enabled.
  std::vector<std::pair<std::string, uint64_t>> metric_deltas;
};

// End-of-fit summary, delivered once after the epoch loop.
struct FitSummary {
  int best_epoch = -1;
  int epochs_run = 0;
  bool early_stopped = false;  // patience fired before config.epochs
  double best_dev_score = 0.0;
};

// Hook interface. Implementations must not mutate trainer state; they are
// called on the training thread between epochs.
class RunObserver {
 public:
  virtual ~RunObserver() = default;
  virtual void OnEpoch(const EpochRecord& record) = 0;
  virtual void OnFitEnd(const FitSummary& summary) {
    static_cast<void>(summary);
  }
};

// Writes one JSONL record per callback:
//   {"schema": "lncl.em_run.v1", "record": "epoch", "run": <label>, ...}
//   {"schema": "lncl.em_run.v1", "record": "fit_end", "run": <label>, ...}
// The file is truncated on construction; `label` tags records so several
// fits can share one file.
class JsonlRunLogger : public RunObserver {
 public:
  explicit JsonlRunLogger(const std::string& path,
                          std::string label = std::string());
  ~JsonlRunLogger() override;

  void OnEpoch(const EpochRecord& record) override;
  void OnFitEnd(const FitSummary& summary) override;

  bool ok() const { return static_cast<bool>(os_); }

  // Flushes this logger's stream (thread-safe with concurrent OnEpoch).
  void Flush();

 private:
  std::ofstream os_;
  std::string label_;
};

// Flushes every live JsonlRunLogger. Safe from any thread, including the
// util::CheckFailure abort path — which is the point: an invariant failure
// mid-epoch must not eat the run log's tail in a buffered ofstream.
void FlushRunLogs();

}  // namespace lncl::obs
