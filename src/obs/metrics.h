#pragma once

// Process-wide metrics registry: named counters, high-water gauges, and
// fixed-bucket histograms for the training/prediction hot paths (GEMM call
// and FLOP counts, PredictBatch bucket occupancy, workspace arena high-water
// marks, E-step instance throughput).
//
// Design constraints, in order:
//
//  * Off-by-default-cheap. Recording is gated on one relaxed atomic flag
//    (Metrics::enabled()); with the flag down every Add/Update/Observe is a
//    load + predictable branch — the null sink. Instrumenting a hot kernel
//    therefore costs nothing measurable until a bench or tool opts in.
//  * No perturbation. Metrics only count; they never touch the numbers a
//    fit computes, so a telemetry-enabled run is bit-identical to a plain
//    one (asserted via FitDigest by scripts/bench_obs_overhead.sh).
//  * Deterministic merge. Each metric stripes its state over kMaxShards
//    per-thread slots (a thread keeps one shard index for life, handed out
//    in first-use order) and snapshots merge the shards in fixed slot-index
//    order — the same discipline as util::Parallelizer. Counter, gauge, and
//    histogram bucket values are integers, so totals are exact and
//    independent of which thread incremented which shard; only a
//    histogram's double `sum` can depend on the work partition when
//    observations are non-integral (ours are integral).
//
// The obs/ layer is freestanding: it depends only on the standard library,
// so even util/ (matrix.cc, workspace.cc) can instrument through it without
// a dependency cycle.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lncl::obs {

// Per-metric shard count. Threads beyond this many share slots (totals stay
// exact — integer adds commute); raising it only costs idle memory.
inline constexpr int kMaxShards = 64;

// Monotonic event count (calls, instances, FLOPs). Add() is wait-free: one
// relaxed fetch_add on the calling thread's shard.
class Counter {
 public:
  void Add(uint64_t n);
  void Increment() { Add(1); }

  // Sum over shards in slot order.
  uint64_t Total() const;

  const std::string& name() const { return name_; }

 private:
  friend class Metrics;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<uint64_t> shards_[kMaxShards] = {};
};

// High-water gauge: Update(v) raises the calling thread's shard to at least
// v; Value() is the max over shards. The natural fit for per-thread arena
// peaks, where the interesting global figure is the worst thread.
class Gauge {
 public:
  void Update(int64_t v);

  int64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class Metrics;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<int64_t> shards_[kMaxShards] = {};
};

// Fixed-bucket histogram. Bucket i counts observations v <= edges[i] (first
// matching edge); one overflow bucket counts v > edges.back(). Edges are
// fixed at registration — re-registering a name with different edges keeps
// the first registration's edges.
class Histogram {
 public:
  void Observe(double v);

  uint64_t TotalCount() const;
  double TotalSum() const;
  // Merged per-bucket counts, edges.size() + 1 entries (last = overflow).
  std::vector<uint64_t> BucketCounts() const;

  const std::string& name() const { return name_; }
  const std::vector<double>& edges() const { return edges_; }

 private:
  friend class Metrics;
  Histogram(std::string name, std::vector<double> edges);

  struct Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::vector<std::atomic<uint64_t>> buckets;
  };

  std::string name_;
  std::vector<double> edges_;
  std::vector<Shard> shards_;  // kMaxShards entries, fixed at construction
};

// The registry. Get* registers on first use and returns a stable pointer
// (call sites cache it in a function-local static); Snapshot* merge every
// shard in fixed order and emit metrics sorted by name, so two runs that
// did the same work produce identical snapshots regardless of scheduling.
class Metrics {
 public:
  // Runtime switch for every Add/Update/Observe. Off (default) is the null
  // sink: instrumentation sites cost one relaxed load + branch.
  static void Enable(bool on);
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  static Counter* GetCounter(const std::string& name);
  static Gauge* GetGauge(const std::string& name);
  static Histogram* GetHistogram(const std::string& name,
                                 std::vector<double> edges);

  // All counter totals, sorted by name. The run logger diffs consecutive
  // snapshots to attach per-epoch metric deltas to each epoch record.
  static std::vector<std::pair<std::string, uint64_t>> CounterTotals();

  // Full registry snapshot as a JSON object:
  //   {"counters": {...}, "gauges": {...},
  //    "histograms": {name: {"edges": [...], "counts": [...],
  //                          "count": N, "sum": S}}}
  static std::string SnapshotJson();

  // SnapshotJson() to a file; false on I/O failure.
  static bool WriteSnapshotJson(const std::string& path);

  // Zeroes every shard of every registered metric (registrations persist).
  // For tests and for benches that want per-section figures.
  static void Reset();

  // The calling thread's shard slot in [0, kMaxShards).
  static int ThreadShard();

 private:
  static std::atomic<bool> enabled_;
};

}  // namespace lncl::obs
