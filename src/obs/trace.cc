#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace lncl::obs {

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

#if LNCL_TRACE_ENABLED

// Per-thread event capacity. 1<<16 complete events cover a paper-scale fit
// (a few spans per minibatch/slot/epoch) with room to spare; overflow is
// counted and reported, never reallocated — the buffer's data pointer must
// stay stable so flushing can read it without taking a lock.
constexpr size_t kBufferCapacity = size_t{1} << 16;

struct Event {
  const char* name;
  const char* arg_name;  // nullptr = no args object
  int64_t arg;
  double ts_us;
  double dur_us;
};

struct ThreadBuffer {
  int tid = 0;
  std::vector<Event> events;      // reserved once, never reallocated
  std::atomic<size_t> count{0};   // published size; release on write
  std::atomic<uint64_t> dropped{0};
};

struct TraceState {
  std::mutex mu;  // guards buffer registration and session start/stop
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // never shrunk
  std::string path;
  std::atomic<bool> active{false};
  std::atomic<int64_t> session_start_ns{0};
  int next_tid = 0;
};

TraceState& GetState() {
  static TraceState* s = new TraceState();
  return *s;
}

ThreadBuffer& GetThreadBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    TraceState& st = GetState();
    std::lock_guard<std::mutex> lock(st.mu);
    st.buffers.push_back(std::make_unique<ThreadBuffer>());
    st.buffers.back()->tid = st.next_tid++;
    return st.buffers.back().get();
  }();
  return *buffer;
}

std::string FormatUs(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return std::string(buf);
}

#endif  // LNCL_TRACE_ENABLED

}  // namespace

#if LNCL_TRACE_ENABLED

namespace trace_internal {

double NowUs() {
  TraceState& st = GetState();
  const int64_t start = st.session_start_ns.load(std::memory_order_relaxed);
  return static_cast<double>(NowNs() - start) * 1e-3;
}

void RecordComplete(const char* name, double ts_us, double dur_us,
                    const char* arg_name, int64_t arg) {
  ThreadBuffer& buffer = GetThreadBuffer();
  if (buffer.events.capacity() == 0) buffer.events.reserve(kBufferCapacity);
  const size_t n = buffer.count.load(std::memory_order_relaxed);
  if (n >= kBufferCapacity) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back(Event{name, arg_name, arg, ts_us, dur_us});
  // Publish: the flush thread reads `count` with acquire and only touches
  // events below it, so the push above happens-before any read of the slot.
  buffer.count.store(n + 1, std::memory_order_release);
}

}  // namespace trace_internal

bool Trace::Start(const std::string& path) {
  TraceState& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  if (st.active.load(std::memory_order_relaxed)) return false;
  st.path = path;
  for (auto& buffer : st.buffers) {
    buffer->events.clear();
    buffer->count.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
  st.session_start_ns.store(NowNs(), std::memory_order_relaxed);
  st.active.store(true, std::memory_order_seq_cst);
  return true;
}

bool Trace::Stop() {
  TraceState& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  if (!st.active.load(std::memory_order_relaxed)) return false;
  // Spans that race with Stop() re-check `active` before recording; any
  // event published after the flush reads a buffer's count is simply left
  // behind (and cleared by the next Start).
  st.active.store(false, std::memory_order_seq_cst);

  std::ofstream os(st.path);
  if (!os) return false;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& buffer : st.buffers) {
    const size_t n = buffer->count.load(std::memory_order_acquire);
    if (n == 0) continue;
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << buffer->tid << ", \"args\": {\"name\": \"track-" << buffer->tid
       << "\"}}";
    for (size_t i = 0; i < n; ++i) {
      const Event& e = buffer->events[i];
      os << ",\n{\"name\": \"" << e.name << "\", \"ph\": \"X\", \"ts\": "
         << FormatUs(e.ts_us) << ", \"dur\": " << FormatUs(e.dur_us)
         << ", \"pid\": 1, \"tid\": " << buffer->tid;
      if (e.arg_name != nullptr) {
        os << ", \"args\": {\"" << e.arg_name << "\": " << e.arg << "}";
      }
      os << "}";
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return static_cast<bool>(os);
}

bool Trace::active() {
  return GetState().active.load(std::memory_order_relaxed);
}

uint64_t Trace::dropped_events() {
  TraceState& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  uint64_t dropped = 0;
  for (const auto& buffer : st.buffers) {
    dropped += buffer->dropped.load(std::memory_order_relaxed);
  }
  return dropped;
}

#else  // !LNCL_TRACE_ENABLED

bool Trace::Start(const std::string&) { return false; }
bool Trace::Stop() { return false; }
bool Trace::active() { return false; }
uint64_t Trace::dropped_events() { return 0; }

#endif  // LNCL_TRACE_ENABLED

PhaseSpan::PhaseSpan(const char* name, double* accum)
    : name_(name), accum_(accum), start_ns_(NowNs()), start_us_(-1.0) {
#if LNCL_TRACE_ENABLED
  if (Trace::active()) start_us_ = trace_internal::NowUs();
#endif
#if LNCL_PROF_ENABLED
  if (Prof::active()) {
    prof_start_ = PerfCounters::PerThread().Read();
    prof_on_ = true;
  }
#endif
}

PhaseSpan::~PhaseSpan() {
  *accum_ += static_cast<double>(NowNs() - start_ns_) * 1e-9;
#if LNCL_TRACE_ENABLED
  if (start_us_ >= 0.0 && Trace::active()) {
    trace_internal::RecordComplete(
        name_, start_us_, trace_internal::NowUs() - start_us_, nullptr, 0);
  }
#endif
#if LNCL_PROF_ENABLED
  if (prof_on_ && Prof::active()) {
    Prof::RecordSpan(name_, PerfCounters::PerThread().Read() - prof_start_);
  }
#endif
}

}  // namespace lncl::obs
