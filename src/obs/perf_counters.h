#pragma once

// Hardware-counter profiling over the EM loop's span tree.
//
// PerfCounters opens two perf_event_open groups per thread:
//
//   * hardware  — cycles, instructions, cache-references, cache-misses,
//                 branch-misses: the IPC / miss-rate attribution the span
//                 table is built from;
//   * software  — task-clock (ns on-CPU), page-faults, context-switches:
//                 available wherever the syscall itself is, including PMU-less
//                 VMs where every hardware event open fails with ENOENT.
//
// Degradation is graceful and layered: a failed hardware open (EACCES under
// perf_event_paranoid, ENOSYS in seccomp jails, ENOENT without a PMU) leaves
// that group unavailable — reads report zeros for its counters and one
// process-wide warning is printed — while the software group keeps counting,
// and vice versa. Nothing in the fit path ever depends on a counter value, so
// a profiled fit is bit-identical to a plain one (FitDigest-checked by
// scripts/bench_obs_overhead.sh).
//
// Prof is the session gate, mirroring Trace: the LNCL_PROF compile switch
// (CMake option, default ON) compiles the span hooks in; Prof::Start()
// arms them at runtime. While active, every PhaseSpan / TraceSpan reads the
// calling thread's groups at entry and exit and accumulates the delta into a
// per-span-name aggregate, so Stop() + WriteJson() yield cycles/IPC/miss-rate
// attribution for the whole fit→epoch→{m_step,confusion,e_step,dev_eval}
// tree. tools/prof_report.py joins this with the trace (self times) and the
// metrics snapshot (GEMM FLOPs → achieved GFLOP/s vs the BENCH_micro
// roofline) into the per-phase profiling table.
//
// Like the rest of obs/, this header is freestanding (standard library only)
// so util/ and bench/ can use it without dependency cycles. The raw
// syscall/procfs surface lives here and nowhere else — tools/lint.py's
// `prof` rule keeps perf_event_open and /proc reads out of the rest of the
// tree.

#include <cstdint>
#include <string>
#include <vector>

#if defined(LNCL_PROF)
#define LNCL_PROF_ENABLED 1
#else
#define LNCL_PROF_ENABLED 0
#endif

namespace lncl::obs {

// One reading (or delta) of both counter groups. Unavailable groups read 0.
struct CounterValues {
  // Hardware group.
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_references = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  // Software group.
  uint64_t task_clock_ns = 0;
  uint64_t page_faults = 0;
  uint64_t context_switches = 0;

  CounterValues& operator+=(const CounterValues& o);
  CounterValues operator-(const CounterValues& o) const;  // saturating at 0

  // Instructions per cycle; 0 when the hardware group is dark.
  double Ipc() const;
  // cache_misses / cache_references; 0 when the group is dark or idle.
  double CacheMissRate() const;
};

// Per-thread counter groups, opened lazily on first use and kept for the
// thread's lifetime (counters run continuously; callers difference two
// Read()s to attribute an interval).
class PerfCounters {
 public:
  // The calling thread's groups (opened on first call).
  static PerfCounters& PerThread();

  bool hw_available() const { return hw_fd_ >= 0; }
  bool sw_available() const { return sw_fd_ >= 0; }

  // Current cumulative values; multiplexing-scaled when the kernel had to
  // rotate the group (time_running < time_enabled). Zeros for dark groups.
  CounterValues Read() const;

  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

 private:
  PerfCounters();

  int hw_fd_ = -1;  // group leader (cycles); siblings close with the leader
  int sw_fd_ = -1;  // group leader (task-clock)
  std::vector<int> fds_;  // every open fd, for the destructor
};

namespace perf_internal {

// Test hook: when err != 0 every subsequent group open (on threads that have
// not opened yet) fails as if perf_event_open returned -1 with that errno.
// Tests use EACCES/ENOSYS to pin the graceful-degradation contract without
// needing a locked-down kernel.
void ForceOpenErrnoForTest(int err);

}  // namespace perf_internal

// Session gate + per-span aggregation. All methods are safe from any thread;
// RecordSpan is called by the span destructors in trace.h/cc.
class Prof {
 public:
  // Arms span attribution. False when profiling is compiled out
  // (-DLNCL_PROF=OFF) or a session is already active. Clears aggregates.
  static bool Start();

  // Disarms. Aggregates survive until the next Start() so reporting can
  // happen after the measured region. False when no session was active.
  static bool Stop();

  static bool active();

  // True when the calling thread's group of that kind opened (forces the
  // open). Always false when compiled out.
  static bool HwCountersAvailable();
  static bool SwCountersAvailable();

  struct SpanAgg {
    std::string name;
    uint64_t spans = 0;       // completed span count
    CounterValues totals;     // summed deltas
  };

  // Aggregates of the current/most-recent session, sorted by span name.
  static std::vector<SpanAgg> Snapshot();

  // Aggregate for one span name; zeros when the span never completed.
  static SpanAgg SnapshotSpan(const std::string& name);

  // Writes the session as JSON (schema lncl.prof.v1): availability flags
  // plus one object per span with raw counters, ipc, and cache_miss_rate.
  // False on I/O failure or when profiling is compiled out.
  static bool WriteJson(const std::string& path);

  // Span hook (internal). Accumulates a completed span's counter delta.
  static void RecordSpan(const char* name, const CounterValues& delta);
};

}  // namespace lncl::obs
