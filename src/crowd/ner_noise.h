#pragma once

#include <vector>

#include "util/rng.h"

namespace lncl::crowd {

// Per-annotator error rates for the three crowd error types the paper
// identifies for the NER dataset (Section VI-A1), plus a small
// false-positive rate:
//   * ignore:   the entity is not annotated at all (span -> O);
//   * boundary: type correct but the span is shifted/shrunk/grown by one;
//   * type:     span correct but the entity type is wrong;
//   * false positive: a random O run is annotated as a random entity.
struct NerErrorRates {
  double p_ignore = 0.0;
  double p_boundary = 0.0;
  double p_type = 0.0;
  double p_false_positive = 0.0;  // expected count per sentence
};

// Applies the error model to a ground-truth BIO sequence and returns the
// annotator's (possibly invalid-BIO) tag sequence. `difficulty` in [0, 1]
// scales all error rates by (0.5 + difficulty), so hard sentences attract
// more mistakes.
std::vector<int> CorruptNerTags(const std::vector<int>& truth,
                                const NerErrorRates& rates, double difficulty,
                                util::Rng* rng);

}  // namespace lncl::crowd

