#include "crowd/weak_supervision.h"

#include <algorithm>

#include "data/sentiment_gen.h"
#include "util/logging.h"

namespace lncl::crowd {

AnnotationSet ApplyLabelingFunctions(
    const std::vector<LabelingFunction>& functions,
    const data::Dataset& dataset, int num_classes, util::Rng* rng) {
  LNCL_CHECK(!dataset.sequence);
  AnnotationSet out(dataset.size(), static_cast<int>(functions.size()),
                    num_classes);
  for (int i = 0; i < dataset.size(); ++i) {
    const data::Instance& x = dataset.instances[i];
    for (size_t j = 0; j < functions.size(); ++j) {
      const LabelingFunction& lf = functions[j];
      const bool triggered =
          std::any_of(x.tokens.begin(), x.tokens.end(), [&lf](int token) {
            return std::find(lf.triggers.begin(), lf.triggers.end(), token) !=
                   lf.triggers.end();
          });
      if (!triggered || !rng->Bernoulli(lf.fire_prob)) continue;
      AnnotatorLabels e;
      e.annotator = static_cast<int>(j);
      e.labels.push_back(lf.label);
      out.instance(i).entries.push_back(std::move(e));
    }
  }
  return out;
}

LfCoverage MeasureCoverage(const std::vector<LabelingFunction>& functions,
                           const AnnotationSet& annotations,
                           const data::Dataset& dataset) {
  LfCoverage cov;
  std::vector<long> fired(functions.size(), 0);
  std::vector<long> correct(functions.size(), 0);
  long covered = 0, votes = 0;
  for (int i = 0; i < annotations.num_instances(); ++i) {
    const int n = annotations.NumAnnotators(i);
    covered += n > 0;
    votes += n;
    for (const AnnotatorLabels& e : annotations.instance(i).entries) {
      ++fired[e.annotator];
      correct[e.annotator] += e.labels[0] == dataset.instances[i].label;
    }
  }
  const int total = annotations.num_instances();
  cov.covered = total > 0 ? static_cast<double>(covered) / total : 0.0;
  cov.votes_per_instance =
      total > 0 ? static_cast<double>(votes) / total : 0.0;
  cov.lf_accuracy.resize(functions.size(), 0.0);
  for (size_t j = 0; j < functions.size(); ++j) {
    cov.lf_accuracy[j] =
        fired[j] > 0 ? static_cast<double>(correct[j]) / fired[j] : 0.0;
  }
  return cov;
}

std::vector<LabelingFunction> MakeSentimentLabelingFunctions(
    const data::Vocab& vocab, int per_class, int triggers_each,
    double fire_prob, util::Rng* rng) {
  // Recover the generator's polarity lexicons by vocabulary name.
  std::vector<int> lexicon[2];
  for (int prefix = 0; prefix < 2; ++prefix) {
    const std::string name = prefix == data::kSentimentPositive ? "pos" : "neg";
    for (int i = 0;; ++i) {
      const int id = vocab.Find(name + std::to_string(i));
      if (id < 0) break;
      lexicon[prefix].push_back(id);
    }
    LNCL_CHECK(!lexicon[prefix].empty());
  }

  std::vector<LabelingFunction> functions;
  for (int cls = 0; cls < 2; ++cls) {
    for (int f = 0; f < per_class; ++f) {
      LabelingFunction lf;
      lf.name = (cls == data::kSentimentPositive ? "lf_pos" : "lf_neg") +
                std::to_string(f);
      lf.label = cls;
      lf.fire_prob = fire_prob;
      const int want = std::min<int>(triggers_each,
                                     static_cast<int>(lexicon[cls].size()));
      for (int idx : rng->SampleWithoutReplacement(
               static_cast<int>(lexicon[cls].size()), want)) {
        lf.triggers.push_back(lexicon[cls][idx]);
      }
      functions.push_back(std::move(lf));
    }
  }
  return functions;
}

}  // namespace lncl::crowd
