#pragma once

#include <string>
#include <vector>

#include "crowd/annotation.h"
#include "data/dataset.h"
#include "data/vocab.h"
#include "util/rng.h"

namespace lncl::crowd {

// Snorkel-style programmatic weak supervision (the paper's Discussion
// section proposes deploying Logic-LNCL on exactly this setting, where the
// "annotators" are labeling functions rather than humans).
//
// A labeling function fires when an instance contains one of its trigger
// tokens (with probability `fire_prob`, modelling imperfect pattern
// matching) and always votes its fixed class; it abstains otherwise. The
// resulting AnnotationSet has exactly the same shape as crowd labels — LFs
// are annotators, abstention is simply a missing label — so every learner
// in this library consumes weak supervision unchanged.
struct LabelingFunction {
  std::string name;
  std::vector<int> triggers;  // token ids that activate the LF
  int label = 0;              // the class the LF votes for
  double fire_prob = 1.0;     // P(fire | a trigger is present)
};

// Applies the functions to every instance of a classification dataset.
// LF j is annotator j in the returned set.
AnnotationSet ApplyLabelingFunctions(
    const std::vector<LabelingFunction>& functions,
    const data::Dataset& dataset, int num_classes, util::Rng* rng);

// Coverage diagnostics: fraction of instances with >= 1 vote, and the mean
// number of votes per instance.
struct LfCoverage {
  double covered = 0.0;
  double votes_per_instance = 0.0;
  // Empirical accuracy of each LF on the instances it fired on.
  std::vector<double> lf_accuracy;
};
LfCoverage MeasureCoverage(const std::vector<LabelingFunction>& functions,
                           const AnnotationSet& annotations,
                           const data::Dataset& dataset);

// Builds keyword labeling functions for the synthetic sentiment corpus:
// `per_class` functions per polarity, each triggering on `triggers_each`
// random lexicon words of that polarity (the word ids are recovered from
// the generator's "pos<i>"/"neg<i>" vocabulary names). Because polarity
// words also occur in opposite-class sentences and in A-but-B clauses, the
// resulting functions have realistically imperfect accuracy and coverage.
std::vector<LabelingFunction> MakeSentimentLabelingFunctions(
    const data::Vocab& vocab, int per_class, int triggers_each,
    double fire_prob, util::Rng* rng);

}  // namespace lncl::crowd

