#include "crowd/confusion.h"

#include <cmath>

#include "util/check.h"

namespace lncl::crowd {

ConfusionMatrix::ConfusionMatrix(int num_classes, double diag) {
  m_.Resize(num_classes, num_classes);
  const float off = num_classes > 1
                        ? static_cast<float>((1.0 - diag) / (num_classes - 1))
                        : 0.0f;
  for (int r = 0; r < num_classes; ++r) {
    for (int c = 0; c < num_classes; ++c) {
      m_(r, c) = r == c ? static_cast<float>(diag) : off;
    }
  }
}

void ConfusionMatrix::NormalizeRows(double smoothing) {
  for (int r = 0; r < m_.rows(); ++r) {
    float* row = m_.Row(r);
    double sum = 0.0;
    for (int c = 0; c < m_.cols(); ++c) {
      row[c] += static_cast<float>(smoothing);
      sum += row[c];
    }
    if (sum <= 0.0) {
      for (int c = 0; c < m_.cols(); ++c) {
        row[c] = 1.0f / static_cast<float>(m_.cols());
      }
    } else {
      const float inv = static_cast<float>(1.0 / sum);
      for (int c = 0; c < m_.cols(); ++c) row[c] *= inv;
    }
  }
  // Eq. 12 closed form ends here: every annotator row must leave as a
  // distribution over observed labels.
  LNCL_AUDIT_ROW_STOCHASTIC(m_);
}

double ConfusionMatrix::Reliability() const {
  double sum = 0.0;
  for (int r = 0; r < m_.rows(); ++r) sum += m_(r, r);
  return m_.rows() > 0 ? sum / m_.rows() : 0.0;
}

double ConfusionMatrix::Distance(const ConfusionMatrix& other) const {
  LNCL_DCHECK(num_classes() == other.num_classes());
  double sum = 0.0;
  for (int r = 0; r < m_.rows(); ++r) {
    for (int c = 0; c < m_.cols(); ++c) {
      const double d = m_(r, c) - other.m_(r, c);
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

ConfusionSet EmpiricalConfusions(const AnnotationSet& annotations,
                                 const data::Dataset& dataset) {
  const int k = annotations.num_classes();
  ConfusionSet result(annotations.num_annotators(), ConfusionMatrix(k, 0.0));
  for (auto& cm : result) cm.matrix().Zero();
  for (int i = 0; i < annotations.num_instances(); ++i) {
    for (const AnnotatorLabels& e : annotations.instance(i).entries) {
      for (size_t t = 0; t < e.labels.size(); ++t) {
        const int truth = dataset.ItemLabel(i, static_cast<int>(t));
        result[e.annotator](truth, e.labels[t]) += 1.0f;
      }
    }
  }
  for (auto& cm : result) cm.NormalizeRows(1e-9);
  return result;
}

}  // namespace lncl::crowd
