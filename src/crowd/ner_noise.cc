#include "crowd/ner_noise.h"

#include <algorithm>

#include "data/bio.h"

namespace lncl::crowd {

using data::EntitySpan;

std::vector<int> CorruptNerTags(const std::vector<int>& truth,
                                const NerErrorRates& rates, double difficulty,
                                util::Rng* rng) {
  const int n = static_cast<int>(truth.size());
  const double scale = 0.5 + std::clamp(difficulty, 0.0, 1.0);
  const double p_ignore = std::min(0.95, rates.p_ignore * scale);
  const double p_boundary = std::min(0.95, rates.p_boundary * scale);
  const double p_type = std::min(0.95, rates.p_type * scale);
  const double p_fp = std::min(0.95, rates.p_false_positive * scale);

  std::vector<int> out(n, data::kO);
  for (const EntitySpan& span : data::ExtractSpans(truth)) {
    if (rng->Bernoulli(p_ignore)) continue;  // ignore error

    EntitySpan s = span;
    if (rng->Bernoulli(p_type)) {  // span-type error
      int other = rng->UniformInt(data::kNumEntityTypes - 1);
      if (other >= s.type) ++other;
      s.type = other;
    }
    if (rng->Bernoulli(p_boundary)) {  // boundary error
      switch (rng->UniformInt(4)) {
        case 0:  // shift left
          if (s.begin > 0) { --s.begin; --s.end; }
          break;
        case 1:  // shift right
          if (s.end < n) { ++s.begin; ++s.end; }
          break;
        case 2:  // grow by one (either side)
          if (rng->Bernoulli(0.5) && s.begin > 0) {
            --s.begin;
          } else if (s.end < n) {
            ++s.end;
          }
          break;
        default:  // shrink by one, keeping at least one token
          if (s.end - s.begin > 1) {
            if (rng->Bernoulli(0.5)) ++s.begin; else --s.end;
          }
          break;
      }
    }
    s.begin = std::clamp(s.begin, 0, n - 1);
    s.end = std::clamp(s.end, s.begin + 1, n);
    data::WriteSpan(s, &out);
  }

  // False positives on untouched O runs.
  if (p_fp > 0.0 && rng->Bernoulli(std::min(0.95, p_fp))) {
    const int len = 1 + rng->UniformInt(2);
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int begin = rng->UniformInt(std::max(1, n - len + 1));
      bool clear = begin + len <= n;
      for (int i = begin; clear && i < begin + len; ++i) {
        clear = out[i] == data::kO && truth[i] == data::kO;
      }
      if (!clear) continue;
      data::WriteSpan({begin, begin + len, rng->UniformInt(data::kNumEntityTypes)},
                      &out);
      break;
    }
  }
  return out;
}

}  // namespace lncl::crowd
