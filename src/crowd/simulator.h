#pragma once

#include <utility>
#include <vector>

#include "crowd/annotation.h"
#include "crowd/confusion.h"
#include "crowd/ner_noise.h"
#include "data/dataset.h"
#include "util/rng.h"

namespace lncl::crowd {

// One simulated crowd annotator.
struct AnnotatorProfile {
  // Generative confusion matrix (classification tasks, Eq. 2). For sequence
  // tasks this is unused; errors follow `ner_rates` instead.
  ConfusionMatrix confusion;
  // Sequence-task error model.
  NerErrorRates ner_rates;
  // Relative propensity to pick up tasks; induces the long-tailed
  // participation seen in the paper's Figure 4(a).
  double participation = 1.0;
  // Scalar skill summary in [0, 1] used when deriving the above.
  double skill = 0.8;
};

// Configuration for the simulated annotator pool.
struct CrowdConfig {
  int num_annotators = 50;
  // Expected number of annotators per instance (paper: 5.55 for sentiment,
  // ~5 for NER). The realized count per instance is in
  // [min_per_instance, max_per_instance].
  double avg_per_instance = 5.0;
  int min_per_instance = 3;
  int max_per_instance = 8;

  // Skill mixture: good / mediocre / spammer fractions and ranges.
  double frac_good = 0.60;
  double frac_mediocre = 0.28;
  double good_lo = 0.75, good_hi = 0.95;
  double mediocre_lo = 0.55, mediocre_hi = 0.75;
  double spam_lo = 0.30, spam_hi = 0.55;

  // Per-class diagonal asymmetry for classification confusions.
  double class_bias = 0.08;

  // Log-normal participation spread (sigma of the underlying normal).
  double participation_sigma = 1.1;

  // When true, the probability of a correct label shrinks with instance
  // difficulty (the GLAD generative story): p_correct(i, j) =
  // 1/K + (pi_diag - 1/K) * (1 - difficulty_strength * difficulty_i).
  bool difficulty_aware = true;
  double difficulty_strength = 0.6;

  // Fraction of instances with *correlated* annotator errors: the instance
  // is genuinely misleading and every annotator perceives the same wrong
  // class (then applies their usual confusion to it). Such errors violate
  // the conditional-independence assumption of DS-style aggregators and cap
  // the achievable inference accuracy — as real crowds do. Classification
  // tasks only. Instances with a contrastive structure (contrast_index >= 0)
  // use the separate `trap_frac_contrast` rate: "A-but-B" sentences mislead
  // human annotators far more often, which is precisely the error mode the
  // paper's logic rule can repair.
  double trap_frac = 0.0;
  double trap_frac_contrast = 0.0;

  // Sequence-task correlated errors: the per-entity probability that ALL
  // annotators share the same mistake (the whole crowd "perceives" a wrong
  // version of the sentence). Caps the aggregation ceiling like trap_frac
  // does for classification.
  double seq_trap_ignore = 0.0;    // entity invisible to everyone
  double seq_trap_type = 0.0;      // everyone agrees on the same wrong type
  double seq_trap_boundary = 0.0;  // everyone sees the same shifted span

  // Sequence-task error-rate multipliers: each annotator's error rates are
  // multiplier * (1 - skill). Raising these makes the simulated NER crowd
  // sloppier without changing the skill mixture.
  double ner_ignore = 0.55;
  double ner_boundary = 0.50;
  double ner_type = 0.45;
  double ner_false_positive = 0.25;
};

// A simulated annotator pool. Profiles are fixed at construction; Annotate*
// can be applied to any split drawn from the same task.
class CrowdSimulator {
 public:
  // Builds a pool for a K-class classification task.
  static CrowdSimulator MakeClassification(const CrowdConfig& config,
                                           int num_classes, util::Rng* rng);

  // Builds a pool for the 9-class BIO sequence task. Error rates are derived
  // from each annotator's skill so that annotator F1 spans roughly the
  // paper's 17.6%-89.1% range.
  static CrowdSimulator MakeSequence(const CrowdConfig& config,
                                     util::Rng* rng);

  // Labels every instance of `dataset` (classification task).
  AnnotationSet Annotate(const data::Dataset& dataset, util::Rng* rng) const;

  // Labels every instance of `dataset` (sequence task, per-token labels with
  // the ignore/boundary/type error model).
  AnnotationSet AnnotateSequences(const data::Dataset& dataset,
                                  util::Rng* rng) const;

  const std::vector<AnnotatorProfile>& profiles() const { return profiles_; }
  int num_annotators() const { return static_cast<int>(profiles_.size()); }

 private:
  CrowdSimulator(CrowdConfig config, std::vector<AnnotatorProfile> profiles,
                 int num_classes)
      : config_(config),
        profiles_(std::move(profiles)),
        num_classes_(num_classes) {}

  // Samples the set of annotators for one instance, participation-weighted,
  // without replacement.
  std::vector<int> SampleAnnotators(util::Rng* rng) const;

  CrowdConfig config_;
  std::vector<AnnotatorProfile> profiles_;
  int num_classes_;
};

}  // namespace lncl::crowd

