#include "crowd/io.h"

#include <sstream>
#include <string>
#include <vector>

namespace lncl::crowd {

namespace {

// Parses one whitespace-separated row of ints; false on any junk token.
bool ParseRow(const std::string& line, std::vector<int>* row) {
  row->clear();
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    try {
      size_t used = 0;
      const int v = std::stoi(token, &used);
      if (used != token.size()) return false;
      row->push_back(v);
    } catch (...) {
      return false;
    }
  }
  return true;
}

// Densifies one instance: cell (item, annotator) = label + 1 or 0.
std::vector<std::vector<int>> Densify(const InstanceAnnotations& inst,
                                      int items, int num_annotators) {
  std::vector<std::vector<int>> grid(
      items, std::vector<int>(num_annotators, 0));
  for (const AnnotatorLabels& e : inst.entries) {
    for (int t = 0; t < items; ++t) {
      grid[t][e.annotator] = e.labels[t] + 1;
    }
  }
  return grid;
}

}  // namespace

void SaveAnswersMatrix(std::ostream& os, const AnnotationSet& annotations) {
  for (int i = 0; i < annotations.num_instances(); ++i) {
    const auto grid =
        Densify(annotations.instance(i), 1, annotations.num_annotators());
    for (int j = 0; j < annotations.num_annotators(); ++j) {
      if (j > 0) os << " ";
      os << grid[0][j];
    }
    os << "\n";
  }
}

bool LoadAnswersMatrix(std::istream& is, int num_classes,
                       AnnotationSet* annotations) {
  std::vector<std::vector<int>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<int> row;
    if (!ParseRow(line, &row) || row.empty()) return false;
    if (!rows.empty() && row.size() != rows.front().size()) return false;
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return false;
  const int num_annotators = static_cast<int>(rows.front().size());
  *annotations = AnnotationSet(static_cast<int>(rows.size()), num_annotators,
                               num_classes);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int j = 0; j < num_annotators; ++j) {
      const int v = rows[i][j];
      if (v < 0 || v > num_classes) return false;
      if (v == 0) continue;
      annotations->instance(static_cast<int>(i))
          .entries.push_back({j, {v - 1}});
    }
  }
  return true;
}

void SaveSequenceAnswers(std::ostream& os, const AnnotationSet& annotations,
                         const std::vector<int>& items_per_instance) {
  for (int i = 0; i < annotations.num_instances(); ++i) {
    const auto grid = Densify(annotations.instance(i), items_per_instance[i],
                              annotations.num_annotators());
    for (const auto& row : grid) {
      for (size_t j = 0; j < row.size(); ++j) {
        if (j > 0) os << " ";
        os << row[j];
      }
      os << "\n";
    }
    os << "\n";
  }
}

bool LoadSequenceAnswers(std::istream& is, int num_classes,
                         AnnotationSet* annotations) {
  std::vector<std::vector<std::vector<int>>> blocks;
  std::vector<std::vector<int>> block;
  std::string line;
  size_t num_cols = 0;
  auto flush = [&]() {
    if (!block.empty()) {
      blocks.push_back(std::move(block));
      block.clear();
    }
  };
  while (std::getline(is, line)) {
    if (line.empty()) {
      flush();
      continue;
    }
    std::vector<int> row;
    if (!ParseRow(line, &row) || row.empty()) return false;
    if (num_cols == 0) num_cols = row.size();
    if (row.size() != num_cols) return false;
    block.push_back(std::move(row));
  }
  flush();
  if (blocks.empty()) return false;

  const int num_annotators = static_cast<int>(num_cols);
  *annotations = AnnotationSet(static_cast<int>(blocks.size()),
                               num_annotators, num_classes);
  for (size_t i = 0; i < blocks.size(); ++i) {
    const auto& grid = blocks[i];
    for (int j = 0; j < num_annotators; ++j) {
      // An annotator either labels the whole sentence or none of it.
      int nonzero = 0;
      for (const auto& row : grid) nonzero += row[j] != 0;
      if (nonzero == 0) continue;
      if (nonzero != static_cast<int>(grid.size())) return false;
      AnnotatorLabels e;
      e.annotator = j;
      for (const auto& row : grid) {
        if (row[j] < 1 || row[j] > num_classes) return false;
        e.labels.push_back(row[j] - 1);
      }
      annotations->instance(static_cast<int>(i))
          .entries.push_back(std::move(e));
    }
  }
  return true;
}

}  // namespace lncl::crowd
